(* ace_sim: command-line driver for the CGO 2005 ACE-management
   reproduction.

   Subcommands:
     run <benchmark> [-s scheme] [--scale x] [--seed n]   one run, summary
         [--trace f.json] [--metrics f.csv] [--obs-level off|metrics|full]
     report <benchmark> [-s scheme]                       observability report
     exp <id|all> [--scale x] [--seed n] [--jobs n]       regenerate a table/figure
     list                                                 benchmarks and experiments
*)

open Cmdliner
module Obs = Ace_obs.Obs
module Export = Ace_obs.Export

let scale_arg =
  let doc = "Workload scale factor (1.0 = default reproduction scale)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"X" ~doc)

let seed_arg =
  let doc = "Deterministic seed for workload construction and simulation." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let workload_conv =
  let parse s =
    match Ace_workloads.Specjvm.find s with
    | Some w -> Ok w
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown benchmark %S (expected one of: %s)" s
               (String.concat ", " Ace_workloads.Specjvm.names)))
  in
  Arg.conv (parse, fun fmt w -> Format.pp_print_string fmt w.Ace_workloads.Workload.name)

let scheme_conv =
  let parse s =
    match Ace_harness.Scheme.of_string s with
    | Some x -> Ok x
    | None -> Error (`Msg "expected one of: baseline, hotspot, bbv")
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Ace_harness.Scheme.name s))

(* A probability: rejected at parse time so an out-of-range rate fails with
   a usage error instead of silently scaling the whole fault model. *)
let rate_conv =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid fault rate %S" s))
    | Some r when not (r >= 0.0 && r <= 1.0) ->
        Error
          (`Msg
            (Printf.sprintf "fault rate %g is outside [0, 1] (a probability)" r))
    | Some r -> Ok r
  in
  Arg.conv (parse, Format.pp_print_float)

(* Strictly positive instruction counts (checkpoint cadence, kill point):
   zero or negative values would silently disable checkpointing or kill the
   run at startup, so they are rejected at parse time. *)
let pos_int_conv what =
  let parse s =
    match int_of_string_opt s with
    | None ->
        Error
          (`Msg
            (Printf.sprintf "invalid %s %S (expected a positive integer)" what s))
    | Some n when n <= 0 ->
        Error (`Msg (Printf.sprintf "%s must be positive (got %d)" what n))
    | Some n -> Ok n
  in
  Arg.conv (parse, Format.pp_print_int)

let obs_level_conv =
  Arg.enum [ ("off", Obs.Off); ("metrics", Obs.Metrics); ("full", Obs.Full) ]

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the run's event timeline to $(docv): Chrome trace-event \
           JSON (open in Perfetto or about:tracing), or CSV when $(docv) \
           ends in .csv.  Implies $(b,--obs-level) full.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics registry (counters, gauges, histogram \
           buckets) to $(docv) as CSV.  Implies $(b,--obs-level) metrics.")

let obs_level_arg =
  Arg.(
    value
    & opt (some obs_level_conv) None
    & info [ "obs-level" ] ~docv:"LEVEL"
        ~doc:
          "Observability level: $(b,off), $(b,metrics) (counters only) or \
           $(b,full) (counters plus the event timeline).  Defaults to \
           whatever $(b,--trace)/$(b,--metrics) need.")

(* Explicit --obs-level wins; otherwise infer the cheapest level that can
   satisfy the requested output files. *)
let obs_of_flags ~trace ~metrics ~obs_level =
  let level =
    match obs_level with
    | Some l -> l
    | None ->
        if trace <> None then Obs.Full
        else if metrics <> None then Obs.Metrics
        else Obs.Off
  in
  if level = Obs.Off && trace = None && metrics = None then Obs.null
  else Obs.create level

let write_text_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let write_exports ~trace ~metrics obs =
  (match trace with
  | Some path ->
      let s =
        if Filename.check_suffix path ".csv" then Export.csv obs
        else Export.chrome obs
      in
      write_text_file path s
  | None -> ());
  match metrics with
  | Some path -> write_text_file path (Export.metrics_csv obs)
  | None -> ()

(* The summary/fault-stats rendering lives in [Ace_harness.Render] so the
   serve daemon can store byte-identical result payloads. *)
let print_summary r = print_string (Ace_harness.Render.summary r)
let print_fault_stats r = print_string (Ace_harness.Render.fault_stats r)

let run_cmd =
  let workload =
    Arg.(
      value
      & pos 0 (some workload_conv) None
      & info [] ~docv:"BENCHMARK"
          ~doc:"SPECjvm98 benchmark name (optional with $(b,--resume)).")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Ace_harness.Scheme.Hotspot
      & info [ "s"; "scheme" ] ~docv:"SCHEME"
          ~doc:"Resource-management scheme: baseline, hotspot or bbv.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-hotspot selections.")
  in
  let fault_rate =
    Arg.(
      value
      & opt (some rate_conv) None
      & info [ "faults" ] ~docv:"RATE"
          ~doc:
            "Inject hardware faults at the given base rate in [0, 1] (e.g. \
             0.01 = 1% register-write drop/corrupt probability, plus derived \
             stuck-CU, measurement-noise, sampler-jitter and \
             snapshot-corruption rates).")
  in
  let resilient =
    Arg.(
      value & flag
      & info [ "resilient" ]
          ~doc:
            "Enable the framework's resilience machinery (retry/backoff, \
             quarantine, graceful degradation; hotspot scheme only).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically snapshot the full simulator state to $(docv) \
             (previous snapshot rotated to $(docv).1).")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (pos_int_conv "checkpoint cadence") 10_000_000
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint cadence in program instructions (positive).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from the snapshot at $(docv) instead of starting fresh \
             (falls back to $(docv).1 if the newest snapshot is corrupted); \
             the benchmark and scheme come from the snapshot's metadata.")
  in
  let kill_after =
    Arg.(
      value
      & opt (some (pos_int_conv "kill point")) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:
            "Simulate a crash: stop (exit 3) at the first checkpoint \
             boundary at or past $(docv) instructions (positive), leaving \
             the last snapshot on disk.")
  in
  let sample_flag =
    Arg.(
      value & flag
      & info [ "sample" ]
          ~doc:
            "Phase-memoized fast-forward sampling: once a recurring \
             optimized phase's statistics stabilize, replay its repeats \
             from the memoized record instead of simulating every cache \
             access.  Architectural results are exact; timing and energy \
             are within the memoization bound.  Requires $(b,--resilient) \
             when combined with $(b,--faults).")
  in
  let sample_repeats =
    Arg.(
      value
      & opt (some (pos_int_conv "sample repeat threshold")) None
      & info [ "sample-repeats" ] ~docv:"N"
          ~doc:
            "Clean repeats required before a phase may be fast-forwarded \
             (positive; default 3).  Only valid with $(b,--sample).")
  in
  let action workload scheme scale seed verbose fault_rate resilient checkpoint
      checkpoint_every resume kill_after sample_flag sample_repeats trace
      metrics obs_level =
    let obs = obs_of_flags ~trace ~metrics ~obs_level in
    (* --sample flag validation: the combinations below would silently
       produce misleading results, so they are hard errors (exit 2, like a
       usage error). *)
    if sample_repeats <> None && not sample_flag then begin
      Printf.eprintf "ace_sim: --sample-repeats requires --sample\n";
      exit 2
    end;
    if sample_flag && fault_rate <> None && not resilient then begin
      Printf.eprintf
        "ace_sim: --sample with --faults requires --resilient (memoized \
         phase statistics are only invalidated safely when the framework \
         can detect and recover from faulty configurations)\n";
      exit 2
    end;
    if sample_flag && resume <> None then begin
      Printf.eprintf
        "ace_sim: --sample cannot be set on --resume (the snapshot's \
         metadata decides whether the run is sampled)\n";
      exit 2
    end;
    let sample =
      if not sample_flag then None
      else
        Some
          {
            Ace_sample.Sample.default_config with
            Ace_sample.Sample.repeats =
              (match sample_repeats with
              | Some n -> n
              | None -> Ace_sample.Sample.default_config.Ace_sample.Sample.repeats);
          }
    in
    (* Exports are written for killed runs too: the trace of a crashed run
       is exactly what one wants to look at. *)
    let finish_outcome outcome =
      write_exports ~trace ~metrics obs;
      match outcome with
      | Ace_harness.Run.Completed r ->
          print_summary r;
          print_fault_stats r
      | Ace_harness.Run.Killed_at n ->
          Printf.printf "killed at %s instructions (snapshot retained)\n"
            (Ace_util.Table.cell_int n);
          exit 3
    in
    match resume with
    | Some path -> (
        match Ace_harness.Run.resume_run ?kill_after ~obs ~path () with
        | None ->
            Printf.eprintf
              "ace_sim: no usable snapshot at %s (nor at %s.1)\n" path path;
            exit 1
        | Some (outcome, which) ->
            if which = `Fallback then
              Printf.eprintf
                "ace_sim: newest snapshot unreadable, resumed from %s.1\n" path;
            finish_outcome outcome)
    | None -> (
        let workload =
          match workload with
          | Some w -> w
          | None ->
              Printf.eprintf
                "ace_sim: a BENCHMARK is required unless --resume is given\n";
              exit 2
        in
        match checkpoint with
        | Some path ->
            finish_outcome
              (Ace_harness.Run.run_checkpointed ~scale ~seed ~resilient
                 ?fault_rate ?sample ?kill_after ~obs ~checkpoint_every ~path
                 workload scheme)
        | None ->
            let faults =
              Option.map (fun rate -> Ace_faults.Faults.preset ~rate) fault_rate
            in
            let framework_config =
              if resilient then
                {
                  Ace_core.Framework.default_config with
                  resilience = Ace_core.Tuner.default_resilience;
                }
              else Ace_core.Framework.default_config
            in
            let r =
              Ace_harness.Run.run ~scale ~seed ~framework_config ?faults
                ?sample ~obs workload scheme
            in
            write_exports ~trace ~metrics obs;
            print_summary r;
            print_fault_stats r;
            if verbose then
              match r.Ace_harness.Run.hotspot with
              | Some h ->
                  List.iter
                    (fun (v : Ace_core.Framework.hotspot_view) ->
                      Printf.printf "  %-24s %-12s %s\n" v.meth_name
                        (String.concat "+" v.managed_cus)
                        (if v.configured then
                           String.concat ", "
                             (List.map (fun (c, s) -> c ^ "=" ^ s) v.selection)
                         else "still tuning"))
                    h.Ace_harness.Run.views
              | None -> ())
  in
  let info =
    Cmd.info "run" ~doc:"Run one benchmark under one scheme and print a summary."
  in
  Cmd.v info
    Term.(
      const action $ workload $ scheme $ scale_arg $ seed_arg $ verbose
      $ fault_rate $ resilient $ checkpoint $ checkpoint_every $ resume
      $ kill_after $ sample_flag $ sample_repeats $ trace_arg $ metrics_arg
      $ obs_level_arg)

let report_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some workload_conv) None
      & info [] ~docv:"BENCHMARK" ~doc:"SPECjvm98 benchmark name.")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Ace_harness.Scheme.Hotspot
      & info [ "s"; "scheme" ] ~docv:"SCHEME"
          ~doc:"Resource-management scheme: baseline, hotspot or bbv.")
  in
  let sample =
    Arg.(
      value & flag
      & info [ "sample" ]
          ~doc:
            "Run under phase-memoized fast-forward sampling; the report's \
             $(i,sampled regions) line counts the spliced regions.")
  in
  let action workload scheme scale seed sample =
    let obs = Obs.create Obs.Full in
    let (_ : Ace_harness.Run.result) =
      Ace_harness.Run.run ~scale ~seed ~obs
        ?sample:
          (if sample then Some Ace_sample.Sample.default_config else None)
        workload scheme
    in
    print_string (Export.report obs)
  in
  let info =
    Cmd.info "report"
      ~doc:
        "Run one benchmark with full observability and print a \
         human-readable activity report (metrics, rates, timeline tail)."
  in
  Cmd.v info
    Term.(const action $ workload $ scheme $ scale_arg $ seed_arg $ sample)

let exp_cmd =
  let ids =
    [
      "table1"; "table2"; "table3"; "fig1"; "table4"; "table5"; "table6";
      "fig3"; "fig4"; "ablation-decoupling"; "ablation-thresholds";
      "ext-issue-queue"; "ext-prediction"; "ext-bbv-predictor"; "resilience";
      "stability"; "sample-accuracy"; "soak"; "torture"; "all"; "paper";
    ]
  in
  let id =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun s -> (s, s)) ids))) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Experiment id: table1-6, fig1, fig3, fig4, ablation-decoupling, \
             ablation-thresholds, ext-issue-queue, all, or paper (alias of \
             all).")
  in
  let jobs =
    Arg.(
      value
      & opt (pos_int_conv "jobs") 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run the experiment's independent simulations on $(docv) domains \
             (positive; 1 = sequential).  Output is byte-identical for every \
             $(docv).")
  in
  let seeds =
    Arg.(
      value
      & opt (pos_int_conv "seeds") 2
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Torture only: enumerate the crash-point matrix under seeds 1 \
             through $(docv).  Ignored by the other experiments.")
  in
  let sample_flag =
    Arg.(
      value & flag
      & info [ "sample" ]
          ~doc:
            "Run every simulation in the experiment under phase-memoized \
             fast-forward sampling (not valid with $(b,sample-accuracy), \
             which already compares sampled vs full, nor with \
             $(b,torture)).")
  in
  let action id scale seed jobs seeds sample =
    (* sample-accuracy runs both sides itself; a context-wide --sample
       would collapse the comparison to sampled-vs-sampled. *)
    if sample && (id = "sample-accuracy" || id = "torture") then begin
      Printf.eprintf "ace_sim: --sample is not valid with %s\n" id;
      exit 2
    end;
    if id = "torture" then begin
      (* Not an Experiments table: the torture matrix needs no worker
         context, exercises ace_serve rather than the paper harness, and
         its exit status is the CI gate. *)
      let scale = if scale = 1.0 then None else Some scale in
      let tallies =
        Ace_serve.Torture.run_matrix ?scale
          ~seeds:(List.init seeds (fun i -> i + 1))
          ()
      in
      print_string (Ace_serve.Torture.render tallies);
      if Ace_serve.Torture.total_violations tallies > 0 then exit 1
    end
    else
    let ctx =
      Ace_harness.Experiments.create ~scale ~seed ~jobs
        ?sample:
          (if sample then Some Ace_sample.Sample.default_config else None)
        ()
    in
    let print (name, tbl) =
      Printf.printf "== %s ==\n" name;
      Ace_util.Table.print tbl;
      print_newline ()
    in
    (if id = "all" || id = "paper" then
       List.iter print (Ace_harness.Experiments.all ctx)
     else
       let tbl =
         match id with
         | "table1" -> Ace_harness.Experiments.table1 ctx
         | "table2" -> Ace_harness.Experiments.table2 ()
         | "table3" -> Ace_harness.Experiments.table3 ()
         | "fig1" -> Ace_harness.Experiments.fig1 ctx
         | "table4" -> Ace_harness.Experiments.table4 ctx
         | "table5" -> Ace_harness.Experiments.table5 ctx
         | "table6" -> Ace_harness.Experiments.table6 ctx
         | "fig3" -> Ace_harness.Experiments.fig3 ctx
         | "fig4" -> Ace_harness.Experiments.fig4 ctx
         | "ablation-decoupling" -> Ace_harness.Experiments.ablation_decoupling ctx
         | "ablation-thresholds" -> Ace_harness.Experiments.ablation_thresholds ctx
         | "ext-issue-queue" -> Ace_harness.Experiments.extension_issue_queue ctx
         | "ext-prediction" -> Ace_harness.Experiments.extension_prediction ctx
         | "ext-bbv-predictor" -> Ace_harness.Experiments.extension_bbv_predictor ctx
         | "resilience" -> Ace_harness.Experiments.resilience ctx
         | "stability" -> Ace_harness.Experiments.stability ctx
         | "sample-accuracy" -> Ace_harness.Experiments.sample_accuracy ctx
         | "soak" -> Ace_harness.Experiments.soak ctx
         | _ -> assert false
       in
       print (id, tbl));
    Ace_harness.Experiments.shutdown ctx
  in
  let info =
    Cmd.info "exp"
      ~doc:
        "Regenerate one of the paper's tables or figures, or run the \
         storage-crash torture matrix."
  in
  Cmd.v info
    Term.(const action $ id $ scale_arg $ seed_arg $ jobs $ seeds $ sample_flag)

let list_cmd =
  let action () =
    print_endline "Benchmarks:";
    List.iter
      (fun w ->
        Printf.printf "  %-10s %s\n" w.Ace_workloads.Workload.name
          w.Ace_workloads.Workload.description)
      Ace_workloads.Specjvm.all;
    print_endline "";
    print_endline "Experiments: table1 table2 table3 fig1 table4 table5 table6 fig3";
    print_endline "             fig4 ablation-decoupling ablation-thresholds";
    print_endline "             ext-issue-queue ext-prediction ext-bbv-predictor";
    print_endline "             resilience stability sample-accuracy soak torture";
    print_endline "             all paper"
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and experiments.") Term.(const action $ const ())

(* {2 Service daemon (ace_serve)} *)

module Serve_protocol = Ace_serve.Protocol
module Serve_client = Ace_serve.Client

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the serve daemon.")

let pos_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "invalid %s %S" what s))
    | Some f when not (f > 0.0 && Float.is_finite f) ->
        Error (`Msg (Printf.sprintf "%s must be positive (got %g)" what f))
    | Some f -> Ok f
  in
  Arg.conv (parse, Format.pp_print_float)

let serve_cmd =
  let spool =
    Arg.(
      required
      & opt (some string) None
      & info [ "spool" ] ~docv:"DIR"
          ~doc:
            "Spool directory holding job specs, checkpoints and results; \
             created if missing.  A restarted daemon rescans it and resumes \
             in-flight jobs.")
  in
  let jobs =
    Arg.(
      value
      & opt (pos_int_conv "workers") 2
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains executing jobs concurrently (positive).")
  in
  let queue_max =
    Arg.(
      value
      & opt (pos_int_conv "queue high-water mark") 64
      & info [ "queue-max" ] ~docv:"N"
          ~doc:
            "Queue high-water mark: submissions beyond $(docv) queued jobs \
             are rejected with an explicit overloaded response.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (pos_int_conv "checkpoint cadence") 10_000_000
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Per-job checkpoint cadence in instructions (positive).")
  in
  let kill_after =
    Arg.(
      value
      & opt (some (pos_int_conv "kill point")) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:
            "Chaos testing: crash the daemon (exit 3, no cleanup) at the \
             first checkpoint boundary once $(docv) instructions have been \
             executed across all jobs; a restarted daemon must recover the \
             spool.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Log job state transitions to stderr.")
  in
  let io_faults =
    Arg.(
      value
      & opt (some rate_conv) None
      & info [ "io-faults" ] ~docv:"RATE"
          ~doc:
            "Robustness testing: inject seeded storage faults (short/torn \
             writes, ENOSPC, EIO, lost fsyncs, rename failures) into all \
             spool and snapshot I/O at the given base rate in [0, 1].")
  in
  let enospc_for =
    Arg.(
      value
      & opt (some (pos_float_conv "ENOSPC window")) None
      & info [ "enospc-for" ] ~docv:"SECONDS"
          ~doc:
            "Robustness testing: make every spool/snapshot write fail with \
             ENOSPC for the first $(docv) seconds of the daemon's life — \
             the daemon must degrade (pause admissions) and then recover \
             automatically when the \"disk\" drains.")
  in
  let action socket spool jobs queue_max checkpoint_every kill_after verbose
      io_faults enospc_for trace metrics obs_level =
    let obs_level =
      match obs_level with Some l -> l | None -> Obs.Metrics
    in
    let io =
      let base = Ace_util.Io.real in
      let base =
        match io_faults with
        | Some rate -> Ace_faults.Faults.storage_io ~rate base
        | None -> base
      in
      match enospc_for with
      | Some secs ->
          let until = Unix.gettimeofday () +. secs in
          Ace_util.Io.enospc_while (fun () -> Unix.gettimeofday () < until) base
      | None -> base
    in
    Ace_serve.Daemon.run
      {
        Ace_serve.Daemon.socket_path = socket;
        spool_dir = spool;
        workers = jobs;
        queue_max;
        checkpoint_every;
        kill_after;
        obs_level;
        trace;
        metrics;
        verbose;
        io;
      }
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the tuning-as-a-service daemon: accept simulation jobs over a \
         Unix-domain socket, execute them crash-safely (checkpoints, \
         retries, supervised restart recovery), drain gracefully on \
         SIGTERM."
  in
  Cmd.v info
    Term.(
      const action $ socket_arg $ spool $ jobs $ queue_max $ checkpoint_every
      $ kill_after $ verbose $ io_faults $ enospc_for $ trace_arg
      $ metrics_arg $ obs_level_arg)

let submit_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some workload_conv) None
      & info [] ~docv:"BENCHMARK" ~doc:"SPECjvm98 benchmark name.")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Ace_harness.Scheme.Hotspot
      & info [ "s"; "scheme" ] ~docv:"SCHEME"
          ~doc:"Resource-management scheme: baseline, hotspot or bbv.")
  in
  let fault_rate =
    Arg.(
      value
      & opt (some rate_conv) None
      & info [ "faults" ] ~docv:"RATE"
          ~doc:"Inject hardware faults at the given base rate in [0, 1].")
  in
  let resilient =
    Arg.(
      value & flag
      & info [ "resilient" ]
          ~doc:"Enable the resilient tuner policy (hotspot scheme only).")
  in
  let deadline =
    Arg.(
      value
      & opt (some (pos_float_conv "deadline")) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for the job; exceeding it fails the job \
             without retries.")
  in
  let fail_after =
    Arg.(
      value
      & opt (some (pos_int_conv "failure point")) None
      & info [ "fail-after" ] ~docv:"N"
          ~doc:
            "Test hook: poison the job so every attempt raises at the \
             first checkpoint boundary at or past $(docv) instructions \
             (exercises retry and quarantine).")
  in
  let sample =
    Arg.(
      value & flag
      & info [ "sample" ]
          ~doc:
            "Run the job under phase-memoized fast-forward sampling.  With \
             $(b,--faults) it requires $(b,--resilient).")
  in
  let wait =
    Arg.(
      value & flag
      & info [ "wait" ]
          ~doc:
            "Block until the job settles and print its output (the exact \
             $(b,ace_sim run) summary); exit 1 if it failed.")
  in
  let timeout =
    Arg.(
      value
      & opt (pos_float_conv "timeout") 120.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Give up waiting after $(docv) seconds (with $(b,--wait)).")
  in
  let action socket workload scheme scale seed fault_rate resilient sample
      deadline fail_after wait timeout =
    if sample && fault_rate <> None && not resilient then begin
      Printf.eprintf
        "ace_sim: --sample with --faults requires --resilient (memoized \
         phase statistics are only safely invalidated under the resilient \
         policy)\n";
      exit 2
    end;
    let spec =
      Serve_protocol.job_spec ?fault_rate ~resilient ~sample
        ?deadline_s:deadline ?fail_after ~scale ~seed
        ~workload:workload.Ace_workloads.Workload.name scheme
    in
    match Serve_client.submit ~socket spec with
    | Serve_protocol.Accepted id ->
        if not wait then Printf.printf "accepted job %d\n" id
        else (
          match Serve_client.wait ~socket ~timeout id with
          | `Done output -> print_string output
          | `Failed msg ->
              Printf.eprintf "ace_sim: job %d failed: %s\n" id msg;
              exit 1
          | `Timeout ->
              Printf.eprintf "ace_sim: timed out waiting for job %d\n" id;
              exit 1)
    | Serve_protocol.Overloaded ->
        Printf.eprintf "ace_sim: daemon overloaded, try again later\n";
        (* EX_TEMPFAIL: scripted submitters can distinguish backpressure
           from hard failures. *)
        exit 75
    | Serve_protocol.Error_resp msg ->
        Printf.eprintf "ace_sim: %s\n" msg;
        exit 1
    | _ ->
        Printf.eprintf "ace_sim: unexpected response from daemon\n";
        exit 1
  in
  let info =
    Cmd.info "submit" ~doc:"Submit a simulation job to a running serve daemon."
  in
  Cmd.v info
    Term.(
      const action $ socket_arg $ workload $ scheme $ scale_arg $ seed_arg
      $ fault_rate $ resilient $ sample $ deadline $ fail_after $ wait
      $ timeout)

let status_cmd =
  let job =
    Arg.(
      value
      & opt (some int) None
      & info [ "job" ] ~docv:"ID"
          ~doc:"Show one job's state (and output, once settled).")
  in
  let action socket job =
    match job with
    | Some id -> (
        match Serve_client.result ~socket id with
        | Serve_protocol.Result_ok { id; state; output } -> (
            Printf.printf "job %d: %s\n" id state;
            match output with Some out -> print_string out | None -> ())
        | Serve_protocol.Error_resp msg ->
            Printf.eprintf "ace_sim: %s\n" msg;
            exit 1
        | _ ->
            Printf.eprintf "ace_sim: unexpected response from daemon\n";
            exit 1)
    | None -> (
        match Serve_client.status ~socket with
        | Serve_protocol.Status_ok r ->
            Printf.printf "queue depth      : %d\n" r.Serve_protocol.queue_depth;
            Printf.printf "running          : %d\n" r.Serve_protocol.running;
            Printf.printf "draining         : %s\n"
              (if r.Serve_protocol.draining then "yes" else "no");
            Printf.printf "degraded         : %s\n"
              (if r.Serve_protocol.degraded then "yes" else "no");
            List.iter
              (fun (name, v) -> Printf.printf "%-17s: %d\n" name v)
              r.Serve_protocol.counters;
            List.iter
              (fun (ji : Serve_protocol.job_info) ->
                Printf.printf "job %d: %s\n" ji.Serve_protocol.id
                  ji.Serve_protocol.state)
              r.Serve_protocol.jobs
        | Serve_protocol.Error_resp msg ->
            Printf.eprintf "ace_sim: %s\n" msg;
            exit 1
        | _ ->
            Printf.eprintf "ace_sim: unexpected response from daemon\n";
            exit 1)
  in
  let info =
    Cmd.info "status"
      ~doc:
        "Query a running serve daemon: queue depth, counters and per-job \
         states, or one job's result with $(b,--job)."
  in
  Cmd.v info Term.(const action $ socket_arg $ job)

let stop_cmd =
  let action socket =
    match Serve_client.stop ~socket with
    | Serve_protocol.Stopping -> print_endline "draining"
    | _ ->
        Printf.eprintf "ace_sim: unexpected response from daemon\n";
        exit 1
  in
  let info =
    Cmd.info "stop"
      ~doc:
        "Ask a running serve daemon to drain: finish or snapshot running \
         jobs, then exit (queued jobs stay spooled for the next daemon)."
  in
  Cmd.v info Term.(const action $ socket_arg)

let () =
  let client_guard f =
    try f () with
    | Serve_client.Client_error msg ->
        Printf.eprintf "ace_sim: %s\n" msg;
        exit 1
    | e ->
        (* Preserve cmdliner's default uncaught-exception behavior, which
           [~catch:false] below disables. *)
        Printf.eprintf "ace_sim: internal error, uncaught exception:\n%s\n"
          (Printexc.to_string e);
        exit 125
  in
  let info =
    Cmd.info "ace_sim" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Effective Adaptive Computing Environment Management \
         via Dynamic Optimization' (CGO 2005)."
  in
  client_guard (fun () ->
      (* [~catch:false]: cmdliner must not swallow Client_error into its
         generic "internal error" report — the guard above turns it into a
         plain diagnostic and exit 1. *)
      exit
        (Cmd.eval ~catch:false
           (Cmd.group info
              [
                run_cmd; report_cmd; exp_cmd; list_cmd; serve_cmd; submit_cmd;
                status_cmd; stop_cmd;
              ])))
