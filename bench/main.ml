(* Benchmark harness.

   Part 1 (Bechamel): one [Test.make] per paper table/figure — each runs the
   experiment's real code path on a reduced-scale context — plus
   micro-benchmarks of the simulator's hot paths (cache access, engine
   execution).  Reported as ns/run OLS estimates.

   Part 2: regenerates every table and figure at the default reproduction
   scale and prints them (this is the output recorded in EXPERIMENTS.md). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of simulator hot paths.                            *)

let bench_cache_access =
  let cache =
    Ace_mem.Cache.create { Ace_mem.Cache.size_bytes = 65536; assoc = 2; line_bytes = 64 }
  in
  let rng = Ace_util.Rng.create ~seed:7 in
  Test.make ~name:"micro: L1 cache access"
    (Staged.stage @@ fun () ->
    ignore (Ace_mem.Cache.access cache (Ace_util.Rng.int rng 1_000_000) ~write:false))

let bench_cache_resize =
  let cache =
    Ace_mem.Cache.create { Ace_mem.Cache.size_bytes = 65536; assoc = 2; line_bytes = 64 }
  in
  let size = ref 65536 in
  Test.make ~name:"micro: L1 cache resize (flush)"
    (Staged.stage @@ fun () ->
    size := (if !size = 65536 then 32768 else 65536);
    ignore (Ace_mem.Cache.resize cache ~size_bytes:!size))

let bench_engine_1m =
  let program =
    Ace_workloads.Synthetic.build
      { Ace_workloads.Synthetic.default with phase_repeats = 1 }
      ~seed:3
  in
  Test.make ~name:"micro: engine run (~1M instrs)"
    (Staged.stage @@ fun () ->
    let engine = Ace_vm.Engine.create program in
    Ace_vm.Engine.run engine)

(* The register-write hot path with and without an active fault injector:
   [Faults.none] must be indistinguishable from the pre-fault-model guard
   (a single option match), and even an active injector only adds a few
   bounded RNG draws. *)
let bench_hw_request faults name =
  let engine = Ace_vm.Engine.create (Ace_workloads.Synthetic.build
      { Ace_workloads.Synthetic.default with phase_repeats = 1 } ~seed:3)
  in
  let cu = Ace_core.Cu.l1d engine in
  let now = ref 0 in
  let setting = ref 0 in
  Test.make ~name
    (Staged.stage @@ fun () ->
    now := !now + 100_000;
    setting := (!setting + 1) land 3;
    ignore (Ace_core.Hw.request ~faults cu ~setting:!setting ~now_instrs:!now))

let bench_hw_request_clean = bench_hw_request Ace_faults.Faults.none
    "micro: Hw.request (no faults)"

let bench_hw_request_faulty =
  bench_hw_request
    (Ace_faults.Faults.create (Ace_faults.Faults.preset ~rate:0.01))
    "micro: Hw.request (1% faults)"

(* Snapshot serialize/deserialize: the per-checkpoint cost a run pays at
   every cadence boundary, measured on a real mid-run hotspot snapshot. *)
let checkpoint_sample =
  lazy
    (let path = Filename.temp_file "ace_bench" ".snap" in
     let snap = ref None in
     (match
        Ace_harness.Run.run_checkpointed ~scale:0.1 ~seed:3
          ~on_snapshot:(fun s -> if !snap = None then snap := Some s)
          ~checkpoint_every:2_000_000 ~path
          (Option.get (Ace_workloads.Specjvm.find "compress"))
          Ace_harness.Scheme.Hotspot
      with
     | Ace_harness.Run.Completed _ -> ()
     | Ace_harness.Run.Killed_at _ -> assert false);
     List.iter
       (fun p -> if Sys.file_exists p then Sys.remove p)
       [ path; path ^ ".1" ];
     Option.get !snap)

let bench_snapshot_encode =
  Test.make ~name:"micro: snapshot encode"
    (Staged.stage @@ fun () ->
    ignore (Ace_ckpt.Snapshot.encode (Lazy.force checkpoint_sample)))

let bench_snapshot_decode =
  let data = lazy (Ace_ckpt.Snapshot.encode (Lazy.force checkpoint_sample)) in
  Test.make ~name:"micro: snapshot decode"
    (Staged.stage @@ fun () ->
    ignore (Ace_ckpt.Snapshot.decode (Lazy.force data)))

(* Serve wire codec: what one daemon request costs to encode + decode —
   the per-submission protocol tax, paid once per job, off the simulation
   path entirely. *)
let serve_request_sample =
  Ace_serve.Protocol.Submit
    (Ace_serve.Protocol.job_spec ~scale:0.2 ~seed:3 ~fault_rate:0.01
       ~resilient:true ~deadline_s:30.0 ~workload:"compress"
       Ace_harness.Scheme.Hotspot)

let bench_serve_codec =
  Test.make ~name:"micro: serve request codec (encode+decode)"
    (Staged.stage @@ fun () ->
    ignore
      (Ace_serve.Protocol.decode_request
         (Ace_serve.Protocol.encode_request serve_request_sample)))

(* Pool dispatch overhead: what a (workload x variant) job pays to go
   through the queue instead of being called directly — an upper bound on
   the harness's parallelization tax, which real multi-second jobs
   amortize to nothing. *)
let bench_pool_dispatch =
  let pool = Ace_util.Pool.create ~num_domains:1 () in
  let jobs = List.init 64 (fun i -> i) in
  Test.make ~name:"micro: pool dispatch (64 trivial jobs)"
    (Staged.stage @@ fun () -> ignore (Ace_util.Pool.map pool (fun x -> x + 1) jobs))

(* Observability emission cost at each level, written exactly as producers
   are: an ungated counter bump plus gated float/event emissions.  Off must
   price like a branch; Metrics like a couple of stores; Full adds the ring
   event allocation. *)
module Obs = Ace_obs.Obs

let obs_emit_sink obs =
  let c = Obs.counter obs "bench.counter" in
  let g = Obs.gauge obs "bench.gauge" in
  let tick = ref 0 in
  Obs.set_clock obs (fun () -> !tick);
  fun () ->
    tick := !tick + 1;
    Obs.incr obs c;
    if Obs.enabled obs then Obs.set_gauge obs g (float_of_int !tick);
    if Obs.tracing obs then
      Obs.record obs (Obs.Phase_enter { id = 1; name = "bench" })

let bench_obs_emit name obs =
  let emit = obs_emit_sink obs in
  Test.make ~name (Staged.stage emit)

let bench_obs_off = bench_obs_emit "micro: obs emit (off)" Obs.null
let bench_obs_metrics = bench_obs_emit "micro: obs emit (metrics)" (Obs.create Obs.Metrics)
let bench_obs_full = bench_obs_emit "micro: obs emit (full)" (Obs.create Obs.Full)

(* CI mode: measure the three levels with a plain wall-clock loop and emit
   a small JSON artifact (BENCH_obs.json), then exit without Bechamel. *)
let obs_json path =
  let iters = 2_000_000 in
  let measure obs =
    let emit = obs_emit_sink obs in
    (* warm-up *)
    for _ = 1 to 10_000 do
      emit ()
    done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      emit ()
    done;
    let t1 = Unix.gettimeofday () in
    (t1 -. t0) *. 1e9 /. float_of_int iters
  in
  let off = measure Obs.null in
  let metrics = measure (Obs.create Obs.Metrics) in
  let full = measure (Obs.create Obs.Full) in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"off_ns\": %.3f, \"metrics_ns\": %.3f, \"full_ns\": %.3f, \"iters\": %d}\n"
    off metrics full iters;
  close_out oc;
  Printf.printf "wrote %s (off %.2f ns, metrics %.2f ns, full %.2f ns)\n" path
    off metrics full

(* CI mode: wall-clock + allocation measurements of the simulator's hot
   core (cache access, hierarchy data access, pool dispatch), emitted as
   BENCH_core.json.  The headline regression guard is
   [cache_access_minor_words]: the exception-free access path must allocate
   zero minor words per call. *)
let core_json path =
  let addrs = Array.init 65536 (fun _ -> 0) in
  let rng = Ace_util.Rng.create ~seed:7 in
  Array.iteri (fun i _ -> addrs.(i) <- Ace_util.Rng.int rng 1_000_000) addrs;
  let mask = Array.length addrs - 1 in
  (* [f] must close over its subject and allocate nothing itself; addresses
     come from a pre-filled array so the RNG's boxed int64s stay out of the
     measured loop. *)
  let measure_ns_and_words iters f =
    for i = 1 to 65536 do
      f (Array.unsafe_get addrs (i land mask))
    done;
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for i = 1 to iters do
      f (Array.unsafe_get addrs (i land mask))
    done;
    let t1 = Unix.gettimeofday () in
    let w1 = Gc.minor_words () in
    ( (t1 -. t0) *. 1e9 /. float_of_int iters,
      (w1 -. w0) /. float_of_int iters )
  in
  let iters = 5_000_000 in
  let cache =
    Ace_mem.Cache.create { Ace_mem.Cache.size_bytes = 65536; assoc = 2; line_bytes = 64 }
  in
  let cache_ns, cache_words =
    measure_ns_and_words iters (fun addr ->
        ignore (Ace_mem.Cache.access cache addr ~write:false))
  in
  let hier = Ace_mem.Hierarchy.create () in
  let data_ns, data_words =
    measure_ns_and_words iters (fun addr ->
        ignore (Ace_mem.Hierarchy.data_access hier ~addr ~write:false))
  in
  (* Batched hierarchy access: the engine's inner-loop path since the
     batched exec_block rewrite.  Gated per access like the scalar path —
     both the ns and the minor-words reading are divided by the batch
     element count, and the words gate must stay at 0.0 (the scratch
     arrays are preallocated; steady state allocates nothing). *)
  let batch_hier = Ace_mem.Hierarchy.create () in
  let batch_n = 4096 in
  let batch_addrs = Array.init batch_n (fun i -> addrs.(i land mask)) in
  let batch_iters = 2_000 in
  for _ = 1 to 50 do
    ignore
      (Ace_mem.Hierarchy.data_access_batch batch_hier ~addrs:batch_addrs
         ~n:batch_n ~loads:3 ~stores:1)
  done;
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to batch_iters do
    ignore
      (Ace_mem.Hierarchy.data_access_batch batch_hier ~addrs:batch_addrs
         ~n:batch_n ~loads:3 ~stores:1)
  done;
  let t1 = Unix.gettimeofday () in
  let w1 = Gc.minor_words () in
  let batch_accesses = float_of_int (batch_iters * batch_n) in
  let data_batch_ns = (t1 -. t0) *. 1e9 /. batch_accesses in
  let data_batch_words = (w1 -. w0) /. batch_accesses in
  let pool = Ace_util.Pool.create ~num_domains:1 () in
  let jobs = List.init 64 (fun i -> i) in
  let batches = 2_000 in
  (for _ = 1 to 100 do
     ignore (Ace_util.Pool.map pool (fun x -> x + 1) jobs)
   done);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to batches do
    ignore (Ace_util.Pool.map pool (fun x -> x + 1) jobs)
  done;
  let t1 = Unix.gettimeofday () in
  Ace_util.Pool.shutdown pool;
  let pool_ns = (t1 -. t0) *. 1e9 /. float_of_int (batches * List.length jobs) in
  (* Serve request codec: guards the daemon's per-submission overhead (and
     that accepting jobs stays off the simulation hot path — it shares no
     state with the engine loop measured above). *)
  let codec_iters = 200_000 in
  (for _ = 1 to 10_000 do
     ignore
       (Ace_serve.Protocol.decode_request
          (Ace_serve.Protocol.encode_request serve_request_sample))
   done);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to codec_iters do
    ignore
      (Ace_serve.Protocol.decode_request
         (Ace_serve.Protocol.encode_request serve_request_sample))
  done;
  let t1 = Unix.gettimeofday () in
  let serve_codec_ns = (t1 -. t0) *. 1e9 /. float_of_int codec_iters in
  (* Snapshot codec: the per-checkpoint serialization tax every durable
     run pays at each cadence boundary.  Gated in CI so the Io
     indirection (PR "storage-fault injection") stays off this path. *)
  let snap = Lazy.force checkpoint_sample in
  let snap_data = Ace_ckpt.Snapshot.encode snap in
  let snap_iters = 500 in
  let time_loop iters f =
    for _ = 1 to 20 do
      f ()
    done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let snapshot_encode_ns =
    time_loop snap_iters (fun () -> ignore (Ace_ckpt.Snapshot.encode snap))
  in
  let snapshot_decode_ns =
    time_loop snap_iters (fun () -> ignore (Ace_ckpt.Snapshot.decode snap_data))
  in
  (* The passthrough Io backend is a record of closures built once at
     module init: a call through it must allocate nothing beyond the
     syscall wrapper itself.  [exists] bottoms out in a C stub, so any
     nonzero reading here means the dispatch layer started boxing. *)
  let io_passthrough_minor_words =
    let probe = Filename.concat (Filename.get_temp_dir_name ()) "ace_bench_absent" in
    let io_iters = 1_000_000 in
    for _ = 1 to 10_000 do
      ignore (Ace_util.Io.exists Ace_util.Io.real probe)
    done;
    let w0 = Gc.minor_words () in
    for _ = 1 to io_iters do
      ignore (Ace_util.Io.exists Ace_util.Io.real probe)
    done;
    (Gc.minor_words () -. w0) /. float_of_int io_iters
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"cache_access_ns\": %.3f, \"cache_access_minor_words\": %.6f, \
     \"data_access_ns\": %.3f, \"data_access_minor_words\": %.6f, \
     \"data_access_batch_ns\": %.3f, \"data_access_batch_minor_words\": %.6f, \
     \"pool_dispatch_ns_per_job\": %.1f, \"serve_codec_ns\": %.1f, \
     \"snapshot_encode_ns\": %.1f, \"snapshot_decode_ns\": %.1f, \
     \"io_passthrough_minor_words\": %.6f, \
     \"iters\": %d}\n"
    cache_ns cache_words data_ns data_words data_batch_ns data_batch_words
    pool_ns serve_codec_ns snapshot_encode_ns snapshot_decode_ns
    io_passthrough_minor_words iters;
  close_out oc;
  Printf.printf
    "wrote %s (cache access %.2f ns / %.4f minor words, data access %.2f ns, \
     batched %.2f ns / %.4f minor words, pool dispatch %.0f ns/job, serve \
     codec %.0f ns/req, snapshot encode %.0f ns / decode %.0f ns, io \
     passthrough %.4f minor words)\n"
    path cache_ns cache_words data_ns data_batch_ns data_batch_words pool_ns
    serve_codec_ns snapshot_encode_ns snapshot_decode_ns
    io_passthrough_minor_words

(* CI mode: wall-clock of a full vs sampled run on a long synthetic
   workload (the fast-forward win scales with phase repetition), emitted
   as BENCH_sample.json.  CI gates the speedup at >= 10x and requires the
   sampled run's architectural instruction count to equal the full
   run's exactly. *)
let sample_json path =
  let params =
    { Ace_workloads.Synthetic.default with phase_repeats = 2000 }
  in
  let w = Ace_workloads.Synthetic.workload ~name:"sample-bench" params in
  let scheme = Ace_harness.Scheme.Hotspot in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let full, full_s = time (fun () -> Ace_harness.Run.run ~seed:1 w scheme) in
  let sampled, sampled_s =
    time (fun () ->
        Ace_harness.Run.run ~seed:1 ~sample:Ace_sample.Sample.default_config w
          scheme)
  in
  let speedup = full_s /. sampled_s in
  let spliced =
    match sampled.Ace_harness.Run.sample with
    | Some s -> s.Ace_sample.Sample.spliced_instrs
    | None -> 0
  in
  (* Many-hotspot workload: 181 promoted methods instead of 37, so some
     tuner is mid-campaign for most of the run.  The splice fraction here
     is what the scoped quiescence guard buys — under the old global gate
     it collapses to almost nothing.  CI gates the fraction against the
     recorded pre-scoping baseline (it must at least double). *)
  let mh_params =
    {
      Ace_workloads.Synthetic.default with
      n_phases = 12;
      l1_methods_per_phase = 6;
      phase_repeats = 24;
      setup_calls = 3;
    }
  in
  let mh = Ace_workloads.Synthetic.workload ~name:"sample-bench-mh" mh_params in
  let mh_res, mh_s =
    time (fun () ->
        Ace_harness.Run.run ~seed:1 ~sample:Ace_sample.Sample.default_config mh
          scheme)
  in
  let mh_spliced =
    match mh_res.Ace_harness.Run.sample with
    | Some s -> s.Ace_sample.Sample.spliced_instrs
    | None -> 0
  in
  let mh_frac =
    float_of_int mh_spliced /. float_of_int (max 1 mh_res.Ace_harness.Run.instrs)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"full_s\": %.3f, \"sampled_s\": %.3f, \"speedup\": %.2f, \
     \"instrs\": %d, \"instrs_match\": %b, \"spliced_instrs\": %d, \
     \"mh_instrs\": %d, \"mh_spliced_instrs\": %d, \"mh_spliced_frac\": %.4f, \
     \"mh_sampled_s\": %.3f}\n"
    full_s sampled_s speedup full.Ace_harness.Run.instrs
    (full.Ace_harness.Run.instrs = sampled.Ace_harness.Run.instrs)
    spliced mh_res.Ace_harness.Run.instrs mh_spliced mh_frac mh_s;
  close_out oc;
  Printf.printf
    "wrote %s (full %.2fs, sampled %.2fs, speedup %.1fx, %d of %d instrs \
     spliced; many-hotspot %.1f%% spliced in %.2fs)\n"
    path full_s sampled_s speedup spliced sampled.Ace_harness.Run.instrs
    (100.0 *. mh_frac) mh_s

(* ------------------------------------------------------------------ *)
(* One Test.make per table/figure: the experiment's real code path on a
   reduced-scale context (fresh context per run so memoization does not
   short-circuit the measurement).                                     *)

let bench_scale = 0.05

let mini_workloads =
  [ Ace_workloads.Compress.workload; Ace_workloads.Mtrt.workload ]

let experiment_test name f =
  Test.make ~name:("exp: " ^ name)
    (Staged.stage @@ fun () ->
    let ctx =
      Ace_harness.Experiments.create ~scale:bench_scale ~workloads:mini_workloads ()
    in
    ignore (f ctx))

let experiment_tests =
  [
    experiment_test "table1" Ace_harness.Experiments.table1;
    experiment_test "table2" (fun _ -> Ace_harness.Experiments.table2 ());
    experiment_test "table3" (fun _ -> Ace_harness.Experiments.table3 ());
    experiment_test "fig1" Ace_harness.Experiments.fig1;
    experiment_test "table4" Ace_harness.Experiments.table4;
    experiment_test "table5" Ace_harness.Experiments.table5;
    experiment_test "table6" Ace_harness.Experiments.table6;
    experiment_test "fig3" Ace_harness.Experiments.fig3;
    experiment_test "fig4" Ace_harness.Experiments.fig4;
    experiment_test "ablation-decoupling" Ace_harness.Experiments.ablation_decoupling;
    experiment_test "ablation-thresholds" Ace_harness.Experiments.ablation_thresholds;
    experiment_test "ext-issue-queue" Ace_harness.Experiments.extension_issue_queue;
    experiment_test "ext-prediction" Ace_harness.Experiments.extension_prediction;
    experiment_test "ext-bbv-predictor" Ace_harness.Experiments.extension_bbv_predictor;
    experiment_test "resilience" Ace_harness.Experiments.resilience;
    experiment_test "stability" Ace_harness.Experiments.stability;
  ]

let run_bechamel () =
  let tests =
    Test.make_grouped ~name:"ace"
      ([
         bench_cache_access; bench_cache_resize; bench_engine_1m;
         bench_hw_request_clean; bench_hw_request_faulty;
         bench_snapshot_encode; bench_snapshot_decode;
         bench_serve_codec; bench_pool_dispatch;
         bench_obs_off; bench_obs_metrics; bench_obs_full;
       ]
      @ experiment_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Bechamel estimates (monotonic clock, ns/run):";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let cell =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.sprintf "%12.0f ns/run" est
        | Some ests ->
            String.concat ", " (List.map (Printf.sprintf "%.0f") ests)
        | None -> "(no estimate)"
      in
      rows := (name, cell) :: !rows)
    results;
  List.iter
    (fun (name, cell) -> Printf.printf "  %-36s %s\n" name cell)
    (List.sort compare !rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Full-scale reproduction of every table and figure.                  *)

let run_reproduction () =
  print_endline "==============================================================";
  print_endline " Full reproduction (scale 1.0, seed 1) - paper tables/figures";
  print_endline "==============================================================";
  let ctx = Ace_harness.Experiments.create ~scale:1.0 ~seed:1 () in
  List.iter
    (fun (name, tbl) ->
      Printf.printf "== %s ==\n" name;
      Ace_util.Table.print tbl;
      print_newline ())
    (Ace_harness.Experiments.all ctx)

let () =
  let rec find_flag name i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else find_flag name (i + 1)
  in
  match
    ( find_flag "--obs-json" 1,
      find_flag "--core-json" 1,
      find_flag "--sample-json" 1 )
  with
  | Some path, _, _ -> obs_json path
  | None, Some path, _ -> core_json path
  | None, None, Some path -> sample_json path
  | None, None, None ->
      let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
      run_bechamel ();
      if not quick then run_reproduction ()
