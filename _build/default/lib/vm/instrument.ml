type kind = Plain | Profiling | Tuning | Configured | Configured_sampling

let entry_instrs = function
  | Plain -> 0
  | Profiling -> 8
  | Tuning -> 40 (* DO-database lookup, list fetch, control-register writes *)
  | Configured -> 12 (* control-register writes only *)
  | Configured_sampling -> 12

let exit_instrs = function
  | Plain -> 0
  | Profiling -> 12
  | Tuning -> 30 (* gather counters, store into the DO database *)
  | Configured -> 0
  | Configured_sampling -> 10 (* amortized cost of occasional sampling *)

let to_string = function
  | Plain -> "plain"
  | Profiling -> "profiling"
  | Tuning -> "tuning"
  | Configured -> "configured"
  | Configured_sampling -> "configured+sampling"
