lib/vm/do_database.ml: Ace_util Array Instrument List Seq
