lib/vm/do_database.mli: Ace_util Instrument
