lib/vm/profile.mli:
