lib/vm/engine.mli: Ace_cpu Ace_isa Ace_mem Do_database Profile
