lib/vm/engine.ml: Ace_cpu Ace_isa Ace_mem Ace_util Array Do_database List Profile
