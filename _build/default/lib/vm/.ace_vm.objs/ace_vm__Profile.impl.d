lib/vm/profile.ml: Ace_power
