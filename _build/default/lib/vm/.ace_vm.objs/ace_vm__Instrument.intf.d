lib/vm/instrument.mli:
