lib/vm/instrument.ml:
