(** Instrumentation stubs the JIT compiler plants at hotspot boundaries
    (Figure 2 of the paper), modelled by their instruction cost.

    The engine executes the entry stub before an invocation's profile window
    opens and the exit stub after it closes, charging their cycles to the
    global clock — this is how the scheme's software overhead shows up in
    Figure 4's slowdown. *)

type kind =
  | Plain  (** No ACE instrumentation. *)
  | Profiling
      (** Invocation counting and per-invocation statistics gathering (the
          initial state of every detected hotspot). *)
  | Tuning
      (** Entry: fetch the next configuration from the DO database and write
          the control registers; exit: gather and store performance
          characteristics. *)
  | Configured
      (** Entry: set the known most-energy-efficient configuration. *)
  | Configured_sampling
      (** [Configured] plus occasional statistics gathering at exits to
          detect behaviour change (re-tune trigger). *)

val entry_instrs : kind -> int
val exit_instrs : kind -> int

val to_string : kind -> string
