type t = {
  instrs : int;
  cycles : float;
  l1d_accesses : int;
  l1d_misses : int;
  l2_accesses : int;
  l2_misses : int;
}

let ipc t = if t.cycles <= 0.0 then 0.0 else float_of_int t.instrs /. t.cycles

let l1d_energy_nj t ~size_bytes ~leak_cycles =
  (float_of_int t.l1d_accesses
  *. Ace_power.Energy_model.access_energy_nj Ace_power.Energy_model.L1d ~size_bytes)
  +. (leak_cycles
     *. Ace_power.Energy_model.leakage_nj_per_cycle Ace_power.Energy_model.L1d
          ~size_bytes)

let l2_energy_nj t ~size_bytes ~leak_cycles =
  (float_of_int t.l2_accesses
  *. Ace_power.Energy_model.access_energy_nj Ace_power.Energy_model.L2 ~size_bytes)
  +. (leak_cycles
     *. Ace_power.Energy_model.leakage_nj_per_cycle Ace_power.Energy_model.L2
          ~size_bytes)
