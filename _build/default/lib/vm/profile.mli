(** Per-invocation performance profile.

    Gathered by the engine between a method's entry and exit — the data the
    paper's *profiling code* collects at hotspot exits.  All fields are
    inclusive of callees (a hotspot's behaviour includes its nested
    hotspots). *)

type t = {
  instrs : int;  (** Program instructions retired during the invocation. *)
  cycles : float;  (** Cycles consumed, including instrumentation stubs. *)
  l1d_accesses : int;
  l1d_misses : int;
  l2_accesses : int;
  l2_misses : int;
}

val ipc : t -> float
(** Instructions per cycle; 0 when no cycles elapsed. *)

val l1d_energy_nj : t -> size_bytes:int -> leak_cycles:float -> float
(** Energy this invocation would cost the L1D at the given size: dynamic
    access energy plus leakage over [leak_cycles].  Used by tuners to rank
    configurations. *)

val l2_energy_nj : t -> size_bytes:int -> leak_cycles:float -> float
