(** Analytical cache energy model (Wattch/CACTI-style, at 1 GHz and 2 V).

    Dynamic energy per access grows sublinearly with capacity (longer
    bitlines and wordlines, more subbanks): we use [E = alpha * size_kb^0.7],
    the exponent CACTI reports for small-to-medium SRAM arrays.  Leakage
    power is proportional to capacity.  The absolute constants are
    calibrated to Wattch's 0.18 um numbers for the paper's baseline
    geometries; what matters for the reproduction is the *ratio* across
    sizes, which the functional form fixes:

    - shrinking the L1D from 64 KB to 8 KB cuts per-access energy ~4.3x,
    - shrinking the L2 from 1 MB to 128 KB cuts leakage 8x.

    Dynamic energy dominates the (frequently accessed) L1D; leakage
    dominates the (large, rarely accessed) L2 — so L1D savings track the
    access-weighted average size while L2 savings track the time-weighted
    average size, exactly the structure the paper's Figure 3 relies on. *)

type family = L1i | L1d | L2

val access_energy_nj : family -> size_bytes:int -> float
(** Energy of one read or write access, in nanojoules. *)

val leakage_nj_per_cycle : family -> size_bytes:int -> float
(** Static energy per clock cycle at the model's voltage/temperature. *)

val line_transfer_nj : family -> float
(** Energy to move one cache line to the next level (used for dirty
    writebacks during reconfiguration flushes). *)

val family_name : family -> string
