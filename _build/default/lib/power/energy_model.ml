type family = L1i | L1d | L2

(* Calibration anchors (nJ at the baseline geometry, 0.18 um, 2 V):
   L1 64 KB access ~0.5 nJ, L2 1 MB access ~2.5 nJ (Wattch);
   leakage 20 mW for a 64 KB L1, 300 mW for a 1 MB L2 (=> nJ/cycle at
   1 GHz).  The size exponent for dynamic energy is 0.7 (CACTI). *)

let dynamic_exponent = 0.7

let access_anchor = function
  | L1i | L1d -> (64.0, 0.5) (* size_kb, nJ *)
  | L2 -> (1024.0, 2.5)

let leakage_anchor = function
  | L1i | L1d -> (64.0, 0.020) (* size_kb, nJ/cycle *)
  | L2 -> (1024.0, 0.300)

let access_energy_nj family ~size_bytes =
  let size_kb = float_of_int size_bytes /. 1024.0 in
  let anchor_kb, anchor_nj = access_anchor family in
  anchor_nj *. ((size_kb /. anchor_kb) ** dynamic_exponent)

let leakage_nj_per_cycle family ~size_bytes =
  let size_kb = float_of_int size_bytes /. 1024.0 in
  let anchor_kb, anchor_nj = leakage_anchor family in
  anchor_nj *. (size_kb /. anchor_kb)

let line_transfer_nj = function
  | L1i | L1d -> 1.2 (* 64 B line into the L2 *)
  | L2 -> 4.0 (* 128 B line onto the memory bus *)

let family_name = function L1i -> "L1I" | L1d -> "L1D" | L2 -> "L2"
