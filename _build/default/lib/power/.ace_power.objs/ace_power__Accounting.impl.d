lib/power/accounting.ml: Energy_model
