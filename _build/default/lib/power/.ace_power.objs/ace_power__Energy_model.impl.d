lib/power/energy_model.ml:
