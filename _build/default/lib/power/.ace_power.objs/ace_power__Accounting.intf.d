lib/power/accounting.mli: Energy_model
