lib/power/energy_model.mli:
