lib/harness/experiments.mli: Ace_util Ace_workloads Run Scheme
