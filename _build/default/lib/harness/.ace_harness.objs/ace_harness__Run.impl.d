lib/harness/run.ml: Ace_bbv Ace_core Ace_mem Ace_power Ace_vm Ace_workloads Scheme
