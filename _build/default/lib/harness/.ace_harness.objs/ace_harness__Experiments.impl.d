lib/harness/experiments.ml: Ace_core Ace_cpu Ace_util Ace_workloads Array Float Hashtbl List Printf Run Scheme
