lib/harness/scheme.ml:
