lib/harness/run.mli: Ace_core Ace_workloads Scheme
