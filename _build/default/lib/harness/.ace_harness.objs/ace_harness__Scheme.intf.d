lib/harness/scheme.mli:
