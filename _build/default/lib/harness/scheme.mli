(** The three resource-management schemes the paper compares. *)

type t =
  | Fixed_baseline
      (** Caches pinned at maximum sizes (the paper's energy baseline). *)
  | Hotspot  (** The DO-based ACE management framework (the contribution). *)
  | Bbv  (** BBV phase tracking + all-combination tuning (prior art). *)

val name : t -> string
val of_string : string -> t option
val all : t list
