type t = Fixed_baseline | Hotspot | Bbv

let name = function
  | Fixed_baseline -> "baseline"
  | Hotspot -> "hotspot"
  | Bbv -> "bbv"

let of_string = function
  | "baseline" | "fixed" -> Some Fixed_baseline
  | "hotspot" | "do" -> Some Hotspot
  | "bbv" -> Some Bbv
  | _ -> None

let all = [ Fixed_baseline; Hotspot; Bbv ]
