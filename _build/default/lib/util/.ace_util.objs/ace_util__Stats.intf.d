lib/util/stats.mli:
