lib/util/table.mli:
