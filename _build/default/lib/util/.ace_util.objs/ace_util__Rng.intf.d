lib/util/rng.mli:
