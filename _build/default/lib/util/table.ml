type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ~columns =
  {
    headers = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    rows = [];
  }

let n_columns t = List.length t.headers

let add_row t cells =
  let n = n_columns t in
  let len = List.length cells in
  if len > n then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (n - len) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let n = n_columns t in
  let widths = Array.make n 0 in
  let account cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  account t.headers;
  List.iter (function Cells cs -> account cs | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad i c =
    let w = widths.(i) in
    let gap = w - String.length c in
    match t.aligns.(i) with
    | Left -> c ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ c
  in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let emit_rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  emit_rule ();
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells cs -> emit_cells cs | Separator -> emit_rule ()) rows;
  emit_rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals (x *. 100.0)

let cell_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
