(** Minimal ASCII table renderer for reproducing the paper's tables on
    stdout.  Columns are sized to their widest cell; the first row may be
    marked as a header, which draws a separator beneath it. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given header labels and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Append a data row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Append a horizontal rule (used before summary rows such as averages). *)

val render : t -> string
(** Render to a string, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float with the given number of decimals (default 2). *)

val cell_pct : ?decimals:int -> float -> string
(** Format a fraction as a percentage string, e.g. [0.47] -> ["47.0%"]
    (default 1 decimal). *)

val cell_int : int -> string
(** Format an integer with thousands separators, e.g. [9830000000] ->
    ["9,830,000,000"]. *)
