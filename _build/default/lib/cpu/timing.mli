(** First-order out-of-order timing model.

    The engine executes one basic block at a time.  The block's cycles are:

    {v
      cycles = instrs / min(ilp * quality, width)          -- issue-bound core
             + exposed_mem_penalty * memory_overlap        -- miss stalls
             + mispredicted_branches * mispredict_penalty  -- control stalls
    v}

    where [exposed_mem_penalty] is the sum over the block's memory accesses
    of (latency - L1 hit latency), supplied by the caller from the hierarchy,
    and [quality] is the JIT code-quality multiplier.  This reproduces the
    cache-configuration sensitivity that drives the paper's tuning decisions:
    a configuration's relative IPC across program regions comes entirely from
    its miss behaviour there. *)

type t

val create : Machine.t -> t

val machine : t -> Machine.t

val block_cycles :
  t ->
  instrs:int ->
  ilp:float ->
  quality:float ->
  exposed_mem_cycles:int ->
  mispredict_rate:float ->
  float
(** Cycles consumed by one execution of a block.  Fractional cycles are
    returned so short blocks accumulate without systematic rounding bias;
    the engine keeps the global cycle count as a float. *)

val overhead_cycles : t -> instrs:int -> float
(** Cycles for instrumentation stubs (tuning/profiling/configuration code):
    straight-line, cache-resident code executed at [width / 2] IPC. *)
