lib/cpu/machine.mli: Format
