lib/cpu/timing.mli: Machine
