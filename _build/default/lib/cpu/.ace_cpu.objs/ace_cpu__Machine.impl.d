lib/cpu/machine.ml: Format Printf
