lib/cpu/timing.ml: Float Machine
