type t = { machine : Machine.t }

let create machine = { machine }

let machine t = t.machine

let block_cycles t ~instrs ~ilp ~quality ~exposed_mem_cycles ~mispredict_rate =
  let m = t.machine in
  let eff_ipc = Float.min (ilp *. quality) (float_of_int m.Machine.issue_width) in
  let eff_ipc = Float.max eff_ipc 0.1 in
  let issue = float_of_int instrs /. eff_ipc in
  let mem = float_of_int exposed_mem_cycles *. m.Machine.memory_overlap in
  let ctrl =
    float_of_int instrs *. mispredict_rate
    *. float_of_int m.Machine.mispredict_penalty
  in
  issue +. mem +. ctrl

let overhead_cycles t ~instrs =
  float_of_int instrs /. (float_of_int t.machine.Machine.issue_width /. 2.0)
