(** Machine parameters from Table 2 of the paper (1 GHz, 2 V, 4-wide core). *)

type t = {
  issue_width : int;  (** Instructions issued/committed per cycle. *)
  mispredict_penalty : int;  (** Cycles per mispredicted branch. *)
  frequency_hz : float;
  voltage : float;
  memory_overlap : float;
      (** Fraction of a miss latency that the out-of-order window cannot
          hide; 1.0 = fully exposed, 0.0 = fully overlapped.  A first-order
          stand-in for the paper's detailed OoO pipeline (64-RUU, 32-LSQ). *)
}

val default : t
(** 4-wide, 3-cycle mispredict penalty, 1 GHz at 2 V, 0.6 exposed-miss
    fraction. *)

val pp : Format.formatter -> t -> unit

val rows : t -> (string * string) list
(** Parameter/value rows used to print Table 2. *)
