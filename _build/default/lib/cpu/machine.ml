type t = {
  issue_width : int;
  mispredict_penalty : int;
  frequency_hz : float;
  voltage : float;
  memory_overlap : float;
}

let default =
  {
    issue_width = 4;
    mispredict_penalty = 3;
    frequency_hz = 1.0e9;
    voltage = 2.0;
    memory_overlap = 0.6;
  }

let pp fmt t =
  Format.fprintf fmt "@[<h>%d-wide,@ %d-cycle mispredict,@ %.0f MHz @@ %.1f V@]"
    t.issue_width t.mispredict_penalty (t.frequency_hz /. 1.0e6) t.voltage

let rows t =
  [
    ("Instruction window", "64-IFQ, 64-RUU, 32-LSQ (first-order model)");
    ("Functional units", "4 intALU, 2 intMul/Div, 4 fpALU, 2 fpMul/Div");
    ( "Branch predictor",
      Printf.sprintf "2K-entry combined, %d-cycle misprediction penalty"
        t.mispredict_penalty );
    ( "Issue/Commit width",
      Printf.sprintf "%d instructions per cycle" t.issue_width );
    ( "CPU clock",
      Printf.sprintf "%.0f MHz at %.1f V" (t.frequency_hz /. 1.0e6) t.voltage );
    ("L1 I-cache", "64KB, 64B blocks, 2-way, LRU, 1-cycle hit");
    ( "L1 D-cache",
      "64KB (64/32/16/8KB, 100K-instruction reconfiguration interval), 64B \
       blocks, 2-way, LRU, 1-cycle hit" );
    ( "L2 unified cache",
      "1MB (1MB/512KB/256KB/128KB, 1M-instruction reconfiguration interval), \
       128B blocks, 4-way, LRU, 10-cycle hit" );
    ("DTLB/ITLB", "128 entries, fully set-associative");
  ]
