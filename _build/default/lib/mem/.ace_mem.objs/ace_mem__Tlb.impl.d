lib/mem/tlb.ml: Array Hashtbl
