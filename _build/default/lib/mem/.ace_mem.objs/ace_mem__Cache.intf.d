lib/mem/cache.mli: Format
