lib/mem/hierarchy.mli: Cache Format Tlb
