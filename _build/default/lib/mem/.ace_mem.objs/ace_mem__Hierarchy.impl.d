lib/mem/hierarchy.ml: Cache Format List Tlb
