lib/mem/tlb.mli:
