lib/mem/cache.ml: Array Format Printf
