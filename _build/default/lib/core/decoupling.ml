let class_bounds_with ~largest (cu : Cu.t) =
  let lo = cu.Cu.reconfig_interval / 2 in
  let hi = if largest then max_int else cu.Cu.reconfig_interval * 5 in
  (lo, hi)

let largest_interval cus =
  Array.fold_left (fun acc (c : Cu.t) -> max acc c.Cu.reconfig_interval) 0 cus

let class_bounds cu =
  (* A CU presented alone is its system's largest. *)
  class_bounds_with ~largest:true cu

let assign ~cus ~size ~decoupling =
  let max_interval = largest_interval cus in
  if decoupling then
    List.filter
      (fun i ->
        let cu = cus.(i) in
        let lo, hi =
          class_bounds_with ~largest:(cu.Cu.reconfig_interval = max_interval) cu
        in
        size >= lo && size < hi)
      (List.init (Array.length cus) Fun.id)
  else
    let min_lo =
      Array.fold_left
        (fun acc (c : Cu.t) -> min acc (c.Cu.reconfig_interval / 2))
        max_int cus
    in
    if size >= min_lo then List.init (Array.length cus) Fun.id else []

let configurations ~cus ~managed =
  let dims = List.map (fun i -> Cu.n_settings cus.(i)) managed in
  let rec product = function
    | [] -> [ [] ]
    | n :: rest ->
        let tails = product rest in
        List.concat_map (fun s -> List.map (fun tl -> s :: tl) tails) (List.init n Fun.id)
  in
  let configs = List.map Array.of_list (product dims) in
  let weight c = Array.fold_left ( + ) 0 c in
  let sorted = List.sort (fun a b -> compare (weight a, a) (weight b, b)) configs in
  Array.of_list sorted
