(** CU decoupling (§3.2.1): match each hotspot with the subset of CUs whose
    reconfiguration intervals are in the same range as the hotspot's dynamic
    size.

    A CU with interval [I] is matched by hotspots of size [I/2, 5*I); the CU
    with the largest interval additionally takes every hotspot at or above
    its lower bound (the paper's L2 hotspots are simply "longer than 500 K
    instructions").  With the paper's L1D (100 K) and L2 (1 M) this yields
    exactly the published classes: L1D hotspots in 50 K–500 K, L2 hotspots
    >= 500 K.

    With decoupling disabled (the ablation), any hotspot large enough for the
    *smallest* CU manages all CUs jointly and must explore the combinatorial
    configuration space — the straightforward strategy of §2.3. *)

val class_bounds : Cu.t -> int * int
(** [(lo, hi)] instruction-size bounds of the hotspot class served by the
    CU ([hi = max_int] for the largest-interval CU). *)

val assign : cus:Cu.t array -> size:int -> decoupling:bool -> int list
(** Indices (into [cus]) of the units a hotspot of the given dynamic size
    should tune.  Empty when the hotspot is too small for any CU. *)

val configurations : cus:Cu.t array -> managed:int list -> int array array
(** The configuration list for a hotspot managing the given CUs: the
    cartesian product of their setting indices, ordered from largest
    (safest) to smallest total capacity — [c.(k).(i)] is the setting of
    [cus.(List.nth managed i)] in the [k]-th configuration. *)
