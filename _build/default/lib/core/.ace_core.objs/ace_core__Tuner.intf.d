lib/core/tuner.mli:
