lib/core/decoupling.ml: Array Cu Fun List
