lib/core/predictor.mli: Ace_isa Cu
