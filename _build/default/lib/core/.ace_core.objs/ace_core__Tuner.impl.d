lib/core/tuner.ml: Array Float List
