lib/core/cu.ml: Ace_mem Ace_power Ace_vm Array
