lib/core/hw.ml: Cu Printf
