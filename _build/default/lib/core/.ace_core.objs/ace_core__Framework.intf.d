lib/core/framework.mli: Ace_power Ace_vm Cu Tuner
