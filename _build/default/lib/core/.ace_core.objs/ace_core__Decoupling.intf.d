lib/core/decoupling.mli: Cu
