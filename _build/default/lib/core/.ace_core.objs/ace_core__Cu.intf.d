lib/core/cu.mli: Ace_power Ace_vm
