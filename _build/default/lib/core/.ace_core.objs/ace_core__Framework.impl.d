lib/core/framework.ml: Ace_isa Ace_mem Ace_power Ace_vm Array Cu Decoupling Hw List Option Predictor Tuner
