lib/core/hw.mli: Cu
