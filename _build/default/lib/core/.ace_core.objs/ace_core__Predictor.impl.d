lib/core/predictor.ml: Ace_isa Ace_power Array Cu Hashtbl Lazy List Option
