type outcome = Unchanged | Denied | Applied of { flushed_lines : int }

let do_apply (cu : Cu.t) ~setting ~now_instrs =
  let flushed_lines = cu.Cu.apply setting in
  cu.Cu.current <- setting;
  cu.Cu.last_reconfig_instr <- now_instrs;
  cu.Cu.applied_count <- cu.Cu.applied_count + 1;
  Applied { flushed_lines }

let check_range (cu : Cu.t) setting =
  if setting < 0 || setting >= Cu.n_settings cu then
    invalid_arg (Printf.sprintf "Hw.request: setting %d out of range for %s" setting cu.Cu.name)

let request cu ~setting ~now_instrs =
  check_range cu setting;
  if setting = cu.Cu.current then Unchanged
  else if now_instrs - cu.Cu.last_reconfig_instr < cu.Cu.reconfig_interval then begin
    cu.Cu.denied_count <- cu.Cu.denied_count + 1;
    Denied
  end
  else do_apply cu ~setting ~now_instrs

let force cu ~setting ~now_instrs =
  check_range cu setting;
  if setting = cu.Cu.current then Unchanged else do_apply cu ~setting ~now_instrs
