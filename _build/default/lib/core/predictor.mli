(** Static configuration prediction — the paper's §6 future-work feature.

    "One could use the JIT compiler in the DO system to provide a good
    estimate for the resource configuration required for this hotspot
    through appropriate code analysis.  Such a feature could potentially
    completely eliminate the tuning latency and overhead."

    The JIT sees the hotspot's code, so it can analyze the data regions the
    hotspot (and its callees) touch per invocation:

    - {e streaming} accesses (sequential walks) miss a cache of any size and
      are excluded from the L1D working set;
    - random/dependent regions far larger than the largest setting also miss
      at every size and are likewise excluded;
    - what remains is the resident working set: the predictor picks the
      smallest setting that holds it with a set-conflict slack factor.

    The L2 working set additionally includes streamed regions (they are
    L2-resident across invocations) and the hotspot's code footprint.

    Prediction is used by {!Framework} when [prediction = true]: predicted
    hotspots skip the tuning phase entirely and go straight to configured
    (exit sampling still guards against mispredictions by falling back to
    measurement-based re-tuning). *)

type working_sets = {
  l1_bytes : int;  (** Resident (non-streaming, cacheable) data per invocation. *)
  l2_bytes : int;  (** Data + code footprint relevant to the L2. *)
}

val analyze : Ace_isa.Program.t -> meth_id:int -> working_sets
(** Static working-set analysis of a method, inclusive of callees. *)

val pick_setting : Cu.t -> working_set:int -> int
(** Smallest setting index whose size covers [working_set] with slack; the
    smallest setting when the working set exceeds every setting by a wide
    margin (pure streaming — misses are unavoidable, so energy wins), the
    largest when it only just exceeds the largest (partial residency still
    pays). *)

val predict : Ace_isa.Program.t -> cus:Cu.t array -> managed:int list -> meth_id:int -> int array option
(** Predicted configuration for a hotspot managing the given CUs, in
    {!Decoupling.configurations} component order.  [None] when any managed
    CU is not a cache (no static model). *)
