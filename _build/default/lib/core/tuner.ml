type params = {
  performance_threshold : float;
  retune_threshold : float;
  sample_every : int;
  invocations_per_config : int;
  warmup_invocations : int;
}

let default_params =
  {
    performance_threshold = 0.02;
    retune_threshold = 0.20;
    sample_every = 24;
    invocations_per_config = 3;
    warmup_invocations = 2;
  }

type measurement = { config : int array; energy : float; ipc : float }

type phase =
  | Tuning of {
      mutable next : int;  (* index of the configuration to test *)
      mutable pending : bool;  (* config applied at entry, awaiting its exit *)
      mutable measurements : measurement list;  (* reversed *)
      (* Accumulators averaging the current configuration over
         [invocations_per_config] invocations to suppress per-invocation
         noise (hotspot IPC CoVs run 5-10%, Table 5). *)
      mutable acc_energy : float;
      mutable acc_ipc : float;
      mutable acc_n : int;
      (* Invocations to let pass before measuring: right after promotion the
         JIT is still recompiling callees, so early invocations run with
         drifting code quality and would bias the measurements. *)
      mutable warmup_left : int;
    }
  | Configured of {
      best : int array;
      mutable ref_ipc : float;  (* IPC at the previous sample *)
      mutable exits : int;  (* exits since the last sample *)
      mutable sampling : bool;  (* this invocation's exit gathers stats *)
    }

type t = {
  params : params;
  configs : int array array;
  mutable phase : phase;
  mutable rounds : int;
  mutable tested_last_round : int;
}

let fresh_tuning ~warmup =
  Tuning
    {
      next = 0;
      pending = false;
      measurements = [];
      acc_energy = 0.0;
      acc_ipc = 0.0;
      acc_n = 0;
      warmup_left = warmup;
    }

let create params ~configs =
  if Array.length configs = 0 then invalid_arg "Tuner.create: empty configuration list";
  {
    params;
    configs;
    phase = fresh_tuning ~warmup:params.warmup_invocations;
    rounds = 1;
    tested_last_round = 0;
  }

let create_configured params ~configs ~best =
  if Array.length configs = 0 then
    invalid_arg "Tuner.create_configured: empty configuration list";
  {
    params;
    configs;
    (* ref_ipc 0 means the first sampling exit only records a reference
       (drift from 0 is defined as 0 in [on_exit]). *)
    phase = Configured { best; ref_ipc = 0.0; exits = 0; sampling = false };
    rounds = 0;
    tested_last_round = 0;
  }

type action = Set of int array | Nothing

let on_entry t =
  match t.phase with
  | Tuning ts ->
      if ts.warmup_left > 0 then Nothing
      else
        (* [next] is always in range: exhaustion is handled at exit time. *)
        Set t.configs.(ts.next)
  | Configured cs ->
      cs.sampling <- (cs.exits + 1) mod t.params.sample_every = 0;
      Set cs.best

let entry_outcome t ~applied ~changed =
  match t.phase with
  | Tuning ts -> ts.pending <- applied && not changed
  | Configured _ -> ()

let measuring t =
  match t.phase with
  | Tuning ts -> ts.pending
  | Configured cs -> cs.sampling

type transition = Continue | Finished of int array | Retuning

(* Select the most energy-efficient measured configuration whose IPC is
   within the performance threshold of the best measured IPC. *)
let select t measurements =
  let best_ipc =
    List.fold_left (fun acc m -> Float.max acc m.ipc) 0.0 measurements
  in
  let floor_ipc = best_ipc *. (1.0 -. t.params.performance_threshold) in
  let eligible = List.filter (fun m -> m.ipc >= floor_ipc) measurements in
  let pool = match eligible with [] -> measurements | _ :: _ -> eligible in
  match pool with
  | [] -> assert false (* caller guarantees at least one measurement *)
  | m0 :: rest ->
      List.fold_left (fun acc m -> if m.energy < acc.energy then m else acc) m0 rest

let finish t measurements =
  let best = select t measurements in
  t.tested_last_round <- List.length measurements;
  t.phase <-
    Configured
      { best = best.config; ref_ipc = best.ipc; exits = 0; sampling = false };
  Finished best.config

let on_exit t ~energy ~ipc =
  match t.phase with
  | Tuning ts ->
      if ts.warmup_left > 0 then begin
        ts.warmup_left <- ts.warmup_left - 1;
        Continue
      end
      else if not ts.pending then Continue
      else begin
        ts.pending <- false;
        ts.acc_energy <- ts.acc_energy +. energy;
        ts.acc_ipc <- ts.acc_ipc +. ipc;
        ts.acc_n <- ts.acc_n + 1;
        if ts.acc_n < t.params.invocations_per_config then Continue
        else begin
          let n = float_of_int ts.acc_n in
          let m =
            {
              config = t.configs.(ts.next);
              energy = ts.acc_energy /. n;
              ipc = ts.acc_ipc /. n;
            }
          in
          ts.acc_energy <- 0.0;
          ts.acc_ipc <- 0.0;
          ts.acc_n <- 0;
          ts.measurements <- m :: ts.measurements;
          ts.next <- ts.next + 1;
          let best_ipc =
            List.fold_left (fun acc x -> Float.max acc x.ipc) 0.0 ts.measurements
          in
          let degraded =
            List.length ts.measurements > 1
            && m.ipc < best_ipc *. (1.0 -. t.params.performance_threshold)
          in
          if ts.next >= Array.length t.configs || degraded then
            finish t ts.measurements
          else Continue
        end
      end
  | Configured cs ->
      cs.exits <- cs.exits + 1;
      if not cs.sampling then Continue
      else begin
        cs.sampling <- false;
        let drift =
          if cs.ref_ipc <= 0.0 then 0.0
          else Float.abs (ipc -. cs.ref_ipc) /. cs.ref_ipc
        in
        if drift > t.params.retune_threshold then begin
          t.phase <- fresh_tuning ~warmup:0;
          t.rounds <- t.rounds + 1;
          Retuning
        end
        else begin
          cs.ref_ipc <- ipc;
          Continue
        end
      end

let is_configured t = match t.phase with Configured _ -> true | Tuning _ -> false

let selected t =
  match t.phase with Configured cs -> Some cs.best | Tuning _ -> None

let tested_count t =
  match t.phase with
  | Tuning ts -> List.length ts.measurements
  | Configured _ -> t.tested_last_round

let rounds t = t.rounds
