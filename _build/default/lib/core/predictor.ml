module Program = Ace_isa.Program
module Block = Ace_isa.Block
module Pattern = Ace_isa.Pattern

type working_sets = { l1_bytes : int; l2_bytes : int }

(* Regions larger than this stream through any L1D setting; their lines do
   not stay resident long enough to count toward the working set. *)
let l1_residency_cap = 96 * 1024

(* Distinct data regions touched by one invocation of [meth_id], inclusive
   of callees.  Region identity is (base, extent); overlapping sub-windows
   of one allocation are merged by interval union. *)
let regions program ~meth_id =
  let visited = Hashtbl.create 16 in
  let intervals = ref [] in
  let code_bytes = ref 0 in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      let m = program.Program.methods.(id) in
      code_bytes := !code_bytes + m.Program.code_bytes;
      List.iter
        (function
          | Program.Exec (b, _) ->
              let p = b.Block.pattern in
              if Block.memory_ops b > 0 then
                intervals :=
                  (Pattern.base p, Pattern.base p + Pattern.footprint p, p)
                  :: !intervals
          | Program.Call (callee, _) -> visit callee)
        m.Program.body
    end
  in
  visit meth_id;
  (!intervals, !code_bytes)

(* Union length of a set of [lo, hi) intervals. *)
let union_bytes intervals =
  let sorted = List.sort compare intervals in
  let rec go acc cur_lo cur_hi = function
    | [] -> acc + (cur_hi - cur_lo)
    | (lo, hi) :: rest ->
        if lo <= cur_hi then go acc cur_lo (max cur_hi hi) rest
        else go (acc + (cur_hi - cur_lo)) lo hi rest
  in
  match sorted with [] -> 0 | (lo, hi) :: rest -> go 0 lo hi rest

let is_streaming = function
  | Pattern.Sequential _ -> true
  | Pattern.Random_in _ | Pattern.Pointer_chase _ -> false

let analyze program ~meth_id =
  let intervals, code_bytes = regions program ~meth_id in
  let resident =
    List.filter_map
      (fun (lo, hi, p) ->
        if is_streaming p || hi - lo > l1_residency_cap then None
        else Some (lo, hi))
      intervals
  in
  let all = List.map (fun (lo, hi, _) -> (lo, hi)) intervals in
  {
    l1_bytes = union_bytes resident;
    l2_bytes = union_bytes all + code_bytes;
  }

(* Set-conflict slack: a working set only fits comfortably in a
   low-associativity cache with some headroom. *)
let slack = 1.30

let pick_setting (cu : Cu.t) ~working_set =
  let sizes = cu.Cu.setting_sizes in
  let n = Array.length sizes in
  let largest = sizes.(0) in
  let needed = int_of_float (slack *. float_of_int working_set) in
  if needed > 4 * largest then n - 1 (* pure streaming: take the cheapest *)
  else if needed > largest then 0 (* partial residency: keep the largest *)
  else begin
    (* Smallest setting that still covers the working set (sizes are
       descending, so that is the largest qualifying index). *)
    let best = ref 0 in
    for i = 0 to n - 1 do
      if sizes.(i) >= needed then best := i
    done;
    !best
  end

let predict program ~cus ~managed ~meth_id =
  let ws = lazy (analyze program ~meth_id) in
  let settings =
    List.map
      (fun k ->
        let cu = cus.(k) in
        match cu.Cu.family with
        | Some Ace_power.Energy_model.L1d ->
            Some (pick_setting cu ~working_set:(Lazy.force ws).l1_bytes)
        | Some Ace_power.Energy_model.L2 ->
            Some (pick_setting cu ~working_set:(Lazy.force ws).l2_bytes)
        | Some Ace_power.Energy_model.L1i | None -> None)
      managed
  in
  if List.for_all Option.is_some settings then
    Some (Array.of_list (List.map Option.get settings))
  else None
