(** Hardware support for software-controlled adaptation (§3.4 of the paper).

    Each CU has a control register and a hardware counter holding its most
    recent reconfiguration time.  A write request arriving before the CU's
    reconfiguration interval has elapsed is silently ignored, freeing the
    software framework from tracking minimum residencies itself. *)

type outcome =
  | Unchanged  (** Requested setting is already current — no register write. *)
  | Denied  (** Guard counter dropped the request (interval not elapsed). *)
  | Applied of { flushed_lines : int }
      (** Setting changed; [flushed_lines] dirty lines were written back. *)

val request : Cu.t -> setting:int -> now_instrs:int -> outcome
(** Attempt to switch [cu] to [setting] at global instruction count
    [now_instrs].  Updates the CU's guard counter and applied/denied
    statistics.
    @raise Invalid_argument if [setting] is out of range. *)

val force : Cu.t -> setting:int -> now_instrs:int -> outcome
(** Like {!request} but bypasses the guard (used to restore the maximum
    configuration at scheme start; never available to tuning code). *)
