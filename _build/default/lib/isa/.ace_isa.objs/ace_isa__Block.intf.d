lib/isa/block.mli: Format Pattern
