lib/isa/pattern.mli: Ace_util
