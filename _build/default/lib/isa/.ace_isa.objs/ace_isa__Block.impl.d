lib/isa/block.ml: Format Pattern
