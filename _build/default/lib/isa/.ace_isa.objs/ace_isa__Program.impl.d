lib/isa/program.ml: Ace_util Array Block Format Hashtbl List Printf
