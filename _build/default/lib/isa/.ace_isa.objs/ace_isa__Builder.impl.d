lib/isa/builder.ml: Array Block List Pattern Program
