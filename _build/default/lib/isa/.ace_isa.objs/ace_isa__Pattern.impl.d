lib/isa/pattern.ml: Ace_util
