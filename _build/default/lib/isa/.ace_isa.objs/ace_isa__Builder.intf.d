lib/isa/builder.mli: Block Pattern Program
