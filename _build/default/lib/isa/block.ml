type t = {
  id : int;
  pc : int;
  instrs : int;
  loads : int;
  stores : int;
  pattern : Pattern.t;
  ilp : float;
  mispredict_rate : float;
}

let memory_ops t = t.loads + t.stores

let validate t =
  if t.instrs <= 0 then Error "block with non-positive instruction count"
  else if t.loads < 0 || t.stores < 0 then Error "negative memory-op count"
  else if memory_ops t > t.instrs then Error "more memory ops than instructions"
  else if t.ilp <= 0.0 then Error "non-positive ilp"
  else if t.mispredict_rate < 0.0 || t.mispredict_rate > 1.0 then
    Error "mispredict rate outside [0, 1]"
  else if t.pc < 0 then Error "negative pc"
  else Pattern.validate t.pattern

let pp fmt t =
  Format.fprintf fmt "@[<h>block %d@ pc=0x%x@ instrs=%d@ ld=%d@ st=%d@ ilp=%.2f@]"
    t.id t.pc t.instrs t.loads t.stores t.ilp
