(** Construction DSL for synthetic programs.

    The builder hands out unique block ids, lays out code addresses (so block
    PCs are distinct and methods occupy contiguous code regions, giving the
    instruction cache realistic locality), and allocates data regions.
    Methods must be created bottom-up — a [call] may only target an
    already-created method — which makes recursion unrepresentable by
    construction. *)

type t

val create : name:string -> t

val alloc_data : t -> bytes:int -> int
(** Reserve a data region of the given size; returns its base address.
    Regions are 64-byte aligned and never overlap. *)

val block :
  t ->
  ?ilp:float ->
  ?mispredict_rate:float ->
  ?loads:int ->
  ?stores:int ->
  instrs:int ->
  pattern:Pattern.t ->
  unit ->
  Block.t
(** Create a block with a fresh id and pc.  Defaults: [ilp] 2.0,
    [mispredict_rate] 0.01, [loads] and [stores] 0. *)

val compute_block : t -> ?ilp:float -> instrs:int -> unit -> Block.t
(** A block that touches no data memory (pure computation). *)

type handle
(** Opaque reference to a created method, usable as a call target. *)

val meth : t -> name:string -> Program.stmt list -> handle

val exec : Block.t -> int -> Program.stmt
(** [exec b n] runs block [b] [n] times; [n >= 1]. *)

val call : handle -> int -> Program.stmt
(** [call h n] invokes method [h] [n] times; [n >= 1]. *)

val handle_id : handle -> int

val finish : t -> entry:handle -> Program.t
(** Freeze the builder into a validated program.
    @raise Invalid_argument if the assembled program fails
    {!Program.validate} (a builder bug or misuse, e.g. zero repeat count). *)
