(** Basic blocks: the unit of simulated execution.

    A block summarizes a straight-line code region.  Executing it once costs
    [instrs] dynamic instructions, of which [loads] + [stores] touch data
    memory according to its {!Pattern.t}.  The [pc] identifies the block's
    terminating branch for BBV accumulation and locates the block's code for
    instruction-cache traffic.  [ilp] is the block's ideal IPC on an
    unbounded-cache machine; the timing model degrades it with miss and
    mispredict penalties. *)

type t = {
  id : int;  (** Unique per program. *)
  pc : int;  (** Byte address of the block's terminating branch. *)
  instrs : int;  (** Dynamic instructions per execution; > 0. *)
  loads : int;  (** Data-memory reads per execution. *)
  stores : int;  (** Data-memory writes per execution. *)
  pattern : Pattern.t;  (** Address source for loads and stores. *)
  ilp : float;  (** Ideal IPC in (0, issue width]. *)
  mispredict_rate : float;  (** Mispredicted branches per instruction. *)
}

val memory_ops : t -> int
(** [loads + stores]. *)

val validate : t -> (unit, string) result
(** Structural invariants: positive [instrs], non-negative memory ops that
    fit in [instrs], [ilp] and [mispredict_rate] in range, valid pattern. *)

val pp : Format.formatter -> t -> unit
