(** Whole-program representation.

    A program is a DAG of methods.  Each method body is a sequence of
    statements: execute a basic block a number of times, or call another
    method a number of times.  Nesting of calls is how workloads express the
    paper's nested-hotspot structure: an outer method whose inclusive dynamic
    size exceeds 500 K instructions is an L2-class hotspot containing
    L1D-class (50 K–500 K) callees.

    Programs must be acyclic (no recursion): the execution engine and the
    size analysis both rely on this, and the synthetic SPECjvm98 analogues do
    not need recursion to match the paper's hotspot statistics. *)

type stmt =
  | Exec of Block.t * int  (** Run the block [n] times; [n > 0]. *)
  | Call of int * int  (** Invoke method [id], [n] times; [n > 0]. *)

type meth = {
  id : int;  (** Index into the program's method array. *)
  name : string;
  code_base : int;  (** Byte address of the method's code. *)
  code_bytes : int;  (** Static code footprint (drives I-cache traffic). *)
  body : stmt list;
}

type t = {
  name : string;
  methods : meth array;  (** [methods.(i).id = i]. *)
  entry : int;  (** Id of the main method. *)
  data_bytes : int;  (** Upper bound of the data address space. *)
}

val validate : t -> (unit, string) result
(** Checks: ids are positional; entry and call targets in range; counts
    positive; no recursion (call graph is a DAG); block invariants hold;
    block ids and pcs are unique program-wide. *)

val method_count : t -> int

val block_count : t -> int
(** Number of static blocks across all methods. *)

val max_block_id : t -> int
(** Largest block id (engine sizes its cursor table from this). *)

val iter_blocks : t -> (Block.t -> unit) -> unit

val inclusive_size : t -> int array
(** [inclusive_size p] maps each method id to the dynamic instruction count
    of one invocation, including all callees.  Used by workload calibration
    and by tests; the VM estimates the same quantity online. *)

val total_dynamic_instrs : t -> int
(** Dynamic instructions of one run: [inclusive_size p].(entry). *)

val invocation_counts : t -> int array
(** Static invocation multiplicity: how many times each method is invoked in
    one program run. *)

val reachable : t -> bool array
(** Methods reachable from the entry. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line structural summary for logs and examples. *)
