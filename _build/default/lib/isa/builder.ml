type t = {
  name : string;
  mutable next_block_id : int;
  mutable next_pc : int;
  mutable next_data : int;
  mutable methods_rev : Program.meth list;
  mutable next_method_id : int;
  mutable pending_code_base : int;
      (* Code address where the method under construction began; blocks
         created since the last [meth] call belong to the next method. *)
}

let create ~name =
  {
    name;
    next_block_id = 0;
    next_pc = 0x1000;
    next_data = 0x10000;
    methods_rev = [];
    next_method_id = 0;
    pending_code_base = 0x1000;
  }

let align up x = (x + up - 1) / up * up

let alloc_data t ~bytes =
  assert (bytes > 0);
  let base = t.next_data in
  t.next_data <- align 64 (t.next_data + bytes);
  base

let block t ?(ilp = 2.0) ?(mispredict_rate = 0.01) ?(loads = 0) ?(stores = 0)
    ~instrs ~pattern () =
  let id = t.next_block_id in
  t.next_block_id <- id + 1;
  let pc = t.next_pc in
  (* 4 bytes per instruction of straight-line code.  Block starts keep
     4-byte (instruction) alignment only: coarser alignment would leave the
     low PC bits constant and collapse the BBV bucket index, which uses
     bits [6:2]. *)
  t.next_pc <- t.next_pc + (4 * instrs) + 4;
  { Block.id; pc; instrs; loads; stores; pattern; ilp; mispredict_rate }

let compute_block t ?(ilp = 3.0) ~instrs () =
  block t ~ilp ~instrs ~pattern:(Pattern.Sequential { base = 0; extent = 64; stride = 64 }) ()

type handle = int

let handle_id h = h

let exec b n =
  assert (n >= 1);
  Program.Exec (b, n)

let call h n =
  assert (n >= 1);
  Program.Call (h, n)

let meth t ~name body =
  let id = t.next_method_id in
  t.next_method_id <- id + 1;
  let code_base = t.pending_code_base in
  (* Reserve a little room for prologue/epilogue even in call-only methods.
     Keep instruction (4-byte) alignment only — see [block]. *)
  t.next_pc <- t.next_pc + 36;
  let code_bytes = max 64 (t.next_pc - code_base) in
  t.pending_code_base <- t.next_pc;
  t.methods_rev <- { Program.id; name; code_base; code_bytes; body } :: t.methods_rev;
  id

let finish t ~entry =
  let program =
    {
      Program.name = t.name;
      methods = Array.of_list (List.rev t.methods_rev);
      entry;
      data_bytes = t.next_data;
    }
  in
  match Program.validate program with
  | Ok () -> program
  | Error msg -> invalid_arg ("Builder.finish: " ^ msg)
