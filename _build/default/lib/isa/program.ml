type stmt = Exec of Block.t * int | Call of int * int

type meth = {
  id : int;
  name : string;
  code_base : int;
  code_bytes : int;
  body : stmt list;
}

type t = {
  name : string;
  methods : meth array;
  entry : int;
  data_bytes : int;
}

let method_count t = Array.length t.methods

let iter_blocks t f =
  Array.iter
    (fun m ->
      List.iter (function Exec (b, _) -> f b | Call _ -> ()) m.body)
    t.methods

let block_count t =
  let n = ref 0 in
  iter_blocks t (fun _ -> incr n);
  !n

let max_block_id t =
  let m = ref (-1) in
  iter_blocks t (fun b -> m := max !m b.Block.id);
  !m

(* Topological walk detecting recursion.  State per method: 0 unvisited,
   1 on stack, 2 done. *)
exception Cyclic of int
exception Bad_target of int

let check_acyclic t =
  let state = Array.make (method_count t) 0 in
  let rec visit id =
    if id < 0 || id >= method_count t then raise (Bad_target id);
    match state.(id) with
    | 1 -> raise (Cyclic id)
    | 2 -> ()
    | _ ->
        state.(id) <- 1;
        List.iter
          (function Call (callee, _) -> visit callee | Exec _ -> ())
          t.methods.(id).body;
        state.(id) <- 2
  in
  visit t.entry;
  (* Also visit unreachable methods so their call targets are checked. *)
  Array.iter (fun m -> if state.(m.id) = 0 then visit m.id) t.methods

let validate t =
  let n = method_count t in
  if n = 0 then Error "program with no methods"
  else if t.entry < 0 || t.entry >= n then Error "entry method out of range"
  else begin
    let result = ref (Ok ()) in
    let fail msg = if !result = Ok () then result := Error msg in
    Array.iteri
      (fun i m ->
        if m.id <> i then fail (Printf.sprintf "method %s: id %d at index %d" m.name m.id i);
        if m.code_bytes <= 0 then fail (Printf.sprintf "method %s: non-positive code size" m.name);
        List.iter
          (function
            | Exec (b, count) ->
                if count <= 0 then fail (Printf.sprintf "method %s: non-positive exec count" m.name);
                (match Block.validate b with
                | Ok () -> ()
                | Error e -> fail (Printf.sprintf "method %s, block %d: %s" m.name b.Block.id e))
            | Call (_, count) ->
                if count <= 0 then fail (Printf.sprintf "method %s: non-positive call count" m.name))
          m.body)
      t.methods;
    (match !result with
    | Ok () -> (
        (* Uniqueness of block ids and pcs. *)
        let seen_ids = Hashtbl.create 256 and seen_pcs = Hashtbl.create 256 in
        iter_blocks t (fun b ->
            if Hashtbl.mem seen_ids b.Block.id then
              fail (Printf.sprintf "duplicate block id %d" b.Block.id)
            else Hashtbl.add seen_ids b.Block.id ();
            if Hashtbl.mem seen_pcs b.Block.pc then
              fail (Printf.sprintf "duplicate block pc 0x%x" b.Block.pc)
            else Hashtbl.add seen_pcs b.Block.pc ());
        match !result with
        | Ok () -> (
            try
              check_acyclic t;
              Ok ()
            with
            | Cyclic id ->
                Error (Printf.sprintf "recursive call involving method %s" t.methods.(id).name)
            | Bad_target id -> Error (Printf.sprintf "call to unknown method id %d" id))
        | Error _ as e -> e)
    | Error _ as e -> e)
  end

let inclusive_size t =
  let n = method_count t in
  let memo = Array.make n (-1) in
  let rec size id =
    if memo.(id) >= 0 then memo.(id)
    else begin
      let total =
        List.fold_left
          (fun acc -> function
            | Exec (b, count) -> acc + (b.Block.instrs * count)
            | Call (callee, count) -> acc + (size callee * count))
          0 t.methods.(id).body
      in
      memo.(id) <- total;
      total
    end
  in
  Array.iteri (fun i _ -> ignore (size i)) t.methods;
  memo

let total_dynamic_instrs t = (inclusive_size t).(t.entry)

let invocation_counts t =
  (* Multiplicity of each method in one run: entry runs once; each call site
     multiplies the caller's multiplicity by its repeat count.  Process in
     topological (reverse-finish) order. *)
  let n = method_count t in
  let order = ref [] in
  let state = Array.make n 0 in
  let rec visit id =
    if state.(id) = 0 then begin
      state.(id) <- 1;
      List.iter (function Call (c, _) -> visit c | Exec _ -> ()) t.methods.(id).body;
      order := id :: !order
    end
  in
  visit t.entry;
  let counts = Array.make n 0 in
  counts.(t.entry) <- 1;
  List.iter
    (fun id ->
      let mult = counts.(id) in
      if mult > 0 then
        List.iter
          (function
            | Call (callee, k) -> counts.(callee) <- counts.(callee) + (mult * k)
            | Exec _ -> ())
          t.methods.(id).body)
    !order;
  counts

let reachable t =
  let seen = Array.make (method_count t) false in
  let rec visit id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter (function Call (c, _) -> visit c | Exec _ -> ()) t.methods.(id).body
    end
  in
  visit t.entry;
  seen

let pp_summary fmt t =
  Format.fprintf fmt "@[<h>%s:@ %d methods,@ %d blocks,@ %s dynamic instrs@]"
    t.name (method_count t) (block_count t)
    (Ace_util.Table.cell_int (total_dynamic_instrs t))
