(** A named synthetic workload: builder plus the paper-reported reference
    numbers the harness prints alongside measured values. *)

type t = {
  name : string;
  description : string;  (** Table 3's description. *)
  paper_dynamic_instrs : float;
      (** Dynamic instruction count reported in Table 4 (unscaled). *)
  build : scale:float -> seed:int -> Ace_isa.Program.t;
      (** [scale] multiplies top-level repetition counts; 1.0 is the default
          reproduction scale (about 1/64 of the paper's run lengths). *)
}

val build_default : t -> Ace_isa.Program.t
(** [build ~scale:1.0 ~seed:1]. *)
