(** Workload construction kit.

    A thin layer over {!Ace_isa.Builder} that the synthetic SPECjvm98
    analogues share: data-region allocation, block construction from a
    memory-behaviour description, and method construction that tracks each
    method's inclusive dynamic size so callers can pick repeat counts that
    hit a target hotspot size (the paper's 50 K–500 K L1D class and >= 500 K
    L2 class). *)

type t

val create : name:string -> seed:int -> t

val rng : t -> Ace_util.Rng.t

type region = { base : int; extent : int }

val data_region : t -> kb:int -> region
(** Allocate a fresh [kb]-kilobyte data region. *)

val sub_region : t -> region -> at_kb:int -> kb:int -> region
(** A [kb]-kilobyte window into an existing region starting [at_kb] from its
    base (regions may overlap deliberately, e.g. shared structures). *)

(** How a block touches memory. *)
type access =
  | No_memory
  | Stream of region * int  (** Sequential with the given byte stride. *)
  | Uniform of region  (** Random within the region. *)
  | Chase of region  (** Dependent pointer-chase walk. *)

val block :
  t ->
  ?ilp:float ->
  ?mispredict_rate:float ->
  ?store_share:float ->
  instrs:int ->
  mem_frac:float ->
  access:access ->
  unit ->
  Ace_isa.Block.t
(** A block of [instrs] instructions of which [mem_frac] are memory
    operations, [store_share] (default 0.25) of those being stores. *)

val meth : t -> name:string -> Ace_isa.Program.stmt list -> Ace_isa.Builder.handle
(** Create a method and record its inclusive dynamic size. *)

val size : t -> Ace_isa.Builder.handle -> int
(** Inclusive dynamic instructions of one invocation. *)

val exec : Ace_isa.Block.t -> int -> Ace_isa.Program.stmt
val call : Ace_isa.Builder.handle -> int -> Ace_isa.Program.stmt

val call_to_size : t -> Ace_isa.Builder.handle -> target:int -> Ace_isa.Program.stmt
(** [call h n] with [n] chosen so the calls total roughly [target]
    instructions (at least one call). *)

val scaled : scale:float -> int -> int
(** [max 1 (round (scale * n))] — for scaling repeat counts. *)

val finish : t -> entry:Ace_isa.Builder.handle -> Ace_isa.Program.t
