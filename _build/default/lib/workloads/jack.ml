(* 228_jack: a parser generator that processes its own specification 16
   times.  Characteristics from the paper: the most hotspots per instruction,
   the smallest average hotspot size and very high invocation counts — a
   flat profile of tiny methods over small grammar windows.  The AST is
   large (256 KB, pointer-chased) so L1D misses there are size-insensitive,
   and each of the 16 iterations ends with a short code-emission burst whose
   intervals are transitional (~70% stable, Figure 1). *)

let build ~scale ~seed =
  let k = Kit.create ~name:"jack" ~seed in
  let rng = Kit.rng k in
  let grammar = Kit.data_region k ~kb:48 in
  let tokens = Kit.data_region k ~kb:6 in
  let ast = Kit.data_region k ~kb:256 in
  let strings = Kit.data_region k ~kb:4 in

  (* Large family of tiny rule-matcher leaves over small grammar windows. *)
  let matchers =
    Array.init 28 (fun i ->
        let window = Kit.sub_region k grammar ~at_kb:(i mod 3 * 4) ~kb:3 in
        let instrs = 500 + Ace_util.Rng.int rng 700 in
        let b =
          Kit.block k ~ilp:1.9 ~mispredict_rate:0.025 ~instrs ~mem_frac:0.3
            ~access:(Kit.Uniform window) ()
        in
        Kit.meth k ~name:(Printf.sprintf "match_rule_%d" i) [ Kit.exec b 1 ])
  in
  let scan_token =
    let b =
      Kit.block k ~ilp:2.3 ~mispredict_rate:0.02 ~instrs:800 ~mem_frac:0.3
        ~access:(Kit.Stream (tokens, 8)) ()
    in
    Kit.meth k ~name:"scan_token" [ Kit.exec b 1 ]
  in
  let node_pool = Kit.data_region k ~kb:6 in
  let build_node =
    (* Node construction touches the small active-node pool; whole-AST
       traffic happens in the streaming emission phase. *)
    let b =
      Kit.block k ~ilp:1.5 ~instrs:1100 ~mem_frac:0.25 ~store_share:0.45
        ~access:(Kit.Uniform node_pool) ()
    in
    Kit.meth k ~name:"build_node" [ Kit.exec b 1 ]
  in
  let intern_string =
    let b =
      Kit.block k ~ilp:1.8 ~instrs:700 ~mem_frac:0.3 ~access:(Kit.Uniform strings) ()
    in
    Kit.meth k ~name:"intern_string" [ Kit.exec b 1 ]
  in

  (* L1D-class: parse one nonterminal group (~70 K). *)
  let parse_group g =
    let members = Array.sub matchers (g * 7) 7 in
    Kit.meth k
      ~name:(Printf.sprintf "parse_group_%d" g)
      (List.concat_map
         (fun m -> [ Kit.call scan_token 3; Kit.call m 6; Kit.call build_node 2 ])
         (Array.to_list members)
      @ [ Kit.call intern_string 8 ])
  in
  let groups = Array.init 4 parse_group in

  (* L2-class: a full pass over the specification (~590 K). *)
  let parse_spec =
    Kit.meth k ~name:"parse_spec"
      (List.map (fun g -> Kit.call g 2) (Array.to_list groups))
  in
  (* Short emission burst: distinct streaming code, sub-interval length, so
     its intervals read as transitional to BBV. *)
  let emit_parser =
    let b =
      Kit.block k ~ilp:2.4 ~instrs:5000 ~mem_frac:0.28 ~store_share:0.7
        ~access:(Kit.Stream (ast, 16)) ()
    in
    Kit.meth k ~name:"emit_parser" [ Kit.exec b 160 ]
  in

  (* Issue-queue-class hotspot (~16 K): symbol-table consolidation between
     parsing and emission — exercised by the multi-CU extension. *)
  let intern_pass =
    Kit.meth k ~name:"intern_pass"
      [ Kit.call intern_string 14; Kit.call scan_token 8 ]
  in

  (* 16 iterations, each: a ~5-interval parsing run then an emission burst. *)
  let passes = Kit.scaled ~scale 9 in
  let main =
    Kit.meth k ~name:"main"
      (List.concat
         (List.init 16 (fun _ ->
              [
                Kit.call parse_spec passes;
                Kit.call intern_pass 3;
                Kit.call emit_parser 1;
              ])))
  in
  Kit.finish k ~entry:main

let workload =
  {
    Workload.name = "jack";
    description = "A real parser-generator from Sun Microsystems.";
    paper_dynamic_instrs = 8.22e9;
    build;
  }
