(** Synthetic analogue of SPECjvm98 227_mtrt: dual-threaded ray tracer modelled as interleaved task streams over a shared 768 KB scene; the most stable benchmark and the paper's BBV-wins-the-L2 exception.

    See the implementation's header comment for the structural recipe and
    DESIGN.md section 2 for how the analogues were calibrated against the
    paper's Table 4. *)

val workload : Workload.t

val build : scale:float -> seed:int -> Ace_isa.Program.t
(** [workload.build]; exposed for direct use in tests and examples. *)
