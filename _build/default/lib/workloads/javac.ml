(* 213_javac: the JDK 1.0.2 Java compiler.  The paper's most hotspot-rich
   benchmark with by far the lowest BBV stable-phase coverage (~40%,
   Figure 1): compilation interleaves lexing, parsing, checking and code
   generation in chunks incommensurate with the 1 M-instruction sampling
   interval, so successive intervals keep presenting different block mixes.
   Positional (hotspot) detection is immune to that — each activity method
   is identified and tuned on its own boundaries regardless of alignment. *)

let build ~scale ~seed =
  let k = Kit.create ~name:"javac" ~seed in
  let rng = Kit.rng k in
  let source = Kit.data_region k ~kb:96 in
  let ast = Kit.data_region k ~kb:160 in
  let symtab = Kit.data_region k ~kb:40 in
  let constpool = Kit.data_region k ~kb:4 in
  let code = Kit.data_region k ~kb:96 in

  let leaf_family ~tag ~n ~mk = Array.init n (fun i -> mk i (Printf.sprintf "%s_%d" tag i)) in
  let lex_leaves =
    leaf_family ~tag:"lex" ~n:10 ~mk:(fun i name ->
        let instrs = 600 + Ace_util.Rng.int rng 500 in
        let b =
          Kit.block k ~ilp:2.4 ~mispredict_rate:0.02 ~instrs ~mem_frac:0.28
            ~access:(Kit.Stream (source, 8 + (4 * (i mod 3)))) ()
        in
        Kit.meth k ~name [ Kit.exec b 1 ])
  in
  let parse_leaves =
    (* Each parser production chases its own active subtree (a 16 KB window
       of the AST); the full AST is only streamed during emission. *)
    leaf_family ~tag:"parse" ~n:14 ~mk:(fun i name ->
        let window = Kit.sub_region k ast ~at_kb:(i mod 6 * 24) ~kb:16 in
        let instrs = 700 + Ace_util.Rng.int rng 800 in
        let b =
          Kit.block k ~ilp:1.7 ~mispredict_rate:0.03 ~instrs ~mem_frac:0.22
            ~store_share:0.4 ~access:(Kit.Chase window) ()
        in
        Kit.meth k ~name [ Kit.exec b 1 ])
  in
  let check_leaves =
    (* Symbol-table probes: each over a small window, but the windows of
       different checkers cover a 40 KB table, so the check activity prefers
       a mid-size L1D. *)
    leaf_family ~tag:"check" ~n:14 ~mk:(fun i name ->
        let window = Kit.sub_region k symtab ~at_kb:(i mod 3 * 8) ~kb:8 in
        let instrs = 800 + Ace_util.Rng.int rng 700 in
        let b =
          Kit.block k ~ilp:1.8 ~instrs ~mem_frac:0.30 ~access:(Kit.Uniform window) ()
        in
        Kit.meth k ~name [ Kit.exec b 1 ])
  in
  let emit_leaves =
    leaf_family ~tag:"emit" ~n:10 ~mk:(fun i name ->
        let access =
          if i mod 3 = 0 then Kit.Uniform constpool else Kit.Stream (code, 8)
        in
        let instrs = 650 + Ace_util.Rng.int rng 500 in
        let b =
          Kit.block k ~ilp:2.1 ~instrs ~mem_frac:0.3 ~store_share:0.55 ~access ()
        in
        Kit.meth k ~name [ Kit.exec b 1 ])
  in

  (* L1D-class activity methods. *)
  let activity name leaves per_leaf =
    Kit.meth k ~name
      (List.map (fun l -> Kit.call l per_leaf) (Array.to_list leaves))
  in
  let lex_unit = activity "lex_unit" lex_leaves 8 in
  let parse_unit = activity "parse_unit" parse_leaves 10 in
  let check_unit = activity "check_unit" check_leaves 12 in
  let emit_unit = activity "emit_unit" emit_leaves 9 in

  (* L2-class compilation units with unequal activity balances; their sizes
     (~1.3 M and ~1.0 M) are incommensurate with the 1 M interval. *)
  let compile_class =
    Kit.meth k ~name:"compile_class"
      [
        Kit.call lex_unit 4;
        Kit.call parse_unit 7;
        Kit.call check_unit 6;
        Kit.call emit_unit 8;
      ]
  in
  let compile_interface =
    Kit.meth k ~name:"compile_interface"
      [ Kit.call lex_unit 1; Kit.call parse_unit 2; Kit.call check_unit 4 ]
  in
  (* One long homogeneous activity (class-file writing) supplies javac's
     stable minority of intervals. *)
  let write_class_files =
    let b =
      Kit.block k ~ilp:2.6 ~instrs:6000 ~mem_frac:0.3 ~store_share:0.8
        ~access:(Kit.Stream (code, 8)) ()
    in
    Kit.meth k ~name:"write_class_files" [ Kit.exec b 110 ]
  in

  let rounds = Kit.scaled ~scale 8 in
  let main =
    Kit.meth k ~name:"main"
      (List.concat
         (List.init rounds (fun _ ->
              [
                Kit.call compile_class 2;
                Kit.call compile_interface 2;
                Kit.call compile_class 1;
                Kit.call write_class_files 6;
              ])))
  in
  Kit.finish k ~entry:main

let workload =
  {
    Workload.name = "javac";
    description = "The JDK 1.0.2 Java compiler.";
    paper_dynamic_instrs = 8.92e9;
    build;
  }
