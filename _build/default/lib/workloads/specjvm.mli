(** The synthetic SPECjvm98 suite (Table 3 of the paper; 200_check excluded
    there as it only verifies JVM functionality). *)

val all : Workload.t list
(** compress, db, jack, javac, jess, mpeg, mtrt — paper order. *)

val find : string -> Workload.t option
(** Look up by name. *)

val names : string list
