(* 209_db: in-memory database operations.  A handful of procedures cause
   nearly all data-cache misses (Shuf et al., cited in §5.2.2): record
   fetches roam a 640 KB database that no L1D holds (so downsizing adds no
   misses there), while the hot index comparisons fit in ~4 KB — which is
   why db shows the paper's largest L1D saving (66%).  The shell sort works
   a 48 KB buffer and is the one hotspot that must keep a large L1D.  Query
   and sort phases alternate in runs of a few sampling intervals. *)

let build ~scale ~seed =
  let k = Kit.create ~name:"db" ~seed in
  let rng = Kit.rng k in
  let database = Kit.data_region k ~kb:384 in
  let index = Kit.data_region k ~kb:4 in
  let sortbuf = Kit.data_region k ~kb:48 in

  let cmp_key =
    Array.init 8 (fun i ->
        let instrs = 700 + Ace_util.Rng.int rng 500 in
        let b =
          Kit.block k ~ilp:1.8 ~mispredict_rate:0.02 ~instrs ~mem_frac:0.30
            ~access:(Kit.Uniform index) ()
        in
        Kit.meth k ~name:(Printf.sprintf "cmp_key_%d" i) [ Kit.exec b 1 ])
  in
  let fetch_record =
    let b =
      Kit.block k ~ilp:1.6 ~instrs:1600 ~mem_frac:0.10
        ~access:(Kit.Uniform database) ()
    in
    Kit.meth k ~name:"fetch_record" [ Kit.exec b 1 ]
  in
  let update_record =
    let b =
      Kit.block k ~ilp:1.6 ~instrs:1800 ~mem_frac:0.10 ~store_share:0.6
        ~access:(Kit.Uniform database) ()
    in
    Kit.meth k ~name:"update_record" [ Kit.exec b 1 ]
  in
  (* Small leaves so [lookup]/[add_entry] stay below the 50 K managed
     threshold: same-class nesting inside the L1D-class batch methods would
     make two tuners fight over the L1D. *)
  let lookup =
    Kit.meth k ~name:"lookup"
      (List.map (fun c -> Kit.call c 5) (Array.to_list cmp_key)
      @ [ Kit.call fetch_record 2 ])
  in
  let add_entry =
    Kit.meth k ~name:"add_entry"
      (List.map (fun c -> Kit.call c 3) (Array.to_list cmp_key)
      @ [ Kit.call update_record 2 ])
  in
  let shell_sort_pass =
    let b =
      Kit.block k ~ilp:1.7 ~mispredict_rate:0.03 ~instrs:2200 ~mem_frac:0.36
        ~store_share:0.45 ~access:(Kit.Uniform sortbuf) ()
    in
    Kit.meth k ~name:"shell_sort_pass" [ Kit.exec b 1 ]
  in

  (* L1D-class hotspots (~90-160 K each, no same-class nesting). *)
  let run_queries =
    Kit.meth k ~name:"run_queries" [ Kit.call lookup 3; Kit.call fetch_record 8 ]
  in
  let sort_results =
    Kit.meth k ~name:"sort_results"
      [ Kit.call shell_sort_pass 40; Kit.call fetch_record 8 ]
  in
  let modify_db =
    Kit.meth k ~name:"modify_db" [ Kit.call add_entry 4 ]
  in

  (* L2-class hotspots: operation batches (~700-900 K). *)
  let query_batch = Kit.meth k ~name:"query_batch" [ Kit.call run_queries 6 ] in
  let sort_batch =
    Kit.meth k ~name:"sort_batch" [ Kit.call sort_results 5; Kit.call modify_db 2 ]
  in
  let read_db =
    let b =
      Kit.block k ~ilp:2.5 ~instrs:8000 ~mem_frac:0.30 ~store_share:0.5
        ~access:(Kit.Stream (database, 16)) ()
    in
    Kit.meth k ~name:"read_db" [ Kit.exec b 70 ]
  in

  (* Query runs of ~4 intervals alternating with sort runs of ~2. *)
  let rounds = Kit.scaled ~scale 7 in
  let main =
    Kit.meth k ~name:"main"
      (Kit.call read_db 2
      :: List.concat
           (List.init rounds (fun _ ->
                [ Kit.call query_batch 12; Kit.call sort_batch 4 ])))
  in
  Kit.finish k ~entry:main

let workload =
  {
    Workload.name = "db";
    description = "Data management benchmarking software written by IBM.";
    paper_dynamic_instrs = 8.78e9;
    build;
  }
