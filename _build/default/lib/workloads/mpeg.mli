(** Synthetic analogue of SPECjvm98 222_mpegaudio: MP3 decoding — compute-dominated, tiny hot tables, extremely regular frames.

    See the implementation's header comment for the structural recipe and
    DESIGN.md section 2 for how the analogues were calibrated against the
    paper's Table 4. *)

val workload : Workload.t

val build : scale:float -> seed:int -> Ace_isa.Program.t
(** [workload.build]; exposed for direct use in tests and examples. *)
