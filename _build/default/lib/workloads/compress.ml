(* 201_compress: LZW compression.  Streaming passes over the input/output
   buffers plus small, very hot hash/dictionary tables.  Streams defeat any
   L1D size while the hot tables fit 8 KB, so small L1D configurations win
   with negligible performance loss; the combined L2 footprint (~230 KB)
   lets the L2 drop to 256 KB.  Compression and decompression have distinct
   code (separate leaf families) and run in alternating multi-interval
   bursts, giving BBV two clearly separated, mostly stable macro phases
   (~80% stable intervals, Figure 1). *)

let build ~scale ~seed =
  let k = Kit.create ~name:"compress" ~seed in
  let rng = Kit.rng k in
  let input = Kit.data_region k ~kb:96 in
  let output = Kit.data_region k ~kb:96 in
  let hash = Kit.data_region k ~kb:6 in
  let dict = Kit.data_region k ~kb:6 in

  let probe_family tag =
    Array.init 8 (fun i ->
        let instrs = 900 + Ace_util.Rng.int rng 600 in
        let b =
          Kit.block k ~ilp:1.9 ~mispredict_rate:0.015 ~instrs ~mem_frac:0.30
            ~access:(Kit.Uniform hash) ()
        in
        Kit.meth k ~name:(Printf.sprintf "%s_probe_%d" tag i) [ Kit.exec b 1 ])
  in
  let c_probes = probe_family "comp" in
  let d_probes = probe_family "decomp" in
  let dict_leaf name =
    let b =
      Kit.block k ~ilp:1.7 ~instrs:1400 ~mem_frac:0.33 ~access:(Kit.Uniform dict) ()
    in
    Kit.meth k ~name [ Kit.exec b 1 ]
  in
  let dict_insert = dict_leaf "dict_insert" in
  let dict_lookup = dict_leaf "dict_lookup" in
  let stream_leaf name region ~store =
    let b =
      Kit.block k ~ilp:2.3 ~instrs:1000 ~mem_frac:0.28
        ~store_share:(if store then 0.8 else 0.1)
        ~access:(Kit.Stream (region, 8)) ()
    in
    Kit.meth k ~name [ Kit.exec b 1 ]
  in
  let get_bytes = stream_leaf "get_bytes" input ~store:false in
  let put_code = stream_leaf "put_code" output ~store:true in
  let get_code = stream_leaf "get_code" output ~store:false in
  let put_bytes = stream_leaf "put_bytes" input ~store:true in

  (* L1D-class hotspots: one chunk of (de)compression, ~120-150 K instrs. *)
  let compress_chunk =
    let ctrl = Kit.block k ~ilp:2.0 ~instrs:500 ~mem_frac:0.0 ~access:Kit.No_memory () in
    Kit.meth k ~name:"compress_chunk"
      ([ Kit.exec ctrl 1 ]
      @ List.concat_map
          (fun p -> [ Kit.call p 6; Kit.call get_bytes 4; Kit.call dict_insert 2 ])
          (Array.to_list c_probes)
      @ [ Kit.call put_code 30 ])
  in
  let decompress_chunk =
    let ctrl = Kit.block k ~ilp:2.1 ~instrs:600 ~mem_frac:0.0 ~access:Kit.No_memory () in
    Kit.meth k ~name:"decompress_chunk"
      ([ Kit.exec ctrl 1 ]
      @ List.map (fun p -> Kit.call p 5) (Array.to_list d_probes)
      @ [ Kit.call get_code 26; Kit.call put_bytes 26; Kit.call dict_lookup 10 ])
  in

  (* L2-class hotspots: a full pass over the input (~600-700 K). *)
  let reset =
    let b =
      Kit.block k ~ilp:2.6 ~instrs:3000 ~mem_frac:0.30 ~store_share:0.9
        ~access:(Kit.Stream (hash, 64)) ()
    in
    Kit.meth k ~name:"reset_tables" [ Kit.exec b 1 ]
  in
  let compress_pass =
    Kit.meth k ~name:"compress_pass" [ Kit.call reset 1; Kit.call compress_chunk 5 ]
  in
  let decompress_pass =
    Kit.meth k ~name:"decompress_pass" [ Kit.call reset 1; Kit.call decompress_chunk 5 ]
  in

  (* Alternating multi-interval bursts: each run of 9 passes spans ~5-6
     sampling intervals, so most intervals are stable with one transitional
     interval per phase boundary. *)
  let rounds = Kit.scaled ~scale 8 in
  let burst = 9 in
  let main =
    Kit.meth k ~name:"main"
      (List.concat
         (List.init rounds (fun _ ->
              [ Kit.call compress_pass burst; Kit.call decompress_pass burst ])))
  in
  Kit.finish k ~entry:main

let workload =
  {
    Workload.name = "compress";
    description = "A popular LZW compression program.";
    paper_dynamic_instrs = 9.83e9;
    build;
  }
