lib/workloads/synthetic.mli: Ace_isa Workload
