lib/workloads/mpeg.mli: Ace_isa Workload
