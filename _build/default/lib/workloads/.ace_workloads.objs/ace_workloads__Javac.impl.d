lib/workloads/javac.ml: Ace_util Array Kit List Printf Workload
