lib/workloads/jack.ml: Ace_util Array Kit List Printf Workload
