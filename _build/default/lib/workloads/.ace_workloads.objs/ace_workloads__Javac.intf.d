lib/workloads/javac.mli: Ace_isa Workload
