lib/workloads/specjvm.mli: Workload
