lib/workloads/mtrt.mli: Ace_isa Workload
