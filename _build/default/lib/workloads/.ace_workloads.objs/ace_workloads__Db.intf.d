lib/workloads/db.mli: Ace_isa Workload
