lib/workloads/kit.mli: Ace_isa Ace_util
