lib/workloads/synthetic.ml: Ace_util Array Kit List Printf Workload
