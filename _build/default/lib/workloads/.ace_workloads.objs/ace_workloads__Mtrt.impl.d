lib/workloads/mtrt.ml: Ace_util Array Kit List Printf Workload
