lib/workloads/kit.ml: Ace_isa Ace_util Float Hashtbl List
