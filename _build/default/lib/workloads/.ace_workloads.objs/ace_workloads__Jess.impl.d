lib/workloads/jess.ml: Ace_util Array Kit List Printf Workload
