lib/workloads/jack.mli: Ace_isa Workload
