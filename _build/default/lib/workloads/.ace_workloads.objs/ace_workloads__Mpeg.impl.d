lib/workloads/mpeg.ml: Ace_util Array Kit List Printf Workload
