lib/workloads/workload.mli: Ace_isa
