lib/workloads/compress.mli: Ace_isa Workload
