lib/workloads/jess.mli: Ace_isa Workload
