lib/workloads/workload.ml: Ace_isa
