lib/workloads/db.ml: Ace_util Array Kit List Printf Workload
