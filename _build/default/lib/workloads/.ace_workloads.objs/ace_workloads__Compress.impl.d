lib/workloads/compress.ml: Ace_util Array Kit List Printf Workload
