lib/workloads/specjvm.ml: Compress Db Jack Javac Jess List Mpeg Mtrt Workload
