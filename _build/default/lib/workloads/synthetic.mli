(** Parameterized synthetic workload generator.

    Where the SPECjvm98 analogues are hand-shaped, this generator produces a
    family of structurally similar programs from a compact parameter record —
    used by property-based tests (random but valid programs), by the examples
    (build-your-own workload) and by sensitivity benches (sweeps over hotspot
    size or locality). *)

type params = {
  n_phases : int;  (** L2-class phase methods. *)
  phase_repeats : int;  (** Invocations of each phase method. *)
  l1_methods_per_phase : int;
  l1_target_size : int;  (** Inclusive instructions per L1D-class method. *)
  leaves_per_phase : int;
  leaf_instrs : int;  (** Instructions per leaf invocation. *)
  working_set_kb : int;  (** Per-phase data region. *)
  shared_kb : int;  (** Region shared by all phases (0 = none). *)
  mem_frac : float;
  streaming_share : float;
      (** Fraction of leaves that stream rather than access randomly. *)
  ilp : float;
}

val default : params
(** A medium workload: 3 phases x 40 repeats, ~120 K L1D methods, 24 KB
    working sets — roughly 40 M instructions. *)

val build : params -> seed:int -> Ace_isa.Program.t
(** @raise Invalid_argument on nonsensical parameters (asserted). *)

val workload : ?name:string -> params -> Workload.t
(** Wrap as a {!Workload.t}; [scale] multiplies [phase_repeats]. *)
