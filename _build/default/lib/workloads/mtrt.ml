(* 227_mtrt: dual-threaded ray tracing.  Modelled as two interleaved task
   streams sharing a 768 KB scene graph (the interleaving, not the
   scheduling, is what stresses phase detection — see DESIGN.md).  Scene
   traversal misses the L1D at any size (dependent chase over 768 KB), the
   per-thread shading state is tiny, and rendering is one long homogeneous
   phase — the paper's most stable benchmark (~93% stable intervals) and
   one where BBV's L2 choice can match the hotspot scheme (Figure 3b). *)

let build ~scale ~seed =
  let k = Kit.create ~name:"mtrt" ~seed in
  let rng = Kit.rng k in
  let scene = Kit.data_region k ~kb:768 in
  let stack_a = Kit.data_region k ~kb:5 in
  let stack_b = Kit.data_region k ~kb:5 in
  let framebuf = Kit.data_region k ~kb:96 in

  let thread_leaves tag stack =
    let traverse =
      Array.init 5 (fun i ->
          let instrs = 700 + Ace_util.Rng.int rng 500 in
          let b =
            Kit.block k ~ilp:1.6 ~mispredict_rate:0.028 ~instrs ~mem_frac:0.04
              ~access:(Kit.Chase scene) ()
          in
          Kit.meth k ~name:(Printf.sprintf "traverse_%s_%d" tag i) [ Kit.exec b 1 ])
    in
    let intersect =
      let b =
        Kit.block k ~ilp:2.6 ~instrs:1300 ~mem_frac:0.30 ~access:(Kit.Uniform stack) ()
      in
      Kit.meth k ~name:("intersect_" ^ tag) [ Kit.exec b 1 ]
    in
    let shade =
      let b =
        Kit.block k ~ilp:2.9 ~instrs:1600 ~mem_frac:0.28 ~store_share:0.5
          ~access:(Kit.Uniform stack) ()
      in
      Kit.meth k ~name:("shade_" ^ tag) [ Kit.exec b 1 ]
    in
    let write_pixels =
      let b =
        Kit.block k ~ilp:2.5 ~instrs:600 ~mem_frac:0.3 ~store_share:0.9
          ~access:(Kit.Stream (framebuf, 8)) ()
      in
      Kit.meth k ~name:("write_pixels_" ^ tag) [ Kit.exec b 1 ]
    in
    (traverse, intersect, shade, write_pixels)
  in
  let trav_a, isect_a, shade_a, wp_a = thread_leaves "a" stack_a in
  let trav_b, isect_b, shade_b, wp_b = thread_leaves "b" stack_b in

  (* L1D-class: trace one tile on one thread (~110 K). *)
  let trace_tile tag traverse isect shade wp =
    Kit.meth k ~name:("trace_tile_" ^ tag)
      (List.concat_map
         (fun t -> [ Kit.call t 8; Kit.call isect 6; Kit.call shade 4 ])
         (Array.to_list traverse)
      @ [ Kit.call wp 6 ])
  in
  let tile_a = trace_tile "a" trav_a isect_a shade_a wp_a in
  let tile_b = trace_tile "b" trav_b isect_b shade_b wp_b in

  (* L2-class: a band of tiles, the two threads interleaved (~900 K).  The
     a/b interleave period (~110 K) is far below the sampling interval, so
     every rendering interval sees the same thread mix — mtrt is the most
     stable benchmark in Figure 1. *)
  let render_band =
    Kit.meth k ~name:"render_band"
      [
        Kit.call tile_a 1; Kit.call tile_b 1; Kit.call tile_a 1; Kit.call tile_b 1;
        Kit.call tile_a 1; Kit.call tile_b 1; Kit.call tile_a 1; Kit.call tile_b 1;
      ]
  in
  (* Rare scene (re)load burst — the only phase change mtrt has. *)
  let load_scene =
    let b =
      Kit.block k ~ilp:2.4 ~instrs:7000 ~mem_frac:0.32 ~store_share:0.8
        ~access:(Kit.Stream (scene, 16)) ()
    in
    Kit.meth k ~name:"load_scene" [ Kit.exec b 60 ]
  in

  let rounds = Kit.scaled ~scale 3 in
  let main =
    Kit.meth k ~name:"main"
      (List.concat
         (List.init rounds (fun _ ->
              [ Kit.call load_scene 1; Kit.call render_band 25 ])))
  in
  Kit.finish k ~entry:main

let workload =
  {
    Workload.name = "mtrt";
    description = "A dual-threaded program that ray traces an image file.";
    paper_dynamic_instrs = 5.10e9;
    build;
  }
