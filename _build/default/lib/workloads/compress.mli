(** Synthetic analogue of SPECjvm98 201_compress: LZW compression — streaming buffers plus small hot hash/dictionary tables; the friendliest L1D-downsizing profile and a ~230 KB L2 footprint.

    See the implementation's header comment for the structural recipe and
    DESIGN.md section 2 for how the analogues were calibrated against the
    paper's Table 4. *)

val workload : Workload.t

val build : scale:float -> seed:int -> Ace_isa.Program.t
(** [workload.build]; exposed for direct use in tests and examples. *)
