(* 202_jess: a CLIPS-style rule-based expert system.  Alpha-node tests probe
   tiny per-node memories (downsizing-friendly); beta joins chase a 24 KB
   Rete network region — the hotspot that keeps a mid-size L1D.  Inference
   alternates between two rule clusters in runs of one-to-two sampling
   intervals, so jess sits in the middle of Figure 1 (~57% stable). *)

let build ~scale ~seed =
  let k = Kit.create ~name:"jess" ~seed in
  let rng = Kit.rng k in
  let facts = Kit.data_region k ~kb:176 in
  let rete = Kit.data_region k ~kb:12 in
  let agenda = Kit.data_region k ~kb:4 in

  let alpha_family tag =
    Array.init 6 (fun i ->
        let node_mem = Kit.data_region k ~kb:3 in
        let instrs = 600 + Ace_util.Rng.int rng 500 in
        let b =
          Kit.block k ~ilp:2.0 ~mispredict_rate:0.02 ~instrs ~mem_frac:0.3
            ~access:(Kit.Uniform node_mem) ()
        in
        ignore i;
        Kit.meth k ~name:(Printf.sprintf "alpha_%s_%d" tag i) [ Kit.exec b 1 ])
  in
  let beta_family tag =
    Array.init 4 (fun i ->
        let instrs = 1400 + Ace_util.Rng.int rng 900 in
        let b =
          Kit.block k ~ilp:1.4 ~mispredict_rate:0.03 ~instrs ~mem_frac:0.25
            ~access:(Kit.Chase rete) ()
        in
        Kit.meth k ~name:(Printf.sprintf "beta_%s_%d" tag i) [ Kit.exec b 1 ])
  in
  let agenda_push =
    let b =
      Kit.block k ~ilp:2.2 ~instrs:500 ~mem_frac:0.3 ~store_share:0.6
        ~access:(Kit.Uniform agenda) ()
    in
    Kit.meth k ~name:"agenda_push" [ Kit.exec b 1 ]
  in
  let fire_rule =
    let b =
      Kit.block k ~ilp:1.8 ~instrs:2000 ~mem_frac:0.20 ~store_share:0.5
        ~access:(Kit.Uniform facts) ()
    in
    Kit.meth k ~name:"fire_rule" [ Kit.exec b 1 ]
  in

  (* L1D-class: one match cycle through one rule cluster (~110 K). *)
  let match_cycle tag =
    let alphas = alpha_family tag in
    let betas = beta_family tag in
    Kit.meth k
      ~name:(Printf.sprintf "match_cycle_%s" tag)
      (List.concat_map
         (fun a -> [ Kit.call a 7; Kit.call agenda_push 2 ])
         (Array.to_list alphas)
      @ List.map (fun b -> Kit.call b 9) (Array.to_list betas))
  in
  let cycle_a = match_cycle "a" in
  let cycle_b = match_cycle "b" in

  (* L2-class: an inference round over one cluster (~740 K). *)
  let solve_round name cycle =
    Kit.meth k ~name [ Kit.call cycle 3; Kit.call fire_rule 20; Kit.call cycle 3 ]
  in
  let round_a = solve_round "solve_round_a" cycle_a in
  let round_b = solve_round "solve_round_b" cycle_b in

  (* Cluster runs of ~1.5-3 intervals, frequent boundaries. *)
  let rounds = Kit.scaled ~scale 11 in
  let main =
    Kit.meth k ~name:"main"
      (List.concat
         (List.init rounds (fun _ ->
              [ Kit.call round_a 6; Kit.call round_b 5 ])))
  in
  Kit.finish k ~entry:main

let workload =
  {
    Workload.name = "jess";
    description = "A Java version of NASA's CLIPS rule-based expert system.";
    paper_dynamic_instrs = 5.72e9;
    build;
  }
