(** Synthetic analogue of SPECjvm98 228_jack: parser generator run 16 times over its own specification — many tiny hotspots, strongly recurring phases, BBV competitive on the L2.

    See the implementation's header comment for the structural recipe and
    DESIGN.md section 2 for how the analogues were calibrated against the
    paper's Table 4. *)

val workload : Workload.t

val build : scale:float -> seed:int -> Ace_isa.Program.t
(** [workload.build]; exposed for direct use in tests and examples. *)
