let all =
  [
    Compress.workload;
    Db.workload;
    Jack.workload;
    Javac.workload;
    Jess.workload;
    Mpeg.workload;
    Mtrt.workload;
  ]

let find name = List.find_opt (fun w -> w.Workload.name = name) all

let names = List.map (fun w -> w.Workload.name) all
