(* 222_mpegaudio: MP3 decoding.  Compute-dominated (high ILP) with small,
   hot coefficient tables and streaming input — the friendliest benchmark
   for aggressive cache downsizing, and the paper's longest run.  Frame
   decoding is extremely regular (long stable runs) punctuated by short
   seek/header-scan bursts (~73% stable intervals). *)

let build ~scale ~seed =
  let k = Kit.create ~name:"mpeg" ~seed in
  let rng = Kit.rng k in
  let bitstream = Kit.data_region k ~kb:192 in
  let coeff = Kit.data_region k ~kb:4 in
  let window = Kit.data_region k ~kb:3 in
  let pcm_out = Kit.data_region k ~kb:64 in

  let huffman_decoders =
    Array.init 6 (fun i ->
        let instrs = 800 + Ace_util.Rng.int rng 400 in
        let b =
          Kit.block k ~ilp:1.8 ~mispredict_rate:0.035 ~instrs ~mem_frac:0.3
            ~access:(Kit.Stream (bitstream, 8 + (8 * (i mod 2)))) ()
        in
        Kit.meth k ~name:(Printf.sprintf "huffman_%d" i) [ Kit.exec b 1 ])
  in
  let dequantize =
    let b =
      Kit.block k ~ilp:3.0 ~instrs:1500 ~mem_frac:0.22 ~access:(Kit.Uniform coeff) ()
    in
    Kit.meth k ~name:"dequantize" [ Kit.exec b 1 ]
  in
  let subband_synthesis =
    let b =
      Kit.block k ~ilp:3.2 ~mispredict_rate:0.004 ~instrs:2600 ~mem_frac:0.20
        ~access:(Kit.Uniform window) ()
    in
    Kit.meth k ~name:"subband_synthesis" [ Kit.exec b 1 ]
  in
  let write_pcm =
    let b =
      Kit.block k ~ilp:2.8 ~instrs:700 ~mem_frac:0.3 ~store_share:0.85
        ~access:(Kit.Stream (pcm_out, 8)) ()
    in
    Kit.meth k ~name:"write_pcm" [ Kit.exec b 1 ]
  in

  (* L1D-class: decode one audio frame (~65 K, matching Table 4). *)
  let decode_frame =
    Kit.meth k ~name:"decode_frame"
      (List.map (fun h -> Kit.call h 3) (Array.to_list huffman_decoders)
      @ [ Kit.call dequantize 8; Kit.call subband_synthesis 12; Kit.call write_pcm 8 ])
  in

  (* L2-class: a granule of frames (~600 K). *)
  let decode_granule =
    let hdr =
      Kit.block k ~ilp:2.0 ~instrs:1200 ~mem_frac:0.2
        ~access:(Kit.Stream (bitstream, 64)) ()
    in
    Kit.meth k ~name:"decode_granule" [ Kit.exec hdr 1; Kit.call decode_frame 9 ]
  in
  (* Short seek burst with distinct code: scans the stream for sync words.
     Sub-interval length makes its intervals transitional. *)
  let seek_sync =
    let scan =
      Kit.block k ~ilp:2.2 ~mispredict_rate:0.05 ~instrs:4000 ~mem_frac:0.35
        ~access:(Kit.Stream (bitstream, 4)) ()
    in
    Kit.meth k ~name:"seek_sync" [ Kit.exec scan 90 ]
  in

  (* Long decode runs (~7 intervals) between seek bursts. *)
  let rounds = Kit.scaled ~scale 16 in
  let main =
    Kit.meth k ~name:"main"
      (List.concat
         (List.init rounds (fun _ ->
              [ Kit.call decode_granule 12; Kit.call seek_sync 1 ])))
  in
  Kit.finish k ~entry:main

let workload =
  {
    Workload.name = "mpeg";
    description = "The core algorithm that decodes an MPEG-3 audio stream.";
    paper_dynamic_instrs = 1.09e10;
    build;
  }
