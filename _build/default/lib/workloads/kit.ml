module Builder = Ace_isa.Builder
module Block = Ace_isa.Block
module Pattern = Ace_isa.Pattern
module Program = Ace_isa.Program
module Rng = Ace_util.Rng

type t = {
  builder : Builder.t;
  rng : Rng.t;
  sizes : (int, int) Hashtbl.t;  (* handle id -> inclusive size *)
}

let create ~name ~seed =
  { builder = Builder.create ~name; rng = Rng.create ~seed; sizes = Hashtbl.create 64 }

let rng t = t.rng

type region = { base : int; extent : int }

let data_region t ~kb =
  assert (kb > 0);
  let extent = kb * 1024 in
  { base = Builder.alloc_data t.builder ~bytes:extent; extent }

let sub_region _t r ~at_kb ~kb =
  let offset = at_kb * 1024 and extent = kb * 1024 in
  assert (offset + extent <= r.extent);
  { base = r.base + offset; extent }

type access = No_memory | Stream of region * int | Uniform of region | Chase of region

let pattern_of_access = function
  | No_memory -> Pattern.Sequential { base = 0; extent = 64; stride = 64 }
  | Stream (r, stride) -> Pattern.Sequential { base = r.base; extent = r.extent; stride }
  | Uniform r -> Pattern.Random_in { base = r.base; extent = r.extent }
  | Chase r -> Pattern.Pointer_chase { base = r.base; extent = r.extent }

let block t ?(ilp = 2.0) ?(mispredict_rate = 0.01) ?(store_share = 0.25) ~instrs
    ~mem_frac ~access () =
  assert (mem_frac >= 0.0 && mem_frac <= 1.0);
  let mem_ops =
    match access with
    | No_memory -> 0
    | Stream _ | Uniform _ | Chase _ ->
        int_of_float (Float.round (mem_frac *. float_of_int instrs))
  in
  let stores = int_of_float (Float.round (store_share *. float_of_int mem_ops)) in
  let loads = mem_ops - stores in
  Builder.block t.builder ~ilp ~mispredict_rate ~loads ~stores ~instrs
    ~pattern:(pattern_of_access access) ()

let exec = Builder.exec
let call = Builder.call

let stmt_size t = function
  | Program.Exec (b, n) -> b.Block.instrs * n
  | Program.Call (h, n) -> (
      match Hashtbl.find_opt t.sizes h with
      | Some s -> s * n
      | None -> invalid_arg "Kit: call to a method not built with Kit.meth")

let meth t ~name body =
  let total = List.fold_left (fun acc s -> acc + stmt_size t s) 0 body in
  let h = Builder.meth t.builder ~name body in
  Hashtbl.replace t.sizes (Builder.handle_id h) total;
  h

let size t h =
  match Hashtbl.find_opt t.sizes (Builder.handle_id h) with
  | Some s -> s
  | None -> invalid_arg "Kit.size: unknown method"

let call_to_size t h ~target =
  let s = size t h in
  Builder.call h (max 1 (target / max 1 s))

let scaled ~scale n = max 1 (int_of_float (Float.round (scale *. float_of_int n)))

let finish t ~entry = Builder.finish t.builder ~entry
