type t = {
  name : string;
  description : string;
  paper_dynamic_instrs : float;
  build : scale:float -> seed:int -> Ace_isa.Program.t;
}

let build_default t = t.build ~scale:1.0 ~seed:1
