(** Synthetic analogue of SPECjvm98 213_javac: the JDK 1.0.2 compiler — the most hotspots and by far the lowest BBV stable-phase coverage.

    See the implementation's header comment for the structural recipe and
    DESIGN.md section 2 for how the analogues were calibrated against the
    paper's Table 4. *)

val workload : Workload.t

val build : scale:float -> seed:int -> Ace_isa.Program.t
(** [workload.build]; exposed for direct use in tests and examples. *)
