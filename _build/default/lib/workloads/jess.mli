(** Synthetic analogue of SPECjvm98 202_jess: CLIPS-style expert system — Rete matching over small node memories with a mid-size network region.

    See the implementation's header comment for the structural recipe and
    DESIGN.md section 2 for how the analogues were calibrated against the
    paper's Table 4. *)

val workload : Workload.t

val build : scale:float -> seed:int -> Ace_isa.Program.t
(** [workload.build]; exposed for direct use in tests and examples. *)
