lib/bbv/next_phase.ml: Hashtbl
