lib/bbv/scheme.ml: Ace_core Ace_mem Ace_power Ace_util Ace_vm Array Float Fun List Next_phase Tracker Vector
