lib/bbv/vector.ml: Array
