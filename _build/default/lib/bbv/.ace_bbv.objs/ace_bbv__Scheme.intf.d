lib/bbv/scheme.mli: Ace_core Ace_power Ace_vm Tracker
