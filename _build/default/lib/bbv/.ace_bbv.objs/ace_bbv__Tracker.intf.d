lib/bbv/tracker.mli:
