lib/bbv/vector.mli:
