lib/bbv/tracker.ml: Ace_util Array
