lib/bbv/next_phase.mli:
