(* Shared test helpers. *)

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_approx ?(eps = 1e-9) msg expected actual =
  if not (approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f

(* A minimal valid block. *)
let block ?(id = 0) ?(pc = 0x1000) ?(instrs = 100) ?(loads = 10) ?(stores = 5)
    ?(pattern = Ace_isa.Pattern.Random_in { base = 0; extent = 4096 })
    ?(ilp = 2.0) ?(mispredict_rate = 0.01) () =
  {
    Ace_isa.Block.id;
    pc;
    instrs;
    loads;
    stores;
    pattern;
    ilp;
    mispredict_rate;
  }

(* A minimal two-method program: main calls one worker [reps] times. *)
let tiny_program ?(reps = 10) ?(worker_instrs = 1000) () =
  let worker_block =
    block ~id:0 ~pc:0x1000 ~instrs:worker_instrs
      ~loads:(worker_instrs / 10) ~stores:(worker_instrs / 20) ()
  in
  {
    Ace_isa.Program.name = "tiny";
    methods =
      [|
        {
          Ace_isa.Program.id = 0;
          name = "worker";
          code_base = 0x1000;
          code_bytes = 4 * worker_instrs;
          body = [ Ace_isa.Program.Exec (worker_block, 1) ];
        };
        {
          Ace_isa.Program.id = 1;
          name = "main";
          code_base = 0x9000;
          code_bytes = 64;
          body = [ Ace_isa.Program.Call (0, reps) ];
        };
      |];
    entry = 1;
    data_bytes = 1 lsl 20;
  }

(* A nested program exercising hotspot size classes: leaf (~1K), middle
   (~100K: L1D class), outer (~600K: L2 class), invoked [outer_reps] times. *)
let nested_program ?(outer_reps = 40) () =
  let k = Ace_workloads.Kit.create ~name:"nested" ~seed:7 in
  let region = Ace_workloads.Kit.data_region k ~kb:4 in
  let leaf_block =
    Ace_workloads.Kit.block k ~instrs:1000 ~mem_frac:0.25
      ~access:(Ace_workloads.Kit.Uniform region) ()
  in
  let leaf =
    Ace_workloads.Kit.meth k ~name:"leaf" [ Ace_workloads.Kit.exec leaf_block 1 ]
  in
  let middle =
    Ace_workloads.Kit.meth k ~name:"middle" [ Ace_workloads.Kit.call leaf 100 ]
  in
  let outer =
    Ace_workloads.Kit.meth k ~name:"outer" [ Ace_workloads.Kit.call middle 6 ]
  in
  let main =
    Ace_workloads.Kit.meth k ~name:"main" [ Ace_workloads.Kit.call outer outer_reps ]
  in
  (Ace_workloads.Kit.finish k ~entry:main, `Leaf 0, `Middle 1, `Outer 2)

let qcheck = QCheck_alcotest.to_alcotest
