(* BBV vector, tracker, and scheme tests. *)
module Vector = Ace_bbv.Vector
module Tracker = Ace_bbv.Tracker

let test_vector_empty () =
  let v = Vector.create () in
  Alcotest.(check bool) "empty" true (Vector.is_empty v);
  let s = Vector.snapshot v in
  Tu.check_approx "all-zero snapshot" 0.0 (Array.fold_left ( +. ) 0.0 s)

let test_vector_accumulate_and_normalize () =
  let v = Vector.create ~buckets:4 () in
  (* pcs 0 and 4 land in buckets 0 and 1 ((pc >> 2) mod 4). *)
  Vector.add v ~pc:0 ~instrs:300;
  Vector.add v ~pc:4 ~instrs:100;
  let s = Vector.snapshot v in
  Tu.check_approx "bucket 0 share" 0.75 s.(0);
  Tu.check_approx "bucket 1 share" 0.25 s.(1);
  Tu.check_approx "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 s)

let test_vector_bucket_mapping () =
  let v = Vector.create ~buckets:32 () in
  (* The 2 LSBs are excluded: pcs 0..3 all land in bucket 0. *)
  Vector.add v ~pc:3 ~instrs:10;
  let s = Vector.snapshot v in
  Tu.check_approx "low bits ignored" 1.0 s.(0)

let test_vector_saturation () =
  let v = Vector.create ~buckets:2 () in
  Vector.add v ~pc:0 ~instrs:((1 lsl 24) + 5000);
  Vector.add v ~pc:4 ~instrs:1;
  let s = Vector.snapshot v in
  (* Bucket 0 saturates at 2^24 - 1 rather than growing unboundedly. *)
  Alcotest.(check bool) "saturated" true (s.(0) < 1.0 && s.(0) > 0.999)

let test_vector_clear () =
  let v = Vector.create () in
  Vector.add v ~pc:0 ~instrs:10;
  Vector.clear v;
  Alcotest.(check bool) "cleared" true (Vector.is_empty v)

let vec ~hot n =
  (* A normalized vector concentrated on bucket [hot] of [n]. *)
  Array.init n (fun i -> if i = hot then 0.9 else 0.1 /. float_of_int (n - 1))

let test_tracker_new_and_recurring () =
  let t = Tracker.create () in
  let a = Tracker.classify t (vec ~hot:0 8) in
  let b = Tracker.classify t (vec ~hot:4 8) in
  let a' = Tracker.classify t (vec ~hot:0 8) in
  Alcotest.(check bool) "distinct phases" true (a <> b);
  Alcotest.(check int) "recurring phase recognized" a a';
  Alcotest.(check int) "two signatures" 2 (Tracker.phase_count t);
  Alcotest.(check int) "three intervals" 3 (Tracker.intervals t)

let test_tracker_stability () =
  let t = Tracker.create () in
  let stable = vec ~hot:0 8 and other = vec ~hot:4 8 in
  (* A A A B A A -> stable: the first three As (run 3) and final two As (run
     2); B is transitional (run 1). *)
  ignore (Tracker.classify t stable);
  ignore (Tracker.classify t stable);
  ignore (Tracker.classify t stable);
  ignore (Tracker.classify t other);
  ignore (Tracker.classify t stable);
  ignore (Tracker.classify t stable);
  Alcotest.(check int) "stable intervals" 5 (Tracker.stable_intervals t);
  Alcotest.(check int) "transitional intervals" 1 (Tracker.transitional_intervals t)

let test_tracker_all_transitional () =
  let t = Tracker.create () in
  for i = 0 to 5 do
    ignore (Tracker.classify t (vec ~hot:i 8))
  done;
  Alcotest.(check int) "no stable runs" 0 (Tracker.stable_intervals t);
  Alcotest.(check int) "six phases" 6 (Tracker.phase_count t)

let test_tracker_run_tracking () =
  let t = Tracker.create () in
  let v = vec ~hot:2 8 in
  ignore (Tracker.classify t v);
  ignore (Tracker.classify t v);
  ignore (Tracker.classify t v);
  Alcotest.(check int) "current run" 3 (Tracker.current_run t);
  Alcotest.(check int) "phase interval count" 3
    (Tracker.phase_intervals t (Tracker.current_phase t))

let test_tracker_threshold () =
  let tight = Tracker.create ~threshold:0.01 () in
  let a = Array.make 8 0.125 in
  let b = Array.copy a in
  b.(0) <- 0.135;
  b.(1) <- 0.115;
  ignore (Tracker.classify tight a);
  ignore (Tracker.classify tight b);
  Alcotest.(check int) "tight threshold separates" 2 (Tracker.phase_count tight);
  let loose = Tracker.create ~threshold:0.5 () in
  ignore (Tracker.classify loose a);
  ignore (Tracker.classify loose b);
  Alcotest.(check int) "loose threshold merges" 1 (Tracker.phase_count loose)

let test_tracker_growth () =
  let t = Tracker.create () in
  for i = 0 to 99 do
    ignore (Tracker.classify t (Ace_util.Stats.normalize_l1 (Array.init 64 (fun j -> if j = i mod 64 then 1.0 else 0.0))))
  done;
  Alcotest.(check bool) "handles many signatures" true (Tracker.phase_count t >= 60)

(* --- scheme-level behaviour on a real engine --- *)

let run_bbv program =
  let config =
    { Ace_vm.Engine.default_config with interval_instrs = Some 1_000_000; hot_threshold = 3 }
  in
  let engine = Ace_vm.Engine.create ~config program in
  let cus = [| Ace_core.Cu.l1d engine; Ace_core.Cu.l2 engine |] in
  let scheme = Ace_bbv.Scheme.attach engine ~cus in
  Ace_vm.Engine.run engine;
  Ace_bbv.Scheme.finalize scheme;
  (engine, scheme)

let test_scheme_requires_interval () =
  let engine = Ace_vm.Engine.create (Tu.tiny_program ()) in
  Alcotest.check_raises "no interval configured"
    (Invalid_argument "Bbv.Scheme.attach: engine has no sampling interval configured")
    (fun () ->
      ignore
        (Ace_bbv.Scheme.attach engine
           ~cus:[| Ace_core.Cu.l1d engine; Ace_core.Cu.l2 engine |]))

let test_scheme_tunes_stable_program () =
  (* One homogeneous phase, long enough to test all 16 configurations (the
     L2's 1 M-instruction guard makes each L2-changing trial take several
     intervals). *)
  let program = Tu.tiny_program ~reps:100_000 ~worker_instrs:1000 () in
  let _, scheme = run_bbv program in
  Alcotest.(check bool) "few phases" true (Ace_bbv.Scheme.phase_count scheme <= 3);
  Alcotest.(check int) "phase tuned" 1 (Ace_bbv.Scheme.tuned_phase_count scheme);
  Alcotest.(check bool) "most intervals in tuned phases" true
    (Ace_bbv.Scheme.intervals_in_tuned_phases scheme > 0.8);
  Alcotest.(check bool) "stable fraction high" true
    (Ace_bbv.Scheme.stable_fraction scheme > 0.9);
  Alcotest.(check bool) "16 tunings recorded" true
    (Ace_bbv.Scheme.tunings scheme >= 16)

let test_scheme_energy_accounting () =
  let program = Tu.tiny_program ~reps:20_000 ~worker_instrs:1000 () in
  let _, scheme = run_bbv program in
  match Ace_bbv.Scheme.accounting scheme 0 with
  | Some acct ->
      Alcotest.(check bool) "energy accounted" true
        (Ace_power.Accounting.total_nj acct > 0.0)
  | None -> Alcotest.fail "L1D accounting missing"

let test_scheme_cov_stats () =
  let program = Tu.tiny_program ~reps:20_000 ~worker_instrs:1000 () in
  let _, scheme = run_bbv program in
  Alcotest.(check bool) "per-phase CoV finite and small" true
    (Ace_bbv.Scheme.mean_per_phase_ipc_cov scheme < 0.5);
  Alcotest.(check bool) "inter-phase CoV non-negative" true
    (Ace_bbv.Scheme.inter_phase_ipc_cov scheme >= 0.0)

let suite =
  [
    Tu.case "vector empty" test_vector_empty;
    Tu.case "vector accumulate/normalize" test_vector_accumulate_and_normalize;
    Tu.case "vector bucket mapping" test_vector_bucket_mapping;
    Tu.case "vector saturation" test_vector_saturation;
    Tu.case "vector clear" test_vector_clear;
    Tu.case "tracker new/recurring" test_tracker_new_and_recurring;
    Tu.case "tracker stability" test_tracker_stability;
    Tu.case "tracker all transitional" test_tracker_all_transitional;
    Tu.case "tracker run tracking" test_tracker_run_tracking;
    Tu.case "tracker threshold" test_tracker_threshold;
    Tu.case "tracker growth" test_tracker_growth;
    Tu.case "scheme requires interval" test_scheme_requires_interval;
    Tu.case "scheme tunes stable program" test_scheme_tunes_stable_program;
    Tu.case "scheme energy accounting" test_scheme_energy_accounting;
    Tu.case "scheme CoV stats" test_scheme_cov_stats;
  ]
