(* Workload suite structural tests. *)
module Program = Ace_isa.Program
module Workload = Ace_workloads.Workload
module Kit = Ace_workloads.Kit

let all = Ace_workloads.Specjvm.all

let test_suite_membership () =
  Alcotest.(check (list string)) "paper order"
    [ "compress"; "db"; "jack"; "javac"; "jess"; "mpeg"; "mtrt" ]
    Ace_workloads.Specjvm.names;
  Alcotest.(check bool) "find works" true
    (Ace_workloads.Specjvm.find "jess" <> None);
  Alcotest.(check bool) "find rejects unknown" true
    (Ace_workloads.Specjvm.find "doom" = None)

let test_all_valid () =
  List.iter
    (fun w ->
      let p = w.Workload.build ~scale:0.05 ~seed:1 in
      match Program.validate p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" w.Workload.name e)
    all

let test_deterministic_build () =
  List.iter
    (fun w ->
      let a = w.Workload.build ~scale:0.05 ~seed:1 in
      let b = w.Workload.build ~scale:0.05 ~seed:1 in
      Alcotest.(check int)
        (w.Workload.name ^ " deterministic size")
        (Program.total_dynamic_instrs a)
        (Program.total_dynamic_instrs b))
    all

let test_scale_monotone () =
  List.iter
    (fun w ->
      let small = Program.total_dynamic_instrs (w.Workload.build ~scale:0.2 ~seed:1) in
      let big = Program.total_dynamic_instrs (w.Workload.build ~scale:1.0 ~seed:1) in
      Alcotest.(check bool) (w.Workload.name ^ " scales up") true (big > small))
    all

let test_full_scale_sizes () =
  (* At scale 1.0 every benchmark runs 50-200 M instructions (DESIGN.md §6). *)
  List.iter
    (fun w ->
      let n = Program.total_dynamic_instrs (w.Workload.build ~scale:1.0 ~seed:1) in
      Alcotest.(check bool)
        (Printf.sprintf "%s size in range (got %d)" w.Workload.name n)
        true
        (n > 50_000_000 && n < 200_000_000))
    all

let test_hotspot_class_structure () =
  (* Every benchmark must offer both L1D-class and L2-class methods: one
     invocation between 50K-500K and one >= 500K instructions. *)
  List.iter
    (fun w ->
      let p = w.Workload.build ~scale:1.0 ~seed:1 in
      let sizes = Program.inclusive_size p in
      let invocations = Program.invocation_counts p in
      let has_class lo hi =
        Array.exists
          (fun m ->
            let s = sizes.(m.Program.id) in
            s >= lo && s < hi && invocations.(m.Program.id) >= 8)
          p.Program.methods
      in
      Alcotest.(check bool) (w.Workload.name ^ " has L1D-class hotspots") true
        (has_class 50_000 500_000);
      Alcotest.(check bool) (w.Workload.name ^ " has L2-class hotspots") true
        (has_class 500_000 max_int))
    all

let test_data_footprints () =
  (* Data regions must stay within the program's declared address space. *)
  List.iter
    (fun w ->
      let p = w.Workload.build ~scale:0.05 ~seed:1 in
      Program.iter_blocks p (fun b ->
          let base = Ace_isa.Pattern.base b.Ace_isa.Block.pattern in
          let fp = Ace_isa.Pattern.footprint b.Ace_isa.Block.pattern in
          Alcotest.(check bool)
            (w.Workload.name ^ " pattern within data segment")
            true
            (base + fp <= p.Program.data_bytes)))
    all

let test_method_population () =
  List.iter
    (fun w ->
      let p = w.Workload.build ~scale:1.0 ~seed:1 in
      Alcotest.(check bool)
        (Printf.sprintf "%s has a rich method population (got %d)"
           w.Workload.name (Program.method_count p))
        true
        (Program.method_count p >= 12))
    all

let test_descriptions_present () =
  List.iter
    (fun w ->
      Alcotest.(check bool) "description" true (String.length w.Workload.description > 10);
      Alcotest.(check bool) "paper instrs recorded" true
        (w.Workload.paper_dynamic_instrs > 1e9))
    all

(* --- kit --- *)

let test_kit_sizes () =
  let k = Kit.create ~name:"k" ~seed:1 in
  let r = Kit.data_region k ~kb:8 in
  let b = Kit.block k ~instrs:100 ~mem_frac:0.3 ~access:(Kit.Uniform r) () in
  let leaf = Kit.meth k ~name:"leaf" [ Kit.exec b 4 ] in
  Alcotest.(check int) "leaf size" 400 (Kit.size k leaf);
  let parent = Kit.meth k ~name:"p" [ Kit.call leaf 3 ] in
  Alcotest.(check int) "parent size" 1200 (Kit.size k parent)

let test_kit_mem_ops_split () =
  let k = Kit.create ~name:"k" ~seed:1 in
  let r = Kit.data_region k ~kb:8 in
  let b =
    Kit.block k ~instrs:100 ~mem_frac:0.4 ~store_share:0.25 ~access:(Kit.Uniform r) ()
  in
  Alcotest.(check int) "total mem ops" 40 (Ace_isa.Block.memory_ops b);
  Alcotest.(check int) "stores" 10 b.Ace_isa.Block.stores;
  Alcotest.(check int) "loads" 30 b.Ace_isa.Block.loads

let test_kit_no_memory () =
  let k = Kit.create ~name:"k" ~seed:1 in
  let b = Kit.block k ~instrs:100 ~mem_frac:0.5 ~access:Kit.No_memory () in
  Alcotest.(check int) "no-memory block has no ops" 0 (Ace_isa.Block.memory_ops b)

let test_kit_sub_region () =
  let k = Kit.create ~name:"k" ~seed:1 in
  let r = Kit.data_region k ~kb:64 in
  let sub = Kit.sub_region k r ~at_kb:16 ~kb:8 in
  Alcotest.(check int) "sub base" (r.Kit.base + (16 * 1024)) sub.Kit.base;
  Alcotest.(check int) "sub extent" (8 * 1024) sub.Kit.extent

let test_kit_call_to_size () =
  let k = Kit.create ~name:"k" ~seed:1 in
  let b = Kit.block k ~instrs:1000 ~mem_frac:0.0 ~access:Kit.No_memory () in
  let leaf = Kit.meth k ~name:"leaf" [ Kit.exec b 1 ] in
  match Kit.call_to_size k leaf ~target:10_000 with
  | Program.Call (_, n) -> Alcotest.(check int) "ten calls" 10 n
  | Program.Exec _ -> Alcotest.fail "expected a call"

let test_kit_scaled () =
  Alcotest.(check int) "scaled" 5 (Kit.scaled ~scale:0.5 10);
  Alcotest.(check int) "floor at 1" 1 (Kit.scaled ~scale:0.001 10)

(* --- synthetic generator --- *)

let test_synthetic_default_valid () =
  let p = Ace_workloads.Synthetic.build Ace_workloads.Synthetic.default ~seed:1 in
  Alcotest.(check bool) "valid" true (Program.validate p = Ok ())

let prop_synthetic_valid =
  QCheck.Test.make ~name:"synthetic generator always yields valid programs"
    ~count:50
    QCheck.(
      quad (int_range 1 4) (int_range 1 30) (int_range 1 4) (int_range 4 64))
    (fun (n_phases, phase_repeats, l1_methods_per_phase, working_set_kb) ->
      let p =
        Ace_workloads.Synthetic.build
          {
            Ace_workloads.Synthetic.default with
            n_phases;
            phase_repeats;
            l1_methods_per_phase;
            working_set_kb;
          }
          ~seed:(n_phases + phase_repeats)
      in
      Program.validate p = Ok ())

let prop_synthetic_runs =
  QCheck.Test.make ~name:"synthetic programs execute to completion" ~count:10
    (QCheck.int_range 1 1000)
    (fun seed ->
      let p =
        Ace_workloads.Synthetic.build
          { Ace_workloads.Synthetic.default with phase_repeats = 2 }
          ~seed
      in
      let e = Ace_vm.Engine.create p in
      Ace_vm.Engine.run e;
      Ace_vm.Engine.instrs e = Program.total_dynamic_instrs p)

let suite =
  [
    Tu.case "suite membership" test_suite_membership;
    Tu.case "all benchmarks valid" test_all_valid;
    Tu.case "deterministic build" test_deterministic_build;
    Tu.case "scale monotone" test_scale_monotone;
    Tu.case "full-scale sizes" test_full_scale_sizes;
    Tu.case "hotspot class structure" test_hotspot_class_structure;
    Tu.case "data footprints" test_data_footprints;
    Tu.case "method population" test_method_population;
    Tu.case "descriptions present" test_descriptions_present;
    Tu.case "kit sizes" test_kit_sizes;
    Tu.case "kit mem-op split" test_kit_mem_ops_split;
    Tu.case "kit no-memory block" test_kit_no_memory;
    Tu.case "kit sub-region" test_kit_sub_region;
    Tu.case "kit call_to_size" test_kit_call_to_size;
    Tu.case "kit scaled" test_kit_scaled;
    Tu.case "synthetic default valid" test_synthetic_default_valid;
    Tu.qcheck prop_synthetic_valid;
    Tu.qcheck prop_synthetic_runs;
  ]
