(* Markov next-phase predictor tests. *)
module Np = Ace_bbv.Next_phase

let test_no_prediction_cold () =
  let p = Np.create () in
  Alcotest.(check bool) "cold predictor abstains" true (Np.predict p ~current:0 = None)

let test_learns_deterministic_chain () =
  let p = Np.create () in
  (* A -> B -> A -> B ... *)
  for _ = 1 to 5 do
    Np.observe p ~prev:0 ~next:1;
    Np.observe p ~prev:1 ~next:0
  done;
  Alcotest.(check (option int)) "after A comes B" (Some 1) (Np.predict p ~current:0);
  Alcotest.(check (option int)) "after B comes A" (Some 0) (Np.predict p ~current:1)

let test_self_transitions () =
  let p = Np.create () in
  for _ = 1 to 4 do
    Np.observe p ~prev:7 ~next:7
  done;
  Alcotest.(check (option int)) "stable phase predicts itself" (Some 7)
    (Np.predict p ~current:7)

let test_confidence_bar () =
  let p = Np.create ~min_count:2 ~min_confidence:0.6 () in
  (* 50/50 successor split: no confident prediction. *)
  for _ = 1 to 4 do
    Np.observe p ~prev:0 ~next:1;
    Np.observe p ~prev:0 ~next:2
  done;
  Alcotest.(check (option int)) "ambiguous successors abstain" None
    (Np.predict p ~current:0)

let test_min_count () =
  let p = Np.create ~min_count:3 () in
  Np.observe p ~prev:0 ~next:1;
  Np.observe p ~prev:0 ~next:1;
  Alcotest.(check (option int)) "too few observations" None (Np.predict p ~current:0);
  Np.observe p ~prev:0 ~next:1;
  Alcotest.(check (option int)) "enough observations" (Some 1) (Np.predict p ~current:0)

let test_accuracy_tracking () =
  let p = Np.create () in
  Np.record_outcome p ~predicted:(Some 1) ~actual:1;
  Np.record_outcome p ~predicted:(Some 1) ~actual:2;
  Np.record_outcome p ~predicted:None ~actual:5;
  Alcotest.(check int) "two predictions issued" 2 (Np.predictions p);
  Alcotest.(check int) "one correct" 1 (Np.correct p);
  Tu.check_approx "accuracy" 0.5 (Np.accuracy p)

let test_accuracy_empty () =
  let p = Np.create () in
  Tu.check_approx "no predictions -> 0" 0.0 (Np.accuracy p)

(* Scheme integration: a strongly alternating program must yield accurate
   predictions. *)
let test_scheme_integration () =
  let w = Ace_workloads.Compress.workload in
  let r =
    Ace_harness.Run.run ~scale:0.4 ~bbv_prediction:true w Ace_harness.Scheme.Bbv
  in
  match r.Ace_harness.Run.bbv_predictor with
  | None -> Alcotest.fail "predictor stats missing"
  | Some (total, correct, accuracy) ->
      Alcotest.(check bool) "predictions issued" true (total > 5);
      Alcotest.(check bool) "mostly correct on a regular program" true
        (accuracy > 0.5);
      Alcotest.(check bool) "correct <= total" true (correct <= total)

let test_scheme_disabled_by_default () =
  let w = Ace_workloads.Compress.workload in
  let r = Ace_harness.Run.run ~scale:0.1 w Ace_harness.Scheme.Bbv in
  Alcotest.(check bool) "paper baseline has no predictor" true
    (r.Ace_harness.Run.bbv_predictor = None)

let suite =
  [
    Tu.case "cold predictor abstains" test_no_prediction_cold;
    Tu.case "learns deterministic chain" test_learns_deterministic_chain;
    Tu.case "self transitions" test_self_transitions;
    Tu.case "confidence bar" test_confidence_bar;
    Tu.case "min count" test_min_count;
    Tu.case "accuracy tracking" test_accuracy_tracking;
    Tu.case "accuracy empty" test_accuracy_empty;
    Tu.slow_case "scheme integration" test_scheme_integration;
    Tu.case "scheme disabled by default" test_scheme_disabled_by_default;
  ]
