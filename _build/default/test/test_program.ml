module Program = Ace_isa.Program
module Block = Ace_isa.Block

let ok p =
  match Program.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid program, got: %s" e

let test_tiny_valid () = ok (Tu.tiny_program ())

let test_block_validate () =
  let b = Tu.block () in
  Alcotest.(check bool) "valid block" true (Block.validate b = Ok ());
  Alcotest.(check bool) "zero instrs invalid" true
    (Result.is_error (Block.validate (Tu.block ~instrs:0 ())));
  Alcotest.(check bool) "too many mem ops invalid" true
    (Result.is_error (Block.validate (Tu.block ~instrs:10 ~loads:8 ~stores:8 ())));
  Alcotest.(check int) "memory_ops" 15 (Block.memory_ops b)

let test_entry_out_of_range () =
  let p = { (Tu.tiny_program ()) with Program.entry = 9 } in
  Alcotest.(check bool) "invalid entry" true (Result.is_error (Program.validate p))

let test_misnumbered_methods () =
  let p = Tu.tiny_program () in
  let methods = Array.copy p.Program.methods in
  methods.(0) <- { methods.(0) with Program.id = 5 };
  let p = { p with Program.methods = methods } in
  Alcotest.(check bool) "bad ids rejected" true (Result.is_error (Program.validate p))

let test_recursion_rejected () =
  let m id name callee =
    {
      Program.id;
      name;
      code_base = 0x1000 * (id + 1);
      code_bytes = 64;
      body = [ Program.Call (callee, 1) ];
    }
  in
  let p =
    {
      Program.name = "rec";
      methods = [| m 0 "a" 1; m 1 "b" 0 |];
      entry = 0;
      data_bytes = 0;
    }
  in
  Alcotest.(check bool) "mutual recursion rejected" true
    (Result.is_error (Program.validate p))

let test_self_recursion_rejected () =
  let p =
    {
      Program.name = "self";
      methods =
        [|
          {
            Program.id = 0;
            name = "a";
            code_base = 0x1000;
            code_bytes = 64;
            body = [ Program.Call (0, 1) ];
          };
        |];
      entry = 0;
      data_bytes = 0;
    }
  in
  Alcotest.(check bool) "self recursion rejected" true
    (Result.is_error (Program.validate p))

let test_bad_call_target () =
  let p = Tu.tiny_program () in
  let methods = Array.copy p.Program.methods in
  methods.(1) <- { methods.(1) with Program.body = [ Program.Call (7, 1) ] };
  let p = { p with Program.methods = methods } in
  Alcotest.(check bool) "unknown callee rejected" true
    (Result.is_error (Program.validate p))

let test_zero_count_rejected () =
  let p = Tu.tiny_program () in
  let methods = Array.copy p.Program.methods in
  methods.(1) <- { methods.(1) with Program.body = [ Program.Call (0, 0) ] };
  let p = { p with Program.methods = methods } in
  Alcotest.(check bool) "zero repeat rejected" true
    (Result.is_error (Program.validate p))

let test_duplicate_block_ids () =
  let b1 = Tu.block ~id:0 ~pc:0x100 () and b2 = Tu.block ~id:0 ~pc:0x200 () in
  let p =
    {
      Program.name = "dup";
      methods =
        [|
          {
            Program.id = 0;
            name = "m";
            code_base = 0x100;
            code_bytes = 64;
            body = [ Program.Exec (b1, 1); Program.Exec (b2, 1) ];
          };
        |];
      entry = 0;
      data_bytes = 0;
    }
  in
  Alcotest.(check bool) "duplicate ids rejected" true
    (Result.is_error (Program.validate p))

let test_inclusive_size () =
  let p = Tu.tiny_program ~reps:10 ~worker_instrs:1000 () in
  let sizes = Program.inclusive_size p in
  Alcotest.(check int) "worker size" 1000 sizes.(0);
  Alcotest.(check int) "main size" 10_000 sizes.(1);
  Alcotest.(check int) "total" 10_000 (Program.total_dynamic_instrs p)

let test_nested_sizes () =
  let p, `Leaf leaf, `Middle middle, `Outer outer = Tu.nested_program () in
  let sizes = Program.inclusive_size p in
  Alcotest.(check int) "leaf" 1000 sizes.(leaf);
  Alcotest.(check int) "middle = 100 leaves" 100_000 sizes.(middle);
  Alcotest.(check int) "outer = 6 middles" 600_000 sizes.(outer)

let test_invocation_counts () =
  let p, `Leaf leaf, `Middle middle, `Outer outer = Tu.nested_program ~outer_reps:40 () in
  let counts = Program.invocation_counts p in
  Alcotest.(check int) "outer invoked 40x" 40 counts.(outer);
  Alcotest.(check int) "middle invoked 240x" 240 counts.(middle);
  Alcotest.(check int) "leaf invoked 24000x" 24_000 counts.(leaf)

let test_reachable () =
  let p = Tu.tiny_program () in
  let r = Program.reachable p in
  Alcotest.(check (array bool)) "all reachable" [| true; true |] r

let test_counts () =
  let p, _, _, _ = Tu.nested_program () in
  Alcotest.(check int) "methods" 4 (Program.method_count p);
  Alcotest.(check int) "blocks" 1 (Program.block_count p);
  Alcotest.(check int) "max block id" 0 (Program.max_block_id p)

let suite =
  [
    Tu.case "tiny program valid" test_tiny_valid;
    Tu.case "block validation" test_block_validate;
    Tu.case "entry out of range" test_entry_out_of_range;
    Tu.case "misnumbered methods" test_misnumbered_methods;
    Tu.case "mutual recursion rejected" test_recursion_rejected;
    Tu.case "self recursion rejected" test_self_recursion_rejected;
    Tu.case "bad call target" test_bad_call_target;
    Tu.case "zero repeat count" test_zero_count_rejected;
    Tu.case "duplicate block ids" test_duplicate_block_ids;
    Tu.case "inclusive size" test_inclusive_size;
    Tu.case "nested sizes" test_nested_sizes;
    Tu.case "invocation counts" test_invocation_counts;
    Tu.case "reachability" test_reachable;
    Tu.case "structure counts" test_counts;
  ]
