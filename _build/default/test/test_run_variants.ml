(* Run-layer variants: issue queue, prediction, decoupling, jack's IQ-class
   hotspot. *)
module Run = Ace_harness.Run
module Scheme = Ace_harness.Scheme
module Framework = Ace_core.Framework

let compress = Ace_workloads.Compress.workload
let jack = Ace_workloads.Jack.workload

let test_issue_queue_variant_shape () =
  let r = Run.run ~scale:0.1 ~with_issue_queue:true compress Scheme.Hotspot in
  match r.Run.hotspot with
  | None -> Alcotest.fail "hotspot stats missing"
  | Some h ->
      Alcotest.(check int) "three CU reports" 3 (Array.length h.Run.reports);
      Alcotest.(check string) "third is the IQ" "IQ"
        h.Run.reports.(2).Framework.cu_name

let test_jack_has_iq_class_hotspot () =
  let r = Run.run ~scale:0.4 ~with_issue_queue:true jack Scheme.Hotspot in
  match r.Run.hotspot with
  | None -> Alcotest.fail "hotspot stats missing"
  | Some h ->
      Alcotest.(check bool) "intern_pass managed by the IQ" true
        (h.Run.reports.(2).Framework.class_hotspots >= 1)

let test_prediction_variant () =
  let r =
    Run.run ~scale:0.2
      ~framework_config:{ Framework.default_config with prediction = true }
      compress Scheme.Hotspot
  in
  match r.Run.hotspot with
  | None -> Alcotest.fail "hotspot stats missing"
  | Some h ->
      Alcotest.(check bool) "predictions happened" true
        (Array.exists (fun c -> c.Framework.predicted_hotspots > 0) h.Run.reports);
      Alcotest.(check int) "no tuning trials" 0
        (Array.fold_left (fun a c -> a + c.Framework.tunings) 0 h.Run.reports)

let test_no_decoupling_variant () =
  let r =
    Run.run ~scale:0.2
      ~framework_config:{ Framework.default_config with decoupling = false }
      compress Scheme.Hotspot
  in
  match r.Run.hotspot with
  | None -> Alcotest.fail "hotspot stats missing"
  | Some h ->
      (* Without decoupling every managed hotspot manages both CUs, so the
         two class counters are equal. *)
      Alcotest.(check int) "joint management"
        h.Run.reports.(0).Framework.class_hotspots
        h.Run.reports.(1).Framework.class_hotspots

let test_hot_threshold_override () =
  let low = Run.run ~scale:0.1 ~hot_threshold:2 compress Scheme.Fixed_baseline in
  let high =
    Run.run ~scale:0.1 ~hot_threshold:1_000_000 compress Scheme.Fixed_baseline
  in
  Alcotest.(check bool) "low threshold promotes" true
    (low.Run.do_stats.Run.hotspot_count > 0);
  Alcotest.(check int) "huge threshold promotes nothing" 0
    high.Run.do_stats.Run.hotspot_count

let suite =
  [
    Tu.slow_case "issue queue variant shape" test_issue_queue_variant_shape;
    Tu.slow_case "jack IQ-class hotspot" test_jack_has_iq_class_hotspot;
    Tu.slow_case "prediction variant" test_prediction_variant;
    Tu.slow_case "no-decoupling variant" test_no_decoupling_variant;
    Tu.slow_case "hot threshold override" test_hot_threshold_override;
  ]
