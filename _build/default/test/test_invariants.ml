(* Cross-module invariants and remaining unit coverage: invocation profiles,
   energy bookkeeping consistency, hierarchy traffic conservation, and
   whole-run conservation laws. *)
module Engine = Ace_vm.Engine
module Profile = Ace_vm.Profile
module Hierarchy = Ace_mem.Hierarchy
module Cache = Ace_mem.Cache
module Em = Ace_power.Energy_model
module Acct = Ace_power.Accounting

let test_profile_ipc () =
  let p =
    {
      Profile.instrs = 1000;
      cycles = 500.0;
      l1d_accesses = 0;
      l1d_misses = 0;
      l2_accesses = 0;
      l2_misses = 0;
    }
  in
  Tu.check_approx "ipc" 2.0 (Profile.ipc p);
  Tu.check_approx "zero cycles" 0.0 (Profile.ipc { p with Profile.cycles = 0.0 })

let test_profile_energy_monotone_in_size () =
  let p =
    {
      Profile.instrs = 10_000;
      cycles = 8000.0;
      l1d_accesses = 2500;
      l1d_misses = 50;
      l2_accesses = 60;
      l2_misses = 5;
    }
  in
  let e8 = Profile.l1d_energy_nj p ~size_bytes:(8 * 1024) ~leak_cycles:p.Profile.cycles in
  let e64 = Profile.l1d_energy_nj p ~size_bytes:(64 * 1024) ~leak_cycles:p.Profile.cycles in
  Alcotest.(check bool) "smaller L1D cheaper for same profile" true (e8 < e64);
  let l128 = Profile.l2_energy_nj p ~size_bytes:(128 * 1024) ~leak_cycles:p.Profile.cycles in
  let l1m = Profile.l2_energy_nj p ~size_bytes:(1024 * 1024) ~leak_cycles:p.Profile.cycles in
  Alcotest.(check bool) "smaller L2 cheaper for same profile" true (l128 < l1m)

let test_l2_energy_leakage_dominated () =
  (* With few accesses and many cycles (the L2's regime), leakage dominates
     the proxy — the structural property Figure 3b relies on. *)
  let p =
    {
      Profile.instrs = 1_000_000;
      cycles = 700_000.0;
      l1d_accesses = 0;
      l1d_misses = 0;
      l2_accesses = 5_000;
      l2_misses = 100;
    }
  in
  let dynamic = float_of_int p.Profile.l2_accesses *. Em.access_energy_nj Em.L2 ~size_bytes:(1 lsl 20) in
  let leak = p.Profile.cycles *. Em.leakage_nj_per_cycle Em.L2 ~size_bytes:(1 lsl 20) in
  Alcotest.(check bool) "leakage > dynamic at 1 MB" true (leak > dynamic)

let test_hierarchy_traffic_conservation () =
  (* L2 accesses = L1D misses + L1D dirty writebacks + L1I misses (modulo
     resize replays, absent here). *)
  let h = Hierarchy.create () in
  let rng = Ace_util.Rng.create ~seed:9 in
  for _ = 1 to 20_000 do
    ignore
      (Hierarchy.data_access h
         ~addr:(Ace_util.Rng.int rng (1 lsl 21))
         ~write:(Ace_util.Rng.bernoulli rng 0.3))
  done;
  for _ = 1 to 500 do
    ignore (Hierarchy.ifetch h ~pc:(Ace_util.Rng.int rng (1 lsl 18)))
  done;
  let l1d = Hierarchy.l1d h and l1i = Hierarchy.l1i h and l2 = Hierarchy.l2 h in
  Alcotest.(check int) "L2 access conservation"
    (Cache.Stats.misses l1d + Cache.Stats.writebacks l1d + Cache.Stats.misses l1i)
    (Cache.Stats.accesses l2)

let test_memory_traffic_conservation () =
  let h = Hierarchy.create () in
  let rng = Ace_util.Rng.create ~seed:10 in
  for _ = 1 to 20_000 do
    ignore
      (Hierarchy.data_access h
         ~addr:(Ace_util.Rng.int rng (1 lsl 22))
         ~write:(Ace_util.Rng.bernoulli rng 0.3))
  done;
  let l2 = Hierarchy.l2 h in
  Alcotest.(check int) "memory reads = L2 misses" (Cache.Stats.misses l2)
    (Hierarchy.memory_reads h);
  Alcotest.(check int) "memory writebacks = L2 dirty evictions"
    (Cache.Stats.writebacks l2)
    (Hierarchy.memory_writebacks h)

let test_engine_cache_counters_match_blocks () =
  (* L1D accesses equal the program's total loads+stores. *)
  let p = Tu.tiny_program ~reps:50 ~worker_instrs:1000 () in
  let e = Engine.create p in
  Engine.run e;
  let expected = 50 * (100 + 50) in
  Alcotest.(check int) "L1D accesses = program memory ops" expected
    (Cache.Stats.accesses (Hierarchy.l1d (Engine.hierarchy e)))

let test_invocation_profiles_partition_run () =
  (* The entry method's single invocation profile covers the whole run's
     program instructions. *)
  let p = Tu.tiny_program ~reps:30 () in
  let e = Engine.create p in
  let main_profile = ref None in
  (Engine.hooks e).Engine.on_method_exit <-
    (fun ~meth_id profile -> if meth_id = 1 then main_profile := Some profile);
  Engine.run e;
  match !main_profile with
  | Some pr -> Alcotest.(check int) "main profile inclusive" (Engine.instrs e) pr.Profile.instrs
  | None -> Alcotest.fail "main never exited"

let test_accounting_epochs_partition_energy () =
  (* Splitting the same activity into many epochs at one size equals one
     epoch (no double counting). *)
  let one = Acct.create Em.L1d ~initial_size:(64 * 1024) in
  Acct.finish one ~accesses_now:90_000 ~cycles_now:300_000.0;
  let many = Acct.create Em.L1d ~initial_size:(64 * 1024) in
  for i = 1 to 9 do
    Acct.on_reconfig many ~new_size:(64 * 1024)
      ~accesses_now:(i * 10_000)
      ~cycles_now:(float_of_int i *. 30_000.0)
      ~flushed_lines:0
  done;
  Acct.finish many ~accesses_now:90_000 ~cycles_now:300_000.0;
  Tu.check_approx ~eps:1e-6 "epoch partition" (Acct.total_nj one) (Acct.total_nj many)

let test_do_database_set_instrument () =
  let db = Ace_vm.Do_database.create ~methods:2 in
  Ace_vm.Do_database.set_instrument db 0 Ace_vm.Instrument.Tuning;
  let e = Ace_vm.Do_database.entry db 0 in
  Alcotest.(check int) "entry overhead" 40 e.Ace_vm.Do_database.entry_overhead;
  Alcotest.(check int) "exit overhead" 30 e.Ace_vm.Do_database.exit_overhead;
  Ace_vm.Do_database.set_instrument db 0 Ace_vm.Instrument.Plain;
  Alcotest.(check int) "reset to plain" 0 e.Ace_vm.Do_database.entry_overhead

let test_estimated_size_before_any_exit () =
  let db = Ace_vm.Do_database.create ~methods:1 in
  Alcotest.(check int) "no samples -> 0" 0
    (Ace_vm.Do_database.estimated_size (Ace_vm.Do_database.entry db 0))

let prop_engine_conserves_instructions =
  QCheck.Test.make ~name:"engine retires exactly the program's instructions"
    ~count:15
    QCheck.(pair (int_range 1 40) (int_range 100 3000))
    (fun (reps, worker_instrs) ->
      let p = Tu.tiny_program ~reps ~worker_instrs () in
      let e = Engine.create p in
      Engine.run e;
      Engine.instrs e = reps * worker_instrs)

let prop_accounting_total_is_sum_of_parts =
  QCheck.Test.make ~name:"accounting total = dynamic + leakage + reconfig"
    ~count:50
    QCheck.(triple (int_range 0 100000) (int_range 0 1000000) (int_range 0 500))
    (fun (accesses, cycles, flushed) ->
      let a = Acct.create Em.L1d ~initial_size:(64 * 1024) in
      Acct.on_reconfig a ~new_size:(16 * 1024) ~accesses_now:accesses
        ~cycles_now:(float_of_int cycles) ~flushed_lines:flushed;
      Acct.finish a ~accesses_now:(accesses * 2) ~cycles_now:(float_of_int (cycles * 2));
      Tu.approx ~eps:1e-6
        (Acct.total_nj a)
        (Acct.dynamic_nj a +. Acct.leakage_nj a +. Acct.reconfig_nj a))

let suite =
  [
    Tu.case "profile ipc" test_profile_ipc;
    Tu.case "profile energy monotone" test_profile_energy_monotone_in_size;
    Tu.case "L2 energy leakage-dominated" test_l2_energy_leakage_dominated;
    Tu.case "hierarchy traffic conservation" test_hierarchy_traffic_conservation;
    Tu.case "memory traffic conservation" test_memory_traffic_conservation;
    Tu.case "engine cache counters" test_engine_cache_counters_match_blocks;
    Tu.case "invocation profiles partition run" test_invocation_profiles_partition_run;
    Tu.case "accounting epochs partition energy" test_accounting_epochs_partition_energy;
    Tu.case "do-database set_instrument" test_do_database_set_instrument;
    Tu.case "estimated size before exits" test_estimated_size_before_any_exit;
    Tu.qcheck prop_engine_conserves_instructions;
    Tu.qcheck prop_accounting_total_is_sum_of_parts;
  ]
