module Builder = Ace_isa.Builder
module Program = Ace_isa.Program
module Pattern = Ace_isa.Pattern
module Block = Ace_isa.Block

let test_fresh_ids_and_pcs () =
  let b = Builder.create ~name:"t" in
  let pat = Pattern.Random_in { base = 0; extent = 64 } in
  let b1 = Builder.block b ~instrs:10 ~pattern:pat () in
  let b2 = Builder.block b ~instrs:10 ~pattern:pat () in
  Alcotest.(check bool) "distinct ids" true (b1.Block.id <> b2.Block.id);
  Alcotest.(check bool) "distinct pcs" true (b1.Block.pc <> b2.Block.pc)

let test_data_regions_disjoint () =
  let b = Builder.create ~name:"t" in
  let r1 = Builder.alloc_data b ~bytes:1000 in
  let r2 = Builder.alloc_data b ~bytes:1000 in
  Alcotest.(check bool) "regions do not overlap" true (r2 >= r1 + 1000);
  Alcotest.(check int) "64-byte aligned" 0 (r2 mod 64)

let test_finish_validates () =
  let b = Builder.create ~name:"t" in
  let blk = Builder.compute_block b ~instrs:50 () in
  let m = Builder.meth b ~name:"m" [ Builder.exec blk 3 ] in
  let main = Builder.meth b ~name:"main" [ Builder.call m 2 ] in
  let p = Builder.finish b ~entry:main in
  Alcotest.(check int) "total instrs" 300 (Program.total_dynamic_instrs p);
  Alcotest.(check string) "name" "t" p.Program.name

let test_compute_block_has_no_memory () =
  let b = Builder.create ~name:"t" in
  let blk = Builder.compute_block b ~instrs:50 () in
  Alcotest.(check int) "no memory ops" 0 (Block.memory_ops blk)

let test_bottom_up_only () =
  (* Call targets must be existing handles, so recursion is impossible by
     construction; check the types force at least forward references. *)
  let b = Builder.create ~name:"t" in
  let blk = Builder.compute_block b ~instrs:10 () in
  let leaf = Builder.meth b ~name:"leaf" [ Builder.exec blk 1 ] in
  let mid = Builder.meth b ~name:"mid" [ Builder.call leaf 1 ] in
  let main = Builder.meth b ~name:"main" [ Builder.call mid 1 ] in
  let p = Builder.finish b ~entry:main in
  Alcotest.(check int) "three methods" 3 (Program.method_count p)

let test_method_code_regions () =
  let b = Builder.create ~name:"t" in
  let blk1 = Builder.compute_block b ~instrs:100 () in
  let m1 = Builder.meth b ~name:"m1" [ Builder.exec blk1 1 ] in
  let blk2 = Builder.compute_block b ~instrs:100 () in
  let m2 = Builder.meth b ~name:"m2" [ Builder.exec blk2 1 ] in
  let main = Builder.meth b ~name:"main" [ Builder.call m1 1; Builder.call m2 1 ] in
  let p = Builder.finish b ~entry:main in
  let meths = p.Program.methods in
  let h1 = Builder.handle_id m1 and h2 = Builder.handle_id m2 in
  Alcotest.(check bool) "code regions ordered and disjoint" true
    (meths.(h1).Program.code_base + meths.(h1).Program.code_bytes
    <= meths.(h2).Program.code_base);
  Alcotest.(check bool) "block pc inside its method region" true
    (blk2.Block.pc >= meths.(h2).Program.code_base
    || blk2.Block.pc >= meths.(h1).Program.code_base)

let prop_generated_programs_valid =
  QCheck.Test.make ~name:"builder output always validates" ~count:100
    QCheck.(
      triple (int_range 1 5) (int_range 1 6) (int_range 1 2000))
    (fun (n_methods, blocks_per, instrs) ->
      let b = Builder.create ~name:"gen" in
      let prev = ref None in
      for i = 0 to n_methods - 1 do
        let body =
          List.init blocks_per (fun _ ->
              Builder.exec (Builder.compute_block b ~instrs ()) 1)
          @ (match !prev with Some h -> [ Builder.call h 2 ] | None -> [])
        in
        prev := Some (Builder.meth b ~name:(Printf.sprintf "m%d" i) body)
      done;
      match !prev with
      | None -> false
      | Some entry ->
          let p = Builder.finish b ~entry in
          Program.validate p = Ok ())

let suite =
  [
    Tu.case "fresh ids and pcs" test_fresh_ids_and_pcs;
    Tu.case "data regions disjoint" test_data_regions_disjoint;
    Tu.case "finish validates" test_finish_validates;
    Tu.case "compute block" test_compute_block_has_no_memory;
    Tu.case "bottom-up construction" test_bottom_up_only;
    Tu.case "method code regions" test_method_code_regions;
    Tu.qcheck prop_generated_programs_valid;
  ]
