(* TLB and hierarchy tests. *)
module Tlb = Ace_mem.Tlb
module Hierarchy = Ace_mem.Hierarchy
module Cache = Ace_mem.Cache

let test_tlb_hit_miss () =
  let t = Tlb.create () in
  Alcotest.(check bool) "cold miss" false (Tlb.access t 0);
  Alcotest.(check bool) "then hit" true (Tlb.access t 0);
  Alcotest.(check bool) "same page hits" true (Tlb.access t 4095);
  Alcotest.(check bool) "next page misses" false (Tlb.access t 4096)

let test_tlb_capacity () =
  let t = Tlb.create ~entries:4 () in
  for p = 0 to 3 do
    ignore (Tlb.access t (p * 4096))
  done;
  (* All four resident. *)
  for p = 0 to 3 do
    Alcotest.(check bool) "resident" true (Tlb.access t (p * 4096))
  done;
  (* Fifth page evicts the oldest (page 0, FIFO). *)
  ignore (Tlb.access t (4 * 4096));
  Alcotest.(check bool) "page 0 evicted" false (Tlb.access t 0)

let test_tlb_counters () =
  let t = Tlb.create ~entries:2 () in
  ignore (Tlb.access t 0);
  ignore (Tlb.access t 0);
  ignore (Tlb.access t 8192);
  Alcotest.(check int) "accesses" 3 (Tlb.accesses t);
  Alcotest.(check int) "misses" 2 (Tlb.misses t)

let test_tlb_flush () =
  let t = Tlb.create () in
  ignore (Tlb.access t 0);
  Tlb.flush t;
  Alcotest.(check bool) "flushed" false (Tlb.access t 0)

let test_hierarchy_latencies () =
  let h = Hierarchy.create () in
  let lat = Hierarchy.latencies h in
  (* Cold access: L1 miss + L2 miss + memory + TLB miss. *)
  let cold = Hierarchy.data_access h ~addr:0 ~write:false in
  Alcotest.(check int) "cold latency"
    (lat.Hierarchy.l1_hit + lat.Hierarchy.l2_hit + lat.Hierarchy.memory
   + lat.Hierarchy.tlb_miss)
    cold;
  (* Warm: L1 hit. *)
  Alcotest.(check int) "warm latency" lat.Hierarchy.l1_hit
    (Hierarchy.data_access h ~addr:0 ~write:false)

let test_hierarchy_l2_hit_latency () =
  let h = Hierarchy.create () in
  let lat = Hierarchy.latencies h in
  ignore (Hierarchy.data_access h ~addr:0 ~write:false);
  (* Evict from L1 (64 KB, 2-way, 64 B lines -> 512 sets): two conflicting
     lines at 32 KB strides. *)
  ignore (Hierarchy.data_access h ~addr:(1 lsl 15) ~write:false);
  ignore (Hierarchy.data_access h ~addr:(2 lsl 15) ~write:false);
  (* Address 0 now misses L1 but hits L2 (1 MB holds all three). *)
  let l2_hit = Hierarchy.data_access h ~addr:0 ~write:false in
  Alcotest.(check int) "L1 miss, L2 hit"
    (lat.Hierarchy.l1_hit + lat.Hierarchy.l2_hit)
    l2_hit

let test_hierarchy_ifetch () =
  let h = Hierarchy.create () in
  let lat = Hierarchy.latencies h in
  let cold = Hierarchy.ifetch h ~pc:0x4000 in
  Alcotest.(check int) "cold ifetch misses to memory"
    (lat.Hierarchy.l1_hit + lat.Hierarchy.l2_hit + lat.Hierarchy.memory)
    cold;
  Alcotest.(check int) "warm ifetch" lat.Hierarchy.l1_hit
    (Hierarchy.ifetch h ~pc:0x4000)

let test_resize_l1d_writes_into_l2 () =
  let h = Hierarchy.create () in
  (* Dirty a line in L1D only (L2 also gets the fill, but the dirty data is
     in L1). *)
  ignore (Hierarchy.data_access h ~addr:0 ~write:true);
  let l2_accesses_before = Cache.Stats.accesses (Hierarchy.l2 h) in
  let flushed = Hierarchy.resize_l1d h ~size_bytes:(32 * 1024) in
  Alcotest.(check int) "one dirty line flushed" 1 flushed;
  Alcotest.(check bool) "flush wrote into L2" true
    (Cache.Stats.accesses (Hierarchy.l2 h) > l2_accesses_before);
  Alcotest.(check int) "L1D resized" (32 * 1024)
    (Cache.config (Hierarchy.l1d h)).Cache.size_bytes

let test_resize_l2_writes_to_memory () =
  let h = Hierarchy.create () in
  ignore (Hierarchy.data_access h ~addr:0 ~write:true);
  (* Push the dirty line down into L2 by flushing L1D first. *)
  ignore (Hierarchy.resize_l1d h ~size_bytes:(32 * 1024));
  let wb_before = Hierarchy.memory_writebacks h in
  let flushed = Hierarchy.resize_l2 h ~size_bytes:(512 * 1024) in
  Alcotest.(check bool) "L2 flush produced memory writebacks" true (flushed >= 1);
  Alcotest.(check bool) "memory writeback counter advanced" true
    (Hierarchy.memory_writebacks h >= wb_before + flushed)

let test_resize_l1d_noop () =
  let h = Hierarchy.create () in
  ignore (Hierarchy.data_access h ~addr:0 ~write:true);
  Alcotest.(check int) "same size: no flush" 0
    (Hierarchy.resize_l1d h ~size_bytes:(64 * 1024));
  Alcotest.(check bool) "contents preserved" true
    (Hierarchy.data_access h ~addr:0 ~write:false
    = (Hierarchy.latencies h).Hierarchy.l1_hit)

let test_memory_reads_counted () =
  let h = Hierarchy.create () in
  ignore (Hierarchy.data_access h ~addr:0 ~write:false);
  ignore (Hierarchy.data_access h ~addr:1_000_000 ~write:false);
  Alcotest.(check int) "two lines from memory" 2 (Hierarchy.memory_reads h)

let test_default_geometry () =
  let h = Hierarchy.create () in
  Alcotest.(check int) "L1D 64KB" (64 * 1024)
    (Cache.config (Hierarchy.l1d h)).Cache.size_bytes;
  Alcotest.(check int) "L2 1MB" (1024 * 1024)
    (Cache.config (Hierarchy.l2 h)).Cache.size_bytes;
  Alcotest.(check int) "L1I 64KB" (64 * 1024)
    (Cache.config (Hierarchy.l1i h)).Cache.size_bytes;
  Alcotest.(check int) "L2 line 128B" 128
    (Cache.config (Hierarchy.l2 h)).Cache.line_bytes

let suite =
  [
    Tu.case "tlb hit/miss" test_tlb_hit_miss;
    Tu.case "tlb capacity (FIFO)" test_tlb_capacity;
    Tu.case "tlb counters" test_tlb_counters;
    Tu.case "tlb flush" test_tlb_flush;
    Tu.case "hierarchy latencies" test_hierarchy_latencies;
    Tu.case "hierarchy L2 hit latency" test_hierarchy_l2_hit_latency;
    Tu.case "hierarchy ifetch" test_hierarchy_ifetch;
    Tu.case "resize L1D writes into L2" test_resize_l1d_writes_into_l2;
    Tu.case "resize L2 writes to memory" test_resize_l2_writes_to_memory;
    Tu.case "resize L1D noop" test_resize_l1d_noop;
    Tu.case "memory reads counted" test_memory_reads_counted;
    Tu.case "default geometry (Table 2)" test_default_geometry;
  ]
