(* Timing model and energy model/accounting tests. *)
module Machine = Ace_cpu.Machine
module Timing = Ace_cpu.Timing
module Em = Ace_power.Energy_model
module Acct = Ace_power.Accounting

let timing () = Timing.create Machine.default

let test_issue_bound () =
  let t = timing () in
  (* ILP 8 with quality 1.0 is capped at the 4-wide issue width. *)
  let c =
    Timing.block_cycles t ~instrs:400 ~ilp:8.0 ~quality:1.0 ~exposed_mem_cycles:0
      ~mispredict_rate:0.0
  in
  Tu.check_approx "width-capped" 100.0 c

let test_ilp_bound () =
  let t = timing () in
  let c =
    Timing.block_cycles t ~instrs:400 ~ilp:2.0 ~quality:1.0 ~exposed_mem_cycles:0
      ~mispredict_rate:0.0
  in
  Tu.check_approx "ilp-bound" 200.0 c

let test_quality_scales_ipc () =
  let t = timing () in
  let base =
    Timing.block_cycles t ~instrs:400 ~ilp:2.0 ~quality:1.0 ~exposed_mem_cycles:0
      ~mispredict_rate:0.0
  in
  let slow =
    Timing.block_cycles t ~instrs:400 ~ilp:2.0 ~quality:0.5 ~exposed_mem_cycles:0
      ~mispredict_rate:0.0
  in
  Tu.check_approx "half quality, double time" (base *. 2.0) slow

let test_memory_overlap () =
  let t = timing () in
  let c =
    Timing.block_cycles t ~instrs:4 ~ilp:4.0 ~quality:1.0 ~exposed_mem_cycles:100
      ~mispredict_rate:0.0
  in
  (* 1 issue cycle + 100 * 0.6 overlap. *)
  Tu.check_approx "overlap factor applied" 61.0 c

let test_mispredicts () =
  let t = timing () in
  let c =
    Timing.block_cycles t ~instrs:1000 ~ilp:4.0 ~quality:1.0 ~exposed_mem_cycles:0
      ~mispredict_rate:0.01
  in
  (* 250 issue + 1000 * 0.01 * 3. *)
  Tu.check_approx "mispredict penalty" 280.0 c

let test_quality_floor () =
  let t = timing () in
  let c =
    Timing.block_cycles t ~instrs:100 ~ilp:1.0 ~quality:0.001 ~exposed_mem_cycles:0
      ~mispredict_rate:0.0
  in
  (* Effective IPC floored at 0.1. *)
  Tu.check_approx "ipc floor" 1000.0 c

let test_overhead_cycles () =
  let t = timing () in
  Tu.check_approx "stub at width/2 IPC" 20.0 (Timing.overhead_cycles t ~instrs:40)

let test_machine_rows () =
  Alcotest.(check bool) "Table 2 has >= 9 rows" true
    (List.length (Machine.rows Machine.default) >= 9)

(* --- energy model --- *)

let test_access_energy_monotone () =
  let e s = Em.access_energy_nj Em.L1d ~size_bytes:(s * 1024) in
  Alcotest.(check bool) "monotone in size" true
    (e 8 < e 16 && e 16 < e 32 && e 32 < e 64)

let test_access_energy_anchor () =
  Tu.check_approx ~eps:1e-9 "L1 anchor 0.5 nJ at 64 KB" 0.5
    (Em.access_energy_nj Em.L1d ~size_bytes:(64 * 1024));
  Tu.check_approx ~eps:1e-9 "L2 anchor 2.5 nJ at 1 MB" 2.5
    (Em.access_energy_nj Em.L2 ~size_bytes:(1024 * 1024))

let test_leakage_linear () =
  let l s = Em.leakage_nj_per_cycle Em.L2 ~size_bytes:(s * 1024) in
  Tu.check_approx ~eps:1e-12 "leakage halves with size" (l 1024 /. 2.0) (l 512);
  Tu.check_approx ~eps:1e-12 "leakage at 128 KB = 1/8" (l 1024 /. 8.0) (l 128)

let test_line_transfer_positive () =
  Alcotest.(check bool) "positive transfer energies" true
    (Em.line_transfer_nj Em.L1d > 0.0 && Em.line_transfer_nj Em.L2 > 0.0)

let test_family_names () =
  Alcotest.(check string) "L1D" "L1D" (Em.family_name Em.L1d);
  Alcotest.(check string) "L2" "L2" (Em.family_name Em.L2);
  Alcotest.(check string) "L1I" "L1I" (Em.family_name Em.L1i)

(* --- accounting --- *)

let test_accounting_single_epoch () =
  let a = Acct.create Em.L1d ~initial_size:(64 * 1024) in
  Acct.finish a ~accesses_now:1000 ~cycles_now:10_000.0;
  let expect_dyn = 1000.0 *. Em.access_energy_nj Em.L1d ~size_bytes:(64 * 1024) in
  let expect_leak = 10_000.0 *. Em.leakage_nj_per_cycle Em.L1d ~size_bytes:(64 * 1024) in
  Tu.check_approx ~eps:1e-6 "dynamic" expect_dyn (Acct.dynamic_nj a);
  Tu.check_approx ~eps:1e-6 "leakage" expect_leak (Acct.leakage_nj a);
  Tu.check_approx ~eps:1e-6 "total" (expect_dyn +. expect_leak) (Acct.total_nj a);
  Tu.check_approx ~eps:1e-6 "reconfig energy zero" 0.0 (Acct.reconfig_nj a);
  Alcotest.(check int) "no reconfigs" 0 (Acct.reconfig_count a)

let test_accounting_reconfig () =
  let a = Acct.create Em.L1d ~initial_size:(64 * 1024) in
  Acct.on_reconfig a ~new_size:(8 * 1024) ~accesses_now:1000 ~cycles_now:5000.0
    ~flushed_lines:10;
  Acct.finish a ~accesses_now:3000 ~cycles_now:9000.0;
  let e64 = Em.access_energy_nj Em.L1d ~size_bytes:(64 * 1024) in
  let e8 = Em.access_energy_nj Em.L1d ~size_bytes:(8 * 1024) in
  Tu.check_approx ~eps:1e-6 "dynamic split by epoch"
    ((1000.0 *. e64) +. (2000.0 *. e8))
    (Acct.dynamic_nj a);
  Tu.check_approx ~eps:1e-6 "flush energy"
    (10.0 *. Em.line_transfer_nj Em.L1d)
    (Acct.reconfig_nj a);
  Alcotest.(check int) "one reconfig" 1 (Acct.reconfig_count a)

let test_time_weighted_avg () =
  let a = Acct.create Em.L1d ~initial_size:(64 * 1024) in
  Acct.on_reconfig a ~new_size:(8 * 1024) ~accesses_now:0 ~cycles_now:1000.0
    ~flushed_lines:0;
  Acct.finish a ~accesses_now:0 ~cycles_now:4000.0;
  (* 1000 cycles at 64K, 3000 at 8K -> (64*1000 + 8*3000)/4000 = 22 KB. *)
  Tu.check_approx ~eps:1.0 "time-weighted avg" (22.0 *. 1024.0)
    (Acct.time_weighted_avg_bytes a)

let test_smaller_config_saves_energy () =
  (* Same activity at 8 KB must cost less than at 64 KB. *)
  let big = Acct.create Em.L1d ~initial_size:(64 * 1024) in
  Acct.finish big ~accesses_now:100_000 ~cycles_now:1e6;
  let small = Acct.create Em.L1d ~initial_size:(8 * 1024) in
  Acct.finish small ~accesses_now:100_000 ~cycles_now:1e6;
  Alcotest.(check bool) "downsizing saves energy" true
    (Acct.total_nj small < Acct.total_nj big);
  (* And the saving should be substantial (> 50% for 8x downsizing). *)
  Alcotest.(check bool) "saving > 50%" true
    (Acct.total_nj small < 0.5 *. Acct.total_nj big)

let suite =
  [
    Tu.case "issue bound" test_issue_bound;
    Tu.case "ilp bound" test_ilp_bound;
    Tu.case "quality scales ipc" test_quality_scales_ipc;
    Tu.case "memory overlap" test_memory_overlap;
    Tu.case "mispredict penalty" test_mispredicts;
    Tu.case "quality floor" test_quality_floor;
    Tu.case "overhead cycles" test_overhead_cycles;
    Tu.case "machine rows" test_machine_rows;
    Tu.case "access energy monotone" test_access_energy_monotone;
    Tu.case "access energy anchors" test_access_energy_anchor;
    Tu.case "leakage linear" test_leakage_linear;
    Tu.case "line transfer positive" test_line_transfer_positive;
    Tu.case "family names" test_family_names;
    Tu.case "accounting single epoch" test_accounting_single_epoch;
    Tu.case "accounting reconfig epochs" test_accounting_reconfig;
    Tu.case "time-weighted average size" test_time_weighted_avg;
    Tu.case "downsizing saves energy" test_smaller_config_saves_energy;
  ]
