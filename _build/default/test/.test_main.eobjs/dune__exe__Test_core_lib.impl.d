test/test_core_lib.ml: Ace_core Ace_util Ace_vm Alcotest Array Gen Hashtbl List QCheck Tu
