test/test_invariants.ml: Ace_mem Ace_power Ace_util Ace_vm Alcotest QCheck Tu
