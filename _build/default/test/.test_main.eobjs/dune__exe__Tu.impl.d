test/tu.ml: Ace_isa Ace_workloads Alcotest Float QCheck_alcotest
