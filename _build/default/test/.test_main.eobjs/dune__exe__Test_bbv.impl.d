test/test_bbv.ml: Ace_bbv Ace_core Ace_power Ace_util Ace_vm Alcotest Array Tu
