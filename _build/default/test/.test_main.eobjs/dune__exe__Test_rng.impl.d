test/test_rng.ml: Ace_util Alcotest Array Fun QCheck Tu
