test/test_table.ml: Ace_util Alcotest List String Tu
