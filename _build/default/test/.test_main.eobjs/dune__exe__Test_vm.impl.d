test/test_vm.ml: Ace_isa Ace_util Ace_vm Alcotest List QCheck String Tu
