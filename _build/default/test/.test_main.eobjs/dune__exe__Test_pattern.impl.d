test/test_pattern.ml: Ace_isa Ace_util Alcotest Hashtbl List QCheck Result Tu
