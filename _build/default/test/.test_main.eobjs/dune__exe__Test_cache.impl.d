test/test_cache.ml: Ace_mem Ace_util Alcotest List QCheck Tu
