test/test_builder.ml: Ace_isa Alcotest Array List Printf QCheck Tu
