test/test_program.ml: Ace_isa Alcotest Array Result Tu
