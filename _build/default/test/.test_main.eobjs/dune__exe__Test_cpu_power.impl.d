test/test_cpu_power.ml: Ace_cpu Ace_power Alcotest List Tu
