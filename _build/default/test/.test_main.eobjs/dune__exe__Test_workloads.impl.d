test/test_workloads.ml: Ace_isa Ace_vm Ace_workloads Alcotest Array List Printf QCheck String Tu
