test/test_stats.ml: Ace_util Alcotest Array Gen QCheck Tu
