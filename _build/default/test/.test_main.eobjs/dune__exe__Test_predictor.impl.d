test/test_predictor.ml: Ace_core Ace_isa Ace_vm Ace_workloads Alcotest Array List Tu
