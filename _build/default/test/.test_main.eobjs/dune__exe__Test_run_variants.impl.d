test/test_run_variants.ml: Ace_core Ace_harness Ace_workloads Alcotest Array Tu
