test/test_framework.ml: Ace_core Ace_mem Ace_power Ace_vm Ace_workloads Alcotest Array List Printf Tu
