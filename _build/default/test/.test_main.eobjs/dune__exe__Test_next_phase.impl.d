test/test_next_phase.ml: Ace_bbv Ace_harness Ace_workloads Alcotest Tu
