test/test_harness.ml: Ace_core Ace_harness Ace_util Ace_workloads Alcotest Array Float Hashtbl Lazy List String Tu
