test/test_mem.ml: Ace_mem Alcotest Tu
