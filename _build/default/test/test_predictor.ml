(* Static configuration prediction (the paper's §6 future work). *)
module Predictor = Ace_core.Predictor
module Cu = Ace_core.Cu
module Kit = Ace_workloads.Kit
module Engine = Ace_vm.Engine
module Framework = Ace_core.Framework

(* Program with a known working set: one 6 KB hot region + one 96 KB stream
   + one 512 KB spray, nested under an L2-class phase. *)
let program () =
  let k = Kit.create ~name:"pred" ~seed:2 in
  let hot = Kit.data_region k ~kb:6 in
  let streambuf = Kit.data_region k ~kb:96 in
  let spray = Kit.data_region k ~kb:512 in
  let hot_leaf =
    Kit.meth k ~name:"hot_leaf"
      [ Kit.exec (Kit.block k ~instrs:1000 ~mem_frac:0.3 ~access:(Kit.Uniform hot) ()) 1 ]
  in
  let stream_leaf =
    Kit.meth k ~name:"stream_leaf"
      [
        Kit.exec
          (Kit.block k ~instrs:1000 ~mem_frac:0.3 ~access:(Kit.Stream (streambuf, 8)) ())
          1;
      ]
  in
  let spray_leaf =
    Kit.meth k ~name:"spray_leaf"
      [ Kit.exec (Kit.block k ~instrs:1000 ~mem_frac:0.2 ~access:(Kit.Uniform spray) ()) 1 ]
  in
  let work =
    Kit.meth k ~name:"work"
      [ Kit.call hot_leaf 60; Kit.call stream_leaf 30; Kit.call spray_leaf 10 ]
  in
  let phase = Kit.meth k ~name:"phase" [ Kit.call work 6 ] in
  let main = Kit.meth k ~name:"main" [ Kit.call phase 60 ] in
  (Kit.finish k ~entry:main, 3 (* work *), 4 (* phase *))

let test_analyze_excludes_streams_and_sprays () =
  let p, work, _ = program () in
  let ws = Predictor.analyze p ~meth_id:work in
  (* L1 set: just the 6 KB hot region (stream excluded as sequential, spray
     excluded as > 96 KB). *)
  Alcotest.(check int) "l1 working set" (6 * 1024) ws.Predictor.l1_bytes;
  (* L2 set: all data regions + code. *)
  Alcotest.(check bool) "l2 includes everything" true
    (ws.Predictor.l2_bytes >= (6 + 96 + 512) * 1024)

let test_analyze_inclusive_of_callees () =
  let p, work, phase = program () in
  let w1 = Predictor.analyze p ~meth_id:work in
  let w2 = Predictor.analyze p ~meth_id:phase in
  Alcotest.(check int) "parent sees the same data" w1.Predictor.l1_bytes
    w2.Predictor.l1_bytes

let test_union_of_overlapping_windows () =
  let k = Kit.create ~name:"overlap" ~seed:3 in
  let big = Kit.data_region k ~kb:32 in
  let w1 = Kit.sub_region k big ~at_kb:0 ~kb:8 in
  let w2 = Kit.sub_region k big ~at_kb:4 ~kb:8 in
  let leaf name w =
    Kit.meth k ~name
      [ Kit.exec (Kit.block k ~instrs:500 ~mem_frac:0.3 ~access:(Kit.Uniform w) ()) 1 ]
  in
  let a = leaf "a" w1 and b = leaf "b" w2 in
  let m = Kit.meth k ~name:"m" [ Kit.call a 1; Kit.call b 1 ] in
  let p = Kit.finish k ~entry:m in
  let ws = Predictor.analyze p ~meth_id:(Ace_isa.Builder.handle_id m) in
  (* Windows [0,8K) and [4K,12K) union to 12 KB, not 16 KB. *)
  Alcotest.(check int) "interval union" (12 * 1024) ws.Predictor.l1_bytes

let mk_l1d () =
  let e = Engine.create (Tu.tiny_program ()) in
  Cu.l1d e

let test_pick_setting_small () =
  let cu = mk_l1d () in
  Alcotest.(check int) "6KB -> 8KB setting" 3
    (Predictor.pick_setting cu ~working_set:(6 * 1024));
  Alcotest.(check int) "10KB -> 16KB setting" 2
    (Predictor.pick_setting cu ~working_set:(10 * 1024));
  Alcotest.(check int) "40KB -> 64KB setting" 0
    (Predictor.pick_setting cu ~working_set:(40 * 1024))

let test_pick_setting_partial_residency () =
  let cu = mk_l1d () in
  (* Slightly over the largest: keep the largest. *)
  Alcotest.(check int) "80KB -> 64KB (largest)" 0
    (Predictor.pick_setting cu ~working_set:(80 * 1024))

let test_pick_setting_streaming () =
  let cu = mk_l1d () in
  (* Far over the largest: misses are unavoidable, take the cheapest. *)
  Alcotest.(check int) "1MB -> 8KB (smallest)" 3
    (Predictor.pick_setting cu ~working_set:(1024 * 1024))

let test_predict_end_to_end () =
  let p, work, phase = program () in
  let e = Engine.create p in
  let cus = [| Cu.l1d e; Cu.l2 e |] in
  (match Predictor.predict p ~cus ~managed:[ 0 ] ~meth_id:work with
  | Some cfg -> Alcotest.(check (array int)) "work -> 8KB L1D" [| 3 |] cfg
  | None -> Alcotest.fail "expected a prediction");
  match Predictor.predict p ~cus ~managed:[ 1 ] ~meth_id:phase with
  | Some cfg ->
      (* ~614 KB + code: the 1 MB setting. *)
      Alcotest.(check (array int)) "phase -> 1MB L2" [| 0 |] cfg
  | None -> Alcotest.fail "expected a prediction"

let test_predict_refuses_non_cache_cu () =
  let p, work, _ = program () in
  let e = Engine.create p in
  let cus = [| Cu.issue_queue e |] in
  Alcotest.(check bool) "no static model for the issue queue" true
    (Predictor.predict p ~cus ~managed:[ 0 ] ~meth_id:work = None)

let test_framework_prediction_skips_tuning () =
  let p, _, _ = program () in
  let engine =
    Engine.create ~config:{ Engine.default_config with hot_threshold = 3 } p
  in
  let cus = [| Cu.l1d engine; Cu.l2 engine |] in
  let fw =
    Framework.attach
      ~config:{ Framework.default_config with prediction = true }
      engine ~cus
  in
  Engine.run engine;
  Framework.finalize fw;
  let reports = Framework.report fw in
  Alcotest.(check bool) "hotspots predicted" true
    (Array.exists (fun r -> r.Framework.predicted_hotspots > 0) reports);
  Alcotest.(check int) "no tuning trials" 0
    (Array.fold_left (fun a r -> a + r.Framework.tunings) 0 reports);
  (* Predicted hotspots count as configured: coverage must be high. *)
  Alcotest.(check bool) "L1D coverage high" true (reports.(0).Framework.coverage > 0.8);
  (* And the 6 KB working set must have produced a small L1D. *)
  List.iter
    (fun (v : Framework.hotspot_view) ->
      if v.Framework.meth_name = "work" then
        Alcotest.(check (list (pair string string))) "predicted selection"
          [ ("L1D", "8KB") ] v.Framework.selection)
    (Framework.hotspot_views fw)

let test_tuner_create_configured () =
  let t =
    Ace_core.Tuner.create_configured Ace_core.Tuner.default_params
      ~configs:[| [| 0 |]; [| 1 |] |]
      ~best:[| 1 |]
  in
  Alcotest.(check bool) "starts configured" true (Ace_core.Tuner.is_configured t);
  Alcotest.(check bool) "selected is the prediction" true
    (Ace_core.Tuner.selected t = Some [| 1 |]);
  match Ace_core.Tuner.on_entry t with
  | Ace_core.Tuner.Set cfg -> Alcotest.(check (array int)) "applies it" [| 1 |] cfg
  | Ace_core.Tuner.Nothing -> Alcotest.fail "expected Set"

let suite =
  [
    Tu.case "analyze excludes streams/sprays" test_analyze_excludes_streams_and_sprays;
    Tu.case "analyze inclusive of callees" test_analyze_inclusive_of_callees;
    Tu.case "analyze unions overlapping windows" test_union_of_overlapping_windows;
    Tu.case "pick_setting small sets" test_pick_setting_small;
    Tu.case "pick_setting partial residency" test_pick_setting_partial_residency;
    Tu.case "pick_setting streaming" test_pick_setting_streaming;
    Tu.case "predict end to end" test_predict_end_to_end;
    Tu.case "predict refuses non-cache CU" test_predict_refuses_non_cache_cu;
    Tu.case "framework prediction skips tuning" test_framework_prediction_skips_tuning;
    Tu.case "tuner create_configured" test_tuner_create_configured;
  ]
