module Table = Ace_util.Table

let render_lines tbl = String.split_on_char '\n' (Table.render tbl)

let test_basic_render () =
  let tbl = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row tbl [ "x"; "1" ];
  Table.add_row tbl [ "yy"; "22" ];
  let lines = render_lines tbl in
  let rules = List.filter (fun l -> String.length l > 0 && l.[0] = '+') lines in
  Alcotest.(check int) "three rules (top, under header, bottom)" 3 (List.length rules);
  let data = List.filter (fun l -> String.length l > 0 && l.[0] = '|') lines in
  Alcotest.(check int) "header + two rows" 3 (List.length data)

let test_alignment () =
  let tbl = Table.create ~columns:[ ("n", Table.Right) ] in
  Table.add_row tbl [ "1" ];
  Table.add_row tbl [ "100" ];
  let lines = render_lines tbl in
  let data_lines = List.filter (fun l -> String.length l > 0 && l.[0] = '|') lines in
  (* right-aligned: "  1" padded *)
  match data_lines with
  | [ _header; one; hundred ] ->
      Alcotest.(check string) "padded narrow cell" "|   1 |" one;
      Alcotest.(check string) "wide cell" "| 100 |" hundred
  | _ -> Alcotest.fail "unexpected table shape"

let test_row_padding () =
  let tbl = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Left) ] in
  Table.add_row tbl [ "only" ];
  let lines = render_lines tbl in
  Alcotest.(check bool) "short row padded, renders" true (List.length lines > 3)

let test_too_many_cells () =
  let tbl = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row tbl [ "1"; "2" ])

let test_separator () =
  let tbl = Table.create ~columns:[ ("a", Table.Left) ] in
  Table.add_row tbl [ "x" ];
  Table.add_separator tbl;
  Table.add_row tbl [ "avg" ];
  let lines = render_lines tbl in
  let rules = List.filter (fun l -> String.length l > 0 && l.[0] = '+') lines in
  Alcotest.(check int) "four rules with separator" 4 (List.length rules)

let test_cell_float () =
  Alcotest.(check string) "default decimals" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "custom decimals" "3.1416"
    (Table.cell_float ~decimals:4 3.14159)

let test_cell_pct () =
  Alcotest.(check string) "pct" "47.0%" (Table.cell_pct 0.47);
  Alcotest.(check string) "pct decimals" "46.99%" (Table.cell_pct ~decimals:2 0.4699)

let test_cell_int () =
  Alcotest.(check string) "small" "7" (Table.cell_int 7);
  Alcotest.(check string) "thousands" "1,234" (Table.cell_int 1234);
  Alcotest.(check string) "millions" "9,830,000,000" (Table.cell_int 9_830_000_000);
  Alcotest.(check string) "negative" "-1,234" (Table.cell_int (-1234));
  Alcotest.(check string) "exact thousand" "1,000" (Table.cell_int 1000)

let suite =
  [
    Tu.case "basic render" test_basic_render;
    Tu.case "alignment" test_alignment;
    Tu.case "row padding" test_row_padding;
    Tu.case "too many cells" test_too_many_cells;
    Tu.case "separator" test_separator;
    Tu.case "cell_float" test_cell_float;
    Tu.case "cell_pct" test_cell_pct;
    Tu.case "cell_int" test_cell_int;
  ]
