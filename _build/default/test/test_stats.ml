module Stats = Ace_util.Stats

let test_mean_empty () = Tu.check_approx "empty mean" 0.0 (Stats.mean [||])
let test_mean () = Tu.check_approx "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stddev_singleton () =
  Tu.check_approx "stddev of one sample" 0.0 (Stats.stddev [| 5.0 |])

let test_stddev () =
  (* population stddev of {2,4,4,4,5,5,7,9} = 2 *)
  Tu.check_approx "known stddev" 2.0
    (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_cov () =
  Tu.check_approx "cov = stddev/mean" 0.4
    (Stats.cov [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_cov_zero_mean () =
  Tu.check_approx "cov with zero mean" 0.0 (Stats.cov [| -1.0; 1.0 |])

let test_manhattan () =
  Tu.check_approx "manhattan" 4.0 (Stats.manhattan [| 0.; 1.; 2. |] [| 1.; 0.; 0. |])

let test_manhattan_self () =
  Tu.check_approx "d(x,x)=0" 0.0 (Stats.manhattan [| 0.3; 0.7 |] [| 0.3; 0.7 |])

let test_manhattan_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.manhattan: length mismatch") (fun () ->
      ignore (Stats.manhattan [| 1.0 |] [| 1.0; 2.0 |]))

let test_normalize () =
  let v = Stats.normalize_l1 [| 1.0; 3.0 |] in
  Tu.check_approx "normalized sum" 1.0 (v.(0) +. v.(1));
  Tu.check_approx "proportions" 0.25 v.(0)

let test_normalize_zero () =
  let v = Stats.normalize_l1 [| 0.0; 0.0 |] in
  Tu.check_approx "zero vector unchanged" 0.0 (v.(0) +. v.(1))

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. |] in
  Tu.check_approx "p50" 5.0 (Stats.percentile xs 50.0);
  Tu.check_approx "p100" 10.0 (Stats.percentile xs 100.0);
  Tu.check_approx "p10" 1.0 (Stats.percentile xs 10.0)

let test_running_matches_batch () =
  let xs = [| 3.1; 2.7; 9.9; 0.4; 5.5; 5.5 |] in
  let r = Stats.Running.create () in
  Array.iter (Stats.Running.add r) xs;
  Tu.check_approx ~eps:1e-9 "running mean" (Stats.mean xs) (Stats.Running.mean r);
  Tu.check_approx ~eps:1e-9 "running stddev" (Stats.stddev xs) (Stats.Running.stddev r);
  Tu.check_approx ~eps:1e-9 "running cov" (Stats.cov xs) (Stats.Running.cov r);
  Alcotest.(check int) "count" 6 (Stats.Running.count r);
  Tu.check_approx "last" 5.5 (Stats.Running.last r)

let test_running_empty () =
  let r = Stats.Running.create () in
  Tu.check_approx "empty running mean" 0.0 (Stats.Running.mean r);
  Tu.check_approx "empty running stddev" 0.0 (Stats.Running.stddev r)

let test_ema_first_sample () =
  let e = Stats.Ema.create ~alpha:0.5 in
  Alcotest.(check bool) "empty" true (Stats.Ema.is_empty e);
  Stats.Ema.add e 10.0;
  Tu.check_approx "first sample seeds" 10.0 (Stats.Ema.value e);
  Alcotest.(check bool) "non-empty" false (Stats.Ema.is_empty e)

let test_ema_blend () =
  let e = Stats.Ema.create ~alpha:0.5 in
  Stats.Ema.add e 10.0;
  Stats.Ema.add e 20.0;
  Tu.check_approx "blend" 15.0 (Stats.Ema.value e)

let test_ema_convergence () =
  let e = Stats.Ema.create ~alpha:0.3 in
  for _ = 1 to 100 do
    Stats.Ema.add e 7.0
  done;
  Tu.check_approx ~eps:1e-6 "converges to constant input" 7.0 (Stats.Ema.value e)

let prop_running_mean =
  QCheck.Test.make ~name:"running mean equals batch mean" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let r = Stats.Running.create () in
      Array.iter (Stats.Running.add r) arr;
      Tu.approx ~eps:1e-6 (Stats.mean arr) (Stats.Running.mean r))

let prop_manhattan_triangle =
  QCheck.Test.make ~name:"manhattan triangle inequality" ~count:200
    QCheck.(
      triple
        (array_of_size (Gen.return 8) (float_range 0.0 1.0))
        (array_of_size (Gen.return 8) (float_range 0.0 1.0))
        (array_of_size (Gen.return 8) (float_range 0.0 1.0)))
    (fun (a, b, c) ->
      Stats.manhattan a c <= Stats.manhattan a b +. Stats.manhattan b c +. 1e-9)

let prop_normalize_sums_to_one =
  QCheck.Test.make ~name:"normalize_l1 sums to 1 for non-zero vectors" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 16) (float_range 0.001 100.0))
    (fun v ->
      let n = Stats.normalize_l1 v in
      Tu.approx ~eps:1e-9 1.0 (Array.fold_left ( +. ) 0.0 n))

let suite =
  [
    Tu.case "mean empty" test_mean_empty;
    Tu.case "mean" test_mean;
    Tu.case "stddev singleton" test_stddev_singleton;
    Tu.case "stddev known" test_stddev;
    Tu.case "cov" test_cov;
    Tu.case "cov zero mean" test_cov_zero_mean;
    Tu.case "manhattan" test_manhattan;
    Tu.case "manhattan self" test_manhattan_self;
    Tu.case "manhattan mismatch" test_manhattan_mismatch;
    Tu.case "normalize" test_normalize;
    Tu.case "normalize zero" test_normalize_zero;
    Tu.case "percentile" test_percentile;
    Tu.case "running matches batch" test_running_matches_batch;
    Tu.case "running empty" test_running_empty;
    Tu.case "ema first sample" test_ema_first_sample;
    Tu.case "ema blend" test_ema_blend;
    Tu.case "ema convergence" test_ema_convergence;
    Tu.qcheck prop_running_mean;
    Tu.qcheck prop_manhattan_triangle;
    Tu.qcheck prop_normalize_sums_to_one;
  ]
