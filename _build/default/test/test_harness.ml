(* Integration tests: the Run/Experiments layer at reduced scale.  These are
   the reproduction's acceptance tests — they assert the *shape* of the
   paper's results (who wins, roughly by how much), not absolute numbers. *)
module Run = Ace_harness.Run
module Scheme = Ace_harness.Scheme
module Experiments = Ace_harness.Experiments

let scale = 0.3

let memo = Hashtbl.create 16

let result w scheme =
  let key = (w.Ace_workloads.Workload.name, Scheme.name scheme) in
  match Hashtbl.find_opt memo key with
  | Some r -> r
  | None ->
      let r = Run.run ~scale w scheme in
      Hashtbl.replace memo key r;
      r

let compress = Ace_workloads.Compress.workload
let mpeg = Ace_workloads.Mpeg.workload

let test_scheme_names () =
  Alcotest.(check (list string)) "names"
    [ "baseline"; "hotspot"; "bbv" ]
    (List.map Scheme.name Scheme.all);
  List.iter
    (fun s -> Alcotest.(check bool) "roundtrip" true (Scheme.of_string (Scheme.name s) = Some s))
    Scheme.all;
  Alcotest.(check bool) "unknown" true (Scheme.of_string "magic" = None)

let test_baseline_stays_at_max () =
  let r = result compress Scheme.Fixed_baseline in
  Tu.check_approx ~eps:1.0 "L1D at 64KB" (64.0 *. 1024.0) r.Run.l1d_avg_bytes;
  Tu.check_approx ~eps:1.0 "L2 at 1MB" (1024.0 *. 1024.0) r.Run.l2_avg_bytes;
  Alcotest.(check bool) "no scheme stats" true
    (r.Run.hotspot = None && r.Run.bbv = None)

let test_same_program_instrs_across_schemes () =
  let b = result compress Scheme.Fixed_baseline in
  let h = result compress Scheme.Hotspot in
  let v = result compress Scheme.Bbv in
  Alcotest.(check int) "hotspot same instrs" b.Run.instrs h.Run.instrs;
  Alcotest.(check int) "bbv same instrs" b.Run.instrs v.Run.instrs

let test_hotspot_saves_energy () =
  let b = result compress Scheme.Fixed_baseline in
  let h = result compress Scheme.Hotspot in
  Alcotest.(check bool) "L1D energy saved" true
    (h.Run.l1d_energy_nj < 0.8 *. b.Run.l1d_energy_nj);
  Alcotest.(check bool) "L2 energy saved" true
    (h.Run.l2_energy_nj < 0.8 *. b.Run.l2_energy_nj)

let test_hotspot_beats_bbv_on_compress () =
  let h = result compress Scheme.Hotspot in
  let v = result compress Scheme.Bbv in
  Alcotest.(check bool) "hotspot saves at least as much L1D energy" true
    (h.Run.l1d_energy_nj < v.Run.l1d_energy_nj *. 1.05);
  (* At reduced scale the hotspot scheme's tuning overhead is amortized over
     64x fewer instructions than in the paper, so allow a margin; the
     full-scale comparison is Figure 4 in EXPERIMENTS.md. *)
  Alcotest.(check bool) "hotspot is not appreciably slower" true
    (h.Run.cycles <= v.Run.cycles *. 1.08)

let test_slowdowns_ordered () =
  let b = result compress Scheme.Fixed_baseline in
  let h = result compress Scheme.Hotspot in
  Alcotest.(check bool) "adaptive is slower than fixed" true (h.Run.cycles > b.Run.cycles);
  Alcotest.(check bool) "but within 20% at this scale" true
    (h.Run.cycles < 1.2 *. b.Run.cycles)

let test_hotspot_stats_present () =
  let h = result mpeg Scheme.Hotspot in
  match h.Run.hotspot with
  | None -> Alcotest.fail "hotspot stats missing"
  | Some stats ->
      Alcotest.(check int) "two CUs" 2 (Array.length stats.Run.reports);
      Alcotest.(check bool) "some hotspots managed" true
        (Array.exists (fun r -> r.Ace_core.Framework.class_hotspots > 0) stats.Run.reports);
      Alcotest.(check bool) "views non-empty" true (stats.Run.views <> [])

let test_bbv_stats_present () =
  let v = result mpeg Scheme.Bbv in
  match v.Run.bbv with
  | None -> Alcotest.fail "bbv stats missing"
  | Some stats ->
      Alcotest.(check bool) "phases detected" true (stats.Run.phases >= 1);
      Alcotest.(check bool) "stable fraction in [0,1]" true
        (stats.Run.stable_frac >= 0.0 && stats.Run.stable_frac <= 1.0)

let test_do_stats_sane () =
  let h = result mpeg Scheme.Hotspot in
  let s = h.Run.do_stats in
  Alcotest.(check bool) "hotspots found" true (s.Run.hotspot_count > 3);
  Alcotest.(check bool) "coverage high" true (s.Run.pct_code_in_hotspots > 0.9);
  Alcotest.(check bool) "id latency small" true (s.Run.id_latency_frac < 0.2);
  Alcotest.(check bool) "mean size positive" true (s.Run.mean_hotspot_size > 0.0)

let test_seed_determinism () =
  let a = Run.run ~scale:0.05 compress Scheme.Hotspot in
  let b = Run.run ~scale:0.05 compress Scheme.Hotspot in
  Alcotest.(check bool) "bit-identical results" true
    (a.Run.cycles = b.Run.cycles && a.Run.l1d_energy_nj = b.Run.l1d_energy_nj)

let test_seed_sensitivity () =
  let a = Run.run ~scale:0.05 ~seed:1 compress Scheme.Fixed_baseline in
  let b = Run.run ~scale:0.05 ~seed:2 compress Scheme.Fixed_baseline in
  Alcotest.(check bool) "different seeds give different cycles" true
    (a.Run.cycles <> b.Run.cycles)

(* --- experiments layer --- *)

let ctx =
  lazy (Experiments.create ~scale:0.3 ~workloads:[ compress; mpeg ] ())

let rendered tbl =
  let s = Ace_util.Table.render tbl in
  Alcotest.(check bool) "non-empty render" true (String.length s > 50);
  s

let test_static_tables () =
  ignore (rendered (Experiments.table2 ()));
  ignore (rendered (Experiments.table3 ()))

let test_experiment_tables_render () =
  let ctx = Lazy.force ctx in
  List.iter
    (fun (name, tbl) ->
      let s = Ace_util.Table.render tbl in
      Alcotest.(check bool) (name ^ " renders") true (String.length s > 50))
    (Experiments.all ctx)

let test_energy_reduction_accessors () =
  let ctx = Lazy.force ctx in
  let l1, l2 = Experiments.energy_reduction ctx compress Scheme.Hotspot in
  Alcotest.(check bool) "L1D reduction in (0,1)" true (l1 > 0.0 && l1 < 1.0);
  Alcotest.(check bool) "L2 reduction in (-1,1)" true (l2 > -1.0 && l2 < 1.0);
  let avg1, avg2 = Experiments.average_energy_reduction ctx Scheme.Hotspot in
  Alcotest.(check bool) "averages finite" true
    (Float.is_finite avg1 && Float.is_finite avg2);
  Alcotest.(check bool) "slowdown positive" true
    (Experiments.slowdown ctx compress Scheme.Hotspot > 0.0)

let suite =
  [
    Tu.case "scheme names" test_scheme_names;
    Tu.slow_case "baseline stays at max" test_baseline_stays_at_max;
    Tu.slow_case "same program instrs across schemes" test_same_program_instrs_across_schemes;
    Tu.slow_case "hotspot saves energy" test_hotspot_saves_energy;
    Tu.slow_case "hotspot beats bbv on compress" test_hotspot_beats_bbv_on_compress;
    Tu.slow_case "slowdowns ordered" test_slowdowns_ordered;
    Tu.slow_case "hotspot stats present" test_hotspot_stats_present;
    Tu.slow_case "bbv stats present" test_bbv_stats_present;
    Tu.slow_case "do stats sane" test_do_stats_sane;
    Tu.slow_case "seed determinism" test_seed_determinism;
    Tu.slow_case "seed sensitivity" test_seed_sensitivity;
    Tu.case "static tables" test_static_tables;
    Tu.slow_case "experiment tables render" test_experiment_tables_render;
    Tu.slow_case "energy reduction accessors" test_energy_reduction_accessors;
  ]
