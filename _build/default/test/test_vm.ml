(* Engine / DO-system tests. *)
module Engine = Ace_vm.Engine
module Db = Ace_vm.Do_database
module Profile = Ace_vm.Profile
module Instrument = Ace_vm.Instrument
module Program = Ace_isa.Program

let config ?(hot_threshold = 4) ?(interval = None) () =
  { Engine.default_config with Engine.hot_threshold; interval_instrs = interval }

let test_instruction_count_exact () =
  let p = Tu.tiny_program ~reps:10 ~worker_instrs:1000 () in
  let e = Engine.create ~config:(config ()) p in
  Engine.run e;
  Alcotest.(check int) "program instrs exact" (Program.total_dynamic_instrs p)
    (Engine.instrs e)

let test_cycles_positive_and_bounded () =
  let p = Tu.tiny_program () in
  let e = Engine.create ~config:(config ()) p in
  Engine.run e;
  Alcotest.(check bool) "cycles > instrs/width" true
    (Engine.cycles e > float_of_int (Engine.instrs e) /. 4.0);
  Alcotest.(check bool) "ipc in (0, width]" true
    (Engine.ipc e > 0.0 && Engine.ipc e <= 4.0)

let test_determinism () =
  let run () =
    let e = Engine.create ~config:(config ()) (Tu.tiny_program ()) in
    Engine.run e;
    (Engine.instrs e, Engine.cycles e, Engine.overhead_instrs e)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_run_once_only () =
  let e = Engine.create ~config:(config ()) (Tu.tiny_program ()) in
  Engine.run e;
  Alcotest.check_raises "second run rejected"
    (Invalid_argument "Engine.run: engine already ran") (fun () -> Engine.run e)

let test_invocation_counting () =
  let p = Tu.tiny_program ~reps:25 () in
  let e = Engine.create ~config:(config ()) p in
  Engine.run e;
  let db = Engine.db e in
  Alcotest.(check int) "worker invocations" 25 (Db.entry db 0).Db.invocations;
  Alcotest.(check int) "main invocations" 1 (Db.entry db 1).Db.invocations

let test_hotspot_promotion_threshold () =
  let p = Tu.tiny_program ~reps:25 () in
  let e = Engine.create ~config:(config ~hot_threshold:10 ()) p in
  let promoted = ref [] in
  (Engine.hooks e).Engine.on_hotspot_promoted <-
    (fun ~meth_id -> promoted := meth_id :: !promoted);
  Engine.run e;
  Alcotest.(check (list int)) "only worker promoted" [ 0 ] !promoted;
  let entry = Db.entry (Engine.db e) 0 in
  Alcotest.(check bool) "flagged" true entry.Db.is_hotspot;
  Alcotest.(check bool) "promoted at threshold" true (entry.Db.promoted_at_instr >= 0)

let test_no_promotion_below_threshold () =
  let p = Tu.tiny_program ~reps:5 () in
  let e = Engine.create ~config:(config ~hot_threshold:10 ()) p in
  Engine.run e;
  Alcotest.(check int) "no hotspots" 0 (Db.hotspot_count (Engine.db e))

let test_size_estimation () =
  let p, `Leaf leaf, `Middle middle, `Outer outer = Tu.nested_program () in
  let e = Engine.create ~config:(config ()) p in
  Engine.run e;
  let db = Engine.db e in
  let size id = Db.estimated_size (Db.entry db id) in
  Alcotest.(check int) "leaf size exact" 1000 (size leaf);
  Alcotest.(check int) "middle size (inclusive)" 100_000 (size middle);
  Alcotest.(check int) "outer size (inclusive)" 600_000 (size outer)

let test_exit_profile_inclusive () =
  let p, _, `Middle middle, _ = Tu.nested_program ~outer_reps:2 () in
  let e = Engine.create ~config:(config ()) p in
  let seen = ref [] in
  (Engine.hooks e).Engine.on_method_exit <-
    (fun ~meth_id profile -> if meth_id = middle then seen := profile :: !seen);
  Engine.run e;
  Alcotest.(check int) "middle exited 12 times" 12 (List.length !seen);
  List.iter
    (fun pr ->
      Alcotest.(check int) "inclusive instrs" 100_000 pr.Profile.instrs;
      Alcotest.(check bool) "cycles positive" true (pr.Profile.cycles > 0.0);
      Alcotest.(check bool) "l1d accesses present" true (pr.Profile.l1d_accesses > 0);
      Alcotest.(check bool) "ipc positive" true (Profile.ipc pr > 0.0))
    !seen

let test_jit_recompilation_speeds_up () =
  (* With a huge threshold nothing is optimized; the run should be slower
     than with aggressive optimization. *)
  let slow =
    let e =
      Engine.create
        ~config:
          { (config ~hot_threshold:1_000_000 ()) with
            Engine.sample_opt_threshold = max_int }
        (Tu.tiny_program ~reps:2000 ())
    in
    Engine.run e;
    Engine.cycles e
  in
  let fast =
    let e = Engine.create ~config:(config ~hot_threshold:2 ()) (Tu.tiny_program ~reps:2000 ()) in
    Engine.run e;
    Engine.cycles e
  in
  Alcotest.(check bool) "optimized run is faster" true (fast < slow)

let test_recompile_hook_and_cost () =
  let p = Tu.tiny_program ~reps:20 () in
  let e = Engine.create ~config:(config ~hot_threshold:4 ()) p in
  let recompiled = ref [] in
  (Engine.hooks e).Engine.on_recompile <- (fun ~meth_id -> recompiled := meth_id :: !recompiled);
  Engine.run e;
  Alcotest.(check bool) "worker recompiled" true (List.mem 0 !recompiled);
  Alcotest.(check bool) "JIT cost charged" true (Engine.overhead_instrs e > 0)

let test_block_hook_batching () =
  let p = Tu.tiny_program ~reps:7 ~worker_instrs:500 () in
  let e = Engine.create ~config:(config ()) p in
  let total = ref 0 in
  (Engine.hooks e).Engine.on_block <-
    (fun ~pc:_ ~instrs ~count -> total := !total + (instrs * count));
  Engine.run e;
  Alcotest.(check int) "block hook sees every instruction" (Engine.instrs e) !total

let test_interval_hook () =
  let p = Tu.tiny_program ~reps:100 ~worker_instrs:1000 () in
  (* 100 K instructions; fire every 10 K. *)
  let e = Engine.create ~config:(config ~interval:(Some 10_000) ()) p in
  let fires = ref 0 in
  (Engine.hooks e).Engine.on_interval <- (fun ~total_instrs:_ -> incr fires);
  Engine.run e;
  Alcotest.(check int) "ten intervals" 10 !fires

let test_no_interval_hook_without_config () =
  let e = Engine.create ~config:(config ()) (Tu.tiny_program ()) in
  let fires = ref 0 in
  (Engine.hooks e).Engine.on_interval <- (fun ~total_instrs:_ -> incr fires);
  Engine.run e;
  Alcotest.(check int) "never fires" 0 !fires

let test_instrument_overhead_charged () =
  let p = Tu.tiny_program ~reps:50 () in
  let run instrument =
    let e = Engine.create ~config:(config ~hot_threshold:1_000_000 ()) p in
    Db.set_instrument (Engine.db e) 0 instrument;
    Engine.run e;
    (Engine.cycles e, Engine.overhead_instrs e)
  in
  let plain_cycles, plain_overhead = run Instrument.Plain in
  let tuned_cycles, tuned_overhead = run Instrument.Tuning in
  Alcotest.(check bool) "tuning stubs cost overhead instrs" true
    (tuned_overhead > plain_overhead);
  Alcotest.(check bool) "tuning stubs cost cycles" true (tuned_cycles > plain_cycles);
  Alcotest.(check int) "tuning overhead = 50 * (40+30) + JIT" (50 * 70)
    (tuned_overhead - plain_overhead)

let test_hot_instrs_tracking () =
  let p = Tu.tiny_program ~reps:100 () in
  let e = Engine.create ~config:(config ~hot_threshold:10 ()) p in
  Engine.run e;
  (* Promotion at invocation 10: ~90% of worker instructions run hot. *)
  let frac = float_of_int (Engine.hot_instrs e) /. float_of_int (Engine.instrs e) in
  Alcotest.(check bool) "hot fraction ~0.9" true (frac > 0.85 && frac < 0.95)

let test_pre_promotion_instrs () =
  let p = Tu.tiny_program ~reps:100 ~worker_instrs:1000 () in
  let e = Engine.create ~config:(config ~hot_threshold:10 ()) p in
  Engine.run e;
  let entry = Db.entry (Engine.db e) 0 in
  (* 9 invocations completed before the promotion (the 10th runs promoted). *)
  Alcotest.(check int) "identification latency instrs" 9_000
    entry.Db.pre_promotion_instrs

let test_sampler_attribution () =
  let p = Tu.tiny_program ~reps:2000 ~worker_instrs:1000 () in
  let e =
    Engine.create
      ~config:
        { (config ~hot_threshold:1_000_000 ()) with
          Engine.sample_period_cycles = 50_000.0;
          sample_opt_threshold = 1_000_000 }
      p
  in
  Engine.run e;
  let samples = (Db.entry (Engine.db e) 0).Db.samples in
  Alcotest.(check bool) "sampler attributed ticks to the busy method" true (samples > 5)

let test_ipc_profile_tracked_for_hotspots () =
  let p = Tu.tiny_program ~reps:50 () in
  let e = Engine.create ~config:(config ~hot_threshold:5 ()) p in
  Engine.run e;
  let entry = Db.entry (Engine.db e) 0 in
  Alcotest.(check bool) "ipc samples collected" true
    (Ace_util.Stats.Running.count entry.Db.ipc_profile > 40)

let test_ilp_scale () =
  let run scale =
    let e = Engine.create ~config:(config ()) (Tu.tiny_program ~reps:50 ()) in
    Engine.set_ilp_scale e scale;
    Engine.run e;
    Engine.cycles e
  in
  Alcotest.(check bool) "lower ilp scale slows execution" true (run 0.5 > run 1.0)

let test_db_aggregates () =
  let p, _, _, _ = Tu.nested_program () in
  let e = Engine.create ~config:(config ~hot_threshold:3 ()) p in
  Engine.run e;
  let db = Engine.db e in
  Alcotest.(check int) "three hotspots (leaf, middle, outer)" 3 (Db.hotspot_count db);
  Alcotest.(check bool) "mean size positive" true (Db.mean_hotspot_size db > 0.0);
  Alcotest.(check bool) "mean invocations positive" true
    (Db.mean_invocations_per_hotspot db > 1.0);
  Alcotest.(check int) "hotspot list length" 3 (List.length (Db.hotspots db))

let test_instrument_costs_table () =
  Alcotest.(check int) "plain free" 0 (Instrument.entry_instrs Instrument.Plain);
  Alcotest.(check bool) "tuning most expensive at entry" true
    (Instrument.entry_instrs Instrument.Tuning
    > Instrument.entry_instrs Instrument.Configured);
  Alcotest.(check bool) "configured has free exit" true
    (Instrument.exit_instrs Instrument.Configured = 0);
  List.iter
    (fun k -> Alcotest.(check bool) "printable" true (String.length (Instrument.to_string k) > 0))
    [ Instrument.Plain; Profiling; Tuning; Configured; Configured_sampling ]

let prop_instrs_independent_of_hooks =
  QCheck.Test.make ~name:"program instrs independent of threshold/hooks" ~count:20
    (QCheck.int_range 1 50)
    (fun threshold ->
      let p = Tu.tiny_program ~reps:30 () in
      let e = Engine.create ~config:(config ~hot_threshold:threshold ()) p in
      Engine.run e;
      Engine.instrs e = Program.total_dynamic_instrs p)

let suite =
  [
    Tu.case "instruction count exact" test_instruction_count_exact;
    Tu.case "cycles bounded" test_cycles_positive_and_bounded;
    Tu.case "determinism" test_determinism;
    Tu.case "run once only" test_run_once_only;
    Tu.case "invocation counting" test_invocation_counting;
    Tu.case "hotspot promotion threshold" test_hotspot_promotion_threshold;
    Tu.case "no promotion below threshold" test_no_promotion_below_threshold;
    Tu.case "hotspot size estimation" test_size_estimation;
    Tu.case "exit profiles inclusive" test_exit_profile_inclusive;
    Tu.case "JIT speeds up" test_jit_recompilation_speeds_up;
    Tu.case "recompile hook and cost" test_recompile_hook_and_cost;
    Tu.case "block hook batching" test_block_hook_batching;
    Tu.case "interval hook" test_interval_hook;
    Tu.case "no interval without config" test_no_interval_hook_without_config;
    Tu.case "instrument overhead charged" test_instrument_overhead_charged;
    Tu.case "hot instruction tracking" test_hot_instrs_tracking;
    Tu.case "pre-promotion instrs" test_pre_promotion_instrs;
    Tu.case "sampler attribution" test_sampler_attribution;
    Tu.case "ipc profile tracked" test_ipc_profile_tracked_for_hotspots;
    Tu.case "ilp scale" test_ilp_scale;
    Tu.case "db aggregates" test_db_aggregates;
    Tu.case "instrument cost table" test_instrument_costs_table;
    Tu.qcheck prop_instrs_independent_of_hooks;
  ]
