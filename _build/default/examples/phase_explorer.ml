(* Phase explorer: watch the BBV tracker classify a program's sampling
   intervals, and compare its view of phase structure with the DO system's
   hotspot view.

     dune exec examples/phase_explorer.exe [benchmark]

   Prints a timeline of phase ids (one character per 1 M-instruction
   interval), the signature census, and the hotspot census of the same run —
   the two detectors of §2.2 side by side. *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "javac" in
  let workload =
    match Ace_workloads.Specjvm.find name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown benchmark %s\n" name;
        exit 1
  in
  let program = workload.Ace_workloads.Workload.build ~scale:0.5 ~seed:1 in
  let config =
    {
      Ace_vm.Engine.default_config with
      hot_threshold = 2;
      interval_instrs = Some 1_000_000;
    }
  in
  let engine = Ace_vm.Engine.create ~config program in

  (* Drive the BBV machinery directly: accumulate per-block, classify per
     interval, record the timeline. *)
  let vector = Ace_bbv.Vector.create () in
  let tracker = Ace_bbv.Tracker.create () in
  let timeline = Buffer.create 256 in
  let glyph id =
    if id < 26 then Char.chr (Char.code 'A' + id)
    else if id < 52 then Char.chr (Char.code 'a' + id - 26)
    else '#'
  in
  let hooks = Ace_vm.Engine.hooks engine in
  hooks.Ace_vm.Engine.on_block <-
    (fun ~pc ~instrs ~count -> Ace_bbv.Vector.add vector ~pc ~instrs:(instrs * count));
  hooks.Ace_vm.Engine.on_interval <-
    (fun ~total_instrs:_ ->
      if not (Ace_bbv.Vector.is_empty vector) then begin
        let id = Ace_bbv.Tracker.classify tracker (Ace_bbv.Vector.snapshot vector) in
        Ace_bbv.Vector.clear vector;
        Buffer.add_char timeline (glyph id)
      end);

  Ace_vm.Engine.run engine;

  Printf.printf "benchmark: %s (%s instructions)\n\n" name
    (Ace_util.Table.cell_int (Ace_vm.Engine.instrs engine));
  print_endline "BBV phase timeline (one glyph per 1M-instruction interval):";
  let s = Buffer.contents timeline in
  String.iteri
    (fun i c ->
      if i mod 64 = 0 then Printf.printf "\n  ";
      print_char c)
    s;
  print_newline ();
  print_newline ();
  Printf.printf "BBV view     : %d phases over %d intervals; %d stable, %d transitional\n"
    (Ace_bbv.Tracker.phase_count tracker)
    (Ace_bbv.Tracker.intervals tracker)
    (Ace_bbv.Tracker.stable_intervals tracker)
    (Ace_bbv.Tracker.transitional_intervals tracker);
  let db = Ace_vm.Engine.db engine in
  Printf.printf
    "hotspot view : %d hotspots, mean size %s instrs, mean invocations %s\n"
    (Ace_vm.Do_database.hotspot_count db)
    (Ace_util.Table.cell_int (int_of_float (Ace_vm.Do_database.mean_hotspot_size db)))
    (Ace_util.Table.cell_int
       (int_of_float (Ace_vm.Do_database.mean_invocations_per_hotspot db)));
  print_newline ();
  print_endline
    "Note how the hotspot view is independent of interval alignment: nested";
  print_endline
    "hotspots capture the same hierarchy whether or not BBV intervals happen";
  print_endline "to line up with phase boundaries (§3.5)."
