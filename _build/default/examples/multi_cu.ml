(* Multi-CU management: the §4.1 extension.  Four configurable units with
   reconfiguration intervals spanning more than two orders of magnitude
   (reorder buffer 5 K, issue queue 10 K, L1D 100 K, L2 1 M instructions)
   are managed simultaneously; CU decoupling assigns each to hotspots of
   the matching size class.

     dune exec examples/multi_cu.exe

   Also demonstrates the ablation: with decoupling disabled, every managed
   hotspot must explore the full 4^4 = 256-configuration space. *)

let run ~decoupling =
  let workload = Ace_workloads.Mpeg.workload in
  let program = workload.Ace_workloads.Workload.build ~scale:0.5 ~seed:5 in
  let config = { Ace_vm.Engine.default_config with hot_threshold = 2 } in
  let engine = Ace_vm.Engine.create ~config program in
  let cus =
    [|
      Ace_core.Cu.l1d engine;
      Ace_core.Cu.l2 engine;
      Ace_core.Cu.issue_queue engine;
      Ace_core.Cu.reorder_buffer engine;
    |]
  in
  let framework =
    Ace_core.Framework.attach
      ~config:{ Ace_core.Framework.default_config with decoupling }
      engine ~cus
  in
  Ace_vm.Engine.run engine;
  Ace_core.Framework.finalize framework;
  (engine, framework)

let describe label (engine, framework) =
  Printf.printf "--- %s ---\n" label;
  Printf.printf "cycles: %s\n"
    (Ace_util.Table.cell_int (int_of_float (Ace_vm.Engine.cycles engine)));
  Array.iter
    (fun (r : Ace_core.Framework.cu_report) ->
      Printf.printf
        "  %-4s interval-matched hotspots=%d tuned=%d tunings=%d reconfigs=%d \
         coverage=%.1f%%\n"
        r.cu_name r.class_hotspots r.tuned_hotspots r.tunings r.reconfigs
        (r.coverage *. 100.0))
    (Ace_core.Framework.report framework);
  print_newline ()

let () =
  print_endline "Four-CU adaptive computing environment on mpeg:";
  print_newline ();
  describe "CU decoupling ON (each hotspot tunes its size-matched CU)"
    (run ~decoupling:true);
  describe "CU decoupling OFF (joint 256-configuration tuning)"
    (run ~decoupling:false);
  print_endline
    "With decoupling, each class tunes at its own granularity and finishes";
  print_endline
    "quickly; without it, tuning rarely completes and coverage collapses —";
  print_endline "the scalability argument of §3.2 and §5.2.1."
