(* Quickstart: run one SPECjvm98 benchmark under all three schemes and
   compare energy and performance.

     dune exec examples/quickstart.exe

   This is the 30-second tour: the [Ace_harness.Run] entry point does
   everything — builds the synthetic workload, creates the VM engine over
   the simulated memory hierarchy, attaches the scheme, runs, and returns a
   result record with energies, cycles and per-scheme statistics. *)

let () =
  let workload = Ace_workloads.Compress.workload in
  (* A reduced scale keeps the example snappy (~20 M instructions). *)
  let scale = 0.25 in
  let results =
    List.map
      (fun scheme -> Ace_harness.Run.run ~scale workload scheme)
      Ace_harness.Scheme.all
  in
  let baseline = List.hd results in
  Printf.printf "workload: %s (%s dynamic instructions)\n\n"
    workload.Ace_workloads.Workload.name
    (Ace_util.Table.cell_int baseline.Ace_harness.Run.instrs);
  let tbl =
    Ace_util.Table.create
      ~columns:
        [
          ("scheme", Ace_util.Table.Left);
          ("cycles", Ace_util.Table.Right);
          ("slowdown", Ace_util.Table.Right);
          ("L1D energy (mJ)", Ace_util.Table.Right);
          ("L2 energy (mJ)", Ace_util.Table.Right);
          ("L1D saving", Ace_util.Table.Right);
          ("L2 saving", Ace_util.Table.Right);
        ]
  in
  List.iter
    (fun (r : Ace_harness.Run.result) ->
      let slow = (r.cycles /. baseline.Ace_harness.Run.cycles) -. 1.0 in
      let s1 = 1.0 -. (r.l1d_energy_nj /. baseline.Ace_harness.Run.l1d_energy_nj) in
      let s2 = 1.0 -. (r.l2_energy_nj /. baseline.Ace_harness.Run.l2_energy_nj) in
      Ace_util.Table.add_row tbl
        [
          Ace_harness.Scheme.name r.scheme;
          Ace_util.Table.cell_int (int_of_float r.cycles);
          Ace_util.Table.cell_pct ~decimals:2 slow;
          Ace_util.Table.cell_float (r.l1d_energy_nj /. 1e6);
          Ace_util.Table.cell_float (r.l2_energy_nj /. 1e6);
          Ace_util.Table.cell_pct s1;
          Ace_util.Table.cell_pct s2;
        ])
    results;
  Ace_util.Table.print tbl;
  print_newline ();
  print_endline
    "The hotspot (DO-based) scheme should show the largest energy savings at";
  print_endline "the smallest slowdown — the paper's headline result."
