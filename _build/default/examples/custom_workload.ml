(* Custom workload: build your own program with the construction kit, wire
   the ACE framework onto a VM engine by hand, and inspect what each hotspot
   chose.

     dune exec examples/custom_workload.exe

   This shows the layer below [Ace_harness.Run]: you control the engine
   configuration, the CU set and the framework parameters directly — the
   API a downstream user would target to manage their own configurable
   units. *)

module Kit = Ace_workloads.Kit

(* A little image-processing pipeline: a blur over a small tile (cache
   friendly), a histogram over a big buffer (cache hostile), repeated under
   an outer "frame" method large enough to be an L2-class hotspot. *)
let build_pipeline () =
  let k = Kit.create ~name:"pipeline" ~seed:11 in
  let tile = Kit.data_region k ~kb:4 in
  let image = Kit.data_region k ~kb:192 in
  let blur =
    let b =
      Kit.block k ~ilp:2.8 ~instrs:1500 ~mem_frac:0.3 ~store_share:0.4
        ~access:(Kit.Uniform tile) ()
    in
    Kit.meth k ~name:"blur_tile" [ Kit.exec b 1 ]
  in
  let histogram =
    let b =
      Kit.block k ~ilp:1.8 ~instrs:1200 ~mem_frac:0.20
        ~access:(Kit.Uniform image) ()
    in
    Kit.meth k ~name:"histogram" [ Kit.exec b 1 ]
  in
  let sharpen_pass =
    (* ~120 K instructions per invocation: an L1D-class hotspot. *)
    Kit.meth k ~name:"sharpen_pass" [ Kit.call blur 70; Kit.call histogram 8 ]
  in
  let process_frame =
    (* ~600 K instructions per invocation: an L2-class hotspot. *)
    Kit.meth k ~name:"process_frame" [ Kit.call sharpen_pass 5 ]
  in
  let main = Kit.meth k ~name:"main" [ Kit.call process_frame 60 ] in
  Kit.finish k ~entry:main

let () =
  let program = build_pipeline () in
  Format.printf "%a@.@." Ace_isa.Program.pp_summary program;

  (* Engine with an aggressive hotspot threshold. *)
  let config = { Ace_vm.Engine.default_config with hot_threshold = 2 } in
  let engine = Ace_vm.Engine.create ~config program in

  (* The two cache CUs from the paper, managed by the framework. *)
  let cus = [| Ace_core.Cu.l1d engine; Ace_core.Cu.l2 engine |] in
  let framework =
    Ace_core.Framework.attach
      ~config:
        {
          Ace_core.Framework.default_config with
          tuner =
            { Ace_core.Tuner.default_params with performance_threshold = 0.03 };
        }
      engine ~cus
  in

  Ace_vm.Engine.run engine;
  Ace_core.Framework.finalize framework;

  Printf.printf "executed %s instructions in %s cycles (IPC %.2f)\n\n"
    (Ace_util.Table.cell_int (Ace_vm.Engine.instrs engine))
    (Ace_util.Table.cell_int (int_of_float (Ace_vm.Engine.cycles engine)))
    (Ace_vm.Engine.ipc engine);

  print_endline "per-hotspot outcomes:";
  List.iter
    (fun (v : Ace_core.Framework.hotspot_view) ->
      Printf.printf "  %-16s managed by %-8s -> %s (tested %d configs, %d rounds)\n"
        v.meth_name
        (String.concat "+" v.managed_cus)
        (if v.configured then
           String.concat ", " (List.map (fun (c, s) -> c ^ "=" ^ s) v.selection)
         else "still tuning")
        v.tested v.tuning_rounds)
    (Ace_core.Framework.hotspot_views framework);

  print_newline ();
  Array.iteri
    (fun i report ->
      Printf.printf
        "CU %-4s: %d reconfigs, coverage %.1f%%, energy %.3f mJ, avg size %.0f KB\n"
        report.Ace_core.Framework.cu_name report.Ace_core.Framework.reconfigs
        (report.Ace_core.Framework.coverage *. 100.0)
        (match report.Ace_core.Framework.energy_nj with
        | Some e -> e /. 1e6
        | None -> 0.0)
        (match report.Ace_core.Framework.avg_size_bytes with
        | Some b -> b /. 1024.0
        | None -> 0.0);
      ignore i)
    (Ace_core.Framework.report framework);

  print_newline ();
  print_endline
    "Expected: sharpen_pass picks a small L1D (its hot tile is 4 KB; the big";
  print_endline
    "histogram buffer misses at every size), and process_frame shrinks the L2."
