examples/multi_cu.ml: Ace_core Ace_util Ace_vm Ace_workloads Array Printf
