examples/multi_cu.mli:
