examples/quickstart.ml: Ace_harness Ace_util Ace_workloads List Printf
