examples/phase_explorer.ml: Ace_bbv Ace_util Ace_vm Ace_workloads Array Buffer Char Printf String Sys
