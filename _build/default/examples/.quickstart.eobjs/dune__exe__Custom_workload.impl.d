examples/custom_workload.ml: Ace_core Ace_isa Ace_util Ace_vm Ace_workloads Array Format List Printf String
