examples/quickstart.mli:
