(** Three-level memory hierarchy (Table 2 of the paper).

    - L1 I-cache: fixed 64 KB, 2-way, 64 B lines, 1-cycle hits.
    - L1 D-cache: resizable 64/32/16/8 KB, 2-way, 64 B lines, 1-cycle hits.
    - Unified L2: resizable 1 MB/512 KB/256 KB/128 KB, 4-way, 128 B lines,
      10-cycle hits.
    - Memory: 100-cycle latency.
    - DTLB: 128-entry fully associative, consulted on L1D misses.

    All access functions return the latency in cycles seen by the load/store
    (writebacks are buffered and charged no latency, only traffic). *)

type latencies = {
  l1_hit : int;
  l2_hit : int;  (** Added on top of the L1 lookup. *)
  memory : int;  (** Added on top of L1 + L2 lookups. *)
  tlb_miss : int;
  writeback_cycles_per_line : int;
      (** Stall cycles per dirty line flushed by a resize. *)
}

val default_latencies : latencies

type t

val create : ?latencies:latencies -> ?obs:Ace_obs.Obs.t -> unit -> t
(** Caches start at their maximum (paper baseline) sizes.  [obs] receives
    resize counters/gauges and, at [Full] level, [Reconfig] events. *)

val latencies : t -> latencies
val l1i : t -> Cache.t
val l1d : t -> Cache.t
val l2 : t -> Cache.t
val dtlb : t -> Tlb.t

val data_access : t -> addr:int -> write:bool -> int
(** Perform a load ([write:false]) or store and return its latency.  Misses
    propagate to L2 and memory; dirty victims generate writeback traffic into
    the next level. *)

val data_access_batch : t -> addrs:int array -> n:int -> loads:int -> stores:int -> int
(** [data_access_batch t ~addrs ~n ~loads ~stores] performs [n] data
    accesses for [addrs.(0 .. n-1)], where each period of [loads + stores]
    addresses is [loads] loads followed by [stores] stores (the basic-block
    shape; [n] must be a whole number of periods).  All structure state and
    counters end exactly as [n] {!data_access} calls would leave them, but
    the L1D runs as one dense pass and the TLB/L2/memory fallthrough as a
    second pass over the compacted misses only.  Returns the summed latency
    in excess of one [l1_hit] per access — i.e. exactly
    [Σ (data_access addr - l1_hit)].  Allocation-free at steady state
    (internal scratch grows geometrically, never per call). *)

val ifetch : t -> pc:int -> int
(** Instruction fetch probe for a basic block (one representative access per
    block execution; see DESIGN.md). *)

val resize_l1d : t -> size_bytes:int -> int
(** Change the L1D capacity.  Flushed dirty lines are written into the L2.
    Returns the number of dirty lines flushed (the caller charges
    [writeback_cycles_per_line] each and the energy model charges the L2
    write energy). *)

val resize_l2 : t -> size_bytes:int -> int
(** Change the L2 capacity; flushed dirty lines go to memory.  Returns the
    flushed line count.  Like {!resize_l1d}, resizing to the current size
    is a pure no-op: no flush, no traffic accounting, no observability
    events. *)

val memory_reads : t -> int
(** Lines fetched from memory (L2 fill traffic). *)

val memory_writebacks : t -> int
(** Lines written to memory (L2 dirty evictions and L2 flushes). *)

val pp_config : Format.formatter -> t -> unit

(** Cumulative hit/miss/traffic counters across all four structures, used
    both as a snapshot (to measure a phase's deltas) and as a delta (to
    splice a memoized phase back in).  Purely counters: no array contents. *)
type counts = {
  c_l1i_accesses : int;
  c_l1i_hits : int;
  c_l1i_writebacks : int;
  c_l1d_accesses : int;
  c_l1d_hits : int;
  c_l1d_writebacks : int;
  c_l2_accesses : int;
  c_l2_hits : int;
  c_l2_writebacks : int;
  c_tlb_accesses : int;
  c_tlb_misses : int;
  c_mem_reads : int;
  c_mem_writebacks : int;
}

val counts : t -> counts
(** Current cumulative counter values. *)

val diff_counts : before:counts -> after:counts -> counts
(** Per-field subtraction, [after - before]. *)

val splice : t -> counts -> unit
(** Fold a delta into the live counters without performing any accesses;
    cache/TLB contents are untouched.  Fast-forward simulation charges a
    skipped phase this way so energy accounting (which reads these
    counters) stays consistent. *)

(** All four structures plus memory-traffic counters, for checkpoint
    serialization. *)
type state = {
  s_l1i : Cache.state;
  s_l1d : Cache.state;
  s_l2 : Cache.state;
  s_dtlb : Tlb.state;
  s_mem_reads : int;
  s_mem_writebacks : int;
}

val capture : t -> state

val restore : t -> state -> unit
(** Overwrite a freshly created hierarchy, including the caches' current
    (possibly downsized) capacities. *)
