type latencies = {
  l1_hit : int;
  l2_hit : int;
  memory : int;
  tlb_miss : int;
  writeback_cycles_per_line : int;
}

let default_latencies =
  { l1_hit = 1; l2_hit = 10; memory = 100; tlb_miss = 30; writeback_cycles_per_line = 4 }

module Obs = Ace_obs.Obs

type t = {
  lat : latencies;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  mutable mem_reads : int;
  mutable mem_writebacks : int;
  (* Scratch for [data_access_batch]: miss compaction arrays handed to
     [Cache.access_batch].  Grown geometrically on demand, never shrunk,
     and deliberately excluded from [capture]/[restore] — their contents
     are dead outside one batch call. *)
  mutable miss_addrs : int array;
  mutable miss_victims : int array;
  obs : Obs.t;
  m_l1d_resizes : Obs.counter;
  m_l2_resizes : Obs.counter;
  g_l1d_size : Obs.gauge;
  g_l2_size : Obs.gauge;
}

let l1i_config = { Cache.size_bytes = 64 * 1024; assoc = 2; line_bytes = 64 }
let l1d_config = { Cache.size_bytes = 64 * 1024; assoc = 2; line_bytes = 64 }
let l2_config = { Cache.size_bytes = 1024 * 1024; assoc = 4; line_bytes = 128 }

let create ?(latencies = default_latencies) ?(obs = Obs.null) () =
  let t =
    {
      lat = latencies;
      l1i = Cache.create l1i_config;
      l1d = Cache.create l1d_config;
      l2 = Cache.create l2_config;
      dtlb = Tlb.create ();
      mem_reads = 0;
      mem_writebacks = 0;
      miss_addrs = [||];
      miss_victims = [||];
      obs;
      m_l1d_resizes = Obs.counter obs "mem.l1d.resizes";
      m_l2_resizes = Obs.counter obs "mem.l2.resizes";
      g_l1d_size = Obs.gauge obs "mem.l1d.size_bytes";
      g_l2_size = Obs.gauge obs "mem.l2.size_bytes";
    }
  in
  if Obs.enabled obs then begin
    Obs.set_gauge obs t.g_l1d_size (float_of_int l1d_config.Cache.size_bytes);
    Obs.set_gauge obs t.g_l2_size (float_of_int l2_config.Cache.size_bytes)
  end;
  t

let latencies t = t.lat
let l1i t = t.l1i
let l1d t = t.l1d
let l2 t = t.l2
let dtlb t = t.dtlb

(* An L2 lookup on behalf of a lower-level miss or writeback.  Returns the
   latency contribution; accounts memory traffic.

   [l2_access], [data_access] and [ifetch] are the per-instruction hot
   path: they carry no observability branches at all (the obs fields above
   are consulted only on the rare resize path), and the L1 hit case returns
   before any L2 or TLB work. *)
let[@inline] l2_access t addr ~write =
  match Cache.access t.l2 addr ~write with
  | Cache.Hit -> t.lat.l2_hit
  | Cache.Miss ->
      t.mem_reads <- t.mem_reads + 1;
      t.lat.l2_hit + t.lat.memory
  | Cache.Miss_dirty_victim ->
      t.mem_reads <- t.mem_reads + 1;
      t.mem_writebacks <- t.mem_writebacks + 1;
      t.lat.l2_hit + t.lat.memory

let data_access t ~addr ~write =
  match Cache.access t.l1d addr ~write with
  | Cache.Hit -> t.lat.l1_hit
  | (Cache.Miss | Cache.Miss_dirty_victim) as r ->
      let tlb_penalty = if Tlb.access t.dtlb addr then 0 else t.lat.tlb_miss in
      (* Dirty victim drains to L2 off the critical path (no latency). *)
      (if r = Cache.Miss_dirty_victim then
         ignore (l2_access t (Cache.last_victim_addr t.l1d) ~write:true));
      t.lat.l1_hit + l2_access t addr ~write:false + tlb_penalty

(* Batched [data_access]: the L1D lookups run as one dense pass inside
   [Cache.access_batch], then the TLB probe and L2/memory fallthrough run
   as a second dense pass over the compacted misses only — hits never reach
   this loop at all.  Byte-identical to per-access calls because the
   reordering preserves every component's own access sequence: the L1D sees
   the same addresses in the same order; the TLB and L2 are touched only on
   L1D misses, and the miss pass replays them in miss order with the same
   per-miss structure (TLB probe, dirty victim writeback, then read); the
   penalty is a commutative integer sum.  Returns the summed latency
   *excess* over [loads + stores per period × l1_hit] — i.e. what the
   engine's per-access [data_access addr - l1_hit] accumulation would have
   produced.  Allocates nothing after the scratch arrays reach steady
   size. *)
let data_access_batch t ~addrs ~n ~loads ~stores =
  if Array.length t.miss_addrs < n then begin
    let cap = max n (2 * Array.length t.miss_addrs) in
    t.miss_addrs <- Array.make cap 0;
    t.miss_victims <- Array.make cap 0
  end;
  let misses =
    Cache.access_batch t.l1d addrs ~n ~loads ~stores
      ~miss_addrs:t.miss_addrs ~miss_victims:t.miss_victims
  in
  let miss_addrs = t.miss_addrs and miss_victims = t.miss_victims in
  let tlb_miss_lat = t.lat.tlb_miss in
  let penalty = ref 0 in
  for j = 0 to misses - 1 do
    let addr = Array.unsafe_get miss_addrs j in
    let tlb_penalty = if Tlb.access t.dtlb addr then 0 else tlb_miss_lat in
    let victim = Array.unsafe_get miss_victims j in
    if victim >= 0 then ignore (l2_access t victim ~write:true);
    penalty := !penalty + l2_access t addr ~write:false + tlb_penalty
  done;
  !penalty

let ifetch t ~pc =
  match Cache.access t.l1i pc ~write:false with
  | Cache.Hit -> t.lat.l1_hit
  | Cache.Miss | Cache.Miss_dirty_victim ->
      (* I-lines are never dirty; a victim writeback cannot happen. *)
      t.lat.l1_hit + l2_access t pc ~write:false

let size_label size_bytes = string_of_int (size_bytes / 1024) ^ "KB"

let resize_l1d t ~size_bytes =
  if size_bytes = (Cache.config t.l1d).Cache.size_bytes then 0
  else begin
    (* Drain dirty lines straight into the L2 before the resize invalidates
       the array — no intermediate list of flushed addresses. *)
    Cache.iter_dirty t.l1d (fun addr -> ignore (l2_access t addr ~write:true));
    let n = Cache.resize t.l1d ~size_bytes in
    Obs.incr t.obs t.m_l1d_resizes;
    if Obs.enabled t.obs then
      Obs.set_gauge t.obs t.g_l1d_size (float_of_int size_bytes);
    if Obs.tracing t.obs then
      Obs.record t.obs
        (Obs.Reconfig { cu = "L1D"; label = size_label size_bytes; flushed = n });
    n
  end

let resize_l2 t ~size_bytes =
  if size_bytes = (Cache.config t.l2).Cache.size_bytes then 0
  else begin
    (* L2 dirty lines have no lower level to drain into; their writebacks
       go straight to memory. *)
    let n = Cache.resize t.l2 ~size_bytes in
    t.mem_writebacks <- t.mem_writebacks + n;
    Obs.incr t.obs t.m_l2_resizes;
    if Obs.enabled t.obs then
      Obs.set_gauge t.obs t.g_l2_size (float_of_int size_bytes);
    if Obs.tracing t.obs then
      Obs.record t.obs
        (Obs.Reconfig { cu = "L2"; label = size_label size_bytes; flushed = n });
    n
  end

let memory_reads t = t.mem_reads
let memory_writebacks t = t.mem_writebacks

(* -- counter snapshots / splicing ----------------------------------- *)

type counts = {
  c_l1i_accesses : int;
  c_l1i_hits : int;
  c_l1i_writebacks : int;
  c_l1d_accesses : int;
  c_l1d_hits : int;
  c_l1d_writebacks : int;
  c_l2_accesses : int;
  c_l2_hits : int;
  c_l2_writebacks : int;
  c_tlb_accesses : int;
  c_tlb_misses : int;
  c_mem_reads : int;
  c_mem_writebacks : int;
}

let counts t =
  {
    c_l1i_accesses = Cache.Stats.accesses t.l1i;
    c_l1i_hits = Cache.Stats.hits t.l1i;
    c_l1i_writebacks = Cache.Stats.writebacks t.l1i;
    c_l1d_accesses = Cache.Stats.accesses t.l1d;
    c_l1d_hits = Cache.Stats.hits t.l1d;
    c_l1d_writebacks = Cache.Stats.writebacks t.l1d;
    c_l2_accesses = Cache.Stats.accesses t.l2;
    c_l2_hits = Cache.Stats.hits t.l2;
    c_l2_writebacks = Cache.Stats.writebacks t.l2;
    c_tlb_accesses = Tlb.accesses t.dtlb;
    c_tlb_misses = Tlb.misses t.dtlb;
    c_mem_reads = t.mem_reads;
    c_mem_writebacks = t.mem_writebacks;
  }

let diff_counts ~before ~after =
  {
    c_l1i_accesses = after.c_l1i_accesses - before.c_l1i_accesses;
    c_l1i_hits = after.c_l1i_hits - before.c_l1i_hits;
    c_l1i_writebacks = after.c_l1i_writebacks - before.c_l1i_writebacks;
    c_l1d_accesses = after.c_l1d_accesses - before.c_l1d_accesses;
    c_l1d_hits = after.c_l1d_hits - before.c_l1d_hits;
    c_l1d_writebacks = after.c_l1d_writebacks - before.c_l1d_writebacks;
    c_l2_accesses = after.c_l2_accesses - before.c_l2_accesses;
    c_l2_hits = after.c_l2_hits - before.c_l2_hits;
    c_l2_writebacks = after.c_l2_writebacks - before.c_l2_writebacks;
    c_tlb_accesses = after.c_tlb_accesses - before.c_tlb_accesses;
    c_tlb_misses = after.c_tlb_misses - before.c_tlb_misses;
    c_mem_reads = after.c_mem_reads - before.c_mem_reads;
    c_mem_writebacks = after.c_mem_writebacks - before.c_mem_writebacks;
  }

let splice t (d : counts) =
  Cache.splice t.l1i ~accesses:d.c_l1i_accesses ~hits:d.c_l1i_hits
    ~writebacks:d.c_l1i_writebacks;
  Cache.splice t.l1d ~accesses:d.c_l1d_accesses ~hits:d.c_l1d_hits
    ~writebacks:d.c_l1d_writebacks;
  Cache.splice t.l2 ~accesses:d.c_l2_accesses ~hits:d.c_l2_hits
    ~writebacks:d.c_l2_writebacks;
  Tlb.splice t.dtlb ~accesses:d.c_tlb_accesses ~misses:d.c_tlb_misses;
  t.mem_reads <- t.mem_reads + d.c_mem_reads;
  t.mem_writebacks <- t.mem_writebacks + d.c_mem_writebacks

type state = {
  s_l1i : Cache.state;
  s_l1d : Cache.state;
  s_l2 : Cache.state;
  s_dtlb : Tlb.state;
  s_mem_reads : int;
  s_mem_writebacks : int;
}

let capture t =
  {
    s_l1i = Cache.capture t.l1i;
    s_l1d = Cache.capture t.l1d;
    s_l2 = Cache.capture t.l2;
    s_dtlb = Tlb.capture t.dtlb;
    s_mem_reads = t.mem_reads;
    s_mem_writebacks = t.mem_writebacks;
  }

let restore t s =
  Cache.restore t.l1i s.s_l1i;
  Cache.restore t.l1d s.s_l1d;
  Cache.restore t.l2 s.s_l2;
  Tlb.restore t.dtlb s.s_dtlb;
  t.mem_reads <- s.s_mem_reads;
  t.mem_writebacks <- s.s_mem_writebacks

let pp_config fmt t =
  Format.fprintf fmt "@[<v>L1I: %a@ L1D: %a@ L2:  %a@]" Cache.pp_config
    (Cache.config t.l1i) Cache.pp_config (Cache.config t.l1d) Cache.pp_config
    (Cache.config t.l2)
