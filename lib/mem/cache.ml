type config = { size_bytes : int; assoc : int; line_bytes : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config_valid c =
  is_pow2 c.line_bytes && c.assoc > 0
  && c.size_bytes >= c.assoc * c.line_bytes
  && c.size_bytes mod (c.assoc * c.line_bytes) = 0
  && is_pow2 (c.size_bytes / (c.assoc * c.line_bytes))

let pp_config fmt c =
  let size =
    if c.size_bytes >= 1 lsl 20 && c.size_bytes mod (1 lsl 20) = 0 then
      Printf.sprintf "%dMB" (c.size_bytes lsr 20)
    else Printf.sprintf "%dKB" (c.size_bytes lsr 10)
  in
  Format.fprintf fmt "%s %d-way %dB" size c.assoc c.line_bytes

type t = {
  mutable cfg : config;
  mutable sets : int;
  mutable line_shift : int;
  mutable tags : int array;  (* sets * assoc; -1 = invalid; value = line id *)
  mutable dirty : bool array;
  mutable stamp : int array;  (* LRU timestamps *)
  mutable clock : int;
  mutable last_victim : int;
  (* counters *)
  mutable n_accesses : int;
  mutable n_hits : int;
  mutable n_writebacks : int;
  mutable n_flush_writebacks : int;
  mutable n_resizes : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let allocate t =
  let c = t.cfg in
  t.sets <- c.size_bytes / (c.assoc * c.line_bytes);
  t.line_shift <- log2 c.line_bytes;
  let slots = t.sets * c.assoc in
  t.tags <- Array.make slots (-1);
  t.dirty <- Array.make slots false;
  t.stamp <- Array.make slots 0

let create cfg =
  if not (config_valid cfg) then invalid_arg "Cache.create: invalid geometry";
  let t =
    {
      cfg;
      sets = 0;
      line_shift = 0;
      tags = [||];
      dirty = [||];
      stamp = [||];
      clock = 0;
      last_victim = 0;
      n_accesses = 0;
      n_hits = 0;
      n_writebacks = 0;
      n_flush_writebacks = 0;
      n_resizes = 0;
    }
  in
  allocate t;
  t

let config t = t.cfg

type result = Hit | Miss | Miss_dirty_victim

(* Hit scan: the slot holding [line], or -1.  Top-level recursion over int
   arguments so the per-access path allocates nothing (a local [let rec]
   would close over [t] and box). *)
let[@inline] rec find_slot tags line base limit =
  if base >= limit then -1
  else if Array.unsafe_get tags base = line then base
  else find_slot tags line (base + 1) limit

(* Victim scan: the first invalid way if any, else the least recently used
   (first minimum).  Replaces the old [raise Exit] early-exit loop — same
   selection, but exception-free and allocation-free (no refs, no handler
   frame). *)
let[@inline] rec find_victim tags stamp slot limit best best_stamp =
  if slot >= limit then best
  else if Array.unsafe_get tags slot = -1 then slot
  else
    let s = Array.unsafe_get stamp slot in
    if s < best_stamp then find_victim tags stamp (slot + 1) limit slot s
    else find_victim tags stamp (slot + 1) limit best best_stamp

let access t addr ~write =
  t.n_accesses <- t.n_accesses + 1;
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  let base = set * t.cfg.assoc in
  let limit = base + t.cfg.assoc in
  let slot = find_slot t.tags line base limit in
  if slot >= 0 then begin
    t.n_hits <- t.n_hits + 1;
    t.stamp.(slot) <- t.clock;
    if write then t.dirty.(slot) <- true;
    Hit
  end
  else begin
    let slot = find_victim t.tags t.stamp base limit base max_int in
    let was_dirty = t.tags.(slot) <> -1 && t.dirty.(slot) in
    if was_dirty then begin
      t.n_writebacks <- t.n_writebacks + 1;
      t.last_victim <- t.tags.(slot) lsl t.line_shift
    end;
    t.tags.(slot) <- line;
    t.dirty.(slot) <- write;
    t.stamp.(slot) <- t.clock;
    if was_dirty then Miss_dirty_victim else Miss
  end

(* Batched access: perform [n] lookups for [addrs.(0 .. n-1)], producing
   exactly the same array state and counters as [n] calls to [access].  The
   write flag is positional: the address stream is [loads] reads followed by
   [stores] writes, repeated (one basic-block repetition per period), so the
   caller passes the shape instead of a per-access flag.  Misses are
   compacted into the caller's scratch arrays — [miss_addrs.(j)] is the
   j-th missing address and [miss_victims.(j)] its dirty victim's address
   (or -1 if the victim was clean) — so the next level's fallthrough runs
   as a separate dense loop over misses only.  Field loads, the set mask
   and the associativity are hoisted out of the loop; counters are folded
   in once at the end (no observer can run between the individual accesses
   of a batch, so the intermediate counter values are unobservable).  The
   local refs are non-escaping and compile to stack slots: the call
   allocates nothing. *)
let access_batch t addrs ~n ~loads ~stores ~miss_addrs ~miss_victims =
  let tags = t.tags and dirty = t.dirty and stamp = t.stamp in
  let line_shift = t.line_shift
  and set_mask = t.sets - 1
  and assoc = t.cfg.assoc in
  let period = loads + stores in
  let clock = ref t.clock in
  let hits = ref 0 and m = ref 0 and wb = ref 0 and k = ref 0 in
  for i = 0 to n - 1 do
    let addr = Array.unsafe_get addrs i in
    let write = !k >= loads in
    k := !k + 1;
    if !k = period then k := 0;
    clock := !clock + 1;
    let line = addr lsr line_shift in
    let set = line land set_mask in
    let base = set * assoc in
    let limit = base + assoc in
    let slot = find_slot tags line base limit in
    if slot >= 0 then begin
      hits := !hits + 1;
      Array.unsafe_set stamp slot !clock;
      if write then Array.unsafe_set dirty slot true
    end
    else begin
      let slot = find_victim tags stamp base limit base max_int in
      let vtag = Array.unsafe_get tags slot in
      let was_dirty = vtag <> -1 && Array.unsafe_get dirty slot in
      if was_dirty then begin
        let victim = vtag lsl line_shift in
        t.last_victim <- victim;
        wb := !wb + 1;
        Array.unsafe_set miss_victims !m victim
      end
      else Array.unsafe_set miss_victims !m (-1);
      Array.unsafe_set miss_addrs !m addr;
      m := !m + 1;
      Array.unsafe_set tags slot line;
      Array.unsafe_set dirty slot write;
      Array.unsafe_set stamp slot !clock
    end
  done;
  t.clock <- !clock;
  t.n_accesses <- t.n_accesses + n;
  t.n_hits <- t.n_hits + !hits;
  t.n_writebacks <- t.n_writebacks + !wb;
  !m

let last_victim_addr t = t.last_victim

let dirty_lines t =
  let n = ref 0 in
  for i = 0 to Array.length t.tags - 1 do
    if t.tags.(i) <> -1 && t.dirty.(i) then incr n
  done;
  !n

let iter_dirty t f =
  for i = 0 to Array.length t.tags - 1 do
    if t.tags.(i) <> -1 && t.dirty.(i) then f (t.tags.(i) lsl t.line_shift)
  done

let invalidate_all t =
  let flushed = dirty_lines t in
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.n_flush_writebacks <- t.n_flush_writebacks + flushed;
  flushed

let resize t ~size_bytes =
  if size_bytes = t.cfg.size_bytes then 0
  else begin
    let cfg = { t.cfg with size_bytes } in
    if not (config_valid cfg) then invalid_arg "Cache.resize: invalid geometry";
    let flushed = dirty_lines t in
    t.n_flush_writebacks <- t.n_flush_writebacks + flushed;
    t.n_resizes <- t.n_resizes + 1;
    t.cfg <- cfg;
    allocate t;
    flushed
  end

(* Fold memoized per-phase statistics into the counters without touching
   the array contents.  Fast-forward simulation replays a known phase's
   counter deltas this way; the resident lines simply stay as they were at
   the phase boundary. *)
let splice t ~accesses ~hits ~writebacks =
  t.n_accesses <- t.n_accesses + accesses;
  t.n_hits <- t.n_hits + hits;
  t.n_writebacks <- t.n_writebacks + writebacks

type state = {
  s_size_bytes : int;
  s_tags : int array;
  s_dirty : bool array;
  s_stamp : int array;
  s_clock : int;
  s_last_victim : int;
  s_accesses : int;
  s_hits : int;
  s_writebacks : int;
  s_flush_writebacks : int;
  s_resizes : int;
}

let capture t =
  {
    s_size_bytes = t.cfg.size_bytes;
    s_tags = Array.copy t.tags;
    s_dirty = Array.copy t.dirty;
    s_stamp = Array.copy t.stamp;
    s_clock = t.clock;
    s_last_victim = t.last_victim;
    s_accesses = t.n_accesses;
    s_hits = t.n_hits;
    s_writebacks = t.n_writebacks;
    s_flush_writebacks = t.n_flush_writebacks;
    s_resizes = t.n_resizes;
  }

let restore t s =
  let cfg = { t.cfg with size_bytes = s.s_size_bytes } in
  if not (config_valid cfg) then
    invalid_arg "Cache.restore: invalid geometry in state";
  let slots = cfg.size_bytes / cfg.line_bytes in
  if
    Array.length s.s_tags <> slots
    || Array.length s.s_dirty <> slots
    || Array.length s.s_stamp <> slots
  then invalid_arg "Cache.restore: state arrays do not match geometry";
  t.cfg <- cfg;
  t.sets <- cfg.size_bytes / (cfg.assoc * cfg.line_bytes);
  t.line_shift <- log2 cfg.line_bytes;
  t.tags <- Array.copy s.s_tags;
  t.dirty <- Array.copy s.s_dirty;
  t.stamp <- Array.copy s.s_stamp;
  t.clock <- s.s_clock;
  t.last_victim <- s.s_last_victim;
  t.n_accesses <- s.s_accesses;
  t.n_hits <- s.s_hits;
  t.n_writebacks <- s.s_writebacks;
  t.n_flush_writebacks <- s.s_flush_writebacks;
  t.n_resizes <- s.s_resizes

module Stats = struct
  let accesses t = t.n_accesses
  let hits t = t.n_hits
  let misses t = t.n_accesses - t.n_hits
  let writebacks t = t.n_writebacks
  let flush_writebacks t = t.n_flush_writebacks
  let resizes t = t.n_resizes

  let miss_rate t =
    if t.n_accesses = 0 then 0.0
    else float_of_int (misses t) /. float_of_int t.n_accesses
end
