(* Residency is tracked in an open-addressed linear-probe table of page
   numbers rather than a Hashtbl: a miss installs the page without any
   bucket allocation, keeping the L1-miss path at zero minor words (the
   BENCH_core.json gate covers this via the batched data-access path).
   Empty slots hold -1, evicted slots -2 (tombstone); when tombstones
   crowd the table it is rebuilt in place from the FIFO ring, which holds
   exactly the resident set. *)

type t = {
  entries : int;
  page_shift : int;
  mask : int;  (* capacity - 1; capacity is a power of two >= 4*entries *)
  shift : int;  (* 63 - log2 capacity, for the multiplicative hash *)
  table : int array;
  fifo : int array;  (* ring buffer of resident pages *)
  mutable head : int;
  mutable filled : int;
  mutable tombs : int;
  mutable n_accesses : int;
  mutable n_misses : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let empty = -1
let tombstone = -2

let create ?(entries = 128) ?(page_bytes = 4096) () =
  let cap =
    let rec pow2 c = if c >= 4 * entries then c else pow2 (c * 2) in
    pow2 8
  in
  {
    entries;
    page_shift = log2 page_bytes;
    mask = cap - 1;
    shift = 63 - log2 cap;
    table = Array.make cap empty;
    fifo = Array.make entries 0;
    head = 0;
    filled = 0;
    tombs = 0;
    n_accesses = 0;
    n_misses = 0;
  }

(* Fibonacci hashing spreads consecutive page numbers across the table;
   with linear probing that keeps clusters short. *)
let[@inline] slot_of t page = (page * 0x2545F4914F6CDD1D) lsr t.shift land t.mask

let[@inline] mem t page =
  let i = ref (slot_of t page) in
  let r = ref tombstone in
  while !r = tombstone do
    let v = Array.unsafe_get t.table !i in
    if v = page then r := 1
    else if v = empty then r := 0
    else i := (!i + 1) land t.mask
  done;
  !r = 1

let insert t page =
  let i = ref (slot_of t page) in
  while Array.unsafe_get t.table !i >= 0 do
    i := (!i + 1) land t.mask
  done;
  if t.table.(!i) = tombstone then t.tombs <- t.tombs - 1;
  t.table.(!i) <- page

let remove t page =
  let i = ref (slot_of t page) in
  while Array.unsafe_get t.table !i <> page do
    i := (!i + 1) land t.mask
  done;
  t.table.(!i) <- tombstone;
  t.tombs <- t.tombs + 1

(* Rebuild from the ring once live + dead slots pass 3/4 of capacity, so
   probe chains stay bounded.  Amortized O(1) per miss and allocation-free:
   the ring's first [filled] logical slots are exactly the resident set. *)
let rebuild t =
  Array.fill t.table 0 (Array.length t.table) empty;
  t.tombs <- 0;
  for j = 0 to t.filled - 1 do
    insert t t.fifo.(j)
  done

let[@inline] access t addr =
  t.n_accesses <- t.n_accesses + 1;
  let page = addr lsr t.page_shift in
  if mem t page then true
  else begin
    t.n_misses <- t.n_misses + 1;
    if t.filled >= t.entries then remove t t.fifo.(t.head)
    else t.filled <- t.filled + 1;
    t.fifo.(t.head) <- page;
    t.head <- (t.head + 1) mod t.entries;
    insert t page;
    if (t.filled + t.tombs) * 4 > (t.mask + 1) * 3 then rebuild t;
    false
  end

let accesses t = t.n_accesses
let misses t = t.n_misses

let flush t =
  Array.fill t.table 0 (Array.length t.table) empty;
  t.head <- 0;
  t.filled <- 0;
  t.tombs <- 0

let splice t ~accesses ~misses =
  t.n_accesses <- t.n_accesses + accesses;
  t.n_misses <- t.n_misses + misses

type state = {
  s_resident : int array;  (* pages currently mapped, in no particular order *)
  s_fifo : int array;
  s_head : int;
  s_filled : int;
  s_accesses : int;
  s_misses : int;
}

let capture t =
  (* Sorted so that capturing twice from identical simulator states yields
     identical bytes (probe-table slot order is an artifact). *)
  let resident = Array.make t.filled 0 in
  let j = ref 0 in
  Array.iter
    (fun v ->
      if v >= 0 then begin
        resident.(!j) <- v;
        incr j
      end)
    t.table;
  Array.sort compare resident;
  {
    s_resident = resident;
    s_fifo = Array.copy t.fifo;
    s_head = t.head;
    s_filled = t.filled;
    s_accesses = t.n_accesses;
    s_misses = t.n_misses;
  }

let restore t s =
  if Array.length s.s_fifo <> t.entries then
    invalid_arg "Tlb.restore: fifo length does not match geometry";
  Array.fill t.table 0 (Array.length t.table) empty;
  t.tombs <- 0;
  Array.iter (fun page -> insert t page) s.s_resident;
  Array.blit s.s_fifo 0 t.fifo 0 t.entries;
  t.head <- s.s_head;
  t.filled <- s.s_filled;
  t.n_accesses <- s.s_accesses;
  t.n_misses <- s.s_misses
