type t = {
  entries : int;
  page_shift : int;
  table : (int, unit) Hashtbl.t;
  fifo : int array;  (* ring buffer of resident pages *)
  mutable head : int;
  mutable filled : int;
  mutable n_accesses : int;
  mutable n_misses : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(entries = 128) ?(page_bytes = 4096) () =
  {
    entries;
    page_shift = log2 page_bytes;
    table = Hashtbl.create (entries * 2);
    fifo = Array.make entries 0;
    head = 0;
    filled = 0;
    n_accesses = 0;
    n_misses = 0;
  }

let[@inline] access t addr =
  t.n_accesses <- t.n_accesses + 1;
  let page = addr lsr t.page_shift in
  if Hashtbl.mem t.table page then true
  else begin
    t.n_misses <- t.n_misses + 1;
    if t.filled >= t.entries then begin
      let victim = t.fifo.(t.head) in
      Hashtbl.remove t.table victim
    end
    else t.filled <- t.filled + 1;
    t.fifo.(t.head) <- page;
    t.head <- (t.head + 1) mod t.entries;
    Hashtbl.replace t.table page ();
    false
  end

let accesses t = t.n_accesses
let misses t = t.n_misses

let flush t =
  Hashtbl.reset t.table;
  t.head <- 0;
  t.filled <- 0

let splice t ~accesses ~misses =
  t.n_accesses <- t.n_accesses + accesses;
  t.n_misses <- t.n_misses + misses

type state = {
  s_resident : int array;  (* pages currently mapped, in no particular order *)
  s_fifo : int array;
  s_head : int;
  s_filled : int;
  s_accesses : int;
  s_misses : int;
}

let capture t =
  (* Sorted so that capturing twice from identical simulator states yields
     identical bytes (hash-table iteration order is an artifact). *)
  let resident = Array.of_seq (Hashtbl.to_seq_keys t.table) in
  Array.sort compare resident;
  {
    s_resident = resident;
    s_fifo = Array.copy t.fifo;
    s_head = t.head;
    s_filled = t.filled;
    s_accesses = t.n_accesses;
    s_misses = t.n_misses;
  }

let restore t s =
  if Array.length s.s_fifo <> t.entries then
    invalid_arg "Tlb.restore: fifo length does not match geometry";
  Hashtbl.reset t.table;
  Array.iter (fun page -> Hashtbl.replace t.table page ()) s.s_resident;
  Array.blit s.s_fifo 0 t.fifo 0 t.entries;
  t.head <- s.s_head;
  t.filled <- s.s_filled;
  t.n_accesses <- s.s_accesses;
  t.n_misses <- s.s_misses
