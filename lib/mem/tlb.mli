(** Data TLB model: fixed capacity, 4 KB pages, FIFO replacement (a standard
    approximation of LRU for fully associative TLBs).

    Per the paper's Table 2 the TLB is 128-entry and fully set-associative.
    The TLB is consulted on the L1-miss path only: page-level locality makes
    TLB misses coincide with cache misses, and keeping the TLB off the
    every-access fast path matters for simulator throughput (see DESIGN.md).
    [access] is allocation-free: residency lives in an open-addressed probe
    table, so the miss path installs a page without touching the GC. *)

type t

val create : ?entries:int -> ?page_bytes:int -> unit -> t
(** Defaults: 128 entries, 4096-byte pages. *)

val access : t -> int -> bool
(** [access t addr] is [true] on a TLB hit; a miss installs the page. *)

val accesses : t -> int
val misses : t -> int
val flush : t -> unit

val splice : t -> accesses:int -> misses:int -> unit
(** Add memoized counter deltas without performing accesses (resident pages
    untouched); used by fast-forward simulation. *)

(** Resident-page set, FIFO ring and counters, for checkpoint
    serialization. *)
type state = {
  s_resident : int array;
  s_fifo : int array;
  s_head : int;
  s_filled : int;
  s_accesses : int;
  s_misses : int;
}

val capture : t -> state

val restore : t -> state -> unit
(** @raise Invalid_argument if the state's geometry does not match [t]. *)
