(** Set-associative, write-back, write-allocate cache with true LRU
    replacement and live resizing.

    This is the substrate for the paper's configurable L1 data cache and
    unified L2 cache.  Resizing models the hardware described in the paper:
    shrinking (or growing) the array forces dirty lines to be written back to
    the next level, which is the dominant reconfiguration overhead (§2.1).

    The access path is allocation- and exception-free: hit and victim scans
    are plain tail-recursive loops over the ways (no [Exit]-based control
    flow, no refs), results are constant constructors and the dirty victim's
    address is exposed through {!last_victim_addr}.  [access] costs zero
    minor words per call — asserted by test and tracked by
    [bench/main.exe -- --core-json]. *)

type config = {
  size_bytes : int;  (** Total capacity; must be [assoc * line_bytes * 2^k]. *)
  assoc : int;  (** Ways per set. *)
  line_bytes : int;  (** Line size; a power of two. *)
}

val config_valid : config -> bool

val pp_config : Format.formatter -> config -> unit
(** e.g. "64KB 2-way 64B". *)

type t

val create : config -> t
(** Fresh, empty cache.
    @raise Invalid_argument on an invalid geometry. *)

val config : t -> config

type result =
  | Hit
  | Miss  (** Line filled; the victim (if any) was clean. *)
  | Miss_dirty_victim
      (** Line filled; a dirty victim was evicted and must be written to the
          next level — its address is {!last_victim_addr}. *)

val access : t -> int -> write:bool -> result
(** [access t addr ~write] looks up the byte address, filling on a miss and
    marking the line dirty on a write. *)

val access_batch :
  t ->
  int array ->
  n:int ->
  loads:int ->
  stores:int ->
  miss_addrs:int array ->
  miss_victims:int array ->
  int
(** [access_batch t addrs ~n ~loads ~stores ~miss_addrs ~miss_victims]
    performs [n] accesses for [addrs.(0 .. n-1)], leaving the array state,
    LRU clock and counters exactly as [n] calls to {!access} would.  The
    write flag is positional: each period of [loads + stores] addresses is
    [loads] reads followed by [stores] writes (the basic-block shape), and
    [n] must be a whole number of periods.  Returns the number of misses
    [m]; for [j < m], [miss_addrs.(j)] is the j-th missing address in
    access order and [miss_victims.(j)] is its dirty victim's line-aligned
    address, or [-1] if the victim was clean — the caller replays these
    against the next level.  Both scratch arrays must have at least [n]
    elements.  Allocates nothing. *)

val last_victim_addr : t -> int
(** Byte address (line-aligned) of the most recent dirty victim.  Only
    meaningful immediately after [access] returned {!Miss_dirty_victim}. *)

val resize : t -> size_bytes:int -> int
(** [resize t ~size_bytes] switches the capacity, keeping associativity and
    line size.  The entire array is flushed (invalidated); the return value
    is the number of dirty lines that had to be written back.  Resizing to
    the current size is a no-op returning 0. *)

val dirty_lines : t -> int
(** Current number of dirty lines (what a resize would write back). *)

val iter_dirty : t -> (int -> unit) -> unit
(** Apply a function to the line-aligned address of every dirty resident
    line; the hierarchy uses this to replay flushed L1 lines into the L2. *)

val invalidate_all : t -> int
(** Flush without changing geometry; returns dirty lines written back. *)

val splice : t -> accesses:int -> hits:int -> writebacks:int -> unit
(** Add memoized counter deltas without performing accesses.  Array
    contents (resident lines, LRU clock) are untouched; used by
    fast-forward simulation to account for a skipped phase. *)

(** Complete cache state — geometry (current size), array contents, LRU
    clock and counters — for checkpoint serialization. *)
type state = {
  s_size_bytes : int;
  s_tags : int array;
  s_dirty : bool array;
  s_stamp : int array;
  s_clock : int;
  s_last_victim : int;
  s_accesses : int;
  s_hits : int;
  s_writebacks : int;
  s_flush_writebacks : int;
  s_resizes : int;
}

val capture : t -> state
(** A deep copy of the cache's current state. *)

val restore : t -> state -> unit
(** Overwrite [t] (same associativity and line size as at capture) with a
    captured state, including its possibly different current capacity.
    @raise Invalid_argument if the state is inconsistent with the cache's
    fixed geometry parameters. *)

(** Cumulative counters since [create]. *)
module Stats : sig
  val accesses : t -> int
  val hits : t -> int
  val misses : t -> int
  val writebacks : t -> int
  (** Dirty victims evicted by fills (excludes flush writebacks). *)

  val flush_writebacks : t -> int
  (** Dirty lines written back by [resize]/[invalidate_all]. *)

  val resizes : t -> int

  val miss_rate : t -> float
end
