(** Memory access patterns of basic blocks.

    A pattern describes how one basic block touches data memory each time it
    executes.  The execution engine owns one mutable {!cursor} per static
    block and asks the pattern for the next byte address on every load or
    store.  Patterns are the knob by which synthetic workloads express
    locality: a block with a small [extent] fits in a small cache and makes
    downsizing profitable; a streaming block defeats any cache. *)

type t =
  | Sequential of { base : int; extent : int; stride : int }
      (** Stream through [base, base+extent) with the given byte stride,
          wrapping at the end.  Models array scans (compress, mpeg). *)
  | Random_in of { base : int; extent : int }
      (** Uniform random addresses in [base, base+extent).  Models hash and
          symbol-table traffic (db, javac). *)
  | Pointer_chase of { base : int; extent : int }
      (** A deterministic chaotic walk over the region: the next address is a
          hash of the previous one.  Same cache behaviour as [Random_in] but
          the walk is reproducible without an RNG and models dependent
          (linked-structure) traffic — ray trees, parser stacks. *)

val footprint : t -> int
(** Bytes spanned by the pattern ([extent]). *)

val base : t -> int

val validate : t -> (unit, string) result
(** Check invariants: positive extent, positive stride, non-negative base. *)

(** Per-block mutable iteration state. *)
type cursor

val cursor : t -> cursor
(** Fresh cursor positioned at the pattern's start. *)

val next : cursor -> rng:Ace_util.Rng.t -> int
(** Next byte address.  Only [Random_in] consumes the RNG. *)

val next_batch : cursor -> rng:Ace_util.Rng.t -> int array -> pos:int -> n:int -> unit
(** [next_batch c ~rng buf ~pos ~n] fills [buf.(pos)] … [buf.(pos + n - 1)]
    with the addresses that [n] successive calls to {!next} would return,
    leaving the cursor and RNG in exactly the state those calls would leave
    them.  The pattern dispatch is performed once per batch rather than once
    per address; the call allocates nothing.  The caller must ensure [buf]
    has at least [pos + n] elements. *)

val reset : cursor -> unit
(** Return the cursor to the pattern's start (used between engine runs). *)

val skip : cursor -> rng:Ace_util.Rng.t -> int -> unit
(** [skip c ~rng n] leaves the cursor (and the RNG, for [Random_in]) exactly
    where [n] calls to {!next} would have, without producing the addresses.
    O(1) for [Sequential] and [Random_in]; O(n) cheap hashing for
    [Pointer_chase].  Fast-forward simulation uses this to keep
    architectural state bit-identical to a full run. *)

(** Iteration position without the (statically known) pattern, for
    checkpoint serialization. *)
type cursor_state = { s_offset : int; s_steps : int }

val capture : cursor -> cursor_state

val restore : cursor -> cursor_state -> unit
(** Overwrite the cursor's position.  The caller must pair states with the
    cursors they were captured from (the engine keys both by block id). *)
