type t =
  | Sequential of { base : int; extent : int; stride : int }
  | Random_in of { base : int; extent : int }
  | Pointer_chase of { base : int; extent : int }

let footprint = function
  | Sequential { extent; _ } | Random_in { extent; _ } | Pointer_chase { extent; _ } ->
      extent

let base = function
  | Sequential { base; _ } | Random_in { base; _ } | Pointer_chase { base; _ } -> base

let validate t =
  let check_region ~base ~extent =
    if base < 0 then Error "negative base"
    else if extent <= 0 then Error "non-positive extent"
    else Ok ()
  in
  match t with
  | Sequential { base; extent; stride } ->
      if stride <= 0 then Error "non-positive stride"
      else check_region ~base ~extent
  | Random_in { base; extent } | Pointer_chase { base; extent } ->
      check_region ~base ~extent

type cursor = { pattern : t; mutable offset : int; mutable steps : int }

let cursor pattern = { pattern; offset = 0; steps = 0 }

let reset c =
  c.offset <- 0;
  c.steps <- 0

type cursor_state = { s_offset : int; s_steps : int }

let capture c = { s_offset = c.offset; s_steps = c.steps }

let restore c s =
  c.offset <- s.s_offset;
  c.steps <- s.s_steps

(* Cheap integer hash for the pointer-chase walk (finalizer of splitmix64,
   truncated to OCaml's int). *)
let chase_hash x =
  let z = x * 0x9E3779B9 in
  let z = (z lxor (z lsr 16)) * 0x85EBCA6B in
  let z = (z lxor (z lsr 13)) * 0xC2B2AE35 in
  (z lxor (z lsr 16)) land max_int

let next c ~rng =
  match c.pattern with
  | Sequential { base; extent; stride } ->
      let addr = base + c.offset in
      c.offset <- c.offset + stride;
      if c.offset >= extent then c.offset <- 0;
      addr
  | Random_in { base; extent } -> base + Ace_util.Rng.int rng extent
  | Pointer_chase { base; extent } ->
      let addr = base + c.offset in
      (* Advance in 8-byte granules so distinct offsets map to distinct
         words; alignment keeps the walk from splitting cache lines.  The
         step counter enters the hash so the walk cannot collapse into a
         short cycle (a pure offset->offset map would, by the birthday
         bound). *)
      c.steps <- c.steps + 1;
      c.offset <- chase_hash ((c.offset * 31) + c.steps) mod (extent / 8 |> max 1) * 8;
      addr

(* Batched [next]: fill [buf.(pos .. pos+n-1)] with the next [n] addresses.
   Semantically exactly [n] calls to [next] — same addresses, same cursor
   movement, same RNG draws — but the pattern match and field loads are
   hoisted out of the loop, and the cursor is written back once.  The local
   refs below are non-escaping, so the compiler compiles them to mutable
   stack slots (no allocation). *)
let next_batch c ~rng buf ~pos ~n =
  match c.pattern with
  | Sequential { base; extent; stride } ->
      let off = ref c.offset in
      for i = pos to pos + n - 1 do
        Array.unsafe_set buf i (base + !off);
        let o = !off + stride in
        off := if o >= extent then 0 else o
      done;
      c.offset <- !off
  | Random_in { base; extent } ->
      for i = pos to pos + n - 1 do
        Array.unsafe_set buf i (base + Ace_util.Rng.int rng extent)
      done
  | Pointer_chase { base; extent } ->
      let granules = extent / 8 |> max 1 in
      let off = ref c.offset and steps = ref c.steps in
      for i = pos to pos + n - 1 do
        Array.unsafe_set buf i (base + !off);
        steps := !steps + 1;
        off := chase_hash ((!off * 31) + !steps) mod granules * 8
      done;
      c.offset <- !off;
      c.steps <- !steps

(* Advance a cursor as if [next] had been called [n] times, consuming
   exactly the RNG draws a real walk would have.  Sequential wraps by
   resetting to zero (not modular reduction), so the closed form splits the
   walk into the partial ramp up to the first wrap and whole periods after
   it. *)
let skip c ~rng n =
  if n > 0 then
    match c.pattern with
    | Sequential { extent; stride; _ } ->
        let period = ((extent + stride - 1) / stride) in
        let to_wrap = (extent - c.offset + stride - 1) / stride in
        if n < to_wrap then c.offset <- c.offset + (n * stride)
        else c.offset <- (n - to_wrap) mod period * stride
    | Random_in _ -> Ace_util.Rng.skip rng n
    | Pointer_chase { extent; _ } ->
        let granules = extent / 8 |> max 1 in
        for _ = 1 to n do
          c.steps <- c.steps + 1;
          c.offset <- chase_hash ((c.offset * 31) + c.steps) mod granules * 8
        done
