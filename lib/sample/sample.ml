(* Phase-memoized fast-forward sampling.

   The observation protocol leans entirely on the engine's [sample_ctl]:
   [sc_decide] fires at candidate method entries and [sc_exit] at the
   matching region ends, in LIFO order, so [open_obs] mirrors the engine's
   own stack of decided frames and a checkpoint can serialize both
   consistently.  See DESIGN.md §Sampled simulation for the determinism
   argument. *)

module Engine = Ace_vm.Engine
module Do_database = Ace_vm.Do_database
module Hierarchy = Ace_mem.Hierarchy
module Cache = Ace_mem.Cache
module Faults = Ace_faults.Faults
module Obs = Ace_obs.Obs

type config = {
  warmup : int;  (* clean repeats discarded before measuring *)
  repeats : int;  (* measured clean repeats required to trust a phase *)
  cov_bound : float;  (* maximum cycle CoV across the measured repeats *)
  recalibrate_every : int;  (* splices between re-measurements; 0 = never *)
}

let default_config =
  { warmup = 2; repeats = 3; cov_bound = 0.05; recalibrate_every = 64 }

let validate_config c =
  if c.warmup < 0 then Error "negative warmup"
  else if c.repeats < 1 then Error "repeats must be at least 1"
  else if not (Float.is_finite c.cov_bound && c.cov_bound >= 0.0) then
    Error "cov_bound must be finite and non-negative"
  else if c.recalibrate_every < 0 then Error "negative recalibrate_every"
  else Ok ()

(* Why the scheme guard rejected a candidate; the sampler only counts the
   reasons, but the breakdown tells a tuning-a-run story the single
   boolean never could (see the run report's "sampling" line). *)
type verdict = Allow | Unsettled | Not_quiescent

(* Phase statistics are only valid under the exact hardware configuration
   they were measured on; the signature is part of the cache key.  Scales
   are compared bit-exactly (they are latched, not computed). *)
type hw_sig = {
  hs_l1d_bytes : int;
  hs_l2_bytes : int;
  hs_ilp_bits : int64;
  hs_exposure_bits : int64;
}

(* What a record describes: one hotspot header method exactly, or a BBV
   behaviour cluster that many headers map into.  Cluster records let a
   method fast-forward off repeats of *other* methods with the same
   behaviour signature, which is why the statistics are CPI-normalized
   (methods in one cluster agree on cycles-per-instruction, not on
   invocation length). *)
type key = K_meth of int | K_cluster of int

type phase_stats = {
  mutable ph_instrs : int;  (* last folded repeat's instructions *)
  mutable ph_seen : int;  (* clean repeats observed, warmup included *)
  mutable ph_cpi_sum : float;  (* cycles/instr over post-warmup repeats *)
  mutable ph_cpi_sumsq : float;
  mutable ph_counts : Hierarchy.counts;  (* last post-warmup repeat *)
  mutable ph_counts_instrs : int;  (* instructions [ph_counts] covers *)
  mutable ph_poisoned : bool;  (* unstable behaviour; never fast-forward *)
  mutable ph_since_measure : int;  (* splices since the last measurement *)
}

(* One observation in flight, paired LIFO with an engine frame marked
   [Observe]. *)
type obs_frame = {
  ob_meth : int;
  ob_key : key;  (* record the repeat will fold into, fixed at entry *)
  ob_sig : hw_sig;
  ob_instrs0 : int;
  ob_cycles0 : float;
  ob_counts0 : Hierarchy.counts;
  ob_resizes0 : int;
  mutable ob_dirty : bool;  (* promotion/recompile/fault inside; discard *)
}

type t = {
  cfg : config;
  engine : Engine.t;
  faults : Faults.t;
  allow : meth_id:int -> verdict;  (* scheme quiescence guard *)
  classify : (unit -> int option) option;  (* current behaviour cluster *)
  table : (key * hw_sig, phase_stats) Hashtbl.t;
  meth_instrs : (int, int) Hashtbl.t;  (* per-invocation instrs, learned *)
  cluster_of_meth : (int, int) Hashtbl.t;  (* last cluster seen per header *)
  mutable open_obs : obs_frame list;  (* innermost first *)
  mutable fault_events0 : int;  (* last observed Faults.hw_fault_events *)
  mutable ff_instrs_active : int;  (* instrs of the active region, if any *)
  (* Plain counters: obs counters do not tick at [Off] level, but the run
     result wants these regardless. *)
  mutable n_observations : int;
  mutable n_splices : int;
  mutable n_spliced_instrs : int;
  mutable n_blocked_quiescence : int;
  mutable n_blocked_unsettled : int;
  mutable n_blocked_open_obs : int;
  mutable n_blocked_poisoned : int;
  obs : Obs.t;
  m_observations : Obs.counter;
  m_splices : Obs.counter;
  m_spliced_instrs : Obs.counter;
  m_blocked_quiescence : Obs.counter;
  m_blocked_unsettled : Obs.counter;
  m_blocked_open_obs : Obs.counter;
  m_blocked_poisoned : Obs.counter;
}

let config t = t.cfg

let current_sig eng =
  let hier = Engine.hierarchy eng in
  {
    hs_l1d_bytes = (Cache.config (Hierarchy.l1d hier)).Cache.size_bytes;
    hs_l2_bytes = (Cache.config (Hierarchy.l2 hier)).Cache.size_bytes;
    hs_ilp_bits = Int64.bits_of_float (Engine.ilp_scale eng);
    hs_exposure_bits = Int64.bits_of_float (Engine.exposure_scale eng);
  }

let resizes_now eng =
  let hier = Engine.hierarchy eng in
  Cache.Stats.resizes (Hierarchy.l1d hier)
  + Cache.Stats.resizes (Hierarchy.l2 hier)

(* Number of measured (post-warmup) repeats accumulated so far. *)
let measured t ph = max 0 (ph.ph_seen - t.cfg.warmup)

let mean_cpi t ph =
  let n = measured t ph in
  if n = 0 then 0.0 else ph.ph_cpi_sum /. float_of_int n

let known t ph =
  (not ph.ph_poisoned)
  &&
  let n = measured t ph in
  n >= t.cfg.repeats
  &&
  let mean = ph.ph_cpi_sum /. float_of_int n in
  mean > 0.0
  &&
  let var =
    Float.max 0.0 ((ph.ph_cpi_sumsq /. float_of_int n) -. (mean *. mean))
  in
  sqrt var /. mean <= t.cfg.cov_bound

(* Hardware-channel faults change the machine's effective configuration
   out from under the cache, so any movement of the monotone fault counter
   invalidates everything memoized and taints observations in flight. *)
let poll_faults t =
  let fe = Faults.hw_fault_events t.faults in
  if fe <> t.fault_events0 then begin
    t.fault_events0 <- fe;
    Hashtbl.reset t.table;
    List.iter (fun ob -> ob.ob_dirty <- true) t.open_obs
  end

let mark_dirty t = List.iter (fun ob -> ob.ob_dirty <- true) t.open_obs

(* The tracker moved this cluster's boundary: whatever the old records
   averaged no longer describes one behaviour, so they are dropped (every
   hardware signature) and in-flight observations destined for the old
   cluster are discarded. *)
let invalidate_cluster t old =
  Hashtbl.filter_map_inplace
    (fun (k, _) ph ->
      match k with K_cluster c when c = old -> None | _ -> Some ph)
    t.table;
  List.iter
    (fun ob ->
      match ob.ob_key with
      | K_cluster c when c = old -> ob.ob_dirty <- true
      | _ -> ())
    t.open_obs

(* Record key for a candidate: its BBV behaviour cluster when a classifier
   is installed and has seen an interval, the exact header method
   otherwise.  Detecting a header hopping clusters here is what implements
   reassignment invalidation. *)
let key_for t ~meth_id =
  match t.classify with
  | None -> K_meth meth_id
  | Some f -> (
      match f () with
      | None -> K_meth meth_id
      | Some c ->
          (match Hashtbl.find_opt t.cluster_of_meth meth_id with
          | Some old when old <> c ->
              invalidate_cluster t old;
              Hashtbl.replace t.cluster_of_meth meth_id c
          | Some _ -> ()
          | None -> Hashtbl.add t.cluster_of_meth meth_id c);
          K_cluster c)

(* Exact when [num = den] (the K_meth case by construction): every field
   passes through untouched, so header-keyed splicing is bit-identical to
   the pre-cluster implementation. *)
let scale_counts (c : Hierarchy.counts) ~num ~den =
  if num = den then c
  else
    let s x = x * num / den in
    {
      Hierarchy.c_l1i_accesses = s c.Hierarchy.c_l1i_accesses;
      c_l1i_hits = s c.Hierarchy.c_l1i_hits;
      c_l1i_writebacks = s c.Hierarchy.c_l1i_writebacks;
      c_l1d_accesses = s c.Hierarchy.c_l1d_accesses;
      c_l1d_hits = s c.Hierarchy.c_l1d_hits;
      c_l1d_writebacks = s c.Hierarchy.c_l1d_writebacks;
      c_l2_accesses = s c.Hierarchy.c_l2_accesses;
      c_l2_hits = s c.Hierarchy.c_l2_hits;
      c_l2_writebacks = s c.Hierarchy.c_l2_writebacks;
      c_tlb_accesses = s c.Hierarchy.c_tlb_accesses;
      c_tlb_misses = s c.Hierarchy.c_tlb_misses;
      c_mem_reads = s c.Hierarchy.c_mem_reads;
      c_mem_writebacks = s c.Hierarchy.c_mem_writebacks;
    }

let observe_now t ~meth_id ~key ~sg =
  t.open_obs <-
    {
      ob_meth = meth_id;
      ob_key = key;
      ob_sig = sg;
      ob_instrs0 = Engine.instrs t.engine;
      ob_cycles0 = Engine.cycles t.engine;
      ob_counts0 = Hierarchy.counts (Engine.hierarchy t.engine);
      ob_resizes0 = resizes_now t.engine;
      ob_dirty = false;
    }
    :: t.open_obs;
  Engine.Observe

let decide t ~meth_id =
  poll_faults t;
  let entry = Do_database.entry (Engine.db t.engine) meth_id in
  if
    (not entry.Do_database.is_hotspot)
    || entry.Do_database.compile_state <> Do_database.Optimized
  then Engine.No_sample
  else
    match t.allow ~meth_id with
    | Unsettled ->
        t.n_blocked_unsettled <- t.n_blocked_unsettled + 1;
        Obs.incr t.obs t.m_blocked_unsettled;
        Engine.No_sample
    | Not_quiescent ->
        t.n_blocked_quiescence <- t.n_blocked_quiescence + 1;
        Obs.incr t.obs t.m_blocked_quiescence;
        Engine.No_sample
    | Allow -> (
        let sg = current_sig t.engine in
        let key = key_for t ~meth_id in
        match Hashtbl.find_opt t.table (key, sg) with
        (* A poisoned phase can never be replayed, so keep it out of
           [open_obs] entirely: an open observation frame pins every nested
           phase to full simulation, and a permanently observed outer
           method would block its inner phases from ever splicing. *)
        | Some ph when ph.ph_poisoned ->
            t.n_blocked_poisoned <- t.n_blocked_poisoned + 1;
            Obs.incr t.obs t.m_blocked_poisoned;
            Engine.No_sample
        (* Periodic recalibration: after [recalibrate_every] consecutive
           splices a known phase is re-observed instead, so a record whose
           true cost has drifted (cache aging, data-position effects) is
           corrected rather than replayed forever. *)
        | Some ph
          when known t ph
               && (t.cfg.recalibrate_every = 0
                  || ph.ph_since_measure < t.cfg.recalibrate_every) -> (
            (* Never splice inside an open observation: a nested replay
               would fold memoized rather than simulated cycles into the
               outer phase's record. *)
            if t.open_obs <> [] then begin
              t.n_blocked_open_obs <- t.n_blocked_open_obs + 1;
              Obs.incr t.obs t.m_blocked_open_obs;
              observe_now t ~meth_id ~key ~sg
            end
            else
              (* A cluster record predicts CPI; turning that into cycles
                 needs this header's own invocation length, learned from
                 its clean observations.  Until it is known the candidate
                 observes (feeding both the record and the length). *)
              let instrs =
                match key with
                | K_meth _ -> ph.ph_instrs
                | K_cluster _ -> (
                    match Hashtbl.find_opt t.meth_instrs meth_id with
                    | Some n when n > 0 -> n
                    | _ -> 0)
              in
              match instrs with
              | 0 -> observe_now t ~meth_id ~key ~sg
              | m ->
                  ph.ph_since_measure <- ph.ph_since_measure + 1;
                  t.ff_instrs_active <- m;
                  Engine.Fast_forward
                    {
                      Engine.ff_instrs = m;
                      ff_cycles = mean_cpi t ph *. float_of_int m;
                      ff_counts =
                        scale_counts ph.ph_counts ~num:m
                          ~den:(max 1 ph.ph_counts_instrs);
                    })
        | _ -> observe_now t ~meth_id ~key ~sg)

let fresh_phase instrs =
  {
    ph_instrs = instrs;
    ph_seen = 0;
    ph_cpi_sum = 0.0;
    ph_cpi_sumsq = 0.0;
    ph_counts =
      {
        Hierarchy.c_l1i_accesses = 0;
        c_l1i_hits = 0;
        c_l1i_writebacks = 0;
        c_l1d_accesses = 0;
        c_l1d_hits = 0;
        c_l1d_writebacks = 0;
        c_l2_accesses = 0;
        c_l2_hits = 0;
        c_l2_writebacks = 0;
        c_tlb_accesses = 0;
        c_tlb_misses = 0;
        c_mem_reads = 0;
        c_mem_writebacks = 0;
      };
    ph_counts_instrs = instrs;
    ph_poisoned = false;
    ph_since_measure = 0;
  }

(* Region end of an observed invocation: fold the measured repeat into the
   phase's statistics if it was clean (no promotion/recompile/fault inside,
   no resize, same hardware signature at both ends) and behaviourally
   consistent.  For header-keyed records consistency means an identical
   instruction count — the engine's control flow is invocation-count-driven,
   so a mismatch means the phase key is too coarse and the entry is poisoned
   rather than averaged.  Cluster records deliberately mix headers of
   different lengths, so they normalize to CPI instead and rely on the CoV
   bound to reject clusters whose members do not actually share behaviour. *)
let observe_exit t ob =
  let eng = t.engine in
  t.n_observations <- t.n_observations + 1;
  Obs.incr t.obs t.m_observations;
  let clean =
    (not ob.ob_dirty)
    && resizes_now eng = ob.ob_resizes0
    && current_sig eng = ob.ob_sig
  in
  if clean then begin
    let d_instrs = Engine.instrs eng - ob.ob_instrs0 in
    let d_cycles = Engine.cycles eng -. ob.ob_cycles0 in
    if d_instrs > 0 then Hashtbl.replace t.meth_instrs ob.ob_meth d_instrs;
    let key = (ob.ob_key, ob.ob_sig) in
    let ph =
      match Hashtbl.find_opt t.table key with
      | Some ph -> ph
      | None ->
          let ph = fresh_phase d_instrs in
          Hashtbl.add t.table key ph;
          ph
    in
    if not ph.ph_poisoned && d_instrs > 0 then
      match ob.ob_key with
      | K_meth _ when d_instrs <> ph.ph_instrs -> ph.ph_poisoned <- true
      | _ ->
          let cpi = d_cycles /. float_of_int d_instrs in
          ph.ph_since_measure <- 0;
          let mean = mean_cpi t ph in
          if known t ph && Float.abs (cpi -. mean) > t.cfg.cov_bound *. mean
          then begin
            (* A recalibration repeat outside the bound means the record no
               longer describes the phase: relearn from this repeat rather
               than splicing a stale cost. *)
            ph.ph_seen <- t.cfg.warmup + 1;
            ph.ph_cpi_sum <- cpi;
            ph.ph_cpi_sumsq <- cpi *. cpi;
            ph.ph_instrs <- d_instrs;
            ph.ph_counts <-
              Hierarchy.diff_counts ~before:ob.ob_counts0
                ~after:(Hierarchy.counts (Engine.hierarchy eng));
            ph.ph_counts_instrs <- d_instrs
          end
          else begin
            (* Hold the measurement window at [repeats] samples: rescaling
               before folding keeps the mean recency-weighted, so slow
               drift is tracked instead of averaged into ancient history. *)
            let n = measured t ph in
            if n >= t.cfg.repeats then begin
              let k = float_of_int (t.cfg.repeats - 1) /. float_of_int n in
              ph.ph_cpi_sum <- ph.ph_cpi_sum *. k;
              ph.ph_cpi_sumsq <- ph.ph_cpi_sumsq *. k;
              ph.ph_seen <- t.cfg.warmup + t.cfg.repeats - 1
            end;
            ph.ph_seen <- ph.ph_seen + 1;
            ph.ph_instrs <- d_instrs;
            if ph.ph_seen > t.cfg.warmup then begin
              ph.ph_cpi_sum <- ph.ph_cpi_sum +. cpi;
              ph.ph_cpi_sumsq <- ph.ph_cpi_sumsq +. (cpi *. cpi);
              ph.ph_counts <-
                Hierarchy.diff_counts ~before:ob.ob_counts0
                  ~after:(Hierarchy.counts (Engine.hierarchy eng));
              ph.ph_counts_instrs <- d_instrs
            end
          end
  end

let region_exit t ~meth_id ~ff =
  if ff then begin
    t.n_splices <- t.n_splices + 1;
    t.n_spliced_instrs <- t.n_spliced_instrs + t.ff_instrs_active;
    Obs.incr t.obs t.m_splices;
    Obs.add t.obs t.m_spliced_instrs t.ff_instrs_active;
    t.ff_instrs_active <- 0
  end
  else
    match t.open_obs with
    | ob :: rest when ob.ob_meth = meth_id ->
        t.open_obs <- rest;
        observe_exit t ob
    | _ -> assert false (* sc_exit pairing is LIFO by construction *)

let attach ?(config = default_config) ?(faults = Faults.none)
    ?(obs = Obs.null) ?classify ~allow engine =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sample.attach: " ^ msg));
  let t =
    {
      cfg = config;
      engine;
      faults;
      allow;
      classify;
      table = Hashtbl.create 64;
      meth_instrs = Hashtbl.create 64;
      cluster_of_meth = Hashtbl.create 64;
      open_obs = [];
      fault_events0 = Faults.hw_fault_events faults;
      ff_instrs_active = 0;
      n_observations = 0;
      n_splices = 0;
      n_spliced_instrs = 0;
      n_blocked_quiescence = 0;
      n_blocked_unsettled = 0;
      n_blocked_open_obs = 0;
      n_blocked_poisoned = 0;
      obs;
      m_observations = Obs.counter obs "sample.observations";
      m_splices = Obs.counter obs "sample.splices";
      m_spliced_instrs = Obs.counter obs "sample.spliced_instrs";
      m_blocked_quiescence = Obs.counter obs "sample.blocked_quiescence";
      m_blocked_unsettled = Obs.counter obs "sample.blocked_unsettled";
      m_blocked_open_obs = Obs.counter obs "sample.blocked_open_obs";
      m_blocked_poisoned = Obs.counter obs "sample.blocked_poisoned";
    }
  in
  (* A promotion or recompile inside an observed span changes its cost
     structure (compile charges, quality flip), so the repeat is
     unrepresentative.  Wrapping preserves whatever the scheme installed. *)
  let hooks = Engine.hooks engine in
  let prev_promoted = hooks.Engine.on_hotspot_promoted in
  hooks.Engine.on_hotspot_promoted <-
    (fun ~meth_id ->
      mark_dirty t;
      prev_promoted ~meth_id);
  let prev_recompile = hooks.Engine.on_recompile in
  hooks.Engine.on_recompile <-
    (fun ~meth_id ->
      mark_dirty t;
      prev_recompile ~meth_id);
  Engine.set_sample_ctl engine
    {
      Engine.sc_decide = (fun ~meth_id -> decide t ~meth_id);
      sc_exit = (fun ~meth_id ~ff -> region_exit t ~meth_id ~ff);
    };
  t

(* -- run statistics ------------------------------------------------- *)

type stats = {
  observations : int;  (* candidate invocations measured in full *)
  known_phases : int;  (* cache entries currently fast-forwardable *)
  splices : int;  (* regions replayed from memoized records *)
  spliced_instrs : int;  (* instructions covered by replayed regions *)
  blocked_quiescence : int;  (* guard verdicts: measurement in flight *)
  blocked_unsettled : int;  (* guard verdicts: own tuner mid-campaign *)
  blocked_open_obs : int;  (* known phases pinned by an open observation *)
  blocked_poisoned : int;  (* candidates hitting a poisoned record *)
}

let stats t =
  let known_phases =
    Hashtbl.fold (fun _ ph acc -> if known t ph then acc + 1 else acc) t.table 0
  in
  {
    observations = t.n_observations;
    known_phases;
    splices = t.n_splices;
    spliced_instrs = t.n_spliced_instrs;
    blocked_quiescence = t.n_blocked_quiescence;
    blocked_unsettled = t.n_blocked_unsettled;
    blocked_open_obs = t.n_blocked_open_obs;
    blocked_poisoned = t.n_blocked_poisoned;
  }

(* -- checkpoint capture / restore ----------------------------------- *)

type phase_entry_state = {
  pe_key : key;
  pe_sig : hw_sig;
  pe_instrs : int;
  pe_seen : int;
  pe_cpi_sum : float;
  pe_cpi_sumsq : float;
  pe_counts : Hierarchy.counts;
  pe_counts_instrs : int;
  pe_poisoned : bool;
  pe_since_measure : int;
}

type obs_frame_state = {
  os_meth : int;
  os_key : key;
  os_sig : hw_sig;
  os_instrs0 : int;
  os_cycles0 : float;
  os_counts0 : Hierarchy.counts;
  os_resizes0 : int;
  os_dirty : bool;
}

type state = {
  s_entries : phase_entry_state array;  (* sorted by key: determinism *)
  s_meth_instrs : (int * int) array;  (* sorted by method id *)
  s_cluster_of_meth : (int * int) array;  (* sorted by method id *)
  s_open : obs_frame_state array;  (* outermost observation first *)
  s_fault_events0 : int;
  s_ff_instrs_active : int;
  s_observations : int;
  s_splices : int;
  s_spliced_instrs : int;
  s_blocked_quiescence : int;
  s_blocked_unsettled : int;
  s_blocked_open_obs : int;
  s_blocked_poisoned : int;
}

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare |> Array.of_list

let capture t =
  let entries =
    Hashtbl.fold
      (fun (key, sg) ph acc ->
        {
          pe_key = key;
          pe_sig = sg;
          pe_instrs = ph.ph_instrs;
          pe_seen = ph.ph_seen;
          pe_cpi_sum = ph.ph_cpi_sum;
          pe_cpi_sumsq = ph.ph_cpi_sumsq;
          pe_counts = ph.ph_counts;
          pe_counts_instrs = ph.ph_counts_instrs;
          pe_poisoned = ph.ph_poisoned;
          pe_since_measure = ph.ph_since_measure;
        }
        :: acc)
      t.table []
    |> List.sort compare |> Array.of_list
  in
  {
    s_entries = entries;
    s_meth_instrs = sorted_bindings t.meth_instrs;
    s_cluster_of_meth = sorted_bindings t.cluster_of_meth;
    s_open =
      Array.of_list
        (List.rev_map
           (fun ob ->
             {
               os_meth = ob.ob_meth;
               os_key = ob.ob_key;
               os_sig = ob.ob_sig;
               os_instrs0 = ob.ob_instrs0;
               os_cycles0 = ob.ob_cycles0;
               os_counts0 = ob.ob_counts0;
               os_resizes0 = ob.ob_resizes0;
               os_dirty = ob.ob_dirty;
             })
           t.open_obs);
    s_fault_events0 = t.fault_events0;
    s_ff_instrs_active = t.ff_instrs_active;
    s_observations = t.n_observations;
    s_splices = t.n_splices;
    s_spliced_instrs = t.n_spliced_instrs;
    s_blocked_quiescence = t.n_blocked_quiescence;
    s_blocked_unsettled = t.n_blocked_unsettled;
    s_blocked_open_obs = t.n_blocked_open_obs;
    s_blocked_poisoned = t.n_blocked_poisoned;
  }

let restore t s =
  Hashtbl.reset t.table;
  Array.iter
    (fun pe ->
      Hashtbl.replace t.table (pe.pe_key, pe.pe_sig)
        {
          ph_instrs = pe.pe_instrs;
          ph_seen = pe.pe_seen;
          ph_cpi_sum = pe.pe_cpi_sum;
          ph_cpi_sumsq = pe.pe_cpi_sumsq;
          ph_counts = pe.pe_counts;
          ph_counts_instrs = pe.pe_counts_instrs;
          ph_poisoned = pe.pe_poisoned;
          ph_since_measure = pe.pe_since_measure;
        })
    s.s_entries;
  Hashtbl.reset t.meth_instrs;
  Array.iter
    (fun (m, n) -> Hashtbl.replace t.meth_instrs m n)
    s.s_meth_instrs;
  Hashtbl.reset t.cluster_of_meth;
  Array.iter
    (fun (m, c) -> Hashtbl.replace t.cluster_of_meth m c)
    s.s_cluster_of_meth;
  t.open_obs <-
    Array.fold_left
      (fun acc os ->
        {
          ob_meth = os.os_meth;
          ob_key = os.os_key;
          ob_sig = os.os_sig;
          ob_instrs0 = os.os_instrs0;
          ob_cycles0 = os.os_cycles0;
          ob_counts0 = os.os_counts0;
          ob_resizes0 = os.os_resizes0;
          ob_dirty = os.os_dirty;
        }
        :: acc)
      [] s.s_open;
  t.fault_events0 <- s.s_fault_events0;
  t.ff_instrs_active <- s.s_ff_instrs_active;
  t.n_observations <- s.s_observations;
  t.n_splices <- s.s_splices;
  t.n_spliced_instrs <- s.s_spliced_instrs;
  t.n_blocked_quiescence <- s.s_blocked_quiescence;
  t.n_blocked_unsettled <- s.s_blocked_unsettled;
  t.n_blocked_open_obs <- s.s_blocked_open_obs;
  t.n_blocked_poisoned <- s.s_blocked_poisoned
