(** Phase-memoized fast-forward sampling.

    The simulator's dominant cost is per-access cache simulation, yet a
    recurring phase's cache behaviour is stable once the program and the
    adaptation system settle (Phase Distance Mapping; see PAPERS.md).
    This module memoizes per-phase statistics — keyed on phase identity
    plus the exact hardware configuration — and, once a phase is "known",
    asks the engine to fast-forward through its repeats: architectural
    state (DO database, pattern cursors, RNG stream, instruction counts)
    advances exactly as a full simulation would, while timing and
    hierarchy counters are spliced in from the memoized record.  See
    DESIGN.md §Sampled simulation.

    Phase identity is the hotspot's header method by default.  With a
    [classify] function installed (the BBV scheme's phase tracker),
    records are instead keyed on the current {e behaviour cluster}:
    every header executing in one cluster shares one CPI-normalized
    record, so a method can fast-forward off repeats of other methods
    with the same behaviour signature.  When the tracker reassigns a
    header to a different cluster, the old cluster's records are dropped
    (its composition changed) and observations bound for it discarded.

    The detector is warmup-aware: the first [warmup] clean repeats of a
    phase are discarded (cold caches, JIT ramp), and fast-forwarding only
    begins after [repeats] further clean repeats whose per-instruction
    cycle costs agree within [cov_bound].  A repeat is clean when no
    promotion, recompile, reconfiguration or hardware fault landed inside
    it and the hardware signature is unchanged end to end.  Tuner trials
    always run under full simulation: the [allow] guard rejects
    candidates whose scheme is mid-measurement, and reports {e why} so
    the run summary can show what is holding coverage back. *)

type config = {
  warmup : int;  (** Clean repeats discarded before measuring. *)
  repeats : int;  (** Measured clean repeats required to trust a phase. *)
  cov_bound : float;  (** Maximum cycle CoV across the measured repeats. *)
  recalibrate_every : int;
      (** Consecutive splices of a phase before it is re-observed, so a
          record whose true cost drifted is corrected; 0 disables
          recalibration (never re-measure). *)
}

val default_config : config
(** warmup 2, repeats 3, cov_bound 0.05, recalibrate_every 64. *)

val validate_config : config -> (unit, string) result
(** Reject nonsensical thresholds (negative warmup, repeats < 1,
    non-finite or negative bound, negative recalibration period). *)

(** Scheme guard verdict for a splice/observe candidate.  [Unsettled]
    means the candidate's own tuner is mid-campaign or mid-measurement;
    [Not_quiescent] means some other measurement is in flight (for the
    hotspot scheme, a measuring invocation is open on the call stack).
    Only the reasons are counted — both rejections behave identically. *)
type verdict = Allow | Unsettled | Not_quiescent

(** The hardware configuration a phase record was measured under; part of
    the cache key, so statistics never cross configurations. *)
type hw_sig = {
  hs_l1d_bytes : int;
  hs_l2_bytes : int;
  hs_ilp_bits : int64;
  hs_exposure_bits : int64;
}

(** Record identity: one hotspot header method exactly, or a BBV
    behaviour cluster shared by every header executing in it. *)
type key = K_meth of int | K_cluster of int

type t

val attach :
  ?config:config ->
  ?faults:Ace_faults.Faults.t ->
  ?obs:Ace_obs.Obs.t ->
  ?classify:(unit -> int option) ->
  allow:(meth_id:int -> verdict) ->
  Ace_vm.Engine.t ->
  t
(** Install the sampler on an engine (once per engine, before it runs or
    resumes).  [allow] is the scheme quiescence guard: a candidate is only
    observed or fast-forwarded while it returns [Allow] (e.g. the hotspot
    tuner has settled and no measurement is in flight, or the BBV scheme
    has no pending trial).  [classify], when given, returns the current
    behaviour cluster id ([None] until the first classification) and
    switches record keying from headers to clusters.  [faults] must be
    the engine's injector: the sampler polls its monotone hardware-fault
    counter and invalidates the entire cache when it moves.  [obs]
    receives [sample.*] counters.
    @raise Invalid_argument on an invalid config or a double attach. *)

val config : t -> config

(** Cumulative sampling statistics for the run summary.  The [blocked_*]
    counters break down why candidates could not fast-forward: guard
    verdicts ([blocked_quiescence], [blocked_unsettled]), known records
    pinned under an open observation ([blocked_open_obs]) and poisoned
    records ([blocked_poisoned]). *)
type stats = {
  observations : int;  (** Candidate invocations measured in full. *)
  known_phases : int;  (** Cache entries currently fast-forwardable. *)
  splices : int;  (** Regions replayed from memoized records. *)
  spliced_instrs : int;  (** Instructions covered by replayed regions. *)
  blocked_quiescence : int;
  blocked_unsettled : int;
  blocked_open_obs : int;
  blocked_poisoned : int;
}

val stats : t -> stats

(** {2 Checkpoint capture / restore}

    Snapshots carry the whole phase-statistics cache, the learned
    per-method invocation lengths, the header-to-cluster map and any
    observations in flight, so a killed sampled run resumes
    bit-identically with the uninterrupted one (same future decisions,
    same splices). *)

type phase_entry_state = {
  pe_key : key;
  pe_sig : hw_sig;
  pe_instrs : int;
  pe_seen : int;
  pe_cpi_sum : float;
  pe_cpi_sumsq : float;
  pe_counts : Ace_mem.Hierarchy.counts;
  pe_counts_instrs : int;
  pe_poisoned : bool;
  pe_since_measure : int;
}

type obs_frame_state = {
  os_meth : int;
  os_key : key;
  os_sig : hw_sig;
  os_instrs0 : int;
  os_cycles0 : float;
  os_counts0 : Ace_mem.Hierarchy.counts;
  os_resizes0 : int;
  os_dirty : bool;
}

type state = {
  s_entries : phase_entry_state array;  (** Sorted by key. *)
  s_meth_instrs : (int * int) array;  (** Sorted by method id. *)
  s_cluster_of_meth : (int * int) array;  (** Sorted by method id. *)
  s_open : obs_frame_state array;  (** Outermost observation first. *)
  s_fault_events0 : int;
  s_ff_instrs_active : int;
  s_observations : int;
  s_splices : int;
  s_spliced_instrs : int;
  s_blocked_quiescence : int;
  s_blocked_unsettled : int;
  s_blocked_open_obs : int;
  s_blocked_poisoned : int;
}

val capture : t -> state

val restore : t -> state -> unit
(** Overwrite a freshly attached sampler with a captured state. *)
