(** Phase-memoized fast-forward sampling.

    The simulator's dominant cost is per-access cache simulation, yet a
    recurring phase's cache behaviour is stable once the program and the
    adaptation system settle (Phase Distance Mapping; see PAPERS.md).
    This module memoizes per-phase statistics — keyed on phase identity
    (the hotspot's header method) plus the exact hardware configuration —
    and, once a phase is "known", asks the engine to fast-forward through
    its repeats: architectural state (DO database, pattern cursors, RNG
    stream, instruction counts) advances exactly as a full simulation
    would, while timing and hierarchy counters are spliced in from the
    memoized record.  See DESIGN.md §Sampled simulation.

    The detector is warmup-aware: the first [warmup] clean repeats of a
    phase are discarded (cold caches, JIT ramp), and fast-forwarding only
    begins after [repeats] further clean repeats whose cycle counts agree
    within [cov_bound].  A repeat is clean when no promotion, recompile,
    reconfiguration or hardware fault landed inside it and the hardware
    signature is unchanged end to end.  Tuner trials always run under full
    simulation: the [allow] guard rejects candidates whose scheme is
    mid-measurement. *)

type config = {
  warmup : int;  (** Clean repeats discarded before measuring. *)
  repeats : int;  (** Measured clean repeats required to trust a phase. *)
  cov_bound : float;  (** Maximum cycle CoV across the measured repeats. *)
  recalibrate_every : int;
      (** Consecutive splices of a phase before it is re-observed, so a
          record whose true cost drifted is corrected; 0 disables
          recalibration (never re-measure). *)
}

val default_config : config
(** warmup 2, repeats 3, cov_bound 0.05, recalibrate_every 64. *)

val validate_config : config -> (unit, string) result
(** Reject nonsensical thresholds (negative warmup, repeats < 1,
    non-finite or negative bound, negative recalibration period). *)

(** The hardware configuration a phase record was measured under; part of
    the cache key, so statistics never cross configurations. *)
type hw_sig = {
  hs_l1d_bytes : int;
  hs_l2_bytes : int;
  hs_ilp_bits : int64;
  hs_exposure_bits : int64;
}

type t

val attach :
  ?config:config ->
  ?faults:Ace_faults.Faults.t ->
  ?obs:Ace_obs.Obs.t ->
  allow:(meth_id:int -> bool) ->
  Ace_vm.Engine.t ->
  t
(** Install the sampler on an engine (once per engine, before it runs or
    resumes).  [allow] is the scheme quiescence guard: a candidate is only
    observed or fast-forwarded while it returns [true] (e.g. the hotspot
    tuner has settled, or the BBV scheme has no pending trial).  [faults]
    must be the engine's injector: the sampler polls its monotone
    hardware-fault counter and invalidates the entire cache when it moves.
    [obs] receives [sample.*] counters.
    @raise Invalid_argument on an invalid config or a double attach. *)

val config : t -> config

(** Cumulative sampling statistics for the run summary. *)
type stats = {
  observations : int;  (** Candidate invocations measured in full. *)
  known_phases : int;  (** Cache entries currently fast-forwardable. *)
  splices : int;  (** Regions replayed from memoized records. *)
  spliced_instrs : int;  (** Instructions covered by replayed regions. *)
}

val stats : t -> stats

(** {2 Checkpoint capture / restore}

    Snapshots carry the whole phase-statistics cache and any observations
    in flight, so a killed sampled run resumes bit-identically with the
    uninterrupted one (same future decisions, same splices). *)

type phase_entry_state = {
  pe_meth : int;
  pe_sig : hw_sig;
  pe_instrs : int;
  pe_seen : int;
  pe_cycles_sum : float;
  pe_cycles_sumsq : float;
  pe_counts : Ace_mem.Hierarchy.counts;
  pe_poisoned : bool;
  pe_since_measure : int;
}

type obs_frame_state = {
  os_meth : int;
  os_sig : hw_sig;
  os_instrs0 : int;
  os_cycles0 : float;
  os_counts0 : Ace_mem.Hierarchy.counts;
  os_resizes0 : int;
  os_dirty : bool;
}

type state = {
  s_entries : phase_entry_state array;  (** Sorted by key. *)
  s_open : obs_frame_state array;  (** Outermost observation first. *)
  s_fault_events0 : int;
  s_ff_instrs_active : int;
  s_observations : int;
  s_splices : int;
  s_spliced_instrs : int;
}

val capture : t -> state

val restore : t -> state -> unit
(** Overwrite a freshly attached sampler with a captured state. *)
