(** Client side of the serve protocol: one connect/request/response/close
    round trip per call. *)

exception Client_error of string
(** Connection-level failure (daemon not running, socket missing, protocol
    violation), with a human-readable message. *)

val request : socket:string -> Protocol.request -> Protocol.response
(** @raise Client_error if the daemon is unreachable or misbehaves. *)

val submit : socket:string -> Protocol.job_spec -> Protocol.response
val status : socket:string -> Protocol.response
val result : socket:string -> int -> Protocol.response
val stop : socket:string -> Protocol.response

val wait :
  socket:string ->
  ?poll_interval:float ->
  ?timeout:float ->
  int ->
  [ `Done of string | `Failed of string | `Timeout ]
(** Poll [result] until the job settles.  Connection failures during the
    wait are retried until [timeout] (default 120 s) — deliberate, so a
    client can ride out a daemon crash/restart cycle and still collect the
    resumed job's result. *)
