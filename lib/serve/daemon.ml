module Obs = Ace_obs.Obs
module Export = Ace_obs.Export
module Io = Ace_util.Io
module Pool = Ace_util.Pool
module Snapshot = Ace_ckpt.Snapshot
module Run = Ace_harness.Run
module Render = Ace_harness.Render

type config = {
  socket_path : string;
  spool_dir : string;
  workers : int;
  queue_max : int;
  checkpoint_every : int;
  kill_after : int option;
  obs_level : Obs.level;
  trace : string option;
  metrics : string option;
  verbose : bool;
  io : Io.t;
}

let default_config ~socket_path ~spool_dir ~workers =
  {
    socket_path;
    spool_dir;
    workers;
    queue_max = 64;
    checkpoint_every = 10_000_000;
    kill_after = None;
    obs_level = Obs.Metrics;
    trace = None;
    metrics = None;
    verbose = false;
    io = Io.real;
  }

(* -- job control exceptions (raised from [on_boundary]) ------------- *)

exception Deadline_exceeded of float
exception Poisoned of int
exception Drain_requested

let max_attempts = 3

(* -- worker -> supervisor mailbox ----------------------------------- *)

type msg =
  | M_resumed of { id : int; instrs : int }
  | M_retry of { id : int; attempt : int; reason : string }
  | M_done of { id : int; output : string }
  | M_failed of { id : int; reason : string }
  | M_drained of int
  | M_io_fault of { id : int; op : string; path : string; enospc : bool }

type mailbox = { mb_mutex : Mutex.t; mb_q : msg Queue.t }

let post mb m =
  Mutex.lock mb.mb_mutex;
  Queue.add m mb.mb_q;
  Mutex.unlock mb.mb_mutex

let drain_mailbox mb =
  Mutex.lock mb.mb_mutex;
  let msgs = List.of_seq (Queue.to_seq mb.mb_q) in
  Queue.clear mb.mb_q;
  Mutex.unlock mb.mb_mutex;
  msgs

(* -- supervisor state ----------------------------------------------- *)

type jstate = Queued | Running | Done | Failed of string | Interrupted

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"
  | Interrupted -> "interrupted"

type job = {
  id : int;
  spec : Protocol.job_spec;
  mutable state : jstate;
  mutable enqueued_at : float;
}

type stats = {
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable failed : int;
  mutable retries : int;
  mutable resumes : int;
  mutable requeued : int;
  mutable io_faults : int;
}

type t = {
  cfg : config;
  obs : Obs.t;
  jobs : (int, job) Hashtbl.t;
  queue : int Queue.t;
  mutable running : int;
  mutable next_id : int;
  stats : stats;
  drain : bool Atomic.t;
  chaos : int Atomic.t;  (** Instructions executed this daemon life. *)
  mb : mailbox;
  pool : Pool.t;
  mutable degraded : bool;
      (* Spool writes are hitting ENOSPC: admission paused, settles
         deferred, a per-tick probe watches for space coming back. *)
  deferred : (int * [ `Result of string | `Failed of string ]) Queue.t;
  (* metric handles *)
  c_submitted : Obs.counter;
  c_rejected : Obs.counter;
  c_completed : Obs.counter;
  c_failed : Obs.counter;
  c_retries : Obs.counter;
  c_resumes : Obs.counter;
  c_requeued : Obs.counter;
  c_io_fault : Obs.counter;
  c_degraded : Obs.counter;
  g_queue_depth : Obs.gauge;
  g_running : Obs.gauge;
  h_latency : Obs.histogram;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "[serve] %s\n%!" s)
    fmt

let job_event t id state =
  if Obs.tracing t.obs then Obs.record t.obs (Obs.Job_state { id; state })

(* -- job execution (worker domain) ----------------------------------

   Everything here must stay off the supervisor's state: workers touch only
   their own job's spool files, the shared atomics, and the mailbox.  The
   daemon's obs sink is NOT thread-safe and is updated exclusively by the
   supervisor loop, from mailbox messages. *)

let exec_job ~cfg ~chaos ~drain ~mb id (spec : Protocol.job_spec) =
  let io = cfg.io in
  let path = Spool.snap_path ~dir:cfg.spool_dir id in
  let started = Unix.gettimeofday () in
  let one_attempt () =
    (* [last] tracks this attempt's previous boundary so the chaos counter
       accumulates executed-instruction deltas, not absolute positions. *)
    let last = ref 0 in
    let on_boundary ~total_instrs =
      let delta = total_instrs - !last in
      last := total_instrs;
      (match cfg.kill_after with
      | Some n when Atomic.fetch_and_add chaos delta + delta >= n ->
          (* Crash, not exit: skip all cleanup so the spool looks exactly
             as it would after SIGKILL. *)
          Unix._exit 3
      | _ -> ());
      if Atomic.get drain then raise Drain_requested;
      (match spec.Protocol.fail_after with
      | Some n when total_instrs >= n -> raise (Poisoned total_instrs)
      | _ -> ());
      match spec.Protocol.deadline_s with
      | Some d when Unix.gettimeofday () -. started > d ->
          raise (Deadline_exceeded d)
      | _ -> ()
    in
    let outcome =
      match Snapshot.read_with_fallback ~io ~path () with
      | Some (snap, _which) ->
          last := snap.Snapshot.engine.Ace_vm.Engine.s_instrs;
          post mb (M_resumed { id; instrs = !last });
          Run.resume_from_snapshot ~io ~on_boundary ~path snap
      | None ->
          let workload =
            match Ace_workloads.Specjvm.find spec.Protocol.workload with
            | Some w -> w
            | None ->
                (* Submit validated the name; reaching this means the spool
                   outlived the workload registry. *)
                invalid_arg
                  (Printf.sprintf "unknown workload %S" spec.Protocol.workload)
          in
          Run.run_checkpointed ~io ~scale:spec.Protocol.scale
            ~seed:spec.Protocol.seed ~resilient:spec.Protocol.resilient
            ?fault_rate:spec.Protocol.fault_rate
            ?sample:
              (if spec.Protocol.sample then
                 Some Ace_sample.Sample.default_config
               else None)
            ~on_boundary
            ~checkpoint_every:cfg.checkpoint_every ~path workload
            spec.Protocol.scheme
    in
    match outcome with
    | Run.Completed r -> post mb (M_done { id; output = Render.run_output r })
    | Run.Killed_at _ ->
        (* No [kill_after] is ever passed down to [Run]. *)
        assert false
  in
  let rec attempt_loop attempt =
    match one_attempt () with
    | () -> ()
    | exception Drain_requested -> post mb (M_drained id)
    | exception Deadline_exceeded d ->
        post mb (M_failed { id; reason = Printf.sprintf "deadline of %gs exceeded" d })
    | exception e ->
        (* Storage failures are retried like any other, but the
           supervisor hears about each one so it can count them, trace
           them, and enter degraded mode on persistent ENOSPC. *)
        (match e with
        | Io.Io_error { op; path; err } ->
            post mb (M_io_fault { id; op; path; enospc = err = Io.Enospc })
        | _ -> ());
        let reason =
          match Io.error_message e with
          | Some m -> m
          | None -> Printexc.to_string e
        in
        if attempt + 1 >= max_attempts then
          post mb
            (M_failed
               {
                 id;
                 reason =
                   Printf.sprintf "gave up after %d attempts: %s" max_attempts
                     reason;
               })
        else begin
          post mb (M_retry { id; attempt = attempt + 1; reason });
          Unix.sleepf (0.25 *. (2.0 ** float_of_int attempt));
          attempt_loop (attempt + 1)
        end
  in
  attempt_loop 0

(* -- supervisor ----------------------------------------------------- *)

let io_fault t ~op ~path =
  t.stats.io_faults <- t.stats.io_faults + 1;
  Obs.incr t.obs t.c_io_fault;
  if Obs.tracing t.obs then Obs.record t.obs (Obs.Io_fault { op; path });
  log t "storage fault: %s %s" op path

let enter_degraded t =
  if not t.degraded then begin
    t.degraded <- true;
    Obs.incr t.obs t.c_degraded;
    log t "persistent ENOSPC: entering degraded mode (admissions paused)"
  end

(* Persist a finished job's outcome.  On storage failure the outcome is
   deferred, not dropped: the snapshot family is kept so a crash before
   the deferred settle still resumes the job, and [probe_storage]
   replays the queue once writes succeed again. *)
let try_settle t id outcome =
  let io = t.cfg.io and dir = t.cfg.spool_dir in
  match
    match outcome with
    | `Result output -> Spool.write_result ~io ~dir id output
    | `Failed reason -> Spool.write_failed ~io ~dir id reason
  with
  | () -> (
      Spool.clear_snapshots ~io ~dir id;
      let job = Hashtbl.find t.jobs id in
      match outcome with
      | `Result _ ->
          t.stats.completed <- t.stats.completed + 1;
          Obs.incr t.obs t.c_completed;
          if Obs.enabled t.obs then
            Obs.observe t.obs t.h_latency
              (Unix.gettimeofday () -. job.enqueued_at);
          job_event t id "done";
          log t "job %d done" id
      | `Failed reason ->
          t.stats.failed <- t.stats.failed + 1;
          Obs.incr t.obs t.c_failed;
          job_event t id "failed";
          log t "job %d failed: %s" id reason)
  | exception Io.Io_error { op; path; err } ->
      io_fault t ~op ~path;
      if err = Io.Enospc then enter_degraded t;
      Queue.add (id, outcome) t.deferred;
      log t "job %d settle deferred (storage fault)" id

(* While degraded, poke the spool each tick; the moment a durable write
   goes through again, lift the pause and replay every deferred settle.
   Recovery is automatic — no operator action, matching how the queue's
   Overloaded backpressure already works. *)
let probe_storage t =
  if t.degraded then begin
    let io = t.cfg.io in
    let probe = Filename.concat t.cfg.spool_dir ".probe" in
    match
      Io.write_file io probe "ok";
      Io.fsync io probe;
      Io.remove io probe
    with
    | () ->
        t.degraded <- false;
        log t "storage recovered: admissions resumed"
    | exception Io.Io_error _ -> ()
  end;
  if (not t.degraded) && not (Queue.is_empty t.deferred) then begin
    let pending = List.of_seq (Queue.to_seq t.deferred) in
    Queue.clear t.deferred;
    List.iter (fun (id, outcome) -> try_settle t id outcome) pending
  end

let process_msg t = function
  | M_resumed { id; instrs } ->
      t.stats.resumes <- t.stats.resumes + 1;
      Obs.incr t.obs t.c_resumes;
      job_event t id "resumed";
      log t "job %d resumed from snapshot at %d instrs" id instrs
  | M_retry { id; attempt; reason } ->
      t.stats.retries <- t.stats.retries + 1;
      Obs.incr t.obs t.c_retries;
      job_event t id "retrying";
      log t "job %d attempt %d failed (%s), retrying" id attempt reason
  | M_done { id; output } ->
      let job = Hashtbl.find t.jobs id in
      job.state <- Done;
      t.running <- t.running - 1;
      try_settle t id (`Result output)
  | M_failed { id; reason } ->
      let job = Hashtbl.find t.jobs id in
      job.state <- Failed reason;
      t.running <- t.running - 1;
      try_settle t id (`Failed reason)
  | M_drained id ->
      let job = Hashtbl.find t.jobs id in
      job.state <- Interrupted;
      (* Snapshot and spec stay in the spool; the next daemon resumes it. *)
      t.running <- t.running - 1;
      t.stats.requeued <- t.stats.requeued + 1;
      Obs.incr t.obs t.c_requeued;
      job_event t id "interrupted";
      log t "job %d snapshotted for drain" id
  | M_io_fault { id; op; path; enospc } ->
      io_fault t ~op ~path;
      if enospc then enter_degraded t;
      log t "job %d hit a storage fault (%s %s)" id op path

let dispatch t =
  while
    (not (Atomic.get t.drain))
    && t.running < t.cfg.workers
    && Queue.length t.queue > 0
  do
    let id = Queue.pop t.queue in
    let job = Hashtbl.find t.jobs id in
    job.state <- Running;
    t.running <- t.running + 1;
    job_event t id "running";
    log t "job %d dispatched" id;
    let cfg = t.cfg and chaos = t.chaos and drain = t.drain and mb = t.mb in
    let spec = job.spec in
    Pool.async t.pool (fun () -> exec_job ~cfg ~chaos ~drain ~mb id spec)
  done

let update_gauges t =
  if Obs.enabled t.obs then begin
    Obs.set_gauge t.obs t.g_queue_depth (float_of_int (Queue.length t.queue));
    Obs.set_gauge t.obs t.g_running (float_of_int t.running)
  end

let status_report t =
  let jobs =
    Hashtbl.fold
      (fun _ (j : job) acc ->
        { Protocol.id = j.id; state = state_name j.state } :: acc)
      t.jobs []
    |> List.sort (fun (a : Protocol.job_info) b -> compare a.id b.id)
  in
  {
    Protocol.queue_depth = Queue.length t.queue;
    running = t.running;
    draining = Atomic.get t.drain;
    degraded = t.degraded;
    counters =
      [
        ("completed", t.stats.completed);
        ("failed", t.stats.failed);
        ("io_faults", t.stats.io_faults);
        ("rejected_overloaded", t.stats.rejected);
        ("requeued", t.stats.requeued);
        ("resumes", t.stats.resumes);
        ("retries", t.stats.retries);
        ("submitted", t.stats.submitted);
      ];
    jobs;
  }

let enqueue t ~id ~spec ~state =
  let job = { id; spec; state; enqueued_at = Unix.gettimeofday () } in
  Hashtbl.replace t.jobs id job;
  if state = Queued then Queue.add id t.queue;
  job

let handle_request t = function
  | Protocol.Status -> Protocol.Status_ok (status_report t)
  | Protocol.Stop ->
      Atomic.set t.drain true;
      log t "drain requested";
      Protocol.Stopping
  | Protocol.Result id -> (
      match Hashtbl.find_opt t.jobs id with
      | None -> Protocol.Error_resp (Printf.sprintf "unknown job %d" id)
      | Some job ->
          let output =
            match job.state with
            | Done -> Spool.read_result ~dir:t.cfg.spool_dir id
            | Failed reason -> Some reason
            | Queued | Running | Interrupted -> None
          in
          Protocol.Result_ok { id; state = state_name job.state; output })
  | Protocol.Submit spec ->
      if Atomic.get t.drain then Protocol.Error_resp "daemon is draining"
      else if Ace_workloads.Specjvm.find spec.Protocol.workload = None then
        Protocol.Error_resp
          (Printf.sprintf "unknown benchmark %S" spec.Protocol.workload)
      else if t.degraded || Queue.length t.queue >= t.cfg.queue_max then begin
        (* Degraded counts as overloaded: the durable-before-acknowledged
           contract cannot be kept when the spool will not take writes,
           so admission pauses with the same explicit backpressure. *)
        t.stats.rejected <- t.stats.rejected + 1;
        Obs.incr t.obs t.c_rejected;
        Protocol.Overloaded
      end
      else begin
        let id = t.next_id in
        (* Durable before acknowledged: once the client sees [Accepted],
           a crash cannot lose the job.  [next_id] advances only on a
           successful spec write, so a rejected submit burns no id. *)
        match Spool.write_spec ~io:t.cfg.io ~dir:t.cfg.spool_dir id spec with
        | exception Io.Io_error { op; path; err } ->
            io_fault t ~op ~path;
            if err = Io.Enospc then enter_degraded t;
            t.stats.rejected <- t.stats.rejected + 1;
            Obs.incr t.obs t.c_rejected;
            Protocol.Overloaded
        | () ->
            t.next_id <- id + 1;
            ignore (enqueue t ~id ~spec ~state:Queued);
            t.stats.submitted <- t.stats.submitted + 1;
            Obs.incr t.obs t.c_submitted;
            job_event t id "queued";
            log t "job %d accepted (%s/%s seed %d)" id spec.Protocol.workload
              (Ace_harness.Scheme.name spec.Protocol.scheme)
              spec.Protocol.seed;
            Protocol.Accepted id
      end

let handle_conn t conn =
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      let response =
        match Protocol.decode_request (Protocol.read_frame conn) with
        | req -> handle_request t req
        | exception Protocol.Protocol_error msg -> Protocol.Error_resp msg
      in
      match Protocol.write_frame conn (Protocol.encode_response response) with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) ->
          (* Client went away mid-response; nothing to do. *)
          ())

let write_text_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let write_exports t =
  (match t.cfg.trace with
  | Some path ->
      let s =
        if Filename.check_suffix path ".csv" then Export.csv t.obs
        else Export.chrome t.obs
      in
      write_text_file path s
  | None -> ());
  match t.cfg.metrics with
  | Some path -> write_text_file path (Export.metrics_csv t.obs)
  | None -> ()

let rec serve_loop t listen_fd =
  List.iter (process_msg t) (drain_mailbox t.mb);
  probe_storage t;
  dispatch t;
  update_gauges t;
  if Atomic.get t.drain && t.running = 0 then ()
  else begin
    (match Unix.select [ listen_fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept listen_fd with
        | conn, _ -> handle_conn t conn
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    serve_loop t listen_fd
  end

let obs_of_config cfg =
  let level = if cfg.trace <> None then Obs.Full else cfg.obs_level in
  if level = Obs.Off && cfg.metrics = None then Obs.null else Obs.create level

let run cfg =
  if cfg.workers <= 0 then invalid_arg "Daemon.run: workers must be positive";
  if cfg.queue_max <= 0 then invalid_arg "Daemon.run: queue_max must be positive";
  if cfg.checkpoint_every <= 0 then
    invalid_arg "Daemon.run: checkpoint_every must be positive";
  Spool.ensure_dir ~io:cfg.io cfg.spool_dir;
  let obs = obs_of_config cfg in
  let started_at = Unix.gettimeofday () in
  Obs.set_clock obs (fun () ->
      int_of_float ((Unix.gettimeofday () -. started_at) *. 1000.0));
  let t =
    {
      cfg;
      obs;
      jobs = Hashtbl.create 64;
      queue = Queue.create ();
      running = 0;
      next_id = 1;
      stats =
        {
          submitted = 0;
          rejected = 0;
          completed = 0;
          failed = 0;
          retries = 0;
          resumes = 0;
          requeued = 0;
          io_faults = 0;
        };
      drain = Atomic.make false;
      chaos = Atomic.make 0;
      mb = { mb_mutex = Mutex.create (); mb_q = Queue.create () };
      pool = Pool.create ~num_domains:cfg.workers ();
      degraded = false;
      deferred = Queue.create ();
      c_submitted = Obs.counter obs "serve.submitted";
      c_rejected = Obs.counter obs "serve.rejected_overloaded";
      c_completed = Obs.counter obs "serve.completed";
      c_failed = Obs.counter obs "serve.failed";
      c_retries = Obs.counter obs "serve.retries";
      c_resumes = Obs.counter obs "serve.resumes";
      c_requeued = Obs.counter obs "serve.requeued";
      c_io_fault = Obs.counter obs "serve.io_fault";
      c_degraded = Obs.counter obs "serve.degraded";
      g_queue_depth = Obs.gauge obs "serve.queue_depth";
      g_running = Obs.gauge obs "serve.running";
      h_latency =
        Obs.histogram obs "serve.job_latency_s"
          ~bounds:[| 0.1; 0.25; 0.5; 1.0; 2.0; 5.0; 10.0; 30.0; 60.0 |];
    }
  in
  (* Recover: every spec without a result/failed file is re-enqueued; a
     readable snapshot makes the worker resume instead of restart. *)
  let scanned = Spool.scan ~io:cfg.io ~dir:cfg.spool_dir () in
  t.next_id <- scanned.Spool.next_id;
  List.iter
    (fun (e : Spool.entry) ->
      (match e.Spool.snapshot_note with
      | Some note -> log t "job %d: %s" e.Spool.id note
      | None -> ());
      ignore (enqueue t ~id:e.Spool.id ~spec:e.Spool.spec ~state:Queued);
      t.stats.requeued <- t.stats.requeued + 1;
      Obs.incr t.obs t.c_requeued;
      job_event t e.Spool.id "queued";
      log t "job %d recovered from spool" e.Spool.id)
    scanned.Spool.pending;
  List.iter
    (fun id ->
      match Spool.read_result ~io:cfg.io ~dir:cfg.spool_dir id with
      | Some _ ->
          ignore
            (enqueue t ~id
               ~spec:(Protocol.job_spec ~workload:"?" Ace_harness.Scheme.Hotspot)
               ~state:Done)
      | None -> ())
    scanned.Spool.done_ids;
  List.iter
    (fun id ->
      let reason =
        Option.value ~default:""
          (Spool.read_failed ~io:cfg.io ~dir:cfg.spool_dir id)
      in
      ignore
        (enqueue t ~id
           ~spec:(Protocol.job_spec ~workload:"?" Ace_harness.Scheme.Hotspot)
           ~state:(Failed reason)))
    scanned.Spool.failed_ids;
  (* Signals: SIGTERM/SIGINT request a drain; SIGPIPE must not kill the
     daemon when a client disconnects mid-response. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let request_drain _ = Atomic.set t.drain true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_drain);
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Sys.remove cfg.socket_path with Sys_error _ -> ());
      Pool.shutdown t.pool)
    (fun () ->
      Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen listen_fd 16;
      Printf.printf "ace_serve: listening on %s (spool %s, %d workers)\n%!"
        cfg.socket_path cfg.spool_dir cfg.workers;
      serve_loop t listen_fd;
      write_exports t;
      let interrupted =
        Hashtbl.fold
          (fun _ j acc -> if j.state = Interrupted then acc + 1 else acc)
          t.jobs 0
      in
      Printf.printf
        "ace_serve: drained (%d completed, %d failed, %d interrupted)\n%!"
        t.stats.completed t.stats.failed interrupted)
