exception Client_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Client_error s)) fmt

let request ~socket req =
  let fd =
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) ->
        fail "cannot create socket: %s" (Unix.error_message e)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> ()
      | exception Unix.Unix_error (e, _, _) ->
          fail "cannot connect to %s: %s" socket (Unix.error_message e));
      match
        Protocol.write_frame fd (Protocol.encode_request req);
        Protocol.decode_response (Protocol.read_frame fd)
      with
      | resp -> resp
      | exception Protocol.Protocol_error msg -> fail "protocol error: %s" msg
      | exception Unix.Unix_error (e, _, _) ->
          fail "i/o error talking to %s: %s" socket (Unix.error_message e))

let submit ~socket spec = request ~socket (Protocol.Submit spec)
let status ~socket = request ~socket Protocol.Status
let result ~socket id = request ~socket (Protocol.Result id)
let stop ~socket = request ~socket Protocol.Stop

let wait ~socket ?(poll_interval = 0.1) ?(timeout = 120.0) id =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if Unix.gettimeofday () > deadline then `Timeout
    else
      match result ~socket id with
      | Protocol.Result_ok { state = "done"; output = Some out; _ } -> `Done out
      | Protocol.Result_ok { state = "failed"; output; _ } ->
          `Failed (Option.value ~default:"(no failure message)" output)
      | Protocol.Result_ok _ | Protocol.Error_resp _ ->
          (* Still pending — or the daemon restarted and has not rescanned
             this id yet; either way, keep polling. *)
          Unix.sleepf poll_interval;
          go ()
      | _ ->
          Unix.sleepf poll_interval;
          go ()
      | exception Client_error _ ->
          (* Daemon down (possibly being restarted): ride it out. *)
          Unix.sleepf poll_interval;
          go ()
  in
  go ()
