(** Wire protocol of the [ace_serve] daemon.

    Transport: a Unix-domain stream socket carrying one request frame and
    one response frame per connection.  A frame is a 4-byte little-endian
    payload length followed by that many bytes of compact JSON; frames
    longer than {!max_frame} are refused on both sides, so a corrupt or
    hostile length prefix can never make the daemon allocate unboundedly.

    Every codec failure is a {!Protocol_error} (never a raw parser
    exception), and decoding validates shape strictly — unknown request
    kinds, missing fields and out-of-range values are all refused. *)

type job_spec = {
  workload : string;  (** SPECjvm98 registry name. *)
  scheme : Ace_harness.Scheme.t;
  scale : float;
  seed : int;
  fault_rate : float option;  (** Attach a fault injector at this rate. *)
  resilient : bool;  (** Resilient tuner policy (hotspot scheme). *)
  sample : bool;
      (** Run under phase-memoized fast-forwarding
          ({!Ace_sample.Sample.default_config}).  Combined with
          [fault_rate] it requires [resilient] — the decoder refuses the
          combination otherwise. *)
  deadline_s : float option;
      (** Wall-clock budget per job; exceeded jobs fail without retry. *)
  fail_after : int option;
      (** Test hook: poison the job so every attempt raises at the first
          checkpoint boundary at or past this instruction count. *)
}

val job_spec :
  ?fault_rate:float ->
  ?resilient:bool ->
  ?sample:bool ->
  ?deadline_s:float ->
  ?fail_after:int ->
  ?scale:float ->
  ?seed:int ->
  workload:string ->
  Ace_harness.Scheme.t ->
  job_spec
(** Spec with the CLI's defaults: scale 1.0, seed 1, no faults, no
    sampling, no deadline. *)

type job_info = { id : int; state : string }
(** One row of the status report; [state] is one of "queued", "running",
    "done", "failed", "interrupted". *)

type status_report = {
  queue_depth : int;
  running : int;
  draining : bool;
  degraded : bool;
      (** Spool writes are failing with [ENOSPC]: job admission is paused
          (submits get {!Overloaded}) until a storage probe succeeds.
          Decoding a report from an older daemon defaults to [false]. *)
  counters : (string * int) list;  (** Sorted by name. *)
  jobs : job_info list;  (** Sorted by id. *)
}

type request =
  | Submit of job_spec
  | Status
  | Result of int  (** Fetch the state (and output, if done) of one job. *)
  | Stop  (** Graceful drain: finish/snapshot running jobs, then exit. *)

type response =
  | Accepted of int  (** Submit succeeded; payload is the job id. *)
  | Overloaded
      (** The queue is at its high-water mark, or the daemon is storage
          [degraded]; the client must back off.  Explicit backpressure —
          the daemon never blocks a submitter. *)
  | Status_ok of status_report
  | Result_ok of { id : int; state : string; output : string option }
      (** [output] is the run's rendered summary once "done", the failure
          message once "failed", [None] otherwise. *)
  | Stopping
  | Error_resp of string  (** Malformed or unserviceable request. *)

exception Protocol_error of string
(** Raised by the decoders and framing on any malformed input. *)

val json_of_spec : job_spec -> Json.t
val spec_of_json : Json.t -> job_spec
(** The spool stores each job's spec as this JSON object; round-trips
    exactly ([decode (encode s) = s]). *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

(** {2 Framing} *)

val max_frame : int
(** 1 MiB. *)

val write_frame : Unix.file_descr -> string -> unit
(** @raise Protocol_error if the payload exceeds {!max_frame}. *)

val read_frame : Unix.file_descr -> string
(** Read one complete frame.
    @raise Protocol_error on EOF mid-frame or an oversized declared
    length. *)
