module Scheme = Ace_harness.Scheme

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

type job_spec = {
  workload : string;
  scheme : Scheme.t;
  scale : float;
  seed : int;
  fault_rate : float option;
  resilient : bool;
  sample : bool;
  deadline_s : float option;
  fail_after : int option;
}

let job_spec ?fault_rate ?(resilient = false) ?(sample = false) ?deadline_s
    ?fail_after ?(scale = 1.0) ?(seed = 1) ~workload scheme =
  {
    workload;
    scheme;
    scale;
    seed;
    fault_rate;
    resilient;
    sample;
    deadline_s;
    fail_after;
  }

type job_info = { id : int; state : string }

type status_report = {
  queue_depth : int;
  running : int;
  draining : bool;
  degraded : bool;
  counters : (string * int) list;
  jobs : job_info list;
}

type request = Submit of job_spec | Status | Result of int | Stop

type response =
  | Accepted of int
  | Overloaded
  | Status_ok of status_report
  | Result_ok of { id : int; state : string; output : string option }
  | Stopping
  | Error_resp of string

(* -- JSON mapping --------------------------------------------------- *)

let get what conv j =
  match conv j with Some v -> v | None -> fail "bad %s field" what

let field what conv obj =
  match Json.member what obj with
  | Some j -> get what conv j
  | None -> fail "missing %s field" what

let opt_field what conv obj =
  match Json.member what obj with
  | None | Some Json.Null -> None
  | Some j -> Some (get what conv j)

let json_of_opt f = function None -> Json.Null | Some v -> f v

let json_of_spec (s : job_spec) =
  Json.Obj
    [
      ("workload", Json.Str s.workload);
      ("scheme", Json.Str (Scheme.name s.scheme));
      ("scale", Json.Float s.scale);
      ("seed", Json.Int s.seed);
      ("fault_rate", json_of_opt (fun r -> Json.Float r) s.fault_rate);
      ("resilient", Json.Bool s.resilient);
      ("sample", Json.Bool s.sample);
      ("deadline_s", json_of_opt (fun d -> Json.Float d) s.deadline_s);
      ("fail_after", json_of_opt (fun n -> Json.Int n) s.fail_after);
    ]

let spec_of_json j =
  let workload = field "workload" Json.to_str j in
  let scheme_name = field "scheme" Json.to_str j in
  let scheme =
    match Scheme.of_string scheme_name with
    | Some s -> s
    | None -> fail "unknown scheme %S" scheme_name
  in
  let scale = field "scale" Json.to_float j in
  if not (Float.is_finite scale && scale > 0.0) then
    fail "scale %g out of range" scale;
  let seed = field "seed" Json.to_int j in
  let fault_rate = opt_field "fault_rate" Json.to_float j in
  (match fault_rate with
  | Some r when not (r >= 0.0 && r <= 1.0) -> fail "fault_rate %g out of range" r
  | _ -> ());
  let resilient = field "resilient" Json.to_bool j in
  (* Lenient: specs spooled by a pre-sampling daemon simply run unsampled. *)
  let sample =
    Option.value ~default:false (opt_field "sample" Json.to_bool j)
  in
  if sample && fault_rate <> None && not resilient then
    fail "sample with fault_rate requires resilient";
  let deadline_s = opt_field "deadline_s" Json.to_float j in
  (match deadline_s with
  | Some d when not (d > 0.0) -> fail "deadline_s %g out of range" d
  | _ -> ());
  let fail_after = opt_field "fail_after" Json.to_int j in
  (match fail_after with
  | Some n when n <= 0 -> fail "fail_after %d out of range" n
  | _ -> ());
  {
    workload;
    scheme;
    scale;
    seed;
    fault_rate;
    resilient;
    sample;
    deadline_s;
    fail_after;
  }

let json_of_report (r : status_report) =
  Json.Obj
    [
      ("queue_depth", Json.Int r.queue_depth);
      ("running", Json.Int r.running);
      ("draining", Json.Bool r.draining);
      ("degraded", Json.Bool r.degraded);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters) );
      ( "jobs",
        Json.List
          (List.map
             (fun (ji : job_info) ->
               Json.Obj
                 [ ("id", Json.Int ji.id); ("state", Json.Str ji.state) ])
             r.jobs) );
    ]

let report_of_json j =
  let queue_depth = field "queue_depth" Json.to_int j in
  let running = field "running" Json.to_int j in
  let draining = field "draining" Json.to_bool j in
  (* Lenient: reports from a pre-degraded-mode daemon simply read healthy. *)
  let degraded =
    Option.value ~default:false (opt_field "degraded" Json.to_bool j)
  in
  let counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
        List.map (fun (k, v) -> (k, get "counter" Json.to_int v)) fields
    | _ -> fail "missing counters field"
  in
  let jobs =
    List.map
      (fun ji ->
        { id = field "id" Json.to_int ji; state = field "state" Json.to_str ji })
      (field "jobs" Json.to_list j)
  in
  { queue_depth; running; draining; degraded; counters; jobs }

let tagged tag fields = Json.Obj (("type", Json.Str tag) :: fields)

let json_of_request = function
  | Submit spec -> tagged "submit" [ ("spec", json_of_spec spec) ]
  | Status -> tagged "status" []
  | Result id -> tagged "result" [ ("id", Json.Int id) ]
  | Stop -> tagged "stop" []

let json_of_response = function
  | Accepted id -> tagged "accepted" [ ("id", Json.Int id) ]
  | Overloaded -> tagged "overloaded" []
  | Status_ok r -> tagged "status" [ ("report", json_of_report r) ]
  | Result_ok { id; state; output } ->
      tagged "result"
        [
          ("id", Json.Int id);
          ("state", Json.Str state);
          ("output", json_of_opt (fun s -> Json.Str s) output);
        ]
  | Stopping -> tagged "stopping" []
  | Error_resp msg -> tagged "error" [ ("message", Json.Str msg) ]

let parse what s =
  match Json.of_string s with
  | j -> (j, field "type" Json.to_str j)
  | exception Json.Parse_error msg -> fail "malformed %s: %s" what msg

let decode_request s =
  let j, tag = parse "request" s in
  match tag with
  | "submit" -> (
      match Json.member "spec" j with
      | Some spec -> Submit (spec_of_json spec)
      | None -> fail "missing spec field")
  | "status" -> Status
  | "result" -> Result (field "id" Json.to_int j)
  | "stop" -> Stop
  | t -> fail "unknown request type %S" t

let decode_response s =
  let j, tag = parse "response" s in
  match tag with
  | "accepted" -> Accepted (field "id" Json.to_int j)
  | "overloaded" -> Overloaded
  | "status" -> (
      match Json.member "report" j with
      | Some r -> Status_ok (report_of_json r)
      | None -> fail "missing report field")
  | "result" ->
      Result_ok
        {
          id = field "id" Json.to_int j;
          state = field "state" Json.to_str j;
          output = opt_field "output" Json.to_str j;
        }
  | "stopping" -> Stopping
  | "error" -> Error_resp (field "message" Json.to_str j)
  | t -> fail "unknown response type %S" t

let encode_request r = Json.to_string (json_of_request r)
let encode_response r = Json.to_string (json_of_response r)

(* -- framing -------------------------------------------------------- *)

let max_frame = 1 lsl 20

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then fail "frame of %d bytes exceeds max %d" len max_frame;
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_le buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

let read_exact fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let k = Unix.read fd buf !off (n - !off) in
    if k = 0 then fail "connection closed mid-frame (%d of %d bytes)" !off n;
    off := !off + k
  done;
  Bytes.unsafe_to_string buf

let read_frame fd =
  let header = read_exact fd 4 in
  let len = Int32.to_int (String.get_int32_le header 0) in
  if len < 0 || len > max_frame then
    fail "declared frame length %d exceeds max %d" len max_frame;
  read_exact fd len
