module Io = Ace_util.Io
module Mem = Ace_util.Io.Mem
module Table = Ace_util.Table
module Run = Ace_harness.Run
module Render = Ace_harness.Render
module Scheme = Ace_harness.Scheme

(* Crash-point enumeration: record every mutating filesystem operation a
   durable workflow performs, then re-run it once per (operation, crash
   mode) pair with a backend that kills the "process" exactly there, run
   the real recovery path, and assert the durability invariants.  Unlike
   the chaos kill tests (which sample random kill points), this visits
   every write/fsync/rename boundary — nothing is left to luck. *)

type tally = {
  scenario : string;
  seed : int;
  mutable points : int;
  mutable torn : int;
  mutable primary : int;  (** Recoveries that resumed the newest snapshot. *)
  mutable fallback : int;  (** Recoveries that fell back to the rotation. *)
  mutable scratch : int;  (** Recoveries that restarted from nothing. *)
  mutable absent : int;
      (** Spool crash points before the job was acknowledged: the job is
          legitimately gone (the client never saw [Accepted]). *)
  mutable violations : string list;
}

let default_workload = "jess"
let default_scale = 0.05
let default_checkpoint_every = 2_000_000

let new_tally scenario seed =
  {
    scenario;
    seed;
    points = 0;
    torn = 0;
    primary = 0;
    fallback = 0;
    scratch = 0;
    absent = 0;
    violations = [];
  }

let violation t fmt =
  Printf.ksprintf
    (fun msg ->
      t.violations <-
        Printf.sprintf "%s seed %d: %s" t.scenario t.seed msg :: t.violations)
    fmt

(* Every op index under both crash modes; a crash landing on a write also
   gets the torn variant (half the data reaches the disk first).  Torn
   only composes with [`Keep]: under [`Drop] the un-synced torn prefix
   vanishes anyway, collapsing into the plain case. *)
let crash_plans ops =
  List.concat
    (List.mapi
       (fun k (op : Io.op) ->
         (k, `Drop, false) :: (k, `Keep, false)
         ::
         (if op.Io.op_kind = Io.Op_write then [ (k, `Keep, true) ] else []))
       (Array.to_list ops))

let describe_point ops k mode torn =
  let op = ops.(k) in
  Printf.sprintf "crash at op %d (%s %s, %s%s)" k
    (Io.op_kind_name op.Io.op_kind)
    op.Io.op_path
    (match mode with `Drop -> "drop" | `Keep -> "keep")
    (if torn then ", torn" else "")

(* -- scenario A: the snapshot chain --------------------------------- *)

let snapshot_scenario ~scale ~checkpoint_every ~seed ~workload ~gold w =
  ignore workload;
  let t = new_tally "snapshot" seed in
  let path = "/snaps/job.snap" in
  let run io =
    Run.run_checkpointed ~io ~scale ~seed ~checkpoint_every ~path w
      Scheme.Hotspot
  in
  let rio, ops = Io.recording (Mem.io (Mem.create ())) in
  (match run rio with
  | Run.Completed _ -> ()
  | Run.Killed_at _ -> assert false);
  let ops = ops () in
  List.iter
    (fun (k, mode, torn) ->
      t.points <- t.points + 1;
      if torn then t.torn <- t.torn + 1;
      let where = describe_point ops k mode torn in
      let fs = Mem.create () in
      (match run (Io.crash_at ~at:k ~torn (Mem.io fs)) with
      | exception Io.Crashed -> ()
      | _ -> violation t "%s: run finished without crashing" where);
      Mem.crash mode fs;
      let io = Mem.io fs in
      match
        let output =
          match Run.resume_run ~io ~path () with
          | Some (Run.Completed r, `Primary) ->
              t.primary <- t.primary + 1;
              Render.run_output r
          | Some (Run.Completed r, `Fallback) ->
              t.fallback <- t.fallback + 1;
              Render.run_output r
          | Some (Run.Killed_at _, _) -> assert false
          | None -> (
              (* Neither generation survived — legal only near the very
                 first capture, before a full snapshot ever landed. *)
              t.scratch <- t.scratch + 1;
              match run io with
              | Run.Completed r -> Render.run_output r
              | Run.Killed_at _ -> assert false)
        in
        output
      with
      | output ->
          if output <> gold then
            violation t "%s: recovered output differs from uninterrupted run"
              where
      | exception e ->
          violation t "%s: recovery raised %s" where (Printexc.to_string e))
    (crash_plans ops);
  (* The whole reason the rotation exists: a scratch restart must be the
     rare case, not the common one. *)
  if t.primary + t.fallback = 0 then
    violation t "no crash point ever resumed from a snapshot";
  t

(* -- scenario B: the spool job lifecycle ---------------------------- *)

let lifecycle ~io ~dir ~scale ~checkpoint_every ~seed ~workload w =
  Spool.ensure_dir ~io dir;
  let spec = Protocol.job_spec ~scale ~seed ~workload Scheme.Hotspot in
  Spool.write_spec ~io ~dir 1 spec;
  let path = Spool.snap_path ~dir 1 in
  (match
     Run.run_checkpointed ~io ~scale ~seed ~checkpoint_every ~path w
       Scheme.Hotspot
   with
  | Run.Completed r -> Spool.write_result ~io ~dir 1 (Render.run_output r)
  | Run.Killed_at _ -> assert false);
  Spool.clear_snapshots ~io ~dir 1

let spool_scenario ~scale ~checkpoint_every ~seed ~workload ~gold w =
  let t = new_tally "spool" seed in
  let dir = "/spool" in
  let run io = lifecycle ~io ~dir ~scale ~checkpoint_every ~seed ~workload w in
  let rio, ops = Io.recording (Mem.io (Mem.create ())) in
  run rio;
  let ops = ops () in
  (* The job exists, durably, the moment its spec file is renamed into
     place — that rename is what Submit's [Accepted] reply stands on. *)
  let ack =
    let found = ref (-1) in
    Array.iteri
      (fun i (op : Io.op) ->
        if
          !found < 0
          && op.Io.op_kind = Io.Op_rename
          && op.Io.op_path = Spool.spec_path ~dir 1
        then found := i)
      ops;
    assert (!found >= 0);
    !found
  in
  let finish_pending t io where =
    (* What a restarted daemon's worker does with a recovered pending job:
       resume from its snapshot chain if any generation is intact,
       restart it from the spec otherwise, then settle. *)
    let path = Spool.snap_path ~dir 1 in
    let output =
      match Run.resume_run ~io ~path () with
      | Some (Run.Completed r, `Primary) ->
          t.primary <- t.primary + 1;
          Render.run_output r
      | Some (Run.Completed r, `Fallback) ->
          t.fallback <- t.fallback + 1;
          Render.run_output r
      | Some (Run.Killed_at _, _) -> assert false
      | None -> (
          t.scratch <- t.scratch + 1;
          match
            Run.run_checkpointed ~io ~scale ~seed ~checkpoint_every ~path w
              Scheme.Hotspot
          with
          | Run.Completed r -> Render.run_output r
          | Run.Killed_at _ -> assert false)
    in
    Spool.write_result ~io ~dir 1 output;
    Spool.clear_snapshots ~io ~dir 1;
    let rescan = Spool.scan ~io ~dir () in
    if rescan.Spool.done_ids <> [ 1 ] || rescan.Spool.pending <> [] then
      violation t "%s: job not settled after recovery" where;
    output
  in
  List.iter
    (fun (k, mode, torn) ->
      t.points <- t.points + 1;
      if torn then t.torn <- t.torn + 1;
      let where = describe_point ops k mode torn in
      let fs = Mem.create () in
      (match run (Io.crash_at ~at:k ~torn (Mem.io fs)) with
      | exception Io.Crashed -> ()
      | _ -> violation t "%s: lifecycle finished without crashing" where);
      Mem.crash mode fs;
      let io = Mem.io fs in
      match
        (* A restarted daemon's recovery: remake the directory, scan. *)
        Spool.ensure_dir ~io dir;
        Spool.scan ~io ~dir ()
      with
      | exception e ->
          violation t "%s: scan raised %s" where (Printexc.to_string e)
      | scan -> (
          let in_pending =
            List.exists (fun (e : Spool.entry) -> e.Spool.id = 1) scan.pending
          in
          let in_done = scan.Spool.done_ids = [ 1 ] in
          if scan.Spool.failed_ids <> [] then
            violation t "%s: job spuriously quarantined" where;
          if in_pending && in_done then
            violation t "%s: job duplicated (pending and done)" where;
          match (in_done, in_pending) with
          | true, _ -> (
              (* Settled before the crash: the published result must be
                 the complete, uncorrupted output. *)
              match Spool.read_result ~io ~dir 1 with
              | Some output when output = gold -> ()
              | Some _ -> violation t "%s: settled result corrupted" where
              | None -> violation t "%s: result file unreadable" where)
          | false, true -> (
              match finish_pending t io where with
              | output ->
                  if output <> gold then
                    violation t
                      "%s: recovered output differs from uninterrupted run"
                      where
              | exception e ->
                  violation t "%s: recovery raised %s" where
                    (Printexc.to_string e))
          | false, false ->
              (* Lost — legal only before the acknowledgement point. *)
              if k > ack then violation t "%s: acknowledged job lost" where
              else t.absent <- t.absent + 1))
    (crash_plans ops);
  t

(* -- driver ---------------------------------------------------------- *)

let run_matrix ?(workload = default_workload) ?(scale = default_scale)
    ?(checkpoint_every = default_checkpoint_every) ~seeds () =
  let w =
    match Ace_workloads.Specjvm.find workload with
    | Some w -> w
    | None -> invalid_arg (Printf.sprintf "Torture.run_matrix: %S" workload)
  in
  List.concat_map
    (fun seed ->
      let gold = Render.run_output (Run.run ~scale ~seed w Scheme.Hotspot) in
      [
        snapshot_scenario ~scale ~checkpoint_every ~seed ~workload ~gold w;
        spool_scenario ~scale ~checkpoint_every ~seed ~workload ~gold w;
      ])
    seeds

let total_points ts = List.fold_left (fun a t -> a + t.points) 0 ts
let total_violations ts =
  List.fold_left (fun a t -> a + List.length t.violations) 0 ts

let render ts =
  let tbl =
    Table.create
      ~columns:
        [
          ("scenario", Table.Left);
          ("seed", Table.Right);
          ("points", Table.Right);
          ("torn", Table.Right);
          ("primary", Table.Right);
          ("fallback", Table.Right);
          ("scratch", Table.Right);
          ("absent", Table.Right);
          ("violations", Table.Right);
        ]
  in
  List.iter
    (fun t ->
      Table.add_row tbl
        [
          t.scenario;
          string_of_int t.seed;
          string_of_int t.points;
          string_of_int t.torn;
          string_of_int t.primary;
          string_of_int t.fallback;
          string_of_int t.scratch;
          string_of_int t.absent;
          string_of_int (List.length t.violations);
        ])
    ts;
  Table.add_separator tbl;
  Table.add_row tbl
    [
      "total";
      "";
      string_of_int (total_points ts);
      string_of_int (List.fold_left (fun a t -> a + t.torn) 0 ts);
      string_of_int (List.fold_left (fun a t -> a + t.primary) 0 ts);
      string_of_int (List.fold_left (fun a t -> a + t.fallback) 0 ts);
      string_of_int (List.fold_left (fun a t -> a + t.scratch) 0 ts);
      string_of_int (List.fold_left (fun a t -> a + t.absent) 0 ts);
      string_of_int (total_violations ts);
    ];
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render tbl);
  List.iter
    (fun t ->
      List.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "VIOLATION: %s\n" v))
        (List.rev t.violations))
    ts;
  Buffer.add_string buf
    (Printf.sprintf "torture: %d crash points, %d violations\n"
       (total_points ts) (total_violations ts));
  Buffer.contents buf
