module Io = Ace_util.Io
module Scratch = Ace_util.Scratch
module Snapshot = Ace_ckpt.Snapshot

type entry = { id : int; spec : Protocol.job_spec; snapshot_note : string option }

type scan_result = {
  next_id : int;
  pending : entry list;
  done_ids : int list;
  failed_ids : int list;
}

let job_file ~dir id ext = Filename.concat dir (Printf.sprintf "job-%06d.%s" id ext)
let spec_path ~dir id = job_file ~dir id "spec"
let snap_path ~dir id = job_file ~dir id "snap"
let result_path ~dir id = job_file ~dir id "result"
let failed_path ~dir id = job_file ~dir id "failed"

let ensure_dir ?(io = Io.real) dir =
  let rec mk d =
    if d <> "/" && d <> "." && not (Io.exists io d) then begin
      mk (Filename.dirname d);
      try Io.mkdir io d
      with Io.Io_error { err = Eexist; _ } -> ()
    end
  in
  mk dir

let write_atomic io path data =
  let tmp = path ^ ".tmp" in
  Io.write_file io tmp data;
  (* Durable before published: without the fsync, a post-crash directory
     can hold a correctly-named file whose bytes never hit the platter. *)
  Io.fsync io tmp;
  Io.rename io tmp path

let read_file io path =
  if not (Io.exists io path) then None else Some (Io.read_file io path)

let write_spec ?(io = Io.real) ~dir id spec =
  write_atomic io (spec_path ~dir id)
    (Json.to_string (Protocol.json_of_spec spec))

let write_result ?(io = Io.real) ~dir id output =
  write_atomic io (result_path ~dir id) output

let write_failed ?(io = Io.real) ~dir id msg =
  write_atomic io (failed_path ~dir id) msg

let read_result ?(io = Io.real) ~dir id = read_file io (result_path ~dir id)
let read_failed ?(io = Io.real) ~dir id = read_file io (failed_path ~dir id)

let clear_snapshots ?(io = Io.real) ~dir id =
  Scratch.remove_existing ~io (Scratch.snapshot_family (snap_path ~dir id))

(* The typed snapshot errors let the supervisor distinguish "killed
   mid-write, fall back" (Truncated — routine under chaos) from anything
   that deserves a louder note. *)
let snapshot_note io ~dir id =
  let path = snap_path ~dir id in
  if not (Io.exists io path) then None
  else
    match Snapshot.read ~io ~path () with
    | (_ : Snapshot.t) -> None
    | exception Snapshot.Error e ->
        Some
          (Printf.sprintf "primary snapshot unusable (%s)"
             (Snapshot.error_to_string e))

let scan ?(io = Io.real) ~dir () =
  (* Sorted before parsing: readdir order is filesystem-defined (inode
     hash order on ext4, insertion order on tmpfs), and replay decisions
     must not depend on which filesystem hosts the spool. *)
  let names =
    let a = Io.readdir io dir in
    Array.sort compare a;
    a
  in
  let ids ext =
    Array.to_list names
    |> List.filter_map (fun name ->
           Scanf.sscanf_opt name "job-%06d.%s%!" (fun id e ->
               if e = ext then Some id else None))
    |> List.concat_map Option.to_list
  in
  let spec_ids = ids "spec" in
  let done_ids = ids "result" in
  let failed_ids = ids "failed" in
  let settled id = List.mem id done_ids || List.mem id failed_ids in
  let pending =
    List.filter_map
      (fun id ->
        if settled id then None
        else
          match read_file io (spec_path ~dir id) with
          | None -> None
          | Some data -> (
              match Protocol.spec_of_json (Json.of_string data) with
              | spec ->
                  Some { id; spec; snapshot_note = snapshot_note io ~dir id }
              | exception (Json.Parse_error _ | Protocol.Protocol_error _) ->
                  None))
      spec_ids
  in
  let next_id =
    1 + List.fold_left max 0 (spec_ids @ done_ids @ failed_ids)
  in
  { next_id; pending; done_ids; failed_ids }
