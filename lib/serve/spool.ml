module Scratch = Ace_util.Scratch
module Snapshot = Ace_ckpt.Snapshot

type entry = { id : int; spec : Protocol.job_spec; snapshot_note : string option }

type scan_result = {
  next_id : int;
  pending : entry list;
  done_ids : int list;
  failed_ids : int list;
}

let job_file ~dir id ext = Filename.concat dir (Printf.sprintf "job-%06d.%s" id ext)
let spec_path ~dir id = job_file ~dir id "spec"
let snap_path ~dir id = job_file ~dir id "snap"
let result_path ~dir id = job_file ~dir id "result"
let failed_path ~dir id = job_file ~dir id "failed"

let ensure_dir dir =
  let rec mk d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
    end
  in
  mk dir

let write_atomic path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data);
  Sys.rename tmp path

let read_file path =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    Some
      (Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic)))

let write_spec ~dir id spec =
  write_atomic (spec_path ~dir id) (Json.to_string (Protocol.json_of_spec spec))

let write_result ~dir id output = write_atomic (result_path ~dir id) output
let write_failed ~dir id msg = write_atomic (failed_path ~dir id) msg
let read_result ~dir id = read_file (result_path ~dir id)
let read_failed ~dir id = read_file (failed_path ~dir id)

let clear_snapshots ~dir id =
  Scratch.remove_existing (Scratch.snapshot_family (snap_path ~dir id))

(* The typed snapshot errors let the supervisor distinguish "killed
   mid-write, fall back" (Truncated — routine under chaos) from anything
   that deserves a louder note. *)
let snapshot_note ~dir id =
  let path = snap_path ~dir id in
  if not (Sys.file_exists path) then None
  else
    match Snapshot.read ~path with
    | (_ : Snapshot.t) -> None
    | exception Snapshot.Error e ->
        Some
          (Printf.sprintf "primary snapshot unusable (%s)"
             (Snapshot.error_to_string e))

let scan ~dir =
  let ids ext =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           Scanf.sscanf_opt name "job-%06d.%s%!" (fun id e ->
               if e = ext then Some id else None))
    |> List.concat_map Option.to_list
  in
  let spec_ids = List.sort compare (ids "spec") in
  let done_ids = List.sort compare (ids "result") in
  let failed_ids = List.sort compare (ids "failed") in
  let settled id = List.mem id done_ids || List.mem id failed_ids in
  let pending =
    List.filter_map
      (fun id ->
        if settled id then None
        else
          match read_file (spec_path ~dir id) with
          | None -> None
          | Some data -> (
              match Protocol.spec_of_json (Json.of_string data) with
              | spec -> Some { id; spec; snapshot_note = snapshot_note ~dir id }
              | exception (Json.Parse_error _ | Protocol.Protocol_error _) ->
                  None))
      spec_ids
  in
  let next_id =
    1 + List.fold_left max 0 (spec_ids @ done_ids @ failed_ids)
  in
  { next_id; pending; done_ids; failed_ids }
