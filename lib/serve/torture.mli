(** Crash-point enumeration for the durability stack.

    Two scenarios, both on the in-memory crash-simulating filesystem
    ({!Ace_util.Io.Mem}):

    - {e snapshot}: a checkpointed run's snapshot chain.  A recording
      pass lists every mutating filesystem operation; each (operation,
      crash-mode) pair then gets a fresh run crashed exactly there,
      followed by real recovery ([Run.resume_run] with its [.1]-rotation
      fallback, from-scratch restart when no generation survived).  The
      recovered output must be byte-identical to an uninterrupted run.
    - {e spool}: the full serve-job lifecycle (admit spec, checkpointed
      run, publish result, clear snapshots).  Recovery is a simulated
      daemon restart ([Spool.ensure_dir] + [Spool.scan] + resume/rerun +
      settle).  Invariants: a job acknowledged (spec renamed into place)
      is never lost, never duplicated, never spuriously quarantined, and
      its result is byte-identical to an uninterrupted run.

    Crash modes per point: [`Drop] (un-fsynced data lost), [`Keep]
    (everything flushed), plus a torn-write variant for crash points
    landing on a write.  Deterministic: seeds and operation order fully
    determine the matrix. *)

type tally = {
  scenario : string;  (** "snapshot" or "spool". *)
  seed : int;
  mutable points : int;  (** Crash points enumerated. *)
  mutable torn : int;  (** ...of which torn-write variants. *)
  mutable primary : int;  (** Recoveries resuming the newest snapshot. *)
  mutable fallback : int;  (** Recoveries falling back to the rotation. *)
  mutable scratch : int;  (** Recoveries restarting from nothing. *)
  mutable absent : int;
      (** Spool points where the crash predates acknowledgement and the
          job is legitimately gone. *)
  mutable violations : string list;  (** Empty on a clean matrix. *)
}

val run_matrix :
  ?workload:string ->
  ?scale:float ->
  ?checkpoint_every:int ->
  seeds:int list ->
  unit ->
  tally list
(** Run both scenarios for every seed (defaults: jess at scale 0.05,
    checkpointing every 2 M instructions — small enough that each crash
    point's rerun takes milliseconds, large enough that every run rotates
    snapshots).  Purely in-memory; touches no real files.
    @raise Invalid_argument on an unknown [workload]. *)

val total_points : tally list -> int
val total_violations : tally list -> int

val render : tally list -> string
(** Per-scenario table, one line per violation, and a final
    ["torture: N crash points, V violations"] summary line. *)
