(** On-disk job store of the serve daemon.

    Every accepted job lives in the spool directory as a small family of
    files keyed by id:

    - [job-NNNNNN.spec] — the JSON job spec, written atomically at accept
      time (this is the durable record that the job exists);
    - [job-NNNNNN.snap] — the run's checkpoint (plus the [.1]/[.tmp]
      companions [Ace_ckpt.Snapshot.write] manages);
    - [job-NNNNNN.result] — the rendered run output, written atomically on
      completion;
    - [job-NNNNNN.failed] — the failure message of a quarantined job.

    A restarted daemon recovers its whole state by {!scan}ning the
    directory: specs without a result/failed file are in-flight and are
    re-enqueued (resuming from the snapshot when one is readable), and ids
    continue from one past the highest ever used, so results never
    collide.

    All filesystem access goes through an injectable {!Ace_util.Io.t}
    (default {!Ace_util.Io.real}); the torture harness substitutes fault
    and crash-point backends.  Write errors surface as
    {!Ace_util.Io.Io_error} — callers (the daemon) decide whether that
    means retry, quarantine, or degraded mode. *)

type entry = {
  id : int;
  spec : Protocol.job_spec;
  snapshot_note : string option;
      (** [Some note] when a snapshot file exists but the primary is
          unusable (e.g. truncated by a crash mid-write) — the note says
          why, for the supervisor's log.  [None] when there is no snapshot
          or it is cleanly readable. *)
}

type scan_result = {
  next_id : int;
  pending : entry list;  (** In-flight jobs, sorted by id. *)
  done_ids : int list;
  failed_ids : int list;
}

val spec_path : dir:string -> int -> string
val snap_path : dir:string -> int -> string
val result_path : dir:string -> int -> string
val failed_path : dir:string -> int -> string

val ensure_dir : ?io:Ace_util.Io.t -> string -> unit
(** Create the spool directory (and its parent) if missing. *)

val write_spec : ?io:Ace_util.Io.t -> dir:string -> int -> Protocol.job_spec -> unit
(** Atomic and durable (tmp + fsync + rename), so a crash can never leave
    a half-written spec that a restart would refuse to parse. *)

val write_result : ?io:Ace_util.Io.t -> dir:string -> int -> string -> unit
val write_failed : ?io:Ace_util.Io.t -> dir:string -> int -> string -> unit
val read_result : ?io:Ace_util.Io.t -> dir:string -> int -> string option
val read_failed : ?io:Ace_util.Io.t -> dir:string -> int -> string option

val clear_snapshots : ?io:Ace_util.Io.t -> dir:string -> int -> unit
(** Remove the job's snapshot family (kept spec/result files stay). *)

val scan : ?io:Ace_util.Io.t -> dir:string -> unit -> scan_result
(** Directory entries are sorted before replay, so recovery order is
    deterministic no matter what order the filesystem returns them in.
    Unparseable spec files are skipped (a crash between [open] and [rename]
    cannot produce one, so they indicate operator tampering); their ids
    still count toward [next_id]. *)
