(** The [ace_serve] daemon: crash-safe tuning-as-a-service.

    One process owns a Unix-domain socket and a spool directory.  Requests
    ({!Protocol.request}) arrive one per connection; accepted jobs are
    persisted to the spool, queued up to [queue_max] (beyond which submits
    get an explicit [Overloaded] — backpressure, never blocking), and
    sharded across [workers] pool domains.  Every job runs checkpointed, so
    the supervisor can be SIGKILLed at any moment and a restarted daemon
    {!Spool.scan}s the spool and resumes in-flight jobs bit-identically —
    a daemon job's result is byte-for-byte the output of the equivalent
    batch [ace_sim run].

    Failure containment per job: transient exceptions are retried with
    exponential backoff (0.25 s doubling, up to 3 attempts, resuming from
    the latest snapshot); a job that exceeds its wall-clock deadline fails
    immediately without retry; a poisoned job (every attempt raises) is
    quarantined as "failed" while the daemon and its other jobs carry on.

    On SIGTERM/SIGINT or a [Stop] request the daemon drains: it stops
    accepting submissions, lets running jobs either finish or snapshot at
    their next checkpoint boundary (state "interrupted", resumed by the
    next daemon), exports any requested trace/metrics files, and exits. *)

type config = {
  socket_path : string;
  spool_dir : string;
  workers : int;  (** Pool domains running jobs (>= 1). *)
  queue_max : int;  (** Queue high-water mark (>= 1). *)
  checkpoint_every : int;  (** Snapshot cadence in instructions. *)
  kill_after : int option;
      (** Chaos hook: [Unix._exit 3] (no cleanup, like SIGKILL) at the
          first checkpoint boundary once this many instructions have been
          executed across all jobs in this daemon life.  The boundary's
          snapshot is written before the check, so every life makes
          resumable progress and a kill/restart loop always terminates. *)
  obs_level : Ace_obs.Obs.level;
  trace : string option;  (** Timeline export path, written at drain. *)
  metrics : string option;  (** Metrics CSV path, written at drain. *)
  verbose : bool;  (** Log job transitions to stderr. *)
  io : Ace_util.Io.t;
      (** Backend for all spool and snapshot filesystem traffic (default
          {!Ace_util.Io.real}); fault backends drive the daemon's
          degraded-mode and torture tests.  Storage failures during a job
          are retried like any other failure; a persistent [ENOSPC] flips
          the daemon into {e degraded} mode — admission paused with
          [Overloaded] backpressure, finished-job settles deferred (their
          snapshots kept), a per-tick probe lifting the pause the moment
          a durable write succeeds again.  Counted under [serve.io_fault]
          / [serve.degraded] and visible as [degraded] in the status
          report. *)
}

val default_config :
  socket_path:string -> spool_dir:string -> workers:int -> config
(** queue_max 64, checkpoint cadence 10 M instructions, no chaos, metrics
    level, no exports, quiet, passthrough [io]. *)

val run : config -> unit
(** Serve until drained.  Removes a stale socket file at startup and the
    live one at exit.
    @raise Invalid_argument on a non-positive [workers], [queue_max] or
    [checkpoint_every]. *)
