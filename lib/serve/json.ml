type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- printing ------------------------------------------------------- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  (* Shortest representation that round-trips a double, always containing
     a '.', 'e' or being "inf"-free so the parser reads it back as Float. *)
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if not (Float.is_finite f) then
        invalid_arg "Json.to_string: non-finite float";
      Buffer.add_string b (float_repr f)
  | Str s -> add_escaped b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* -- parsing -------------------------------------------------------- *)

type parser_state = { src : string; mutable pos : int }

let fail p msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg p.pos))
let at_end p = p.pos >= String.length p.src
let peek p = if at_end p then fail p "unexpected end of input" else p.src.[p.pos]

let skip_ws p =
  while
    (not (at_end p))
    && match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  if peek p <> c then fail p (Printf.sprintf "expected %C" c);
  p.pos <- p.pos + 1

let literal p word v =
  let n = String.length word in
  if
    p.pos + n <= String.length p.src && String.sub p.src p.pos n = word
  then begin
    p.pos <- p.pos + n;
    v
  end
  else fail p (Printf.sprintf "expected %s" word)

let hex_digit p c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail p "bad \\u escape"

let parse_string p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec go () =
    let c = peek p in
    p.pos <- p.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' -> (
        let e = peek p in
        p.pos <- p.pos + 1;
        match e with
        | '"' -> Buffer.add_char b '"'; go ()
        | '\\' -> Buffer.add_char b '\\'; go ()
        | '/' -> Buffer.add_char b '/'; go ()
        | 'n' -> Buffer.add_char b '\n'; go ()
        | 'r' -> Buffer.add_char b '\r'; go ()
        | 't' -> Buffer.add_char b '\t'; go ()
        | 'b' -> Buffer.add_char b '\b'; go ()
        | 'f' -> Buffer.add_char b '\012'; go ()
        | 'u' ->
            if p.pos + 4 > String.length p.src then fail p "bad \\u escape";
            let v =
              (hex_digit p p.src.[p.pos] lsl 12)
              lor (hex_digit p p.src.[p.pos + 1] lsl 8)
              lor (hex_digit p p.src.[p.pos + 2] lsl 4)
              lor hex_digit p p.src.[p.pos + 3]
            in
            p.pos <- p.pos + 4;
            (* The protocol only ever escapes control characters; encode
               the code point as UTF-8 for anything in the BMP. *)
            if v < 0x80 then Buffer.add_char b (Char.chr v)
            else if v < 0x800 then begin
              Buffer.add_char b (Char.chr (0xc0 lor (v lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (v land 0x3f)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xe0 lor (v lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((v lsr 6) land 0x3f)));
              Buffer.add_char b (Char.chr (0x80 lor (v land 0x3f)))
            end;
            go ()
        | _ -> fail p "bad escape")
    | c when Char.code c < 0x20 -> fail p "raw control character in string"
    | c -> Buffer.add_char b c; go ()
  in
  go ()

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (not (at_end p)) && is_num_char p.src.[p.pos] do
    p.pos <- p.pos + 1
  done;
  let s = String.sub p.src start (p.pos - start) in
  let integral = not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) in
  if integral then
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> fail p (Printf.sprintf "bad number %S" s)
  else
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> Float f
    | _ -> fail p (Printf.sprintf "bad number %S" s)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | 'n' -> literal p "null" Null
  | 't' -> literal p "true" (Bool true)
  | 'f' -> literal p "false" (Bool false)
  | '"' -> Str (parse_string p)
  | '[' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | ',' ->
              p.pos <- p.pos + 1;
              items (v :: acc)
          | ']' ->
              p.pos <- p.pos + 1;
              List.rev (v :: acc)
          | _ -> fail p "expected ',' or ']'"
        in
        List (items [])
  | '{' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else
        let field () =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          (k, parse_value p)
        in
        let rec fields acc =
          let f = field () in
          skip_ws p;
          match peek p with
          | ',' ->
              p.pos <- p.pos + 1;
              fields (f :: acc)
          | '}' ->
              p.pos <- p.pos + 1;
              List.rev (f :: acc)
          | _ -> fail p "expected ',' or '}'"
        in
        Obj (fields [])
  | '-' | '0' .. '9' -> parse_number p
  | c -> fail p (Printf.sprintf "unexpected %C" c)

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if not (at_end p) then fail p "trailing bytes";
  v

(* -- accessors ------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None
