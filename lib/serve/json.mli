(** Minimal JSON tree, printer and parser for the serve wire protocol.

    Self-contained on purpose: the daemon speaks length-prefixed JSON and
    the toolchain ships no JSON library, so this implements exactly the
    subset the protocol needs — finite numbers, UTF-8 strings with the
    standard escapes, arrays, objects.  Numbers that look integral parse as
    [Int], everything else as [Float] (printed with enough digits to
    round-trip a double). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : t -> string
(** Compact (no whitespace) rendering.  Non-finite floats are rejected with
    [Invalid_argument] — they have no JSON form. *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing bytes. *)

(** {2 Accessors}

    Total lookups for decoding: each returns [None] on a type mismatch so
    decoders can fail with one protocol-level error. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for absent fields and non-objects. *)

val to_int : t -> int option
val to_float : t -> float option
(** Accepts [Int] too (JSON does not distinguish [1] from [1.0]). *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
