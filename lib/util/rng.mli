(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the simulator flows through this module so
    that every experiment is reproducible from a single integer seed.  The
    generator is splitmix64, which is fast, has a 64-bit state, and passes
    BigCrush; statistical quality far exceeds what a cache simulator needs. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val to_state : t -> int64
(** The generator's full internal state (splitmix64 has exactly 64 bits).
    [of_state (to_state t)] continues the stream bit-identically, which is
    what checkpoint/restore relies on. *)

val of_state : int64 -> t
(** A generator resuming from a captured state. *)

val set_state : t -> int64 -> unit
(** Overwrite [t]'s state in place (restore into an existing generator). *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and child are statistically independent; used to give each
    workload component its own stream so adding components does not perturb
    the others. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive.  Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli([p]) process; mean [(1-p)/p].  Requires [0 < p <= 1]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the given
    mean. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element.  Requires a non-empty
    array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val bits64 : t -> int64
(** Next raw 64-bit output of the generator. *)

val skip : t -> int -> unit
(** [skip t n] advances [t] past the next [n] raw draws in O(1), leaving the
    stream exactly where [n] calls to {!bits64} would have.  Each derived
    sampler above consumes exactly one raw draw, so callers can skip by
    draw count. *)
