(* Domain pool: Domain + Mutex + Condition work queue, nothing else.

   Jobs are [unit -> unit] closures that carry their own completion
   bookkeeping (see [map]); the queue itself is oblivious to batches.  The
   submitting domain drains the queue alongside the workers while its batch
   is outstanding, so parallelism during [map] is [size t + 1]. *)

type t = {
  m : Mutex.t;
  nonempty : Condition.t;  (* a job was queued, or the pool is closing *)
  jobs : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  n_workers : int;
}

let default_num_domains = max 0 (Domain.recommended_domain_count () - 1)

(* Jobs never raise: [map] wraps user code and stores the outcome. *)
let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.jobs && not t.closed do
    Condition.wait t.nonempty t.m
  done;
  match Queue.take_opt t.jobs with
  | None ->
      (* Empty and closed: exit. *)
      Mutex.unlock t.m
  | Some job ->
      Mutex.unlock t.m;
      job ();
      worker_loop t

let create ?(num_domains = default_num_domains) () =
  if num_domains < 0 then
    invalid_arg
      (Printf.sprintf "Pool.create: num_domains must be >= 0 (got %d)"
         num_domains);
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [];
      n_workers = num_domains;
    }
  in
  t.workers <- List.init num_domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.n_workers

type 'b cell = Pending | Done of 'b | Raised of exn

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.n_workers = 0 -> List.map f xs
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let out = Array.make n Pending in
      let remaining = ref n in
      let batch_done = Condition.create () in
      Mutex.lock t.m;
      if t.closed then begin
        Mutex.unlock t.m;
        invalid_arg "Pool.map: pool is shut down"
      end;
      for i = 0 to n - 1 do
        Queue.add
          (fun () ->
            let r = try Done (f arr.(i)) with e -> Raised e in
            Mutex.lock t.m;
            out.(i) <- r;
            decr remaining;
            if !remaining = 0 then Condition.broadcast batch_done;
            Mutex.unlock t.m)
          t.jobs
      done;
      Condition.broadcast t.nonempty;
      (* Work the queue from this domain too.  Jobs of other concurrent
         batches may be picked up here; their bookkeeping is self-contained
         so that is harmless. *)
      let rec help () =
        if !remaining > 0 then
          match Queue.take_opt t.jobs with
          | Some job ->
              Mutex.unlock t.m;
              job ();
              Mutex.lock t.m;
              help ()
          | None ->
              Condition.wait batch_done t.m;
              help ()
      in
      help ();
      Mutex.unlock t.m;
      (* The batch is fully drained; surface the smallest-index failure so
         the outcome does not depend on scheduling. *)
      Array.iter (function Raised e -> raise e | _ -> ()) out;
      Array.to_list
        (Array.map (function Done r -> r | Pending | Raised _ -> assert false) out)

let run t thunks = map t (fun f -> f ()) thunks

(* Fire-and-forget dispatch for streaming callers (the serve daemon).  The
   catch-all wrapper keeps the worker-loop invariant that jobs never raise;
   completion signalling is the job's own business. *)
let async t job =
  if t.n_workers = 0 then
    invalid_arg "Pool.async: pool has no worker domains";
  Mutex.lock t.m;
  if t.closed then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.async: pool is shut down"
  end;
  Queue.add (fun () -> try job () with _ -> ()) t.jobs;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  if t.closed then Mutex.unlock t.m
  else begin
    t.closed <- true;
    Queue.clear t.jobs;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?num_domains f =
  let t = create ?num_domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
