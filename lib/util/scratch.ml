let snapshot_family path = [ path; path ^ ".1"; path ^ ".tmp" ]

let remove_existing paths =
  List.iter
    (fun p -> try if Sys.file_exists p then Sys.remove p with Sys_error _ -> ())
    paths

let with_temp_snapshots ?(prefix = "ace_snap") ?(also = fun _ -> []) n f =
  let paths = List.init n (fun _ -> Filename.temp_file prefix ".snap") in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> remove_existing (snapshot_family p @ also p))
        paths)
    (fun () -> f paths)

(* Mirrors [Filename.temp_file]'s scheme: a self-seeded private PRNG and a
   retry loop drawing names until [mkdir] succeeds, so concurrent
   allocators never share a directory. *)
let prng = lazy (Random.State.make_self_init ())

let rec temp_dir prefix attempts =
  let name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s%06x" prefix (Random.State.int (Lazy.force prng) 0x1000000))
  in
  match Sys.mkdir name 0o700 with
  | () -> name
  | exception Sys_error _ when attempts > 0 -> temp_dir prefix (attempts - 1)

let with_temp_dir ?(prefix = "ace_scratch") f =
  let dir = temp_dir prefix 20 in
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun name -> remove_existing [ Filename.concat dir name ])
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)
