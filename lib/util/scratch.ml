let snapshot_family path = [ path; path ^ ".1"; path ^ ".tmp" ]

(* Each path gets its own guard: one failing unlink must not abandon the
   rest of the list, and the guard is deliberately narrow — catching only
   storage errors — so simulated crashes ([Io.Crashed]) and programming
   errors still propagate. *)
let remove_existing ?(io = Io.real) paths =
  List.iter
    (fun p ->
      try if Io.exists io p then Io.remove io p
      with Io.Io_error _ | Sys_error _ -> ())
    paths

let with_temp_snapshots ?(prefix = "ace_snap") ?(also = fun _ -> []) n f =
  let paths = List.init n (fun _ -> Filename.temp_file prefix ".snap") in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> remove_existing (snapshot_family p @ also p))
        paths)
    (fun () -> f paths)

(* Mirrors [Filename.temp_file]'s scheme: a self-seeded private PRNG and a
   retry loop drawing names until [mkdir] succeeds, so concurrent
   allocators never share a directory. *)
let prng = lazy (Random.State.make_self_init ())

let rec temp_dir io prefix attempts =
  let name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s%06x" prefix (Random.State.int (Lazy.force prng) 0x1000000))
  in
  match Io.mkdir io name with
  | () -> name
  | exception (Io.Io_error _ | Sys_error _) when attempts > 0 ->
      temp_dir io prefix (attempts - 1)

let with_temp_dir ?(io = Io.real) ?(prefix = "ace_scratch") f =
  let dir = temp_dir io prefix 20 in
  Fun.protect
    ~finally:(fun () ->
      let entries =
        try Io.readdir io dir with Io.Io_error _ | Sys_error _ -> [||]
      in
      Array.iter
        (fun name -> remove_existing ~io [ Filename.concat dir name ])
        entries;
      try Io.rmdir io dir with Io.Io_error _ | Sys_error _ -> ())
    (fun () -> f dir)
