(** Dependency-free domain pool (OCaml 5): a fixed set of worker domains
    pulling jobs off a [Mutex]/[Condition]-guarded queue.

    The pool exists to parallelize the harness's embarrassingly parallel
    (workload x variant) sweeps.  Design constraints, in order:

    - {b Determinism.}  [map] keys every job by its input index and returns
      results in input order, so callers see exactly what the sequential
      [List.map] would have produced (each job must itself be deterministic
      and independent — every simulator run owns a private engine,
      hierarchy, RNG and observability sink; see DESIGN.md "Parallel
      harness").
    - {b No dependencies.}  Only [Domain], [Mutex], [Condition] and [Queue]
      from the standard library.
    - {b Caller participation.}  The submitting domain works the queue too,
      so a pool created with [n] workers applies [n + 1]-way parallelism
      during [map].  A pool of size 0 is a valid degenerate pool: [map] is
      then exactly [List.map]. *)

type t

val default_num_domains : int
(** [Domain.recommended_domain_count () - 1] (never negative): the caller's
    domain plus this many workers saturates the recommended count. *)

val create : ?num_domains:int -> unit -> t
(** Spawn [num_domains] (default {!default_num_domains}) worker domains,
    idle until jobs arrive.
    @raise Invalid_argument if [num_domains] is negative. *)

val size : t -> int
(** Number of worker domains (0 for a degenerate sequential pool). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], running jobs on the
    worker domains and on the calling domain, and returns the results in
    input order.  If any job raises, the exception of the smallest-index
    failing job is re-raised in the caller after the whole batch has
    drained (so the pool is left quiescent).  Safe to call from several
    domains at once; nested [map] from inside a job is not (a worker
    waiting on its own batch would deadlock the queue). *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run t thunks] is [map t (fun f -> f ()) thunks]. *)

val async : t -> (unit -> unit) -> unit
(** [async t job] enqueues [job] for execution on some worker domain and
    returns immediately — the streaming counterpart of the batch {!map},
    used by long-running services (the [ace_serve] daemon) that dispatch
    jobs as they arrive instead of in batches.  The job must carry its own
    completion bookkeeping and error handling: an exception escaping [job]
    is caught and dropped so it cannot kill the worker domain.
    @raise Invalid_argument if the pool has been shut down, or if it has no
    worker domains (a degenerate pool has nobody to run the job, and
    [async] never runs jobs on the calling domain). *)

val shutdown : t -> unit
(** Signal the workers to exit and join them.  Idempotent.  Outstanding
    [map] calls must have returned; jobs still queued are discarded. *)

val with_pool : ?num_domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)
