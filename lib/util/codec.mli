(** Hand-rolled binary serialization for snapshot payloads.

    Fixed-width little-endian primitives composed into arrays, lists and
    options.  Unlike [Marshal], the byte layout is defined here and nowhere
    else, so snapshot files are stable across compiler versions and can be
    versioned and CRC-checked byte-for-byte (golden files live in [test/]).
    Decoders validate every length against the remaining input and raise
    {!Error} rather than reading out of bounds. *)

exception Error of string
(** Raised by decoders on truncated or malformed input. *)

module Enc : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val u8 : t -> int -> unit
  val i64 : t -> int64 -> unit
  val int : t -> int -> unit
  val f64 : t -> float -> unit

  val bool : t -> bool -> unit
  val str : t -> string -> unit
  val opt : (t -> 'a -> unit) -> t -> 'a option -> unit
  val arr : (t -> 'a -> unit) -> t -> 'a array -> unit
  val list : (t -> 'a -> unit) -> t -> 'a list -> unit
  val int_arr : t -> int array -> unit
  val f64_arr : t -> float array -> unit
  val bool_arr : t -> bool array -> unit
end

module Dec : sig
  type t

  val create : string -> t
  val remaining : t -> int
  val at_end : t -> bool
  val u8 : t -> int
  val i64 : t -> int64
  val int : t -> int
  val f64 : t -> float
  val bool : t -> bool
  val str : t -> string
  val opt : (t -> 'a) -> t -> 'a option
  val arr : (t -> 'a) -> t -> 'a array
  val list : (t -> 'a) -> t -> 'a list
  val int_arr : t -> int array
  val f64_arr : t -> float array
  val bool_arr : t -> bool array
end
