(* Injectable filesystem layer.

   Every durable write in the tree (snapshots, the serve spool, scratch
   cleanup) goes through one of these backends, so storage faults and
   crash points are injected in exactly one place instead of being
   sprinkled over call sites.  The passthrough backend is a record of
   direct syscall wrappers — no per-call allocation, so the snapshot hot
   path pays a closure call and nothing else. *)

type err = Enospc | Eio | Enoent | Eexist | Eother of string

exception Io_error of { op : string; path : string; err : err }
exception Crashed

let err_to_string = function
  | Enospc -> "ENOSPC"
  | Eio -> "EIO"
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Eother msg -> msg

let error_message = function
  | Io_error { op; path; err } ->
      Some (Printf.sprintf "%s %s: %s" op path (err_to_string err))
  | _ -> None

let fail op path err = raise (Io_error { op; path; err })

type t = {
  p_read : string -> string;
  p_write : string -> string -> unit;
  p_fsync : string -> unit;
  p_rename : string -> string -> unit;
  p_remove : string -> unit;
  p_exists : string -> bool;
  p_readdir : string -> string array;
  p_mkdir : string -> unit;
  p_rmdir : string -> unit;
}

let read_file t path = t.p_read path
let write_file t path data = t.p_write path data
let fsync t path = t.p_fsync path
let rename t src dst = t.p_rename src dst
let remove t path = t.p_remove path
let exists t path = t.p_exists path
let readdir t path = t.p_readdir path
let mkdir t path = t.p_mkdir path
let rmdir t path = t.p_rmdir path

(* -- passthrough ---------------------------------------------------- *)

let err_of_unix = function
  | Unix.ENOSPC -> Enospc
  | Unix.EIO -> Eio
  | Unix.ENOENT -> Enoent
  | Unix.EEXIST -> Eexist
  | e -> Eother (Unix.error_message e)

let unix_fail op path e = fail op path (err_of_unix e)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let real_read path =
  match Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (e, _, _) -> unix_fail "read" path e
  | fd ->
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          match
            let len = (Unix.fstat fd).Unix.st_size in
            let buf = Bytes.create len in
            let off = ref 0 in
            let eof = ref false in
            while (not !eof) && !off < len do
              let n = Unix.read fd buf !off (len - !off) in
              if n = 0 then eof := true else off := !off + n
            done;
            Bytes.sub_string buf 0 !off
          with
          | data -> data
          | exception Unix.Unix_error (e, _, _) -> unix_fail "read" path e)

let real_write path data =
  match
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  with
  | exception Unix.Unix_error (e, _, _) -> unix_fail "write" path e
  | fd ->
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          let len = String.length data in
          let off = ref 0 in
          while !off < len do
            match Unix.write_substring fd data !off (len - !off) with
            | n -> off := !off + n
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error (e, _, _) -> unix_fail "write" path e
          done)

let real_fsync path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (e, _, _) -> unix_fail "fsync" path e
  | fd ->
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          try Unix.fsync fd
          with Unix.Unix_error (e, _, _) -> unix_fail "fsync" path e)

let real_readdir path =
  match Sys.readdir path with
  | names -> names
  | exception Sys_error msg ->
      fail "readdir" path (if Sys.file_exists path then Eother msg else Enoent)

let real =
  {
    p_read = real_read;
    p_write = real_write;
    p_fsync = real_fsync;
    p_rename =
      (fun src dst ->
        try Unix.rename src dst
        with Unix.Unix_error (e, _, _) -> unix_fail "rename" src e);
    p_remove =
      (fun path ->
        try Unix.unlink path
        with Unix.Unix_error (e, _, _) -> unix_fail "remove" path e);
    p_exists = Sys.file_exists;
    p_readdir = real_readdir;
    p_mkdir =
      (fun path ->
        try Unix.mkdir path 0o755
        with Unix.Unix_error (e, _, _) -> unix_fail "mkdir" path e);
    p_rmdir =
      (fun path ->
        try Unix.rmdir path
        with Unix.Unix_error (e, _, _) -> unix_fail "rmdir" path e);
  }

(* -- in-memory filesystem with page-cache crash semantics ----------- *)

module Mem = struct
  (* Two images of the tree: [cur] is what a running process observes,
     [dur] is what survives a [`Drop] crash.  The model is a journaling
     filesystem with ordered metadata: namespace operations (create,
     rename, unlink, mkdir) commit immediately in both images, while
     file *contents* stay volatile until an explicit fsync copies them
     into [dur].  [`Drop] is the adversarial reboot (all un-synced data
     gone — a created-but-never-synced file survives as an empty husk);
     [`Keep] is the lucky one (the kernel flushed everything first).
     Enumerating crash points under both brackets reality. *)
  type fs = {
    cur : (string, string) Hashtbl.t;
    dur : (string, string) Hashtbl.t;
    cur_dirs : (string, unit) Hashtbl.t;
    dur_dirs : (string, unit) Hashtbl.t;
  }

  let create () =
    {
      cur = Hashtbl.create 32;
      dur = Hashtbl.create 32;
      cur_dirs = Hashtbl.create 8;
      dur_dirs = Hashtbl.create 8;
    }

  type crash_mode = [ `Drop | `Keep ]

  let copy_into src dst =
    Hashtbl.reset dst;
    Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

  let crash mode fs =
    match mode with
    | `Drop ->
        copy_into fs.dur fs.cur;
        copy_into fs.dur_dirs fs.cur_dirs
    | `Keep ->
        copy_into fs.cur fs.dur;
        copy_into fs.cur_dirs fs.dur_dirs

  let durable_files fs =
    Hashtbl.fold (fun path data acc -> (path, data) :: acc) fs.dur []
    |> List.sort compare

  let io fs =
    {
      p_read =
        (fun path ->
          match Hashtbl.find_opt fs.cur path with
          | Some data -> data
          | None -> fail "read" path Enoent);
      p_write =
        (fun path data ->
          Hashtbl.replace fs.cur path data;
          (* Creation is a namespace op (durable); the bytes are not. *)
          if not (Hashtbl.mem fs.dur path) then Hashtbl.replace fs.dur path "");
      p_fsync =
        (fun path ->
          match Hashtbl.find_opt fs.cur path with
          | Some data -> Hashtbl.replace fs.dur path data
          | None -> fail "fsync" path Enoent);
      p_rename =
        (fun src dst ->
          match Hashtbl.find_opt fs.cur src with
          | None -> fail "rename" src Enoent
          | Some data ->
              Hashtbl.remove fs.cur src;
              Hashtbl.replace fs.cur dst data;
              let d = Option.value ~default:"" (Hashtbl.find_opt fs.dur src) in
              Hashtbl.remove fs.dur src;
              Hashtbl.replace fs.dur dst d);
      p_remove =
        (fun path ->
          if not (Hashtbl.mem fs.cur path) then fail "remove" path Enoent;
          Hashtbl.remove fs.cur path;
          Hashtbl.remove fs.dur path);
      p_exists =
        (fun path -> Hashtbl.mem fs.cur path || Hashtbl.mem fs.cur_dirs path);
      p_readdir =
        (fun dir ->
          if not (Hashtbl.mem fs.cur_dirs dir) then fail "readdir" dir Enoent;
          let inside tbl =
            Hashtbl.fold
              (fun p () acc ->
                if Filename.dirname p = dir then Filename.basename p :: acc
                else acc)
              tbl []
          in
          let files =
            Hashtbl.fold
              (fun p _ acc ->
                if Filename.dirname p = dir then Filename.basename p :: acc
                else acc)
              fs.cur []
          in
          let names = files @ inside fs.cur_dirs in
          let a = Array.of_list names in
          Array.sort compare a;
          a);
      p_mkdir =
        (fun path ->
          if Hashtbl.mem fs.cur_dirs path || Hashtbl.mem fs.cur path then
            fail "mkdir" path Eexist;
          Hashtbl.replace fs.cur_dirs path ();
          Hashtbl.replace fs.dur_dirs path ());
      p_rmdir =
        (fun path ->
          if not (Hashtbl.mem fs.cur_dirs path) then fail "rmdir" path Enoent;
          let occupied =
            Hashtbl.fold
              (fun p _ acc -> acc || Filename.dirname p = path)
              fs.cur false
          in
          if occupied then fail "rmdir" path (Eother "directory not empty");
          Hashtbl.remove fs.cur_dirs path;
          Hashtbl.remove fs.dur_dirs path);
    }
end

(* -- seeded fault injection ----------------------------------------- *)

type fault_config = {
  write_enospc_p : float;
  write_eio_p : float;
  short_write_p : float;
  lost_fsync_p : float;
  fsync_eio_p : float;
  rename_eio_p : float;
  remove_eio_p : float;
  read_eio_p : float;
}

let no_io_faults =
  {
    write_enospc_p = 0.0;
    write_eio_p = 0.0;
    short_write_p = 0.0;
    lost_fsync_p = 0.0;
    fsync_eio_p = 0.0;
    rename_eio_p = 0.0;
    remove_eio_p = 0.0;
    read_eio_p = 0.0;
  }

(* Derived rates mirror [Ace_faults.Faults.preset]: one knob, with the
   noisier channels (writes) taking the base rate and the rarer real-world
   failures (fsync, rename) scaled down. *)
let fault_preset ~rate =
  {
    write_enospc_p = rate;
    write_eio_p = rate *. 0.5;
    short_write_p = rate *. 0.5;
    lost_fsync_p = rate *. 0.25;
    fsync_eio_p = rate *. 0.25;
    rename_eio_p = rate *. 0.25;
    remove_eio_p = rate *. 0.5;
    read_eio_p = rate *. 0.25;
  }

(* Draws happen only for non-zero probabilities so enabling one fault
   channel never perturbs another channel's sequence. *)
let draw rng p = p > 0.0 && Rng.bernoulli rng p

let faulty ?(seed = 1) cfg base =
  let rng = Rng.create ~seed in
  {
    p_read =
      (fun path ->
        if draw rng cfg.read_eio_p then fail "read" path Eio;
        base.p_read path);
    p_write =
      (fun path data ->
        if draw rng cfg.write_enospc_p then fail "write" path Enospc;
        if draw rng cfg.write_eio_p then fail "write" path Eio;
        if draw rng cfg.short_write_p then begin
          (* The disk filled mid-write: a prefix landed, the syscall
             errored.  The half-file is what recovery must cope with. *)
          let keep = Rng.int rng (String.length data + 1) in
          base.p_write path (String.sub data 0 keep);
          fail "write" path Enospc
        end;
        base.p_write path data);
    p_fsync =
      (fun path ->
        if draw rng cfg.fsync_eio_p then fail "fsync" path Eio;
        (* A lost fsync reports success without making the data durable —
           the classic firmware lie.  Only a crash can expose it. *)
        if draw rng cfg.lost_fsync_p then () else base.p_fsync path);
    p_rename =
      (fun src dst ->
        if draw rng cfg.rename_eio_p then fail "rename" src Eio;
        base.p_rename src dst);
    p_remove =
      (fun path ->
        if draw rng cfg.remove_eio_p then fail "remove" path Eio;
        base.p_remove path);
    p_exists = base.p_exists;
    p_readdir = base.p_readdir;
    p_mkdir = base.p_mkdir;
    p_rmdir = base.p_rmdir;
  }

let enospc_while pred base =
  {
    base with
    p_write =
      (fun path data ->
        if pred () then fail "write" path Enospc else base.p_write path data);
    p_mkdir =
      (fun path -> if pred () then fail "mkdir" path Enospc else base.p_mkdir path);
  }

let shuffled_readdir ~seed base =
  let rng = Rng.create ~seed in
  {
    base with
    p_readdir =
      (fun path ->
        let names = base.p_readdir path in
        Rng.shuffle rng names;
        names);
  }

(* -- crash-point instrumentation ------------------------------------ *)

type op_kind = Op_write | Op_fsync | Op_rename | Op_remove | Op_mkdir | Op_rmdir

type op = { op_kind : op_kind; op_path : string }

let op_kind_name = function
  | Op_write -> "write"
  | Op_fsync -> "fsync"
  | Op_rename -> "rename"
  | Op_remove -> "remove"
  | Op_mkdir -> "mkdir"
  | Op_rmdir -> "rmdir"

(* Only state-mutating operations are boundaries: a crash "before a read"
   is indistinguishable from a crash before the next mutation. *)
let recording base =
  let ops = ref [] in
  let tick op_kind op_path = ops := { op_kind; op_path } :: !ops in
  ( {
      base with
      p_write =
        (fun path data ->
          tick Op_write path;
          base.p_write path data);
      p_fsync =
        (fun path ->
          tick Op_fsync path;
          base.p_fsync path);
      p_rename =
        (fun src dst ->
          tick Op_rename dst;
          base.p_rename src dst);
      p_remove =
        (fun path ->
          tick Op_remove path;
          base.p_remove path);
      p_mkdir =
        (fun path ->
          tick Op_mkdir path;
          base.p_mkdir path);
      p_rmdir =
        (fun path ->
          tick Op_rmdir path;
          base.p_rmdir path);
    },
    fun () -> Array.of_list (List.rev !ops) )

let crash_at ~at ?(torn = false) base =
  let n = ref 0 in
  let dead = ref false in
  (* After the crash op, the "process" is gone: every further operation
     (reads included) raises, so nothing in the dying run can observe or
     repair state past the crash point. *)
  let alive () = if !dead then raise Crashed in
  let tick () =
    alive ();
    let i = !n in
    n := i + 1;
    if i = at then begin
      dead := true;
      true
    end
    else false
  in
  let boundary () = if tick () then raise Crashed in
  {
    p_read =
      (fun path ->
        alive ();
        base.p_read path);
    p_write =
      (fun path data ->
        if tick () then begin
          (* A torn crash point leaves a prefix of the write on disk —
             precisely half, so the torn file is deterministic. *)
          if torn then
            base.p_write path (String.sub data 0 (String.length data / 2));
          raise Crashed
        end;
        base.p_write path data);
    p_fsync =
      (fun path ->
        boundary ();
        base.p_fsync path);
    p_rename =
      (fun src dst ->
        boundary ();
        base.p_rename src dst);
    p_remove =
      (fun path ->
        boundary ();
        base.p_remove path);
    p_exists =
      (fun path ->
        alive ();
        base.p_exists path);
    p_readdir =
      (fun path ->
        alive ();
        base.p_readdir path);
    p_mkdir =
      (fun path ->
        boundary ();
        base.p_mkdir path);
    p_rmdir =
      (fun path ->
        boundary ();
        base.p_rmdir path);
  }
