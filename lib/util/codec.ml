exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let contents = Buffer.contents
  let u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

  let i64 b (x : int64) =
    for k = 0 to 7 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.shift_right_logical x (8 * k)) land 0xFF))
    done

  let int b n = i64 b (Int64.of_int n)
  let f64 b x = i64 b (Int64.bits_of_float x)
  let bool b x = u8 b (if x then 1 else 0)

  let str b s =
    int b (String.length s);
    Buffer.add_string b s

  let opt f b = function
    | None -> u8 b 0
    | Some x ->
        u8 b 1;
        f b x

  let arr f b xs =
    int b (Array.length xs);
    Array.iter (f b) xs

  let list f b xs =
    int b (List.length xs);
    List.iter (f b) xs

  let int_arr b xs = arr int b xs
  let f64_arr b xs = arr f64 b xs
  let bool_arr b xs = arr bool b xs
end

module Dec = struct
  type t = { s : string; mutable pos : int }

  let create s = { s; pos = 0 }
  let remaining d = String.length d.s - d.pos
  let at_end d = remaining d = 0

  let u8 d =
    if d.pos >= String.length d.s then fail "truncated (u8 at %d)" d.pos;
    let c = Char.code d.s.[d.pos] in
    d.pos <- d.pos + 1;
    c

  let i64 d =
    if remaining d < 8 then fail "truncated (i64 at %d)" d.pos;
    let x = ref 0L in
    for k = 7 downto 0 do
      x := Int64.logor (Int64.shift_left !x 8)
             (Int64.of_int (Char.code d.s.[d.pos + k]))
    done;
    d.pos <- d.pos + 8;
    !x

  let int d = Int64.to_int (i64 d)
  let f64 d = Int64.float_of_bits (i64 d)

  let bool d =
    match u8 d with
    | 0 -> false
    | 1 -> true
    | n -> fail "bad bool tag %d at %d" n d.pos

  let str d =
    let n = int d in
    if n < 0 || n > remaining d then fail "bad string length %d at %d" n d.pos;
    let s = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    s

  let opt f d =
    match u8 d with
    | 0 -> None
    | 1 -> Some (f d)
    | n -> fail "bad option tag %d at %d" n d.pos

  (* Length sanity bound: every array element costs at least one byte, so a
     declared length beyond the remaining bytes is corruption, not data. *)
  let len d =
    let n = int d in
    if n < 0 || n > remaining d then fail "bad length %d at %d" n d.pos;
    n

  (* Explicit loops: the element decoder is effectful, so evaluation order
     must be left-to-right regardless of Array.init/List.init semantics. *)
  let arr f d =
    let n = len d in
    if n = 0 then [||]
    else begin
      let first = f d in
      let out = Array.make n first in
      for i = 1 to n - 1 do
        out.(i) <- f d
      done;
      out
    end

  let list f d =
    let n = len d in
    let acc = ref [] in
    for _ = 1 to n do
      acc := f d :: !acc
    done;
    List.rev !acc
  let int_arr d = arr int d
  let f64_arr d = arr f64 d
  let bool_arr d = arr bool d
end
