let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let sum_sq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sum_sq /. float_of_int n)

let cov xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else stddev xs /. m

let manhattan a b =
  if Array.length a <> Array.length b then
    invalid_arg "Stats.manhattan: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (a.(i) -. b.(i))
  done;
  !acc

let normalize_l1 xs =
  let total = Array.fold_left ( +. ) 0.0 xs in
  if total = 0.0 then Array.copy xs else Array.map (fun x -> x /. total) xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable last : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; last = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    t.last <- x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int t.n)
  let cov t = if t.mean = 0.0 then 0.0 else stddev t /. t.mean
  let last t = t.last

  type state = { s_n : int; s_mean : float; s_m2 : float; s_last : float }

  let capture t = { s_n = t.n; s_mean = t.mean; s_m2 = t.m2; s_last = t.last }

  let restore t s =
    t.n <- s.s_n;
    t.mean <- s.s_mean;
    t.m2 <- s.s_m2;
    t.last <- s.s_last
end

module Ema = struct
  type t = { alpha : float; mutable value : float; mutable seeded : bool }

  let create ~alpha =
    assert (alpha > 0.0 && alpha <= 1.0);
    { alpha; value = 0.0; seeded = false }

  let add t x =
    if t.seeded then t.value <- (t.alpha *. x) +. ((1.0 -. t.alpha) *. t.value)
    else begin
      t.value <- x;
      t.seeded <- true
    end

  let value t = t.value
  let is_empty t = not t.seeded

  type state = { s_value : float; s_seeded : bool }

  let capture t = { s_value = t.value; s_seeded = t.seeded }

  let restore t s =
    t.value <- s.s_value;
    t.seeded <- s.s_seeded
end
