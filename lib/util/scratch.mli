(** Cleanup guards for scratch files and directories.

    Snapshot files come in families ([path], the rotated [path.1], the
    in-flight [path.tmp], and the soak harness's [path.baseline] variants);
    anything that allocates such paths with [Filename.temp_file] must remove
    the whole family on every exit path or leak snapshots into [$TMPDIR].
    These combinators centralize that discipline; the soak experiment and
    the serve daemon's spool both use them. *)

val snapshot_family : string -> string list
(** Every file [Ace_ckpt.Snapshot.write] can leave behind for [path]:
    [path], [path ^ ".1"] and [path ^ ".tmp"]. *)

val remove_existing : ?io:Io.t -> string list -> unit
(** Remove each listed file that exists; removal errors (e.g. a path
    deleted concurrently, or a transient {!Io.Io_error}) are ignored
    per-path — one failing unlink never abandons the rest of the list. *)

val with_temp_snapshots :
  ?prefix:string -> ?also:(string -> string list) -> int -> (string list -> 'a) -> 'a
(** [with_temp_snapshots n f] allocates [n] fresh temp snapshot paths,
    runs [f paths], and removes every path's {!snapshot_family} whether [f]
    returns or raises.  [also] names extra per-path families to guard
    (e.g. [fun p -> snapshot_family (p ^ ".baseline")] for the soak
    harness's uninterrupted-baseline snapshots).  Paths are allocated
    sequentially on the calling domain ([Filename.temp_file] draws from a
    process-global PRNG), so [f] may fan them out across a pool. *)

val with_temp_dir : ?io:Io.t -> ?prefix:string -> (string -> 'a) -> 'a
(** [with_temp_dir f] creates a fresh private directory under the temp dir,
    runs [f dir], and removes the directory and every file directly inside
    it (no recursion into subdirectories) whether [f] returns or raises.
    Cleanup is fault-tolerant per entry: a failing unlink skips only that
    entry, never the remainder. *)
