(** CRC-32 (IEEE) checksums, used to detect torn or corrupted snapshot
    files.  The value is always in [0, 2^32). *)

val string : string -> int
(** Checksum of a whole string. *)

val update : int -> string -> pos:int -> len:int -> int
(** Incremental form: [update crc s ~pos ~len] extends [crc] with a
    substring.  [string s = update 0 s ~pos:0 ~len:(String.length s)]. *)
