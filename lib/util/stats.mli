(** Descriptive statistics used throughout the reproduction: coefficients of
    variation for Table 5, Manhattan distances for BBV matching, and running
    accumulators for per-hotspot performance profiles. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val cov : float array -> float
(** Coefficient of variation: [stddev / mean], as a fraction (not percent).
    0 when the mean is 0. *)

val manhattan : float array -> float array -> float
(** [manhattan a b] is the L1 distance between two equal-length vectors.
    @raise Invalid_argument on length mismatch. *)

val normalize_l1 : float array -> float array
(** Scale a non-negative vector so its entries sum to 1; an all-zero vector is
    returned unchanged. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], nearest-rank on a sorted copy;
    0 for an empty array. *)

(** Running accumulator with O(1) updates (Welford), used for per-hotspot and
    per-phase IPC profiles. *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float

  val cov : t -> float
  (** Coefficient of variation of the samples seen so far. *)

  val last : t -> float
  (** Most recently added sample; 0 if none. *)

  (** Full accumulator state, exposed for checkpoint serialization. *)
  type state = { s_n : int; s_mean : float; s_m2 : float; s_last : float }

  val capture : t -> state
  val restore : t -> state -> unit
end

(** Exponential moving average, used for hotspot size estimation. *)
module Ema : sig
  type t

  val create : alpha:float -> t
  (** [alpha] is the weight of each new sample, in (0, 1]. *)

  val add : t -> float -> unit
  val value : t -> float
  (** Current estimate; the first sample initializes the average. *)

  val is_empty : t -> bool

  (** Average state minus the fixed [alpha], for checkpoint serialization. *)
  type state = { s_value : float; s_seeded : bool }

  val capture : t -> state
  val restore : t -> state -> unit
end
