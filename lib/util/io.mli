(** Injectable filesystem layer for all durable I/O.

    Snapshots ([Ace_ckpt.Snapshot]), the serve spool ([Ace_serve.Spool])
    and scratch-space cleanup ({!Scratch}) perform every filesystem
    operation through a value of type {!t}, so storage faults and crash
    points are injected in exactly one place.  Backends:

    - {!real} — passthrough to the OS, allocation-free per call;
    - {!Mem} — an in-memory filesystem with page-cache crash semantics
      (data is volatile until {!fsync}; metadata journals durably);
    - {!faulty} — seeded probabilistic fault injection (short/torn
      writes, [ENOSPC], [EIO], lost fsyncs, rename failures);
    - {!crash_at} / {!recording} — deterministic crash-point enumeration
      used by the torture harness;
    - {!enospc_while} / {!shuffled_readdir} — targeted adversaries for
      the daemon's degraded mode and [Spool.scan] order independence. *)

type err = Enospc | Eio | Enoent | Eexist | Eother of string

exception Io_error of { op : string; path : string; err : err }
(** Every backend reports failures with this one exception; callers that
    tolerate storage errors match on it rather than on [Sys_error]. *)

exception Crashed
(** Raised by a {!crash_at} backend at (and forever after) its crash
    point — the simulated process is dead and can touch nothing more. *)

val err_to_string : err -> string

val error_message : exn -> string option
(** [Some human_readable] for an {!Io_error}, [None] otherwise. *)

type t

val read_file : t -> string -> string
(** Whole-file read. Raises {!Io_error} with [Enoent] if missing. *)

val write_file : t -> string -> string -> unit
(** Whole-file create-or-truncate write.  Not atomic and not durable on
    its own — callers compose [write tmp; fsync tmp; rename tmp dst]. *)

val fsync : t -> string -> unit
(** Flush a file's data to stable storage (by path: the passthrough
    backend reopens the file and calls [fsync(2)] on the fd). *)

val rename : t -> string -> string -> unit
val remove : t -> string -> unit
val exists : t -> string -> bool

val readdir : t -> string -> string array
(** Entries in backend-defined order — callers that replay state from a
    directory must sort. *)

val mkdir : t -> string -> unit
val rmdir : t -> string -> unit

val real : t
(** Passthrough to the OS.  The record is built once at module init;
    calls allocate nothing beyond what the syscall wrappers do. *)

(** In-memory filesystem with crash semantics. *)
module Mem : sig
  type fs

  val create : unit -> fs

  val io : fs -> t
  (** A handle operating on [fs].  Several handles (e.g. the dying
      process's {!crash_at} wrapper and the recovering process's plain
      one) may share one [fs]. *)

  type crash_mode = [ `Drop | `Keep ]

  val crash : crash_mode -> fs -> unit
  (** Simulate power loss. [`Drop] discards all data not made durable by
      {!fsync} (metadata — creations, renames, unlinks — survives, so an
      unsynced new file survives as empty); [`Keep] models a kernel that
      flushed everything before dying.  Enumerating crash points under
      both brackets real filesystem behaviour. *)

  val durable_files : fs -> (string * string) list
  (** The durable image, sorted by path — for test assertions. *)
end

(** {1 Fault injection} *)

type fault_config = {
  write_enospc_p : float;
  write_eio_p : float;
  short_write_p : float;  (** Write a prefix, then raise [Enospc]. *)
  lost_fsync_p : float;  (** Report success without flushing. *)
  fsync_eio_p : float;
  rename_eio_p : float;
  remove_eio_p : float;
  read_eio_p : float;
}

val no_io_faults : fault_config

val fault_preset : rate:float -> fault_config
(** One-knob preset: writes fail at [rate], rarer channels (fsync,
    rename, reads) at a fraction of it. *)

val faulty : ?seed:int -> fault_config -> t -> t
(** Wrap a backend with seeded fault injection.  Deterministic: the same
    seed and call sequence produce the same faults.  Channels with
    probability 0 draw nothing, so enabling one fault never shifts
    another's sequence. *)

val enospc_while : (unit -> bool) -> t -> t
(** While the predicate holds, every [write_file]/[mkdir] raises
    [Enospc].  Models a full disk that later drains — drives the
    daemon's degraded-mode smoke test. *)

val shuffled_readdir : seed:int -> t -> t
(** Permute every {!readdir} result — an adversarial filesystem for
    order-independence regression tests. *)

(** {1 Crash-point enumeration} *)

type op_kind = Op_write | Op_fsync | Op_rename | Op_remove | Op_mkdir | Op_rmdir

type op = { op_kind : op_kind; op_path : string }

val op_kind_name : op_kind -> string

val recording : t -> t * (unit -> op array)
(** Count state-mutating operations (reads are not crash boundaries: a
    crash before a read is indistinguishable from one before the next
    mutation).  The callback returns ops observed so far, in order; the
    torture harness crashes a fresh run at each index. *)

val crash_at : at:int -> ?torn:bool -> t -> t
(** Raise {!Crashed} at the [at]-th mutating operation (0-based) and on
    every operation — reads included — thereafter.  With [~torn:true] a
    crash landing on a write first leaves half the data behind, the
    deterministic torn-write case. *)
