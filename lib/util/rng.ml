type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let to_state t = t.state
let of_state state = { state }
let set_state t state = t.state <- state

(* splitmix64 core: advance the state by the golden gamma and scramble. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed64 = bits64 t in
  { state = seed64 }

(* The state advances by exactly one gamma per [bits64] call, so skipping
   [n] draws is a single multiply-add.  Used by fast-forward simulation to
   keep the stream aligned with what a full run would have consumed. *)
let skip t n = t.state <- Int64.add t.state (Int64.mul golden_gamma (Int64.of_int n))

(* Non-negative 62-bit value, safe to use as an OCaml [int]. *)
let positive_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  assert (bound > 0);
  positive_int t mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (mantissa /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    (* Inverse CDF of the geometric distribution on {0, 1, ...}. *)
    int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))

let exponential t mean =
  let u = float t 1.0 in
  -.mean *. log1p (-.u)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
