(** The DO database: runtime profiling state the dynamic optimizer keeps per
    method (Figure 2's "DO database").

    One entry per static method records invocation counts, sampler hits,
    compilation state, hotspot status, the running estimate of the hotspot's
    dynamic size (instructions per invocation, inclusive of callees), and the
    per-invocation IPC profile used for Table 5's coefficient-of-variation
    analysis.  ACE-scheme-specific tuning state is *not* stored here; the
    framework (in [ace_core]) keys its own table by method id, mirroring how
    the paper extends Jikes' global data structures (§4.2). *)

type compile_state = Baseline | Optimized

type entry = {
  meth_id : int;
  mutable invocations : int;
  mutable samples : int;  (** Timer-sampler hits attributed to the method. *)
  mutable compile_state : compile_state;
  mutable is_hotspot : bool;
  mutable promoted_at_instr : int;  (** Global instr count at promotion; -1 before. *)
  mutable pre_promotion_instrs : int;
      (** Inclusive instructions executed in this method's invocations that
          completed before promotion — the hotspot identification latency. *)
  size_ema : Ace_util.Stats.Ema.t;  (** Hotspot size estimate. *)
  ipc_profile : Ace_util.Stats.Running.t;
      (** IPC of each completed invocation (post-promotion). *)
  mutable entry_overhead : int;  (** Instrumentation instrs at entry. *)
  mutable exit_overhead : int;  (** Instrumentation instrs at exit. *)
}

type t

val create : methods:int -> t
val entry : t -> int -> entry
val size : t -> int
val iter : t -> (entry -> unit) -> unit

val set_instrument : t -> int -> Instrument.kind -> unit
(** Install the given stub kind at a method's entry and exits (what the JIT
    compiler does when it rewrites a hotspot). *)

val estimated_size : entry -> int
(** Current hotspot-size estimate in instructions (0 until first exit). *)

(** Per-entry profiling state, for checkpoint serialization. *)
type entry_state = {
  s_invocations : int;
  s_samples : int;
  s_compile_state : compile_state;
  s_is_hotspot : bool;
  s_promoted_at_instr : int;
  s_pre_promotion_instrs : int;
  s_size_ema : Ace_util.Stats.Ema.state;
  s_ipc_profile : Ace_util.Stats.Running.state;
  s_entry_overhead : int;
  s_exit_overhead : int;
}

type state = entry_state array

val capture : t -> state

val restore : t -> state -> unit
(** @raise Invalid_argument if the method counts differ. *)

(** Aggregates for Table 4 / Table 5. *)

val hotspot_count : t -> int

val hotspots : t -> entry list
(** Entries flagged as hotspots, in method-id order. *)

val mean_hotspot_size : t -> float
val mean_invocations_per_hotspot : t -> float

val identification_latency_instrs : t -> int
(** Sum of pre-promotion inclusive instructions over all hotspots (overlaps
    between nested hotspots included, as in the paper's estimate). *)

val inter_hotspot_ipc_cov : t -> float
(** CoV of the mean IPCs across hotspots. *)

val mean_per_hotspot_ipc_cov : t -> float
(** Mean over hotspots of each hotspot's own invocation-IPC CoV. *)
