type compile_state = Baseline | Optimized

type entry = {
  meth_id : int;
  mutable invocations : int;
  mutable samples : int;
  mutable compile_state : compile_state;
  mutable is_hotspot : bool;
  mutable promoted_at_instr : int;
  mutable pre_promotion_instrs : int;
  size_ema : Ace_util.Stats.Ema.t;
  ipc_profile : Ace_util.Stats.Running.t;
  mutable entry_overhead : int;
  mutable exit_overhead : int;
}

type t = entry array

let create ~methods =
  Array.init methods (fun meth_id ->
      {
        meth_id;
        invocations = 0;
        samples = 0;
        compile_state = Baseline;
        is_hotspot = false;
        promoted_at_instr = -1;
        pre_promotion_instrs = 0;
        size_ema = Ace_util.Stats.Ema.create ~alpha:0.25;
        ipc_profile = Ace_util.Stats.Running.create ();
        entry_overhead = 0;
        exit_overhead = 0;
      })

let entry t id = t.(id)
let size t = Array.length t
let iter t f = Array.iter f t

let set_instrument t id kind =
  let e = t.(id) in
  e.entry_overhead <- Instrument.entry_instrs kind;
  e.exit_overhead <- Instrument.exit_instrs kind

type entry_state = {
  s_invocations : int;
  s_samples : int;
  s_compile_state : compile_state;
  s_is_hotspot : bool;
  s_promoted_at_instr : int;
  s_pre_promotion_instrs : int;
  s_size_ema : Ace_util.Stats.Ema.state;
  s_ipc_profile : Ace_util.Stats.Running.state;
  s_entry_overhead : int;
  s_exit_overhead : int;
}

type state = entry_state array

let capture t =
  Array.map
    (fun e ->
      {
        s_invocations = e.invocations;
        s_samples = e.samples;
        s_compile_state = e.compile_state;
        s_is_hotspot = e.is_hotspot;
        s_promoted_at_instr = e.promoted_at_instr;
        s_pre_promotion_instrs = e.pre_promotion_instrs;
        s_size_ema = Ace_util.Stats.Ema.capture e.size_ema;
        s_ipc_profile = Ace_util.Stats.Running.capture e.ipc_profile;
        s_entry_overhead = e.entry_overhead;
        s_exit_overhead = e.exit_overhead;
      })
    t

let restore t s =
  if Array.length s <> Array.length t then
    invalid_arg "Do_database.restore: method count mismatch";
  Array.iteri
    (fun i e ->
      let es = s.(i) in
      e.invocations <- es.s_invocations;
      e.samples <- es.s_samples;
      e.compile_state <- es.s_compile_state;
      e.is_hotspot <- es.s_is_hotspot;
      e.promoted_at_instr <- es.s_promoted_at_instr;
      e.pre_promotion_instrs <- es.s_pre_promotion_instrs;
      Ace_util.Stats.Ema.restore e.size_ema es.s_size_ema;
      Ace_util.Stats.Running.restore e.ipc_profile es.s_ipc_profile;
      e.entry_overhead <- es.s_entry_overhead;
      e.exit_overhead <- es.s_exit_overhead)
    t

let estimated_size e =
  if Ace_util.Stats.Ema.is_empty e.size_ema then 0
  else int_of_float (Ace_util.Stats.Ema.value e.size_ema)

let hotspots t =
  Array.to_list (Array.of_seq (Seq.filter (fun e -> e.is_hotspot) (Array.to_seq t)))

let hotspot_count t =
  Array.fold_left (fun acc e -> if e.is_hotspot then acc + 1 else acc) 0 t

let mean_over_hotspots t f =
  let hs = hotspots t in
  match hs with
  | [] -> 0.0
  | _ ->
      List.fold_left (fun acc e -> acc +. f e) 0.0 hs /. float_of_int (List.length hs)

let mean_hotspot_size t =
  mean_over_hotspots t (fun e -> float_of_int (estimated_size e))

let mean_invocations_per_hotspot t =
  mean_over_hotspots t (fun e -> float_of_int e.invocations)

let identification_latency_instrs t =
  Array.fold_left
    (fun acc e -> if e.is_hotspot then acc + e.pre_promotion_instrs else acc)
    0 t

let inter_hotspot_ipc_cov t =
  let means =
    List.filter_map
      (fun e ->
        if Ace_util.Stats.Running.count e.ipc_profile > 0 then
          Some (Ace_util.Stats.Running.mean e.ipc_profile)
        else None)
      (hotspots t)
  in
  Ace_util.Stats.cov (Array.of_list means)

let mean_per_hotspot_ipc_cov t =
  let covs =
    List.filter_map
      (fun e ->
        if Ace_util.Stats.Running.count e.ipc_profile > 1 then
          Some (Ace_util.Stats.Running.cov e.ipc_profile)
        else None)
      (hotspots t)
  in
  Ace_util.Stats.mean (Array.of_list covs)
