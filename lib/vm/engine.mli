(** The dynamic optimization system's execution engine.

    Plays the role of Jikes RVM running on Dynamic SimpleScalar: it executes
    an {!Ace_isa.Program.t} over a simulated memory hierarchy and timing
    model, while performing the DO system's own activities — invocation
    counting, timer-based sampling, hotspot promotion, JIT recompilation
    (modelled as a code-quality step plus a compilation-cost charge), and
    execution of instrumentation stubs at method boundaries.

    Resource-adaptation schemes attach through {!hooks}; the engine itself is
    scheme-agnostic and identical across the fixed-baseline, hotspot-ACE and
    BBV runs, as in the paper where all three run the same VM. *)

type config = {
  seed : int;
  hot_threshold : int;
      (** Invocations after which a method is promoted to hotspot. *)
  sample_period_cycles : float;
      (** Jikes' 10 ms timer tick, expressed in cycles. *)
  sample_opt_threshold : int;
      (** Sampler hits that trigger recompilation of a long-running,
          rarely-invoked method. *)
  quality_baseline : float;  (** IPC multiplier of baseline-compiled code. *)
  quality_optimized : float;  (** IPC multiplier after JIT optimization. *)
  compile_instrs_per_code_byte : int;
      (** JIT compilation cost charged when a method is recompiled. *)
  interval_instrs : int option;
      (** If set, [on_interval] fires every this many program instructions
          (the BBV sampling interval). *)
}

val default_config : config
(** seed 42, hot_threshold 32, 200 K-cycle sampler, thresholds and qualities
    as in DESIGN.md, no interval hook. *)

type hooks = {
  mutable on_hotspot_promoted : meth_id:int -> unit;
  mutable on_method_entry : meth_id:int -> unit;
      (** After the entry stub, before the invocation's first instruction. *)
  mutable on_method_exit : meth_id:int -> Profile.t -> unit;
      (** After the invocation's last instruction and the exit stub. *)
  mutable on_block : pc:int -> instrs:int -> count:int -> unit;
      (** After a batch of [count] executions of the block at [pc] (BBV
          accumulation point). *)
  mutable on_interval : total_instrs:int -> unit;
      (** Fired when the program instruction counter crosses a multiple of
          [interval_instrs]. *)
  mutable on_recompile : meth_id:int -> unit;
}

type t

val create :
  ?config:config ->
  ?faults:Ace_faults.Faults.t ->
  ?obs:Ace_obs.Obs.t ->
  Ace_isa.Program.t ->
  t
(** Build an engine for one run.  [faults] (default
    {!Ace_faults.Faults.none}) injects measurement noise/spikes into the
    per-invocation profiles handed to [on_method_exit] and jitter into the
    timer sampler; the engine's true clock and counters stay unperturbed.
    [obs] (default {!Ace_obs.Obs.null}) receives execution counters and, at
    [Full] level, phase enter/exit, promotion and recompilation events; the
    engine installs its instruction counter as the sink's clock.
    @raise Invalid_argument if the program fails validation. *)

val config : t -> config
val program : t -> Ace_isa.Program.t
val hooks : t -> hooks
val hierarchy : t -> Ace_mem.Hierarchy.t
val machine : t -> Ace_cpu.Machine.t
val db : t -> Do_database.t

val run : t -> unit
(** Execute the program's entry method once.  May be called once per
    engine. *)

(** {2 Checkpoint capture / restore}

    The engine executes with an explicit frame stack, so its complete
    execution position — including the statement index and remaining call
    repetitions of every in-flight invocation — is plain data.  [capture]
    may be called at any point (typically from the [on_interval] hook);
    [restore] overwrites a freshly created engine for the same program, and
    [resume] continues execution to completion bit-identically with the
    uninterrupted run. *)

(** One in-flight invocation: method, latched code quality, profile counter
    snapshots and the execution position within the body. *)
type frame_state = {
  fs_meth : int;
  fs_quality : float;
  fs_was_hotspot : bool;
  fs_saved_meth : int;
  fs_instrs0 : int;
  fs_cycles0 : float;
  fs_l1a0 : int;
  fs_l1m0 : int;
  fs_l2a0 : int;
  fs_l2m0 : int;
  fs_sample : int;
      (** 0 = plain, 1 = observed by the sampler, 2 = fast-forward root. *)
  fs_pos : int;
  fs_calls_left : int;
}

(** An in-flight fast-forward region, if a checkpoint lands inside one. *)
type ff_run_state = {
  ffs_instrs : int;
  ffs_cycles : float;
  ffs_counts : Ace_mem.Hierarchy.counts;
  ffs_start_cycles : float;
}

type state = {
  s_instrs : int;
  s_cycles : float;
  s_overhead_instrs : int;
  s_hot_instrs : int;
  s_next_sample_at : float;
  s_next_interval_at : int;
  s_current_meth : int;
  s_hotspot_depth : int;
  s_ilp_scale : float;
  s_exposure_scale : float;
  s_stack : frame_state array;  (** Outermost invocation first. *)
  s_rng : int64;
  s_cursors : Ace_isa.Pattern.cursor_state array;  (** Indexed by block id. *)
  s_db : Do_database.state;
  s_hier : Ace_mem.Hierarchy.state;
  s_ff : ff_run_state option;
}

val capture : t -> state

val restore : t -> state -> unit
(** Overwrite a fresh, not-yet-run engine (built with [create] from the same
    program and config) with a captured state.  Call after attaching the
    scheme, since schemes set ILP/exposure scales at attach time.
    @raise Invalid_argument if the engine already ran or the program shape
    differs. *)

val resume : t -> unit
(** Continue a [restore]d engine to completion.
    @raise Invalid_argument unless called on a freshly restored engine. *)

(** {2 Global counters} *)

val instrs : t -> int
(** Program instructions retired (excludes instrumentation stubs). *)

val cycles : t -> float
(** Total cycles, including stubs, JIT compilation and reconfiguration
    stalls. *)

val overhead_instrs : t -> int
(** Instrumentation + JIT instructions executed so far. *)

val hot_instrs : t -> int
(** Instructions retired while at least one already-promoted hotspot frame
    was on the call stack (Table 4's "% of code in hotspots"). *)

val ipc : t -> float

(** {2 Services for schemes} *)

val add_stall_cycles : t -> float -> unit
(** Charge stall cycles (e.g. a reconfiguration flush) to the global clock. *)

val charge_software_instrs : t -> int -> unit
(** Charge scheme software work (tuning logic) as overhead instructions. *)

val set_ilp_scale : t -> float -> unit
(** Scale the effective ILP of all subsequent blocks.  Models non-cache
    configurable units (e.g. a downsized issue queue); 1.0 initially. *)

val set_exposure_scale : t -> float -> unit
(** Scale the exposed fraction of memory-miss latency.  Models a resized
    reorder buffer: a smaller out-of-order window hides less of each miss;
    1.0 initially. *)

val ilp_scale : t -> float
val exposure_scale : t -> float
(** Current scale values (part of the sampler's hardware signature). *)

(** {2 Fast-forward sampling}

    An external sampler ({!Ace_sample.Sample}) can intercept candidate
    method entries.  For each it either observes the invocation (to build a
    phase-statistics record) or requests a fast-forward: the engine then
    runs the invocation with a functional-only model — DO database, pattern
    cursors, RNG stream and instruction counters advance exactly as a full
    simulation would, but no hierarchy accesses are performed.  At region
    end the memoized hierarchy counter deltas are spliced in, the clock is
    set to exactly [start + memoized cycles], and a [Phase_splice] event is
    recorded.  See DESIGN.md §Sampled simulation. *)

(** Memoized cost of one phase invocation, supplied by the sampler. *)
type ff_request = {
  ff_instrs : int;  (** Instructions the region will retire. *)
  ff_cycles : float;  (** Memoized cycle cost of the region. *)
  ff_counts : Ace_mem.Hierarchy.counts;  (** Memoized counter deltas. *)
}

type decision =
  | No_sample  (** Simulate normally; no region-end callback. *)
  | Observe  (** Simulate fully; fire [sc_exit ~ff:false] at region end. *)
  | Fast_forward of ff_request  (** Replay the memoized record. *)

type sample_ctl = {
  sc_decide : meth_id:int -> decision;
      (** Consulted at method entry, after the entry hook (so per-hotspot
          reconfiguration has been applied) — but never inside an active
          fast-forward region: regions do not nest. *)
  sc_exit : meth_id:int -> ff:bool -> unit;
      (** Fired once per [Observe]/[Fast_forward] decision, in LIFO order,
          at the exact point where the decided span ends (before the exit
          stub and profile — mirroring where it began). *)
}

val set_sample_ctl : t -> sample_ctl -> unit
(** Install the sampler callbacks.  At most one sampler per engine.
    @raise Invalid_argument if a sampler is already attached. *)

val in_fast_forward : t -> bool
(** True while a fast-forward region is active (schemes use this to defer
    reconfiguration decisions that would otherwise be based on replayed
    rather than simulated intervals). *)
