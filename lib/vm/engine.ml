module Rng = Ace_util.Rng
module Faults = Ace_faults.Faults
module Program = Ace_isa.Program
module Block = Ace_isa.Block
module Pattern = Ace_isa.Pattern
module Hierarchy = Ace_mem.Hierarchy
module Cache = Ace_mem.Cache

type config = {
  seed : int;
  hot_threshold : int;
  sample_period_cycles : float;
  sample_opt_threshold : int;
  quality_baseline : float;
  quality_optimized : float;
  compile_instrs_per_code_byte : int;
  interval_instrs : int option;
}

let default_config =
  {
    seed = 42;
    hot_threshold = 32;
    sample_period_cycles = 200_000.0;
    sample_opt_threshold = 2;
    quality_baseline = 0.55;
    quality_optimized = 1.0;
    compile_instrs_per_code_byte = 50;
    interval_instrs = None;
  }

type hooks = {
  mutable on_hotspot_promoted : meth_id:int -> unit;
  mutable on_method_entry : meth_id:int -> unit;
  mutable on_method_exit : meth_id:int -> Profile.t -> unit;
  mutable on_block : pc:int -> instrs:int -> count:int -> unit;
  mutable on_interval : total_instrs:int -> unit;
  mutable on_recompile : meth_id:int -> unit;
}

let no_hooks () =
  {
    on_hotspot_promoted = (fun ~meth_id:_ -> ());
    on_method_entry = (fun ~meth_id:_ -> ());
    on_method_exit = (fun ~meth_id:_ _ -> ());
    on_block = (fun ~pc:_ ~instrs:_ ~count:_ -> ());
    on_interval = (fun ~total_instrs:_ -> ());
    on_recompile = (fun ~meth_id:_ -> ());
  }

type t = {
  cfg : config;
  program : Program.t;
  hier : Hierarchy.t;
  timing : Ace_cpu.Timing.t;
  db : Do_database.t;
  hooks : hooks;
  rng : Rng.t;
  faults : Faults.t;
  cursors : Pattern.cursor array;  (* indexed by block id *)
  (* counters *)
  mutable n_instrs : int;
  mutable n_cycles : float;
  mutable n_overhead_instrs : int;
  mutable n_hot_instrs : int;
  (* sampler / interval state *)
  mutable next_sample_at : float;
  mutable next_interval_at : int;
  (* execution context *)
  mutable current_meth : int;
  mutable hotspot_depth : int;
  mutable ilp_scale : float;
  mutable exposure_scale : float;
  mutable ran : bool;
}

let create ?(config = default_config) ?(faults = Faults.none) program =
  (match Program.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.create: " ^ msg));
  let cursors = Array.make (Program.max_block_id program + 1) (Pattern.cursor (Pattern.Random_in { base = 0; extent = 1 })) in
  Program.iter_blocks program (fun b -> cursors.(b.Block.id) <- Pattern.cursor b.Block.pattern);
  {
    cfg = config;
    program;
    hier = Hierarchy.create ();
    timing = Ace_cpu.Timing.create Ace_cpu.Machine.default;
    db = Do_database.create ~methods:(Program.method_count program);
    hooks = no_hooks ();
    rng = Rng.create ~seed:config.seed;
    faults;
    cursors;
    n_instrs = 0;
    n_cycles = 0.0;
    n_overhead_instrs = 0;
    n_hot_instrs = 0;
    next_sample_at = config.sample_period_cycles;
    next_interval_at = (match config.interval_instrs with Some n -> n | None -> max_int);
    current_meth = program.Program.entry;
    hotspot_depth = 0;
    ilp_scale = 1.0;
    exposure_scale = 1.0;
    ran = false;
  }

let config t = t.cfg
let program t = t.program
let hooks t = t.hooks
let hierarchy t = t.hier
let machine t = Ace_cpu.Timing.machine t.timing
let db t = t.db
let instrs t = t.n_instrs
let cycles t = t.n_cycles
let overhead_instrs t = t.n_overhead_instrs
let hot_instrs t = t.n_hot_instrs
let ipc t = if t.n_cycles <= 0.0 then 0.0 else float_of_int t.n_instrs /. t.n_cycles

let add_stall_cycles t c = t.n_cycles <- t.n_cycles +. c

let set_ilp_scale t s =
  assert (s > 0.0);
  t.ilp_scale <- s

let set_exposure_scale t s =
  assert (s > 0.0);
  t.exposure_scale <- s

let charge_software_instrs t n =
  if n > 0 then begin
    t.n_overhead_instrs <- t.n_overhead_instrs + n;
    t.n_cycles <- t.n_cycles +. Ace_cpu.Timing.overhead_cycles t.timing ~instrs:n
  end

(* JIT recompilation: flips code quality and charges compile time. *)
let recompile t entry =
  let m = t.program.Program.methods.(entry.Do_database.meth_id) in
  entry.Do_database.compile_state <- Do_database.Optimized;
  charge_software_instrs t (m.Program.code_bytes * t.cfg.compile_instrs_per_code_byte);
  t.hooks.on_recompile ~meth_id:entry.Do_database.meth_id

let promote t entry =
  entry.Do_database.is_hotspot <- true;
  entry.Do_database.promoted_at_instr <- t.n_instrs;
  if entry.Do_database.compile_state = Do_database.Baseline then recompile t entry;
  t.hooks.on_hotspot_promoted ~meth_id:entry.Do_database.meth_id

(* Timer sampler: attribute a tick to the currently executing method and
   recompile long-runners, mirroring Jikes' 10 ms sampling recompilation. *)
let sampler_tick t =
  (* A fault injector can jitter the timer period (model (d)); with
     [Faults.none] this is exactly [sample_period_cycles]. *)
  t.next_sample_at <-
    t.next_sample_at
    +. Faults.jitter_period t.faults ~period:t.cfg.sample_period_cycles;
  let entry = Do_database.entry t.db t.current_meth in
  entry.Do_database.samples <- entry.Do_database.samples + 1;
  if
    entry.Do_database.samples >= t.cfg.sample_opt_threshold
    && entry.Do_database.compile_state = Do_database.Baseline
  then recompile t entry

let fire_interval t =
  while t.n_instrs >= t.next_interval_at do
    t.hooks.on_interval ~total_instrs:t.next_interval_at;
    t.next_interval_at <-
      t.next_interval_at
      + (match t.cfg.interval_instrs with Some n -> n | None -> max_int)
  done

let exec_block t (b : Block.t) count quality =
  let l1_hit = (Hierarchy.latencies t.hier).Hierarchy.l1_hit in
  let cursor = t.cursors.(b.Block.id) in
  let penalty = ref 0 in
  (* One representative I-fetch probe per batch (see DESIGN.md). *)
  penalty := !penalty + (Hierarchy.ifetch t.hier ~pc:b.Block.pc - l1_hit);
  for _rep = 1 to count do
    for _ld = 1 to b.Block.loads do
      let addr = Pattern.next cursor ~rng:t.rng in
      penalty := !penalty + (Hierarchy.data_access t.hier ~addr ~write:false - l1_hit)
    done;
    for _st = 1 to b.Block.stores do
      let addr = Pattern.next cursor ~rng:t.rng in
      penalty := !penalty + (Hierarchy.data_access t.hier ~addr ~write:true - l1_hit)
    done
  done;
  let batch_instrs = b.Block.instrs * count in
  let c =
    Ace_cpu.Timing.block_cycles t.timing ~instrs:batch_instrs
      ~ilp:(b.Block.ilp *. t.ilp_scale) ~quality
      ~exposed_mem_cycles:
        (int_of_float (float_of_int !penalty *. t.exposure_scale))
      ~mispredict_rate:b.Block.mispredict_rate
  in
  t.n_instrs <- t.n_instrs + batch_instrs;
  t.n_cycles <- t.n_cycles +. c;
  if t.hotspot_depth > 0 then t.n_hot_instrs <- t.n_hot_instrs + batch_instrs;
  t.hooks.on_block ~pc:b.Block.pc ~instrs:b.Block.instrs ~count;
  if t.n_cycles >= t.next_sample_at then sampler_tick t;
  if t.n_instrs >= t.next_interval_at then fire_interval t

let rec run_method t meth_id =
  let entry = Do_database.entry t.db meth_id in
  entry.Do_database.invocations <- entry.Do_database.invocations + 1;
  if (not entry.Do_database.is_hotspot) && entry.Do_database.invocations >= t.cfg.hot_threshold
  then promote t entry;
  let was_hotspot_at_entry = entry.Do_database.is_hotspot in
  charge_software_instrs t entry.Do_database.entry_overhead;
  t.hooks.on_method_entry ~meth_id;
  (* Snapshot for the invocation profile (after the entry stub so stub cost
     stays out of the tuner's IPC measurements). *)
  let instrs0 = t.n_instrs in
  let cycles0 = t.n_cycles in
  let l1d = Hierarchy.l1d t.hier and l2 = Hierarchy.l2 t.hier in
  let l1a0 = Cache.Stats.accesses l1d and l1m0 = Cache.Stats.misses l1d in
  let l2a0 = Cache.Stats.accesses l2 and l2m0 = Cache.Stats.misses l2 in
  if was_hotspot_at_entry then t.hotspot_depth <- t.hotspot_depth + 1;
  let saved_meth = t.current_meth in
  t.current_meth <- meth_id;
  let quality =
    match entry.Do_database.compile_state with
    | Do_database.Baseline -> t.cfg.quality_baseline
    | Do_database.Optimized -> t.cfg.quality_optimized
  in
  List.iter
    (function
      | Program.Exec (b, n) -> exec_block t b n quality
      | Program.Call (callee, n) ->
          for _i = 1 to n do
            run_method t callee;
            t.current_meth <- meth_id
          done)
    t.program.Program.methods.(meth_id).Program.body;
  t.current_meth <- saved_meth;
  if was_hotspot_at_entry then t.hotspot_depth <- t.hotspot_depth - 1;
  (* Measurement-path fault model (c): the invocation's *observed* cycle
     count can carry multiplicative noise and outlier spikes.  Only the
     profile handed to instrumentation consumers is perturbed; the global
     clock stays truthful. *)
  let observed_cycles = Faults.perturb_cycles t.faults ~cycles:(t.n_cycles -. cycles0) in
  let profile =
    {
      Profile.instrs = t.n_instrs - instrs0;
      cycles = observed_cycles;
      l1d_accesses = Cache.Stats.accesses l1d - l1a0;
      l1d_misses = Cache.Stats.misses l1d - l1m0;
      l2_accesses = Cache.Stats.accesses l2 - l2a0;
      l2_misses = Cache.Stats.misses l2 - l2m0;
    }
  in
  Ace_util.Stats.Ema.add entry.Do_database.size_ema (float_of_int profile.Profile.instrs);
  if entry.Do_database.is_hotspot then
    Ace_util.Stats.Running.add entry.Do_database.ipc_profile (Profile.ipc profile)
  else
    entry.Do_database.pre_promotion_instrs <-
      entry.Do_database.pre_promotion_instrs + profile.Profile.instrs;
  charge_software_instrs t entry.Do_database.exit_overhead;
  t.hooks.on_method_exit ~meth_id profile

let run t =
  if t.ran then invalid_arg "Engine.run: engine already ran";
  t.ran <- true;
  run_method t t.program.Program.entry
