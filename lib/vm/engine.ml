module Rng = Ace_util.Rng
module Faults = Ace_faults.Faults
module Program = Ace_isa.Program
module Block = Ace_isa.Block
module Pattern = Ace_isa.Pattern
module Hierarchy = Ace_mem.Hierarchy
module Cache = Ace_mem.Cache
module Obs = Ace_obs.Obs

type config = {
  seed : int;
  hot_threshold : int;
  sample_period_cycles : float;
  sample_opt_threshold : int;
  quality_baseline : float;
  quality_optimized : float;
  compile_instrs_per_code_byte : int;
  interval_instrs : int option;
}

let default_config =
  {
    seed = 42;
    hot_threshold = 32;
    sample_period_cycles = 200_000.0;
    sample_opt_threshold = 2;
    quality_baseline = 0.55;
    quality_optimized = 1.0;
    compile_instrs_per_code_byte = 50;
    interval_instrs = None;
  }

type hooks = {
  mutable on_hotspot_promoted : meth_id:int -> unit;
  mutable on_method_entry : meth_id:int -> unit;
  mutable on_method_exit : meth_id:int -> Profile.t -> unit;
  mutable on_block : pc:int -> instrs:int -> count:int -> unit;
  mutable on_interval : total_instrs:int -> unit;
  mutable on_recompile : meth_id:int -> unit;
}

let no_hooks () =
  {
    on_hotspot_promoted = (fun ~meth_id:_ -> ());
    on_method_entry = (fun ~meth_id:_ -> ());
    on_method_exit = (fun ~meth_id:_ _ -> ());
    on_block = (fun ~pc:_ ~instrs:_ ~count:_ -> ());
    on_interval = (fun ~total_instrs:_ -> ());
    on_recompile = (fun ~meth_id:_ -> ());
  }

(* Fast-forward sampling: an external sampler (ace_sample) can intercept
   method entries.  For each candidate invocation it either observes
   (measures the invocation for its phase-statistics cache) or requests a
   fast-forward: the engine then executes the invocation with a
   functional-only model — architectural state (DO DB, pattern cursors, RNG
   stream, instruction counts) advances exactly as a full simulation would,
   but no cache accesses are performed; cycles are paced by the memoized
   per-instruction rate and the hierarchy counters are spliced from the
   memoized record at region end.  See DESIGN.md §Sampled simulation. *)
type ff_request = {
  ff_instrs : int;  (* instructions the region will retire *)
  ff_cycles : float;  (* memoized cycle cost of the region *)
  ff_counts : Hierarchy.counts;  (* memoized hierarchy counter deltas *)
}

type decision = No_sample | Observe | Fast_forward of ff_request

type sample_ctl = {
  sc_decide : meth_id:int -> decision;
  sc_exit : meth_id:int -> ff:bool -> unit;
      (* Region end, fired once per [Observe]/[Fast_forward] decision in
         LIFO order, at the exact point the observed span ends (before the
         exit stub and profile, mirroring where the span began). *)
}

(* An active fast-forward region (the dynamic extent of one
   [Fast_forward] decision). *)
type ff_run = {
  fr_instrs : int;
  fr_cycles : float;
  fr_counts : Hierarchy.counts;
  fr_start_cycles : float;  (* n_cycles when the region began *)
  fr_cpi : float;  (* pacing rate for sampler/interval interleaving *)
}

(* One invocation in flight.  The engine executes with an explicit frame
   stack rather than OCaml recursion so that the complete execution position
   is plain data: a checkpoint taken between any two statements can rebuild
   the stack and continue bit-identically (see DESIGN.md §Checkpointing). *)
type frame = {
  f_meth : int;
  f_quality : float;  (* code quality latched at entry *)
  f_was_hotspot : bool;
  f_saved_meth : int;  (* current_meth to restore at exit *)
  (* Counter snapshots for the invocation profile. *)
  f_instrs0 : int;
  f_cycles0 : float;
  f_l1a0 : int;
  f_l1m0 : int;
  f_l2a0 : int;
  f_l2m0 : int;
  f_sample : int;  (* 0 = plain, 1 = observed, 2 = fast-forward root *)
  mutable f_pos : int;  (* index of the next statement in the body *)
  mutable f_calls_left : int;  (* remaining reps of the Call at f_pos - 1; 0 = none *)
}

type t = {
  cfg : config;
  program : Program.t;
  bodies : Program.stmt array array;  (* per-method body, array-indexed *)
  hier : Hierarchy.t;
  timing : Ace_cpu.Timing.t;
  db : Do_database.t;
  hooks : hooks;
  rng : Rng.t;
  faults : Faults.t;
  cursors : Pattern.cursor array;  (* indexed by block id *)
  mutable addr_buf : int array;  (* exec_block batch scratch; not checkpointed *)
  (* counters *)
  mutable n_instrs : int;
  mutable n_cycles : float;
  mutable n_overhead_instrs : int;
  mutable n_hot_instrs : int;
  (* sampler / interval state *)
  mutable next_sample_at : float;
  mutable next_interval_at : int;
  (* execution context *)
  mutable current_meth : int;
  mutable hotspot_depth : int;
  mutable ilp_scale : float;
  mutable exposure_scale : float;
  mutable stack : frame list;  (* innermost invocation first *)
  mutable sample_ctl : sample_ctl option;
  mutable ff : ff_run option;  (* active fast-forward region, if any *)
  mutable ran : bool;
  mutable restored : bool;
  obs : Obs.t;
  m_entries : Obs.counter;
  m_promotions : Obs.counter;
  m_recompiles : Obs.counter;
  m_samples : Obs.counter;
  m_intervals : Obs.counter;
}

let create ?(config = default_config) ?(faults = Faults.none) ?(obs = Obs.null)
    program =
  (match Program.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.create: " ^ msg));
  let cursors = Array.make (Program.max_block_id program + 1) (Pattern.cursor (Pattern.Random_in { base = 0; extent = 1 })) in
  Program.iter_blocks program (fun b -> cursors.(b.Block.id) <- Pattern.cursor b.Block.pattern);
  let bodies =
    Array.map (fun m -> Array.of_list m.Program.body) program.Program.methods
  in
  let t =
  {
    cfg = config;
    program;
    bodies;
    hier = Hierarchy.create ~obs ();
    timing = Ace_cpu.Timing.create Ace_cpu.Machine.default;
    db = Do_database.create ~methods:(Program.method_count program);
    hooks = no_hooks ();
    rng = Rng.create ~seed:config.seed;
    faults;
    cursors;
    addr_buf = [||];
    n_instrs = 0;
    n_cycles = 0.0;
    n_overhead_instrs = 0;
    n_hot_instrs = 0;
    next_sample_at = config.sample_period_cycles;
    next_interval_at = (match config.interval_instrs with Some n -> n | None -> max_int);
    current_meth = program.Program.entry;
    hotspot_depth = 0;
    ilp_scale = 1.0;
    exposure_scale = 1.0;
    stack = [];
    sample_ctl = None;
    ff = None;
    ran = false;
    restored = false;
    obs;
    m_entries = Obs.counter obs "engine.method_entries";
    m_promotions = Obs.counter obs "engine.hotspot_promotions";
    m_recompiles = Obs.counter obs "engine.recompiles";
    m_samples = Obs.counter obs "engine.sampler_ticks";
    m_intervals = Obs.counter obs "engine.intervals";
  }
  in
  (* All observability timestamps share the engine's instruction counter
     (monotone by construction), giving one clock for the whole timeline. *)
  Obs.set_clock obs (fun () -> t.n_instrs);
  t

let config t = t.cfg
let program t = t.program
let hooks t = t.hooks
let hierarchy t = t.hier
let machine t = Ace_cpu.Timing.machine t.timing
let db t = t.db
let instrs t = t.n_instrs
let cycles t = t.n_cycles
let overhead_instrs t = t.n_overhead_instrs
let hot_instrs t = t.n_hot_instrs
let ipc t = if t.n_cycles <= 0.0 then 0.0 else float_of_int t.n_instrs /. t.n_cycles

let add_stall_cycles t c = t.n_cycles <- t.n_cycles +. c

let set_sample_ctl t ctl =
  (match t.sample_ctl with
  | Some _ -> invalid_arg "Engine.set_sample_ctl: sampler already attached"
  | None -> ());
  t.sample_ctl <- Some ctl

let in_fast_forward t = match t.ff with Some _ -> true | None -> false
let ilp_scale t = t.ilp_scale
let exposure_scale t = t.exposure_scale

let set_ilp_scale t s =
  assert (s > 0.0);
  t.ilp_scale <- s

let set_exposure_scale t s =
  assert (s > 0.0);
  t.exposure_scale <- s

let charge_software_instrs t n =
  if n > 0 then begin
    t.n_overhead_instrs <- t.n_overhead_instrs + n;
    t.n_cycles <- t.n_cycles +. Ace_cpu.Timing.overhead_cycles t.timing ~instrs:n
  end

(* JIT recompilation: flips code quality and charges compile time. *)
let recompile t entry =
  let m = t.program.Program.methods.(entry.Do_database.meth_id) in
  entry.Do_database.compile_state <- Do_database.Optimized;
  charge_software_instrs t (m.Program.code_bytes * t.cfg.compile_instrs_per_code_byte);
  Obs.incr t.obs t.m_recompiles;
  if Obs.tracing t.obs then
    Obs.record t.obs (Obs.Recompile { id = entry.Do_database.meth_id });
  t.hooks.on_recompile ~meth_id:entry.Do_database.meth_id

let promote t entry =
  entry.Do_database.is_hotspot <- true;
  entry.Do_database.promoted_at_instr <- t.n_instrs;
  Obs.incr t.obs t.m_promotions;
  if Obs.tracing t.obs then
    Obs.record t.obs
      (Obs.Hotspot_promoted
         {
           id = entry.Do_database.meth_id;
           name = t.program.Program.methods.(entry.Do_database.meth_id).Program.name;
         });
  if entry.Do_database.compile_state = Do_database.Baseline then recompile t entry;
  t.hooks.on_hotspot_promoted ~meth_id:entry.Do_database.meth_id

(* Timer sampler: attribute a tick to the currently executing method and
   recompile long-runners, mirroring Jikes' 10 ms sampling recompilation. *)
let sampler_tick t =
  (* A fault injector can jitter the timer period (model (d)); with
     [Faults.none] this is exactly [sample_period_cycles]. *)
  t.next_sample_at <-
    t.next_sample_at
    +. Faults.jitter_period t.faults ~period:t.cfg.sample_period_cycles;
  Obs.incr t.obs t.m_samples;
  let entry = Do_database.entry t.db t.current_meth in
  entry.Do_database.samples <- entry.Do_database.samples + 1;
  if
    entry.Do_database.samples >= t.cfg.sample_opt_threshold
    && entry.Do_database.compile_state = Do_database.Baseline
  then recompile t entry

let fire_interval t =
  while t.n_instrs >= t.next_interval_at do
    (* Advance the boundary *before* invoking the hook: a checkpoint taken
       inside the hook then resumes past this interval instead of re-firing
       it.  The hook still observes the boundary it crossed. *)
    let boundary = t.next_interval_at in
    t.next_interval_at <-
      boundary + (match t.cfg.interval_instrs with Some n -> n | None -> max_int);
    Obs.incr t.obs t.m_intervals;
    t.hooks.on_interval ~total_instrs:boundary
  done

(* Target batch size for [exec_block]'s address buffer: large enough to
   amortize the per-batch dispatch, small enough that the scratch stays a
   few dozen KB per engine. *)
let batch_target = 4096

let exec_block t (b : Block.t) count quality =
  let l1_hit = (Hierarchy.latencies t.hier).Hierarchy.l1_hit in
  let cursor = t.cursors.(b.Block.id) in
  let penalty = ref 0 in
  (* One representative I-fetch probe per batch (see DESIGN.md). *)
  penalty := !penalty + (Hierarchy.ifetch t.hier ~pc:b.Block.pc - l1_hit);
  (* Data accesses run batched: addresses for whole repetitions of the
     block's loads-then-stores shape are generated in one [Pattern]
     dispatch, then pushed through the hierarchy in dense passes.  Chunks
     are whole repetitions so the positional write flag stays aligned; the
     address sequence, structure state and counters are byte-identical to
     the per-access loop this replaces (see Hierarchy.data_access_batch). *)
  let per_rep = b.Block.loads + b.Block.stores in
  if per_rep > 0 && count > 0 then begin
    let chunk_reps = max 1 (batch_target / per_rep) in
    let buf_need = min count chunk_reps * per_rep in
    if Array.length t.addr_buf < buf_need then
      t.addr_buf <- Array.make (max buf_need (2 * Array.length t.addr_buf)) 0;
    let reps_left = ref count in
    while !reps_left > 0 do
      let reps = min !reps_left chunk_reps in
      reps_left := !reps_left - reps;
      let n = reps * per_rep in
      Pattern.next_batch cursor ~rng:t.rng t.addr_buf ~pos:0 ~n;
      penalty :=
        !penalty
        + Hierarchy.data_access_batch t.hier ~addrs:t.addr_buf ~n
            ~loads:b.Block.loads ~stores:b.Block.stores
    done
  end;
  let batch_instrs = b.Block.instrs * count in
  let c =
    Ace_cpu.Timing.block_cycles t.timing ~instrs:batch_instrs
      ~ilp:(b.Block.ilp *. t.ilp_scale) ~quality
      ~exposed_mem_cycles:
        (int_of_float (float_of_int !penalty *. t.exposure_scale))
      ~mispredict_rate:b.Block.mispredict_rate
  in
  t.n_instrs <- t.n_instrs + batch_instrs;
  t.n_cycles <- t.n_cycles +. c;
  if t.hotspot_depth > 0 then t.n_hot_instrs <- t.n_hot_instrs + batch_instrs;
  t.hooks.on_block ~pc:b.Block.pc ~instrs:b.Block.instrs ~count;
  if t.n_cycles >= t.next_sample_at then sampler_tick t;
  if t.n_instrs >= t.next_interval_at then fire_interval t

(* Functional-only execution of a block batch inside a fast-forward region:
   the pattern cursor and RNG advance exactly as [exec_block] would have
   moved them (so architectural state stays bit-identical to a full run),
   but no hierarchy accesses are performed; cycles are paced by the
   memoized per-instruction rate.  Block, sampler and interval hooks still
   fire so BBV vectors, sampler attribution and checkpoint cadence match
   the full-simulation structure. *)
let exec_block_ff t (b : Block.t) count cpi =
  let cursor = t.cursors.(b.Block.id) in
  Pattern.skip cursor ~rng:t.rng (count * (b.Block.loads + b.Block.stores));
  let batch_instrs = b.Block.instrs * count in
  t.n_instrs <- t.n_instrs + batch_instrs;
  t.n_cycles <- t.n_cycles +. (cpi *. float_of_int batch_instrs);
  if t.hotspot_depth > 0 then t.n_hot_instrs <- t.n_hot_instrs + batch_instrs;
  t.hooks.on_block ~pc:b.Block.pc ~instrs:b.Block.instrs ~count;
  if t.n_cycles >= t.next_sample_at then sampler_tick t;
  if t.n_instrs >= t.next_interval_at then fire_interval t

(* Method entry: all the invocation-start work of the old recursive
   interpreter, then push a frame.  Operation order is load-bearing — tests
   assert exact counter values — so it mirrors the recursion exactly:
   invocation count, promotion check, hotspot latch, entry stub, entry hook,
   profile snapshot, depth/context update, quality latch. *)
let enter t meth_id =
  Obs.incr t.obs t.m_entries;
  let entry = Do_database.entry t.db meth_id in
  entry.Do_database.invocations <- entry.Do_database.invocations + 1;
  if (not entry.Do_database.is_hotspot) && entry.Do_database.invocations >= t.cfg.hot_threshold
  then promote t entry;
  let was_hotspot_at_entry = entry.Do_database.is_hotspot in
  charge_software_instrs t entry.Do_database.entry_overhead;
  t.hooks.on_method_entry ~meth_id;
  (* Fast-forward decision point: after the entry hook (so any per-hotspot
     reconfiguration has been applied and the sampler sees the hardware the
     invocation will actually run under) and before the profile snapshot,
     so both an observed span and a replayed span cover exactly
     [here, top of exit_frame).  Never consulted inside an active region:
     regions do not nest. *)
  let f_sample =
    match t.sample_ctl with
    | None -> 0
    | Some _ when in_fast_forward t -> 0
    | Some ctl -> (
        match ctl.sc_decide ~meth_id with
        | No_sample -> 0
        | Observe -> 1
        | Fast_forward req ->
            t.ff <-
              Some
                {
                  fr_instrs = req.ff_instrs;
                  fr_cycles = req.ff_cycles;
                  fr_counts = req.ff_counts;
                  fr_start_cycles = t.n_cycles;
                  fr_cpi =
                    (if req.ff_instrs > 0 then
                       req.ff_cycles /. float_of_int req.ff_instrs
                     else 0.0);
                };
            2)
  in
  (* Snapshot for the invocation profile (after the entry stub so stub cost
     stays out of the tuner's IPC measurements). *)
  let l1d = Hierarchy.l1d t.hier and l2 = Hierarchy.l2 t.hier in
  let fr =
    {
      f_meth = meth_id;
      f_quality =
        (match entry.Do_database.compile_state with
        | Do_database.Baseline -> t.cfg.quality_baseline
        | Do_database.Optimized -> t.cfg.quality_optimized);
      f_was_hotspot = was_hotspot_at_entry;
      f_saved_meth = t.current_meth;
      f_instrs0 = t.n_instrs;
      f_cycles0 = t.n_cycles;
      f_l1a0 = Cache.Stats.accesses l1d;
      f_l1m0 = Cache.Stats.misses l1d;
      f_l2a0 = Cache.Stats.accesses l2;
      f_l2m0 = Cache.Stats.misses l2;
      f_sample;
      f_pos = 0;
      f_calls_left = 0;
    }
  in
  if was_hotspot_at_entry then t.hotspot_depth <- t.hotspot_depth + 1;
  (* Only promoted methods are "phases" on the timeline; cold entries would
     swamp the ring without saying anything about adaptation. *)
  if was_hotspot_at_entry && Obs.tracing t.obs then
    Obs.record t.obs
      (Obs.Phase_enter
         { id = meth_id; name = t.program.Program.methods.(meth_id).Program.name });
  t.current_meth <- meth_id;
  t.stack <- fr :: t.stack

(* Method exit: the invocation-end work, after the frame has been popped.

   Sampled regions end here, *before* the exit stub and profile: a
   fast-forward root splices its memoized hierarchy deltas and forces the
   clock to exactly [start + memoized cycles] (pacing drift and nested stub
   charges inside the region are discarded), so the region's total cost is
   the memoized record regardless of how sampler/interval hooks interleaved
   with it. *)
let exit_frame t fr =
  (match fr.f_sample with
  | 2 -> (
      match t.ff with
      | Some f ->
          t.n_cycles <- f.fr_start_cycles +. f.fr_cycles;
          Hierarchy.splice t.hier f.fr_counts;
          t.ff <- None;
          if Obs.tracing t.obs then
            Obs.record t.obs
              (Obs.Phase_splice { id = fr.f_meth; instrs = f.fr_instrs });
          (match t.sample_ctl with
          | Some c -> c.sc_exit ~meth_id:fr.f_meth ~ff:true
          | None -> ())
      | None -> assert false)
  | 1 -> (
      match t.sample_ctl with
      | Some c -> c.sc_exit ~meth_id:fr.f_meth ~ff:false
      | None -> ())
  | _ -> ());
  let entry = Do_database.entry t.db fr.f_meth in
  t.current_meth <- fr.f_saved_meth;
  if fr.f_was_hotspot then t.hotspot_depth <- t.hotspot_depth - 1;
  (* Measurement-path fault model (c): the invocation's *observed* cycle
     count can carry multiplicative noise and outlier spikes.  Only the
     profile handed to instrumentation consumers is perturbed; the global
     clock stays truthful. *)
  let observed_cycles =
    Faults.perturb_cycles t.faults ~cycles:(t.n_cycles -. fr.f_cycles0)
  in
  let l1d = Hierarchy.l1d t.hier and l2 = Hierarchy.l2 t.hier in
  let profile =
    {
      Profile.instrs = t.n_instrs - fr.f_instrs0;
      cycles = observed_cycles;
      l1d_accesses = Cache.Stats.accesses l1d - fr.f_l1a0;
      l1d_misses = Cache.Stats.misses l1d - fr.f_l1m0;
      l2_accesses = Cache.Stats.accesses l2 - fr.f_l2a0;
      l2_misses = Cache.Stats.misses l2 - fr.f_l2m0;
    }
  in
  Ace_util.Stats.Ema.add entry.Do_database.size_ema (float_of_int profile.Profile.instrs);
  if entry.Do_database.is_hotspot then
    Ace_util.Stats.Running.add entry.Do_database.ipc_profile (Profile.ipc profile)
  else
    entry.Do_database.pre_promotion_instrs <-
      entry.Do_database.pre_promotion_instrs + profile.Profile.instrs;
  if fr.f_was_hotspot && Obs.tracing t.obs then
    Obs.record t.obs
      (Obs.Phase_exit { id = fr.f_meth; ipc = Profile.ipc profile });
  charge_software_instrs t entry.Do_database.exit_overhead;
  t.hooks.on_method_exit ~meth_id:fr.f_meth profile

(* Execute one scheduling unit: a statement of the innermost frame, one
   repetition of a pending call, or a method return.  The recursion's
   redundant [current_meth <- meth_id] after each callee return is subsumed
   by the callee's own restore of [f_saved_meth]. *)
let step t =
  match t.stack with
  | [] -> ()
  | fr :: rest ->
      let body = t.bodies.(fr.f_meth) in
      if fr.f_calls_left > 0 then (
        fr.f_calls_left <- fr.f_calls_left - 1;
        match body.(fr.f_pos - 1) with
        | Program.Call (callee, _) -> enter t callee
        | Program.Exec _ -> assert false)
      else if fr.f_pos >= Array.length body then (
        t.stack <- rest;
        exit_frame t fr)
      else begin
        let st = body.(fr.f_pos) in
        fr.f_pos <- fr.f_pos + 1;
        match st with
        | Program.Exec (b, n) -> (
            match t.ff with
            | Some f -> exec_block_ff t b n f.fr_cpi
            | None -> exec_block t b n fr.f_quality)
        | Program.Call (callee, n) ->
            if n > 0 then begin
              fr.f_calls_left <- n - 1;
              enter t callee
            end
      end

let step_to_completion t = while t.stack <> [] do step t done

let run t =
  if t.ran then invalid_arg "Engine.run: engine already ran";
  t.ran <- true;
  enter t t.program.Program.entry;
  step_to_completion t

let resume t =
  if not t.restored then
    invalid_arg "Engine.resume: engine holds no restored checkpoint state";
  t.restored <- false;
  step_to_completion t

(* {2 Checkpoint state} *)

type frame_state = {
  fs_meth : int;
  fs_quality : float;
  fs_was_hotspot : bool;
  fs_saved_meth : int;
  fs_instrs0 : int;
  fs_cycles0 : float;
  fs_l1a0 : int;
  fs_l1m0 : int;
  fs_l2a0 : int;
  fs_l2m0 : int;
  fs_sample : int;
  fs_pos : int;
  fs_calls_left : int;
}

(* An in-flight fast-forward region ([fr_cpi] is derived, not stored). *)
type ff_run_state = {
  ffs_instrs : int;
  ffs_cycles : float;
  ffs_counts : Hierarchy.counts;
  ffs_start_cycles : float;
}

type state = {
  s_instrs : int;
  s_cycles : float;
  s_overhead_instrs : int;
  s_hot_instrs : int;
  s_next_sample_at : float;
  s_next_interval_at : int;
  s_current_meth : int;
  s_hotspot_depth : int;
  s_ilp_scale : float;
  s_exposure_scale : float;
  s_stack : frame_state array;  (* outermost invocation first *)
  s_rng : int64;
  s_cursors : Pattern.cursor_state array;
  s_db : Do_database.state;
  s_hier : Hierarchy.state;
  s_ff : ff_run_state option;
}

let frame_to_state fr =
  {
    fs_meth = fr.f_meth;
    fs_quality = fr.f_quality;
    fs_was_hotspot = fr.f_was_hotspot;
    fs_saved_meth = fr.f_saved_meth;
    fs_instrs0 = fr.f_instrs0;
    fs_cycles0 = fr.f_cycles0;
    fs_l1a0 = fr.f_l1a0;
    fs_l1m0 = fr.f_l1m0;
    fs_l2a0 = fr.f_l2a0;
    fs_l2m0 = fr.f_l2m0;
    fs_sample = fr.f_sample;
    fs_pos = fr.f_pos;
    fs_calls_left = fr.f_calls_left;
  }

let frame_of_state fs =
  {
    f_meth = fs.fs_meth;
    f_quality = fs.fs_quality;
    f_was_hotspot = fs.fs_was_hotspot;
    f_saved_meth = fs.fs_saved_meth;
    f_instrs0 = fs.fs_instrs0;
    f_cycles0 = fs.fs_cycles0;
    f_l1a0 = fs.fs_l1a0;
    f_l1m0 = fs.fs_l1m0;
    f_l2a0 = fs.fs_l2a0;
    f_l2m0 = fs.fs_l2m0;
    f_sample = fs.fs_sample;
    f_pos = fs.fs_pos;
    f_calls_left = fs.fs_calls_left;
  }

let capture t =
  {
    s_instrs = t.n_instrs;
    s_cycles = t.n_cycles;
    s_overhead_instrs = t.n_overhead_instrs;
    s_hot_instrs = t.n_hot_instrs;
    s_next_sample_at = t.next_sample_at;
    s_next_interval_at = t.next_interval_at;
    s_current_meth = t.current_meth;
    s_hotspot_depth = t.hotspot_depth;
    s_ilp_scale = t.ilp_scale;
    s_exposure_scale = t.exposure_scale;
    s_stack = Array.of_list (List.rev_map frame_to_state t.stack);
    s_rng = Rng.to_state t.rng;
    s_cursors = Array.map Pattern.capture t.cursors;
    s_db = Do_database.capture t.db;
    s_hier = Hierarchy.capture t.hier;
    s_ff =
      (match t.ff with
      | None -> None
      | Some f ->
          Some
            {
              ffs_instrs = f.fr_instrs;
              ffs_cycles = f.fr_cycles;
              ffs_counts = f.fr_counts;
              ffs_start_cycles = f.fr_start_cycles;
            });
  }

let restore t s =
  if t.ran then invalid_arg "Engine.restore: engine already ran";
  if Array.length s.s_cursors <> Array.length t.cursors then
    invalid_arg "Engine.restore: block count mismatch";
  t.n_instrs <- s.s_instrs;
  t.n_cycles <- s.s_cycles;
  t.n_overhead_instrs <- s.s_overhead_instrs;
  t.n_hot_instrs <- s.s_hot_instrs;
  t.next_sample_at <- s.s_next_sample_at;
  t.next_interval_at <- s.s_next_interval_at;
  t.current_meth <- s.s_current_meth;
  t.hotspot_depth <- s.s_hotspot_depth;
  t.ilp_scale <- s.s_ilp_scale;
  t.exposure_scale <- s.s_exposure_scale;
  t.stack <-
    Array.fold_left (fun acc fs -> frame_of_state fs :: acc) [] s.s_stack;
  Rng.set_state t.rng s.s_rng;
  Array.iteri (fun i cs -> Pattern.restore t.cursors.(i) cs) s.s_cursors;
  Do_database.restore t.db s.s_db;
  Hierarchy.restore t.hier s.s_hier;
  t.ff <-
    (match s.s_ff with
    | None -> None
    | Some fs ->
        Some
          {
            fr_instrs = fs.ffs_instrs;
            fr_cycles = fs.ffs_cycles;
            fr_counts = fs.ffs_counts;
            fr_start_cycles = fs.ffs_start_cycles;
            fr_cpi =
              (if fs.ffs_instrs > 0 then
                 fs.ffs_cycles /. float_of_int fs.ffs_instrs
               else 0.0);
          });
  t.ran <- true;
  t.restored <- true
