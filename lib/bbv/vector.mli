(** Basic block vector accumulator (Sherwood et al., as configured in §4.1 of
    the paper): an array of 32 uncompressed 24-bit saturating counters,
    indexed by branch-PC bits above the 2 least significant.  Each executed
    basic block adds its instruction count to its bucket; at the end of a
    sampling interval the vector is normalized and compared against stored
    phase signatures with the Manhattan distance. *)

type t

val create : ?buckets:int -> unit -> t
(** Default 32 buckets. *)

val buckets : t -> int

val add : t -> pc:int -> instrs:int -> unit
(** Credit [instrs] to the bucket of the block whose branch is at [pc];
    saturates at 2^24 - 1. *)

val snapshot : t -> float array
(** L1-normalized copy of the counters (sums to 1 unless empty). *)

val clear : t -> unit

val is_empty : t -> bool

(** Accumulator contents, for checkpoint serialization. *)
type state = { s_counters : int array; s_total : int }

val capture : t -> state

val restore : t -> state -> unit
(** @raise Invalid_argument if the bucket counts differ. *)
