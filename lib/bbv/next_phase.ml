type t = {
  min_count : int;
  min_confidence : float;
  transitions : (int, (int, int ref) Hashtbl.t) Hashtbl.t;
  mutable n_predictions : int;
  mutable n_correct : int;
}

let create ?(min_count = 2) ?(min_confidence = 0.6) () =
  {
    min_count;
    min_confidence;
    transitions = Hashtbl.create 32;
    n_predictions = 0;
    n_correct = 0;
  }

let successors t prev =
  match Hashtbl.find_opt t.transitions prev with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.add t.transitions prev tbl;
      tbl

let observe t ~prev ~next =
  let tbl = successors t prev in
  match Hashtbl.find_opt tbl next with
  | Some r -> incr r
  | None -> Hashtbl.add tbl next (ref 1)

let predict t ~current =
  match Hashtbl.find_opt t.transitions current with
  | None -> None
  | Some tbl ->
      let total = ref 0 and best = ref (-1) and best_count = ref 0 in
      Hashtbl.iter
        (fun next count ->
          total := !total + !count;
          if !count > !best_count then begin
            best_count := !count;
            best := next
          end)
        tbl;
      if
        !best >= 0 && !best_count >= t.min_count
        && float_of_int !best_count
           >= t.min_confidence *. float_of_int !total
      then Some !best
      else None

let record_outcome t ~predicted ~actual =
  match predicted with
  | None -> ()
  | Some p ->
      t.n_predictions <- t.n_predictions + 1;
      if p = actual then t.n_correct <- t.n_correct + 1

let predictions t = t.n_predictions
let correct t = t.n_correct

let accuracy t =
  if t.n_predictions = 0 then 0.0
  else float_of_int t.n_correct /. float_of_int t.n_predictions

(* Transition rows sorted by phase id (and successors by id within a row):
   hashtable iteration order is an artifact, and checkpoint bytes must be a
   pure function of the tracker's logical state. *)
type state = {
  s_transitions : (int * (int * int) array) array;
  s_n_predictions : int;
  s_n_correct : int;
}

let capture t =
  let rows =
    Hashtbl.fold
      (fun prev tbl acc ->
        let succs =
          Hashtbl.fold (fun next r acc -> (next, !r) :: acc) tbl []
          |> List.sort compare |> Array.of_list
        in
        (prev, succs) :: acc)
      t.transitions []
    |> List.sort compare |> Array.of_list
  in
  { s_transitions = rows; s_n_predictions = t.n_predictions; s_n_correct = t.n_correct }

let restore t s =
  Hashtbl.reset t.transitions;
  Array.iter
    (fun (prev, succs) ->
      let tbl = Hashtbl.create (max 8 (Array.length succs)) in
      Array.iter (fun (next, count) -> Hashtbl.add tbl next (ref count)) succs;
      Hashtbl.add t.transitions prev tbl)
    s.s_transitions;
  t.n_predictions <- s.s_n_predictions;
  t.n_correct <- s.s_n_correct
