(** First-order Markov next-phase predictor (Sherwood et al. / Lau et al.,
    the papers' [20] and [24]).

    The paper deliberately leaves next-phase prediction out of its BBV
    baseline ("this BBV implementation does not contain a next phase
    predictor") while noting that accurate prediction would improve the
    baseline's adaptation coverage — and that mispredictions cause wrong
    adaptations and rollbacks.  This module supplies that predictor so the
    claim can be measured ({!Scheme} with [next_phase_prediction = true]).

    The model is a transition-count matrix over observed phase ids: after
    classifying interval t as phase p, the predictor is asked for the likely
    phase of interval t+1.  A prediction is only issued when the modal
    successor has been seen enough times and carries enough probability
    mass. *)

type t

val create : ?min_count:int -> ?min_confidence:float -> unit -> t
(** Defaults: at least 2 observations of the modal successor and 60%
    transition probability before predicting. *)

val observe : t -> prev:int -> next:int -> unit
(** Record one phase transition (self-transitions included). *)

val predict : t -> current:int -> int option
(** Likely phase of the next interval, or [None] below the confidence
    bar. *)

val record_outcome : t -> predicted:int option -> actual:int -> unit
(** Track accuracy: call once per interval with what was predicted for it
    (possibly nothing) and what it turned out to be. *)

val predictions : t -> int
(** Predictions issued. *)

val correct : t -> int

val accuracy : t -> float
(** [correct / predictions]; 0 when none were issued. *)

(** Transition counts (rows and successors sorted by phase id, so the
    representation is deterministic) plus accuracy counters, for checkpoint
    serialization. *)
type state = {
  s_transitions : (int * (int * int) array) array;
  s_n_predictions : int;
  s_n_correct : int;
}

val capture : t -> state
val restore : t -> state -> unit
