type t = { counters : int array; mutable total : int }

let saturation = (1 lsl 24) - 1

let create ?(buckets = 32) () =
  assert (buckets > 0);
  { counters = Array.make buckets 0; total = 0 }

let buckets t = Array.length t.counters

(* Index from branch-PC bits [lg(buckets)+1 : 2] (the paper excludes the two
   least significant bits). *)
let bucket_of t pc = (pc lsr 2) mod Array.length t.counters

let add t ~pc ~instrs =
  let i = bucket_of t pc in
  t.counters.(i) <- min saturation (t.counters.(i) + instrs);
  t.total <- t.total + instrs

let snapshot t =
  let sum = Array.fold_left ( + ) 0 t.counters in
  if sum = 0 then Array.make (Array.length t.counters) 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int sum) t.counters

let clear t =
  Array.fill t.counters 0 (Array.length t.counters) 0;
  t.total <- 0

let is_empty t = t.total = 0

type state = { s_counters : int array; s_total : int }

let capture t = { s_counters = Array.copy t.counters; s_total = t.total }

let restore t s =
  if Array.length s.s_counters <> Array.length t.counters then
    invalid_arg "Vector.restore: bucket count mismatch";
  Array.blit s.s_counters 0 t.counters 0 (Array.length t.counters);
  t.total <- s.s_total
