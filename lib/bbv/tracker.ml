type t = {
  threshold : float;
  mutable signatures : float array array;  (* indexed by phase id *)
  mutable n_signatures : int;
  mutable counts : int array;  (* intervals per phase *)
  mutable n_intervals : int;
  mutable n_stable : int;
  mutable cur_phase : int;
  mutable cur_run : int;
}

let create ?(threshold = 0.15) () =
  {
    threshold;
    signatures = Array.make 16 [||];
    n_signatures = 0;
    counts = Array.make 16 0;
    n_intervals = 0;
    n_stable = 0;
    cur_phase = -1;
    cur_run = 0;
  }

let grow t =
  let cap = Array.length t.signatures in
  if t.n_signatures >= cap then begin
    let signatures = Array.make (cap * 2) [||] in
    Array.blit t.signatures 0 signatures 0 cap;
    t.signatures <- signatures;
    let counts = Array.make (cap * 2) 0 in
    Array.blit t.counts 0 counts 0 cap;
    t.counts <- counts
  end

let nearest t vec =
  let best = ref (-1) and best_d = ref infinity in
  for i = 0 to t.n_signatures - 1 do
    let d = Ace_util.Stats.manhattan t.signatures.(i) vec in
    if d < !best_d then begin
      best_d := d;
      best := i
    end
  done;
  (!best, !best_d)

(* Blend factor for updating a matched signature toward the new vector. *)
let signature_alpha = 0.3

let classify t vec =
  let phase =
    let id, d = nearest t vec in
    if id >= 0 && d < t.threshold then begin
      let s = t.signatures.(id) in
      Array.iteri
        (fun i v -> s.(i) <- ((1.0 -. signature_alpha) *. s.(i)) +. (signature_alpha *. v))
        vec;
      id
    end
    else begin
      grow t;
      let id = t.n_signatures in
      t.signatures.(id) <- Array.copy vec;
      t.n_signatures <- id + 1;
      id
    end
  in
  t.n_intervals <- t.n_intervals + 1;
  t.counts.(phase) <- t.counts.(phase) + 1;
  if phase = t.cur_phase then begin
    t.cur_run <- t.cur_run + 1;
    (* The run's first interval becomes stable retroactively. *)
    t.n_stable <- t.n_stable + (if t.cur_run = 2 then 2 else 1)
  end
  else begin
    t.cur_phase <- phase;
    t.cur_run <- 1
  end;
  phase

let phase_count t = t.n_signatures
let intervals t = t.n_intervals
let stable_intervals t = t.n_stable
let transitional_intervals t = t.n_intervals - t.n_stable
let current_phase t = t.cur_phase
let current_run t = t.cur_run
let phase_intervals t id = t.counts.(id)

type state = {
  s_signatures : float array array;  (* live signatures only *)
  s_counts : int array;
  s_n_intervals : int;
  s_n_stable : int;
  s_cur_phase : int;
  s_cur_run : int;
}

let capture t =
  {
    s_signatures =
      Array.init t.n_signatures (fun i -> Array.copy t.signatures.(i));
    s_counts = Array.sub t.counts 0 t.n_signatures;
    s_n_intervals = t.n_intervals;
    s_n_stable = t.n_stable;
    s_cur_phase = t.cur_phase;
    s_cur_run = t.cur_run;
  }

let restore t s =
  let n = Array.length s.s_signatures in
  if Array.length s.s_counts <> n then
    invalid_arg "Tracker.restore: signature/count length mismatch";
  let cap = max 16 n in
  t.signatures <- Array.make cap [||];
  t.counts <- Array.make cap 0;
  Array.iteri (fun i sg -> t.signatures.(i) <- Array.copy sg) s.s_signatures;
  Array.blit s.s_counts 0 t.counts 0 n;
  t.n_signatures <- n;
  t.n_intervals <- s.s_n_intervals;
  t.n_stable <- s.s_n_stable;
  t.cur_phase <- s.s_cur_phase;
  t.cur_run <- s.s_cur_run
