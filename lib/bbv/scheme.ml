module Engine = Ace_vm.Engine
module Profile = Ace_vm.Profile
module Faults = Ace_faults.Faults
module Cu = Ace_core.Cu
module Hw = Ace_core.Hw
module Accounting = Ace_power.Accounting
module Hierarchy = Ace_mem.Hierarchy
module Cache = Ace_mem.Cache

type config = {
  buckets : int;
  match_threshold : float;
  performance_threshold : float;
  next_phase_prediction : bool;
}

let default_config =
  {
    buckets = 32;
    match_threshold = 0.15;
    performance_threshold = 0.02;
    next_phase_prediction = false;
  }

type measurement = { config : int array; energy : float; ipc : float }

type phase_state = {
  mutable next : int;
  mutable measurements : measurement list;
  mutable best : int array option;
  ipc_stats : Ace_util.Stats.Running.t;
}

type t = {
  engine : Engine.t;
  cus : Cu.t array;
  cfg : config;
  faults : Faults.t;
  vector : Vector.t;
  tracker : Tracker.t;
  configs : int array array;  (* full cartesian space over all CUs *)
  mutable phases : phase_state array;
  mutable n_phases : int;
  accts : Accounting.t option array;
  (* Pending configuration test: (phase id, config index, stage).  A test
     whose installation actually changed hardware first runs one warm
     interval so the flush/refill transient stays out of the measurement
     (the same treatment the hotspot tuner applies). *)
  mutable pending : (int * int * [ `Warm | `Measure ]) option;
  (* snapshot of counters at the last interval boundary *)
  mutable instrs0 : int;
  mutable cycles0 : float;
  mutable l1a0 : int;
  mutable l1m0 : int;
  mutable l2a0 : int;
  mutable l2m0 : int;
  (* next-phase prediction (optional) *)
  predictor : Next_phase.t;
  mutable prev_phase : int;
  mutable pending_prediction : int option;
  (* metrics *)
  mutable n_tunings : int;
  reconfigs : int array;
  mutable finalized : bool;
}

let fresh_phase () =
  {
    next = 0;
    measurements = [];
    best = None;
    ipc_stats = Ace_util.Stats.Running.create ();
  }

let phase_state t id =
  while t.n_phases <= id do
    if t.n_phases >= Array.length t.phases then begin
      let bigger = Array.make (max 16 (2 * Array.length t.phases)) (fresh_phase ()) in
      Array.blit t.phases 0 bigger 0 t.n_phases;
      t.phases <- bigger
    end;
    t.phases.(t.n_phases) <- fresh_phase ();
    t.n_phases <- t.n_phases + 1
  done;
  t.phases.(id)

let interval_profile t =
  let hier = Engine.hierarchy t.engine in
  let l1d = Hierarchy.l1d hier and l2 = Hierarchy.l2 hier in
  let p =
    {
      Profile.instrs = Engine.instrs t.engine - t.instrs0;
      (* Fault model (c): the *observed* interval cycles can carry
         measurement noise; the snapshots below keep the true clock. *)
      cycles =
        Faults.perturb_cycles t.faults
          ~cycles:(Engine.cycles t.engine -. t.cycles0);
      l1d_accesses = Cache.Stats.accesses l1d - t.l1a0;
      l1d_misses = Cache.Stats.misses l1d - t.l1m0;
      l2_accesses = Cache.Stats.accesses l2 - t.l2a0;
      l2_misses = Cache.Stats.misses l2 - t.l2m0;
    }
  in
  t.instrs0 <- Engine.instrs t.engine;
  t.cycles0 <- Engine.cycles t.engine;
  t.l1a0 <- Cache.Stats.accesses l1d;
  t.l1m0 <- Cache.Stats.misses l1d;
  t.l2a0 <- Cache.Stats.accesses l2;
  t.l2m0 <- Cache.Stats.misses l2;
  p

let energy_proxy t (profile : Profile.t) config =
  let acc = ref 0.0 in
  Array.iteri
    (fun i cu ->
      acc := !acc +. cu.Cu.energy_proxy profile ~setting:config.(i))
    t.cus;
  !acc

let handle_applied t cu_idx flushed_lines =
  let cu = t.cus.(cu_idx) in
  let lat = Hierarchy.latencies (Engine.hierarchy t.engine) in
  Engine.add_stall_cycles t.engine
    (float_of_int (flushed_lines * lat.Hierarchy.writeback_cycles_per_line));
  match t.accts.(cu_idx) with
  | None -> ()
  | Some acct ->
      Accounting.on_reconfig acct ~new_size:(Cu.current_size cu)
        ~accesses_now:(cu.Cu.accesses_now ())
        ~cycles_now:(Engine.cycles t.engine) ~flushed_lines

(* Request a full configuration; returns (applied, needs_warm): [applied] =
   no CU denied it; [needs_warm] = a coarse-grained CU (reconfiguration
   interval at least as long as the sampling interval, i.e. the L2) actually
   switched, so its flush/refill transient spans a good part of the next
   interval and that interval must not be measured.  Fine-grained CU
   transients (L1D refill, a few thousand cycles) are amortized by the 1 M
   interval and measured immediately.  [count_reconfigs] marks applications
   of a tuned phase's best config. *)
let apply_config t config ~count_reconfigs =
  let ok = ref true in
  let needs_warm = ref false in
  let interval =
    match (Engine.config t.engine).Engine.interval_instrs with
    | Some n -> n
    | None -> assert false (* checked at attach *)
  in
  let now_instrs = Engine.instrs t.engine in
  Array.iteri
    (fun i _cu ->
      match Hw.request ~faults:t.faults t.cus.(i) ~setting:config.(i) ~now_instrs with
      | Hw.Unchanged -> ()
      | Hw.Denied -> ok := false
      | Hw.Applied { flushed_lines } ->
          if t.cus.(i).Cu.reconfig_interval >= interval then needs_warm := true;
          handle_applied t i flushed_lines;
          if count_reconfigs then t.reconfigs.(i) <- t.reconfigs.(i) + 1)
    config;
  (!ok, !needs_warm)

let select t measurements =
  let best_ipc =
    List.fold_left (fun acc m -> Float.max acc m.ipc) 0.0 measurements
  in
  let floor_ipc = best_ipc *. (1.0 -. t.cfg.performance_threshold) in
  let eligible = List.filter (fun m -> m.ipc >= floor_ipc) measurements in
  let pool = match eligible with [] -> measurements | _ :: _ -> eligible in
  match pool with
  | [] -> assert false
  | m0 :: rest ->
      List.fold_left (fun acc m -> if m.energy < acc.energy then m else acc) m0 rest

let max_config t = Array.make (Array.length t.cus) 0

let on_interval t =
  let profile = interval_profile t in
  if Vector.is_empty t.vector then ()
  else begin
    let vec = Vector.snapshot t.vector in
    Vector.clear t.vector;
    let phase = Tracker.classify t.tracker vec in
    let st = phase_state t phase in
    Ace_util.Stats.Running.add st.ipc_stats (Profile.ipc profile);
    if t.cfg.next_phase_prediction then begin
      Next_phase.record_outcome t.predictor ~predicted:t.pending_prediction
        ~actual:phase;
      if t.prev_phase >= 0 then
        Next_phase.observe t.predictor ~prev:t.prev_phase ~next:phase
    end;
    t.prev_phase <- phase;
    if Engine.in_fast_forward t.engine then begin
      (* Fast-forward deferral: intervals inside a replayed region still
         classify (the block vector is identical to a full simulation's)
         and record IPC, but hardware decisions — trial starts, best/max
         config applications, predictive pre-applications — are deferred
         to the next fully simulated interval.  The sampler only starts a
         region while no trial is pending, so there is never a measurement
         to resolve here. *)
      t.pending <- None;
      t.pending_prediction <- None
    end
    else begin
    (* Resolve a pending configuration test. *)
    (match t.pending with
    | Some (p, idx, `Measure) when p = phase ->
        let config = t.configs.(idx) in
        st.measurements <-
          { config; energy = energy_proxy t profile config; ipc = Profile.ipc profile }
          :: st.measurements;
        st.next <- idx + 1;
        if st.next >= Array.length t.configs then
          st.best <- Some (select t st.measurements).config
    | Some _ | None -> ());
    t.pending <- None;
    (* Choose the next interval's configuration.  With next-phase prediction
       on, a confident prediction of a tuned phase takes precedence: its
       configuration is applied pre-emptively, covering intervals (including
       transitional ones) the plain baseline would run at maximum size.  A
       misprediction means the next interval runs under the wrong phase's
       configuration — the rollback cost the paper warns about. *)
    let predicted_best =
      if not t.cfg.next_phase_prediction then None
      else begin
        let prediction = Next_phase.predict t.predictor ~current:phase in
        t.pending_prediction <- prediction;
        match prediction with
        | Some q when q < t.n_phases -> t.phases.(q).best
        | Some _ | None -> None
      end
    in
    match predicted_best with
    | Some best -> ignore (apply_config t best ~count_reconfigs:true)
    | None ->
    if Tracker.current_run t.tracker >= 2 then begin
      match st.best with
      | Some best -> ignore (apply_config t best ~count_reconfigs:true)
      | None ->
          if st.next < Array.length t.configs then begin
            let idx = st.next in
            let applied, _changed =
              apply_config t t.configs.(idx) ~count_reconfigs:false
            in
            (* One configuration per sampling interval, measured immediately
               (the 1 M-instruction interval amortizes the install
               transient), exactly as the paper's BBV baseline. *)
            if applied then begin
              t.pending <- Some (phase, idx, `Measure);
              t.n_tunings <- t.n_tunings + 1
            end
          end
    end
    else
      (* Transitional interval: resources are adapted only at stable phases;
         fall back to the maximum (baseline) configuration. *)
      ignore (apply_config t (max_config t) ~count_reconfigs:false)
    end
  end

let attach ?(config = default_config) ?(faults = Faults.none) engine ~cus =
  (match (Engine.config engine).Engine.interval_instrs with
  | Some _ -> ()
  | None ->
      invalid_arg "Bbv.Scheme.attach: engine has no sampling interval configured");
  let t =
    {
      engine;
      cus;
      cfg = config;
      faults;
      vector = Vector.create ~buckets:config.buckets ();
      tracker = Tracker.create ~threshold:config.match_threshold ();
      configs =
        Ace_core.Decoupling.configurations ~cus
          ~managed:(List.init (Array.length cus) Fun.id);
      phases = Array.make 16 (fresh_phase ());
      n_phases = 0;
      accts =
        Array.map
          (fun (cu : Cu.t) ->
            match cu.Cu.family with
            | Some family ->
                Some (Accounting.create family ~initial_size:(Cu.current_size cu))
            | None -> None)
          cus;
      pending = None;
      predictor = Next_phase.create ();
      prev_phase = -1;
      pending_prediction = None;
      instrs0 = 0;
      cycles0 = 0.0;
      l1a0 = 0;
      l1m0 = 0;
      l2a0 = 0;
      l2m0 = 0;
      n_tunings = 0;
      reconfigs = Array.make (Array.length cus) 0;
      finalized = false;
    }
  in
  let hooks = Engine.hooks engine in
  hooks.Engine.on_block <-
    (fun ~pc ~instrs ~count -> Vector.add t.vector ~pc ~instrs:(instrs * count));
  hooks.Engine.on_interval <- (fun ~total_instrs:_ -> on_interval t);
  t

let finalize t =
  if t.finalized then invalid_arg "Bbv.Scheme.finalize: already finalized";
  t.finalized <- true;
  Array.iteri
    (fun k acct ->
      match acct with
      | None -> ()
      | Some a ->
          Accounting.finish a
            ~accesses_now:(t.cus.(k).Cu.accesses_now ())
            ~cycles_now:(Engine.cycles t.engine))
    t.accts

let tracker t = t.tracker
let phase_count t = Tracker.phase_count t.tracker
(* Quiescence for the sampler.  [pending = None] alone is not enough:
   trials only *start* at fully simulated interval boundaries, so
   splicing away most of the run would starve the configuration sweep
   and leave phases running at the maximum size where a full run would
   have tuned them down (a 30-75 % energy divergence in practice).
   Requiring every classified phase to be tuned first means sampling
   only begins once the scheme has reached the tuned steady state a
   full simulation would reach. *)
let quiescent t =
  t.pending = None
  &&
  let all_tuned = ref true in
  for i = 0 to t.n_phases - 1 do
    if t.phases.(i).best = None then all_tuned := false
  done;
  !all_tuned

let tuned_phases t =
  List.filter (fun i -> t.phases.(i).best <> None) (List.init t.n_phases Fun.id)

let tuned_phase_count t = List.length (tuned_phases t)

let intervals_in_tuned_phases t =
  let total = Tracker.intervals t.tracker in
  if total = 0 then 0.0
  else
    let tuned =
      List.fold_left
        (fun acc i -> acc + Tracker.phase_intervals t.tracker i)
        0 (tuned_phases t)
    in
    float_of_int tuned /. float_of_int total

let stable_fraction t =
  let total = Tracker.intervals t.tracker in
  if total = 0 then 0.0
  else float_of_int (Tracker.stable_intervals t.tracker) /. float_of_int total

let tunings t = t.n_tunings
let reconfigs_per_cu t = Array.copy t.reconfigs

let mean_per_phase_ipc_cov t =
  let covs =
    List.filter_map
      (fun i ->
        let s = t.phases.(i).ipc_stats in
        if Ace_util.Stats.Running.count s > 1 then
          Some (Ace_util.Stats.Running.cov s)
        else None)
      (List.init t.n_phases Fun.id)
  in
  Ace_util.Stats.mean (Array.of_list covs)

let inter_phase_ipc_cov t =
  let means =
    List.filter_map
      (fun i ->
        let s = t.phases.(i).ipc_stats in
        if Ace_util.Stats.Running.count s > 0 then
          Some (Ace_util.Stats.Running.mean s)
        else None)
      (List.init t.n_phases Fun.id)
  in
  Ace_util.Stats.cov (Array.of_list means)

let accounting t k = t.accts.(k)

let predictor_stats t =
  if t.cfg.next_phase_prediction then
    Some
      ( Next_phase.predictions t.predictor,
        Next_phase.correct t.predictor,
        Next_phase.accuracy t.predictor )
  else None

(* {2 Checkpoint capture / restore} *)

type measurement_state = { ms_config : int array; ms_energy : float; ms_ipc : float }

type phase_state_state = {
  ps_next : int;
  ps_measurements : measurement_state list;
  ps_best : int array option;
  ps_ipc_stats : Ace_util.Stats.Running.state;
}

type state = {
  s_vector : Vector.state;
  s_tracker : Tracker.state;
  s_phases : phase_state_state array;  (* live phases only *)
  s_accts : Accounting.state option array;
  s_cus : Cu.state array;
  s_pending : (int * int * [ `Warm | `Measure ]) option;
  s_instrs0 : int;
  s_cycles0 : float;
  s_l1a0 : int;
  s_l1m0 : int;
  s_l2a0 : int;
  s_l2m0 : int;
  s_predictor : Next_phase.state;
  s_prev_phase : int;
  s_pending_prediction : int option;
  s_n_tunings : int;
  s_reconfigs : int array;
  s_finalized : bool;
}

let capture t =
  {
    s_vector = Vector.capture t.vector;
    s_tracker = Tracker.capture t.tracker;
    s_phases =
      Array.init t.n_phases (fun i ->
          let ps = t.phases.(i) in
          {
            ps_next = ps.next;
            ps_measurements =
              List.map
                (fun m ->
                  { ms_config = Array.copy m.config; ms_energy = m.energy; ms_ipc = m.ipc })
                ps.measurements;
            ps_best = Option.map Array.copy ps.best;
            ps_ipc_stats = Ace_util.Stats.Running.capture ps.ipc_stats;
          });
    s_accts = Array.map (Option.map Accounting.capture) t.accts;
    s_cus = Array.map Cu.capture t.cus;
    s_pending = t.pending;
    s_instrs0 = t.instrs0;
    s_cycles0 = t.cycles0;
    s_l1a0 = t.l1a0;
    s_l1m0 = t.l1m0;
    s_l2a0 = t.l2a0;
    s_l2m0 = t.l2m0;
    s_predictor = Next_phase.capture t.predictor;
    s_prev_phase = t.prev_phase;
    s_pending_prediction = t.pending_prediction;
    s_n_tunings = t.n_tunings;
    s_reconfigs = Array.copy t.reconfigs;
    s_finalized = t.finalized;
  }

let restore t s =
  let n_cus = Array.length t.cus in
  if Array.length s.s_cus <> n_cus then
    invalid_arg "Bbv.Scheme.restore: CU count mismatch";
  Vector.restore t.vector s.s_vector;
  Tracker.restore t.tracker s.s_tracker;
  let n = Array.length s.s_phases in
  t.phases <- Array.make (max 16 n) (fresh_phase ());
  for i = 0 to n - 1 do
    let ps = s.s_phases.(i) in
    let st = fresh_phase () in
    st.next <- ps.ps_next;
    st.measurements <-
      List.map
        (fun m ->
          { config = Array.copy m.ms_config; energy = m.ms_energy; ipc = m.ms_ipc })
        ps.ps_measurements;
    st.best <- Option.map Array.copy ps.ps_best;
    Ace_util.Stats.Running.restore st.ipc_stats ps.ps_ipc_stats;
    t.phases.(i) <- st
  done;
  t.n_phases <- n;
  Array.iteri
    (fun k acct ->
      match (acct, s.s_accts.(k)) with
      | Some a, Some sa -> Accounting.restore a sa
      | None, None -> ()
      | _ -> invalid_arg "Bbv.Scheme.restore: accounting shape mismatch")
    t.accts;
  Array.iteri (fun k cs -> Cu.restore t.cus.(k) cs) s.s_cus;
  t.pending <- s.s_pending;
  t.instrs0 <- s.s_instrs0;
  t.cycles0 <- s.s_cycles0;
  t.l1a0 <- s.s_l1a0;
  t.l1m0 <- s.s_l1m0;
  t.l2a0 <- s.s_l2a0;
  t.l2m0 <- s.s_l2m0;
  Next_phase.restore t.predictor s.s_predictor;
  t.prev_phase <- s.s_prev_phase;
  t.pending_prediction <- s.s_pending_prediction;
  t.n_tunings <- s.s_n_tunings;
  Array.blit s.s_reconfigs 0 t.reconfigs 0 n_cus;
  t.finalized <- s.s_finalized
