(** The complete BBV-based resource adaptation baseline: Sherwood-style phase
    tracking ({!Vector}, {!Tracker}) combined with the Dhodapkar–Smith tuning
    algorithm, driving the same configurable units and hardware guard as the
    DO-based framework (§4.1, §5.2 of the paper).

    Per interval (1 M instructions):
    + the ended interval's BBV is classified into a phase;
    + if the interval was testing a configuration of that phase, the
      measurement (energy proxy, IPC) is recorded — a measurement taken in a
      different phase than intended is discarded and the configuration is
      retried on the phase's next stable interval ("resume from the last
      tested configuration");
    + the next interval's configuration is chosen: the phase's selected best
      if it finished tuning, the next untested combinatorial configuration if
      the phase is stable and still tuning, or the maximum (baseline) sizes
      during transitional intervals, since resources are adapted only in
      stable phases.

    Unlike the DO-based framework, every phase explores the full cartesian
    configuration space of all CUs (16 with the paper's two caches). *)

type config = {
  buckets : int;
  match_threshold : float;
  performance_threshold : float;
      (** Same selection rule as the hotspot tuner, for a fair baseline. *)
  next_phase_prediction : bool;
      (** Enable the {!Next_phase} Markov predictor ([20]/[24] in the
          paper): when it confidently predicts the next interval's phase and
          that phase is tuned, its configuration is applied pre-emptively —
          even across transitional intervals.  Off by default, matching the
          paper's baseline. *)
}

val default_config : config

type t

val attach :
  ?config:config -> ?faults:Ace_faults.Faults.t -> Ace_vm.Engine.t ->
  cus:Ace_core.Cu.t array -> t
(** Install the scheme.  The engine must have been created with
    [interval_instrs = Some n] (the BBV sampling interval).  [faults]
    (default {!Ace_faults.Faults.none}) is applied to every control register
    write and to the observed interval cycle counts.  The BBV baseline has
    no resilience machinery — faulty measurements and dropped writes go
    undetected, as in the hardware-counter-driven original.
    @raise Invalid_argument otherwise. *)

val finalize : t -> unit
(** Close the final interval's energy epoch.  Call once, after the run. *)

(** Run statistics (Tables 5 and 6, Figure 1). *)

val tracker : t -> Tracker.t
val phase_count : t -> int

val quiescent : t -> bool
(** True when no configuration test is pending and every phase the
    tracker has classified so far completed tuning.  The phase-statistics
    sampler only fast-forwards while the scheme is quiescent, so BBV
    measurements always come from fully simulated intervals — and, since
    trials can only start at fully simulated interval boundaries,
    splicing is held off until the configuration sweep has finished
    rather than letting it starve the sweep. *)

val tuned_phase_count : t -> int

val intervals_in_tuned_phases : t -> float
(** Fraction of dynamic sampling intervals belonging to phases that
    completed tuning. *)

val stable_fraction : t -> float
(** Figure 1's stable share of intervals. *)

val tunings : t -> int
(** Configuration trials across all phases. *)

val reconfigs_per_cu : t -> int array
(** Actual setting changes while applying tuned-phase configurations, per
    CU. *)

val mean_per_phase_ipc_cov : t -> float
val inter_phase_ipc_cov : t -> float

val accounting : t -> int -> Ace_power.Accounting.t option
(** Energy accountant of the i-th CU (cache CUs only). *)

val predictor_stats : t -> (int * int * float) option
(** (predictions issued, correct, accuracy) when next-phase prediction is
    enabled; [None] otherwise. *)

(** {2 Checkpoint capture / restore}

    Pure-data image of the scheme's mutable state: the in-flight BBV
    accumulator, the phase tracker, per-phase tuning progress, energy
    accounting, CU register state and the optional next-phase predictor.
    The configuration space is recomputed at attach time, not serialized. *)

type measurement_state = { ms_config : int array; ms_energy : float; ms_ipc : float }

type phase_state_state = {
  ps_next : int;
  ps_measurements : measurement_state list;
  ps_best : int array option;
  ps_ipc_stats : Ace_util.Stats.Running.state;
}

type state = {
  s_vector : Vector.state;
  s_tracker : Tracker.state;
  s_phases : phase_state_state array;
  s_accts : Ace_power.Accounting.state option array;
  s_cus : Ace_core.Cu.state array;
  s_pending : (int * int * [ `Warm | `Measure ]) option;
  s_instrs0 : int;
  s_cycles0 : float;
  s_l1a0 : int;
  s_l1m0 : int;
  s_l2a0 : int;
  s_l2m0 : int;
  s_predictor : Next_phase.state;
  s_prev_phase : int;
  s_pending_prediction : int option;
  s_n_tunings : int;
  s_reconfigs : int array;
  s_finalized : bool;
}

val capture : t -> state

val restore : t -> state -> unit
(** Overwrite a freshly [attach]ed scheme (same engine config and CU array)
    with a captured state.
    @raise Invalid_argument on a shape mismatch. *)
