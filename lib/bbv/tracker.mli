(** Phase tracking over BBV signatures.

    At each sampling-interval boundary the tracker is fed the interval's
    normalized BBV.  It matches the vector against its (unbounded, as the
    paper grants the baseline) signature table: the nearest signature within
    the Manhattan-distance threshold identifies a recurring phase; otherwise
    a new phase is created.  The tracker also maintains run lengths so
    intervals can be classified stable (part of a run of >= 2 equal-phase
    intervals) or transitional — the split Figure 1 reports. *)

type t

val create : ?threshold:float -> unit -> t
(** [threshold] is the Manhattan-distance match bound on L1-normalized
    vectors (range 0-2); default 0.15. *)

val classify : t -> float array -> int
(** Consume one interval's normalized BBV and return its phase id (fresh ids
    are consecutive from 0).  Matching updates the stored signature with an
    exponential average so signatures track slow drift. *)

val phase_count : t -> int

val intervals : t -> int
(** Total intervals classified. *)

val stable_intervals : t -> int
(** Intervals in runs of length >= 2.  A run's first interval is counted
    retroactively when its second interval arrives. *)

val transitional_intervals : t -> int

val current_phase : t -> int
(** Phase id of the most recent interval; -1 before any interval. *)

val current_run : t -> int
(** Length of the current same-phase run. *)

val phase_intervals : t -> int -> int
(** Intervals attributed to the given phase id. *)

(** Signature table and run-length counters, for checkpoint serialization.
    The match threshold is fixed at creation and not part of the state. *)
type state = {
  s_signatures : float array array;
  s_counts : int array;
  s_n_intervals : int;
  s_n_stable : int;
  s_cur_phase : int;
  s_cur_run : int;
}

val capture : t -> state

val restore : t -> state -> unit
(** @raise Invalid_argument if the state is internally inconsistent. *)
