(** Versioned, CRC-checked binary snapshots of the full simulator state.

    A snapshot captures everything a run needs to continue bit-identically:
    the engine (counters, frame stack, RNG, pattern cursors, DO database,
    memory hierarchy), the fault injector's RNG and latch table, and the
    attached scheme's tuning state.  Construction-time inputs — program,
    configs, thresholds, CU families — are deliberately {e not} serialized;
    they are recomputed deterministically from {!meta} at restore time, which
    keeps the format small and makes version skew loud instead of silent.

    Container layout (see DESIGN.md §Checkpointing): magic ["ACESNAP1"],
    format {!version} (u16 LE), payload length (i64 LE), CRC-32 of the
    payload (i64 LE), payload.  {!decode} refuses bad magic, unknown
    versions, truncation and CRC mismatches, so a torn or corrupted write is
    always detected; {!write} rotates the previous file to [path.1] so
    {!read_with_fallback} can fall back to the last good snapshot. *)

(** Why a snapshot was refused.  The cases matter to supervisors: a
    [Truncated] file is the signature of a writer killed mid-write (e.g. the
    serve daemon SIGKILLed between [open] and [rename]) and is safely
    skipped, whereas [Version_skew] means the operator mixed binaries and
    should not be papered over. *)
type error =
  | Truncated of { expected : int; got : int }
      (** Fewer bytes than the header (or the header's declared payload
          length) requires — a torn or in-flight write.  [got] may be 0 for
          an empty file. *)
  | Bad_magic  (** The first 8 bytes are not ["ACESNAP1"]. *)
  | Version_skew of { found : int; expected : int }
      (** A well-formed container from a different format {!version}. *)
  | Crc_mismatch of { stored : int; computed : int }
      (** Payload bytes damaged after the length was written. *)
  | Malformed of string
      (** Structurally impossible container or undecodable payload (bad
          tag, trailing bytes, declared length beyond file size ...). *)
  | Unreadable of string  (** The file could not be read at all. *)

exception Error of error
(** Raised by {!decode}/{!read} on any malformed snapshot. *)

val error_to_string : error -> string
(** Human-readable rendering, for logs and CLI messages. *)

(** Which adaptation scheme the checkpointed run was using. *)
type scheme = Baseline | Hotspot | Bbv

(** Everything needed to rebuild the run's construction-time inputs:
    workload program, engine config, CU family, scheme wiring. *)
type meta = {
  workload : string;  (** Workload registry name. *)
  scheme : scheme;
  scale : float;  (** Workload scale factor. *)
  seed : int;
  hot_threshold : int;
  with_issue_queue : bool;  (** Hotspot scheme: manage the issue queue CU. *)
  bbv_prediction : bool;  (** BBV scheme: enable next-phase prediction. *)
  resilient : bool;  (** Hotspot scheme: resilient tuner policy. *)
  fault_rate : float option;  (** [Faults.preset] rate, if faults are on. *)
  checkpoint_every : int;  (** Snapshot cadence in instructions. *)
  sample : Ace_sample.Sample.config option;
      (** Phase-memoized sampling, if the run had it enabled. *)
}

type scheme_state =
  | S_baseline  (** Fixed baseline needs no state beyond the engine's. *)
  | S_hotspot of Ace_core.Framework.state
  | S_bbv of Ace_bbv.Scheme.state

type t = {
  meta : meta;
  engine : Ace_vm.Engine.state;
  faults : Ace_faults.Faults.state option;
  scheme_state : scheme_state;
  obs : Ace_obs.Obs.state option;
      (** Observability sink image ([None] when observability is off), so a
          resumed run continues its metrics and timeline seamlessly. *)
  sample_state : Ace_sample.Sample.state option;
      (** Phase-statistics cache and in-flight observations ([None] when
          sampling is off), so a resumed sampled run makes exactly the
          fast-forward decisions the uninterrupted run would. *)
}

val version : int
(** Current snapshot format version.  Bump whenever any serialized state
    type or field order changes. *)

val encode : t -> string
(** The full container: header plus CRC-protected payload. *)

val decode : string -> t
(** @raise Error on truncation, bad magic, version skew, CRC mismatch or a
    malformed payload. *)

val write :
  ?io:Ace_util.Io.t ->
  ?faults:Ace_faults.Faults.t ->
  ?obs:Ace_obs.Obs.t ->
  path:string ->
  t ->
  unit
(** Atomically and durably write a snapshot: encode, optionally damage the
    bytes via [Faults.maybe_corrupt_snapshot] (storage-channel fault
    injection), write to [path.tmp], fsync it, rotate any existing [path]
    to [path.1], rename into place.  The rotation guarantees that at most
    one of the two most recent snapshots can be lost to corruption or a
    torn write; the fsync guarantees the file the rename publishes has its
    bytes on stable storage.  All filesystem access goes through [io]
    (default {!Ace_util.Io.real}), so the torture harness can crash the
    write at every boundary.  A [Full]-level [obs] records a ring-only
    [Ckpt_capture] event after the write (never a metric, so resumed
    metrics stay identical to an uninterrupted run's). *)

val read : ?io:Ace_util.Io.t -> path:string -> unit -> t
(** @raise Error if the file is unreadable or fails {!decode} — storage
    failures ({!Ace_util.Io.Io_error}) surface as [Error (Unreadable _)],
    never as a raw exception. *)

val read_with_fallback :
  ?io:Ace_util.Io.t -> path:string -> unit -> (t * [ `Primary | `Fallback ]) option
(** Read [path]; if it is missing or malformed, fall back to [path.1].
    [None] when neither holds a good snapshot. *)
