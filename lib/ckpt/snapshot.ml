module Codec = Ace_util.Codec
module Crc32 = Ace_util.Crc32
module Io = Ace_util.Io
module Enc = Codec.Enc
module Dec = Codec.Dec
module Stats = Ace_util.Stats
module Pattern = Ace_isa.Pattern
module Cache = Ace_mem.Cache
module Tlb = Ace_mem.Tlb
module Hierarchy = Ace_mem.Hierarchy
module Accounting = Ace_power.Accounting
module Db = Ace_vm.Do_database
module Engine = Ace_vm.Engine
module Cu = Ace_core.Cu
module Tuner = Ace_core.Tuner
module Framework = Ace_core.Framework
module Bbv_scheme = Ace_bbv.Scheme
module Vector = Ace_bbv.Vector
module Tracker = Ace_bbv.Tracker
module Next_phase = Ace_bbv.Next_phase
module Faults = Ace_faults.Faults
module Obs = Ace_obs.Obs
module Sample = Ace_sample.Sample

type error =
  | Truncated of { expected : int; got : int }
  | Bad_magic
  | Version_skew of { found : int; expected : int }
  | Crc_mismatch of { stored : int; computed : int }
  | Malformed of string
  | Unreadable of string

exception Error of error

let error_to_string = function
  | Truncated { expected; got } ->
      Printf.sprintf "truncated snapshot: need %d bytes, have %d" expected got
  | Bad_magic -> "bad magic"
  | Version_skew { found; expected } ->
      Printf.sprintf "snapshot version %d, expected %d" found expected
  | Crc_mismatch { stored; computed } ->
      Printf.sprintf "CRC mismatch: stored %08x, computed %08x" stored computed
  | Malformed msg -> "malformed snapshot: " ^ msg
  | Unreadable msg -> "cannot read snapshot: " ^ msg

type scheme = Baseline | Hotspot | Bbv

type meta = {
  workload : string;
  scheme : scheme;
  scale : float;
  seed : int;
  hot_threshold : int;
  with_issue_queue : bool;
  bbv_prediction : bool;
  resilient : bool;
  fault_rate : float option;
  checkpoint_every : int;
  sample : Sample.config option;
}

type scheme_state =
  | S_baseline
  | S_hotspot of Framework.state
  | S_bbv of Bbv_scheme.state

type t = {
  meta : meta;
  engine : Engine.state;
  faults : Faults.state option;
  scheme_state : scheme_state;
  obs : Obs.state option;
  sample_state : Sample.state option;
}

(* {2 Payload encoders/decoders}

   Every encoder has a decoder reading the exact same field order.  The
   layout is the snapshot format: changing any of these (or the state types
   they serialize) requires bumping {!version} below. *)

let enc_running e (s : Stats.Running.state) =
  Enc.int e s.Stats.Running.s_n;
  Enc.f64 e s.Stats.Running.s_mean;
  Enc.f64 e s.Stats.Running.s_m2;
  Enc.f64 e s.Stats.Running.s_last

let dec_running d =
  let s_n = Dec.int d in
  let s_mean = Dec.f64 d in
  let s_m2 = Dec.f64 d in
  let s_last = Dec.f64 d in
  { Stats.Running.s_n; s_mean; s_m2; s_last }

let enc_ema e (s : Stats.Ema.state) =
  Enc.f64 e s.Stats.Ema.s_value;
  Enc.bool e s.Stats.Ema.s_seeded

let dec_ema d =
  let s_value = Dec.f64 d in
  let s_seeded = Dec.bool d in
  { Stats.Ema.s_value; s_seeded }

let enc_cursor e (s : Pattern.cursor_state) =
  Enc.int e s.Pattern.s_offset;
  Enc.int e s.Pattern.s_steps

let dec_cursor d =
  let s_offset = Dec.int d in
  let s_steps = Dec.int d in
  { Pattern.s_offset; s_steps }

let enc_cache e (s : Cache.state) =
  Enc.int e s.Cache.s_size_bytes;
  Enc.int_arr e s.Cache.s_tags;
  Enc.bool_arr e s.Cache.s_dirty;
  Enc.int_arr e s.Cache.s_stamp;
  Enc.int e s.Cache.s_clock;
  Enc.int e s.Cache.s_last_victim;
  Enc.int e s.Cache.s_accesses;
  Enc.int e s.Cache.s_hits;
  Enc.int e s.Cache.s_writebacks;
  Enc.int e s.Cache.s_flush_writebacks;
  Enc.int e s.Cache.s_resizes

let dec_cache d =
  let s_size_bytes = Dec.int d in
  let s_tags = Dec.int_arr d in
  let s_dirty = Dec.bool_arr d in
  let s_stamp = Dec.int_arr d in
  let s_clock = Dec.int d in
  let s_last_victim = Dec.int d in
  let s_accesses = Dec.int d in
  let s_hits = Dec.int d in
  let s_writebacks = Dec.int d in
  let s_flush_writebacks = Dec.int d in
  let s_resizes = Dec.int d in
  {
    Cache.s_size_bytes;
    s_tags;
    s_dirty;
    s_stamp;
    s_clock;
    s_last_victim;
    s_accesses;
    s_hits;
    s_writebacks;
    s_flush_writebacks;
    s_resizes;
  }

let enc_tlb e (s : Tlb.state) =
  Enc.int_arr e s.Tlb.s_resident;
  Enc.int_arr e s.Tlb.s_fifo;
  Enc.int e s.Tlb.s_head;
  Enc.int e s.Tlb.s_filled;
  Enc.int e s.Tlb.s_accesses;
  Enc.int e s.Tlb.s_misses

let dec_tlb d =
  let s_resident = Dec.int_arr d in
  let s_fifo = Dec.int_arr d in
  let s_head = Dec.int d in
  let s_filled = Dec.int d in
  let s_accesses = Dec.int d in
  let s_misses = Dec.int d in
  { Tlb.s_resident; s_fifo; s_head; s_filled; s_accesses; s_misses }

let enc_hier e (s : Hierarchy.state) =
  enc_cache e s.Hierarchy.s_l1i;
  enc_cache e s.Hierarchy.s_l1d;
  enc_cache e s.Hierarchy.s_l2;
  enc_tlb e s.Hierarchy.s_dtlb;
  Enc.int e s.Hierarchy.s_mem_reads;
  Enc.int e s.Hierarchy.s_mem_writebacks

let dec_hier d =
  let s_l1i = dec_cache d in
  let s_l1d = dec_cache d in
  let s_l2 = dec_cache d in
  let s_dtlb = dec_tlb d in
  let s_mem_reads = Dec.int d in
  let s_mem_writebacks = Dec.int d in
  { Hierarchy.s_l1i; s_l1d; s_l2; s_dtlb; s_mem_reads; s_mem_writebacks }

let enc_counts e (c : Hierarchy.counts) =
  Enc.int e c.Hierarchy.c_l1i_accesses;
  Enc.int e c.Hierarchy.c_l1i_hits;
  Enc.int e c.Hierarchy.c_l1i_writebacks;
  Enc.int e c.Hierarchy.c_l1d_accesses;
  Enc.int e c.Hierarchy.c_l1d_hits;
  Enc.int e c.Hierarchy.c_l1d_writebacks;
  Enc.int e c.Hierarchy.c_l2_accesses;
  Enc.int e c.Hierarchy.c_l2_hits;
  Enc.int e c.Hierarchy.c_l2_writebacks;
  Enc.int e c.Hierarchy.c_tlb_accesses;
  Enc.int e c.Hierarchy.c_tlb_misses;
  Enc.int e c.Hierarchy.c_mem_reads;
  Enc.int e c.Hierarchy.c_mem_writebacks

let dec_counts d =
  let c_l1i_accesses = Dec.int d in
  let c_l1i_hits = Dec.int d in
  let c_l1i_writebacks = Dec.int d in
  let c_l1d_accesses = Dec.int d in
  let c_l1d_hits = Dec.int d in
  let c_l1d_writebacks = Dec.int d in
  let c_l2_accesses = Dec.int d in
  let c_l2_hits = Dec.int d in
  let c_l2_writebacks = Dec.int d in
  let c_tlb_accesses = Dec.int d in
  let c_tlb_misses = Dec.int d in
  let c_mem_reads = Dec.int d in
  let c_mem_writebacks = Dec.int d in
  {
    Hierarchy.c_l1i_accesses;
    c_l1i_hits;
    c_l1i_writebacks;
    c_l1d_accesses;
    c_l1d_hits;
    c_l1d_writebacks;
    c_l2_accesses;
    c_l2_hits;
    c_l2_writebacks;
    c_tlb_accesses;
    c_tlb_misses;
    c_mem_reads;
    c_mem_writebacks;
  }

let enc_db_entry e (s : Db.entry_state) =
  Enc.int e s.Db.s_invocations;
  Enc.int e s.Db.s_samples;
  Enc.u8 e (match s.Db.s_compile_state with Db.Baseline -> 0 | Db.Optimized -> 1);
  Enc.bool e s.Db.s_is_hotspot;
  Enc.int e s.Db.s_promoted_at_instr;
  Enc.int e s.Db.s_pre_promotion_instrs;
  enc_ema e s.Db.s_size_ema;
  enc_running e s.Db.s_ipc_profile;
  Enc.int e s.Db.s_entry_overhead;
  Enc.int e s.Db.s_exit_overhead

let dec_db_entry d =
  let s_invocations = Dec.int d in
  let s_samples = Dec.int d in
  let s_compile_state =
    match Dec.u8 d with
    | 0 -> Db.Baseline
    | 1 -> Db.Optimized
    | n -> raise (Codec.Error (Printf.sprintf "bad compile_state tag %d" n))
  in
  let s_is_hotspot = Dec.bool d in
  let s_promoted_at_instr = Dec.int d in
  let s_pre_promotion_instrs = Dec.int d in
  let s_size_ema = dec_ema d in
  let s_ipc_profile = dec_running d in
  let s_entry_overhead = Dec.int d in
  let s_exit_overhead = Dec.int d in
  {
    Db.s_invocations;
    s_samples;
    s_compile_state;
    s_is_hotspot;
    s_promoted_at_instr;
    s_pre_promotion_instrs;
    s_size_ema;
    s_ipc_profile;
    s_entry_overhead;
    s_exit_overhead;
  }

let enc_frame e (s : Engine.frame_state) =
  Enc.int e s.Engine.fs_meth;
  Enc.f64 e s.Engine.fs_quality;
  Enc.bool e s.Engine.fs_was_hotspot;
  Enc.int e s.Engine.fs_saved_meth;
  Enc.int e s.Engine.fs_instrs0;
  Enc.f64 e s.Engine.fs_cycles0;
  Enc.int e s.Engine.fs_l1a0;
  Enc.int e s.Engine.fs_l1m0;
  Enc.int e s.Engine.fs_l2a0;
  Enc.int e s.Engine.fs_l2m0;
  Enc.int e s.Engine.fs_sample;
  Enc.int e s.Engine.fs_pos;
  Enc.int e s.Engine.fs_calls_left

let dec_frame d =
  let fs_meth = Dec.int d in
  let fs_quality = Dec.f64 d in
  let fs_was_hotspot = Dec.bool d in
  let fs_saved_meth = Dec.int d in
  let fs_instrs0 = Dec.int d in
  let fs_cycles0 = Dec.f64 d in
  let fs_l1a0 = Dec.int d in
  let fs_l1m0 = Dec.int d in
  let fs_l2a0 = Dec.int d in
  let fs_l2m0 = Dec.int d in
  let fs_sample = Dec.int d in
  let fs_pos = Dec.int d in
  let fs_calls_left = Dec.int d in
  {
    Engine.fs_meth;
    fs_quality;
    fs_was_hotspot;
    fs_saved_meth;
    fs_instrs0;
    fs_cycles0;
    fs_l1a0;
    fs_l1m0;
    fs_l2a0;
    fs_l2m0;
    fs_sample;
    fs_pos;
    fs_calls_left;
  }

let enc_ff_run e (s : Engine.ff_run_state) =
  Enc.int e s.Engine.ffs_instrs;
  Enc.f64 e s.Engine.ffs_cycles;
  enc_counts e s.Engine.ffs_counts;
  Enc.f64 e s.Engine.ffs_start_cycles

let dec_ff_run d =
  let ffs_instrs = Dec.int d in
  let ffs_cycles = Dec.f64 d in
  let ffs_counts = dec_counts d in
  let ffs_start_cycles = Dec.f64 d in
  { Engine.ffs_instrs; ffs_cycles; ffs_counts; ffs_start_cycles }

let enc_engine e (s : Engine.state) =
  Enc.int e s.Engine.s_instrs;
  Enc.f64 e s.Engine.s_cycles;
  Enc.int e s.Engine.s_overhead_instrs;
  Enc.int e s.Engine.s_hot_instrs;
  Enc.f64 e s.Engine.s_next_sample_at;
  Enc.int e s.Engine.s_next_interval_at;
  Enc.int e s.Engine.s_current_meth;
  Enc.int e s.Engine.s_hotspot_depth;
  Enc.f64 e s.Engine.s_ilp_scale;
  Enc.f64 e s.Engine.s_exposure_scale;
  Enc.arr enc_frame e s.Engine.s_stack;
  Enc.i64 e s.Engine.s_rng;
  Enc.arr enc_cursor e s.Engine.s_cursors;
  Enc.arr enc_db_entry e s.Engine.s_db;
  enc_hier e s.Engine.s_hier;
  Enc.opt enc_ff_run e s.Engine.s_ff

let dec_engine d =
  let s_instrs = Dec.int d in
  let s_cycles = Dec.f64 d in
  let s_overhead_instrs = Dec.int d in
  let s_hot_instrs = Dec.int d in
  let s_next_sample_at = Dec.f64 d in
  let s_next_interval_at = Dec.int d in
  let s_current_meth = Dec.int d in
  let s_hotspot_depth = Dec.int d in
  let s_ilp_scale = Dec.f64 d in
  let s_exposure_scale = Dec.f64 d in
  let s_stack = Dec.arr dec_frame d in
  let s_rng = Dec.i64 d in
  let s_cursors = Dec.arr dec_cursor d in
  let s_db = Dec.arr dec_db_entry d in
  let s_hier = dec_hier d in
  let s_ff = Dec.opt dec_ff_run d in
  {
    Engine.s_instrs;
    s_cycles;
    s_overhead_instrs;
    s_hot_instrs;
    s_next_sample_at;
    s_next_interval_at;
    s_current_meth;
    s_hotspot_depth;
    s_ilp_scale;
    s_exposure_scale;
    s_stack;
    s_rng;
    s_cursors;
    s_db;
    s_hier;
    s_ff;
  }

let enc_faults e (s : Faults.state) =
  Enc.i64 e s.Faults.s_rng;
  Enc.i64 e s.Faults.s_ckpt_rng;
  Enc.arr
    (fun e (l : Faults.latch_state) ->
      Enc.str e l.Faults.ls_cu;
      Enc.opt Enc.int e l.Faults.ls_until)
    e s.Faults.s_latched;
  Enc.int e s.Faults.s_writes_dropped;
  Enc.int e s.Faults.s_writes_corrupted;
  Enc.int e s.Faults.s_stuck_events;
  Enc.int e s.Faults.s_spikes;
  Enc.int e s.Faults.s_jittered_ticks;
  Enc.int e s.Faults.s_snapshots_corrupted

let dec_faults d =
  let s_rng = Dec.i64 d in
  let s_ckpt_rng = Dec.i64 d in
  let s_latched =
    Dec.arr
      (fun d ->
        let ls_cu = Dec.str d in
        let ls_until = Dec.opt Dec.int d in
        { Faults.ls_cu; ls_until })
      d
  in
  let s_writes_dropped = Dec.int d in
  let s_writes_corrupted = Dec.int d in
  let s_stuck_events = Dec.int d in
  let s_spikes = Dec.int d in
  let s_jittered_ticks = Dec.int d in
  let s_snapshots_corrupted = Dec.int d in
  {
    Faults.s_rng;
    s_ckpt_rng;
    s_latched;
    s_writes_dropped;
    s_writes_corrupted;
    s_stuck_events;
    s_spikes;
    s_jittered_ticks;
    s_snapshots_corrupted;
  }

let enc_cu e (s : Cu.state) =
  Enc.int e s.Cu.s_current;
  Enc.int e s.Cu.s_last_reconfig_instr;
  Enc.int e s.Cu.s_applied;
  Enc.int e s.Cu.s_denied;
  Enc.int e s.Cu.s_invalid

let dec_cu d =
  let s_current = Dec.int d in
  let s_last_reconfig_instr = Dec.int d in
  let s_applied = Dec.int d in
  let s_denied = Dec.int d in
  let s_invalid = Dec.int d in
  { Cu.s_current; s_last_reconfig_instr; s_applied; s_denied; s_invalid }

let enc_acct e (s : Accounting.state) =
  Enc.int e s.Accounting.s_size;
  Enc.int e s.Accounting.s_epoch_accesses;
  Enc.f64 e s.Accounting.s_epoch_cycles;
  Enc.f64 e s.Accounting.s_dynamic_nj;
  Enc.f64 e s.Accounting.s_leakage_nj;
  Enc.f64 e s.Accounting.s_reconfig_nj;
  Enc.int e s.Accounting.s_reconfigs;
  Enc.f64 e s.Accounting.s_weighted_size_cycles;
  Enc.f64 e s.Accounting.s_closed_cycles

let dec_acct d =
  let s_size = Dec.int d in
  let s_epoch_accesses = Dec.int d in
  let s_epoch_cycles = Dec.f64 d in
  let s_dynamic_nj = Dec.f64 d in
  let s_leakage_nj = Dec.f64 d in
  let s_reconfig_nj = Dec.f64 d in
  let s_reconfigs = Dec.int d in
  let s_weighted_size_cycles = Dec.f64 d in
  let s_closed_cycles = Dec.f64 d in
  {
    Accounting.s_size;
    s_epoch_accesses;
    s_epoch_cycles;
    s_dynamic_nj;
    s_leakage_nj;
    s_reconfig_nj;
    s_reconfigs;
    s_weighted_size_cycles;
    s_closed_cycles;
  }

let enc_tuner_measurement e (m : Tuner.measurement_state) =
  Enc.int_arr e m.Tuner.ms_config;
  Enc.f64 e m.Tuner.ms_energy;
  Enc.f64 e m.Tuner.ms_ipc

let dec_tuner_measurement d =
  let ms_config = Dec.int_arr d in
  let ms_energy = Dec.f64 d in
  let ms_ipc = Dec.f64 d in
  { Tuner.ms_config; ms_energy; ms_ipc }

let enc_sample e (energy, ipc) =
  Enc.f64 e energy;
  Enc.f64 e ipc

let dec_sample d =
  let energy = Dec.f64 d in
  let ipc = Dec.f64 d in
  (energy, ipc)

let enc_tuner_phase e (p : Tuner.phase_state) =
  match p with
  | Tuner.S_tuning ts ->
      Enc.u8 e 0;
      Enc.int e ts.Tuner.ts_next;
      Enc.bool e ts.Tuner.ts_pending;
      Enc.list enc_tuner_measurement e ts.Tuner.ts_measurements;
      Enc.f64 e ts.Tuner.ts_acc_energy;
      Enc.f64 e ts.Tuner.ts_acc_ipc;
      Enc.int e ts.Tuner.ts_acc_n;
      Enc.list enc_sample e ts.Tuner.ts_acc_samples;
      Enc.int e ts.Tuner.ts_warmup_left;
      Enc.int e ts.Tuner.ts_attempts;
      Enc.int e ts.Tuner.ts_backoff_left;
      Enc.bool e ts.Tuner.ts_degrade_flagged
  | Tuner.S_configured { cs_best; cs_ref_ipc; cs_exits; cs_sampling; cs_confirming }
    ->
      Enc.u8 e 1;
      Enc.int_arr e cs_best;
      Enc.f64 e cs_ref_ipc;
      Enc.int e cs_exits;
      Enc.bool e cs_sampling;
      Enc.bool e cs_confirming
  | Tuner.S_quarantined { qs_best } ->
      Enc.u8 e 2;
      Enc.int_arr e qs_best

let dec_tuner_phase d =
  match Dec.u8 d with
  | 0 ->
      let ts_next = Dec.int d in
      let ts_pending = Dec.bool d in
      let ts_measurements = Dec.list dec_tuner_measurement d in
      let ts_acc_energy = Dec.f64 d in
      let ts_acc_ipc = Dec.f64 d in
      let ts_acc_n = Dec.int d in
      let ts_acc_samples = Dec.list dec_sample d in
      let ts_warmup_left = Dec.int d in
      let ts_attempts = Dec.int d in
      let ts_backoff_left = Dec.int d in
      let ts_degrade_flagged = Dec.bool d in
      Tuner.S_tuning
        {
          Tuner.ts_next;
          ts_pending;
          ts_measurements;
          ts_acc_energy;
          ts_acc_ipc;
          ts_acc_n;
          ts_acc_samples;
          ts_warmup_left;
          ts_attempts;
          ts_backoff_left;
          ts_degrade_flagged;
        }
  | 1 ->
      let cs_best = Dec.int_arr d in
      let cs_ref_ipc = Dec.f64 d in
      let cs_exits = Dec.int d in
      let cs_sampling = Dec.bool d in
      let cs_confirming = Dec.bool d in
      Tuner.S_configured { cs_best; cs_ref_ipc; cs_exits; cs_sampling; cs_confirming }
  | 2 ->
      let qs_best = Dec.int_arr d in
      Tuner.S_quarantined { qs_best }
  | n -> raise (Codec.Error (Printf.sprintf "bad tuner phase tag %d" n))

let enc_tuner e (s : Tuner.state) =
  enc_tuner_phase e s.Tuner.s_phase;
  Enc.int e s.Tuner.s_rounds;
  Enc.int e s.Tuner.s_tested_last_round;
  Enc.int e s.Tuner.s_total_exits;
  Enc.list Enc.int e s.Tuner.s_retune_exits;
  Enc.int e s.Tuner.s_retries;
  Enc.int e s.Tuner.s_backoff_skips;
  Enc.int e s.Tuner.s_skipped_configs;
  Enc.int e s.Tuner.s_verify_failures

let dec_tuner d =
  let s_phase = dec_tuner_phase d in
  let s_rounds = Dec.int d in
  let s_tested_last_round = Dec.int d in
  let s_total_exits = Dec.int d in
  let s_retune_exits = Dec.list Dec.int d in
  let s_retries = Dec.int d in
  let s_backoff_skips = Dec.int d in
  let s_skipped_configs = Dec.int d in
  let s_verify_failures = Dec.int d in
  {
    Tuner.s_phase;
    s_rounds;
    s_tested_last_round;
    s_total_exits;
    s_retune_exits;
    s_retries;
    s_backoff_skips;
    s_skipped_configs;
    s_verify_failures;
  }

let enc_framework e (s : Framework.state) =
  Enc.arr
    (Enc.opt (fun e (hs : Framework.hotspot_state_state) ->
         enc_tuner e hs.Framework.hs_tuner;
         Enc.int_arr e hs.Framework.hs_managed;
         Enc.bool e hs.Framework.hs_ever_configured;
         Enc.int e hs.Framework.hs_last_invoked))
    e s.Framework.s_states;
  Enc.arr (Enc.opt enc_acct) e s.Framework.s_accts;
  Enc.arr enc_cu e s.Framework.s_cus;
  Enc.int_arr e s.Framework.s_class_depth;
  Enc.int_arr e s.Framework.s_class_start;
  Enc.int_arr e s.Framework.s_covered;
  Enc.int_arr e s.Framework.s_tunings;
  Enc.int_arr e s.Framework.s_reconfigs;
  Enc.int_arr e s.Framework.s_class_hotspots;
  Enc.int_arr e s.Framework.s_tuned_hotspots;
  Enc.int_arr e s.Framework.s_retunes;
  Enc.int_arr e s.Framework.s_predicted;
  Enc.int_arr e s.Framework.s_believed;
  Enc.int_arr e s.Framework.s_mis_since;
  Enc.int_arr e s.Framework.s_misconfig;
  Enc.int_arr e s.Framework.s_verify_failures;
  Enc.int_arr e s.Framework.s_consec_badwrites;
  Enc.bool_arr e s.Framework.s_failed;
  Enc.int_arr e s.Framework.s_probe_countdown;
  Enc.int_arr e s.Framework.s_recoveries;
  Enc.int e s.Framework.s_quarantined;
  Enc.list Enc.int e s.Framework.s_frame_masks;
  Enc.int e s.Framework.s_invoke_tick;
  Enc.int e s.Framework.s_unmanaged;
  Enc.bool e s.Framework.s_finalized

let dec_framework d =
  let s_states =
    Dec.arr
      (Dec.opt (fun d ->
           let hs_tuner = dec_tuner d in
           let hs_managed = Dec.int_arr d in
           let hs_ever_configured = Dec.bool d in
           let hs_last_invoked = Dec.int d in
           { Framework.hs_tuner; hs_managed; hs_ever_configured; hs_last_invoked }))
      d
  in
  let s_accts = Dec.arr (Dec.opt dec_acct) d in
  let s_cus = Dec.arr dec_cu d in
  let s_class_depth = Dec.int_arr d in
  let s_class_start = Dec.int_arr d in
  let s_covered = Dec.int_arr d in
  let s_tunings = Dec.int_arr d in
  let s_reconfigs = Dec.int_arr d in
  let s_class_hotspots = Dec.int_arr d in
  let s_tuned_hotspots = Dec.int_arr d in
  let s_retunes = Dec.int_arr d in
  let s_predicted = Dec.int_arr d in
  let s_believed = Dec.int_arr d in
  let s_mis_since = Dec.int_arr d in
  let s_misconfig = Dec.int_arr d in
  let s_verify_failures = Dec.int_arr d in
  let s_consec_badwrites = Dec.int_arr d in
  let s_failed = Dec.bool_arr d in
  let s_probe_countdown = Dec.int_arr d in
  let s_recoveries = Dec.int_arr d in
  let s_quarantined = Dec.int d in
  let s_frame_masks = Dec.list Dec.int d in
  let s_invoke_tick = Dec.int d in
  let s_unmanaged = Dec.int d in
  let s_finalized = Dec.bool d in
  {
    Framework.s_states;
    s_accts;
    s_cus;
    s_class_depth;
    s_class_start;
    s_covered;
    s_tunings;
    s_reconfigs;
    s_class_hotspots;
    s_tuned_hotspots;
    s_retunes;
    s_predicted;
    s_believed;
    s_mis_since;
    s_misconfig;
    s_verify_failures;
    s_consec_badwrites;
    s_failed;
    s_probe_countdown;
    s_recoveries;
    s_quarantined;
    s_frame_masks;
    s_invoke_tick;
    s_unmanaged;
    s_finalized;
  }

let enc_bbv_measurement e (m : Bbv_scheme.measurement_state) =
  Enc.int_arr e m.Bbv_scheme.ms_config;
  Enc.f64 e m.Bbv_scheme.ms_energy;
  Enc.f64 e m.Bbv_scheme.ms_ipc

let dec_bbv_measurement d =
  let ms_config = Dec.int_arr d in
  let ms_energy = Dec.f64 d in
  let ms_ipc = Dec.f64 d in
  { Bbv_scheme.ms_config; ms_energy; ms_ipc }

let enc_bbv e (s : Bbv_scheme.state) =
  Enc.int_arr e s.Bbv_scheme.s_vector.Vector.s_counters;
  Enc.int e s.Bbv_scheme.s_vector.Vector.s_total;
  (let tr = s.Bbv_scheme.s_tracker in
   Enc.arr Enc.f64_arr e tr.Tracker.s_signatures;
   Enc.int_arr e tr.Tracker.s_counts;
   Enc.int e tr.Tracker.s_n_intervals;
   Enc.int e tr.Tracker.s_n_stable;
   Enc.int e tr.Tracker.s_cur_phase;
   Enc.int e tr.Tracker.s_cur_run);
  Enc.arr
    (fun e (ps : Bbv_scheme.phase_state_state) ->
      Enc.int e ps.Bbv_scheme.ps_next;
      Enc.list enc_bbv_measurement e ps.Bbv_scheme.ps_measurements;
      Enc.opt Enc.int_arr e ps.Bbv_scheme.ps_best;
      enc_running e ps.Bbv_scheme.ps_ipc_stats)
    e s.Bbv_scheme.s_phases;
  Enc.arr (Enc.opt enc_acct) e s.Bbv_scheme.s_accts;
  Enc.arr enc_cu e s.Bbv_scheme.s_cus;
  Enc.opt
    (fun e (phase, idx, stage) ->
      Enc.int e phase;
      Enc.int e idx;
      Enc.u8 e (match stage with `Warm -> 0 | `Measure -> 1))
    e s.Bbv_scheme.s_pending;
  Enc.int e s.Bbv_scheme.s_instrs0;
  Enc.f64 e s.Bbv_scheme.s_cycles0;
  Enc.int e s.Bbv_scheme.s_l1a0;
  Enc.int e s.Bbv_scheme.s_l1m0;
  Enc.int e s.Bbv_scheme.s_l2a0;
  Enc.int e s.Bbv_scheme.s_l2m0;
  (let p = s.Bbv_scheme.s_predictor in
   Enc.arr
     (fun e (prev, succs) ->
       Enc.int e prev;
       Enc.arr
         (fun e (next, count) ->
           Enc.int e next;
           Enc.int e count)
         e succs)
     e p.Next_phase.s_transitions;
   Enc.int e p.Next_phase.s_n_predictions;
   Enc.int e p.Next_phase.s_n_correct);
  Enc.int e s.Bbv_scheme.s_prev_phase;
  Enc.opt Enc.int e s.Bbv_scheme.s_pending_prediction;
  Enc.int e s.Bbv_scheme.s_n_tunings;
  Enc.int_arr e s.Bbv_scheme.s_reconfigs;
  Enc.bool e s.Bbv_scheme.s_finalized

let dec_bbv d =
  let s_counters = Dec.int_arr d in
  let s_total = Dec.int d in
  let s_vector = { Vector.s_counters; s_total } in
  let s_signatures = Dec.arr Dec.f64_arr d in
  let s_counts = Dec.int_arr d in
  let s_n_intervals = Dec.int d in
  let s_n_stable = Dec.int d in
  let s_cur_phase = Dec.int d in
  let s_cur_run = Dec.int d in
  let s_tracker =
    { Tracker.s_signatures; s_counts; s_n_intervals; s_n_stable; s_cur_phase; s_cur_run }
  in
  let s_phases =
    Dec.arr
      (fun d ->
        let ps_next = Dec.int d in
        let ps_measurements = Dec.list dec_bbv_measurement d in
        let ps_best = Dec.opt Dec.int_arr d in
        let ps_ipc_stats = dec_running d in
        { Bbv_scheme.ps_next; ps_measurements; ps_best; ps_ipc_stats })
      d
  in
  let s_accts = Dec.arr (Dec.opt dec_acct) d in
  let s_cus = Dec.arr dec_cu d in
  let s_pending =
    Dec.opt
      (fun d ->
        let phase = Dec.int d in
        let idx = Dec.int d in
        let stage =
          match Dec.u8 d with
          | 0 -> `Warm
          | 1 -> `Measure
          | n -> raise (Codec.Error (Printf.sprintf "bad pending stage tag %d" n))
        in
        (phase, idx, stage))
      d
  in
  let s_instrs0 = Dec.int d in
  let s_cycles0 = Dec.f64 d in
  let s_l1a0 = Dec.int d in
  let s_l1m0 = Dec.int d in
  let s_l2a0 = Dec.int d in
  let s_l2m0 = Dec.int d in
  let s_transitions =
    Dec.arr
      (fun d ->
        let prev = Dec.int d in
        let succs =
          Dec.arr
            (fun d ->
              let next = Dec.int d in
              let count = Dec.int d in
              (next, count))
            d
        in
        (prev, succs))
      d
  in
  let s_n_predictions = Dec.int d in
  let s_n_correct = Dec.int d in
  let s_predictor = { Next_phase.s_transitions; s_n_predictions; s_n_correct } in
  let s_prev_phase = Dec.int d in
  let s_pending_prediction = Dec.opt Dec.int d in
  let s_n_tunings = Dec.int d in
  let s_reconfigs = Dec.int_arr d in
  let s_finalized = Dec.bool d in
  {
    Bbv_scheme.s_vector;
    s_tracker;
    s_phases;
    s_accts;
    s_cus;
    s_pending;
    s_instrs0;
    s_cycles0;
    s_l1a0;
    s_l1m0;
    s_l2a0;
    s_l2m0;
    s_predictor;
    s_prev_phase;
    s_pending_prediction;
    s_n_tunings;
    s_reconfigs;
    s_finalized;
  }

let enc_sample_config e (c : Sample.config) =
  Enc.int e c.Sample.warmup;
  Enc.int e c.Sample.repeats;
  Enc.f64 e c.Sample.cov_bound;
  Enc.int e c.Sample.recalibrate_every

let dec_sample_config d =
  let warmup = Dec.int d in
  let repeats = Dec.int d in
  let cov_bound = Dec.f64 d in
  let recalibrate_every = Dec.int d in
  { Sample.warmup; repeats; cov_bound; recalibrate_every }

let enc_meta e m =
  Enc.str e m.workload;
  Enc.u8 e (match m.scheme with Baseline -> 0 | Hotspot -> 1 | Bbv -> 2);
  Enc.f64 e m.scale;
  Enc.int e m.seed;
  Enc.int e m.hot_threshold;
  Enc.bool e m.with_issue_queue;
  Enc.bool e m.bbv_prediction;
  Enc.bool e m.resilient;
  Enc.opt Enc.f64 e m.fault_rate;
  Enc.int e m.checkpoint_every;
  Enc.opt enc_sample_config e m.sample

let dec_meta d =
  let workload = Dec.str d in
  let scheme =
    match Dec.u8 d with
    | 0 -> Baseline
    | 1 -> Hotspot
    | 2 -> Bbv
    | n -> raise (Codec.Error (Printf.sprintf "bad scheme tag %d" n))
  in
  let scale = Dec.f64 d in
  let seed = Dec.int d in
  let hot_threshold = Dec.int d in
  let with_issue_queue = Dec.bool d in
  let bbv_prediction = Dec.bool d in
  let resilient = Dec.bool d in
  let fault_rate = Dec.opt Dec.f64 d in
  let checkpoint_every = Dec.int d in
  let sample = Dec.opt dec_sample_config d in
  {
    workload;
    scheme;
    scale;
    seed;
    hot_threshold;
    with_issue_queue;
    bbv_prediction;
    resilient;
    fault_rate;
    checkpoint_every;
    sample;
  }

(* Observability sink state (format v2): metrics registry image, retained
   ring events, drop count. *)

let enc_event e (ev : Obs.event) =
  Enc.int e ev.Obs.ts;
  match ev.Obs.kind with
  | Obs.Phase_enter { id; name } ->
      Enc.u8 e 0;
      Enc.int e id;
      Enc.str e name
  | Obs.Phase_exit { id; ipc } ->
      Enc.u8 e 1;
      Enc.int e id;
      Enc.f64 e ipc
  | Obs.Hotspot_promoted { id; name } ->
      Enc.u8 e 2;
      Enc.int e id;
      Enc.str e name
  | Obs.Recompile { id } ->
      Enc.u8 e 3;
      Enc.int e id
  | Obs.Trial_start { id; cfg } ->
      Enc.u8 e 4;
      Enc.int e id;
      Enc.str e cfg
  | Obs.Trial_result { id; cfg; energy; ipc } ->
      Enc.u8 e 5;
      Enc.int e id;
      Enc.str e cfg;
      Enc.f64 e energy;
      Enc.f64 e ipc
  | Obs.Burn_in { id; left } ->
      Enc.u8 e 6;
      Enc.int e id;
      Enc.int e left
  | Obs.Tuning_finished { id; best; tested } ->
      Enc.u8 e 7;
      Enc.int e id;
      Enc.str e best;
      Enc.int e tested
  | Obs.Drift_sample { id; ipc; ref_ipc } ->
      Enc.u8 e 8;
      Enc.int e id;
      Enc.f64 e ipc;
      Enc.f64 e ref_ipc
  | Obs.Retune { id; drift } ->
      Enc.u8 e 9;
      Enc.int e id;
      Enc.f64 e drift
  | Obs.Quarantine { id } ->
      Enc.u8 e 10;
      Enc.int e id
  | Obs.Cu_failed { cu } ->
      Enc.u8 e 11;
      Enc.str e cu
  | Obs.Cu_recovered { cu } ->
      Enc.u8 e 12;
      Enc.str e cu
  | Obs.Reconfig { cu; label; flushed } ->
      Enc.u8 e 13;
      Enc.str e cu;
      Enc.str e label;
      Enc.int e flushed
  | Obs.Fault { cu; what } ->
      Enc.u8 e 14;
      Enc.str e cu;
      Enc.str e what
  | Obs.Ckpt_capture { bytes } ->
      Enc.u8 e 15;
      Enc.int e bytes
  | Obs.Ckpt_restore { instrs } ->
      Enc.u8 e 16;
      Enc.int e instrs
  | Obs.Job_state { id; state } ->
      Enc.u8 e 17;
      Enc.int e id;
      Enc.str e state
  | Obs.Io_fault { op; path } ->
      Enc.u8 e 18;
      Enc.str e op;
      Enc.str e path
  | Obs.Phase_splice { id; instrs } ->
      Enc.u8 e 19;
      Enc.int e id;
      Enc.int e instrs

let dec_event d : Obs.event =
  let ts = Dec.int d in
  let kind =
    match Dec.u8 d with
    | 0 ->
        let id = Dec.int d in
        Obs.Phase_enter { id; name = Dec.str d }
    | 1 ->
        let id = Dec.int d in
        Obs.Phase_exit { id; ipc = Dec.f64 d }
    | 2 ->
        let id = Dec.int d in
        Obs.Hotspot_promoted { id; name = Dec.str d }
    | 3 -> Obs.Recompile { id = Dec.int d }
    | 4 ->
        let id = Dec.int d in
        Obs.Trial_start { id; cfg = Dec.str d }
    | 5 ->
        let id = Dec.int d in
        let cfg = Dec.str d in
        let energy = Dec.f64 d in
        Obs.Trial_result { id; cfg; energy; ipc = Dec.f64 d }
    | 6 ->
        let id = Dec.int d in
        Obs.Burn_in { id; left = Dec.int d }
    | 7 ->
        let id = Dec.int d in
        let best = Dec.str d in
        Obs.Tuning_finished { id; best; tested = Dec.int d }
    | 8 ->
        let id = Dec.int d in
        let ipc = Dec.f64 d in
        Obs.Drift_sample { id; ipc; ref_ipc = Dec.f64 d }
    | 9 ->
        let id = Dec.int d in
        Obs.Retune { id; drift = Dec.f64 d }
    | 10 -> Obs.Quarantine { id = Dec.int d }
    | 11 -> Obs.Cu_failed { cu = Dec.str d }
    | 12 -> Obs.Cu_recovered { cu = Dec.str d }
    | 13 ->
        let cu = Dec.str d in
        let label = Dec.str d in
        Obs.Reconfig { cu; label; flushed = Dec.int d }
    | 14 ->
        let cu = Dec.str d in
        Obs.Fault { cu; what = Dec.str d }
    | 15 -> Obs.Ckpt_capture { bytes = Dec.int d }
    | 16 -> Obs.Ckpt_restore { instrs = Dec.int d }
    | 17 ->
        let id = Dec.int d in
        Obs.Job_state { id; state = Dec.str d }
    | 18 ->
        let op = Dec.str d in
        Obs.Io_fault { op; path = Dec.str d }
    | 19 ->
        let id = Dec.int d in
        Obs.Phase_splice { id; instrs = Dec.int d }
    | n -> raise (Codec.Error (Printf.sprintf "bad obs event tag %d" n))
  in
  { Obs.ts; kind }

let enc_obs e (s : Obs.state) =
  Enc.arr
    (fun e (name, v) ->
      Enc.str e name;
      Enc.int e v)
    e s.Obs.s_metrics.Obs.ms_counters;
  Enc.arr
    (fun e (name, v) ->
      Enc.str e name;
      Enc.f64 e v)
    e s.Obs.s_metrics.Obs.ms_gauges;
  Enc.arr
    (fun e (name, bounds, counts, total, sum) ->
      Enc.str e name;
      Enc.f64_arr e bounds;
      Enc.int_arr e counts;
      Enc.int e total;
      Enc.f64 e sum)
    e s.Obs.s_metrics.Obs.ms_hists;
  Enc.arr enc_event e s.Obs.s_events;
  Enc.int e s.Obs.s_dropped

let dec_obs d : Obs.state =
  let ms_counters =
    Dec.arr
      (fun d ->
        let name = Dec.str d in
        (name, Dec.int d))
      d
  in
  let ms_gauges =
    Dec.arr
      (fun d ->
        let name = Dec.str d in
        (name, Dec.f64 d))
      d
  in
  let ms_hists =
    Dec.arr
      (fun d ->
        let name = Dec.str d in
        let bounds = Dec.f64_arr d in
        let counts = Dec.int_arr d in
        let total = Dec.int d in
        (name, bounds, counts, total, Dec.f64 d))
      d
  in
  let s_events = Dec.arr dec_event d in
  let s_dropped = Dec.int d in
  { Obs.s_metrics = { Obs.ms_counters; ms_gauges; ms_hists }; s_events; s_dropped }

(* Phase-statistics sampler image (format v4: keys may be behaviour
   clusters, statistics are CPI-normalized, and the learned per-method
   invocation lengths, header-to-cluster map and blocked-reason counters
   ride along). *)

let enc_key e (k : Sample.key) =
  match k with
  | Sample.K_meth m ->
      Enc.u8 e 0;
      Enc.int e m
  | Sample.K_cluster c ->
      Enc.u8 e 1;
      Enc.int e c

let dec_key d =
  match Dec.u8 d with
  | 0 -> Sample.K_meth (Dec.int d)
  | 1 -> Sample.K_cluster (Dec.int d)
  | n -> raise (Codec.Error (Printf.sprintf "bad sample key tag %d" n))

let enc_int_pairs e a =
  Enc.arr
    (fun e (x, y) ->
      Enc.int e x;
      Enc.int e y)
    e a

let dec_int_pairs d =
  Dec.arr
    (fun d ->
      let x = Dec.int d in
      let y = Dec.int d in
      (x, y))
    d

let enc_hw_sig e (s : Sample.hw_sig) =
  Enc.int e s.Sample.hs_l1d_bytes;
  Enc.int e s.Sample.hs_l2_bytes;
  Enc.i64 e s.Sample.hs_ilp_bits;
  Enc.i64 e s.Sample.hs_exposure_bits

let dec_hw_sig d =
  let hs_l1d_bytes = Dec.int d in
  let hs_l2_bytes = Dec.int d in
  let hs_ilp_bits = Dec.i64 d in
  let hs_exposure_bits = Dec.i64 d in
  { Sample.hs_l1d_bytes; hs_l2_bytes; hs_ilp_bits; hs_exposure_bits }

let enc_sample_state e (s : Sample.state) =
  Enc.arr
    (fun e (pe : Sample.phase_entry_state) ->
      enc_key e pe.Sample.pe_key;
      enc_hw_sig e pe.Sample.pe_sig;
      Enc.int e pe.Sample.pe_instrs;
      Enc.int e pe.Sample.pe_seen;
      Enc.f64 e pe.Sample.pe_cpi_sum;
      Enc.f64 e pe.Sample.pe_cpi_sumsq;
      enc_counts e pe.Sample.pe_counts;
      Enc.int e pe.Sample.pe_counts_instrs;
      Enc.bool e pe.Sample.pe_poisoned;
      Enc.int e pe.Sample.pe_since_measure)
    e s.Sample.s_entries;
  enc_int_pairs e s.Sample.s_meth_instrs;
  enc_int_pairs e s.Sample.s_cluster_of_meth;
  Enc.arr
    (fun e (os : Sample.obs_frame_state) ->
      Enc.int e os.Sample.os_meth;
      enc_key e os.Sample.os_key;
      enc_hw_sig e os.Sample.os_sig;
      Enc.int e os.Sample.os_instrs0;
      Enc.f64 e os.Sample.os_cycles0;
      enc_counts e os.Sample.os_counts0;
      Enc.int e os.Sample.os_resizes0;
      Enc.bool e os.Sample.os_dirty)
    e s.Sample.s_open;
  Enc.int e s.Sample.s_fault_events0;
  Enc.int e s.Sample.s_ff_instrs_active;
  Enc.int e s.Sample.s_observations;
  Enc.int e s.Sample.s_splices;
  Enc.int e s.Sample.s_spliced_instrs;
  Enc.int e s.Sample.s_blocked_quiescence;
  Enc.int e s.Sample.s_blocked_unsettled;
  Enc.int e s.Sample.s_blocked_open_obs;
  Enc.int e s.Sample.s_blocked_poisoned

let dec_sample_state d =
  let s_entries =
    Dec.arr
      (fun d ->
        let pe_key = dec_key d in
        let pe_sig = dec_hw_sig d in
        let pe_instrs = Dec.int d in
        let pe_seen = Dec.int d in
        let pe_cpi_sum = Dec.f64 d in
        let pe_cpi_sumsq = Dec.f64 d in
        let pe_counts = dec_counts d in
        let pe_counts_instrs = Dec.int d in
        let pe_poisoned = Dec.bool d in
        let pe_since_measure = Dec.int d in
        {
          Sample.pe_key;
          pe_sig;
          pe_instrs;
          pe_seen;
          pe_cpi_sum;
          pe_cpi_sumsq;
          pe_counts;
          pe_counts_instrs;
          pe_poisoned;
          pe_since_measure;
        })
      d
  in
  let s_meth_instrs = dec_int_pairs d in
  let s_cluster_of_meth = dec_int_pairs d in
  let s_open =
    Dec.arr
      (fun d ->
        let os_meth = Dec.int d in
        let os_key = dec_key d in
        let os_sig = dec_hw_sig d in
        let os_instrs0 = Dec.int d in
        let os_cycles0 = Dec.f64 d in
        let os_counts0 = dec_counts d in
        let os_resizes0 = Dec.int d in
        let os_dirty = Dec.bool d in
        {
          Sample.os_meth;
          os_key;
          os_sig;
          os_instrs0;
          os_cycles0;
          os_counts0;
          os_resizes0;
          os_dirty;
        })
      d
  in
  let s_fault_events0 = Dec.int d in
  let s_ff_instrs_active = Dec.int d in
  let s_observations = Dec.int d in
  let s_splices = Dec.int d in
  let s_spliced_instrs = Dec.int d in
  let s_blocked_quiescence = Dec.int d in
  let s_blocked_unsettled = Dec.int d in
  let s_blocked_open_obs = Dec.int d in
  let s_blocked_poisoned = Dec.int d in
  {
    Sample.s_entries;
    s_meth_instrs;
    s_cluster_of_meth;
    s_open;
    s_fault_events0;
    s_ff_instrs_active;
    s_observations;
    s_splices;
    s_spliced_instrs;
    s_blocked_quiescence;
    s_blocked_unsettled;
    s_blocked_open_obs;
    s_blocked_poisoned;
  }

let enc_snapshot e t =
  enc_meta e t.meta;
  enc_engine e t.engine;
  Enc.opt enc_faults e t.faults;
  (match t.scheme_state with
  | S_baseline -> Enc.u8 e 0
  | S_hotspot fw ->
      Enc.u8 e 1;
      enc_framework e fw
  | S_bbv sch ->
      Enc.u8 e 2;
      enc_bbv e sch);
  Enc.opt enc_obs e t.obs;
  Enc.opt enc_sample_state e t.sample_state

let dec_snapshot d =
  let meta = dec_meta d in
  let engine = dec_engine d in
  let faults = Dec.opt dec_faults d in
  let scheme_state =
    match Dec.u8 d with
    | 0 -> S_baseline
    | 1 -> S_hotspot (dec_framework d)
    | 2 -> S_bbv (dec_bbv d)
    | n -> raise (Codec.Error (Printf.sprintf "bad scheme state tag %d" n))
  in
  let obs = Dec.opt dec_obs d in
  let sample_state = Dec.opt dec_sample_state d in
  if not (Dec.at_end d) then
    raise (Codec.Error (Printf.sprintf "%d trailing bytes" (Dec.remaining d)));
  { meta; engine; faults; scheme_state; obs; sample_state }

(* {2 Container format}

   magic "ACESNAP1" (8 bytes) | version u16 LE | payload length i64 LE |
   CRC-32 (IEEE) of the payload, i64 LE | payload bytes.

   The header is fixed-width so a truncated file is detected before any
   payload parsing, and the CRC covers exactly the bytes the decoder will
   read. *)

let magic = "ACESNAP1"
let version = 4
(* v3: sampling — meta config, engine ff state, sampler cache.
   v4: cluster-keyed sampler cache — variant keys, CPI statistics,
   per-method instruction lengths, cluster map, blocked counters. *)
let header_len = 8 + 2 + 8 + 8

let encode t =
  let e = Enc.create () in
  enc_snapshot e t;
  let payload = Enc.contents e in
  let crc = Crc32.string payload in
  let h = Buffer.create (header_len + String.length payload) in
  Buffer.add_string h magic;
  Buffer.add_uint16_le h version;
  Buffer.add_int64_le h (Int64.of_int (String.length payload));
  Buffer.add_int64_le h (Int64.of_int crc);
  Buffer.add_string h payload;
  Buffer.contents h

let decode s =
  if String.length s < header_len then
    raise (Error (Truncated { expected = header_len; got = String.length s }));
  if String.sub s 0 8 <> magic then raise (Error Bad_magic);
  let v = Char.code s.[8] lor (Char.code s.[9] lsl 8) in
  if v <> version then
    raise (Error (Version_skew { found = v; expected = version }));
  let payload_len = Int64.to_int (String.get_int64_le s 10) in
  if payload_len < 0 then
    raise (Error (Malformed (Printf.sprintf "negative payload length %d" payload_len)));
  (* Fewer bytes than declared is the torn-write signature; more bytes is a
     structurally impossible container. *)
  if String.length s < header_len + payload_len then
    raise
      (Error
         (Truncated { expected = header_len + payload_len; got = String.length s }));
  if String.length s > header_len + payload_len then
    raise
      (Error
         (Malformed
            (Printf.sprintf "payload length %d does not match file size %d"
               payload_len (String.length s))));
  let crc_stored = Int64.to_int (String.get_int64_le s 18) in
  let payload = String.sub s header_len payload_len in
  let crc = Crc32.string payload in
  if crc <> crc_stored then
    raise (Error (Crc_mismatch { stored = crc_stored; computed = crc }));
  try dec_snapshot (Dec.create payload)
  with Codec.Error msg -> raise (Error (Malformed msg))

(* {2 File I/O} *)

let fallback_path path = path ^ ".1"

let write ?(io = Io.real) ?(faults = Faults.none) ?(obs = Obs.null) ~path t =
  let data = Bytes.of_string (encode t) in
  (* Storage-channel fault injection damages the bytes on their way to disk;
     the CRC then refuses them at read time and the reader falls back. *)
  ignore (Faults.maybe_corrupt_snapshot faults data);
  let tmp = path ^ ".tmp" in
  Io.write_file io tmp (Bytes.unsafe_to_string data);
  (* The tmp file must be on stable storage before it takes over the
     primary name: rename-before-fsync can leave [path] pointing at
     unwritten blocks after power loss. *)
  Io.fsync io tmp;
  (* Rotate: the previous snapshot survives as [path.1] so a corrupted or
     torn write of the newest snapshot never strands the run. *)
  if Io.exists io path then Io.rename io path (fallback_path path);
  Io.rename io tmp path;
  (* Ring-only by design: a metered checkpoint event would make a resumed
     run's metrics diverge from the uninterrupted run's.  Recorded after the
     rename, so the snapshot's own ring excludes its own capture. *)
  if Obs.tracing obs then
    Obs.record obs (Obs.Ckpt_capture { bytes = Bytes.length data })

let read ?(io = Io.real) ~path () =
  let data =
    try Io.read_file io path with
    | Sys_error msg -> raise (Error (Unreadable msg))
    | Io.Io_error _ as e ->
        raise (Error (Unreadable (Option.get (Io.error_message e))))
  in
  decode data

let read_with_fallback ?(io = Io.real) ~path () =
  match read ~io ~path () with
  | snap -> Some (snap, `Primary)
  | exception Error _ -> (
      let fb = fallback_path path in
      if not (Io.exists io fb) then None
      else match read ~io ~path:fb () with
        | snap -> Some (snap, `Fallback)
        | exception Error _ -> None)
