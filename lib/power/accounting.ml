type t = {
  family : Energy_model.family;
  mutable size : int;
  mutable epoch_accesses : int;  (* cumulative counter at epoch start *)
  mutable epoch_cycles : float;
  mutable dynamic_nj : float;
  mutable leakage_nj : float;
  mutable reconfig_nj : float;
  mutable reconfigs : int;
  mutable weighted_size_cycles : float;  (* sum of size * epoch cycles *)
  mutable closed_cycles : float;
}

let create family ~initial_size =
  {
    family;
    size = initial_size;
    epoch_accesses = 0;
    epoch_cycles = 0.0;
    dynamic_nj = 0.0;
    leakage_nj = 0.0;
    reconfig_nj = 0.0;
    reconfigs = 0;
    weighted_size_cycles = 0.0;
    closed_cycles = 0.0;
  }

let close_epoch t ~accesses_now ~cycles_now =
  let d_accesses = accesses_now - t.epoch_accesses in
  let d_cycles = cycles_now -. t.epoch_cycles in
  t.dynamic_nj <-
    t.dynamic_nj
    +. (float_of_int d_accesses
       *. Energy_model.access_energy_nj t.family ~size_bytes:t.size);
  t.leakage_nj <-
    t.leakage_nj
    +. (d_cycles *. Energy_model.leakage_nj_per_cycle t.family ~size_bytes:t.size);
  t.weighted_size_cycles <- t.weighted_size_cycles +. (float_of_int t.size *. d_cycles);
  t.closed_cycles <- t.closed_cycles +. d_cycles;
  t.epoch_accesses <- accesses_now;
  t.epoch_cycles <- cycles_now

let on_reconfig t ~new_size ~accesses_now ~cycles_now ~flushed_lines =
  close_epoch t ~accesses_now ~cycles_now;
  t.reconfig_nj <-
    t.reconfig_nj
    +. (float_of_int flushed_lines *. Energy_model.line_transfer_nj t.family);
  t.reconfigs <- t.reconfigs + 1;
  t.size <- new_size

let finish t ~accesses_now ~cycles_now = close_epoch t ~accesses_now ~cycles_now

let dynamic_nj t = t.dynamic_nj
let leakage_nj t = t.leakage_nj
let reconfig_nj t = t.reconfig_nj
let total_nj t = t.dynamic_nj +. t.leakage_nj +. t.reconfig_nj
let reconfig_count t = t.reconfigs

let time_weighted_avg_bytes t =
  if t.closed_cycles = 0.0 then float_of_int t.size
  else t.weighted_size_cycles /. t.closed_cycles

type state = {
  s_size : int;
  s_epoch_accesses : int;
  s_epoch_cycles : float;
  s_dynamic_nj : float;
  s_leakage_nj : float;
  s_reconfig_nj : float;
  s_reconfigs : int;
  s_weighted_size_cycles : float;
  s_closed_cycles : float;
}

let capture t =
  {
    s_size = t.size;
    s_epoch_accesses = t.epoch_accesses;
    s_epoch_cycles = t.epoch_cycles;
    s_dynamic_nj = t.dynamic_nj;
    s_leakage_nj = t.leakage_nj;
    s_reconfig_nj = t.reconfig_nj;
    s_reconfigs = t.reconfigs;
    s_weighted_size_cycles = t.weighted_size_cycles;
    s_closed_cycles = t.closed_cycles;
  }

let restore t s =
  t.size <- s.s_size;
  t.epoch_accesses <- s.s_epoch_accesses;
  t.epoch_cycles <- s.s_epoch_cycles;
  t.dynamic_nj <- s.s_dynamic_nj;
  t.leakage_nj <- s.s_leakage_nj;
  t.reconfig_nj <- s.s_reconfig_nj;
  t.reconfigs <- s.s_reconfigs;
  t.weighted_size_cycles <- s.s_weighted_size_cycles;
  t.closed_cycles <- s.s_closed_cycles
