(** Per-unit energy accounting by configuration epochs.

    A configurable cache spends its life in *epochs*, each at one size.  The
    engine (or scheme) closes an epoch whenever the unit is reconfigured and
    once at the end of the run; this module turns the per-epoch access and
    cycle deltas into energy using {!Energy_model}, and adds the
    reconfiguration energy of the flushed dirty lines — the overhead term the
    paper's augmented power model accounts for (§4.1). *)

type t

val create : Energy_model.family -> initial_size:int -> t
(** Start accounting with the unit at [initial_size] bytes, zero accesses and
    zero cycles. *)

val on_reconfig :
  t -> new_size:int -> accesses_now:int -> cycles_now:float -> flushed_lines:int -> unit
(** Close the current epoch at the cumulative counter values [accesses_now]
    (the cache's access counter) and [cycles_now] (the global cycle count),
    charge the flush, and open an epoch at [new_size]. *)

val finish : t -> accesses_now:int -> cycles_now:float -> unit
(** Close the final epoch.  Idempotent only if counters do not advance. *)

val dynamic_nj : t -> float
val leakage_nj : t -> float
val reconfig_nj : t -> float

val total_nj : t -> float
(** Sum of the three components over all closed epochs. *)

val reconfig_count : t -> int
(** Number of [on_reconfig] calls (actual size changes as seen by the
    accountant). *)

val time_weighted_avg_bytes : t -> float
(** Average configured size weighted by cycles, over closed epochs.
    Diagnostic for the energy results. *)

(** Full accounting state (the unit's family is fixed at creation and not
    part of it), for checkpoint serialization. *)
type state = {
  s_size : int;
  s_epoch_accesses : int;
  s_epoch_cycles : float;
  s_dynamic_nj : float;
  s_leakage_nj : float;
  s_reconfig_nj : float;
  s_reconfigs : int;
  s_weighted_size_cycles : float;
  s_closed_cycles : float;
}

val capture : t -> state
val restore : t -> state -> unit
