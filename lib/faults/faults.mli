(** Seeded, composable hardware fault injection.

    Real adaptive hardware is messier than the paper's model: control-register
    writes can be lost or bit-flipped in flight, a CU can latch up
    (transiently or permanently) at its current setting, performance-counter
    readouts carry measurement noise and outlier spikes, and the VM's timer
    interrupt jitters.  This module models all four fault classes behind one
    seeded generator so that any experiment can be re-run under identical
    fault schedules from a single integer seed.

    The injector is strictly opt-in: {!none} is the distinguished fault-free
    instance, costs no RNG draws, and leaves every consumer bit-for-bit
    identical to a build without fault hooks.  Consumers ({!Ace_core.Hw},
    [Ace_core.Framework], [Ace_vm.Engine]) accept a [Faults.t] and query it
    at their injection points; all decisions and statistics live here. *)

type config = {
  reg_write_drop_p : float;
      (** Probability that a guard-accepted control-register write is silently
          lost: the hardware reports success but the setting does not change. *)
  reg_write_corrupt_p : float;
      (** Probability that a guard-accepted write lands bit-flipped: a
          different (valid) setting is installed than the one requested. *)
  stuck_transient_p : float;
      (** Per-write probability that the CU latches at the setting just
          written and ignores writes for [stuck_transient_instrs]. *)
  stuck_transient_instrs : int;  (** Duration of a transient latch-up. *)
  stuck_permanent_p : float;
      (** Per-write probability that the CU latches permanently. *)
  profile_noise_cov : float;
      (** Coefficient of variation of multiplicative measurement noise
          applied to exit-profile cycle counts (and hence IPC and
          leakage-energy estimates). *)
  profile_spike_p : float;
      (** Probability that an exit profile is an outlier spike. *)
  profile_spike_mag : float;
      (** Relative magnitude of a spike: cycles are multiplied by
          [1 + profile_spike_mag]. *)
  sampler_jitter_frac : float;
      (** Relative jitter of the VM sampler period: each tick's period is
          scaled uniformly within [1 +- sampler_jitter_frac]. *)
  ckpt_corrupt_p : float;
      (** Probability that a checkpoint snapshot written to storage is
          corrupted (one byte flipped), exercising the reader's CRC check
          and fallback path. *)
}

val no_faults : config
(** All probabilities and magnitudes zero. *)

val preset : rate:float -> config
(** A one-knob fault model: [rate] is the register-write drop probability;
    the other fault classes are scaled from it (corruption at [rate],
    transient latch-up at [rate/2] for 5 M instructions, permanent latch-up
    at [rate/20], measurement spikes at [2*rate] of magnitude 1.5, noise CoV
    [2*rate], sampler jitter [5*rate], snapshot corruption at [2*rate]).
    [preset ~rate:0.0] equals {!no_faults}.
    @raise Invalid_argument if [rate] is outside [0, 1] (including NaN). *)

type t
(** A fault injector: a configuration plus a private RNG stream and the
    per-CU latch-up state. *)

val none : t
(** The fault-free injector: every query takes its zero-cost early-out path,
    draws no random numbers, and perturbs nothing. *)

val is_none : t -> bool

val create : ?seed:int -> ?obs:Ace_obs.Obs.t -> config -> t
(** A fresh injector with its own RNG stream (default seed 2005).  Equal
    seeds and configurations yield identical fault schedules.  [obs]
    receives per-channel fault counters and, at [Full] level, [Fault] ring
    events (sampler jitter stays counter-only to avoid flooding). *)

val config : t -> config
(** The injector's configuration ({!no_faults} for {!none}). *)

(** Outcome of a control-register write that passed the hardware guard. *)
type write_outcome =
  | Landed  (** The write took effect as requested. *)
  | Dropped
      (** The write was lost (or the CU is latched): hardware still reports
          success, the setting is unchanged. *)
  | Corrupted of int  (** The write landed at this other (valid) setting. *)

val on_reg_write :
  t -> cu:string -> now_instrs:int -> setting:int -> n_settings:int ->
  write_outcome
(** Decide the fate of a guard-accepted write of [setting] to the named CU.
    Also advances the CU's latch-up state: a write that lands may latch the
    CU transiently or permanently at the new setting.  With {!none} this is
    always [Landed]. *)

val cu_stuck : t -> cu:string -> now_instrs:int -> bool
(** Whether the named CU is currently latched (diagnostics). *)

val perturb_cycles : t -> cycles:float -> float
(** Apply multiplicative measurement noise (and possibly an outlier spike)
    to a profile's cycle count.  Identity under {!none} or when both noise
    knobs are zero — no RNG draws in either case. *)

val jitter_period : t -> period:float -> float
(** Jitter one sampler period.  Identity (and draw-free) under {!none} or a
    zero jitter fraction. *)

(** Cumulative injection counts (what the schedule actually did). *)
type stats = {
  writes_dropped : int;
  writes_corrupted : int;
  stuck_events : int;  (** Latch-ups entered (transient or permanent). *)
  spikes : int;
  jittered_ticks : int;
  snapshots_corrupted : int;  (** Snapshots damaged on the storage channel. *)
}

val stats : t -> stats
(** All-zero for {!none}. *)

val hw_fault_events : t -> int
(** Monotone count of hardware-channel fault events (dropped/corrupted
    register writes and latch-ups) — the faults that change the machine's
    effective configuration.  The sampled-simulation phase cache polls this
    and invalidates its entries whenever it moves; measurement-channel
    faults (profile noise/spikes, timer jitter) are excluded because they
    do not perturb the machine.  0 for {!none}. *)

val maybe_corrupt_snapshot : t -> bytes -> bool
(** With probability [ckpt_corrupt_p], flip one byte of [buf] in place
    (uniformly chosen position) and return [true].  Identity and draw-free
    under {!none} or a zero probability.  Draws from a dedicated
    storage-channel RNG stream, so writing (or not writing) checkpoints
    never changes the engine-visible fault schedule. *)

val storage_io : ?seed:int -> rate:float -> Ace_util.Io.t -> Ace_util.Io.t
(** Wrap a filesystem backend with seeded storage-fault injection
    ([Io.fault_preset ~rate]: short/torn writes, [ENOSPC], [EIO], lost
    fsyncs, rename failures).  Draws from a dedicated stream derived from
    [seed] (default 2005, matching {!create}) — distinct from both the
    engine stream and the checkpoint-corruption stream, so storage faults
    never perturb the simulated fault schedule.  Deliberately stateless
    with respect to {!t} and absent from {!state}: filesystem faults hit
    the host around the simulation, not the simulated machine, so they are
    not part of snapshot state. *)

(** {2 Checkpoint capture / restore}

    The injector's own RNG stream and latch table are part of the simulator
    state: a resumed run must see the identical fault schedule. *)

type latch_state = { ls_cu : string; ls_until : int option }
(** One latched CU; [ls_until = None] means a permanent latch-up. *)

type state = {
  s_rng : int64;
  s_ckpt_rng : int64;  (** The storage-channel stream. *)
  s_latched : latch_state array;  (** Sorted by CU name. *)
  s_writes_dropped : int;
  s_writes_corrupted : int;
  s_stuck_events : int;
  s_spikes : int;
  s_jittered_ticks : int;
  s_snapshots_corrupted : int;
}

val capture : t -> state option
(** [None] for {!none}. *)

val restore : t -> state option -> unit
(** @raise Invalid_argument if exactly one of injector and state is the
    fault-free [None]. *)
