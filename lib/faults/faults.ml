module Rng = Ace_util.Rng
module Io = Ace_util.Io
module Obs = Ace_obs.Obs

type config = {
  reg_write_drop_p : float;
  reg_write_corrupt_p : float;
  stuck_transient_p : float;
  stuck_transient_instrs : int;
  stuck_permanent_p : float;
  profile_noise_cov : float;
  profile_spike_p : float;
  profile_spike_mag : float;
  sampler_jitter_frac : float;
  ckpt_corrupt_p : float;
}

let no_faults =
  {
    reg_write_drop_p = 0.0;
    reg_write_corrupt_p = 0.0;
    stuck_transient_p = 0.0;
    stuck_transient_instrs = 0;
    stuck_permanent_p = 0.0;
    profile_noise_cov = 0.0;
    profile_spike_p = 0.0;
    profile_spike_mag = 0.0;
    sampler_jitter_frac = 0.0;
    ckpt_corrupt_p = 0.0;
  }

let preset ~rate =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg
      (Printf.sprintf "Faults.preset: rate %g outside [0, 1]" rate);
  {
    reg_write_drop_p = rate;
    reg_write_corrupt_p = rate;
    (* Latch-ups are mostly transient (a permanent one is an order of
       magnitude rarer): the interesting regime is a CU that stops taking
       writes for a few million instructions and then comes back, which
       rewards recovery probing over writing the CU off.  Measurement
       spikes dominate the profile channel: a single spiked sample reads as
       a large behaviour change, so an unconfirmed drift check re-tunes in
       storms while a confirming one shrugs it off. *)
    stuck_transient_p = rate;
    stuck_transient_instrs = 5_000_000;
    stuck_permanent_p = rate /. 20.0;
    profile_noise_cov = 2.0 *. rate;
    profile_spike_p = 5.0 *. rate;
    profile_spike_mag = 1.5;
    sampler_jitter_frac = 5.0 *. rate;
    (* Snapshot corruption is a storage-channel fault: much rarer per event
       than a register glitch, but each one costs a whole checkpoint. *)
    ckpt_corrupt_p = 2.0 *. rate;
  }

type latch = Stuck_until of int | Stuck_forever

type stats = {
  writes_dropped : int;
  writes_corrupted : int;
  stuck_events : int;
  spikes : int;
  jittered_ticks : int;
  snapshots_corrupted : int;
}

type active = {
  cfg : config;
  rng : Rng.t;
  ckpt_rng : Rng.t;
      (* The storage channel draws from its own stream: snapshot writes must
         not advance [rng], or checkpointing would perturb the engine-visible
         fault schedule and break resume determinism. *)
  latched : (string, latch) Hashtbl.t;
  mutable writes_dropped : int;
  mutable writes_corrupted : int;
  mutable stuck_events : int;
  mutable spikes : int;
  mutable jittered_ticks : int;
  mutable snapshots_corrupted : int;
  obs : Obs.t;
  m_dropped : Obs.counter;
  m_corrupted : Obs.counter;
  m_stuck : Obs.counter;
  m_spikes : Obs.counter;
  m_jitter : Obs.counter;
}

type t = active option

let none = None
let is_none t = Option.is_none t

let create ?(seed = 2005) ?(obs = Obs.null) cfg =
  Some
    {
      cfg;
      rng = Rng.create ~seed;
      ckpt_rng = Rng.create ~seed:(seed + 7919);
      latched = Hashtbl.create 8;
      writes_dropped = 0;
      writes_corrupted = 0;
      stuck_events = 0;
      spikes = 0;
      jittered_ticks = 0;
      snapshots_corrupted = 0;
      obs;
      m_dropped = Obs.counter obs "faults.writes_dropped";
      m_corrupted = Obs.counter obs "faults.writes_corrupted";
      m_stuck = Obs.counter obs "faults.stuck_events";
      m_spikes = Obs.counter obs "faults.spikes";
      m_jitter = Obs.counter obs "faults.jittered_ticks";
    }

let config t = match t with None -> no_faults | Some a -> a.cfg

let latched a ~cu ~now_instrs =
  match Hashtbl.find_opt a.latched cu with
  | None -> false
  | Some Stuck_forever -> true
  | Some (Stuck_until until) ->
      if now_instrs < until then true
      else begin
        Hashtbl.remove a.latched cu;
        false
      end

let cu_stuck t ~cu ~now_instrs =
  match t with None -> false | Some a -> latched a ~cu ~now_instrs

type write_outcome = Landed | Dropped | Corrupted of int

(* A corrupted write lands at a uniformly chosen *other* valid setting. *)
let corrupt_setting rng ~setting ~n_settings =
  let other = Rng.int rng (n_settings - 1) in
  if other >= setting then other + 1 else other

let maybe_latch a ~cu ~now_instrs =
  if a.cfg.stuck_permanent_p > 0.0 && Rng.bernoulli a.rng a.cfg.stuck_permanent_p
  then begin
    Hashtbl.replace a.latched cu Stuck_forever;
    a.stuck_events <- a.stuck_events + 1;
    Obs.incr a.obs a.m_stuck;
    if Obs.tracing a.obs then
      Obs.record a.obs (Obs.Fault { cu; what = "latch_permanent" })
  end
  else if
    a.cfg.stuck_transient_p > 0.0 && Rng.bernoulli a.rng a.cfg.stuck_transient_p
  then begin
    Hashtbl.replace a.latched cu
      (Stuck_until (now_instrs + a.cfg.stuck_transient_instrs));
    a.stuck_events <- a.stuck_events + 1;
    Obs.incr a.obs a.m_stuck;
    if Obs.tracing a.obs then Obs.record a.obs (Obs.Fault { cu; what = "latch" })
  end

let on_reg_write t ~cu ~now_instrs ~setting ~n_settings =
  match t with
  | None -> Landed
  | Some a ->
      if latched a ~cu ~now_instrs then begin
        a.writes_dropped <- a.writes_dropped + 1;
        Obs.incr a.obs a.m_dropped;
        if Obs.tracing a.obs then
          Obs.record a.obs (Obs.Fault { cu; what = "write_dropped" });
        Dropped
      end
      else if
        a.cfg.reg_write_drop_p > 0.0 && Rng.bernoulli a.rng a.cfg.reg_write_drop_p
      then begin
        a.writes_dropped <- a.writes_dropped + 1;
        Obs.incr a.obs a.m_dropped;
        if Obs.tracing a.obs then
          Obs.record a.obs (Obs.Fault { cu; what = "write_dropped" });
        Dropped
      end
      else if
        a.cfg.reg_write_corrupt_p > 0.0
        && n_settings > 1
        && Rng.bernoulli a.rng a.cfg.reg_write_corrupt_p
      then begin
        a.writes_corrupted <- a.writes_corrupted + 1;
        Obs.incr a.obs a.m_corrupted;
        if Obs.tracing a.obs then
          Obs.record a.obs (Obs.Fault { cu; what = "write_corrupted" });
        let wrong = corrupt_setting a.rng ~setting ~n_settings in
        maybe_latch a ~cu ~now_instrs;
        Corrupted wrong
      end
      else begin
        maybe_latch a ~cu ~now_instrs;
        Landed
      end

let perturb_cycles t ~cycles =
  match t with
  | None -> cycles
  | Some a ->
      let cycles =
        if a.cfg.profile_noise_cov <= 0.0 then cycles
        else begin
          (* Uniform multiplicative noise with the requested CoV: a uniform
             on [-h, h] has sigma = h/sqrt(3). *)
          let h = a.cfg.profile_noise_cov *. sqrt 3.0 in
          cycles *. (1.0 +. ((Rng.float a.rng 2.0 -. 1.0) *. h))
        end
      in
      if a.cfg.profile_spike_p > 0.0 && Rng.bernoulli a.rng a.cfg.profile_spike_p
      then begin
        a.spikes <- a.spikes + 1;
        Obs.incr a.obs a.m_spikes;
        if Obs.tracing a.obs then
          Obs.record a.obs (Obs.Fault { cu = "profile"; what = "spike" });
        cycles *. (1.0 +. a.cfg.profile_spike_mag)
      end
      else cycles

let jitter_period t ~period =
  match t with
  | None -> period
  | Some a ->
      if a.cfg.sampler_jitter_frac <= 0.0 then period
      else begin
        a.jittered_ticks <- a.jittered_ticks + 1;
        (* Counter only: a ring event per sampler tick would flood it. *)
        Obs.incr a.obs a.m_jitter;
        period
        *. (1.0 +. ((Rng.float a.rng 2.0 -. 1.0) *. a.cfg.sampler_jitter_frac))
      end

(* Monotone count of hardware-channel fault events (dropped/corrupted
   writes and latch-ups) — the faults that change the machine's effective
   configuration.  The phase-statistics cache polls this and invalidates
   itself when it moves; measurement-channel faults (noise, spikes, timer
   jitter) do not perturb the machine and are excluded. *)
let hw_fault_events t =
  match t with
  | None -> 0
  | Some a -> a.writes_dropped + a.writes_corrupted + a.stuck_events

let stats t =
  match t with
  | None ->
      {
        writes_dropped = 0;
        writes_corrupted = 0;
        stuck_events = 0;
        spikes = 0;
        jittered_ticks = 0;
        snapshots_corrupted = 0;
      }
  | Some a ->
      {
        writes_dropped = a.writes_dropped;
        writes_corrupted = a.writes_corrupted;
        stuck_events = a.stuck_events;
        spikes = a.spikes;
        jittered_ticks = a.jittered_ticks;
        snapshots_corrupted = a.snapshots_corrupted;
      }

let maybe_corrupt_snapshot t buf =
  match t with
  | None -> false
  | Some a ->
      if
        a.cfg.ckpt_corrupt_p > 0.0
        && Bytes.length buf > 0
        && Rng.bernoulli a.ckpt_rng a.cfg.ckpt_corrupt_p
      then begin
        let pos = Rng.int a.ckpt_rng (Bytes.length buf) in
        (* XOR with a nonzero mask so the byte is guaranteed to change. *)
        Bytes.set buf pos
          (Char.chr (Char.code (Bytes.get buf pos) lxor 0x55));
        a.snapshots_corrupted <- a.snapshots_corrupted + 1;
        true
      end
      else false

(* {2 Checkpoint capture / restore} *)

type latch_state = { ls_cu : string; ls_until : int option }

type state = {
  s_rng : int64;
  s_ckpt_rng : int64;
  s_latched : latch_state array;  (* sorted by CU name *)
  s_writes_dropped : int;
  s_writes_corrupted : int;
  s_stuck_events : int;
  s_spikes : int;
  s_jittered_ticks : int;
  s_snapshots_corrupted : int;
}

let capture t =
  Option.map
    (fun a ->
      let latched =
        Hashtbl.fold
          (fun cu latch acc ->
            {
              ls_cu = cu;
              ls_until =
                (match latch with
                | Stuck_forever -> None
                | Stuck_until n -> Some n);
            }
            :: acc)
          a.latched []
        |> List.sort compare |> Array.of_list
      in
      {
        s_rng = Rng.to_state a.rng;
        s_ckpt_rng = Rng.to_state a.ckpt_rng;
        s_latched = latched;
        s_writes_dropped = a.writes_dropped;
        s_writes_corrupted = a.writes_corrupted;
        s_stuck_events = a.stuck_events;
        s_spikes = a.spikes;
        s_jittered_ticks = a.jittered_ticks;
        s_snapshots_corrupted = a.snapshots_corrupted;
      })
    t

let restore t s =
  match (t, s) with
  | None, None -> ()
  | Some a, Some s ->
      Rng.set_state a.rng s.s_rng;
      Rng.set_state a.ckpt_rng s.s_ckpt_rng;
      Hashtbl.reset a.latched;
      Array.iter
        (fun l ->
          Hashtbl.replace a.latched l.ls_cu
            (match l.ls_until with
            | None -> Stuck_forever
            | Some n -> Stuck_until n))
        s.s_latched;
      a.writes_dropped <- s.s_writes_dropped;
      a.writes_corrupted <- s.s_writes_corrupted;
      a.stuck_events <- s.s_stuck_events;
      a.spikes <- s.s_spikes;
      a.jittered_ticks <- s.s_jittered_ticks;
      a.snapshots_corrupted <- s.s_snapshots_corrupted
  | _ -> invalid_arg "Faults.restore: injector/state noneness mismatch"

(* The storage-I/O stream is host-side, like the checkpoint-corruption
   stream, but lives entirely outside [t]: filesystem faults hit the
   daemon and harness around the simulation, never the simulated machine,
   so they have no business in snapshot state.  A distinct offset keeps
   the stream decorrelated from both the engine stream ([seed]) and the
   corruption stream ([seed + 7919]). *)
let storage_io ?(seed = 2005) ~rate base =
  Io.faulty ~seed:(seed + 6271) (Io.fault_preset ~rate) base
