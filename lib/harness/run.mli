(** Execute one workload under one scheme and collect every statistic the
    paper's tables and figures need. *)

(** Table 4 statistics (hotspot characteristics), gathered from the DO
    database after a run. *)
type do_stats = {
  hotspot_count : int;
  mean_hotspot_size : float;
  pct_code_in_hotspots : float;
  mean_invocations : float;
  id_latency_frac : float;
      (** Hotspot identification latency as a fraction of execution. *)
  per_hotspot_ipc_cov : float;
  inter_hotspot_ipc_cov : float;
}

type hotspot_stats = {
  reports : Ace_core.Framework.cu_report array;  (** L1D at 0, L2 at 1. *)
  unmanaged_hotspots : int;
  views : Ace_core.Framework.hotspot_view list;
      (** Per-hotspot tuning outcomes (diagnostics). *)
}

type bbv_stats = {
  phases : int;
  tuned_phases : int;
  intervals_in_tuned_frac : float;
  stable_frac : float;
  bbv_tunings : int;
  bbv_reconfigs : int array;  (** Per CU: L1D at 0, L2 at 1. *)
  per_phase_ipc_cov : float;
  inter_phase_ipc_cov : float;
}

type result = {
  workload : string;
  scheme : Scheme.t;
  instrs : int;
  cycles : float;
  ipc : float;
  overhead_instrs : int;
  l1d_energy_nj : float;
  l2_energy_nj : float;
  l1d_avg_bytes : float;  (** Time-weighted average configured size. *)
  l2_avg_bytes : float;
  l1d_miss_rate : float;
  l2_miss_rate : float;
  do_stats : do_stats;
  hotspot : hotspot_stats option;  (** [Some] iff scheme = Hotspot. *)
  bbv : bbv_stats option;  (** [Some] iff scheme = Bbv. *)
  bbv_predictor : (int * int * float) option;
      (** (predictions, correct, accuracy) when the BBV next-phase predictor
          ran. *)
  resilience : Ace_core.Framework.resilience_report option;
      (** [Some] iff scheme = Hotspot (all-zero without faults). *)
  fault_stats : Ace_faults.Faults.stats option;
      (** Injector event counts; [Some] iff faults were requested. *)
}

val default_hot_threshold : int
(** 2 at the default reproduction scale (see DESIGN.md §5-6). *)

val bbv_interval : int
(** 1 M instructions, per the paper. *)

val run :
  ?scale:float ->
  ?seed:int ->
  ?hot_threshold:int ->
  ?framework_config:Ace_core.Framework.config ->
  ?with_issue_queue:bool ->
  ?bbv_prediction:bool ->
  ?faults:Ace_faults.Faults.config ->
  Ace_workloads.Workload.t ->
  Scheme.t ->
  result
(** Build the workload, create a fresh engine, attach the scheme, execute,
    finalize, and summarize.  [faults] (off by default) attaches a seeded
    fault injector — derived deterministically from [seed] — to the engine's
    measurement path and to every control register write the scheme issues. *)
