(** Execute one workload under one scheme and collect every statistic the
    paper's tables and figures need. *)

(** Table 4 statistics (hotspot characteristics), gathered from the DO
    database after a run. *)
type do_stats = {
  hotspot_count : int;
  mean_hotspot_size : float;
  pct_code_in_hotspots : float;
  mean_invocations : float;
  id_latency_frac : float;
      (** Hotspot identification latency as a fraction of execution. *)
  per_hotspot_ipc_cov : float;
  inter_hotspot_ipc_cov : float;
}

type hotspot_stats = {
  reports : Ace_core.Framework.cu_report array;  (** L1D at 0, L2 at 1. *)
  unmanaged_hotspots : int;
  views : Ace_core.Framework.hotspot_view list;
      (** Per-hotspot tuning outcomes (diagnostics). *)
}

type bbv_stats = {
  phases : int;
  tuned_phases : int;
  intervals_in_tuned_frac : float;
  stable_frac : float;
  bbv_tunings : int;
  bbv_reconfigs : int array;  (** Per CU: L1D at 0, L2 at 1. *)
  per_phase_ipc_cov : float;
  inter_phase_ipc_cov : float;
}

type result = {
  workload : string;
  scheme : Scheme.t;
  instrs : int;
  cycles : float;
  ipc : float;
  overhead_instrs : int;
  l1d_energy_nj : float;
  l2_energy_nj : float;
  l1d_avg_bytes : float;  (** Time-weighted average configured size. *)
  l2_avg_bytes : float;
  l1d_miss_rate : float;
  l2_miss_rate : float;
  do_stats : do_stats;
  hotspot : hotspot_stats option;  (** [Some] iff scheme = Hotspot. *)
  bbv : bbv_stats option;  (** [Some] iff scheme = Bbv. *)
  bbv_predictor : (int * int * float) option;
      (** (predictions, correct, accuracy) when the BBV next-phase predictor
          ran. *)
  resilience : Ace_core.Framework.resilience_report option;
      (** [Some] iff scheme = Hotspot (all-zero without faults). *)
  fault_stats : Ace_faults.Faults.stats option;
      (** Injector event counts; [Some] iff faults were requested. *)
  sample : Ace_sample.Sample.stats option;
      (** Phase-memoized sampling statistics; [Some] iff sampling was on. *)
}

val default_hot_threshold : int
(** 2 at the default reproduction scale (see DESIGN.md §5-6). *)

val bbv_interval : int
(** 1 M instructions, per the paper. *)

val run :
  ?scale:float ->
  ?seed:int ->
  ?hot_threshold:int ->
  ?framework_config:Ace_core.Framework.config ->
  ?with_issue_queue:bool ->
  ?bbv_prediction:bool ->
  ?faults:Ace_faults.Faults.config ->
  ?sample:Ace_sample.Sample.config ->
  ?obs:Ace_obs.Obs.t ->
  Ace_workloads.Workload.t ->
  Scheme.t ->
  result
(** Build the workload, create a fresh engine, attach the scheme, execute,
    finalize, and summarize.  [faults] (off by default) attaches a seeded
    fault injector — derived deterministically from [seed] — to the engine's
    measurement path and to every control register write the scheme issues.
    [sample] (off by default) attaches the phase-memoized fast-forward
    sampler ([Ace_sample.Sample]) after the scheme, with the scheme's
    quiescence guard, so recurring settled phases are replayed from
    memoized statistics instead of simulated access by access.
    [obs] (default {!Ace_obs.Obs.null}) is threaded through the engine, the
    memory hierarchy, the fault injector and the scheme, and receives the
    whole-run [engine.instrs]/[engine.ipc] gauges at the end; the caller
    exports it afterwards ([Ace_obs.Export]). *)

(** {2 Checkpointed execution}

    A checkpointed run periodically snapshots the complete simulator state
    (see [Ace_ckpt.Snapshot]) so it can be killed at any point and resumed
    bit-identically.  Checkpoint cadence: baseline and hotspot runs fire the
    engine's interval hook every [checkpoint_every] instructions (the hook is
    otherwise unused and side-effect free for them); BBV runs keep their
    fixed 1 M-instruction interval and snapshot every
    [ceil (checkpoint_every / 1M)] intervals. *)

exception Killed of int
(** Raised (and caught internally) when a run crosses [kill_after]; the
    payload is the interval boundary at which the run died. *)

type ckpt_outcome =
  | Completed of result
  | Killed_at of int  (** The run was killed at this instruction boundary. *)

val run_checkpointed :
  ?io:Ace_util.Io.t ->
  ?scale:float ->
  ?seed:int ->
  ?hot_threshold:int ->
  ?with_issue_queue:bool ->
  ?bbv_prediction:bool ->
  ?resilient:bool ->
  ?fault_rate:float ->
  ?sample:Ace_sample.Sample.config ->
  ?kill_after:int ->
  ?on_snapshot:(Ace_ckpt.Snapshot.t -> unit) ->
  ?on_boundary:(total_instrs:int -> unit) ->
  ?obs:Ace_obs.Obs.t ->
  checkpoint_every:int ->
  path:string ->
  Ace_workloads.Workload.t ->
  Scheme.t ->
  ckpt_outcome
(** Like {!run}, but snapshot the full simulator state to [path] every
    [checkpoint_every] instructions (atomic write; the previous snapshot is
    rotated to [path.1]).  The workload must be registered in
    [Ace_workloads.Specjvm] so a resume can rebuild it by name.  [resilient]
    enables the resilient tuner policy; [fault_rate] turns on
    [Faults.preset ~rate] with the same derived seed {!run} uses; [sample]
    enables phase-memoized fast-forwarding and rides in the snapshot
    metadata, so a resume reattaches the sampler and restores its cache.
    [kill_after] simulates a crash: the run stops with [Killed_at] at the
    first interval boundary at or past it (before writing that boundary's
    snapshot).  [on_snapshot] observes every snapshot just before it is
    written (the determinism oracle collects them).  [on_boundary] runs at
    every interval boundary {e after} any snapshot due at that boundary has
    been written — the serve daemon's drain, deadline and chaos-kill checks
    live there, so stopping a run through it always leaves a snapshot of
    the progress already made.  Any exception it raises aborts the run and
    propagates to the caller.  [obs] state is captured into every snapshot,
    so a later resume continues the same metrics and timeline.  All
    snapshot filesystem traffic goes through [io] (default
    [Ace_util.Io.real]) — the torture harness substitutes crash-point and
    fault backends here.
    @raise Invalid_argument if [checkpoint_every] is not positive. *)

val resume_from_snapshot :
  ?io:Ace_util.Io.t ->
  ?kill_after:int ->
  ?on_snapshot:(Ace_ckpt.Snapshot.t -> unit) ->
  ?on_boundary:(total_instrs:int -> unit) ->
  ?path:string ->
  ?obs:Ace_obs.Obs.t ->
  Ace_ckpt.Snapshot.t ->
  ckpt_outcome
(** Rebuild the run described by the snapshot's metadata, restore the
    captured state, and continue to completion.  With [path] set, the
    resumed run keeps writing checkpoints there (and honours [kill_after]);
    without it this is a pure replay.  The snapshot's observability image is
    loaded into [obs] (metrics resume their counts; a [Full] sink also gets
    the ring back plus a ring-only [Ckpt_restore] marker), so the exported
    summary of a killed-and-resumed run is byte-identical to an
    uninterrupted one. *)

val resume_run :
  ?io:Ace_util.Io.t ->
  ?kill_after:int ->
  ?on_boundary:(total_instrs:int -> unit) ->
  ?obs:Ace_obs.Obs.t ->
  path:string ->
  unit ->
  (ckpt_outcome * [ `Primary | `Fallback ]) option
(** Resume from the snapshot at [path], falling back to [path.1] when the
    newest snapshot is truncated or fails its CRC (e.g. under injected
    storage faults).  [None] when neither file holds a good snapshot — the
    caller restarts from scratch. *)
