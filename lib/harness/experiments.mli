(** Reproduction drivers: one entry point per table and figure in the paper,
    each rendering an ASCII table with measured values (and the paper's
    reported values where it reports them).

    A context memoizes one run per (workload, variant), so printing all
    experiments costs at most 3-5 runs per workload.

    With [jobs > 1] each experiment fans its independent runs out over a
    {!Ace_util.Pool} of [jobs - 1] worker domains (the calling domain works
    the queue too).  Results land in a mutex-guarded cache keyed by
    (workload, variant) and every table is rendered from that cache in a
    fixed canonical order, so output is byte-identical to [jobs = 1] —
    asserted by test across seeds. *)

type t

val create :
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  ?sample:Ace_sample.Sample.config ->
  ?workloads:Ace_workloads.Workload.t list ->
  unit ->
  t
(** Defaults: scale 1.0, seed 1, jobs 1, sampling off, the full SPECjvm98
    suite.  With [sample] set, every (non-faulty, or resilient-faulty) run
    in the context executes under phase-memoized fast-forwarding.
    @raise Invalid_argument if [jobs < 1]. *)

val scale : t -> float

val jobs : t -> int
(** Degree of parallelism this context was created with. *)

val shutdown : t -> unit
(** Join the context's worker domains (no-op when [jobs = 1]).  Call once
    when done with a [jobs > 1] context; further parallel use of the
    context is an error. *)

val result : t -> Ace_workloads.Workload.t -> Scheme.t -> Run.result
(** Memoized standard run. *)

(** {2 Configuration tables (static)} *)

val table2 : unit -> Ace_util.Table.t
(** Simulated system configuration. *)

val table3 : unit -> Ace_util.Table.t
(** Benchmark descriptions. *)

(** {2 Measured experiments} *)

val table1 : t -> Ace_util.Table.t
(** Phase identification and tuning latencies, temporal (BBV) vs DO-based —
    the paper's qualitative Table 1 backed by measured quantities. *)

val fig1 : t -> Ace_util.Table.t
(** Distribution of stable vs transitional BBV phase intervals. *)

val table4 : t -> Ace_util.Table.t
(** Runtime hotspot characteristics. *)

val table5 : t -> Ace_util.Table.t
(** Hotspot vs BBV runtime characteristics (counts, tuned fractions, IPC
    coefficients of variation). *)

val table6 : t -> Ace_util.Table.t
(** Tunings, reconfigurations and coverage per cache per scheme. *)

val fig3 : t -> Ace_util.Table.t
(** L1D and L2 cache energy reduction vs the fixed-maximum baseline. *)

val fig4 : t -> Ace_util.Table.t
(** Execution slowdown vs the fixed-maximum baseline. *)

(** {2 Beyond the paper} *)

val ablation_decoupling : t -> Ace_util.Table.t
(** Hotspot scheme with CU decoupling disabled: every managed hotspot
    explores the combinatorial configuration space (§2.3's strawman). *)

val ablation_thresholds : t -> Ace_util.Table.t
(** Sweep of the tuner's performance threshold on one benchmark. *)

val extension_issue_queue : t -> Ace_util.Table.t
(** Three-CU run (L1D + L2 + issue queue), the §4.1 extension. *)

val extension_prediction : t -> Ace_util.Table.t
(** Static configuration prediction by the JIT (§6 future work): tuned vs
    predicted savings, slowdowns and tuning-trial counts. *)

val extension_bbv_predictor : t -> Ace_util.Table.t
(** The BBV baseline with the next-phase predictor the paper deliberately
    omitted ([20]/[24]): coverage and savings with vs without it. *)

val resilience : t -> Ace_util.Table.t
(** Hotspot and BBV schemes under injected hardware faults
    ({!Ace_faults.Faults.preset}) at increasing rates, with and without the
    framework's resilience machinery.  Savings are measured against the
    fault-free fixed-maximum baseline; the "L1D retention" column is each
    row's saving as a fraction of the fault-free hotspot saving. *)

val stability : t -> Ace_util.Table.t
(** Suite-average savings and slowdowns across three construction seeds —
    evidence the reproduction's conclusions are not seed artifacts. *)

val sample_accuracy : t -> Ace_util.Table.t
(** Sampled vs full simulation for every benchmark and scheme: fraction of
    instructions replayed from memoized phase statistics, headline deltas
    (L1D/L2 energy, cycles) and an exactness check on the architectural
    quantities the fast-forward path must reproduce bit-identically
    (instruction counts, hotspot census).  Deterministic — wall-clock
    speedup is measured by [bench/main.exe --sample-json] instead.  Not
    included in {!all}. *)

val soak : ?cycles:int -> t -> Ace_util.Table.t
(** {!Soak.chaos_soak} on one benchmark under every scheme: [cycles]
    (default 20) seeded kill/resume rounds at 1% injected faults, including
    storage-channel snapshot corruption.  The "Tables match" column must
    read "yes" on every row.  Not included in {!all}. *)

(** {2 Aggregates (used by benches and tests)} *)

val energy_reduction :
  t -> Ace_workloads.Workload.t -> Scheme.t -> float * float
(** (L1D, L2) energy reduction vs baseline, as fractions. *)

val slowdown : t -> Ace_workloads.Workload.t -> Scheme.t -> float
(** Cycles overhead vs baseline, as a fraction. *)

val average_energy_reduction : t -> Scheme.t -> float * float
val average_slowdown : t -> Scheme.t -> float

val all : t -> (string * Ace_util.Table.t) list
(** Every experiment, in paper order, with its identifier. *)
