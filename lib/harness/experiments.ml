module Table = Ace_util.Table
module Workload = Ace_workloads.Workload

type variant =
  | Standard of Scheme.t
  | Sampled of Scheme.t
  | No_decoupling
  | With_issue_queue
  | With_prediction
  | Bbv_with_predictor
  | Faulty of { scheme : Scheme.t; rate : float; resilient : bool }

type t = {
  scale : float;
  seed : int;
  jobs : int;
  sample : Ace_sample.Sample.config option;  (* context-wide sampling *)
  workloads : Workload.t list;
  cache : (string * variant, Run.result) Hashtbl.t;
  lock : Mutex.t;  (* guards [cache]; runs themselves are lock-free *)
  pool : Ace_util.Pool.t option;  (* Some iff jobs > 1 *)
  pool_owned : bool;  (* sub-contexts (stability) borrow the parent's pool *)
}

let make ~scale ~seed ~jobs ~sample ~workloads ~pool ~pool_owned =
  {
    scale;
    seed;
    jobs;
    sample;
    workloads;
    cache = Hashtbl.create 32;
    lock = Mutex.create ();
    pool;
    pool_owned;
  }

let create ?(scale = 1.0) ?(seed = 1) ?(jobs = 1) ?sample
    ?(workloads = Ace_workloads.Specjvm.all) () =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Experiments.create: jobs must be >= 1 (got %d)" jobs);
  (* The calling domain works the queue during a dispatch, so [jobs]-way
     parallelism needs [jobs - 1] workers; [jobs = 1] is the plain
     sequential path with no pool at all. *)
  let pool =
    if jobs > 1 then Some (Ace_util.Pool.create ~num_domains:(jobs - 1) ())
    else None
  in
  make ~scale ~seed ~jobs ~sample ~workloads ~pool ~pool_owned:true

let scale t = t.scale
let jobs t = t.jobs

let shutdown t =
  match t.pool with
  | Some p when t.pool_owned -> Ace_util.Pool.shutdown p
  | _ -> ()

(* Map in input order: through the pool when one is attached, else plain
   [List.map].  Every experiment below funnels its independent runs through
   this single dispatch point, so [jobs = 1] output is trivially the
   reference the parallel path must byte-match. *)
let pool_map t f xs =
  match t.pool with
  | None -> List.map f xs
  | Some p -> Ace_util.Pool.map p f xs

let compute_variant t w variant =
  match variant with
  | Standard scheme -> Run.run ~scale:t.scale ~seed:t.seed ?sample:t.sample w scheme
  | Sampled scheme ->
      Run.run ~scale:t.scale ~seed:t.seed
        ~sample:Ace_sample.Sample.default_config w scheme
  | No_decoupling ->
      Run.run ~scale:t.scale ~seed:t.seed ?sample:t.sample
        ~framework_config:
          { Ace_core.Framework.default_config with decoupling = false }
        w Scheme.Hotspot
  | With_issue_queue ->
      Run.run ~scale:t.scale ~seed:t.seed ?sample:t.sample
        ~with_issue_queue:true w Scheme.Hotspot
  | With_prediction ->
      Run.run ~scale:t.scale ~seed:t.seed ?sample:t.sample
        ~framework_config:
          { Ace_core.Framework.default_config with prediction = true }
        w Scheme.Hotspot
  | Bbv_with_predictor ->
      Run.run ~scale:t.scale ~seed:t.seed ?sample:t.sample
        ~bbv_prediction:true w Scheme.Bbv
  | Faulty { scheme; rate; resilient } ->
      let framework_config =
        if resilient then
          {
            Ace_core.Framework.default_config with
            resilience = Ace_core.Tuner.default_resilience;
          }
        else Ace_core.Framework.default_config
      in
      (* Sampling under faults is only safe with the resilience machinery
         (mirrors the CLI's --sample/--faults/--resilient rule). *)
      Run.run ~scale:t.scale ~seed:t.seed ~framework_config
        ?sample:(if resilient then t.sample else None)
        ~faults:(Ace_faults.Faults.preset ~rate) w scheme

let run_variant t w variant =
  let key = (w.Workload.name, variant) in
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.cache key with
  | Some r ->
      Mutex.unlock t.lock;
      r
  | None ->
      Mutex.unlock t.lock;
      let r = compute_variant t w variant in
      (* First insertion wins so every reader sees one result object.  Two
         domains racing on the same key would have computed bit-identical
         results anyway (runs are seeded and independent), but [warm]
         deduplicates its job list so the race never actually happens. *)
      Mutex.lock t.lock;
      let r =
        match Hashtbl.find_opt t.cache key with
        | Some first -> first
        | None ->
            Hashtbl.replace t.cache key r;
            r
      in
      Mutex.unlock t.lock;
      r

let result t w scheme = run_variant t w (Standard scheme)

(* Fan the uncached (workload x variant) jobs of an experiment out over the
   pool.  Results land in the keyed cache, so the table-rendering code below
   runs unchanged afterwards and its output order — hence every byte of the
   rendered table — is independent of job completion order. *)
let warm t pairs =
  match t.pool with
  | None -> ()
  | Some _ ->
      let seen = Hashtbl.create 16 in
      let todo =
        List.filter
          (fun ((w : Workload.t), v) ->
            let key = (w.Workload.name, v) in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              Mutex.lock t.lock;
              let cached = Hashtbl.mem t.cache key in
              Mutex.unlock t.lock;
              not cached
            end)
          pairs
      in
      ignore (pool_map t (fun (w, v) -> run_variant t w v) todo)

let warm_std t schemes =
  warm t
    (List.concat_map
       (fun s -> List.map (fun w -> (w, Standard s)) t.workloads)
       schemes)

let warm_variants t variants =
  warm t
    (List.concat_map (fun v -> List.map (fun w -> (w, v)) t.workloads) variants)

let pct = Table.cell_pct

(* ------------------------------------------------------------------ *)
(* Static configuration tables.                                        *)

let table2 () =
  let tbl = Table.create ~columns:[ ("Parameter", Table.Left); ("Value", Table.Left) ] in
  List.iter
    (fun (k, v) -> Table.add_row tbl [ k; v ])
    (Ace_cpu.Machine.rows Ace_cpu.Machine.default);
  tbl

let table3 () =
  let tbl =
    Table.create ~columns:[ ("Benchmark", Table.Left); ("Description", Table.Left) ]
  in
  List.iter
    (fun w -> Table.add_row tbl [ w.Workload.name; w.Workload.description ])
    Ace_workloads.Specjvm.all;
  tbl

(* ------------------------------------------------------------------ *)
(* Helpers over the whole suite.                                       *)

let fold_workloads t f =
  List.map (fun w -> (w, f w)) t.workloads

let mean xs = Ace_util.Stats.mean (Array.of_list xs)

let energy_reduction t w scheme =
  let base = result t w Scheme.Fixed_baseline in
  let r = result t w scheme in
  ( 1.0 -. (r.Run.l1d_energy_nj /. base.Run.l1d_energy_nj),
    1.0 -. (r.Run.l2_energy_nj /. base.Run.l2_energy_nj) )

let slowdown t w scheme =
  let base = result t w Scheme.Fixed_baseline in
  let r = result t w scheme in
  (r.Run.cycles /. base.Run.cycles) -. 1.0

let average_energy_reduction t scheme =
  let pairs = List.map (fun w -> energy_reduction t w scheme) t.workloads in
  (mean (List.map fst pairs), mean (List.map snd pairs))

let average_slowdown t scheme =
  mean (List.map (fun w -> slowdown t w scheme) t.workloads)

(* ------------------------------------------------------------------ *)
(* Table 1: latencies, measured.                                       *)

let table1 t =
  warm_std t [ Scheme.Hotspot ];
  let tbl =
    Table.create
      ~columns:
        [
          ("Metric", Table.Left);
          ("Temporal (BBV), measured", Table.Left);
          ("DO-based, measured", Table.Left);
        ]
  in
  (* Average configurations tested per tuned hotspot / phase. *)
  let hotspot_trials =
    fold_workloads t (fun w ->
        let r = result t w Scheme.Hotspot in
        match r.Run.hotspot with
        | Some h ->
            let tuned =
              Array.fold_left (fun a c -> a + c.Ace_core.Framework.tuned_hotspots) 0 h.Run.reports
            in
            let trials =
              List.fold_left (fun a v -> a + v.Ace_core.Framework.tested) 0 h.Run.views
            in
            if tuned = 0 then 0.0 else float_of_int trials /. float_of_int tuned
        | None -> 0.0)
  in
  let id_latency =
    mean
      (List.map
         (fun (_, x) -> x)
         (fold_workloads t (fun w ->
              (result t w Scheme.Hotspot).Run.do_stats.Run.id_latency_frac)))
  in
  Table.add_row tbl
    [
      "New phase identification latency";
      "1 sampling interval (1M instrs)";
      Printf.sprintf "%d invocations (%.2f%% of execution)"
        Run.default_hot_threshold (id_latency *. 100.0);
    ];
  Table.add_row tbl
    [
      "Recurring phase identification latency";
      "1 sampling interval";
      "0 (hotspot header recognized immediately)";
    ];
  Table.add_row tbl
    [
      "Tuning latency (configurations tested)";
      "16 (all combinations)";
      Printf.sprintf "%.1f on average (CU subset only)"
        (mean (List.map snd hotspot_trials));
    ];
  tbl

(* ------------------------------------------------------------------ *)
(* Figure 1: stable vs transitional intervals.                         *)

let fig1 t =
  warm_std t [ Scheme.Bbv ];
  let tbl =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("Stable", Table.Right);
          ("Transitional", Table.Right);
          ("Intervals", Table.Right);
          ("BBV phases", Table.Right);
        ]
  in
  let fracs =
    fold_workloads t (fun w ->
        match (result t w Scheme.Bbv).Run.bbv with
        | Some b -> b
        | None -> assert false)
  in
  List.iter
    (fun (w, (b : Run.bbv_stats)) ->
      let intervals =
        (result t w Scheme.Bbv).Run.instrs / Run.bbv_interval
      in
      Table.add_row tbl
        [
          w.Workload.name;
          pct b.Run.stable_frac;
          pct (1.0 -. b.Run.stable_frac);
          string_of_int intervals;
          string_of_int b.Run.phases;
        ])
    fracs;
  Table.add_separator tbl;
  Table.add_row tbl
    [
      "avg";
      pct (mean (List.map (fun (_, b) -> b.Run.stable_frac) fracs));
      pct (mean (List.map (fun (_, b) -> 1.0 -. b.Run.stable_frac) fracs));
    ];
  tbl

(* ------------------------------------------------------------------ *)
(* Table 4: hotspot characteristics.                                   *)

let table4 t =
  warm_std t [ Scheme.Hotspot ];
  let tbl =
    Table.create
      ~columns:
        ([ ("Metric", Table.Left) ]
        @ List.map (fun w -> (w.Workload.name, Table.Right)) t.workloads)
  in
  let stats =
    List.map (fun w -> (result t w Scheme.Hotspot)) t.workloads
  in
  let row label f = Table.add_row tbl (label :: List.map f stats) in
  row "dynamic instruction count" (fun r -> Table.cell_int r.Run.instrs);
  row "number of hotspots" (fun r ->
      string_of_int r.Run.do_stats.Run.hotspot_count);
  row "average hotspot size" (fun r ->
      Table.cell_int (int_of_float r.Run.do_stats.Run.mean_hotspot_size));
  row "% of code in hotspots" (fun r -> pct r.Run.do_stats.Run.pct_code_in_hotspots);
  row "average invocations per hotspot" (fun r ->
      Table.cell_int (int_of_float r.Run.do_stats.Run.mean_invocations));
  row "hotspot identification latency (% of execution)" (fun r ->
      pct ~decimals:2 r.Run.do_stats.Run.id_latency_frac);
  tbl

(* ------------------------------------------------------------------ *)
(* Table 5: hotspot vs BBV runtime characteristics.                    *)

let table5 t =
  warm_std t [ Scheme.Hotspot; Scheme.Bbv ];
  let tbl =
    Table.create
      ~columns:
        ([ ("Metric", Table.Left) ]
        @ List.map (fun w -> (w.Workload.name, Table.Right)) t.workloads)
  in
  let hs = List.map (fun w -> result t w Scheme.Hotspot) t.workloads in
  let bbv =
    List.map
      (fun w ->
        match (result t w Scheme.Bbv).Run.bbv with
        | Some b -> b
        | None -> assert false)
      t.workloads
  in
  let reports r =
    match r.Run.hotspot with Some h -> h.Run.reports | None -> assert false
  in
  let row label f = Table.add_row tbl (label :: List.map f hs) in
  let brow label f = Table.add_row tbl (label :: List.map f bbv) in
  row "number of L1D hotspots" (fun r ->
      string_of_int (reports r).(0).Ace_core.Framework.class_hotspots);
  row "number of L2 hotspots" (fun r ->
      string_of_int (reports r).(1).Ace_core.Framework.class_hotspots);
  row "total number of hotspots" (fun r ->
      string_of_int r.Run.do_stats.Run.hotspot_count);
  row "number of tuned (managed) hotspots" (fun r ->
      string_of_int
        (Array.fold_left
           (fun a c -> a + c.Ace_core.Framework.tuned_hotspots)
           0 (reports r)));
  row "% of managed hotspots tuned" (fun r ->
      let rs = reports r in
      let managed =
        Array.fold_left (fun a c -> a + c.Ace_core.Framework.class_hotspots) 0 rs
      and tuned =
        Array.fold_left (fun a c -> a + c.Ace_core.Framework.tuned_hotspots) 0 rs
      in
      if managed = 0 then "-" else pct (float_of_int tuned /. float_of_int managed));
  row "per-hotspot IPC CoV" (fun r -> pct r.Run.do_stats.Run.per_hotspot_ipc_cov);
  row "inter-hotspot IPC CoV" (fun r -> pct r.Run.do_stats.Run.inter_hotspot_ipc_cov);
  Table.add_separator tbl;
  brow "number of BBV phases" (fun b -> string_of_int b.Run.phases);
  brow "number of tuned phases" (fun b -> string_of_int b.Run.tuned_phases);
  brow "% of intervals in tuned phases" (fun b -> pct b.Run.intervals_in_tuned_frac);
  brow "per-phase IPC CoV" (fun b -> pct b.Run.per_phase_ipc_cov);
  brow "inter-phase IPC CoV" (fun b -> pct b.Run.inter_phase_ipc_cov);
  tbl

(* ------------------------------------------------------------------ *)
(* Table 6: tunings, reconfigurations, coverage.                       *)

let table6 t =
  warm_std t [ Scheme.Hotspot; Scheme.Bbv ];
  let tbl =
    Table.create
      ~columns:
        ([ ("Metric", Table.Left) ]
        @ List.map (fun w -> (w.Workload.name, Table.Right)) t.workloads)
  in
  let hs = List.map (fun w -> result t w Scheme.Hotspot) t.workloads in
  let bbv = List.map (fun w -> result t w Scheme.Bbv) t.workloads in
  let reports r =
    match r.Run.hotspot with Some h -> h.Run.reports | None -> assert false
  in
  let row label f = Table.add_row tbl (label :: List.map f hs) in
  row "L1D tunings" (fun r ->
      string_of_int (reports r).(0).Ace_core.Framework.tunings);
  row "L1D reconfigs" (fun r ->
      string_of_int (reports r).(0).Ace_core.Framework.reconfigs);
  row "L1D coverage" (fun r -> pct (reports r).(0).Ace_core.Framework.coverage);
  row "L2 tunings" (fun r ->
      string_of_int (reports r).(1).Ace_core.Framework.tunings);
  row "L2 reconfigs" (fun r ->
      string_of_int (reports r).(1).Ace_core.Framework.reconfigs);
  row "L2 coverage" (fun r -> pct (reports r).(1).Ace_core.Framework.coverage);
  Table.add_separator tbl;
  let brow label f = Table.add_row tbl (label :: List.map f bbv) in
  brow "BBV tunings" (fun r ->
      match r.Run.bbv with Some b -> string_of_int b.Run.bbv_tunings | None -> "-");
  brow "BBV reconfigs (L1D/L2)" (fun r ->
      match r.Run.bbv with
      | Some b ->
          Printf.sprintf "%d/%d" b.Run.bbv_reconfigs.(0) b.Run.bbv_reconfigs.(1)
      | None -> "-");
  brow "BBV coverage (stable intervals)" (fun r ->
      match r.Run.bbv with Some b -> pct b.Run.stable_frac | None -> "-");
  tbl

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4.                                                    *)

let fig3 t =
  warm_std t [ Scheme.Fixed_baseline; Scheme.Bbv; Scheme.Hotspot ];
  let tbl =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("L1D: BBV", Table.Right);
          ("L1D: hotspot", Table.Right);
          ("L2: BBV", Table.Right);
          ("L2: hotspot", Table.Right);
        ]
  in
  List.iter
    (fun w ->
      let b1, b2 = energy_reduction t w Scheme.Bbv in
      let h1, h2 = energy_reduction t w Scheme.Hotspot in
      Table.add_row tbl [ w.Workload.name; pct b1; pct h1; pct b2; pct h2 ])
    t.workloads;
  Table.add_separator tbl;
  let b1, b2 = average_energy_reduction t Scheme.Bbv in
  let h1, h2 = average_energy_reduction t Scheme.Hotspot in
  Table.add_row tbl [ "avg (measured)"; pct b1; pct h1; pct b2; pct h2 ];
  Table.add_row tbl [ "avg (paper)"; "32%"; "47%"; "52%"; "58%" ];
  tbl

let fig4 t =
  warm_std t [ Scheme.Fixed_baseline; Scheme.Bbv; Scheme.Hotspot ];
  let tbl =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("BBV slowdown", Table.Right);
          ("Hotspot slowdown", Table.Right);
        ]
  in
  List.iter
    (fun w ->
      Table.add_row tbl
        [
          w.Workload.name;
          pct ~decimals:2 (slowdown t w Scheme.Bbv);
          pct ~decimals:2 (slowdown t w Scheme.Hotspot);
        ])
    t.workloads;
  Table.add_separator tbl;
  Table.add_row tbl
    [
      "avg (measured)";
      pct ~decimals:2 (average_slowdown t Scheme.Bbv);
      pct ~decimals:2 (average_slowdown t Scheme.Hotspot);
    ];
  Table.add_row tbl [ "avg (paper)"; "1.87%"; "1.56%" ];
  tbl

(* ------------------------------------------------------------------ *)
(* Ablations and extension.                                            *)

let ablation_decoupling t =
  warm_variants t
    [ Standard Scheme.Fixed_baseline; Standard Scheme.Hotspot; No_decoupling ];
  let tbl =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("L1D saving (decoupled)", Table.Right);
          ("L1D saving (joint)", Table.Right);
          ("L2 saving (decoupled)", Table.Right);
          ("L2 saving (joint)", Table.Right);
          ("Tuned hotspots (dec/joint)", Table.Right);
          ("Slowdown (dec/joint)", Table.Right);
        ]
  in
  List.iter
    (fun w ->
      let base = result t w Scheme.Fixed_baseline in
      let dec = result t w Scheme.Hotspot in
      let joint = run_variant t w No_decoupling in
      let saving r which =
        match which with
        | `L1d -> 1.0 -. (r.Run.l1d_energy_nj /. base.Run.l1d_energy_nj)
        | `L2 -> 1.0 -. (r.Run.l2_energy_nj /. base.Run.l2_energy_nj)
      in
      let tuned r =
        match r.Run.hotspot with
        | Some h ->
            Array.fold_left
              (fun a c -> a + c.Ace_core.Framework.tuned_hotspots)
              0 h.Run.reports
        | None -> 0
      in
      let slow r = (r.Run.cycles /. base.Run.cycles) -. 1.0 in
      Table.add_row tbl
        [
          w.Workload.name;
          pct (saving dec `L1d);
          pct (saving joint `L1d);
          pct (saving dec `L2);
          pct (saving joint `L2);
          Printf.sprintf "%d/%d" (tuned dec) (tuned joint);
          Printf.sprintf "%s/%s"
            (pct ~decimals:2 (slow dec))
            (pct ~decimals:2 (slow joint));
        ])
    t.workloads;
  tbl

let ablation_thresholds t =
  let w = List.hd t.workloads in
  let tbl =
    Table.create
      ~columns:
        [
          ("performance_threshold", Table.Right);
          ("L1D saving", Table.Right);
          ("L2 saving", Table.Right);
          ("Slowdown", Table.Right);
        ]
  in
  let base = result t w Scheme.Fixed_baseline in
  (* These runs are keyed by threshold, not by variant, so they bypass the
     cache; the sweep still fans out over the pool. *)
  let runs =
    pool_map t
      (fun thr ->
        ( thr,
          Run.run ~scale:t.scale ~seed:t.seed
            ~framework_config:
              {
                Ace_core.Framework.default_config with
                tuner =
                  { Ace_core.Tuner.default_params with performance_threshold = thr };
              }
            w Scheme.Hotspot ))
      [ 0.005; 0.02; 0.05; 0.10 ]
  in
  List.iter
    (fun (thr, r) ->
      Table.add_row tbl
        [
          pct ~decimals:1 thr;
          pct (1.0 -. (r.Run.l1d_energy_nj /. base.Run.l1d_energy_nj));
          pct (1.0 -. (r.Run.l2_energy_nj /. base.Run.l2_energy_nj));
          pct ~decimals:2 ((r.Run.cycles /. base.Run.cycles) -. 1.0);
        ])
    runs;
  tbl

let extension_issue_queue t =
  warm_variants t [ Standard Scheme.Fixed_baseline; With_issue_queue ];
  let tbl =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("IQ hotspots", Table.Right);
          ("IQ tuned", Table.Right);
          ("IQ reconfigs", Table.Right);
          ("L1D saving", Table.Right);
          ("L2 saving", Table.Right);
          ("Slowdown", Table.Right);
        ]
  in
  List.iter
    (fun w ->
      let base = result t w Scheme.Fixed_baseline in
      let r = run_variant t w With_issue_queue in
      match r.Run.hotspot with
      | None -> ()
      | Some h ->
          let iq = h.Run.reports.(2) in
          Table.add_row tbl
            [
              w.Workload.name;
              string_of_int iq.Ace_core.Framework.class_hotspots;
              string_of_int iq.Ace_core.Framework.tuned_hotspots;
              string_of_int iq.Ace_core.Framework.reconfigs;
              pct (1.0 -. (r.Run.l1d_energy_nj /. base.Run.l1d_energy_nj));
              pct (1.0 -. (r.Run.l2_energy_nj /. base.Run.l2_energy_nj));
              pct ~decimals:2 ((r.Run.cycles /. base.Run.cycles) -. 1.0);
            ])
    t.workloads;
  tbl

let extension_prediction t =
  warm_variants t
    [ Standard Scheme.Fixed_baseline; Standard Scheme.Hotspot; With_prediction ];
  let tbl =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("L1D saving (tuned/predicted)", Table.Right);
          ("L2 saving (tuned/predicted)", Table.Right);
          ("Slowdown (tuned/predicted)", Table.Right);
          ("Predicted hotspots", Table.Right);
          ("Tuning trials (tuned/predicted)", Table.Right);
        ]
  in
  List.iter
    (fun w ->
      let base = result t w Scheme.Fixed_baseline in
      let tuned = result t w Scheme.Hotspot in
      let pred = run_variant t w With_prediction in
      let saving r f = 1.0 -. (f r /. f base) in
      let l1 r = r.Run.l1d_energy_nj and l2 r = r.Run.l2_energy_nj in
      let slow r = (r.Run.cycles /. base.Run.cycles) -. 1.0 in
      let reports r =
        match r.Run.hotspot with Some h -> h.Run.reports | None -> [||]
      in
      let total_of f r = Array.fold_left (fun a c -> a + f c) 0 (reports r) in
      Table.add_row tbl
        [
          w.Workload.name;
          Printf.sprintf "%s/%s" (pct (saving tuned l1)) (pct (saving pred l1));
          Printf.sprintf "%s/%s" (pct (saving tuned l2)) (pct (saving pred l2));
          Printf.sprintf "%s/%s"
            (pct ~decimals:2 (slow tuned))
            (pct ~decimals:2 (slow pred));
          string_of_int
            (total_of (fun c -> c.Ace_core.Framework.predicted_hotspots) pred);
          Printf.sprintf "%d/%d"
            (total_of (fun c -> c.Ace_core.Framework.tunings) tuned)
            (total_of (fun c -> c.Ace_core.Framework.tunings) pred);
        ])
    t.workloads;
  tbl

let extension_bbv_predictor t =
  warm_variants t
    [ Standard Scheme.Fixed_baseline; Standard Scheme.Bbv; Bbv_with_predictor ];
  let tbl =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("L1D saving (base/pred)", Table.Right);
          ("L2 saving (base/pred)", Table.Right);
          ("Slowdown (base/pred)", Table.Right);
          ("Predictions (correct/total)", Table.Right);
        ]
  in
  List.iter
    (fun w ->
      let base = result t w Scheme.Fixed_baseline in
      let plain = result t w Scheme.Bbv in
      let pred = run_variant t w Bbv_with_predictor in
      let saving r f = 1.0 -. (f r /. f base) in
      let l1 r = r.Run.l1d_energy_nj and l2 r = r.Run.l2_energy_nj in
      let slow r = (r.Run.cycles /. base.Run.cycles) -. 1.0 in
      Table.add_row tbl
        [
          w.Workload.name;
          Printf.sprintf "%s/%s" (pct (saving plain l1)) (pct (saving pred l1));
          Printf.sprintf "%s/%s" (pct (saving plain l2)) (pct (saving pred l2));
          Printf.sprintf "%s/%s"
            (pct ~decimals:2 (slow plain))
            (pct ~decimals:2 (slow pred));
          (match pred.Run.bbv_predictor with
          | Some (total, correct, _) -> Printf.sprintf "%d/%d" correct total
          | None -> "-");
        ])
    t.workloads;
  tbl

(* ------------------------------------------------------------------ *)
(* Resilience under injected hardware faults.                          *)

let resilience_fault_variants =
  List.map
    (fun rate -> Faulty { scheme = Scheme.Hotspot; rate; resilient = true })
    [ 0.005; 0.01; 0.05 ]
  @ [
      Faulty { scheme = Scheme.Hotspot; rate = 0.01; resilient = false };
      Faulty { scheme = Scheme.Bbv; rate = 0.01; resilient = false };
    ]

let resilience t =
  warm_variants t
    ([ Standard Scheme.Fixed_baseline; Standard Scheme.Hotspot ]
    @ resilience_fault_variants);
  let tbl =
    Table.create
      ~columns:
        [
          ("Variant", Table.Left);
          ("L1D saving", Table.Right);
          ("L2 saving", Table.Right);
          ("Slowdown", Table.Right);
          ("Misconfig time", Table.Right);
          ("Quarantined", Table.Right);
          ("Failed CUs", Table.Right);
          ("L1D retention", Table.Right);
        ]
  in
  (* All savings are measured against the fault-free fixed-maximum baseline:
     a faulty environment must not be allowed to redefine "100%". *)
  let avg_over f = mean (List.map f t.workloads) in
  let l1_saving v =
    avg_over (fun w ->
        let base = result t w Scheme.Fixed_baseline in
        1.0 -. ((run_variant t w v).Run.l1d_energy_nj /. base.Run.l1d_energy_nj))
  in
  let l2_saving v =
    avg_over (fun w ->
        let base = result t w Scheme.Fixed_baseline in
        1.0 -. ((run_variant t w v).Run.l2_energy_nj /. base.Run.l2_energy_nj))
  in
  let slow v =
    avg_over (fun w ->
        let base = result t w Scheme.Fixed_baseline in
        ((run_variant t w v).Run.cycles /. base.Run.cycles) -. 1.0)
  in
  let misconfig v =
    avg_over (fun w ->
        match (run_variant t w v).Run.resilience with
        | Some r -> r.Ace_core.Framework.misconfig_frac
        | None -> 0.0)
  in
  let sum_res v f =
    List.fold_left
      (fun acc w ->
        match (run_variant t w v).Run.resilience with
        | Some r -> acc + f r
        | None -> acc)
      0 t.workloads
  in
  let free_l1 = l1_saving (Standard Scheme.Hotspot) in
  let row name v ~hotspot =
    let l1 = l1_saving v in
    Table.add_row tbl
      [
        name;
        pct l1;
        pct (l2_saving v);
        pct ~decimals:2 (slow v);
        (if hotspot then pct ~decimals:2 (misconfig v) else "-");
        (if hotspot then
           string_of_int
             (sum_res v (fun r -> r.Ace_core.Framework.quarantined))
         else "-");
        (if hotspot then
           string_of_int (sum_res v (fun r -> r.Ace_core.Framework.failed_cus))
         else "-");
        (if free_l1 <= 0.0 then "-" else pct (l1 /. free_l1));
      ]
  in
  row "hotspot, fault-free" (Standard Scheme.Hotspot) ~hotspot:true;
  Table.add_separator tbl;
  List.iter
    (fun rate ->
      row
        (Printf.sprintf "hotspot resilient @%.1f%%" (rate *. 100.0))
        (Faulty { scheme = Scheme.Hotspot; rate; resilient = true })
        ~hotspot:true)
    [ 0.005; 0.01; 0.05 ];
  Table.add_separator tbl;
  row "hotspot non-resilient @1.0%"
    (Faulty { scheme = Scheme.Hotspot; rate = 0.01; resilient = false })
    ~hotspot:true;
  row "BBV @1.0%"
    (Faulty { scheme = Scheme.Bbv; rate = 0.01; resilient = false })
    ~hotspot:false;
  tbl

let stability t =
  let seeds = [ 1; 2; 3 ] in
  let tbl =
    Table.create
      ~columns:
        ([ ("Quantity", Table.Left) ]
        @ List.map (fun s -> (Printf.sprintf "seed %d" s, Table.Right)) seeds
        @ [ ("spread", Table.Right) ])
  in
  (* Fresh contexts per seed so memoization does not cross seeds; they
     borrow the parent's pool (never own it) so the whole sweep shares one
     set of worker domains. *)
  let ctxs =
    List.map
      (fun seed ->
        make ~scale:t.scale ~seed ~jobs:t.jobs ~sample:t.sample
          ~workloads:t.workloads ~pool:t.pool ~pool_owned:false)
      seeds
  in
  List.iter
    (fun c -> warm_std c [ Scheme.Fixed_baseline; Scheme.Hotspot; Scheme.Bbv ])
    ctxs;
  let row label f =
    let values = List.map f ctxs in
    let spread =
      List.fold_left Float.max neg_infinity values
      -. List.fold_left Float.min infinity values
    in
    Table.add_row tbl
      (label
      :: List.map pct values
      @ [ Printf.sprintf "%.1fpp" (spread *. 100.0) ])
  in
  row "L1D saving, hotspot (avg)" (fun c ->
      fst (average_energy_reduction c Scheme.Hotspot));
  row "L2 saving, hotspot (avg)" (fun c ->
      snd (average_energy_reduction c Scheme.Hotspot));
  row "L1D saving, BBV (avg)" (fun c -> fst (average_energy_reduction c Scheme.Bbv));
  row "L2 saving, BBV (avg)" (fun c -> snd (average_energy_reduction c Scheme.Bbv));
  row "slowdown, hotspot (avg)" (fun c -> average_slowdown c Scheme.Hotspot);
  row "slowdown, BBV (avg)" (fun c -> average_slowdown c Scheme.Bbv);
  tbl

(* Chaos-soak supervisor: kill/resume each scheme under 1% faults and check
   the survivor's table against the uninterrupted baseline.  Not part of
   [all] — it is a robustness check of the checkpoint subsystem, not one of
   the paper's tables. *)
let soak ?(cycles = 20) t =
  let tbl =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("Scheme", Table.Left);
          ("Kills", Table.Right);
          ("Restarts", Table.Right);
          ("Fallbacks", Table.Right);
          ("Corrupted", Table.Right);
          ("Tables match", Table.Left);
        ]
  in
  let w =
    match List.find_opt (fun w -> w.Workload.name = "compress") t.workloads with
    | Some w -> w
    | None -> List.hd t.workloads
  in
  (* Temp paths are allocated up front on the calling domain
     ([Filename.temp_file] draws from a process-global PRNG), then each
     scheme's kill/resume soak — a disjoint set of snapshot files — runs as
     one pool job.  The cleanup guard removes every snapshot family member
     (including in-flight [.tmp] files and the uninterrupted [.baseline]
     runs') even when a soak raises mid-cycle. *)
  let schemes = [ Scheme.Fixed_baseline; Scheme.Hotspot; Scheme.Bbv ] in
  let soaks =
    Ace_util.Scratch.with_temp_snapshots ~prefix:"ace_soak"
      ~also:(fun p -> Ace_util.Scratch.snapshot_family (p ^ ".baseline"))
      (List.length schemes)
      (fun paths ->
        pool_map t
          (fun (scheme, path) ->
            let r =
              Soak.chaos_soak ~scale:t.scale ~seed:t.seed ~fault_rate:0.01
                ~cycles
                ~checkpoint_every:
                  (max 1 (int_of_float (float_of_int 2_000_000 *. t.scale)))
                ~path w scheme
            in
            (scheme, r))
          (List.combine schemes paths))
  in
  List.iter
    (fun (scheme, r) ->
      Table.add_row tbl
        [
          w.Workload.name;
          Scheme.name scheme;
          string_of_int r.Soak.kills;
          string_of_int r.Soak.restarts;
          string_of_int r.Soak.fallbacks;
          string_of_int r.Soak.snapshots_corrupted;
          (if r.Soak.matched then "yes" else "NO");
        ])
    soaks;
  tbl

(* Sampled vs full simulation, per benchmark and scheme: headline accuracy
   (energy, cycles) plus the exactness the design guarantees (instruction
   counts and hotspot census must be identical — the fast-forward path is
   architecturally exact).  Deterministic by construction (no wall-clock
   times; bench/main.exe --sample-json measures the speedup), so output is
   byte-identical across [jobs].  Not part of [all]. *)
let sample_accuracy t =
  let schemes = [ Scheme.Fixed_baseline; Scheme.Hotspot; Scheme.Bbv ] in
  warm t
    (List.concat_map
       (fun s ->
         List.concat_map (fun w -> [ (w, Standard s); (w, Sampled s) ]) t.workloads)
       schemes);
  let tbl =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("Scheme", Table.Left);
          ("Spliced", Table.Right);
          ("dL1D energy", Table.Right);
          ("dL2 energy", Table.Right);
          ("dCycles", Table.Right);
          ("Arch state", Table.Left);
        ]
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun w ->
          let full = run_variant t w (Standard scheme) in
          let samp = run_variant t w (Sampled scheme) in
          let delta f =
            let a = f full and b = f samp in
            if a = 0.0 then 0.0 else (b -. a) /. a
          in
          let spliced =
            match samp.Run.sample with
            | Some s ->
                float_of_int s.Ace_sample.Sample.spliced_instrs
                /. float_of_int (max 1 samp.Run.instrs)
            | None -> 0.0
          in
          let exact =
            full.Run.instrs = samp.Run.instrs
            && full.Run.do_stats.Run.hotspot_count
               = samp.Run.do_stats.Run.hotspot_count
            && full.Run.do_stats.Run.mean_invocations
               = samp.Run.do_stats.Run.mean_invocations
          in
          Table.add_row tbl
            [
              w.Workload.name;
              Scheme.name scheme;
              pct spliced;
              pct ~decimals:2 (delta (fun r -> r.Run.l1d_energy_nj));
              pct ~decimals:2 (delta (fun r -> r.Run.l2_energy_nj));
              pct ~decimals:2 (delta (fun r -> r.Run.cycles));
              (if exact then "exact" else "MISMATCH");
            ])
        t.workloads)
    schemes;
  tbl

let all t =
  (* Fan every cached variant of the whole suite out in one batch up front;
     the per-table warms below then all hit the cache. *)
  warm_variants t
    ([
       Standard Scheme.Fixed_baseline;
       Standard Scheme.Hotspot;
       Standard Scheme.Bbv;
       No_decoupling;
       With_issue_queue;
       With_prediction;
       Bbv_with_predictor;
     ]
    @ resilience_fault_variants);
  [
    ("table1", table1 t);
    ("table2", table2 ());
    ("table3", table3 ());
    ("fig1", fig1 t);
    ("table4", table4 t);
    ("table5", table5 t);
    ("table6", table6 t);
    ("fig3", fig3 t);
    ("fig4", fig4 t);
    ("ablation-decoupling", ablation_decoupling t);
    ("ablation-thresholds", ablation_thresholds t);
    ("ext-issue-queue", extension_issue_queue t);
    ("ext-prediction", extension_prediction t);
    ("ext-bbv-predictor", extension_bbv_predictor t);
    ("resilience", resilience t);
    ("stability", stability t);
  ]
