(** Canonical textual rendering of a run result.

    This is the exact (non-verbose) stdout of [ace_sim run]: the CLI prints
    {!run_output}, and the serve daemon stores it as each job's result
    payload, so "a daemon job's result equals the batch run's output" is a
    byte-for-byte string comparison rather than a field-by-field one. *)

val summary : Run.result -> string
(** The per-run summary block (benchmark, scheme, counters, energies,
    hotspot/BBV lines), newline-terminated. *)

val fault_stats : Run.result -> string
(** The fault-injection and resilience lines, or [""] when the run had no
    fault injector attached. *)

val run_output : Run.result -> string
(** [summary r ^ fault_stats r] — everything [ace_sim run] prints for a
    completed non-verbose run. *)
