(** Checkpoint/restore torture tests: the determinism oracle and the
    chaos-soak supervisor.

    Both rest on the same invariant (DESIGN.md §Checkpointing): resuming
    from any snapshot and running to completion yields a final stats table
    bit-identical to the uninterrupted run's.  The one excluded counter is
    [Faults.stats.snapshots_corrupted] — storage-channel bookkeeping depends
    on how many snapshots were actually written, which an interrupted run
    legitimately changes. *)

val results_match : Run.result -> Run.result -> bool
(** Bit-identical up to the storage-channel counter (NaN-tolerant). *)

type oracle_report = {
  checkpoints : int;  (** Snapshots taken by the uninterrupted run. *)
  replay_mismatches : int;
      (** Replays whose final table differed from the baseline. *)
  baseline : Run.result;
}

val oracle_passed : oracle_report -> bool
(** At least one checkpoint, zero mismatches. *)

val determinism_oracle :
  ?scale:float ->
  ?seed:int ->
  ?fault_rate:float ->
  checkpoint_every:int ->
  path:string ->
  Ace_workloads.Workload.t ->
  Scheme.t ->
  oracle_report
(** Run once to completion collecting every snapshot, then replay from each
    one and compare final stats tables against the uninterrupted result. *)

type soak_report = {
  kills : int;  (** Kill/resume cycles actually exercised. *)
  restarts : int;
      (** Times both snapshot generations were unusable and the supervisor
          restarted from scratch. *)
  fallbacks : int;  (** Resumes served by the rotated [path.1] snapshot. *)
  snapshots_corrupted : int;  (** Injected storage faults in the final run. *)
  matched : bool;  (** Final table equals the uninterrupted baseline's. *)
  instrs : int;  (** Run length (from the baseline). *)
}

val chaos_soak :
  ?scale:float ->
  ?seed:int ->
  ?fault_rate:float ->
  ?cycles:int ->
  checkpoint_every:int ->
  path:string ->
  Ace_workloads.Workload.t ->
  Scheme.t ->
  soak_report
(** Repeatedly kill a checkpointed run at seeded, monotonically increasing
    points and resume it from disk, under [fault_rate] (default 1%) register
    and storage faults, for up to [cycles] (default 20) kill/resume cycles;
    then run the survivor to completion and compare against an uninterrupted
    baseline.  Corrupted snapshots exercise the CRC check and [path.1]
    fallback; if both generations are bad the run restarts from scratch,
    which must converge to the same table. *)
