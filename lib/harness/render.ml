(* The one textual rendering of a run result, shared by the CLI and the
   serve daemon so their outputs can be compared byte-for-byte. *)

module Table = Ace_util.Table
module Framework = Ace_core.Framework
module Faults = Ace_faults.Faults

let summary (r : Run.result) =
  let open Run in
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "benchmark        : %s\n" r.workload;
  pf "scheme           : %s\n" (Scheme.name r.scheme);
  pf "instructions     : %s\n" (Table.cell_int r.instrs);
  pf "cycles           : %s\n" (Table.cell_int (int_of_float r.cycles));
  pf "IPC              : %.3f\n" r.ipc;
  pf "overhead instrs  : %s\n" (Table.cell_int r.overhead_instrs);
  pf "L1D energy       : %.4g mJ (avg size %.0f KB, miss rate %.2f%%)\n"
    (r.l1d_energy_nj /. 1e6)
    (r.l1d_avg_bytes /. 1024.0)
    (r.l1d_miss_rate *. 100.0);
  pf "L2 energy        : %.4g mJ (avg size %.0f KB, miss rate %.2f%%)\n"
    (r.l2_energy_nj /. 1e6)
    (r.l2_avg_bytes /. 1024.0)
    (r.l2_miss_rate *. 100.0);
  pf "hotspots         : %d (avg size %s, avg invocations %s)\n"
    r.do_stats.hotspot_count
    (Table.cell_int (int_of_float r.do_stats.mean_hotspot_size))
    (Table.cell_int (int_of_float r.do_stats.mean_invocations));
  (match r.hotspot with
  | Some h ->
      Array.iter
        (fun (c : Framework.cu_report) ->
          pf
            "CU %-4s          : %d hotspots, %d tuned, %d tunings, %d reconfigs, \
             coverage %.1f%%\n"
            c.cu_name c.class_hotspots c.tuned_hotspots c.tunings c.reconfigs
            (c.coverage *. 100.0))
        h.reports
  | None -> ());
  (match r.sample with
  | Some s ->
      pf
        "sampling         : %d splices (%s instrs memoized), %d observations, \
         %d known phases; blocked %d quiescence, %d unsettled, %d open-obs, \
         %d poisoned\n"
        s.Ace_sample.Sample.splices
        (Table.cell_int s.Ace_sample.Sample.spliced_instrs)
        s.Ace_sample.Sample.observations s.Ace_sample.Sample.known_phases
        s.Ace_sample.Sample.blocked_quiescence
        s.Ace_sample.Sample.blocked_unsettled
        s.Ace_sample.Sample.blocked_open_obs
        s.Ace_sample.Sample.blocked_poisoned
  | None -> ());
  (match r.bbv with
  | Some bb ->
      pf
        "BBV              : %d phases, %d tuned, %.1f%% intervals in tuned phases, \
         %.1f%% stable\n"
        bb.phases bb.tuned_phases
        (bb.intervals_in_tuned_frac *. 100.0)
        (bb.stable_frac *. 100.0)
  | None -> ());
  Buffer.contents b

let fault_stats (r : Run.result) =
  match (r.Run.fault_stats, r.Run.resilience) with
  | None, _ -> ""
  | Some fs, res ->
      let b = Buffer.create 256 in
      let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      pf
        "faults           : %d writes dropped, %d corrupted, %d stuck events, \
         %d spikes, %d jittered ticks, %d snapshots corrupted\n"
        fs.Faults.writes_dropped fs.Faults.writes_corrupted fs.Faults.stuck_events
        fs.Faults.spikes fs.Faults.jittered_ticks fs.Faults.snapshots_corrupted;
      (match res with
      | Some rr ->
          pf
            "resilience       : %d verify failures, %d retries, %d backoff skips, \
             %d configs skipped, %d quarantined, %d failed CUs, misconfig %.2f%%\n"
            rr.Framework.total_verify_failures rr.Framework.tuner_retries
            rr.Framework.tuner_backoff_skips rr.Framework.tuner_skipped_configs
            rr.Framework.quarantined rr.Framework.failed_cus
            (rr.Framework.misconfig_frac *. 100.0)
      | None -> ());
      Buffer.contents b

let run_output r = summary r ^ fault_stats r
