module Engine = Ace_vm.Engine
module Db = Ace_vm.Do_database
module Faults = Ace_faults.Faults
module Cu = Ace_core.Cu
module Framework = Ace_core.Framework
module Accounting = Ace_power.Accounting
module Hierarchy = Ace_mem.Hierarchy
module Cache = Ace_mem.Cache
module Obs = Ace_obs.Obs
module Io = Ace_util.Io
module Sample = Ace_sample.Sample

type do_stats = {
  hotspot_count : int;
  mean_hotspot_size : float;
  pct_code_in_hotspots : float;
  mean_invocations : float;
  id_latency_frac : float;
  per_hotspot_ipc_cov : float;
  inter_hotspot_ipc_cov : float;
}

type hotspot_stats = {
  reports : Framework.cu_report array;
  unmanaged_hotspots : int;
  views : Framework.hotspot_view list;
}

type bbv_stats = {
  phases : int;
  tuned_phases : int;
  intervals_in_tuned_frac : float;
  stable_frac : float;
  bbv_tunings : int;
  bbv_reconfigs : int array;
  per_phase_ipc_cov : float;
  inter_phase_ipc_cov : float;
}

type result = {
  workload : string;
  scheme : Scheme.t;
  instrs : int;
  cycles : float;
  ipc : float;
  overhead_instrs : int;
  l1d_energy_nj : float;
  l2_energy_nj : float;
  l1d_avg_bytes : float;
  l2_avg_bytes : float;
  l1d_miss_rate : float;
  l2_miss_rate : float;
  do_stats : do_stats;
  hotspot : hotspot_stats option;
  bbv : bbv_stats option;
  bbv_predictor : (int * int * float) option;
  resilience : Framework.resilience_report option;
  fault_stats : Faults.stats option;
  sample : Sample.stats option;
}

let default_hot_threshold = 2
let bbv_interval = 1_000_000

let collect_do_stats engine =
  let db = Engine.db engine in
  let total = Engine.instrs engine in
  let totalf = float_of_int (max 1 total) in
  {
    hotspot_count = Db.hotspot_count db;
    mean_hotspot_size = Db.mean_hotspot_size db;
    pct_code_in_hotspots = float_of_int (Engine.hot_instrs engine) /. totalf;
    mean_invocations = Db.mean_invocations_per_hotspot db;
    id_latency_frac = float_of_int (Db.identification_latency_instrs db) /. totalf;
    per_hotspot_ipc_cov = Db.mean_per_hotspot_ipc_cov db;
    inter_hotspot_ipc_cov = Db.inter_hotspot_ipc_cov db;
  }

let engine_config ~hot_threshold ~seed ~interval =
  {
    Engine.default_config with
    Engine.seed;
    hot_threshold;
    interval_instrs = interval;
  }

(* Fixed-baseline accounting: caches stay at maximum size; one epoch. *)
let fixed_accounting engine =
  let hier = Engine.hierarchy engine in
  let l1d = Hierarchy.l1d hier and l2 = Hierarchy.l2 hier in
  let acct_l1d =
    Accounting.create Ace_power.Energy_model.L1d
      ~initial_size:(Cache.config l1d).Cache.size_bytes
  and acct_l2 =
    Accounting.create Ace_power.Energy_model.L2
      ~initial_size:(Cache.config l2).Cache.size_bytes
  in
  fun () ->
    Accounting.finish acct_l1d
      ~accesses_now:(Cache.Stats.accesses l1d)
      ~cycles_now:(Engine.cycles engine);
    Accounting.finish acct_l2
      ~accesses_now:(Cache.Stats.accesses l2)
      ~cycles_now:(Engine.cycles engine);
    (acct_l1d, acct_l2)

let summarize ~workload ~scheme ~engine ~accts ~hotspot ~bbv ~bbv_predictor
    ~resilience ~fault_stats ~sample =
  let acct_l1d, acct_l2 = accts in
  let hier = Engine.hierarchy engine in
  {
    workload;
    scheme;
    instrs = Engine.instrs engine;
    cycles = Engine.cycles engine;
    ipc = Engine.ipc engine;
    overhead_instrs = Engine.overhead_instrs engine;
    l1d_energy_nj = Accounting.total_nj acct_l1d;
    l2_energy_nj = Accounting.total_nj acct_l2;
    l1d_avg_bytes = Accounting.time_weighted_avg_bytes acct_l1d;
    l2_avg_bytes = Accounting.time_weighted_avg_bytes acct_l2;
    l1d_miss_rate = Cache.Stats.miss_rate (Hierarchy.l1d hier);
    l2_miss_rate = Cache.Stats.miss_rate (Hierarchy.l2 hier);
    do_stats = collect_do_stats engine;
    hotspot;
    bbv;
    bbv_predictor;
    resilience;
    fault_stats;
    sample;
  }

(* The scheme handle held between attach and finalize. *)
type attached =
  | A_baseline
  | A_hotspot of Framework.t
  | A_bbv of Ace_bbv.Scheme.t

let attach_scheme ~framework_config ~with_issue_queue ~bbv_prediction ~faults
    ~obs engine scheme =
  match scheme with
  | Scheme.Fixed_baseline -> A_baseline
  | Scheme.Hotspot ->
      let cus =
        if with_issue_queue then
          [| Cu.l1d engine; Cu.l2 engine; Cu.issue_queue engine |]
        else [| Cu.l1d engine; Cu.l2 engine |]
      in
      A_hotspot
        (Framework.attach ~config:framework_config ~faults ~obs engine ~cus)
  | Scheme.Bbv ->
      let cus = [| Cu.l1d engine; Cu.l2 engine |] in
      A_bbv
        (Ace_bbv.Scheme.attach
           ~config:
             {
               Ace_bbv.Scheme.default_config with
               next_phase_prediction = bbv_prediction;
             }
           ~faults engine ~cus)

(* The sampler attaches after the scheme so its quiescence guard can see
   the scheme's tuning state; tuner trials therefore always run under full
   simulation. *)
let attach_sample ~sample ~faults ~obs engine attached =
  match sample with
  | None -> None
  | Some config ->
      let allow, classify =
        match attached with
        | A_baseline -> ((fun ~meth_id:_ -> Sample.Allow), None)
        | A_hotspot fw ->
            (* Scoped quiescence: the candidate's own tuner must be settled,
               no measuring invocation may be in flight anywhere (any open
               measurement is an ancestor on the single-threaded call
               stack, and splicing under it would feed it memoized cycles),
               and no *reachable* tuner may still be converging (splicing
               would starve its campaign).  Stranded tuners — promoted but
               no longer invoked — age out and stop blocking; see
               DESIGN.md. *)
            ( (fun ~meth_id ->
                if not (Framework.hotspot_settled fw ~meth_id) then
                  Sample.Unsettled
                else if
                  Framework.measuring_open fw > 0
                  || Framework.unsettled_active fw
                then Sample.Not_quiescent
                else Sample.Allow),
              None )
        | A_bbv sch ->
            (* The BBV tracker doubles as the sampler's phase classifier:
               records are keyed on behaviour clusters, so headers sharing
               a cluster share one CPI record. *)
            ( (fun ~meth_id:_ ->
                if Ace_bbv.Scheme.quiescent sch then Sample.Allow
                else Sample.Not_quiescent),
              Some
                (fun () ->
                  let c =
                    Ace_bbv.Tracker.current_phase (Ace_bbv.Scheme.tracker sch)
                  in
                  if c < 0 then None else Some c) )
      in
      Some (Sample.attach ~config ~faults ~obs ?classify ~allow engine)

let finish_run ~name ~scheme ~engine ~faults ~obs ~attached ~sampler =
  let sample = Option.map Sample.stats sampler in
  (* Final whole-run gauges; set here (not per-tick) so the hot path stays
     free of float stores. *)
  if Obs.enabled obs then begin
    Obs.set_gauge obs
      (Obs.gauge obs "engine.instrs")
      (float_of_int (Engine.instrs engine));
    Obs.set_gauge obs (Obs.gauge obs "engine.ipc") (Engine.ipc engine)
  end;
  let fault_stats =
    if Faults.is_none faults then None else Some (Faults.stats faults)
  in
  match attached with
  | A_baseline ->
      summarize ~workload:name ~scheme ~engine ~accts:(fixed_accounting engine ())
        ~hotspot:None ~bbv:None ~bbv_predictor:None ~resilience:None ~fault_stats
        ~sample
  | A_hotspot fw ->
      Framework.finalize fw;
      let accts =
        match (Framework.accounting fw 0, Framework.accounting fw 1) with
        | Some a, Some b -> (a, b)
        | _ -> assert false
      in
      let hotspot =
        Some
          {
            reports = Framework.report fw;
            unmanaged_hotspots = Framework.unmanaged_hotspots fw;
            views = Framework.hotspot_views fw;
          }
      in
      summarize ~workload:name ~scheme ~engine ~accts ~hotspot ~bbv:None
        ~bbv_predictor:None ~resilience:(Some (Framework.resilience_report fw))
        ~fault_stats ~sample
  | A_bbv sch ->
      Ace_bbv.Scheme.finalize sch;
      let accts =
        match (Ace_bbv.Scheme.accounting sch 0, Ace_bbv.Scheme.accounting sch 1) with
        | Some a, Some b -> (a, b)
        | _ -> assert false
      in
      let bbv =
        Some
          {
            phases = Ace_bbv.Scheme.phase_count sch;
            tuned_phases = Ace_bbv.Scheme.tuned_phase_count sch;
            intervals_in_tuned_frac = Ace_bbv.Scheme.intervals_in_tuned_phases sch;
            stable_frac = Ace_bbv.Scheme.stable_fraction sch;
            bbv_tunings = Ace_bbv.Scheme.tunings sch;
            bbv_reconfigs = Ace_bbv.Scheme.reconfigs_per_cu sch;
            per_phase_ipc_cov = Ace_bbv.Scheme.mean_per_phase_ipc_cov sch;
            inter_phase_ipc_cov = Ace_bbv.Scheme.inter_phase_ipc_cov sch;
          }
      in
      summarize ~workload:name ~scheme ~engine ~accts ~hotspot:None ~bbv
        ~bbv_predictor:(Ace_bbv.Scheme.predictor_stats sch) ~resilience:None
        ~fault_stats ~sample

let run ?(scale = 1.0) ?(seed = 1) ?(hot_threshold = default_hot_threshold)
    ?(framework_config = Framework.default_config) ?(with_issue_queue = false)
    ?(bbv_prediction = false) ?faults ?sample ?(obs = Obs.null) workload scheme
    =
  let program = workload.Ace_workloads.Workload.build ~scale ~seed in
  let name = workload.Ace_workloads.Workload.name in
  (* One injector per run, seeded off the run seed so fault sequences are
     reproducible but decorrelated from the engine's own stream. *)
  let faults =
    match faults with
    | None -> Faults.none
    | Some cfg -> Faults.create ~seed:((seed * 1000) + 7) ~obs cfg
  in
  let interval =
    match scheme with Scheme.Bbv -> Some bbv_interval | _ -> None
  in
  let cfg = engine_config ~hot_threshold ~seed ~interval in
  let engine = Engine.create ~config:cfg ~faults ~obs program in
  let attached =
    attach_scheme ~framework_config ~with_issue_queue ~bbv_prediction ~faults
      ~obs engine scheme
  in
  let sampler = attach_sample ~sample ~faults ~obs engine attached in
  Engine.run engine;
  finish_run ~name ~scheme ~engine ~faults ~obs ~attached ~sampler

(* {2 Checkpointed execution} *)

module Snapshot = Ace_ckpt.Snapshot

exception Killed of int

type ckpt_outcome = Completed of result | Killed_at of int

let scheme_to_snap = function
  | Scheme.Fixed_baseline -> Snapshot.Baseline
  | Scheme.Hotspot -> Snapshot.Hotspot
  | Scheme.Bbv -> Snapshot.Bbv

let scheme_of_snap = function
  | Snapshot.Baseline -> Scheme.Fixed_baseline
  | Snapshot.Hotspot -> Scheme.Hotspot
  | Snapshot.Bbv -> Scheme.Bbv

(* Rebuild every construction-time input from snapshot metadata.  Both the
   fresh checkpointed run and a resume go through this one function, so a
   resumed run is built from exactly the inputs the original was. *)
let instance_of_meta ~obs (m : Snapshot.meta) =
  let workload =
    match Ace_workloads.Specjvm.find m.Snapshot.workload with
    | Some w -> w
    | None ->
        invalid_arg
          (Printf.sprintf "Run: unknown workload %S in checkpoint metadata"
             m.Snapshot.workload)
  in
  let program =
    workload.Ace_workloads.Workload.build ~scale:m.Snapshot.scale
      ~seed:m.Snapshot.seed
  in
  let faults =
    match m.Snapshot.fault_rate with
    | None -> Faults.none
    | Some rate ->
        Faults.create
          ~seed:((m.Snapshot.seed * 1000) + 7)
          ~obs (Faults.preset ~rate)
  in
  let scheme = scheme_of_snap m.Snapshot.scheme in
  (* Baseline and hotspot runs have no interval hook of their own, so the
     checkpoint cadence rides directly on [interval_instrs] (the hook is
     side-effect free for them).  BBV owns the 1 M interval; checkpoints
     then fire every [k] intervals. *)
  let interval =
    match scheme with
    | Scheme.Bbv -> bbv_interval
    | _ -> m.Snapshot.checkpoint_every
  in
  let cfg =
    engine_config ~hot_threshold:m.Snapshot.hot_threshold ~seed:m.Snapshot.seed
      ~interval:(Some interval)
  in
  let engine = Engine.create ~config:cfg ~faults ~obs program in
  let framework_config =
    if m.Snapshot.resilient then
      {
        Framework.default_config with
        Framework.resilience = Ace_core.Tuner.default_resilience;
      }
    else Framework.default_config
  in
  let attached =
    attach_scheme ~framework_config
      ~with_issue_queue:m.Snapshot.with_issue_queue
      ~bbv_prediction:m.Snapshot.bbv_prediction ~faults ~obs engine scheme
  in
  let sampler =
    attach_sample ~sample:m.Snapshot.sample ~faults ~obs engine attached
  in
  (engine, faults, attached, sampler)

let capture_scheme = function
  | A_baseline -> Snapshot.S_baseline
  | A_hotspot fw -> Snapshot.S_hotspot (Framework.capture fw)
  | A_bbv sch -> Snapshot.S_bbv (Ace_bbv.Scheme.capture sch)

(* Wrap [on_interval] — after the scheme attached, so the scheme's own hook
   runs first and the captured state is the post-hook state the resumed run
   would also see. *)
let install_checkpointing ?(io = Io.real) ?kill_after ?on_snapshot ?on_boundary
    ~path ~obs (m : Snapshot.meta) engine faults attached sampler =
  let interval =
    match scheme_of_snap m.Snapshot.scheme with
    | Scheme.Bbv -> bbv_interval
    | _ -> m.Snapshot.checkpoint_every
  in
  let every_k =
    max 1 ((m.Snapshot.checkpoint_every + interval - 1) / interval)
  in
  let hooks = Engine.hooks engine in
  let prev = hooks.Engine.on_interval in
  hooks.Engine.on_interval <-
    (fun ~total_instrs ->
      prev ~total_instrs;
      (match kill_after with
      | Some n when total_instrs >= n -> raise (Killed total_instrs)
      | _ -> ());
      if total_instrs / interval mod every_k = 0 then begin
        let snap =
          {
            Snapshot.meta = m;
            engine = Engine.capture engine;
            faults = Faults.capture faults;
            scheme_state = capture_scheme attached;
            obs = Obs.capture obs;
            sample_state = Option.map Sample.capture sampler;
          }
        in
        (match on_snapshot with Some f -> f snap | None -> ());
        Snapshot.write ~io ~faults ~obs ~path snap
      end;
      (* After the snapshot block, so anything [on_boundary] does to stop
         the run (drain, deadline, chaos kill) finds this boundary's
         snapshot already on disk — every life of a supervised job is
         guaranteed to have made checkpointable progress. *)
      match on_boundary with Some f -> f ~total_instrs | None -> ())

let run_checkpointed ?io ?(scale = 1.0) ?(seed = 1)
    ?(hot_threshold = default_hot_threshold) ?(with_issue_queue = false)
    ?(bbv_prediction = false) ?(resilient = false) ?fault_rate ?sample
    ?kill_after ?on_snapshot ?on_boundary ?(obs = Obs.null) ~checkpoint_every
    ~path workload scheme =
  if checkpoint_every <= 0 then
    invalid_arg "Run.run_checkpointed: checkpoint_every must be positive";
  let meta =
    {
      Snapshot.workload = workload.Ace_workloads.Workload.name;
      scheme = scheme_to_snap scheme;
      scale;
      seed;
      hot_threshold;
      with_issue_queue;
      bbv_prediction;
      resilient;
      fault_rate;
      checkpoint_every;
      sample;
    }
  in
  let engine, faults, attached, sampler = instance_of_meta ~obs meta in
  install_checkpointing ?io ?kill_after ?on_snapshot ?on_boundary ~path ~obs
    meta engine faults attached sampler;
  match Engine.run engine with
  | () ->
      Completed
        (finish_run ~name:meta.Snapshot.workload ~scheme ~engine ~faults ~obs
           ~attached ~sampler)
  | exception Killed n -> Killed_at n

let resume_from_snapshot ?io ?kill_after ?on_snapshot ?on_boundary ?path
    ?(obs = Obs.null) (snap : Snapshot.t) =
  let m = snap.Snapshot.meta in
  let engine, faults, attached, sampler = instance_of_meta ~obs m in
  (* Restore after attach: schemes set ILP/exposure scales when attaching,
     and [Engine.restore] must overwrite them with the checkpointed values. *)
  Engine.restore engine snap.Snapshot.engine;
  Faults.restore faults snap.Snapshot.faults;
  (match (attached, snap.Snapshot.scheme_state) with
  | A_baseline, Snapshot.S_baseline -> ()
  | A_hotspot fw, Snapshot.S_hotspot s -> Framework.restore fw s
  | A_bbv sch, Snapshot.S_bbv s -> Ace_bbv.Scheme.restore sch s
  | _ -> invalid_arg "Run.resume: scheme state does not match metadata");
  (match (sampler, snap.Snapshot.sample_state) with
  | Some sam, Some s -> Sample.restore sam s
  | None, None -> ()
  | _ -> invalid_arg "Run.resume: sampler state does not match metadata");
  (* The observability image rides in the snapshot, so a resumed run picks
     up its counters and timeline where the killed run left them.  The
     [Ckpt_restore] marker is ring-only (never a metric): the metrics
     summary of a resumed run must stay byte-identical to an uninterrupted
     one. *)
  Obs.restore obs snap.Snapshot.obs;
  if Obs.tracing obs then
    Obs.record obs (Obs.Ckpt_restore { instrs = Engine.instrs engine });
  (match path with
  | Some path ->
      install_checkpointing ?io ?kill_after ?on_snapshot ?on_boundary ~path
        ~obs m engine faults attached sampler
  | None -> ());
  match Engine.resume engine with
  | () ->
      Completed
        (finish_run ~name:m.Snapshot.workload
           ~scheme:(scheme_of_snap m.Snapshot.scheme)
           ~engine ~faults ~obs ~attached ~sampler)
  | exception Killed n -> Killed_at n

let resume_run ?io ?kill_after ?on_boundary ?obs ~path () =
  match Snapshot.read_with_fallback ?io ~path () with
  | None -> None
  | Some (snap, which) ->
      Some
        (resume_from_snapshot ?io ?kill_after ?on_boundary ?obs ~path snap, which)
