module Rng = Ace_util.Rng
module Faults = Ace_faults.Faults
module Snapshot = Ace_ckpt.Snapshot

(* Storage-channel bookkeeping sits outside the deterministic envelope: an
   interrupted run writes a different number of snapshots than the
   uninterrupted one, so its corruption counter legitimately differs.
   Everything else in the result must be bit-identical. *)
let normalize (r : Run.result) =
  {
    r with
    Run.fault_stats =
      Option.map
        (fun s -> { s with Faults.snapshots_corrupted = 0 })
        r.Run.fault_stats;
  }

(* Polymorphic [compare] rather than [(=)]: it treats NaN as equal to
   itself, and a CoV over an empty population is NaN. *)
let results_match a b = Stdlib.compare (normalize a) (normalize b) = 0

type oracle_report = {
  checkpoints : int;
  replay_mismatches : int;
  baseline : Run.result;
}

let oracle_passed r = r.checkpoints > 0 && r.replay_mismatches = 0

let determinism_oracle ?(scale = 1.0) ?(seed = 1) ?fault_rate ~checkpoint_every
    ~path workload scheme =
  let snaps = ref [] in
  let baseline =
    match
      Run.run_checkpointed ~scale ~seed ?fault_rate
        ~on_snapshot:(fun s -> snaps := s :: !snaps)
        ~checkpoint_every ~path workload scheme
    with
    | Run.Completed r -> r
    | Run.Killed_at _ -> assert false
  in
  let mismatches =
    List.fold_left
      (fun acc snap ->
        match Run.resume_from_snapshot snap with
        | Run.Completed r -> if results_match baseline r then acc else acc + 1
        | Run.Killed_at _ -> acc + 1)
      0 !snaps
  in
  {
    checkpoints = List.length !snaps;
    replay_mismatches = mismatches;
    baseline;
  }

type soak_report = {
  kills : int;
  restarts : int;
  fallbacks : int;
  snapshots_corrupted : int;
  matched : bool;
  instrs : int;
}

let chaos_soak ?(scale = 1.0) ?(seed = 1) ?(fault_rate = 0.01) ?(cycles = 20)
    ~checkpoint_every ~path workload scheme =
  let uninterrupted =
    match
      Run.run_checkpointed ~scale ~seed ~fault_rate ~checkpoint_every
        ~path:(path ^ ".baseline") workload scheme
    with
    | Run.Completed r -> r
    | Run.Killed_at _ -> assert false
  in
  let run_fresh ?kill_after () =
    Run.run_checkpointed ~scale ~seed ~fault_rate ?kill_after ~checkpoint_every
      ~path workload scheme
  in
  (* Kill points are drawn from a supervisor stream independent of the run's
     own seeds, and increase monotonically so every cycle makes progress even
     when a kill lands before the next checkpoint boundary. *)
  let rng = Rng.create ~seed:(seed + 90210) in
  let span = max checkpoint_every (uninterrupted.Run.instrs / max 1 cycles) in
  let kills = ref 0 in
  let restarts = ref 0 in
  let fallbacks = ref 0 in
  let kill_at = ref 0 in
  let started = ref false in
  let final = ref None in
  for _ = 1 to cycles do
    if Option.is_none !final then begin
      kill_at := !kill_at + 1 + Rng.int rng span;
      let outcome =
        if not !started then begin
          started := true;
          run_fresh ~kill_after:!kill_at ()
        end
        else
          match Run.resume_run ~kill_after:!kill_at ~path () with
          | Some (o, which) ->
              if which = `Fallback then incr fallbacks;
              o
          | None ->
              (* Both snapshot generations unusable (corrupted, or the run
                 died before its first checkpoint): start over. *)
              incr restarts;
              run_fresh ~kill_after:!kill_at ()
      in
      match outcome with
      | Run.Killed_at _ -> incr kills
      | Run.Completed r -> final := Some r
    end
  done;
  let result =
    match !final with
    | Some r -> r
    | None -> (
        match Run.resume_run ~path () with
        | Some (o, which) -> (
            if which = `Fallback then incr fallbacks;
            match o with
            | Run.Completed r -> r
            | Run.Killed_at _ -> assert false)
        | None -> (
            incr restarts;
            match run_fresh () with
            | Run.Completed r -> r
            | Run.Killed_at _ -> assert false))
  in
  let corrupted =
    match result.Run.fault_stats with
    | Some s -> s.Faults.snapshots_corrupted
    | None -> 0
  in
  {
    kills = !kills;
    restarts = !restarts;
    fallbacks = !fallbacks;
    snapshots_corrupted = corrupted;
    matched = results_match uninterrupted result;
    instrs = uninterrupted.Run.instrs;
  }
