(* Exporters: Chrome trace-event JSON, CSV, metrics CSV, and a
   human-readable report.  Determinism matters (golden tests, CI diffing):
   events are emitted in ring order, metrics in name order, and floats are
   always rendered with %.9g (non-finite collapsed to 0). *)

let fnum v = if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

(* -- Chrome trace-event JSON ---------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The trace format wants microsecond timestamps; we map one instruction to
   one microsecond so Perfetto's time axis reads as instruction count. *)

let chrome t =
  let evs = Obs.events t in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n  ";
    Buffer.add_string buf s
  in
  (* Method id -> name, prefilled so exits seen before their (dropped)
     enters still label correctly. *)
  let meth_names = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev.Obs.kind with
      | Obs.Phase_enter { id; name } | Obs.Hotspot_promoted { id; name } ->
          if not (Hashtbl.mem meth_names id) then Hashtbl.add meth_names id name
      | _ -> ())
    evs;
  let meth_name id =
    match Hashtbl.find_opt meth_names id with
    | Some n -> n
    | None -> Printf.sprintf "m%d" id
  in
  (* Track (thread) ids, assigned lazily; each assignment emits the "M"
     thread_name metadata record. *)
  let tids = Hashtbl.create 16 in
  let next_tid = ref 0 in
  let tid track =
    match Hashtbl.find_opt tids track with
    | Some n -> n
    | None ->
        let n = !next_tid in
        next_tid := n + 1;
        Hashtbl.add tids track n;
        emit
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             n (json_escape track));
        n
  in
  let span ~track ~name ~ts ~dur ~args =
    emit
      (Printf.sprintf
         "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
         (json_escape name) ts dur (tid track) args)
  in
  let instant ~track ~name ~ts ~args =
    emit
      (Printf.sprintf
         "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%d,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{%s}}"
         (json_escape name) ts (tid track) args)
  in
  let last_ts = List.fold_left (fun _ ev -> ev.Obs.ts) 0 evs in
  (* Per-method open-phase stacks (LIFO: recursion nests) and pending
     tuning trials, paired into "X" complete events. *)
  let open_phases : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let pending_trials : (int, int * string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let ts = ev.Obs.ts in
      match ev.Obs.kind with
      | Obs.Phase_enter { id; _ } ->
          let stack =
            match Hashtbl.find_opt open_phases id with
            | Some s -> s
            | None ->
                let s = ref [] in
                Hashtbl.add open_phases id s;
                s
          in
          stack := ts :: !stack
      | Obs.Phase_exit { id; ipc } ->
          let ts0 =
            match Hashtbl.find_opt open_phases id with
            | Some ({ contents = t0 :: rest } as s) ->
                s := rest;
                t0
            | _ -> ts
          in
          span
            ~track:("phase:" ^ meth_name id)
            ~name:(meth_name id) ~ts:ts0 ~dur:(ts - ts0)
            ~args:(Printf.sprintf "\"ipc\":%s" (fnum ipc))
      | Obs.Trial_start { id; cfg } -> Hashtbl.replace pending_trials id (ts, cfg)
      | Obs.Trial_result { id; cfg; energy; ipc } ->
          let ts0, _ =
            match Hashtbl.find_opt pending_trials id with
            | Some p ->
                Hashtbl.remove pending_trials id;
                p
            | None -> (ts, cfg)
          in
          span
            ~track:("tuning:" ^ meth_name id)
            ~name:cfg ~ts:ts0 ~dur:(ts - ts0)
            ~args:
              (Printf.sprintf "\"energy\":%s,\"ipc\":%s" (fnum energy) (fnum ipc))
      | Obs.Hotspot_promoted { id; name } ->
          instant
            ~track:("phase:" ^ meth_name id)
            ~name:"hotspot_promoted" ~ts
            ~args:(Printf.sprintf "\"method\":\"%s\"" (json_escape name))
      | Obs.Recompile { id } ->
          instant ~track:("phase:" ^ meth_name id) ~name:"recompile" ~ts ~args:""
      | Obs.Burn_in { id; left } ->
          instant
            ~track:("tuning:" ^ meth_name id)
            ~name:"burn_in" ~ts
            ~args:(Printf.sprintf "\"left\":%d" left)
      | Obs.Tuning_finished { id; best; tested } ->
          instant
            ~track:("tuning:" ^ meth_name id)
            ~name:"tuning_finished" ~ts
            ~args:
              (Printf.sprintf "\"best\":\"%s\",\"tested\":%d" (json_escape best)
                 tested)
      | Obs.Drift_sample { id; ipc; ref_ipc } ->
          instant
            ~track:("tuning:" ^ meth_name id)
            ~name:"drift_sample" ~ts
            ~args:
              (Printf.sprintf "\"ipc\":%s,\"ref_ipc\":%s" (fnum ipc)
                 (fnum ref_ipc))
      | Obs.Retune { id; drift } ->
          instant
            ~track:("tuning:" ^ meth_name id)
            ~name:"retune" ~ts
            ~args:(Printf.sprintf "\"drift\":%s" (fnum drift))
      | Obs.Quarantine { id } ->
          instant ~track:("tuning:" ^ meth_name id) ~name:"quarantine" ~ts ~args:""
      | Obs.Cu_failed { cu } ->
          instant ~track:"hw" ~name:"cu_failed" ~ts
            ~args:(Printf.sprintf "\"cu\":\"%s\"" (json_escape cu))
      | Obs.Cu_recovered { cu } ->
          instant ~track:"hw" ~name:"cu_recovered" ~ts
            ~args:(Printf.sprintf "\"cu\":\"%s\"" (json_escape cu))
      | Obs.Reconfig { cu; label; flushed } ->
          instant ~track:"hw" ~name:"reconfig" ~ts
            ~args:
              (Printf.sprintf "\"cu\":\"%s\",\"to\":\"%s\",\"flushed\":%d"
                 (json_escape cu) (json_escape label) flushed)
      | Obs.Fault { cu; what } ->
          instant ~track:"hw" ~name:"fault" ~ts
            ~args:
              (Printf.sprintf "\"cu\":\"%s\",\"what\":\"%s\"" (json_escape cu)
                 (json_escape what))
      | Obs.Ckpt_capture { bytes } ->
          instant ~track:"ckpt" ~name:"ckpt_capture" ~ts
            ~args:(Printf.sprintf "\"bytes\":%d" bytes)
      | Obs.Ckpt_restore { instrs } ->
          instant ~track:"ckpt" ~name:"ckpt_restore" ~ts
            ~args:(Printf.sprintf "\"instrs\":%d" instrs)
      | Obs.Job_state { id; state } ->
          instant
            ~track:(Printf.sprintf "serve:job %d" id)
            ~name:state ~ts
            ~args:(Printf.sprintf "\"job\":%d" id)
      | Obs.Io_fault { op; path } ->
          instant ~track:"io" ~name:"io_fault" ~ts
            ~args:
              (Printf.sprintf "\"op\":\"%s\",\"path\":\"%s\"" (json_escape op)
                 (json_escape path))
      | Obs.Phase_splice { id; instrs } ->
          (* The region ends at [ts]; render it as a span covering the
             replayed instruction range so sampled regions are visually
             distinct from simulated ones on the timeline. *)
          span ~track:"sample" ~name:(meth_name id) ~ts:(ts - instrs)
            ~dur:instrs
            ~args:(Printf.sprintf "\"instrs\":%d" instrs))
    evs;
  (* Close whatever is still open at the end of the timeline. *)
  let leftovers = ref [] in
  Hashtbl.iter
    (fun id s -> List.iter (fun ts0 -> leftovers := (ts0, id, None) :: !leftovers) !s)
    open_phases;
  Hashtbl.iter
    (fun id (ts0, cfg) -> leftovers := (ts0, id, Some cfg) :: !leftovers)
    pending_trials;
  List.iter
    (fun (ts0, id, cfg) ->
      match cfg with
      | None ->
          span
            ~track:("phase:" ^ meth_name id)
            ~name:(meth_name id) ~ts:ts0 ~dur:(last_ts - ts0) ~args:""
      | Some cfg ->
          span
            ~track:("tuning:" ^ meth_name id)
            ~name:cfg ~ts:ts0 ~dur:(last_ts - ts0) ~args:"")
    (List.sort compare !leftovers);
  Printf.sprintf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[%s\n]}\n"
    (Buffer.contents buf)

(* -- event CSV ------------------------------------------------------ *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(* Shared per-kind field projection: (id, label, a, b), empties omitted. *)
let csv_fields = function
  | Obs.Phase_enter { id; name } -> (string_of_int id, name, "", "")
  | Obs.Phase_exit { id; ipc } -> (string_of_int id, "", fnum ipc, "")
  | Obs.Hotspot_promoted { id; name } -> (string_of_int id, name, "", "")
  | Obs.Recompile { id } -> (string_of_int id, "", "", "")
  | Obs.Trial_start { id; cfg } -> (string_of_int id, cfg, "", "")
  | Obs.Trial_result { id; cfg; energy; ipc } ->
      (string_of_int id, cfg, fnum energy, fnum ipc)
  | Obs.Burn_in { id; left } -> (string_of_int id, "", string_of_int left, "")
  | Obs.Tuning_finished { id; best; tested } ->
      (string_of_int id, best, string_of_int tested, "")
  | Obs.Drift_sample { id; ipc; ref_ipc } ->
      (string_of_int id, "", fnum ipc, fnum ref_ipc)
  | Obs.Retune { id; drift } -> (string_of_int id, "", fnum drift, "")
  | Obs.Quarantine { id } -> (string_of_int id, "", "", "")
  | Obs.Cu_failed { cu } -> ("", cu, "", "")
  | Obs.Cu_recovered { cu } -> ("", cu, "", "")
  | Obs.Reconfig { cu; label; flushed } ->
      ("", cu ^ "=" ^ label, string_of_int flushed, "")
  | Obs.Fault { cu; what } ->
      ("", (if cu = "" then what else cu ^ ":" ^ what), "", "")
  | Obs.Ckpt_capture { bytes } -> ("", "", string_of_int bytes, "")
  | Obs.Ckpt_restore { instrs } -> ("", "", string_of_int instrs, "")
  | Obs.Job_state { id; state } -> (string_of_int id, state, "", "")
  | Obs.Io_fault { op; path } -> ("", op ^ ":" ^ path, "", "")
  | Obs.Phase_splice { id; instrs } ->
      (string_of_int id, "", string_of_int instrs, "")

let csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "ts,kind,id,label,a,b\n";
  List.iter
    (fun ev ->
      let id, label, a, b = csv_fields ev.Obs.kind in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s,%s,%s\n" ev.Obs.ts
           (Obs.kind_name ev.Obs.kind) id (csv_escape label) a b))
    (Obs.events t);
  Buffer.contents buf

(* -- metrics CSV ---------------------------------------------------- *)

let metrics_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "metric,type,value\n";
  List.iter
    (function
      | Obs.M_counter (name, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,counter,%d\n" (csv_escape name) v)
      | Obs.M_gauge (name, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,gauge,%s\n" (csv_escape name) (fnum v))
      | Obs.M_histogram (name, bounds, counts, total, sum) ->
          Array.iteri
            (fun i bound ->
              Buffer.add_string buf
                (Printf.sprintf "%s.le_%s,bucket,%d\n" (csv_escape name)
                   (fnum bound) counts.(i)))
            bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s.le_inf,bucket,%d\n" (csv_escape name)
               counts.(Array.length counts - 1));
          Buffer.add_string buf
            (Printf.sprintf "%s.count,count,%d\n" (csv_escape name) total);
          Buffer.add_string buf
            (Printf.sprintf "%s.sum,sum,%s\n" (csv_escape name) (fnum sum)))
    (Obs.metrics t);
  Buffer.contents buf

(* -- human-readable report ------------------------------------------ *)

let report t =
  let ms = Obs.metrics t in
  let counter name =
    List.fold_left
      (fun acc m ->
        match m with Obs.M_counter (n, v) when n = name -> v | _ -> acc)
      0 ms
  in
  let gauge name =
    List.fold_left
      (fun acc m ->
        match m with Obs.M_gauge (n, v) when n = name -> v | _ -> acc)
      0.0 ms
  in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let instrs = gauge "engine.instrs" in
  line "ACE observability report";
  line "========================";
  line "instructions        : %.0f" instrs;
  line "overall IPC         : %s" (fnum (gauge "engine.ipc"));
  line "events recorded     : %d (%d dropped)" (Obs.event_count t) (Obs.dropped t);
  line "";
  let resizes = counter "mem.l1d.resizes" + counter "mem.l2.resizes" in
  let per_100k =
    if instrs > 0.0 then float_of_int resizes /. instrs *. 100_000.0 else 0.0
  in
  line "activity";
  line "  method entries    : %d" (counter "engine.method_entries");
  line "  hotspot promotions: %d" (counter "engine.hotspot_promotions");
  line "  recompiles        : %d" (counter "engine.recompiles");
  line "  tuning trials     : %d started, %d measured"
    (counter "tuner.trials_started")
    (counter "tuner.trial_results");
  line "  tunings finished  : %d" (counter "tuner.rounds_finished");
  line "  retunes           : %d (%d quarantined)" (counter "tuner.retunes")
    (counter "tuner.quarantines");
  line "  cache resizes     : %d (%.3f per 100K instrs)" resizes per_100k;
  line "  CU failures       : %d failed, %d recovered" (counter "fw.cu_failures")
    (counter "fw.cu_recoveries");
  line "  faults injected   : %d dropped, %d corrupted, %d stuck, %d spikes"
    (counter "faults.writes_dropped")
    (counter "faults.writes_corrupted")
    (counter "faults.stuck_events")
    (counter "faults.spikes");
  line "  sampled regions   : %d spliced (%d instrs memoized)"
    (counter "sample.splices")
    (counter "sample.spliced_instrs");
  line "";
  line "metrics";
  List.iter
    (function
      | Obs.M_counter (name, v) -> line "  %-28s %d" name v
      | Obs.M_gauge (name, v) -> line "  %-28s %s" name (fnum v)
      | Obs.M_histogram (name, bounds, counts, total, sum) ->
          line "  %-28s count=%d sum=%s" name total (fnum sum);
          Array.iteri
            (fun i bound -> line "    <= %-8s %d" (fnum bound) counts.(i))
            bounds;
          line "    >  %-8s %d"
            (fnum bounds.(Array.length bounds - 1))
            counts.(Array.length counts - 1))
    ms;
  let evs = Obs.events t in
  let n = List.length evs in
  if n > 0 then begin
    line "";
    line "timeline tail (last %d of %d events)" (min 12 n) n;
    let tail =
      let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: r -> drop (k - 1) r in
      drop (n - 12) evs
    in
    List.iter
      (fun ev ->
        let id, label, a, b = csv_fields ev.Obs.kind in
        let parts =
          List.filter (fun (_, v) -> v <> "")
            [ ("id", id); ("label", label); ("a", a); ("b", b) ]
        in
        line "  %10d  %-18s %s" ev.Obs.ts
          (Obs.kind_name ev.Obs.kind)
          (String.concat " "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) parts)))
      tail
  end;
  Buffer.contents buf
