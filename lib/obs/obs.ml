(* Observability sink: bounded event ring + metrics registry.

   Cost discipline: [incr] is a branch plus an int store and never
   allocates, so producers call it unconditionally.  Anything that takes a
   float or builds an event payload is gated at the call site (see the mli)
   because the native compiler boxes floats crossing a non-inlined call. *)

type level = Off | Metrics | Full

type kind =
  | Phase_enter of { id : int; name : string }
  | Phase_exit of { id : int; ipc : float }
  | Hotspot_promoted of { id : int; name : string }
  | Recompile of { id : int }
  | Trial_start of { id : int; cfg : string }
  | Trial_result of { id : int; cfg : string; energy : float; ipc : float }
  | Burn_in of { id : int; left : int }
  | Tuning_finished of { id : int; best : string; tested : int }
  | Drift_sample of { id : int; ipc : float; ref_ipc : float }
  | Retune of { id : int; drift : float }
  | Quarantine of { id : int }
  | Cu_failed of { cu : string }
  | Cu_recovered of { cu : string }
  | Reconfig of { cu : string; label : string; flushed : int }
  | Fault of { cu : string; what : string }
  | Ckpt_capture of { bytes : int }
  | Ckpt_restore of { instrs : int }
  | Job_state of { id : int; state : string }
  | Io_fault of { op : string; path : string }
  | Phase_splice of { id : int; instrs : int }

type event = { ts : int; kind : kind }

let kind_name = function
  | Phase_enter _ -> "phase_enter"
  | Phase_exit _ -> "phase_exit"
  | Hotspot_promoted _ -> "hotspot_promoted"
  | Recompile _ -> "recompile"
  | Trial_start _ -> "trial_start"
  | Trial_result _ -> "trial_result"
  | Burn_in _ -> "burn_in"
  | Tuning_finished _ -> "tuning_finished"
  | Drift_sample _ -> "drift_sample"
  | Retune _ -> "retune"
  | Quarantine _ -> "quarantine"
  | Cu_failed _ -> "cu_failed"
  | Cu_recovered _ -> "cu_recovered"
  | Reconfig _ -> "reconfig"
  | Fault _ -> "fault"
  | Ckpt_capture _ -> "ckpt_capture"
  | Ckpt_restore _ -> "ckpt_restore"
  | Job_state _ -> "job_state"
  | Io_fault _ -> "io_fault"
  | Phase_splice _ -> "phase_splice"

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array; (* length = bounds + 1; last bucket is overflow *)
  mutable h_total : int;
  mutable h_sum : float;
}

type t = {
  lvl : level;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, histogram) Hashtbl.t;
  cap : int;
  buf : event array; (* ring; length 0 unless lvl = Full *)
  mutable start : int;
  mutable len : int;
  mutable n_dropped : int;
  mutable clock : unit -> int;
}

let dummy_event = { ts = 0; kind = Recompile { id = -1 } }

let create ?(capacity = 65536) lvl =
  let cap = if lvl = Full then max 1 capacity else 0 in
  {
    lvl;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
    cap;
    buf = Array.make cap dummy_event;
    start = 0;
    len = 0;
    n_dropped = 0;
    clock = (fun () -> 0);
  }

let null = create Off
let level t = t.lvl
let enabled t = t.lvl <> Off
let tracing t = t.lvl = Full
let set_clock t f = if t.lvl <> Off then t.clock <- f
let now t = t.clock ()

(* -- registry ------------------------------------------------------- *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      if enabled t then Hashtbl.add t.counters name c;
      c

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      if enabled t then Hashtbl.add t.gauges name g;
      g

let check_bounds name bounds =
  if Array.length bounds = 0 then
    invalid_arg (Printf.sprintf "Obs.histogram %s: empty bounds" name);
  for i = 1 to Array.length bounds - 1 do
    if not (bounds.(i) > bounds.(i - 1)) then
      invalid_arg
        (Printf.sprintf "Obs.histogram %s: bounds not strictly increasing" name)
  done

let histogram t name ~bounds =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      check_bounds name bounds;
      let h =
        {
          h_name = name;
          h_bounds = Array.copy bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_total = 0;
          h_sum = 0.0;
        }
      in
      if enabled t then Hashtbl.add t.hists name h;
      h

let incr t c = if t.lvl <> Off then c.c_value <- c.c_value + 1
let add t c n = if t.lvl <> Off then c.c_value <- c.c_value + n
let set_gauge t g v = if t.lvl <> Off then g.g_value <- v

let bucket_of bounds v =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do
    i := !i + 1
  done;
  !i

let observe t h v =
  if t.lvl <> Off then begin
    let b = bucket_of h.h_bounds v in
    h.h_counts.(b) <- h.h_counts.(b) + 1;
    h.h_total <- h.h_total + 1;
    h.h_sum <- h.h_sum +. v
  end

let counter_value c = c.c_value
let gauge_value g = g.g_value

type metric =
  | M_counter of string * int
  | M_gauge of string * float
  | M_histogram of string * float array * int array * int * float

let metric_name = function
  | M_counter (n, _) | M_gauge (n, _) | M_histogram (n, _, _, _, _) -> n

let metrics t =
  let acc = ref [] in
  Hashtbl.iter (fun _ c -> acc := M_counter (c.c_name, c.c_value) :: !acc) t.counters;
  Hashtbl.iter (fun _ g -> acc := M_gauge (g.g_name, g.g_value) :: !acc) t.gauges;
  Hashtbl.iter
    (fun _ h ->
      acc :=
        M_histogram
          (h.h_name, Array.copy h.h_bounds, Array.copy h.h_counts, h.h_total, h.h_sum)
        :: !acc)
    t.hists;
  List.sort (fun a b -> compare (metric_name a) (metric_name b)) !acc

(* -- event ring ----------------------------------------------------- *)

let push t ev =
  if t.len < t.cap then begin
    t.buf.((t.start + t.len) mod t.cap) <- ev;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.start) <- ev;
    t.start <- (t.start + 1) mod t.cap;
    t.n_dropped <- t.n_dropped + 1
  end

let record t kind = if t.lvl = Full then push t { ts = t.clock (); kind }
let event_count t = t.len
let dropped t = t.n_dropped

let events t =
  List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))

(* -- capture / restore ---------------------------------------------- *)

type metrics_state = {
  ms_counters : (string * int) array;
  ms_gauges : (string * float) array;
  ms_hists : (string * float array * int array * int * float) array;
}

type state = {
  s_metrics : metrics_state;
  s_events : event array;
  s_dropped : int;
}

let sorted_array_of of_entry tbl =
  let acc = ref [] in
  Hashtbl.iter (fun _ v -> acc := of_entry v :: !acc) tbl;
  let a = Array.of_list !acc in
  Array.sort compare a;
  a

let capture t =
  if t.lvl = Off then None
  else
    Some
      {
        s_metrics =
          {
            ms_counters = sorted_array_of (fun c -> (c.c_name, c.c_value)) t.counters;
            ms_gauges = sorted_array_of (fun g -> (g.g_name, g.g_value)) t.gauges;
            ms_hists =
              sorted_array_of
                (fun h ->
                  ( h.h_name,
                    Array.copy h.h_bounds,
                    Array.copy h.h_counts,
                    h.h_total,
                    h.h_sum ))
                t.hists;
          };
        s_events = Array.of_list (events t);
        s_dropped = t.n_dropped;
      }

let restore t s =
  match s with
  | None -> ()
  | Some _ when t.lvl = Off -> ()
  | Some s ->
      Array.iter
        (fun (name, v) -> (counter t name).c_value <- v)
        s.s_metrics.ms_counters;
      Array.iter
        (fun (name, v) -> (gauge t name).g_value <- v)
        s.s_metrics.ms_gauges;
      Array.iter
        (fun (name, bounds, counts, total, sum) ->
          let h = histogram t name ~bounds in
          let n = min (Array.length counts) (Array.length h.h_counts) in
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          Array.blit counts 0 h.h_counts 0 n;
          h.h_total <- total;
          h.h_sum <- sum)
        s.s_metrics.ms_hists;
      if t.lvl = Full then begin
        t.start <- 0;
        t.len <- 0;
        t.n_dropped <- s.s_dropped;
        Array.iter (fun ev -> push t ev) s.s_events
      end
