(** Exporters over a populated {!Obs.t} sink.

    All output is deterministic for a given sink state: events come out in
    ring order and metrics in name order, floats are printed with ["%.9g"]
    (non-finite values rendered as [0]). *)

val chrome : Obs.t -> string
(** Chrome trace-event JSON (the ["traceEvents"] array format), loadable in
    Perfetto / [about:tracing].  Instruction counts are rendered as the
    microsecond timestamps the format requires.  Phase and tuning-trial
    events are paired into complete ("X") spans — phase spans nest per
    method (LIFO, so recursion works) and trial spans run per method until
    their result arrives; spans still open at the end of the timeline are
    closed at the last event's timestamp.  Everything else becomes an
    instant ("i") event carrying its payload in ["args"]. *)

val csv : Obs.t -> string
(** One row per event: header [ts,kind,id,label,a,b].  [id] is the method
    id (empty when not applicable), [label] a kind-specific string payload,
    [a]/[b] kind-specific numeric payloads.  Fields containing commas,
    quotes or newlines are quoted with doubled inner quotes. *)

val metrics_csv : Obs.t -> string
(** One row per registry entry: header [metric,type,value].  Histograms
    expand to one [bucket] row per upper bound ([name.le_<bound>] plus
    [name.le_inf]), then [name.count] and [name.sum]. *)

val report : Obs.t -> string
(** Human-readable summary: run shape, reconfiguration/tuning/fault
    activity (including reconfigurations per 100K instructions derived from
    the [engine.instrs] gauge), histogram sketches, and the tail of the
    event timeline. *)
