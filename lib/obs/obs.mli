(** Structured observability for the whole simulator.

    One sink ({!t}) is threaded through [Engine], [Framework], [Tuner],
    [Hierarchy], [Faults] and [Snapshot] and carries three things:

    - a typed, bounded ring buffer of {!event}s timestamped with the
      engine's instruction counter (so all timestamps share one monotone
      clock and a timeline can be reconstructed after the fact);
    - a metrics registry of named counters, gauges and fixed-bucket
      histograms, cheap enough to leave always-on;
    - enough captured state ({!capture}/{!restore}) that a checkpointed run
      resumed from a snapshot produces the same timeline and metrics as the
      uninterrupted run.

    {2 Cost discipline}

    The sink has three {!level}s.  At [Off] every emission is a branch on an
    immutable field and nothing else; {!null} is the distinguished always-off
    sink that every producer defaults to.  [Metrics] additionally updates
    registry cells (integer/float stores, no allocation per emission).
    [Full] also records ring events, which allocates one event per
    recording.

    Because the OCaml native compiler boxes float arguments at non-inlined
    call sites, producers must gate float-carrying emissions at the call
    site: [if Obs.enabled obs then Obs.observe obs h v] and
    [if Obs.tracing obs then Obs.record obs (Event {...})].  Plain
    {!val-incr} on a counter needs no gate — it is allocation-free at every
    level. *)

type level = Off | Metrics | Full

(** The event taxonomy (see DESIGN.md §Observability).  [id] is a method id
    where applicable; all payloads are plain data so captured states stay
    structurally comparable. *)
type kind =
  | Phase_enter of { id : int; name : string }
      (** A hotspot invocation began (only promoted methods are phases). *)
  | Phase_exit of { id : int; ipc : float }  (** ...and ended, at this IPC. *)
  | Hotspot_promoted of { id : int; name : string }
  | Recompile of { id : int }  (** JIT recompilation charged. *)
  | Trial_start of { id : int; cfg : string }
      (** The tuner began measuring configuration [cfg]. *)
  | Trial_result of { id : int; cfg : string; energy : float; ipc : float }
      (** ...and aggregated its measurement. *)
  | Burn_in of { id : int; left : int }
      (** A warm-up invocation passed; [left] remain. *)
  | Tuning_finished of { id : int; best : string; tested : int }
  | Drift_sample of { id : int; ipc : float; ref_ipc : float }
      (** A configured-phase sampling exit compared IPC with reference. *)
  | Retune of { id : int; drift : float }
  | Quarantine of { id : int }  (** Re-tune storm: selection pinned. *)
  | Cu_failed of { cu : string }
      (** Graceful degradation declared this CU failed. *)
  | Cu_recovered of { cu : string }
  | Reconfig of { cu : string; label : string; flushed : int }
      (** A CU actually changed setting (e.g. a cache resize), flushing
          [flushed] dirty lines. *)
  | Fault of { cu : string; what : string }  (** An injected fault fired. *)
  | Ckpt_capture of { bytes : int }
      (** A snapshot of this many bytes was written.  Ring-only: checkpoint
          events never touch the metrics registry, so a resumed run's
          metrics stay byte-identical to the uninterrupted run's. *)
  | Ckpt_restore of { instrs : int }
      (** The run resumed from a snapshot taken at [instrs]. *)
  | Job_state of { id : int; state : string }
      (** A serve-daemon job changed state ("queued", "running", "retrying",
          "resumed", "done", "failed", ...).  Emitted only by the daemon's
          own sink, whose clock is wall milliseconds since daemon start. *)
  | Io_fault of { op : string; path : string }
      (** A storage operation ([op] — "write", "fsync", "rename", ...)
          failed on [path].  Emitted by the serve daemon when spool I/O
          raises [Ace_util.Io.Io_error], so a trace shows exactly when the
          disk started misbehaving relative to job activity. *)
  | Phase_splice of { id : int; instrs : int }
      (** Fast-forward simulation replayed a known phase of method [id]
          spanning [instrs] instructions from its memoized record instead
          of simulating it, so a trace shows exactly which regions were
          sampled. *)

type event = { ts : int; kind : kind }
(** [ts] is the engine instruction counter at recording time. *)

val kind_name : kind -> string
(** Stable lower-snake-case name of the constructor ("phase_enter", ...). *)

type t

val null : t
(** The always-off sink: every emission is a single branch, nothing is ever
    registered, recorded or mutated.  Every producer defaults to it. *)

val create : ?capacity:int -> level -> t
(** A fresh sink.  [capacity] (default 65536, clamped to >= 1) bounds the
    event ring; once full, the oldest event is overwritten and {!dropped}
    counts the loss.  Only [Full] sinks allocate the ring. *)

val level : t -> level

val enabled : t -> bool
(** [level t <> Off]: the metrics registry is live. *)

val tracing : t -> bool
(** [level t = Full]: the event ring is live. *)

val set_clock : t -> (unit -> int) -> unit
(** Install the timestamp source (the engine's instruction counter; the
    engine installs it at creation).  No-op on an [Off] sink, so {!null}
    is never mutated.  The clock starts as [fun () -> 0]. *)

val now : t -> int

(** {2 Metrics registry}

    Handles are obtained once (registration is idempotent: the same name
    returns the same cell) and updated through the sink so the level gate is
    applied uniformly.  Registering on {!null} returns an inert cell. *)

type counter
type gauge
type histogram

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : t -> string -> bounds:float array -> histogram
(** [bounds] are inclusive upper bucket edges, strictly increasing and
    non-empty; an implicit overflow bucket catches the rest.  Re-registering
    an existing name returns the existing cell (its original bounds win).
    @raise Invalid_argument on empty or non-increasing bounds. *)

val incr : t -> counter -> unit
(** Allocation-free at every level; a single branch when disabled. *)

val add : t -> counter -> int -> unit
val set_gauge : t -> gauge -> float -> unit

val observe : t -> histogram -> float -> unit
(** Add one observation.  Gate the call ([if enabled t]) to keep the float
    argument from being boxed on the off path. *)

val counter_value : counter -> int
val gauge_value : gauge -> float

(** One registry entry, for exporters. *)
type metric =
  | M_counter of string * int
  | M_gauge of string * float
  | M_histogram of string * float array * int array * int * float
      (** name, bounds, per-bucket counts (length [bounds + 1], last =
          overflow), total count, sum of observations. *)

val metrics : t -> metric list
(** All registered metrics, sorted by name (deterministic export order). *)

(** {2 Event ring} *)

val record : t -> kind -> unit
(** Record an event at the current clock, if [tracing t].  Gate the call at
    the site so the [kind] payload is not allocated on colder levels. *)

val events : t -> event list
(** Retained events, oldest first, timestamps non-decreasing. *)

val event_count : t -> int
val dropped : t -> int
(** Events lost to ring overflow (oldest-first). *)

(** {2 Checkpoint capture / restore}

    Pure-data snapshot of the sink, serialized into [Ace_ckpt.Snapshot] so
    a resumed run continues its timeline seamlessly. *)

type metrics_state = {
  ms_counters : (string * int) array;  (** Sorted by name. *)
  ms_gauges : (string * float) array;
  ms_hists : (string * float array * int array * int * float) array;
}

type state = {
  s_metrics : metrics_state;
  s_events : event array;  (** Oldest first. *)
  s_dropped : int;
}

val capture : t -> state option
(** [None] for an [Off] sink (there is nothing to save). *)

val restore : t -> state option -> unit
(** Load a captured state into a live sink: metrics cells are registered and
    overwritten; on a [Full] sink the ring is replaced by the captured
    events (truncated to capacity, counting further drops).  [None] and
    [Off] sinks are no-ops. *)
