module Engine = Ace_vm.Engine
module Db = Ace_vm.Do_database
module Profile = Ace_vm.Profile
module Accounting = Ace_power.Accounting
module Hierarchy = Ace_mem.Hierarchy
module Faults = Ace_faults.Faults
module Obs = Ace_obs.Obs

type config = {
  tuner : Tuner.params;
  coarse_invocations_per_config : int;
  decoupling : bool;
  prediction : bool;
  jit_patch_instrs : int;
  resilience : Tuner.resilience;
  cu_failure_threshold : int;
  cu_probe_interval : int;
}

let default_config =
  {
    tuner = Tuner.default_params;
    coarse_invocations_per_config = 2;
    decoupling = true;
    prediction = false;
    jit_patch_instrs = 2000;
    resilience = Tuner.no_resilience;
    cu_failure_threshold = 4;
    cu_probe_interval = 50;
  }

type hotspot_state = {
  tuner : Tuner.t;
  managed : int array;  (* indices into the CU array *)
  mutable ever_configured : bool;
  (* [invoke_tick] value at this hotspot's most recent entry; lets
     [unsettled_active] tell a converging tuner (still being invoked)
     from a stranded one (promoted, then never run again). *)
  mutable last_invoked : int;
}

type t = {
  engine : Engine.t;
  cus : Cu.t array;
  cfg : config;
  faults : Faults.t;
  states : hotspot_state option array;
  accts : Accounting.t option array;
  (* Per-CU-class coverage: instructions executed while inside at least one
     configured hotspot of that class. *)
  class_depth : int array;
  class_start : int array;
  covered : int array;
  (* Per-CU metric counters. *)
  tunings : int array;
  reconfigs : int array;
  class_hotspots : int array;
  tuned_hotspots : int array;
  retunes : int array;
  predicted : int array;
  (* Fault-model bookkeeping: [believed] is the setting software last
     observed or wrote per CU; while it diverges from the hardware's actual
     setting the CU is misconfigured and [mis_since] holds the divergence
     start ([-1] = converged). *)
  believed : int array;
  mis_since : int array;
  misconfig : int array;
  verify_failures : int array;
  consec_badwrites : int array;
  failed : bool array;
  probe_countdown : int array;
  recoveries : int array;
  mutable quarantined : int;
  mutable frame_masks : int list;  (* per-frame coverage contributions *)
  mutable measuring_open : int;  (* in-flight invocations some tuner measures *)
  mutable invoke_tick : int;  (* promoted-method entries seen so far *)
  mutable unmanaged : int;
  mutable finalized : bool;
  (* Observability: per-CU named counters plus failure/recovery totals. *)
  obs : Obs.t;
  m_cu_failed : Obs.counter;
  m_cu_recovered : Obs.counter;
  cu_trials : Obs.counter array;
  cu_reconfigs : Obs.counter array;
  cu_retunes : Obs.counter array;
}

(* Frame-mask flag for an invocation whose exit measurement its tuner will
   consume.  CU coverage uses bits [0 .. n_cus-1] (attach enforces
   [n_cus <= 62]), so bit 62 — OCaml's 63-bit int sign bit, harmless under
   [land]/[lor] and round-tripped exactly by the fixed-width snapshot codec
   — is free.  Riding the flag on [frame_masks] makes the open-measurement
   count a pure function of the already-serialized frame list: restore
   recomputes it instead of trusting a second copy. *)
let measuring_bit = 1 lsl 62

let handle_applied t cu_idx flushed_lines =
  let cu = t.cus.(cu_idx) in
  Obs.incr t.obs t.cu_reconfigs.(cu_idx);
  let lat = Hierarchy.latencies (Engine.hierarchy t.engine) in
  Engine.add_stall_cycles t.engine
    (float_of_int (flushed_lines * lat.Hierarchy.writeback_cycles_per_line));
  match t.accts.(cu_idx) with
  | None -> ()
  | Some acct ->
      Accounting.on_reconfig acct ~new_size:(Cu.current_size cu)
        ~accesses_now:(cu.Cu.accesses_now ())
        ~cycles_now:(Engine.cycles t.engine) ~flushed_lines

(* Misconfiguration-time integration (omniscient metric: the simulator knows
   both what software believes and what the hardware holds). *)
let mark_divergence t k =
  if t.mis_since.(k) < 0 then t.mis_since.(k) <- Engine.instrs t.engine

let note_convergence t k =
  if t.mis_since.(k) >= 0 then begin
    t.misconfig.(k) <- t.misconfig.(k) + (Engine.instrs t.engine - t.mis_since.(k));
    t.mis_since.(k) <- -1
  end

(* Graceful degradation: after [cu_failure_threshold] consecutive writes the
   hardware claimed to apply but the read-back contradicted, declare the CU
   failed, pin it once at its safe maximum over the reset line, and stop
   tuning it.  The rest of the framework keeps optimizing the live CUs. *)
let maybe_fail_cu t k =
  if
    t.cfg.resilience.Tuner.enabled
    && (not t.failed.(k))
    && t.consec_badwrites.(k) >= t.cfg.cu_failure_threshold
  then begin
    t.failed.(k) <- true;
    Obs.incr t.obs t.m_cu_failed;
    if Obs.tracing t.obs then
      Obs.record t.obs (Obs.Cu_failed { cu = t.cus.(k).Cu.name });
    t.probe_countdown.(k) <- t.cfg.cu_probe_interval;
    (match Hw.force t.cus.(k) ~setting:0 ~now_instrs:(Engine.instrs t.engine) with
    | Hw.Applied { flushed_lines } -> handle_applied t k flushed_lines
    | Hw.Unchanged | Hw.Denied -> ());
    t.believed.(k) <- 0;
    note_convergence t k
  end

let live_managed t (st : hotspot_state) =
  Array.exists (fun k -> not t.failed.(k)) st.managed

(* Failed CUs sit pinned at their safe maximum, but every
   [cu_probe_interval] entries one probe write checks whether the fault
   (e.g. a transient latch-up) has cleared; a write that demonstrably lands
   brings the CU back under management.  Returns [true] when the probe
   recovered the CU (and resized it, so the invocation is a warming one).
   Probe failures do not count against the tuner's retry budget: the live
   CUs' settings are still fine. *)
let probe_failed t cu_idx ~setting ~now_instrs =
  t.probe_countdown.(cu_idx) <- t.probe_countdown.(cu_idx) - 1;
  if t.probe_countdown.(cu_idx) > 0 then false
  else begin
    t.probe_countdown.(cu_idx) <- t.cfg.cu_probe_interval;
    let cu = t.cus.(cu_idx) in
    match Hw.request ~faults:t.faults cu ~setting ~now_instrs with
    | Hw.Applied { flushed_lines } when cu.Cu.current = setting ->
        handle_applied t cu_idx flushed_lines;
        t.failed.(cu_idx) <- false;
        t.consec_badwrites.(cu_idx) <- 0;
        t.believed.(cu_idx) <- setting;
        t.recoveries.(cu_idx) <- t.recoveries.(cu_idx) + 1;
        Obs.incr t.obs t.m_cu_recovered;
        if Obs.tracing t.obs then
          Obs.record t.obs (Obs.Cu_recovered { cu = cu.Cu.name });
        note_convergence t cu_idx;
        true
    | Hw.Applied { flushed_lines } ->
        handle_applied t cu_idx flushed_lines;
        false
    | Hw.Unchanged ->
        (* The CU already holds the requested setting (it was pinned at the
           maximum and that is what the tuner now wants): there is no
           divergence left to protect against, so resume managing it.  If
           the latch-up still holds, the next mismatching write re-fails it
           within [cu_failure_threshold] entries — a bounded, safe probe. *)
        t.failed.(cu_idx) <- false;
        t.consec_badwrites.(cu_idx) <- 0;
        t.believed.(cu_idx) <- setting;
        t.recoveries.(cu_idx) <- t.recoveries.(cu_idx) + 1;
        Obs.incr t.obs t.m_cu_recovered;
        if Obs.tracing t.obs then
          Obs.record t.obs (Obs.Cu_recovered { cu = cu.Cu.name });
        note_convergence t cu_idx;
        false
    | Hw.Denied -> false
  end

let on_promoted t ~meth_id =
  let db = Engine.db t.engine in
  let e = Db.entry db meth_id in
  let size = Db.estimated_size e in
  let assigned =
    Decoupling.assign ~cus:t.cus ~size ~decoupling:t.cfg.decoupling
    |> List.filter (fun k -> not t.failed.(k))
  in
  match assigned with
  | [] ->
      t.unmanaged <- t.unmanaged + 1;
      Db.set_instrument db meth_id Ace_vm.Instrument.Plain
  | managed ->
      let configs = Decoupling.configurations ~cus:t.cus ~managed in
      let coarse =
        List.exists
          (fun k -> t.cus.(k).Cu.reconfig_interval >= 500_000)
          managed
      in
      let params =
        if coarse then
          {
            t.cfg.tuner with
            Tuner.invocations_per_config = t.cfg.coarse_invocations_per_config;
          }
        else t.cfg.tuner
      in
      let predicted =
        if t.cfg.prediction then
          Predictor.predict (Engine.program t.engine) ~cus:t.cus ~managed
            ~meth_id
        else None
      in
      (match predicted with
      | Some best ->
          (* The JIT's code analysis configures the hotspot directly: no
             tuning code is ever planted (paper §6). *)
          t.states.(meth_id) <-
            Some
              {
                tuner =
                  Tuner.create_configured ~resilience:t.cfg.resilience
                    ~obs:t.obs ~id:meth_id params ~configs ~best;
                managed = Array.of_list managed;
                ever_configured = true;
                last_invoked = t.invoke_tick;
              };
          List.iter
            (fun k ->
              t.predicted.(k) <- t.predicted.(k) + 1;
              t.tuned_hotspots.(k) <- t.tuned_hotspots.(k) + 1)
            managed;
          Db.set_instrument db meth_id Ace_vm.Instrument.Configured_sampling
      | None ->
          t.states.(meth_id) <-
            Some
              {
                tuner =
                  Tuner.create ~resilience:t.cfg.resilience ~obs:t.obs
                    ~id:meth_id params ~configs;
                managed = Array.of_list managed;
                ever_configured = false;
                last_invoked = t.invoke_tick;
              };
          Db.set_instrument db meth_id Ace_vm.Instrument.Tuning);
      List.iter
        (fun k -> t.class_hotspots.(k) <- t.class_hotspots.(k) + 1)
        managed;
      Engine.charge_software_instrs t.engine t.cfg.jit_patch_instrs

let on_entry t ~meth_id =
  let mask =
    match t.states.(meth_id) with
    | None -> 0
    | Some st ->
        t.invoke_tick <- t.invoke_tick + 1;
        st.last_invoked <- t.invoke_tick;
        (match Tuner.on_entry st.tuner with
        | Tuner.Nothing -> ()
        | Tuner.Set cfg when not (live_managed t st) ->
            (* Every managed CU failed: nothing to request beyond recovery
               probes; the hotspot runs at the forced safe settings. *)
            let now_instrs = Engine.instrs t.engine in
            Array.iteri
              (fun i cu_idx ->
                ignore (probe_failed t cu_idx ~setting:cfg.(i) ~now_instrs))
              st.managed
        | Tuner.Set cfg ->
            let applied_all = ref true in
            let changed_any = ref false in
            let verified_all = ref true in
            let now_instrs = Engine.instrs t.engine in
            Array.iteri
              (fun i cu_idx ->
                if not t.failed.(cu_idx) then begin
                  let cu = t.cus.(cu_idx) in
                  match
                    Hw.request ~faults:t.faults cu ~setting:cfg.(i) ~now_instrs
                  with
                  | Hw.Unchanged ->
                      (* Requested = actual: software's view is confirmed. *)
                      t.believed.(cu_idx) <- cfg.(i);
                      note_convergence t cu_idx
                  | Hw.Denied -> applied_all := false
                  | Hw.Applied { flushed_lines } ->
                      changed_any := true;
                      t.believed.(cu_idx) <- cfg.(i);
                      handle_applied t cu_idx flushed_lines;
                      if Tuner.is_configured st.tuner then
                        t.reconfigs.(cu_idx) <- t.reconfigs.(cu_idx) + 1;
                      (* Read-back verification: the hardware claimed success;
                         did the setting actually land? *)
                      if cu.Cu.current <> cfg.(i) then begin
                        verified_all := false;
                        t.verify_failures.(cu_idx) <-
                          t.verify_failures.(cu_idx) + 1;
                        t.consec_badwrites.(cu_idx) <-
                          t.consec_badwrites.(cu_idx) + 1;
                        mark_divergence t cu_idx;
                        maybe_fail_cu t cu_idx
                      end
                      else begin
                        t.consec_badwrites.(cu_idx) <- 0;
                        note_convergence t cu_idx
                      end
                end
                else if probe_failed t cu_idx ~setting:cfg.(i) ~now_instrs then
                  changed_any := true)
              st.managed;
            Tuner.entry_outcome st.tuner ~verified:!verified_all
              ~applied:!applied_all ~changed:!changed_any;
            if (not (Tuner.is_configured st.tuner)) && Tuner.measuring st.tuner
            then
              Array.iter
                (fun k ->
                  t.tunings.(k) <- t.tunings.(k) + 1;
                  Obs.incr t.obs t.cu_trials.(k))
                st.managed);
        let cov =
          if Tuner.is_configured st.tuner then
            Array.fold_left (fun m k -> m lor (1 lsl k)) 0 st.managed
          else 0
        in
        (* [Tuner.measuring] is true here exactly when the tuner will
           consume this invocation's exit measurement (a tuning trial or a
           configured drift sample); latch that into the frame so the
           open-measurement count stays balanced however the tuner's own
           state moves before the matching exit. *)
        if Tuner.measuring st.tuner then cov lor measuring_bit else cov
  in
  t.frame_masks <- mask :: t.frame_masks;
  if mask land measuring_bit <> 0 then
    t.measuring_open <- t.measuring_open + 1;
  if mask land lnot measuring_bit <> 0 then
    for k = 0 to Array.length t.cus - 1 do
      if mask land (1 lsl k) <> 0 then begin
        if t.class_depth.(k) = 0 then t.class_start.(k) <- Engine.instrs t.engine;
        t.class_depth.(k) <- t.class_depth.(k) + 1
      end
    done

let pop_coverage t =
  match t.frame_masks with
  | [] -> ()
  | mask :: rest ->
      t.frame_masks <- rest;
      if mask land measuring_bit <> 0 then
        t.measuring_open <- t.measuring_open - 1;
      if mask land lnot measuring_bit <> 0 then
        for k = 0 to Array.length t.cus - 1 do
          if mask land (1 lsl k) <> 0 then begin
            t.class_depth.(k) <- t.class_depth.(k) - 1;
            if t.class_depth.(k) = 0 then
              t.covered.(k) <-
                t.covered.(k) + (Engine.instrs t.engine - t.class_start.(k))
          end
        done

let on_exit t ~meth_id (profile : Profile.t) =
  pop_coverage t;
  match t.states.(meth_id) with
  | None -> ()
  | Some st ->
      (* Energy is only inspected by the tuner on measuring exits; avoid the
         computation otherwise. *)
      let energy =
        if Tuner.measuring st.tuner then
          Array.fold_left
            (fun acc cu_idx ->
              let cu = t.cus.(cu_idx) in
              acc +. cu.Cu.energy_proxy profile ~setting:cu.Cu.current)
            0.0 st.managed
        else 0.0
      in
      let db = Engine.db t.engine in
      (match Tuner.on_exit st.tuner ~energy ~ipc:(Profile.ipc profile) with
      | Tuner.Continue -> ()
      | Tuner.Finished _best ->
          if not st.ever_configured then begin
            st.ever_configured <- true;
            Array.iter
              (fun k -> t.tuned_hotspots.(k) <- t.tuned_hotspots.(k) + 1)
              st.managed
          end;
          Db.set_instrument db meth_id Ace_vm.Instrument.Configured_sampling;
          Engine.charge_software_instrs t.engine t.cfg.jit_patch_instrs
      | Tuner.Retuning ->
          Array.iter
            (fun k ->
              t.retunes.(k) <- t.retunes.(k) + 1;
              Obs.incr t.obs t.cu_retunes.(k))
            st.managed;
          Db.set_instrument db meth_id Ace_vm.Instrument.Tuning;
          Engine.charge_software_instrs t.engine t.cfg.jit_patch_instrs
      | Tuner.Quarantine ->
          (* Pin the selection and strip the sampling stub: the hotspot
             stops paying any tuning overhead. *)
          t.quarantined <- t.quarantined + 1;
          Db.set_instrument db meth_id Ace_vm.Instrument.Configured;
          Engine.charge_software_instrs t.engine t.cfg.jit_patch_instrs)

let attach ?(config = default_config) ?(faults = Faults.none) ?(obs = Obs.null)
    engine ~cus =
  let n_methods = Ace_isa.Program.method_count (Engine.program engine) in
  let n_cus = Array.length cus in
  if n_cus > 62 then invalid_arg "Framework.attach: too many CUs";
  let cu_counter suffix =
    Array.map (fun (cu : Cu.t) -> Obs.counter obs ("fw." ^ cu.Cu.name ^ suffix)) cus
  in
  let t =
    {
      engine;
      cus;
      cfg = config;
      faults;
      states = Array.make n_methods None;
      accts =
        Array.map
          (fun (cu : Cu.t) ->
            match cu.Cu.family with
            | Some family ->
                Some (Accounting.create family ~initial_size:(Cu.current_size cu))
            | None -> None)
          cus;
      class_depth = Array.make n_cus 0;
      class_start = Array.make n_cus 0;
      covered = Array.make n_cus 0;
      tunings = Array.make n_cus 0;
      reconfigs = Array.make n_cus 0;
      class_hotspots = Array.make n_cus 0;
      tuned_hotspots = Array.make n_cus 0;
      retunes = Array.make n_cus 0;
      predicted = Array.make n_cus 0;
      believed = Array.map (fun (cu : Cu.t) -> cu.Cu.current) cus;
      mis_since = Array.make n_cus (-1);
      misconfig = Array.make n_cus 0;
      verify_failures = Array.make n_cus 0;
      consec_badwrites = Array.make n_cus 0;
      failed = Array.make n_cus false;
      probe_countdown = Array.make n_cus 0;
      recoveries = Array.make n_cus 0;
      quarantined = 0;
      frame_masks = [];
      measuring_open = 0;
      invoke_tick = 0;
      unmanaged = 0;
      finalized = false;
      obs;
      m_cu_failed = Obs.counter obs "fw.cu_failures";
      m_cu_recovered = Obs.counter obs "fw.cu_recoveries";
      cu_trials = cu_counter ".trials";
      cu_reconfigs = cu_counter ".reconfigs";
      cu_retunes = cu_counter ".retunes";
    }
  in
  let hooks = Engine.hooks engine in
  hooks.Engine.on_hotspot_promoted <- (fun ~meth_id -> on_promoted t ~meth_id);
  hooks.Engine.on_method_entry <- (fun ~meth_id -> on_entry t ~meth_id);
  hooks.Engine.on_method_exit <- (fun ~meth_id profile -> on_exit t ~meth_id profile);
  t

let finalize t =
  if t.finalized then invalid_arg "Framework.finalize: already finalized";
  t.finalized <- true;
  let now = Engine.instrs t.engine in
  for k = 0 to Array.length t.cus - 1 do
    if t.class_depth.(k) > 0 then begin
      t.covered.(k) <- t.covered.(k) + (now - t.class_start.(k));
      t.class_depth.(k) <- 0
    end;
    if t.mis_since.(k) >= 0 then begin
      t.misconfig.(k) <- t.misconfig.(k) + (now - t.mis_since.(k));
      t.mis_since.(k) <- -1
    end
  done;
  Array.iteri
    (fun k acct ->
      match acct with
      | None -> ()
      | Some a ->
          Accounting.finish a
            ~accesses_now:(t.cus.(k).Cu.accesses_now ())
            ~cycles_now:(Engine.cycles t.engine))
    t.accts

type cu_report = {
  cu_name : string;
  class_hotspots : int;
  tuned_hotspots : int;
  tunings : int;
  reconfigs : int;
  denied : int;
  invalid : int;
  retunes : int;
  predicted_hotspots : int;
  coverage : float;
  energy_nj : float option;
  avg_size_bytes : float option;
  verify_failures : int;
  misconfig_instrs : int;
  failed : bool;
}

let report t =
  if not t.finalized then invalid_arg "Framework.report: call finalize first";
  let total = Engine.instrs t.engine in
  Array.mapi
    (fun k (cu : Cu.t) ->
      {
        cu_name = cu.Cu.name;
        class_hotspots = t.class_hotspots.(k);
        tuned_hotspots = t.tuned_hotspots.(k);
        tunings = t.tunings.(k);
        reconfigs = t.reconfigs.(k);
        denied = cu.Cu.denied_count;
        invalid = cu.Cu.invalid_count;
        retunes = t.retunes.(k);
        predicted_hotspots = t.predicted.(k);
        coverage =
          (if total = 0 then 0.0
           else float_of_int t.covered.(k) /. float_of_int total);
        energy_nj = Option.map Accounting.total_nj t.accts.(k);
        avg_size_bytes = Option.map Accounting.time_weighted_avg_bytes t.accts.(k);
        verify_failures = t.verify_failures.(k);
        misconfig_instrs = t.misconfig.(k);
        failed = t.failed.(k);
      })
    t.cus

let accounting t k = t.accts.(k)

(* A hotspot is "settled" once its tuner has chosen a configuration and is
   not currently consuming exit measurements (drift checks included).  The
   phase-statistics sampler only fast-forwards settled hotspots: replaying
   a memoized record through an invocation the tuner wants to measure
   would feed it stale statistics. *)
let hotspot_settled t ~meth_id =
  match t.states.(meth_id) with
  | None -> true
  | Some st -> Tuner.is_configured st.tuner && not (Tuner.measuring st.tuner)

let quiescent t =
  Array.for_all
    (function
      | None -> true
      | Some st ->
          Tuner.is_configured st.tuner && not (Tuner.measuring st.tuner))
    t.states

let measuring_open t = t.measuring_open

(* A mid-campaign tuner blocks splicing only while its hotspot is still
   being run: fast-forwarding a region that contains its invocations would
   starve the campaign (trials only run in fully simulated entries) and
   let memoized timing diverge from the configuration the full run would
   have converged to.  A tuner whose hotspot has not been entered in this
   many promoted-method entries is *stranded* (typically promoted during
   setup and never called again) and stops blocking — its campaign cannot
   progress either way.  If a splice does starve a reachable tuner, the
   recalibration observation re-enters its hotspot, refreshing
   [last_invoked] and re-imposing the block until it settles. *)
let activity_window = 256

let unsettled_active t =
  let tick = t.invoke_tick in
  Array.exists
    (function
      | None -> false
      | Some st ->
          ((not (Tuner.is_configured st.tuner)) || Tuner.measuring st.tuner)
          && tick - st.last_invoked <= activity_window)
    t.states

(* Scoped quiescence: splicing [meth_id] is refused only while a
   measurement the splice could affect is in flight or could be starved.
   Execution is a single-threaded call tree, so any open measuring
   invocation is an ancestor of the candidate's frame — the one place a
   memoized (rather than simulated) cycle cost would be folded into a
   live tuner measurement; [measuring_open = 0] rules that out.
   [unsettled_active] additionally holds splicing while any *reachable*
   tuner is still converging.  Unlike {!quiescent}, stranded tuners do
   not block.  See DESIGN.md §Sampled simulation. *)
let quiescent_for t ~meth_id =
  t.measuring_open = 0
  && hotspot_settled t ~meth_id
  && not (unsettled_active t)

let unmanaged_hotspots t = t.unmanaged

let quarantined_hotspots t = t.quarantined

type resilience_report = {
  total_verify_failures : int;
  failed_cus : int;
  cu_recoveries : int;
  quarantined : int;
  tuner_retries : int;
  tuner_backoff_skips : int;
  tuner_skipped_configs : int;
  misconfig_frac : float;
}

let resilience_report t =
  let retries = ref 0 and backoffs = ref 0 and skipped = ref 0 in
  Array.iter
    (fun state ->
      match state with
      | None -> ()
      | Some st ->
          let s = Tuner.stats st.tuner in
          retries := !retries + s.Tuner.retries;
          backoffs := !backoffs + s.Tuner.backoff_skips;
          skipped := !skipped + s.Tuner.skipped_configs)
    t.states;
  let total = Engine.instrs t.engine in
  let n_cus = Array.length t.cus in
  {
    total_verify_failures = Array.fold_left ( + ) 0 t.verify_failures;
    failed_cus =
      Array.fold_left (fun a f -> if f then a + 1 else a) 0 t.failed;
    cu_recoveries = Array.fold_left ( + ) 0 t.recoveries;
    quarantined = t.quarantined;
    tuner_retries = !retries;
    tuner_backoff_skips = !backoffs;
    tuner_skipped_configs = !skipped;
    misconfig_frac =
      (if total = 0 || n_cus = 0 then 0.0
       else
         float_of_int (Array.fold_left ( + ) 0 t.misconfig)
         /. float_of_int (n_cus * total));
  }

type hotspot_view = {
  meth_id : int;
  meth_name : string;
  managed_cus : string list;
  configured : bool;
  quarantined : bool;
  selection : (string * string) list;
  tested : int;
  tuning_rounds : int;
}

let hotspot_views t =
  let program = Engine.program t.engine in
  let views = ref [] in
  Array.iteri
    (fun meth_id state ->
      match state with
      | None -> ()
      | Some st ->
          let cu_of i = t.cus.(st.managed.(i)) in
          let selection =
            match Tuner.selected st.tuner with
            | None -> []
            | Some cfg ->
                List.init (Array.length cfg) (fun i ->
                    let cu = cu_of i in
                    (cu.Cu.name, cu.Cu.setting_labels.(cfg.(i))))
          in
          views :=
            {
              meth_id;
              meth_name = program.Ace_isa.Program.methods.(meth_id).Ace_isa.Program.name;
              managed_cus =
                Array.to_list (Array.map (fun k -> t.cus.(k).Cu.name) st.managed);
              configured = Tuner.is_configured st.tuner;
              quarantined = Tuner.is_quarantined st.tuner;
              selection;
              tested = Tuner.tested_count st.tuner;
              tuning_rounds = Tuner.rounds st.tuner;
            }
            :: !views)
    t.states;
  List.rev !views

(* {2 Checkpoint capture / restore} *)

type hotspot_state_state = {
  hs_tuner : Tuner.state;
  hs_managed : int array;
  hs_ever_configured : bool;
  hs_last_invoked : int;
}

type state = {
  s_states : hotspot_state_state option array;
  s_accts : Accounting.state option array;
  s_cus : Cu.state array;
  s_class_depth : int array;
  s_class_start : int array;
  s_covered : int array;
  s_tunings : int array;
  s_reconfigs : int array;
  s_class_hotspots : int array;
  s_tuned_hotspots : int array;
  s_retunes : int array;
  s_predicted : int array;
  s_believed : int array;
  s_mis_since : int array;
  s_misconfig : int array;
  s_verify_failures : int array;
  s_consec_badwrites : int array;
  s_failed : bool array;
  s_probe_countdown : int array;
  s_recoveries : int array;
  s_quarantined : int;
  s_frame_masks : int list;
  s_invoke_tick : int;
  s_unmanaged : int;
  s_finalized : bool;
}

let capture t =
  {
    s_states =
      Array.map
        (Option.map (fun st ->
             {
               hs_tuner = Tuner.capture st.tuner;
               hs_managed = Array.copy st.managed;
               hs_ever_configured = st.ever_configured;
               hs_last_invoked = st.last_invoked;
             }))
        t.states;
    s_accts = Array.map (Option.map Accounting.capture) t.accts;
    s_cus = Array.map Cu.capture t.cus;
    s_class_depth = Array.copy t.class_depth;
    s_class_start = Array.copy t.class_start;
    s_covered = Array.copy t.covered;
    s_tunings = Array.copy t.tunings;
    s_reconfigs = Array.copy t.reconfigs;
    s_class_hotspots = Array.copy t.class_hotspots;
    s_tuned_hotspots = Array.copy t.tuned_hotspots;
    s_retunes = Array.copy t.retunes;
    s_predicted = Array.copy t.predicted;
    s_believed = Array.copy t.believed;
    s_mis_since = Array.copy t.mis_since;
    s_misconfig = Array.copy t.misconfig;
    s_verify_failures = Array.copy t.verify_failures;
    s_consec_badwrites = Array.copy t.consec_badwrites;
    s_failed = Array.copy t.failed;
    s_probe_countdown = Array.copy t.probe_countdown;
    s_recoveries = Array.copy t.recoveries;
    s_quarantined = t.quarantined;
    s_frame_masks = t.frame_masks;
    s_invoke_tick = t.invoke_tick;
    s_unmanaged = t.unmanaged;
    s_finalized = t.finalized;
  }

(* Tuner construction inputs (configuration list, coarse-vs-fine params) are
   not serialized; they are recomputed here exactly as [on_promoted] derived
   them, from the restored CU array and the framework config. *)
let tuner_inputs t managed =
  let configs = Decoupling.configurations ~cus:t.cus ~managed in
  let coarse =
    List.exists (fun k -> t.cus.(k).Cu.reconfig_interval >= 500_000) managed
  in
  let params =
    if coarse then
      {
        t.cfg.tuner with
        Tuner.invocations_per_config = t.cfg.coarse_invocations_per_config;
      }
    else t.cfg.tuner
  in
  (params, configs)

let restore t s =
  let n_cus = Array.length t.cus in
  if Array.length s.s_states <> Array.length t.states then
    invalid_arg "Framework.restore: method count mismatch";
  if Array.length s.s_cus <> n_cus then
    invalid_arg "Framework.restore: CU count mismatch";
  Array.iteri (fun k cs -> Cu.restore t.cus.(k) cs) s.s_cus;
  Array.iteri
    (fun meth_id hs_opt ->
      t.states.(meth_id) <-
        Option.map
          (fun hs ->
            let params, configs = tuner_inputs t (Array.to_list hs.hs_managed) in
            {
              tuner =
                Tuner.restore ~resilience:t.cfg.resilience ~obs:t.obs
                  ~id:meth_id params ~configs hs.hs_tuner;
              managed = Array.copy hs.hs_managed;
              ever_configured = hs.hs_ever_configured;
              last_invoked = hs.hs_last_invoked;
            })
          hs_opt)
    s.s_states;
  Array.iteri
    (fun k acct ->
      match (acct, s.s_accts.(k)) with
      | Some a, Some sa -> Accounting.restore a sa
      | None, None -> ()
      | _ -> invalid_arg "Framework.restore: accounting shape mismatch")
    t.accts;
  let blit src dst = Array.blit src 0 dst 0 n_cus in
  blit s.s_class_depth t.class_depth;
  blit s.s_class_start t.class_start;
  blit s.s_covered t.covered;
  blit s.s_tunings t.tunings;
  blit s.s_reconfigs t.reconfigs;
  blit s.s_class_hotspots t.class_hotspots;
  blit s.s_tuned_hotspots t.tuned_hotspots;
  blit s.s_retunes t.retunes;
  blit s.s_predicted t.predicted;
  blit s.s_believed t.believed;
  blit s.s_mis_since t.mis_since;
  blit s.s_misconfig t.misconfig;
  blit s.s_verify_failures t.verify_failures;
  blit s.s_consec_badwrites t.consec_badwrites;
  Array.blit s.s_failed 0 t.failed 0 n_cus;
  blit s.s_probe_countdown t.probe_countdown;
  blit s.s_recoveries t.recoveries;
  t.quarantined <- s.s_quarantined;
  t.frame_masks <- s.s_frame_masks;
  t.measuring_open <-
    List.fold_left
      (fun acc m -> if m land measuring_bit <> 0 then acc + 1 else acc)
      0 s.s_frame_masks;
  t.invoke_tick <- s.s_invoke_tick;
  t.unmanaged <- s.s_unmanaged;
  t.finalized <- s.s_finalized
