(** The DO-based ACE management framework (§3, Figure 2 of the paper).

    [attach] hooks the framework into an engine's DO system.  From then on:

    - when the DO system promotes a method to hotspot, the framework
      classifies the hotspot's dynamic size, assigns it the matching CU
      subset ({!Decoupling}), builds its configuration list, and has the JIT
      insert tuning/profiling code at its boundaries;
    - each hotspot invocation drives the hotspot's {!Tuner}: tuning
      invocations test configurations (through the {!Hw} guard), configured
      invocations re-apply the selected configuration and occasionally sample
      for behaviour drift;
    - reconfiguration side effects are charged: flush stall cycles to the
      engine clock, flush energy and per-epoch dynamic/leakage energy to each
      cache CU's {!Ace_power.Accounting}.

    With a fault injector attached ([?faults]) and a {!Tuner.resilience}
    policy enabled, the framework additionally verifies every claimed
    register write by reading the setting back, retries/backs off/skips
    configurations whose installation keeps failing, quarantines hotspots
    that re-tune in storms, and force-pins a CU at its safe maximum once its
    writes fail persistently (graceful degradation; periodic probe writes
    recover the CU once a transient fault clears) — while tracking how
    long each CU spent diverged from what software believed
    (misconfiguration time, an omniscient simulator-only metric).

    Call {!finalize} once after [Engine.run]; then read {!report}. *)

type config = {
  tuner : Tuner.params;
  coarse_invocations_per_config : int;
      (** Overrides [tuner.invocations_per_config] for hotspots managing a
          coarse-grained CU (reconfiguration interval >= 500 K instructions):
          such hotspots are invoked far less often, so their tuning must
          finish in fewer invocations even at slightly higher measurement
          noise. *)
  decoupling : bool;  (** [false] = ablation: joint combinatorial tuning. *)
  prediction : bool;
      (** [true] = the JIT statically predicts each hotspot's configuration
          ({!Predictor}) and skips the tuning phase entirely — the paper's
          §6 future-work feature.  Exit sampling still catches
          mispredictions and falls back to measurement-based tuning. *)
  jit_patch_instrs : int;
      (** JIT cost of rewriting a hotspot's boundary stubs (tuning code
          insertion, tuning -> configuration code replacement). *)
  resilience : Tuner.resilience;
      (** Fault-tolerance policy threaded into every hotspot's tuner.
          Disabled by default: with {!Tuner.no_resilience} the framework
          behaves bit-for-bit as before the fault model existed. *)
  cu_failure_threshold : int;
      (** Consecutive verify-failed writes to one CU before it is declared
          failed and pinned at its safe maximum. *)
  cu_probe_interval : int;
      (** Entries between recovery probes of a failed CU: one probe write
          checks whether the fault (e.g. a transient latch-up) has cleared,
          and a verified landing brings the CU back under management. *)
}

val default_config : config
(** Decoupling on, default tuner parameters (2 invocations per configuration
    for coarse hotspots), 2000-instruction JIT patches, resilience off. *)

type t

val attach :
  ?config:config ->
  ?faults:Ace_faults.Faults.t ->
  ?obs:Ace_obs.Obs.t ->
  Ace_vm.Engine.t ->
  cus:Cu.t array ->
  t
(** Install the framework on the engine.  The engine's hotspot/entry/exit
    hooks are taken over (previously installed hooks are replaced).
    [faults] (default {!Ace_faults.Faults.none}) is applied to every control
    register write issued through {!Hw.request}.  [obs] (default
    {!Ace_obs.Obs.null}) receives per-CU trial/reconfig/retune counters,
    CU failure/recovery events, and is handed to every tuner it creates. *)

val finalize : t -> unit
(** Close coverage windows, misconfiguration windows and energy-accounting
    epochs at the engine's final counters.  Must be called exactly once,
    after the run. *)

(** Per-CU outcome of a run (rows of Tables 5 and 6). *)
type cu_report = {
  cu_name : string;
  class_hotspots : int;  (** Hotspots assigned to this CU. *)
  tuned_hotspots : int;  (** Of those, how many completed tuning. *)
  tunings : int;  (** Configuration trials (tuning attempts). *)
  reconfigs : int;
      (** Times the selected most-energy-efficient configuration was applied
          (actual setting changes in the configured phase). *)
  denied : int;  (** Requests dropped by the hardware guard. *)
  invalid : int;  (** Out-of-range requests rejected at the {!Hw} boundary. *)
  retunes : int;  (** Re-tuning rounds triggered by exit sampling. *)
  predicted_hotspots : int;
      (** Hotspots configured by static prediction (no tuning ran). *)
  coverage : float;
      (** Fraction of program instructions executed inside configured
          hotspots of this CU's class. *)
  energy_nj : float option;  (** Total energy (cache CUs only). *)
  avg_size_bytes : float option;  (** Time-weighted average configured size. *)
  verify_failures : int;
      (** Writes the hardware claimed to apply whose read-back mismatched. *)
  misconfig_instrs : int;
      (** Instructions executed while the CU's actual setting diverged from
          what software believed (omniscient metric). *)
  failed : bool;  (** CU was declared failed and pinned at its maximum. *)
}

val report : t -> cu_report array
(** One entry per CU, in [cus] order.  Only valid after {!finalize}. *)

val accounting : t -> int -> Ace_power.Accounting.t option
(** Energy accountant of the i-th CU (cache CUs only). *)

val hotspot_settled : t -> meth_id:int -> bool
(** True when [meth_id] has no tuner state, or its tuner has chosen a
    configuration and is not currently consuming exit measurements.  The
    phase-statistics sampler ({!Ace_sample.Sample}) only fast-forwards
    settled hotspots, so tuner trials and drift checks always run under
    full simulation. *)

val quiescent : t -> bool
(** True when every managed hotspot is settled ({!hotspot_settled}) — no
    tuner anywhere is mid-campaign or mid-measurement.  This global
    predicate almost never holds on many-hotspot workloads (some tuner is
    always still sweeping); the sampler uses the scoped
    {!quiescent_for} instead. *)

val measuring_open : t -> int
(** Number of invocations currently on the call stack whose exit
    measurement a tuner will consume (tuning trials and configured drift
    samples).  Zero means no measurement is in flight anywhere. *)

val unsettled_active : t -> bool
(** True while some tuner is mid-campaign or mid-measurement *and* its
    hotspot has been entered within the last 256 promoted-method entries.
    Splicing while such a tuner is live would starve its campaign (trials
    only run in fully simulated invocations) and let memoized timing
    diverge from the configuration the full run converges to.  Stranded
    tuners — promoted during setup and never invoked again — age out of
    this predicate, which is what keeps the splice fraction alive on
    many-hotspot workloads.  If a splice does starve a reachable tuner,
    the next recalibration observation re-enters its hotspot and
    re-imposes the block until it settles. *)

val quiescent_for : t -> meth_id:int -> bool
(** Scoped quiescence: true when [meth_id] itself is settled
    ({!hotspot_settled}), no measuring invocation is in flight
    ([measuring_open = 0]) and no reachable tuner is still converging
    ([not (unsettled_active t)]).  Because execution is a single-threaded
    call tree, any open measuring invocation is an ancestor of the
    candidate — the only situation where splicing would fold memoized
    rather than simulated cycles into a live tuner measurement (see
    DESIGN.md §Sampled simulation for the soundness argument). *)

val unmanaged_hotspots : t -> int
(** Hotspots too small for any CU class. *)

val quarantined_hotspots : t -> int
(** Hotspots pinned by the re-tune-storm detector. *)

(** Aggregate fault-handling outcome of a run. *)
type resilience_report = {
  total_verify_failures : int;
  failed_cus : int;  (** CUs still pinned at their maximum at run end. *)
  cu_recoveries : int;
      (** Failed CUs brought back by a successful recovery probe. *)
  quarantined : int;
  tuner_retries : int;
  tuner_backoff_skips : int;
  tuner_skipped_configs : int;
  misconfig_frac : float;
      (** Mean over CUs of the fraction of program instructions spent
          misconfigured. *)
}

val resilience_report : t -> resilience_report

(** Per-hotspot diagnostic snapshot (examples and debugging). *)
type hotspot_view = {
  meth_id : int;
  meth_name : string;
  managed_cus : string list;
  configured : bool;
  quarantined : bool;
  selection : (string * string) list;
      (** (CU name, chosen setting label) once configured. *)
  tested : int;  (** Configurations measured in the current/last round. *)
  tuning_rounds : int;
}

val hotspot_views : t -> hotspot_view list
(** All managed hotspots, in method-id order. *)

(** {2 Checkpoint capture / restore}

    Pure-data image of the framework's mutable state, including its CUs'
    register/counter state, per-hotspot tuner FSMs and energy accounting.
    Tuner construction inputs (configuration lists, coarse-vs-fine params)
    are recomputed at restore time from the framework config, not
    serialized. *)

type hotspot_state_state = {
  hs_tuner : Tuner.state;
  hs_managed : int array;
  hs_ever_configured : bool;
  hs_last_invoked : int;
}

type state = {
  s_states : hotspot_state_state option array;  (** Indexed by method id. *)
  s_accts : Ace_power.Accounting.state option array;
  s_cus : Cu.state array;
  s_class_depth : int array;
  s_class_start : int array;
  s_covered : int array;
  s_tunings : int array;
  s_reconfigs : int array;
  s_class_hotspots : int array;
  s_tuned_hotspots : int array;
  s_retunes : int array;
  s_predicted : int array;
  s_believed : int array;
  s_mis_since : int array;
  s_misconfig : int array;
  s_verify_failures : int array;
  s_consec_badwrites : int array;
  s_failed : bool array;
  s_probe_countdown : int array;
  s_recoveries : int array;
  s_quarantined : int;
  s_frame_masks : int list;
  s_invoke_tick : int;
  s_unmanaged : int;
  s_finalized : bool;
}

val capture : t -> state

val restore : t -> state -> unit
(** Overwrite a freshly [attach]ed framework (same program, CU array and
    config) with a captured state.
    @raise Invalid_argument on a shape mismatch. *)
