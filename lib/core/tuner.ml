module Obs = Ace_obs.Obs

type params = {
  performance_threshold : float;
  retune_threshold : float;
  sample_every : int;
  invocations_per_config : int;
  warmup_invocations : int;
}

let default_params =
  {
    performance_threshold = 0.02;
    retune_threshold = 0.20;
    sample_every = 24;
    invocations_per_config = 3;
    warmup_invocations = 2;
  }

type resilience = {
  enabled : bool;
  max_entry_retries : int;
  backoff_base : int;
  backoff_max : int;
  quarantine_retunes : int;
  quarantine_window : int;
}

let no_resilience =
  {
    enabled = false;
    max_entry_retries = 0;
    backoff_base = 0;
    backoff_max = 0;
    quarantine_retunes = 0;
    quarantine_window = 0;
  }

let default_resilience =
  {
    enabled = true;
    max_entry_retries = 3;
    backoff_base = 1;
    backoff_max = 8;
    quarantine_retunes = 3;
    quarantine_window = 200;
  }

type measurement = { config : int array; energy : float; ipc : float }

type tuning_state = {
  mutable next : int;  (* index of the configuration to test *)
  mutable pending : bool;  (* config applied at entry, awaiting its exit *)
  mutable measurements : measurement list;  (* reversed *)
  (* Accumulators averaging the current configuration over
     [invocations_per_config] invocations to suppress per-invocation
     noise (hotspot IPC CoVs run 5-10%, Table 5). *)
  mutable acc_energy : float;
  mutable acc_ipc : float;
  mutable acc_n : int;
  (* Raw samples, kept alongside the sums: with resilience enabled the
     configuration's quality is the per-component median, which a single
     outlier spike cannot drag (the mean can). *)
  mutable acc_samples : (float * float) list;
  (* Invocations to let pass before measuring: right after promotion the
     JIT is still recompiling callees, so early invocations run with
     drifting code quality and would bias the measurements. *)
  mutable warmup_left : int;
  (* Resilience state: verify-failed installation attempts of the
     current configuration, and invocations left to sit out before the
     next attempt (exponential backoff). *)
  mutable attempts : int;
  mutable backoff_left : int;
  (* A below-threshold measurement is being re-measured before it may cut
     the sweep short (resilience only). *)
  mutable degrade_flagged : bool;
}

type phase =
  | Tuning of tuning_state
  | Configured of {
      best : int array;
      mutable ref_ipc : float;  (* IPC at the previous sample *)
      mutable exits : int;  (* exits since the last sample *)
      mutable sampling : bool;  (* this invocation's exit gathers stats *)
      (* A drift reading is being double-checked on the next exit before it
         is allowed to trigger re-tuning (resilience only): a transient
         measurement spike won't repeat, a real phase change will. *)
      mutable confirming : bool;
    }
  | Quarantined of { best : int array }
      (* Re-tune storm detected: the selection is pinned, exit sampling is
         off, and the hotspot stops paying tuning overhead. *)

(* Observability handles.  Counter/histogram names are global (shared by
   every tuner through registry idempotence); [id] tags ring events with the
   method this tuner adapts. *)
type meters = {
  obs : Obs.t;
  id : int;
  m_trials_started : Obs.counter;
  m_trial_results : Obs.counter;
  m_burn_ins : Obs.counter;
  m_rounds_finished : Obs.counter;
  m_drift_samples : Obs.counter;
  m_retunes : Obs.counter;
  m_quarantines : Obs.counter;
  m_configs_skipped : Obs.counter;
  h_degradation : Obs.histogram;
  h_drift : Obs.histogram;
}

let make_meters obs id =
  {
    obs;
    id;
    m_trials_started = Obs.counter obs "tuner.trials_started";
    m_trial_results = Obs.counter obs "tuner.trial_results";
    m_burn_ins = Obs.counter obs "tuner.burn_in_invocations";
    m_rounds_finished = Obs.counter obs "tuner.rounds_finished";
    m_drift_samples = Obs.counter obs "tuner.drift_samples";
    m_retunes = Obs.counter obs "tuner.retunes";
    m_quarantines = Obs.counter obs "tuner.quarantines";
    m_configs_skipped = Obs.counter obs "tuner.configs_skipped";
    h_degradation =
      Obs.histogram obs "tuner.ipc_degradation_pct"
        ~bounds:[| 0.0; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0 |];
    h_drift =
      Obs.histogram obs "tuner.drift_pct"
        ~bounds:[| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0 |];
  }

(* Configuration label for ring events, e.g. "1/0" (one setting index per
   CU).  Only built under a [tracing] gate. *)
let cfg_label config =
  String.concat "/" (Array.to_list (Array.map string_of_int config))

type t = {
  params : params;
  res : resilience;
  configs : int array array;
  mutable phase : phase;
  mutable rounds : int;
  mutable tested_last_round : int;
  (* Resilience bookkeeping. *)
  mutable total_exits : int;
  mutable retune_exits : int list;  (* total_exits values of recent retunes *)
  mutable retries : int;
  mutable backoff_skips : int;
  mutable skipped_configs : int;
  mutable verify_failures : int;
  mt : meters;
}

let fresh_tuning ~warmup =
  Tuning
    {
      next = 0;
      pending = false;
      measurements = [];
      acc_energy = 0.0;
      acc_ipc = 0.0;
      acc_n = 0;
      acc_samples = [];
      warmup_left = warmup;
      attempts = 0;
      backoff_left = 0;
      degrade_flagged = false;
    }

let create ?(resilience = no_resilience) ?(obs = Obs.null) ?(id = -1) params
    ~configs =
  if Array.length configs = 0 then invalid_arg "Tuner.create: empty configuration list";
  {
    params;
    res = resilience;
    configs;
    phase = fresh_tuning ~warmup:params.warmup_invocations;
    rounds = 1;
    tested_last_round = 0;
    total_exits = 0;
    retune_exits = [];
    retries = 0;
    backoff_skips = 0;
    skipped_configs = 0;
    verify_failures = 0;
    mt = make_meters obs id;
  }

let create_configured ?(resilience = no_resilience) ?(obs = Obs.null) ?(id = -1)
    params ~configs ~best =
  if Array.length configs = 0 then
    invalid_arg "Tuner.create_configured: empty configuration list";
  {
    params;
    res = resilience;
    configs;
    (* ref_ipc 0 means the first sampling exit only records a reference
       (drift from 0 is defined as 0 in [on_exit]). *)
    phase =
      Configured
        { best; ref_ipc = 0.0; exits = 0; sampling = false; confirming = false };
    rounds = 0;
    tested_last_round = 0;
    total_exits = 0;
    retune_exits = [];
    retries = 0;
    backoff_skips = 0;
    skipped_configs = 0;
    verify_failures = 0;
    mt = make_meters obs id;
  }

type action = Set of int array | Nothing

let on_entry t =
  match t.phase with
  | Tuning ts ->
      if ts.warmup_left > 0 then Nothing
      else if ts.backoff_left > 0 then begin
        ts.backoff_left <- ts.backoff_left - 1;
        t.backoff_skips <- t.backoff_skips + 1;
        Nothing
      end
      else
        (* [next] is always in range here: a skip that exhausts the list is
           resolved by the same invocation's exit, before the next entry. *)
        Set t.configs.(ts.next)
  | Configured cs ->
      cs.sampling <- cs.confirming || (cs.exits + 1) mod t.params.sample_every = 0;
      Set cs.best
  | Quarantined q ->
      (* Keep re-asserting the pinned configuration: a transiently dropped
         write self-heals on the next admitted request. *)
      Set q.best

(* Abandon the configuration under test after repeated verify failures. *)
let skip_config t ts =
  t.skipped_configs <- t.skipped_configs + 1;
  Obs.incr t.mt.obs t.mt.m_configs_skipped;
  ts.attempts <- 0;
  ts.backoff_left <- 0;
  ts.acc_energy <- 0.0;
  ts.acc_ipc <- 0.0;
  ts.acc_n <- 0;
  ts.acc_samples <- [];
  ts.next <- ts.next + 1

let entry_outcome ?(verified = true) t ~applied ~changed =
  match t.phase with
  | Tuning ts ->
      (if not t.res.enabled then ts.pending <- applied && not changed
      else if not verified then begin
        (* The hardware claimed success but the read-back disagrees: the
           measurement would be mislabeled.  Discard it, back off, and after
           [max_entry_retries] give the configuration up. *)
        t.verify_failures <- t.verify_failures + 1;
        ts.pending <- false;
        ts.attempts <- ts.attempts + 1;
        if ts.attempts > t.res.max_entry_retries then skip_config t ts
        else begin
          t.retries <- t.retries + 1;
          ts.backoff_left <-
            min t.res.backoff_max (t.res.backoff_base lsl (ts.attempts - 1))
        end
      end
      else begin
        (* A guard denial (not applied) is not a fault: the configuration is
           simply retried next invocation, as without resilience. *)
        if applied then ts.attempts <- 0;
        ts.pending <- applied && not changed
      end);
      (* First admitted invocation of a configuration campaign: the trial
         opens here (re-opens after a degrade-flagged re-measure, which is a
         genuine second trial of the same configuration). *)
      if ts.pending && ts.acc_n = 0 then begin
        Obs.incr t.mt.obs t.mt.m_trials_started;
        if Obs.tracing t.mt.obs then
          Obs.record t.mt.obs
            (Obs.Trial_start
               { id = t.mt.id; cfg = cfg_label t.configs.(ts.next) })
      end
  | Configured cs ->
      if t.res.enabled && not verified then begin
        (* Don't sample an invocation that ran on a mis-installed
           configuration: its IPC would spuriously trigger re-tuning. *)
        t.verify_failures <- t.verify_failures + 1;
        cs.sampling <- false
      end
  | Quarantined _ -> ()

let measuring t =
  match t.phase with
  | Tuning ts -> ts.pending
  | Configured cs -> cs.sampling
  | Quarantined _ -> false

type transition = Continue | Finished of int array | Retuning | Quarantine

(* Select the most energy-efficient measured configuration whose IPC is
   within the performance threshold of the best measured IPC. *)
let select t measurements =
  let best_ipc =
    List.fold_left (fun acc m -> Float.max acc m.ipc) 0.0 measurements
  in
  let floor_ipc = best_ipc *. (1.0 -. t.params.performance_threshold) in
  let eligible = List.filter (fun m -> m.ipc >= floor_ipc) measurements in
  let pool = match eligible with [] -> measurements | _ :: _ -> eligible in
  match pool with
  | [] -> assert false (* caller guarantees at least one measurement *)
  | m0 :: rest ->
      List.fold_left (fun acc m -> if m.energy < acc.energy then m else acc) m0 rest

let finish t measurements =
  let best = select t measurements in
  t.tested_last_round <- List.length measurements;
  t.phase <-
    Configured
      {
        best = best.config;
        ref_ipc = best.ipc;
        exits = 0;
        sampling = false;
        confirming = false;
      };
  Obs.incr t.mt.obs t.mt.m_rounds_finished;
  if Obs.enabled t.mt.obs then begin
    (* How much IPC the energy-driven selection gave up relative to the
       fastest measured configuration (the paper's <2% claim). *)
    let best_ipc =
      List.fold_left (fun acc m -> Float.max acc m.ipc) 0.0 measurements
    in
    if best_ipc > 0.0 then
      Obs.observe t.mt.obs t.mt.h_degradation
        ((best_ipc -. best.ipc) /. best_ipc *. 100.0);
    if Obs.tracing t.mt.obs then
      Obs.record t.mt.obs
        (Obs.Tuning_finished
           {
             id = t.mt.id;
             best = cfg_label best.config;
             tested = List.length measurements;
           })
  end;
  Finished best.config

(* Every configuration was skipped without a single clean measurement: fall
   back to the safe maximum (index 0, largest capacity first). *)
let finish_empty t =
  t.tested_last_round <- 0;
  t.phase <-
    Configured
      {
        best = t.configs.(0);
        ref_ipc = 0.0;
        exits = 0;
        sampling = false;
        confirming = false;
      };
  Obs.incr t.mt.obs t.mt.m_rounds_finished;
  if Obs.tracing t.mt.obs then
    Obs.record t.mt.obs
      (Obs.Tuning_finished
         { id = t.mt.id; best = cfg_label t.configs.(0); tested = 0 });
  Finished t.configs.(0)

(* Median of a non-empty list (average of the two middles when even): the
   robust location estimate the resilient tuner aggregates with. *)
let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let retune_storm t =
  (* Count recent re-tunes (including the one firing now) within the
     sliding exit window; K of them quarantine the hotspot. *)
  t.retune_exits <- t.total_exits :: t.retune_exits;
  let horizon = t.total_exits - t.res.quarantine_window in
  t.retune_exits <- List.filter (fun e -> e > horizon) t.retune_exits;
  List.length t.retune_exits >= t.res.quarantine_retunes

let on_exit t ~energy ~ipc =
  t.total_exits <- t.total_exits + 1;
  match t.phase with
  | Tuning ts ->
      if ts.warmup_left > 0 then begin
        ts.warmup_left <- ts.warmup_left - 1;
        Obs.incr t.mt.obs t.mt.m_burn_ins;
        if Obs.tracing t.mt.obs then
          Obs.record t.mt.obs
            (Obs.Burn_in { id = t.mt.id; left = ts.warmup_left });
        Continue
      end
      else if ts.next >= Array.length t.configs then
        (* Only reachable when resilience skipped the last configuration at
           this invocation's entry. *)
        (match ts.measurements with
        | [] -> finish_empty t
        | ms -> finish t ms)
      else if not ts.pending then Continue
      else begin
        ts.pending <- false;
        ts.acc_energy <- ts.acc_energy +. energy;
        ts.acc_ipc <- ts.acc_ipc +. ipc;
        ts.acc_n <- ts.acc_n + 1;
        if t.res.enabled then ts.acc_samples <- (energy, ipc) :: ts.acc_samples;
        if ts.acc_n < t.params.invocations_per_config then Continue
        else begin
          let n = float_of_int ts.acc_n in
          let m =
            (* Resilient: per-component median, so one spiked invocation
               cannot mislabel the configuration.  Otherwise the plain mean,
               bit-for-bit as before the fault model. *)
            if t.res.enabled then
              {
                config = t.configs.(ts.next);
                energy = median (List.map fst ts.acc_samples);
                ipc = median (List.map snd ts.acc_samples);
              }
            else
              {
                config = t.configs.(ts.next);
                energy = ts.acc_energy /. n;
                ipc = ts.acc_ipc /. n;
              }
          in
          (* The trial completed even if the degrade check below discards
             the measurement: every Trial_start gets a Trial_result. *)
          Obs.incr t.mt.obs t.mt.m_trial_results;
          if Obs.tracing t.mt.obs then
            Obs.record t.mt.obs
              (Obs.Trial_result
                 {
                   id = t.mt.id;
                   cfg = cfg_label m.config;
                   energy = m.energy;
                   ipc = m.ipc;
                 });
          ts.acc_energy <- 0.0;
          ts.acc_ipc <- 0.0;
          ts.acc_n <- 0;
          ts.acc_samples <- [];
          ts.attempts <- 0;
          let best_prev =
            List.fold_left (fun acc x -> Float.max acc x.ipc) 0.0 ts.measurements
          in
          let degraded =
            ts.measurements <> []
            && m.ipc < best_prev *. (1.0 -. t.params.performance_threshold)
          in
          if degraded && t.res.enabled && not ts.degrade_flagged then begin
            (* A below-threshold reading cuts the sweep short, hiding every
               smaller configuration from selection; under faults it is as
               likely measurement noise.  Discard it and re-measure the same
               configuration once — real degradation repeats, noise doesn't. *)
            ts.degrade_flagged <- true;
            Continue
          end
          else begin
            ts.degrade_flagged <- false;
            ts.measurements <- m :: ts.measurements;
            ts.next <- ts.next + 1;
            if ts.next >= Array.length t.configs || degraded then
              finish t ts.measurements
            else Continue
          end
        end
      end
  | Configured cs ->
      cs.exits <- cs.exits + 1;
      if not cs.sampling then Continue
      else begin
        cs.sampling <- false;
        let drift =
          if cs.ref_ipc <= 0.0 then 0.0
          else Float.abs (ipc -. cs.ref_ipc) /. cs.ref_ipc
        in
        Obs.incr t.mt.obs t.mt.m_drift_samples;
        if Obs.enabled t.mt.obs then begin
          Obs.observe t.mt.obs t.mt.h_drift (drift *. 100.0);
          if Obs.tracing t.mt.obs then
            Obs.record t.mt.obs
              (Obs.Drift_sample { id = t.mt.id; ipc; ref_ipc = cs.ref_ipc })
        end;
        if drift > t.params.retune_threshold then begin
          if t.res.enabled && not cs.confirming then begin
            (* Could be a one-off measurement spike rather than a phase
               change: re-sample on the very next exit before discarding the
               selection.  A real behaviour change will still be there. *)
            cs.confirming <- true;
            Continue
          end
          else if t.res.enabled && retune_storm t then begin
            t.phase <- Quarantined { best = cs.best };
            Obs.incr t.mt.obs t.mt.m_quarantines;
            if Obs.tracing t.mt.obs then
              Obs.record t.mt.obs (Obs.Quarantine { id = t.mt.id });
            Quarantine
          end
          else begin
            t.phase <- fresh_tuning ~warmup:0;
            t.rounds <- t.rounds + 1;
            Obs.incr t.mt.obs t.mt.m_retunes;
            if Obs.tracing t.mt.obs then
              Obs.record t.mt.obs (Obs.Retune { id = t.mt.id; drift });
            Retuning
          end
        end
        else begin
          cs.confirming <- false;
          cs.ref_ipc <- ipc;
          Continue
        end
      end
  | Quarantined _ -> Continue

let is_configured t =
  match t.phase with
  | Configured _ | Quarantined _ -> true
  | Tuning _ -> false

let is_quarantined t =
  match t.phase with Quarantined _ -> true | Configured _ | Tuning _ -> false

let selected t =
  match t.phase with
  | Configured cs -> Some cs.best
  | Quarantined q -> Some q.best
  | Tuning _ -> None

let tested_count t =
  match t.phase with
  | Tuning ts -> List.length ts.measurements
  | Configured _ | Quarantined _ -> t.tested_last_round

let rounds t = t.rounds

type stats = {
  retries : int;
  backoff_skips : int;
  skipped_configs : int;
  verify_failures : int;
  quarantined : bool;
}

let stats (t : t) =
  {
    retries = t.retries;
    backoff_skips = t.backoff_skips;
    skipped_configs = t.skipped_configs;
    verify_failures = t.verify_failures;
    quarantined = is_quarantined t;
  }

(* {2 Checkpoint capture / restore} *)

type measurement_state = { ms_config : int array; ms_energy : float; ms_ipc : float }

type tuning_phase_state = {
  ts_next : int;
  ts_pending : bool;
  ts_measurements : measurement_state list;
  ts_acc_energy : float;
  ts_acc_ipc : float;
  ts_acc_n : int;
  ts_acc_samples : (float * float) list;
  ts_warmup_left : int;
  ts_attempts : int;
  ts_backoff_left : int;
  ts_degrade_flagged : bool;
}

type phase_state =
  | S_tuning of tuning_phase_state
  | S_configured of {
      cs_best : int array;
      cs_ref_ipc : float;
      cs_exits : int;
      cs_sampling : bool;
      cs_confirming : bool;
    }
  | S_quarantined of { qs_best : int array }

type state = {
  s_phase : phase_state;
  s_rounds : int;
  s_tested_last_round : int;
  s_total_exits : int;
  s_retune_exits : int list;
  s_retries : int;
  s_backoff_skips : int;
  s_skipped_configs : int;
  s_verify_failures : int;
}

let capture t =
  let phase =
    match t.phase with
    | Tuning ts ->
        S_tuning
          {
            ts_next = ts.next;
            ts_pending = ts.pending;
            ts_measurements =
              List.map
                (fun m ->
                  { ms_config = Array.copy m.config; ms_energy = m.energy; ms_ipc = m.ipc })
                ts.measurements;
            ts_acc_energy = ts.acc_energy;
            ts_acc_ipc = ts.acc_ipc;
            ts_acc_n = ts.acc_n;
            ts_acc_samples = ts.acc_samples;
            ts_warmup_left = ts.warmup_left;
            ts_attempts = ts.attempts;
            ts_backoff_left = ts.backoff_left;
            ts_degrade_flagged = ts.degrade_flagged;
          }
    | Configured cs ->
        S_configured
          {
            cs_best = Array.copy cs.best;
            cs_ref_ipc = cs.ref_ipc;
            cs_exits = cs.exits;
            cs_sampling = cs.sampling;
            cs_confirming = cs.confirming;
          }
    | Quarantined q -> S_quarantined { qs_best = Array.copy q.best }
  in
  {
    s_phase = phase;
    s_rounds = t.rounds;
    s_tested_last_round = t.tested_last_round;
    s_total_exits = t.total_exits;
    s_retune_exits = t.retune_exits;
    s_retries = t.retries;
    s_backoff_skips = t.backoff_skips;
    s_skipped_configs = t.skipped_configs;
    s_verify_failures = t.verify_failures;
  }

(* Rebuild a tuner from a captured state.  [params], [resilience] and
   [configs] are construction-time inputs the caller recomputes
   deterministically from the run's metadata (they are not serialized, which
   keeps the snapshot format independent of the configuration-space
   encoding). *)
let restore ?(resilience = no_resilience) ?(obs = Obs.null) ?(id = -1) params
    ~configs s =
  if Array.length configs = 0 then invalid_arg "Tuner.restore: empty configuration list";
  let phase =
    match s.s_phase with
    | S_tuning ts ->
        (if ts.ts_next < 0 || ts.ts_next > Array.length configs then
           invalid_arg "Tuner.restore: tuning index out of range");
        Tuning
          {
            next = ts.ts_next;
            pending = ts.ts_pending;
            measurements =
              List.map
                (fun m ->
                  { config = Array.copy m.ms_config; energy = m.ms_energy; ipc = m.ms_ipc })
                ts.ts_measurements;
            acc_energy = ts.ts_acc_energy;
            acc_ipc = ts.ts_acc_ipc;
            acc_n = ts.ts_acc_n;
            acc_samples = ts.ts_acc_samples;
            warmup_left = ts.ts_warmup_left;
            attempts = ts.ts_attempts;
            backoff_left = ts.ts_backoff_left;
            degrade_flagged = ts.ts_degrade_flagged;
          }
    | S_configured cs ->
        Configured
          {
            best = Array.copy cs.cs_best;
            ref_ipc = cs.cs_ref_ipc;
            exits = cs.cs_exits;
            sampling = cs.cs_sampling;
            confirming = cs.cs_confirming;
          }
    | S_quarantined q -> Quarantined { best = Array.copy q.qs_best }
  in
  {
    params;
    res = resilience;
    configs;
    phase;
    rounds = s.s_rounds;
    tested_last_round = s.s_tested_last_round;
    total_exits = s.s_total_exits;
    retune_exits = s.s_retune_exits;
    retries = s.s_retries;
    backoff_skips = s.s_backoff_skips;
    skipped_configs = s.s_skipped_configs;
    verify_failures = s.s_verify_failures;
    mt = make_meters obs id;
  }
