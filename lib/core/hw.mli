(** Hardware support for software-controlled adaptation (§3.4 of the paper).

    Each CU has a control register and a hardware counter holding its most
    recent reconfiguration time.  A write request arriving before the CU's
    reconfiguration interval has elapsed is silently ignored, freeing the
    software framework from tracking minimum residencies itself.

    [request] never raises: an out-of-range setting (e.g. from a corrupted
    tuner state) is rejected as {!Denied} and counted on the CU's
    [invalid_count], so a fault mid-simulation degrades instead of crashing
    the run.  With a fault injector attached, a write the guard accepted can
    still be lost, land bit-flipped, or bounce off a latched-up CU — in every
    such case the hardware {e reports} [Applied] exactly as real stuck
    hardware would, and only a read-back of [cu.current] reveals the
    divergence. *)

type outcome =
  | Unchanged  (** Requested setting is already current — no register write. *)
  | Denied
      (** Guard counter dropped the request (interval not elapsed), or the
          setting was out of range. *)
  | Applied of { flushed_lines : int }
      (** Setting changed; [flushed_lines] dirty lines were written back.
          Under fault injection this is what the hardware {e claims}: the
          actual setting may differ — read back [cu.current] to verify. *)

val request :
  ?faults:Ace_faults.Faults.t -> Cu.t -> setting:int -> now_instrs:int ->
  outcome
(** Attempt to switch [cu] to [setting] at global instruction count
    [now_instrs].  Updates the CU's guard counter and
    applied/denied/invalid statistics.  Never raises. *)

val force : Cu.t -> setting:int -> now_instrs:int -> outcome
(** Like {!request} but bypasses the guard and the fault layer (a privileged
    maintenance write over the CU's reset line: used to restore the maximum
    configuration at scheme start and to pin a failed CU at its safe setting;
    never available to tuning code).
    @raise Invalid_argument if [setting] is out of range. *)
