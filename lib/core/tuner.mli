(** Per-hotspot tuning state machine (§3.2.2 and §3.3 of the paper).

    After a hotspot is detected and JIT-optimized it enters the {e tuning}
    phase: successive invocations test the configurations of its managed CUs
    one by one (largest first), until the list is exhausted or performance
    falls past [performance_threshold].  The most energy-efficient
    configuration among those within the performance threshold is then
    selected and the hotspot enters the {e configured} phase: every entry
    re-applies the chosen configuration (zero identification latency for
    recurring phases), and occasional exit sampling compares current IPC with
    the previous sample — a large change triggers re-tuning.

    With a {!resilience} policy enabled the state machine also survives
    faulty hardware: an entry whose read-back verification fails is retried
    with exponential backoff and eventually skipped; per-configuration
    measurements are aggregated by median instead of mean (one spiked
    invocation cannot mislabel a configuration); a drift reading in the
    configured phase is confirmed on the next exit before it may trigger
    re-tuning (transient spikes don't repeat, phase changes do); and a
    hotspot whose exit sampling re-tunes too often in a short window (a
    re-tune storm) is {e quarantined} — its selection is pinned and it stops
    paying tuning and sampling overhead.

    The tuner is a pure decision kernel: the framework feeds it entries,
    hardware outcomes and exit measurements, and executes the actions it
    returns.  This keeps the tuning policy unit-testable without a VM. *)

type params = {
  performance_threshold : float;
      (** Max tolerated IPC degradation vs the best measured configuration
          (paper example: 2%). *)
  retune_threshold : float;
      (** Relative IPC change between samples that triggers re-tuning. *)
  sample_every : int;
      (** In the configured phase, gather statistics every n-th exit. *)
  invocations_per_config : int;
      (** Invocations averaged per configuration during tuning.  Hotspot IPC
          varies 5-10% between invocations (Table 5's per-hotspot CoVs);
          averaging keeps that noise from tripping the 2% performance
          threshold. *)
  warmup_invocations : int;
      (** Invocations skipped between promotion and the first measurement,
          letting the JIT finish recompiling the hotspot's callees so code
          quality is stable when tuning begins. *)
}

val default_params : params
(** 2% performance threshold, 20% retune threshold, sample every 24 exits,
    3 invocations per configuration, 2 warm-up invocations. *)

(** Fault-tolerance policy. *)
type resilience = {
  enabled : bool;
  max_entry_retries : int;
      (** Verify-failed installation attempts per configuration before it is
          skipped. *)
  backoff_base : int;
      (** Invocations sat out after the first failed attempt; doubles per
          attempt. *)
  backoff_max : int;  (** Backoff ceiling, in invocations. *)
  quarantine_retunes : int;
      (** Re-tunes within {!field-quarantine_window} that quarantine the
          hotspot. *)
  quarantine_window : int;  (** Sliding re-tune-storm window, in exits. *)
}

val no_resilience : resilience
(** Disabled: the pre-fault-model behaviour, bit for bit. *)

val default_resilience : resilience
(** Enabled; 3 retries, backoff 1 doubling to 8, quarantine after 3 re-tunes
    within 200 exits. *)

type t

val create :
  ?resilience:resilience ->
  ?obs:Ace_obs.Obs.t ->
  ?id:int ->
  params ->
  configs:int array array ->
  t
(** [configs] is the hotspot's configuration list (from
    {!Decoupling.configurations}); must be non-empty.  Resilience defaults
    to {!no_resilience}.  [obs] (default {!Ace_obs.Obs.null}) receives trial
    counters/histograms; [id] (default [-1]) tags its ring events with the
    method this tuner adapts. *)

val create_configured :
  ?resilience:resilience ->
  ?obs:Ace_obs.Obs.t ->
  ?id:int ->
  params ->
  configs:int array array ->
  best:int array ->
  t
(** A tuner born in the configured phase with a statically predicted
    configuration ({!Predictor}) — zero tuning latency.  Exit sampling still
    runs, so a misprediction triggers ordinary measurement-based re-tuning.
    The first sample establishes the reference IPC. *)

type action =
  | Set of int array  (** Request these CU settings at this entry. *)
  | Nothing

val on_entry : t -> action

val entry_outcome : ?verified:bool -> t -> applied:bool -> changed:bool -> unit
(** Report the hardware's response to the entry's configuration request:
    [applied] = no CU denied it; [changed] = at least one CU actually
    switched setting (flushing its contents); [verified] (default [true]) =
    reading the settings back matched what was requested.  During tuning, a
    denied request leaves the configuration untested and it is retried next
    invocation; a changed request makes this invocation a cache-warming one —
    its measurement is discarded and measuring starts on the next invocation,
    keeping the reconfiguration's cold-start transient out of the
    configuration's quality estimate.  With resilience enabled, a
    verify-failed request additionally counts against the configuration's
    retry budget and engages backoff. *)

val measuring : t -> bool
(** True when this invocation's exit measurement will be consumed (tuning
    with an applied and verified configuration, or a sampling exit). *)

type transition =
  | Continue
  | Finished of int array
      (** Tuning just completed; the argument is the selected most
          energy-efficient configuration. *)
  | Retuning  (** Sampled behaviour change; tuning restarts. *)
  | Quarantine
      (** Re-tune storm: the selection was pinned instead of re-tuning.
          The hotspot should drop to plain configured instrumentation. *)

val on_exit : t -> energy:float -> ipc:float -> transition
(** Feed the invocation's measured energy proxy and IPC. *)

val is_configured : t -> bool
(** True in the configured and quarantined phases. *)

val is_quarantined : t -> bool

val selected : t -> int array option
(** Chosen configuration once configured. *)

val tested_count : t -> int
(** Configurations measured in the current tuning round. *)

val rounds : t -> int
(** Tuning rounds started (1 + re-tunes). *)

(** Cumulative resilience counters. *)
type stats = {
  retries : int;  (** Verify-failed attempts that were retried. *)
  backoff_skips : int;  (** Invocations sat out by backoff. *)
  skipped_configs : int;  (** Configurations abandoned after max retries. *)
  verify_failures : int;  (** Entries whose read-back mismatched. *)
  quarantined : bool;
}

val stats : t -> stats

(** {2 Checkpoint capture / restore}

    Pure-data image of the tuner's FSM.  [params], [resilience] and the
    configuration list are construction-time inputs, recomputed by the caller
    at restore time rather than serialized. *)

type measurement_state = { ms_config : int array; ms_energy : float; ms_ipc : float }

type tuning_phase_state = {
  ts_next : int;
  ts_pending : bool;
  ts_measurements : measurement_state list;
  ts_acc_energy : float;
  ts_acc_ipc : float;
  ts_acc_n : int;
  ts_acc_samples : (float * float) list;
  ts_warmup_left : int;
  ts_attempts : int;
  ts_backoff_left : int;
  ts_degrade_flagged : bool;
}

type phase_state =
  | S_tuning of tuning_phase_state
  | S_configured of {
      cs_best : int array;
      cs_ref_ipc : float;
      cs_exits : int;
      cs_sampling : bool;
      cs_confirming : bool;
    }
  | S_quarantined of { qs_best : int array }

type state = {
  s_phase : phase_state;
  s_rounds : int;
  s_tested_last_round : int;
  s_total_exits : int;
  s_retune_exits : int list;
  s_retries : int;
  s_backoff_skips : int;
  s_skipped_configs : int;
  s_verify_failures : int;
}

val capture : t -> state

val restore :
  ?resilience:resilience ->
  ?obs:Ace_obs.Obs.t ->
  ?id:int ->
  params ->
  configs:int array array ->
  state ->
  t
(** Rebuild a tuner from a captured state.
    @raise Invalid_argument if [configs] is empty or the state's indices fall
    outside it. *)
