module Em = Ace_power.Energy_model
module Engine = Ace_vm.Engine
module Hierarchy = Ace_mem.Hierarchy
module Cache = Ace_mem.Cache

type t = {
  name : string;
  family : Em.family option;
  setting_labels : string array;
  setting_sizes : int array;
  reconfig_interval : int;
  apply : int -> int;
  accesses_now : unit -> int;
  energy_proxy : Ace_vm.Profile.t -> setting:int -> float;
  mutable current : int;
  mutable last_reconfig_instr : int;
  mutable applied_count : int;
  mutable denied_count : int;
  mutable invalid_count : int;
}

let n_settings t = Array.length t.setting_sizes

let current_size t = t.setting_sizes.(t.current)

let kb n = n * 1024

let make ~name ~family ~setting_labels ~setting_sizes ~reconfig_interval ~apply
    ~accesses_now ~energy_proxy =
  {
    name;
    family;
    setting_labels;
    setting_sizes;
    reconfig_interval;
    apply;
    accesses_now;
    energy_proxy;
    current = 0;
    last_reconfig_instr = 0;
    applied_count = 0;
    denied_count = 0;
    invalid_count = 0;
  }

let l1d engine =
  let hier = Engine.hierarchy engine in
  let sizes = [| kb 64; kb 32; kb 16; kb 8 |] in
  make ~name:"L1D" ~family:(Some Em.L1d)
    ~setting_labels:[| "64KB"; "32KB"; "16KB"; "8KB" |]
    ~setting_sizes:sizes ~reconfig_interval:100_000
    ~apply:(fun idx -> Hierarchy.resize_l1d hier ~size_bytes:sizes.(idx))
    ~accesses_now:(fun () -> Cache.Stats.accesses (Hierarchy.l1d hier))
    ~energy_proxy:(fun profile ~setting ->
      Ace_vm.Profile.l1d_energy_nj profile ~size_bytes:sizes.(setting)
        ~leak_cycles:profile.Ace_vm.Profile.cycles)

let l2 engine =
  let hier = Engine.hierarchy engine in
  let sizes = [| kb 1024; kb 512; kb 256; kb 128 |] in
  make ~name:"L2" ~family:(Some Em.L2)
    ~setting_labels:[| "1MB"; "512KB"; "256KB"; "128KB" |]
    ~setting_sizes:sizes ~reconfig_interval:1_000_000
    ~apply:(fun idx -> Hierarchy.resize_l2 hier ~size_bytes:sizes.(idx))
    ~accesses_now:(fun () -> Cache.Stats.accesses (Hierarchy.l2 hier))
    ~energy_proxy:(fun profile ~setting ->
      Ace_vm.Profile.l2_energy_nj profile ~size_bytes:sizes.(setting)
        ~leak_cycles:profile.Ace_vm.Profile.cycles)

let reorder_buffer engine =
  let entries = [| 64; 48; 32; 16 |] in
  let exposure = [| 1.0; 1.06; 1.18; 1.45 |] in
  (* CAM search + payload RAM: per-instruction energy roughly linear in
     entries; anchors 0.10 nJ/instr and 0.008 nJ/cycle leakage at 64. *)
  let access_nj idx = 0.10 *. (float_of_int entries.(idx) /. 64.0) in
  let leak_nj idx = 0.008 *. (float_of_int entries.(idx) /. 64.0) in
  make ~name:"ROB" ~family:None
    ~setting_labels:(Array.map (fun n -> string_of_int n ^ " entries") entries)
    ~setting_sizes:entries ~reconfig_interval:5_000
    ~apply:(fun idx ->
      Engine.set_exposure_scale engine exposure.(idx);
      0)
    ~accesses_now:(fun () -> Engine.instrs engine)
    ~energy_proxy:(fun profile ~setting ->
      (float_of_int profile.Ace_vm.Profile.instrs *. access_nj setting)
      +. (profile.Ace_vm.Profile.cycles *. leak_nj setting))

let issue_queue engine =
  let entries = [| 64; 48; 32; 16 |] in
  let ilp_scales = [| 1.0; 0.97; 0.90; 0.78 |] in
  (* Wakeup/select energy: per-instruction cost grows ~ sqrt(entries);
     leakage linear in entries.  Anchors: 0.08 nJ/instr and 0.005 nJ/cycle
     at 64 entries. *)
  let access_nj idx = 0.08 *. sqrt (float_of_int entries.(idx) /. 64.0) in
  let leak_nj idx = 0.005 *. (float_of_int entries.(idx) /. 64.0) in
  make ~name:"IQ" ~family:None
    ~setting_labels:(Array.map (fun n -> string_of_int n ^ " entries") entries)
    ~setting_sizes:entries ~reconfig_interval:10_000
    ~apply:(fun idx ->
      Engine.set_ilp_scale engine ilp_scales.(idx);
      0)
    ~accesses_now:(fun () -> Engine.instrs engine)
    ~energy_proxy:(fun profile ~setting ->
      (float_of_int profile.Ace_vm.Profile.instrs *. access_nj setting)
      +. (profile.Ace_vm.Profile.cycles *. leak_nj setting))

type state = {
  s_current : int;
  s_last_reconfig_instr : int;
  s_applied : int;
  s_denied : int;
  s_invalid : int;
}

let capture t =
  {
    s_current = t.current;
    s_last_reconfig_instr = t.last_reconfig_instr;
    s_applied = t.applied_count;
    s_denied = t.denied_count;
    s_invalid = t.invalid_count;
  }

(* The hardware behind the CU (cache sizes, ILP/exposure scales) is restored
   separately via [Engine.restore]; only the register/guard state and request
   counters live here, so no [apply] is performed. *)
let restore t s =
  if s.s_current < 0 || s.s_current >= n_settings t then
    invalid_arg "Cu.restore: setting index out of range";
  t.current <- s.s_current;
  t.last_reconfig_instr <- s.s_last_reconfig_instr;
  t.applied_count <- s.s_applied;
  t.denied_count <- s.s_denied;
  t.invalid_count <- s.s_invalid
