(** Configurable units (CUs).

    A CU is a hardware resource with a small set of discrete settings, a
    control register through which software selects a setting, a
    reconfiguration cost, and a *reconfiguration interval* — the minimum
    useful residency of a setting (§2.1 of the paper).  The framework never
    writes the control register directly; all requests go through {!Hw},
    which implements the paper's per-CU last-reconfiguration guard counter
    (§3.4). *)

type t = {
  name : string;
  family : Ace_power.Energy_model.family option;
      (** [Some _] for cache CUs (drives energy accounting); [None] for
          non-cache extension CUs that carry their own energy proxy. *)
  setting_labels : string array;  (** Human-readable, index 0 = largest. *)
  setting_sizes : int array;
      (** Size of each setting (bytes for caches, entries for queues),
          descending; used by tuners to order configurations. *)
  reconfig_interval : int;  (** Minimum instructions between reconfigurations. *)
  apply : int -> int;
      (** Write the control register: switch hardware to the given setting
          index, returning the number of dirty lines flushed (0 for units
          with no flush cost). *)
  accesses_now : unit -> int;
      (** Cumulative access count of the underlying unit (energy epochs). *)
  energy_proxy : Ace_vm.Profile.t -> setting:int -> float;
      (** Estimated energy (nJ) one invocation with the given profile would
          cost this unit at the given setting — the tuner's ranking metric. *)
  mutable current : int;  (** Current setting index. *)
  mutable last_reconfig_instr : int;
  mutable applied_count : int;  (** Accepted requests that changed the setting. *)
  mutable denied_count : int;  (** Requests dropped by the guard counter. *)
  mutable invalid_count : int;
      (** Out-of-range register writes rejected at the {!Hw} boundary (a
          corrupted tuner state must not crash the simulation). *)
}

val n_settings : t -> int

val current_size : t -> int

val l1d : Ace_vm.Engine.t -> t
(** The paper's L1 data cache CU: 64/32/16/8 KB, 100 K-instruction
    reconfiguration interval. *)

val l2 : Ace_vm.Engine.t -> t
(** The paper's unified L2 CU: 1 MB/512 KB/256 KB/128 KB, 1 M-instruction
    interval. *)

val issue_queue : Ace_vm.Engine.t -> t
(** Extension CU (§4.1 "we are implementing several more CUs"): a 64/48/32/16
    entry issue queue with a 10 K-instruction interval.  Downsizing scales
    the engine's effective ILP and saves wakeup/select energy. *)

val reorder_buffer : Ace_vm.Engine.t -> t
(** Extension CU: a 64/48/32/16 entry reorder buffer with a 5 K-instruction
    interval.  A smaller window hides less memory-miss latency (the engine's
    exposure scale) and saves CAM/payload energy. *)

(** Register/guard state and request counters, for checkpoint serialization.
    The hardware effect of the current setting is restored by
    [Engine.restore], not here. *)
type state = {
  s_current : int;
  s_last_reconfig_instr : int;
  s_applied : int;
  s_denied : int;
  s_invalid : int;
}

val capture : t -> state

val restore : t -> state -> unit
(** @raise Invalid_argument if the setting index is out of range. *)
