module Faults = Ace_faults.Faults

type outcome = Unchanged | Denied | Applied of { flushed_lines : int }

let do_apply (cu : Cu.t) ~setting ~now_instrs =
  let flushed_lines = cu.Cu.apply setting in
  cu.Cu.current <- setting;
  cu.Cu.last_reconfig_instr <- now_instrs;
  cu.Cu.applied_count <- cu.Cu.applied_count + 1;
  Applied { flushed_lines }

(* A write the guard accepted but the fault layer diverted: hardware still
   reports success and latches the guard counter, but nothing was flushed at
   the setting software asked for. *)
let phantom_apply (cu : Cu.t) ~now_instrs =
  cu.Cu.last_reconfig_instr <- now_instrs;
  cu.Cu.applied_count <- cu.Cu.applied_count + 1;
  Applied { flushed_lines = 0 }

let request ?(faults = Faults.none) cu ~setting ~now_instrs =
  if setting < 0 || setting >= Cu.n_settings cu then begin
    cu.Cu.invalid_count <- cu.Cu.invalid_count + 1;
    Denied
  end
  else if setting = cu.Cu.current then Unchanged
  else if now_instrs - cu.Cu.last_reconfig_instr < cu.Cu.reconfig_interval then begin
    cu.Cu.denied_count <- cu.Cu.denied_count + 1;
    Denied
  end
  else
    match
      Faults.on_reg_write faults ~cu:cu.Cu.name ~now_instrs ~setting
        ~n_settings:(Cu.n_settings cu)
    with
    | Faults.Landed -> do_apply cu ~setting ~now_instrs
    | Faults.Dropped -> phantom_apply cu ~now_instrs
    | Faults.Corrupted wrong ->
        if wrong = cu.Cu.current then phantom_apply cu ~now_instrs
        else do_apply cu ~setting:wrong ~now_instrs

let force cu ~setting ~now_instrs =
  if setting < 0 || setting >= Cu.n_settings cu then
    invalid_arg
      (Printf.sprintf "Hw.force: setting %d out of range for %s" setting
         cu.Cu.name);
  if setting = cu.Cu.current then Unchanged else do_apply cu ~setting ~now_instrs
