(** Parameterized synthetic workload generator.

    Where the SPECjvm98 analogues are hand-shaped, this generator produces a
    family of structurally similar programs from a compact parameter record —
    used by property-based tests (random but valid programs), by the examples
    (build-your-own workload) and by sensitivity benches (sweeps over hotspot
    size or locality). *)

type params = {
  n_phases : int;  (** L2-class phase methods. *)
  phase_repeats : int;  (** Invocations of each phase method. *)
  l1_methods_per_phase : int;
  l1_target_size : int;  (** Inclusive instructions per L1D-class method. *)
  leaves_per_phase : int;
  leaf_instrs : int;  (** Instructions per leaf invocation. *)
  working_set_kb : int;  (** Per-phase data region. *)
  shared_kb : int;  (** Region shared by all phases (0 = none). *)
  mem_frac : float;
  streaming_share : float;
      (** Fraction of leaves that stream rather than access randomly. *)
  ilp : float;
  setup_calls : int;
      (** When positive, each phase is preceded by a work-shaped setup
          method invoked exactly this many times — enough to cross the
          hotspot threshold, never enough to finish a tuning campaign.
          Models real init code whose stranded mid-campaign tuner pins any
          {e global} quiescence predicate false for the rest of the run;
          under the scoped {!Ace_core.Framework.quiescent_for} the
          stranded tuner ages out of {!Ace_core.Framework.unsettled_active}
          and stops blocking.  0 (the default) emits no setup methods. *)
}

val default : params
(** A medium workload: 3 phases x 40 repeats, ~120 K L1D methods, 24 KB
    working sets — roughly 40 M instructions. *)

val build : params -> seed:int -> Ace_isa.Program.t
(** @raise Invalid_argument on nonsensical parameters (asserted). *)

val workload : ?name:string -> params -> Workload.t
(** Wrap as a {!Workload.t}; [scale] multiplies [phase_repeats]. *)
