type params = {
  n_phases : int;
  phase_repeats : int;
  l1_methods_per_phase : int;
  l1_target_size : int;
  leaves_per_phase : int;
  leaf_instrs : int;
  working_set_kb : int;
  shared_kb : int;
  mem_frac : float;
  streaming_share : float;
  ilp : float;
  setup_calls : int;
      (* > 0: each phase is preceded by a setup method invoked exactly this
         many times.  Crossing the hotspot threshold without ever finishing
         a tuning campaign, such methods strand their tuner mid-campaign —
         the real-program pathology (init code) that pins any global
         quiescence predicate false for the rest of the run. *)
}

let default =
  {
    n_phases = 3;
    phase_repeats = 40;
    l1_methods_per_phase = 3;
    l1_target_size = 120_000;
    leaves_per_phase = 8;
    leaf_instrs = 1200;
    working_set_kb = 24;
    shared_kb = 0;
    mem_frac = 0.3;
    streaming_share = 0.3;
    ilp = 2.0;
    setup_calls = 0;
  }

let validate p =
  assert (p.n_phases > 0);
  assert (p.phase_repeats > 0);
  assert (p.l1_methods_per_phase > 0);
  assert (p.leaves_per_phase > 0);
  assert (p.leaf_instrs > 0);
  assert (p.l1_target_size >= p.leaf_instrs);
  assert (p.working_set_kb > 0);
  assert (p.shared_kb >= 0);
  assert (p.mem_frac >= 0.0 && p.mem_frac <= 1.0);
  assert (p.streaming_share >= 0.0 && p.streaming_share <= 1.0);
  assert (p.ilp > 0.0);
  assert (p.setup_calls >= 0)

let build p ~seed =
  validate p;
  let k = Kit.create ~name:"synthetic" ~seed in
  let rng = Kit.rng k in
  let shared =
    if p.shared_kb > 0 then Some (Kit.data_region k ~kb:p.shared_kb) else None
  in
  let phase i =
    let region = Kit.data_region k ~kb:p.working_set_kb in
    let leaves =
      Array.init p.leaves_per_phase (fun j ->
          let streaming =
            float_of_int j < p.streaming_share *. float_of_int p.leaves_per_phase
          in
          let access =
            match (streaming, shared) with
            | true, _ -> Kit.Stream (region, 8)
            | false, Some s when j mod 3 = 2 -> Kit.Uniform s
            | false, _ -> Kit.Uniform region
          in
          let instrs = p.leaf_instrs / 2 + Ace_util.Rng.int rng p.leaf_instrs in
          let b =
            Kit.block k ~ilp:p.ilp ~mispredict_rate:0.015 ~instrs
              ~mem_frac:p.mem_frac ~access ()
          in
          Kit.meth k
            ~name:(Printf.sprintf "leaf_%d_%d" i j)
            [ Kit.exec b 1 ])
    in
    let l1_methods =
      Array.init p.l1_methods_per_phase (fun j ->
          let per_leaf =
            max 1 (p.l1_target_size / (p.leaves_per_phase * p.leaf_instrs))
          in
          Kit.meth k
            ~name:(Printf.sprintf "work_%d_%d" i j)
            (List.map (fun l -> Kit.call l per_leaf) (Array.to_list leaves)))
    in
    let body =
      List.concat_map
        (fun m -> [ Kit.call m (2 + (i mod 2)) ])
        (Array.to_list l1_methods)
    in
    let setup =
      if p.setup_calls = 0 then None
      else
        (* Same shape (and therefore CU class) as a work method, but invoked
           only [setup_calls] times: enough to be promoted, never enough to
           finish tuning. *)
        let per_leaf =
          max 1 (p.l1_target_size / (p.leaves_per_phase * p.leaf_instrs))
        in
        Some
          (Kit.meth k
             ~name:(Printf.sprintf "setup_%d" i)
             (List.map (fun l -> Kit.call l per_leaf) (Array.to_list leaves)))
    in
    (setup, Kit.meth k ~name:(Printf.sprintf "phase_%d" i) body)
  in
  let phases = List.init p.n_phases phase in
  let main =
    Kit.meth k ~name:"main"
      (List.concat_map
         (fun (setup, ph) ->
           (match setup with
           | Some s -> [ Kit.call s p.setup_calls ]
           | None -> [])
           @ [ Kit.call ph p.phase_repeats ])
         phases)
  in
  Kit.finish k ~entry:main

let workload ?(name = "synthetic") p =
  {
    Workload.name;
    description = "Parameterized synthetic workload";
    paper_dynamic_instrs = 0.0;
    build =
      (fun ~scale ~seed ->
        build { p with phase_repeats = Kit.scaled ~scale p.phase_repeats } ~seed);
  }
