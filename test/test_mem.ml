(* TLB and hierarchy tests. *)
module Tlb = Ace_mem.Tlb
module Hierarchy = Ace_mem.Hierarchy
module Cache = Ace_mem.Cache
module Rng = Ace_util.Rng

let test_tlb_hit_miss () =
  let t = Tlb.create () in
  Alcotest.(check bool) "cold miss" false (Tlb.access t 0);
  Alcotest.(check bool) "then hit" true (Tlb.access t 0);
  Alcotest.(check bool) "same page hits" true (Tlb.access t 4095);
  Alcotest.(check bool) "next page misses" false (Tlb.access t 4096)

let test_tlb_capacity () =
  let t = Tlb.create ~entries:4 () in
  for p = 0 to 3 do
    ignore (Tlb.access t (p * 4096))
  done;
  (* All four resident. *)
  for p = 0 to 3 do
    Alcotest.(check bool) "resident" true (Tlb.access t (p * 4096))
  done;
  (* Fifth page evicts the oldest (page 0, FIFO). *)
  ignore (Tlb.access t (4 * 4096));
  Alcotest.(check bool) "page 0 evicted" false (Tlb.access t 0)

let test_tlb_counters () =
  let t = Tlb.create ~entries:2 () in
  ignore (Tlb.access t 0);
  ignore (Tlb.access t 0);
  ignore (Tlb.access t 8192);
  Alcotest.(check int) "accesses" 3 (Tlb.accesses t);
  Alcotest.(check int) "misses" 2 (Tlb.misses t)

let test_tlb_flush () =
  let t = Tlb.create () in
  ignore (Tlb.access t 0);
  Tlb.flush t;
  Alcotest.(check bool) "flushed" false (Tlb.access t 0)

let test_hierarchy_latencies () =
  let h = Hierarchy.create () in
  let lat = Hierarchy.latencies h in
  (* Cold access: L1 miss + L2 miss + memory + TLB miss. *)
  let cold = Hierarchy.data_access h ~addr:0 ~write:false in
  Alcotest.(check int) "cold latency"
    (lat.Hierarchy.l1_hit + lat.Hierarchy.l2_hit + lat.Hierarchy.memory
   + lat.Hierarchy.tlb_miss)
    cold;
  (* Warm: L1 hit. *)
  Alcotest.(check int) "warm latency" lat.Hierarchy.l1_hit
    (Hierarchy.data_access h ~addr:0 ~write:false)

let test_hierarchy_l2_hit_latency () =
  let h = Hierarchy.create () in
  let lat = Hierarchy.latencies h in
  ignore (Hierarchy.data_access h ~addr:0 ~write:false);
  (* Evict from L1 (64 KB, 2-way, 64 B lines -> 512 sets): two conflicting
     lines at 32 KB strides. *)
  ignore (Hierarchy.data_access h ~addr:(1 lsl 15) ~write:false);
  ignore (Hierarchy.data_access h ~addr:(2 lsl 15) ~write:false);
  (* Address 0 now misses L1 but hits L2 (1 MB holds all three). *)
  let l2_hit = Hierarchy.data_access h ~addr:0 ~write:false in
  Alcotest.(check int) "L1 miss, L2 hit"
    (lat.Hierarchy.l1_hit + lat.Hierarchy.l2_hit)
    l2_hit

let test_hierarchy_ifetch () =
  let h = Hierarchy.create () in
  let lat = Hierarchy.latencies h in
  let cold = Hierarchy.ifetch h ~pc:0x4000 in
  Alcotest.(check int) "cold ifetch misses to memory"
    (lat.Hierarchy.l1_hit + lat.Hierarchy.l2_hit + lat.Hierarchy.memory)
    cold;
  Alcotest.(check int) "warm ifetch" lat.Hierarchy.l1_hit
    (Hierarchy.ifetch h ~pc:0x4000)

let test_resize_l1d_writes_into_l2 () =
  let h = Hierarchy.create () in
  (* Dirty a line in L1D only (L2 also gets the fill, but the dirty data is
     in L1). *)
  ignore (Hierarchy.data_access h ~addr:0 ~write:true);
  let l2_accesses_before = Cache.Stats.accesses (Hierarchy.l2 h) in
  let flushed = Hierarchy.resize_l1d h ~size_bytes:(32 * 1024) in
  Alcotest.(check int) "one dirty line flushed" 1 flushed;
  Alcotest.(check bool) "flush wrote into L2" true
    (Cache.Stats.accesses (Hierarchy.l2 h) > l2_accesses_before);
  Alcotest.(check int) "L1D resized" (32 * 1024)
    (Cache.config (Hierarchy.l1d h)).Cache.size_bytes

let test_resize_l2_writes_to_memory () =
  let h = Hierarchy.create () in
  ignore (Hierarchy.data_access h ~addr:0 ~write:true);
  (* Push the dirty line down into L2 by flushing L1D first. *)
  ignore (Hierarchy.resize_l1d h ~size_bytes:(32 * 1024));
  let wb_before = Hierarchy.memory_writebacks h in
  let flushed = Hierarchy.resize_l2 h ~size_bytes:(512 * 1024) in
  Alcotest.(check bool) "L2 flush produced memory writebacks" true (flushed >= 1);
  Alcotest.(check bool) "memory writeback counter advanced" true
    (Hierarchy.memory_writebacks h >= wb_before + flushed)

let test_resize_l1d_noop () =
  let h = Hierarchy.create () in
  ignore (Hierarchy.data_access h ~addr:0 ~write:true);
  Alcotest.(check int) "same size: no flush" 0
    (Hierarchy.resize_l1d h ~size_bytes:(64 * 1024));
  Alcotest.(check bool) "contents preserved" true
    (Hierarchy.data_access h ~addr:0 ~write:false
    = (Hierarchy.latencies h).Hierarchy.l1_hit)

let test_resize_l2_noop () =
  let h = Hierarchy.create () in
  ignore (Hierarchy.data_access h ~addr:0 ~write:true);
  ignore (Hierarchy.resize_l1d h ~size_bytes:(32 * 1024));
  let wb_before = Hierarchy.memory_writebacks h in
  Alcotest.(check int) "same size: no flush" 0
    (Hierarchy.resize_l2 h ~size_bytes:(1024 * 1024));
  Alcotest.(check int) "no memory writeback traffic" wb_before
    (Hierarchy.memory_writebacks h);
  (* The dirty line pushed into L2 above must still be resident. *)
  let lat = Hierarchy.latencies h in
  Alcotest.(check int) "contents preserved"
    (lat.Hierarchy.l1_hit + lat.Hierarchy.l2_hit)
    (Hierarchy.data_access h ~addr:0 ~write:false)

(* [data_access_batch] must leave every structure and counter exactly as
   the equivalent scalar sequence would, and return the summed latency in
   excess of one L1 hit per access. *)
let batch_shapes = [ (3, 1, 64); (1, 0, 100); (0, 2, 33); (2, 3, 400) ]

let test_data_access_batch_equiv () =
  let rng = Rng.create ~seed:11 in
  List.iter
    (fun (loads, stores, reps) ->
      let ha = Hierarchy.create () and hb = Hierarchy.create () in
      let lat = Hierarchy.latencies ha in
      let period = loads + stores in
      let n = period * reps in
      let addrs = Array.init n (fun _ -> Rng.int rng (1 lsl 20)) in
      let scalar = ref 0 in
      Array.iteri
        (fun i addr ->
          let write = i mod period >= loads in
          scalar := !scalar + Hierarchy.data_access ha ~addr ~write)
        addrs;
      let batch = Hierarchy.data_access_batch hb ~addrs ~n ~loads ~stores in
      Alcotest.(check int) "penalty = scalar latency - n x l1_hit"
        (!scalar - (n * lat.Hierarchy.l1_hit))
        batch;
      Alcotest.(check bool) "hierarchy state identical" true
        (Hierarchy.capture ha = Hierarchy.capture hb);
      Alcotest.(check bool) "counters identical" true
        (Hierarchy.counts ha = Hierarchy.counts hb))
    batch_shapes

let prop_data_access_batch_equiv =
  QCheck.Test.make ~name:"data_access_batch = scalar sequence" ~count:50
    QCheck.(
      quad (int_range 0 4) (int_range 0 4) (int_range 1 200)
        (int_range 1 10_000))
    (fun (loads, stores, reps, seed) ->
      QCheck.assume (loads + stores > 0);
      let rng = Rng.create ~seed in
      let ha = Hierarchy.create () and hb = Hierarchy.create () in
      let lat = Hierarchy.latencies ha in
      let period = loads + stores in
      let n = period * reps in
      let addrs = Array.init n (fun _ -> Rng.int rng (1 lsl 22)) in
      let scalar = ref 0 in
      Array.iteri
        (fun i addr ->
          let write = i mod period >= loads in
          scalar := !scalar + Hierarchy.data_access ha ~addr ~write)
        addrs;
      let batch = Hierarchy.data_access_batch hb ~addrs ~n ~loads ~stores in
      batch = !scalar - (n * lat.Hierarchy.l1_hit)
      && Hierarchy.capture ha = Hierarchy.capture hb)

let test_data_access_batch_no_alloc () =
  let h = Hierarchy.create () in
  let n = 4096 in
  let addrs = Array.init n (fun i -> i * 64 mod (1 lsl 22)) in
  (* First call sizes the internal scratch; steady state allocates nothing
     beyond the boxing of the [Gc.minor_words] readings themselves. *)
  ignore (Hierarchy.data_access_batch h ~addrs ~n ~loads:3 ~stores:1);
  let w0 = Gc.minor_words () in
  for _ = 1 to 10 do
    ignore (Hierarchy.data_access_batch h ~addrs ~n ~loads:3 ~stores:1)
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state minor words %.0f < 256" dw)
    true (dw < 256.0)

(* Splicing the counter delta captured over a simulated segment must land
   the counters exactly where full simulation of that segment would. *)
let prop_splice_reproduces_counters =
  QCheck.Test.make
    ~name:"splice of a captured delta reproduces full-sim counters" ~count:30
    QCheck.(triple (int_range 1 500) (int_range 1 500) (int_range 1 10_000))
    (fun (n1, n2, seed) ->
      let rng = Rng.create ~seed in
      let seq n = Array.init n (fun _ -> Rng.int rng (1 lsl 18)) in
      let s1 = seq n1 and s2 = seq n2 in
      let replay h a =
        Array.iteri
          (fun i addr ->
            ignore (Hierarchy.data_access h ~addr ~write:(i mod 3 = 0)))
          a
      in
      let ha = Hierarchy.create () in
      replay ha s1;
      let c1 = Hierarchy.counts ha in
      replay ha s2;
      let c2 = Hierarchy.counts ha in
      let hb = Hierarchy.create () in
      replay hb s1;
      Hierarchy.splice hb (Hierarchy.diff_counts ~before:c1 ~after:c2);
      Hierarchy.counts hb = c2)

let test_memory_reads_counted () =
  let h = Hierarchy.create () in
  ignore (Hierarchy.data_access h ~addr:0 ~write:false);
  ignore (Hierarchy.data_access h ~addr:1_000_000 ~write:false);
  Alcotest.(check int) "two lines from memory" 2 (Hierarchy.memory_reads h)

let test_default_geometry () =
  let h = Hierarchy.create () in
  Alcotest.(check int) "L1D 64KB" (64 * 1024)
    (Cache.config (Hierarchy.l1d h)).Cache.size_bytes;
  Alcotest.(check int) "L2 1MB" (1024 * 1024)
    (Cache.config (Hierarchy.l2 h)).Cache.size_bytes;
  Alcotest.(check int) "L1I 64KB" (64 * 1024)
    (Cache.config (Hierarchy.l1i h)).Cache.size_bytes;
  Alcotest.(check int) "L2 line 128B" 128
    (Cache.config (Hierarchy.l2 h)).Cache.line_bytes

let suite =
  [
    Tu.case "tlb hit/miss" test_tlb_hit_miss;
    Tu.case "tlb capacity (FIFO)" test_tlb_capacity;
    Tu.case "tlb counters" test_tlb_counters;
    Tu.case "tlb flush" test_tlb_flush;
    Tu.case "hierarchy latencies" test_hierarchy_latencies;
    Tu.case "hierarchy L2 hit latency" test_hierarchy_l2_hit_latency;
    Tu.case "hierarchy ifetch" test_hierarchy_ifetch;
    Tu.case "resize L1D writes into L2" test_resize_l1d_writes_into_l2;
    Tu.case "resize L2 writes to memory" test_resize_l2_writes_to_memory;
    Tu.case "resize L1D noop" test_resize_l1d_noop;
    Tu.case "resize L2 noop" test_resize_l2_noop;
    Tu.case "data_access_batch = scalar" test_data_access_batch_equiv;
    Tu.qcheck prop_data_access_batch_equiv;
    Tu.case "data_access_batch allocation-free" test_data_access_batch_no_alloc;
    Tu.qcheck prop_splice_reproduces_counters;
    Tu.case "memory reads counted" test_memory_reads_counted;
    Tu.case "default geometry (Table 2)" test_default_geometry;
  ]
