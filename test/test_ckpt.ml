module Snapshot = Ace_ckpt.Snapshot
module Run = Ace_harness.Run
module Soak = Ace_harness.Soak
module Scheme = Ace_harness.Scheme

let compress () = Option.get (Ace_workloads.Specjvm.find "compress")

let tmp_path () = Filename.temp_file "ace_ckpt_test" ".snap"

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".1"; path ^ ".tmp"; path ^ ".baseline"; path ^ ".baseline.1" ]

(* Real snapshots from a small checkpointed run — the codec tests exercise
   the exact states production runs produce, not hand-built toys. *)
let sample_snapshots ?(scheme = Scheme.Hotspot) ?fault_rate () =
  let path = tmp_path () in
  let snaps = ref [] in
  let outcome =
    Run.run_checkpointed ~scale:0.2 ~seed:3 ?fault_rate
      ~on_snapshot:(fun s -> snaps := s :: !snaps)
      ~checkpoint_every:2_000_000 ~path (compress ()) scheme
  in
  cleanup path;
  match outcome with
  | Run.Completed r -> (List.rev !snaps, r)
  | Run.Killed_at _ -> assert false

let snaps_equal a b = Stdlib.compare (a : Snapshot.t) b = 0

let test_codec_roundtrip () =
  List.iter
    (fun scheme ->
      let snaps, _ = sample_snapshots ~scheme () in
      Alcotest.(check bool) "run produced checkpoints" true (snaps <> []);
      List.iter
        (fun s ->
          if not (snaps_equal s (Snapshot.decode (Snapshot.encode s))) then
            Alcotest.fail "decode (encode s) <> s")
        snaps)
    [ Scheme.Fixed_baseline; Scheme.Hotspot; Scheme.Bbv ]

let test_codec_roundtrip_faulty () =
  let snaps, _ = sample_snapshots ~fault_rate:0.05 () in
  List.iter
    (fun s ->
      Alcotest.(check bool) "faults captured" true (s.Snapshot.faults <> None);
      if not (snaps_equal s (Snapshot.decode (Snapshot.encode s))) then
        Alcotest.fail "decode (encode s) <> s under faults")
    snaps

let expect_error ~what data =
  match Snapshot.decode data with
  | exception Snapshot.Error _ -> ()
  | _ -> Alcotest.failf "decode accepted %s" what

let patch data pos f =
  let b = Bytes.of_string data in
  Bytes.set b pos (Char.chr (f (Char.code (Bytes.get b pos))));
  Bytes.to_string b

let test_container_refuses_tampering () =
  let snaps, _ = sample_snapshots () in
  let data = Snapshot.encode (List.hd snaps) in
  ignore (Snapshot.decode data);
  expect_error ~what:"empty file" "";
  expect_error ~what:"truncated header" (String.sub data 0 10);
  expect_error ~what:"truncated payload" (String.sub data 0 (String.length data - 1));
  expect_error ~what:"bad magic" (patch data 0 (fun c -> c lxor 0xff));
  (* Version skew: a byte-identical payload under a bumped version number
     must be refused, not misparsed. *)
  expect_error ~what:"bumped version" (patch data 8 (fun c -> c + 1));
  (* One flipped payload byte fails the CRC. *)
  expect_error ~what:"flipped payload byte"
    (patch data (String.length data - 1) (fun c -> c lxor 0x01));
  (* Flipping the stored CRC itself is also caught. *)
  expect_error ~what:"flipped CRC" (patch data 20 (fun c -> c lxor 0x01))

let expect_typed ~what matches data =
  match Snapshot.decode data with
  | exception Snapshot.Error e ->
      if not (matches e) then
        Alcotest.failf "%s: wrong error class: %s" what (Snapshot.error_to_string e)
  | _ -> Alcotest.failf "decode accepted %s" what

(* Each corruption class maps to its own typed error, so callers (the serve
   supervisor in particular) can tell a crash-truncated snapshot apart from
   bit rot or a format change. *)
let test_typed_errors () =
  let snaps, _ = sample_snapshots () in
  let data = Snapshot.encode (List.hd snaps) in
  expect_typed ~what:"empty input"
    (function Snapshot.Truncated { got = 0; _ } -> true | _ -> false)
    "";
  expect_typed ~what:"partial header"
    (function Snapshot.Truncated _ -> true | _ -> false)
    (String.sub data 0 10);
  expect_typed ~what:"partial payload"
    (function Snapshot.Truncated _ -> true | _ -> false)
    (String.sub data 0 (String.length data - 5));
  expect_typed ~what:"bad magic"
    (function Snapshot.Bad_magic -> true | _ -> false)
    (patch data 0 (fun c -> c lxor 0xff));
  expect_typed ~what:"version skew"
    (function
      | Snapshot.Version_skew { expected; found } ->
          expected = Snapshot.version && found = Snapshot.version + 1
      | _ -> false)
    (patch data 8 (fun c -> c + 1));
  expect_typed ~what:"payload corruption"
    (function
      | Snapshot.Crc_mismatch { stored; computed } -> stored <> computed
      | _ -> false)
    (patch data (String.length data - 1) (fun c -> c lxor 0x01))

(* A daemon crash mid-write leaves zero-byte or partial snapshot files; the
   restarted supervisor must see [Truncated] from [read] (and skip the file)
   rather than an untyped failure. *)
let test_read_truncated_file () =
  let snaps, _ = sample_snapshots () in
  let data = Snapshot.encode (List.hd snaps) in
  let path = tmp_path () in
  let write s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let expect_truncated what =
    match Snapshot.read ~path () with
    | exception Snapshot.Error (Snapshot.Truncated _) -> ()
    | exception Snapshot.Error e ->
        Alcotest.failf "%s: wrong error class: %s" what (Snapshot.error_to_string e)
    | _ -> Alcotest.failf "%s: read accepted it" what
  in
  write "";
  expect_truncated "zero-byte file";
  write (String.sub data 0 (String.length data / 2));
  expect_truncated "half-written file";
  cleanup path

let test_golden_snapshot () =
  (* A committed snapshot from an older build must keep decoding: the format
     is versioned, so any layout change has to bump Snapshot.version (which
     makes this test fail until the golden file is regenerated). *)
  let ic = open_in_bin "golden.snap" in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let s = Snapshot.decode data in
  Alcotest.(check string) "workload" "compress" s.Snapshot.meta.Snapshot.workload;
  Alcotest.(check bool) "hotspot scheme" true
    (s.Snapshot.meta.Snapshot.scheme = Snapshot.Hotspot);
  Alcotest.(check bool) "mid-run position" true (s.Snapshot.engine.Ace_vm.Engine.s_instrs > 0);
  expect_error ~what:"bumped-version golden" (patch data 8 (fun c -> c + 1));
  expect_error ~what:"corrupted golden" (patch data 60 (fun c -> c lxor 0x20))

let test_write_rotates_and_falls_back () =
  let path = tmp_path () in
  let snaps, _ = sample_snapshots () in
  let s1, s2 =
    match snaps with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "need 2 snaps"
  in
  Snapshot.write ~path s1;
  Snapshot.write ~path s2;
  Alcotest.(check bool) "rotated" true (Sys.file_exists (path ^ ".1"));
  (match Snapshot.read_with_fallback ~path () with
  | Some (s, `Primary) ->
      Alcotest.(check bool) "primary is newest" true (snaps_equal s s2)
  | _ -> Alcotest.fail "expected primary");
  (* Corrupt the newest snapshot on disk: reads must fall back to the
     rotated previous one. *)
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  seek_out oc 30;
  output_string oc "garbage";
  close_out oc;
  (match Snapshot.read_with_fallback ~path () with
  | Some (s, `Fallback) ->
      Alcotest.(check bool) "fallback is previous" true (snaps_equal s s1)
  | _ -> Alcotest.fail "expected fallback");
  (* Corrupt the fallback too: nothing left. *)
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 (path ^ ".1") in
  output_string oc "junk";
  close_out oc;
  Alcotest.(check bool)
    "both bad" true
    (Snapshot.read_with_fallback ~path () = None);
  cleanup path

let test_torn_generations () =
  (* The torture harness's torn-write case, pinned as a unit test: a crash
     mid-write leaves a prefix of the file, not corrupted bytes. *)
  let path = tmp_path () in
  let snaps, _ = sample_snapshots () in
  let s1, s2 =
    match snaps with a :: b :: _ -> (a, b) | _ -> Alcotest.fail "need 2 snaps"
  in
  Snapshot.write ~path s1;
  Snapshot.write ~path s2;
  let tear p =
    let ic = open_in_bin p in
    let data = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let oc = open_out_bin p in
    output_string oc (String.sub data 0 (String.length data / 2));
    close_out oc
  in
  tear path;
  (match Snapshot.read_with_fallback ~path () with
  | Some (s, `Fallback) ->
      Alcotest.(check bool) "torn primary falls back to rotation" true
        (snaps_equal s s1)
  | _ -> Alcotest.fail "expected fallback from torn primary");
  (* Tear the rotation too: reads must fail with a *typed* error and the
     fallback reader must report None — never leak a raw exception. *)
  tear (path ^ ".1");
  (match Snapshot.read ~path () with
  | exception Snapshot.Error (Snapshot.Truncated _) -> ()
  | exception Snapshot.Error e ->
      Alcotest.failf "wrong error class: %s" (Snapshot.error_to_string e)
  | exception e ->
      Alcotest.failf "untyped exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "torn primary accepted");
  Alcotest.(check bool) "both generations torn -> None" true
    (Snapshot.read_with_fallback ~path () = None);
  cleanup path

let test_checkpoint_every_validated () =
  match
    Run.run_checkpointed ~checkpoint_every:0 ~path:"/nonexistent/x.snap"
      (compress ()) Scheme.Hotspot
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted checkpoint_every = 0"

let run_oracle ?fault_rate scheme =
  let path = tmp_path () in
  let r =
    Soak.determinism_oracle ~scale:0.2 ~seed:3 ?fault_rate
      ~checkpoint_every:2_000_000 ~path (compress ()) scheme
  in
  cleanup path;
  Alcotest.(check bool) "several checkpoints" true (r.Soak.checkpoints >= 2);
  if not (Soak.oracle_passed r) then
    Alcotest.failf "%d of %d replays diverged" r.Soak.replay_mismatches
      r.Soak.checkpoints

let test_oracle_baseline () = run_oracle Scheme.Fixed_baseline
let test_oracle_hotspot () = run_oracle Scheme.Hotspot
let test_oracle_bbv () = run_oracle Scheme.Bbv
let test_oracle_hotspot_faulty () = run_oracle ~fault_rate:0.02 Scheme.Hotspot

let test_chaos_soak () =
  let path = tmp_path () in
  let r =
    Soak.chaos_soak ~scale:0.2 ~seed:3 ~fault_rate:0.01 ~cycles:25
      ~checkpoint_every:500_000 ~path (compress ()) Scheme.Hotspot
  in
  cleanup path;
  if not r.Soak.matched then
    Alcotest.fail "soak survivor's table differs from uninterrupted baseline";
  Alcotest.(check bool)
    (Printf.sprintf "at least 20 kill/resume cycles (got %d)" r.Soak.kills)
    true (r.Soak.kills >= 20)

let suite =
  [
    Tu.case "codec roundtrip (all schemes)" test_codec_roundtrip;
    Tu.case "codec roundtrip under faults" test_codec_roundtrip_faulty;
    Tu.case "container refuses tampering" test_container_refuses_tampering;
    Tu.case "corruption classes map to typed errors" test_typed_errors;
    Tu.case "read flags truncated files" test_read_truncated_file;
    Tu.case "golden snapshot decodes" test_golden_snapshot;
    Tu.case "write rotates and falls back" test_write_rotates_and_falls_back;
    Tu.case "torn generations: rotation fallback, typed errors"
      test_torn_generations;
    Tu.case "checkpoint_every validated" test_checkpoint_every_validated;
    Tu.slow_case "determinism oracle: baseline" test_oracle_baseline;
    Tu.slow_case "determinism oracle: hotspot" test_oracle_hotspot;
    Tu.slow_case "determinism oracle: bbv" test_oracle_bbv;
    Tu.slow_case "determinism oracle: hotspot+faults" test_oracle_hotspot_faulty;
    Tu.slow_case "chaos soak survives 20 kill/resume cycles" test_chaos_soak;
  ]
