module Cache = Ace_mem.Cache

let cfg ?(size = 1024) ?(assoc = 2) ?(line = 64) () =
  { Cache.size_bytes = size; assoc; line_bytes = line }

let mk ?size ?assoc ?line () = Cache.create (cfg ?size ?assoc ?line ())

let test_config_validation () =
  Alcotest.(check bool) "valid" true (Cache.config_valid (cfg ()));
  Alcotest.(check bool) "non-pow2 line" false
    (Cache.config_valid (cfg ~line:48 ()));
  Alcotest.(check bool) "size not multiple" false
    (Cache.config_valid (cfg ~size:1000 ()));
  Alcotest.(check bool) "non-pow2 sets" false
    (Cache.config_valid { Cache.size_bytes = 3 * 128; assoc = 1; line_bytes = 64 });
  Alcotest.check_raises "create rejects bad geometry"
    (Invalid_argument "Cache.create: invalid geometry") (fun () ->
      ignore (Cache.create (cfg ~line:48 ())))

let test_cold_miss_then_hit () =
  let c = mk () in
  Alcotest.(check bool) "cold miss" true (Cache.access c 0 ~write:false = Cache.Miss);
  Alcotest.(check bool) "then hit" true (Cache.access c 0 ~write:false = Cache.Hit);
  Alcotest.(check bool) "same line hits" true
    (Cache.access c 63 ~write:false = Cache.Hit);
  Alcotest.(check bool) "next line misses" true
    (Cache.access c 64 ~write:false = Cache.Miss)

let test_lru_within_set () =
  (* 1 KB, 2-way, 64 B lines -> 8 sets.  Addresses 0, 512, 1024 map to set 0. *)
  let c = mk () in
  ignore (Cache.access c 0 ~write:false);
  ignore (Cache.access c 512 ~write:false);
  (* touch 0 to make 512 the LRU *)
  ignore (Cache.access c 0 ~write:false);
  ignore (Cache.access c 1024 ~write:false);
  (* 512 should have been evicted, 0 should survive *)
  Alcotest.(check bool) "0 survives" true (Cache.access c 0 ~write:false = Cache.Hit);
  Alcotest.(check bool) "512 evicted" true
    (Cache.access c 512 ~write:false <> Cache.Hit)

let test_dirty_writeback () =
  let c = mk ~assoc:1 () in
  (* direct-mapped: 16 sets.  Write line 0, then evict with a conflicting
     line: should report a dirty victim at address 0. *)
  ignore (Cache.access c 0 ~write:true);
  (match Cache.access c 1024 ~write:false with
  | Cache.Miss_dirty_victim ->
      Alcotest.(check int) "victim address" 0 (Cache.last_victim_addr c)
  | Cache.Hit | Cache.Miss -> Alcotest.fail "expected dirty victim");
  Alcotest.(check int) "one writeback" 1 (Cache.Stats.writebacks c)

let test_clean_eviction_no_writeback () =
  let c = mk ~assoc:1 () in
  ignore (Cache.access c 0 ~write:false);
  Alcotest.(check bool) "clean victim" true
    (Cache.access c 1024 ~write:false = Cache.Miss);
  Alcotest.(check int) "no writebacks" 0 (Cache.Stats.writebacks c)

let test_write_hit_marks_dirty () =
  let c = mk ~assoc:1 () in
  ignore (Cache.access c 0 ~write:false);
  ignore (Cache.access c 0 ~write:true);
  Alcotest.(check int) "one dirty line" 1 (Cache.dirty_lines c);
  ignore (Cache.access c 1024 ~write:false);
  Alcotest.(check int) "writeback on eviction" 1 (Cache.Stats.writebacks c)

let test_capacity_fits () =
  (* Touch exactly [size] bytes; second pass must be all hits. *)
  let c = mk ~size:2048 () in
  for i = 0 to 31 do
    ignore (Cache.access c (i * 64) ~write:false)
  done;
  let hits_before = Cache.Stats.hits c in
  for i = 0 to 31 do
    ignore (Cache.access c (i * 64) ~write:false)
  done;
  Alcotest.(check int) "working set = capacity: all hits" 32
    (Cache.Stats.hits c - hits_before)

let test_capacity_exceeded () =
  (* Sequential sweep over 2x capacity keeps missing on every revisit. *)
  let c = mk ~size:1024 () in
  for _pass = 1 to 3 do
    for i = 0 to 31 do
      ignore (Cache.access c (i * 64) ~write:false)
    done
  done;
  Alcotest.(check int) "sequential over-capacity always misses" 96
    (Cache.Stats.misses c)

let test_resize_flushes_dirty () =
  let c = mk ~size:2048 () in
  for i = 0 to 15 do
    ignore (Cache.access c (i * 64) ~write:true)
  done;
  Alcotest.(check int) "16 dirty lines" 16 (Cache.dirty_lines c);
  let flushed = Cache.resize c ~size_bytes:1024 in
  Alcotest.(check int) "all flushed" 16 flushed;
  Alcotest.(check int) "flush counter" 16 (Cache.Stats.flush_writebacks c);
  Alcotest.(check int) "new size" 1024 (Cache.config c).Cache.size_bytes;
  Alcotest.(check bool) "cache empty after resize" true
    (Cache.access c 0 ~write:false <> Cache.Hit);
  Alcotest.(check int) "one resize recorded" 1 (Cache.Stats.resizes c)

let test_resize_noop () =
  let c = mk ~size:2048 () in
  ignore (Cache.access c 0 ~write:true);
  Alcotest.(check int) "same-size resize is free" 0 (Cache.resize c ~size_bytes:2048);
  Alcotest.(check bool) "contents preserved" true (Cache.access c 0 ~write:false = Cache.Hit)

let test_resize_up () =
  let c = mk ~size:1024 () in
  ignore (Cache.access c 0 ~write:true);
  let flushed = Cache.resize c ~size_bytes:4096 in
  Alcotest.(check int) "grow also flushes dirty" 1 flushed;
  Alcotest.(check int) "bigger now" 4096 (Cache.config c).Cache.size_bytes

let test_iter_dirty () =
  let c = mk ~size:1024 () in
  ignore (Cache.access c 0 ~write:true);
  ignore (Cache.access c 128 ~write:false);
  ignore (Cache.access c 256 ~write:true);
  let dirty = ref [] in
  Cache.iter_dirty c (fun a -> dirty := a :: !dirty);
  Alcotest.(check (list int)) "dirty addresses" [ 0; 256 ] (List.sort compare !dirty)

let test_invalidate_all () =
  let c = mk ~size:1024 () in
  ignore (Cache.access c 0 ~write:true);
  ignore (Cache.access c 64 ~write:false);
  Alcotest.(check int) "one dirty flushed" 1 (Cache.invalidate_all c);
  Alcotest.(check int) "empty" 0 (Cache.dirty_lines c);
  Alcotest.(check bool) "all lines gone" true (Cache.access c 64 ~write:false <> Cache.Hit)

let test_stats_consistency () =
  let c = mk () in
  let rng = Ace_util.Rng.create ~seed:2 in
  for _ = 1 to 5000 do
    ignore (Cache.access c (Ace_util.Rng.int rng 16384) ~write:(Ace_util.Rng.bool rng))
  done;
  Alcotest.(check int) "hits + misses = accesses" (Cache.Stats.accesses c)
    (Cache.Stats.hits c + Cache.Stats.misses c);
  Alcotest.(check bool) "miss rate in [0,1]" true
    (Cache.Stats.miss_rate c >= 0.0 && Cache.Stats.miss_rate c <= 1.0)

let test_paper_geometries () =
  (* Every configuration from Table 2 must be constructible. *)
  List.iter
    (fun size ->
      ignore (Cache.create { Cache.size_bytes = size * 1024; assoc = 2; line_bytes = 64 }))
    [ 64; 32; 16; 8 ];
  List.iter
    (fun size ->
      ignore (Cache.create { Cache.size_bytes = size * 1024; assoc = 4; line_bytes = 128 }))
    [ 1024; 512; 256; 128 ]

let prop_miss_rate_monotone_capacity =
  (* Larger caches never have more misses on the same random trace (holds
     for LRU by inclusion). *)
  QCheck.Test.make ~name:"LRU inclusion: bigger cache, fewer misses" ~count:30
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, assoc_pow) ->
      let assoc = 1 lsl (assoc_pow - 1) in
      let small = Cache.create { Cache.size_bytes = 2048; assoc; line_bytes = 64 } in
      let big = Cache.create { Cache.size_bytes = 8192; assoc = assoc * 4; line_bytes = 64 } in
      let rng = Ace_util.Rng.create ~seed in
      for _ = 1 to 3000 do
        let a = Ace_util.Rng.int rng 32768 in
        ignore (Cache.access small a ~write:false);
        ignore (Cache.access big a ~write:false)
      done;
      Cache.Stats.misses big <= Cache.Stats.misses small)

(* Executable reference model for the rewritten access path: each set is an
   MRU-ordered association list.  Deliberately naive — lists, options,
   no early-exit tricks — so a bug in the allocation-free scan in cache.ml
   cannot be mirrored here. *)
module Model = struct
  type t = {
    assoc : int;
    line_bytes : int;
    mutable sets : (int * bool) list array;  (* MRU first: (line, dirty) *)
  }

  let create ~size_bytes ~assoc ~line_bytes =
    { assoc; line_bytes; sets = Array.make (size_bytes / (assoc * line_bytes)) [] }

  let access t addr ~write =
    let line = addr / t.line_bytes in
    let set = line mod Array.length t.sets in
    let ways = t.sets.(set) in
    match List.assoc_opt line ways with
    | Some dirty ->
        t.sets.(set) <-
          (line, dirty || write) :: List.remove_assoc line ways;
        Cache.Hit
    | None ->
        let kept, evicted =
          if List.length ways >= t.assoc then
            let rec split acc = function
              | [ last ] -> (List.rev acc, Some last)
              | x :: rest -> split (x :: acc) rest
              | [] -> (List.rev acc, None)
            in
            split [] ways
          else (ways, None)
        in
        t.sets.(set) <- (line, write) :: kept;
        (match evicted with
        | Some (_, true) -> Cache.Miss_dirty_victim
        | Some (_, false) | None -> Cache.Miss)

  let dirty_lines t =
    Array.fold_left
      (fun acc ways ->
        acc + List.length (List.filter (fun (_, d) -> d) ways))
      0 t.sets

  let resize t ~size_bytes =
    let flushed = dirty_lines t in
    t.sets <- Array.make (size_bytes / (t.assoc * t.line_bytes)) [];
    flushed
end

let prop_access_matches_reference_model =
  (* Random access/resize sequences: every access result and every resize
     flush count must agree with the model.  [last_victim_addr] is the one
     observable the model can't express positionally, so it is checked on
     each dirty eviction instead. *)
  QCheck.Test.make ~name:"access/resize agree with MRU-list reference model"
    ~count:60
    QCheck.(pair small_int (int_range 0 2))
    (fun (seed, assoc_pow) ->
      let assoc = 1 lsl assoc_pow in
      let sizes = [| 1024; 2048; 4096 |] in
      let c = Cache.create { Cache.size_bytes = sizes.(0); assoc; line_bytes = 64 } in
      let m = Model.create ~size_bytes:sizes.(0) ~assoc ~line_bytes:64 in
      let rng = Ace_util.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 2000 do
        if Ace_util.Rng.int rng 100 = 0 then begin
          let size = sizes.(Ace_util.Rng.int rng (Array.length sizes)) in
          let same = size = (Cache.config c).Cache.size_bytes in
          let fc = Cache.resize c ~size_bytes:size in
          (* A same-size resize is a no-op in the cache; mirror that. *)
          let fm = if same then 0 else Model.resize m ~size_bytes:size in
          if fc <> fm then ok := false
        end
        else begin
          let addr = Ace_util.Rng.int rng 16384 in
          let write = Ace_util.Rng.bool rng in
          let rc = Cache.access c addr ~write in
          let rm = Model.access m addr ~write in
          if rc <> rm then ok := false;
          if rc = Cache.Miss_dirty_victim then
            if Cache.last_victim_addr c mod 64 <> 0 then ok := false
        end
      done;
      !ok && Cache.dirty_lines c = Model.dirty_lines m)

let test_access_allocates_nothing () =
  (* The rewritten hot path (no Exit, no refs, top-level int-arg scans) is
     held to zero minor words per access; the tolerance only absorbs the
     boxed floats of the Gc.minor_words calls themselves. *)
  let c = mk ~size:65536 () in
  let addrs = Array.init 4096 (fun _ -> 0) in
  let rng = Ace_util.Rng.create ~seed:11 in
  Array.iteri (fun i _ -> addrs.(i) <- Ace_util.Rng.int rng 1_000_000) addrs;
  let mask = Array.length addrs - 1 in
  for i = 0 to 4095 do
    ignore (Cache.access c (Array.unsafe_get addrs (i land mask)) ~write:(i land 7 = 0))
  done;
  let iters = 100_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to iters do
    ignore (Cache.access c (Array.unsafe_get addrs (i land mask)) ~write:(i land 7 = 0))
  done;
  let w1 = Gc.minor_words () in
  let delta = w1 -. w0 in
  if delta > 64.0 then
    Alcotest.failf "access allocated %.0f minor words over %d calls" delta iters

let prop_writebacks_bounded_by_writes =
  QCheck.Test.make ~name:"writebacks never exceed write count" ~count:50
    QCheck.small_int
    (fun seed ->
      let c = mk () in
      let rng = Ace_util.Rng.create ~seed in
      let writes = ref 0 in
      for _ = 1 to 2000 do
        let w = Ace_util.Rng.bool rng in
        if w then incr writes;
        ignore (Cache.access c (Ace_util.Rng.int rng 65536) ~write:w)
      done;
      Cache.Stats.writebacks c + Cache.dirty_lines c <= !writes)

let suite =
  [
    Tu.case "config validation" test_config_validation;
    Tu.case "cold miss then hit" test_cold_miss_then_hit;
    Tu.case "LRU within set" test_lru_within_set;
    Tu.case "dirty writeback" test_dirty_writeback;
    Tu.case "clean eviction" test_clean_eviction_no_writeback;
    Tu.case "write hit marks dirty" test_write_hit_marks_dirty;
    Tu.case "capacity fits" test_capacity_fits;
    Tu.case "capacity exceeded" test_capacity_exceeded;
    Tu.case "resize flushes dirty" test_resize_flushes_dirty;
    Tu.case "resize noop" test_resize_noop;
    Tu.case "resize up" test_resize_up;
    Tu.case "iter_dirty" test_iter_dirty;
    Tu.case "invalidate all" test_invalidate_all;
    Tu.case "stats consistency" test_stats_consistency;
    Tu.case "paper geometries" test_paper_geometries;
    Tu.case "access allocates nothing" test_access_allocates_nothing;
    Tu.qcheck prop_miss_rate_monotone_capacity;
    Tu.qcheck prop_access_matches_reference_model;
    Tu.qcheck prop_writebacks_bounded_by_writes;
  ]
