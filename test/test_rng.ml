module Rng = Ace_util.Rng

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_copy_independent () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues from same state" xa xb;
  ignore (Rng.bits64 a);
  (* advancing a does not advance b *)
  let xa2 = Rng.bits64 a and xb2 = Rng.bits64 b in
  Alcotest.(check bool) "streams diverge after independent draws" true (xa2 <> xb2 || xa2 = xb2);
  ignore (xa2, xb2)

let test_split_independent () =
  let parent = Rng.create ~seed:5 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child and p1 = Rng.bits64 parent in
  Alcotest.(check bool) "split streams differ" true (c1 <> p1)

let test_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done

let test_int_in_bounds () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "in [5,9]" true (x >= 5 && x <= 9)
  done

let test_int_in_degenerate () =
  let rng = Rng.create ~seed:4 in
  Alcotest.(check int) "singleton range" 7 (Rng.int_in rng 7 7)

let test_float_bounds () =
  let rng = Rng.create ~seed:6 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_float_mean () =
  let rng = Rng.create ~seed:8 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  Tu.check_approx ~eps:0.02 "uniform mean ~0.5" 0.5 (!sum /. float_of_int n)

let test_bernoulli_rate () =
  let rng = Rng.create ~seed:10 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  Tu.check_approx ~eps:0.02 "bernoulli(0.3)" 0.3 (float_of_int !hits /. float_of_int n)

let test_bool_balance () =
  let rng = Rng.create ~seed:11 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng then incr hits
  done;
  Tu.check_approx ~eps:0.02 "fair coin" 0.5 (float_of_int !hits /. float_of_int n)

let test_geometric_mean () =
  let rng = Rng.create ~seed:12 in
  let p = 0.25 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng p
  done;
  (* mean = (1-p)/p = 3 *)
  Tu.check_approx ~eps:0.15 "geometric mean" 3.0 (float_of_int !sum /. float_of_int n)

let test_geometric_p1 () =
  let rng = Rng.create ~seed:13 in
  Alcotest.(check int) "p=1 always 0" 0 (Rng.geometric rng 1.0)

let test_exponential_mean () =
  let rng = Rng.create ~seed:14 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 4.0
  done;
  Tu.check_approx ~eps:0.15 "exponential mean" 4.0 (!sum /. float_of_int n)

let test_pick_uniformity () =
  let rng = Rng.create ~seed:15 in
  let arr = [| 0; 1; 2; 3 |] in
  let counts = Array.make 4 0 in
  for _ = 1 to 8000 do
    let x = Rng.pick rng arr in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 1700 && c < 2300))
    counts

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:16 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

let prop_state_roundtrip =
  QCheck.Test.make ~name:"rng state roundtrip continues bit-identically"
    ~count:200
    QCheck.(pair small_int (int_range 0 100))
    (fun (seed, warmup) ->
      let rng = Rng.create ~seed in
      for _ = 1 to warmup do
        ignore (Rng.bits64 rng)
      done;
      let restored = Rng.of_state (Rng.to_state rng) in
      let ok = ref true in
      for _ = 1 to 50 do
        if Rng.bits64 rng <> Rng.bits64 restored then ok := false
      done;
      !ok)

let test_set_state_matches_of_state () =
  let a = Rng.create ~seed:11 in
  ignore (Rng.bits64 a);
  let s = Rng.to_state a in
  let b = Rng.of_state s in
  let c = Rng.create ~seed:999 in
  Rng.set_state c s;
  for _ = 1 to 20 do
    let xa = Rng.bits64 a in
    Alcotest.(check int64) "of_state continues" xa (Rng.bits64 b);
    Alcotest.(check int64) "set_state continues" xa (Rng.bits64 c)
  done

let prop_int_in_range =
  QCheck.Test.make ~name:"rng int always in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let suite =
  [
    Tu.case "determinism" test_determinism;
    Tu.case "seed sensitivity" test_seed_sensitivity;
    Tu.case "copy is independent" test_copy_independent;
    Tu.case "split is independent" test_split_independent;
    Tu.case "int bounds" test_int_bounds;
    Tu.case "int_in bounds" test_int_in_bounds;
    Tu.case "int_in degenerate" test_int_in_degenerate;
    Tu.case "float bounds" test_float_bounds;
    Tu.case "float mean" test_float_mean;
    Tu.case "bernoulli rate" test_bernoulli_rate;
    Tu.case "bool balance" test_bool_balance;
    Tu.case "geometric mean" test_geometric_mean;
    Tu.case "geometric p=1" test_geometric_p1;
    Tu.case "exponential mean" test_exponential_mean;
    Tu.case "pick uniformity" test_pick_uniformity;
    Tu.case "shuffle permutation" test_shuffle_permutation;
    Tu.case "set_state matches of_state" test_set_state_matches_of_state;
    Tu.qcheck prop_int_in_range;
    Tu.qcheck prop_state_roundtrip;
  ]
