(* Fault injection: neutrality of [none], determinism, per-channel behavior. *)
module Faults = Ace_faults.Faults

let preset_1pct = Faults.preset ~rate:0.01

let drive_writes t n =
  List.init n (fun i ->
      Faults.on_reg_write t ~cu:"L1D" ~now_instrs:(i * 1000) ~setting:(i mod 4)
        ~n_settings:4)

let test_none_neutral () =
  let t = Faults.none in
  Alcotest.(check bool) "is_none" true (Faults.is_none t);
  List.iter
    (fun o ->
      Alcotest.(check bool) "every write lands" true (o = Faults.Landed))
    (drive_writes t 50);
  Alcotest.(check bool) "never stuck" false
    (Faults.cu_stuck t ~cu:"L1D" ~now_instrs:1_000_000);
  Tu.check_approx "cycles untouched" 1234.5
    (Faults.perturb_cycles t ~cycles:1234.5);
  Tu.check_approx "period untouched" 50_000.0
    (Faults.jitter_period t ~period:50_000.0);
  let s = Faults.stats t in
  Alcotest.(check int) "no drops" 0 s.Faults.writes_dropped;
  Alcotest.(check int) "no spikes" 0 s.Faults.spikes

let test_zero_rate_config_neutral () =
  (* An injector built from all-zero probabilities must behave exactly like
     [none]: every roll is gated on its probability, so it not only injects
     nothing, it never even draws from its RNG. *)
  let t = Faults.create (Faults.preset ~rate:0.0) in
  Alcotest.(check bool) "not none, but inert" false (Faults.is_none t);
  List.iter
    (fun o -> Alcotest.(check bool) "lands" true (o = Faults.Landed))
    (drive_writes t 50);
  Tu.check_approx "cycles untouched" 777.0 (Faults.perturb_cycles t ~cycles:777.0);
  Tu.check_approx "period untouched" 9.0 (Faults.jitter_period t ~period:9.0);
  let s = Faults.stats t in
  Alcotest.(check int) "nothing injected" 0
    (s.Faults.writes_dropped + s.Faults.writes_corrupted + s.Faults.stuck_events
    + s.Faults.spikes + s.Faults.jittered_ticks)

let test_deterministic_from_seed () =
  let trace seed =
    let t = Faults.create ~seed preset_1pct in
    let writes = drive_writes t 200 in
    let cycles = List.init 200 (fun _ -> Faults.perturb_cycles t ~cycles:1e6) in
    (writes, cycles, Faults.stats t)
  in
  Alcotest.(check bool) "same seed, same trace" true (trace 42 = trace 42);
  let _, _, s1 = trace 42 and _, _, s2 = trace 43 in
  Alcotest.(check bool) "different seed, different outcome" true (s1 <> s2)

let test_drop_channel () =
  let t = Faults.create { Faults.no_faults with Faults.reg_write_drop_p = 1.0 } in
  List.iter
    (fun o -> Alcotest.(check bool) "dropped" true (o = Faults.Dropped))
    (drive_writes t 10);
  Alcotest.(check int) "counted" 10 (Faults.stats t).Faults.writes_dropped

let test_corrupt_channel () =
  let t =
    Faults.create { Faults.no_faults with Faults.reg_write_corrupt_p = 1.0 }
  in
  for i = 0 to 19 do
    match
      Faults.on_reg_write t ~cu:"L1D" ~now_instrs:i ~setting:2 ~n_settings:4
    with
    | Faults.Corrupted wrong ->
        Alcotest.(check bool) "lands elsewhere" true (wrong <> 2);
        Alcotest.(check bool) "in range" true (wrong >= 0 && wrong < 4)
    | Faults.Landed | Faults.Dropped -> Alcotest.fail "expected Corrupted"
  done;
  Alcotest.(check int) "counted" 20 (Faults.stats t).Faults.writes_corrupted;
  (* A single-setting CU has nowhere wrong to land: the write goes through. *)
  let t1 =
    Faults.create { Faults.no_faults with Faults.reg_write_corrupt_p = 1.0 }
  in
  Alcotest.(check bool) "1-setting CU cannot corrupt" true
    (Faults.on_reg_write t1 ~cu:"IQ" ~now_instrs:0 ~setting:0 ~n_settings:1
    = Faults.Landed)

let test_stuck_transient () =
  let t =
    Faults.create
      {
        Faults.no_faults with
        Faults.stuck_transient_p = 1.0;
        stuck_transient_instrs = 10_000;
      }
  in
  (* The first write lands but latches the CU for 10 K instructions. *)
  Alcotest.(check bool) "first write lands" true
    (Faults.on_reg_write t ~cu:"L1D" ~now_instrs:0 ~setting:1 ~n_settings:4
    = Faults.Landed);
  Alcotest.(check bool) "latched" true
    (Faults.cu_stuck t ~cu:"L1D" ~now_instrs:5_000);
  Alcotest.(check bool) "writes swallowed while stuck" true
    (Faults.on_reg_write t ~cu:"L1D" ~now_instrs:5_000 ~setting:2 ~n_settings:4
    = Faults.Dropped);
  Alcotest.(check bool) "other CUs unaffected" false
    (Faults.cu_stuck t ~cu:"L2" ~now_instrs:5_000);
  Alcotest.(check bool) "clears after the window" false
    (Faults.cu_stuck t ~cu:"L1D" ~now_instrs:10_000);
  Alcotest.(check bool) "writes land again (and re-latch)" true
    (Faults.on_reg_write t ~cu:"L1D" ~now_instrs:20_000 ~setting:2 ~n_settings:4
    = Faults.Landed);
  Alcotest.(check int) "latch events counted" 2 (Faults.stats t).Faults.stuck_events

let test_stuck_permanent () =
  let t =
    Faults.create { Faults.no_faults with Faults.stuck_permanent_p = 1.0 }
  in
  ignore (Faults.on_reg_write t ~cu:"L1D" ~now_instrs:0 ~setting:1 ~n_settings:4);
  Alcotest.(check bool) "stuck forever" true
    (Faults.cu_stuck t ~cu:"L1D" ~now_instrs:max_int)

let test_spike_channel () =
  let t =
    Faults.create
      {
        Faults.no_faults with
        Faults.profile_spike_p = 1.0;
        profile_spike_mag = 1.5;
      }
  in
  Tu.check_approx "spike multiplies by 1+mag" 2500.0
    (Faults.perturb_cycles t ~cycles:1000.0);
  Alcotest.(check int) "counted" 1 (Faults.stats t).Faults.spikes

let test_noise_bounds () =
  let cov = 0.05 in
  let t = Faults.create { Faults.no_faults with Faults.profile_noise_cov = cov } in
  let bound = cov *. sqrt 3.0 +. 1e-9 in
  for _ = 1 to 500 do
    let p = Faults.perturb_cycles t ~cycles:1000.0 in
    Alcotest.(check bool) "within uniform bounds" true
      (Float.abs ((p /. 1000.0) -. 1.0) <= bound)
  done

let test_jitter_bounds () =
  let frac = 0.2 in
  let t =
    Faults.create { Faults.no_faults with Faults.sampler_jitter_frac = frac }
  in
  for _ = 1 to 200 do
    let p = Faults.jitter_period t ~period:50_000.0 in
    Alcotest.(check bool) "within jitter bounds" true
      (Float.abs ((p /. 50_000.0) -. 1.0) <= frac +. 1e-9)
  done;
  Alcotest.(check int) "counted" 200 (Faults.stats t).Faults.jittered_ticks

let test_preset_scales_with_rate () =
  let low = Faults.preset ~rate:0.001 and high = Faults.preset ~rate:0.05 in
  Alcotest.(check bool) "drop scales" true
    (low.Faults.reg_write_drop_p < high.Faults.reg_write_drop_p);
  Alcotest.(check bool) "noise scales" true
    (low.Faults.profile_noise_cov < high.Faults.profile_noise_cov);
  Alcotest.(check bool) "permanent latch-up much rarer than transient" true
    (high.Faults.stuck_permanent_p < high.Faults.stuck_transient_p /. 2.0)

let test_preset_rejects_out_of_range () =
  let rejects rate =
    match Faults.preset ~rate with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "preset accepted rate %g" rate
  in
  rejects (-0.01);
  rejects 1.5;
  rejects Float.nan;
  rejects Float.infinity;
  (* Boundary values are legal. *)
  ignore (Faults.preset ~rate:0.0);
  ignore (Faults.preset ~rate:1.0)

let test_corrupt_snapshot_channel () =
  let t =
    Faults.create { Faults.no_faults with Faults.ckpt_corrupt_p = 1.0 }
  in
  let buf = Bytes.make 64 'x' in
  Alcotest.(check bool) "corrupts" true (Faults.maybe_corrupt_snapshot t buf);
  Alcotest.(check bool) "buffer changed" false (Bytes.for_all (( = ) 'x') buf);
  Alcotest.(check int) "counted" 1 (Faults.stats t).Faults.snapshots_corrupted;
  Alcotest.(check bool) "none is inert" false
    (Faults.maybe_corrupt_snapshot Faults.none (Bytes.make 8 'y'))

let test_corrupt_snapshot_stream_isolated () =
  (* Snapshot writes must not perturb the engine-visible fault schedule:
     two injectors, one of which also corrupts snapshots, must agree on
     every register-write outcome. *)
  let cfg rate = { (Faults.preset ~rate:0.2) with Faults.ckpt_corrupt_p = rate } in
  let a = Faults.create ~seed:5 (cfg 0.0) in
  let b = Faults.create ~seed:5 (cfg 1.0) in
  for i = 1 to 200 do
    ignore (Faults.maybe_corrupt_snapshot b (Bytes.make 32 'z'));
    let oa = Faults.on_reg_write a ~cu:"l1d" ~now_instrs:(i * 1000) ~setting:1 ~n_settings:4 in
    let ob = Faults.on_reg_write b ~cu:"l1d" ~now_instrs:(i * 1000) ~setting:1 ~n_settings:4 in
    if oa <> ob then Alcotest.failf "write outcomes diverged at %d" i
  done

let test_capture_restore_roundtrip () =
  let t = Faults.create ~seed:9 (Faults.preset ~rate:0.3) in
  for i = 1 to 100 do
    ignore (Faults.on_reg_write t ~cu:"l1d" ~now_instrs:(i * 500) ~setting:0 ~n_settings:4);
    ignore (Faults.perturb_cycles t ~cycles:1000.0)
  done;
  let state = Faults.capture t in
  (* Drain both copies forward and compare the schedules. *)
  let t2 = Faults.create ~seed:9 (Faults.preset ~rate:0.3) in
  Faults.restore t2 state;
  Alcotest.(check bool) "stats restored" true (Faults.stats t = Faults.stats t2);
  for i = 101 to 200 do
    let a = Faults.on_reg_write t ~cu:"l2" ~now_instrs:(i * 500) ~setting:2 ~n_settings:4 in
    let b = Faults.on_reg_write t2 ~cu:"l2" ~now_instrs:(i * 500) ~setting:2 ~n_settings:4 in
    if a <> b then Alcotest.failf "restored schedule diverged at %d" i;
    if
      Faults.perturb_cycles t ~cycles:2000.0
      <> Faults.perturb_cycles t2 ~cycles:2000.0
    then Alcotest.failf "restored noise diverged at %d" i
  done;
  Alcotest.(check bool) "none captures as None" true
    (Faults.capture Faults.none = None);
  (match Faults.restore t2 None with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "restore accepted noneness mismatch")

let suite =
  [
    Tu.case "none is neutral" test_none_neutral;
    Tu.case "zero-rate config is inert" test_zero_rate_config_neutral;
    Tu.case "deterministic from seed" test_deterministic_from_seed;
    Tu.case "drop channel" test_drop_channel;
    Tu.case "corrupt channel" test_corrupt_channel;
    Tu.case "stuck transient latch" test_stuck_transient;
    Tu.case "stuck permanent latch" test_stuck_permanent;
    Tu.case "spike channel" test_spike_channel;
    Tu.case "noise bounds" test_noise_bounds;
    Tu.case "jitter bounds" test_jitter_bounds;
    Tu.case "preset scales with rate" test_preset_scales_with_rate;
    Tu.case "preset rejects out-of-range rates" test_preset_rejects_out_of_range;
    Tu.case "snapshot corruption channel" test_corrupt_snapshot_channel;
    Tu.case "snapshot corruption stream isolated"
      test_corrupt_snapshot_stream_isolated;
    Tu.case "capture/restore roundtrip" test_capture_restore_roundtrip;
  ]
