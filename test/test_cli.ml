(* Integration tests that spawn the real ace_sim binary (a dune dep of this
   test), checking exit codes and output end to end. *)

let exe = "../bin/ace_sim.exe"

let sh cmd =
  let out = Filename.temp_file "ace_cli" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd out) in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_faults_range_rejected () =
  List.iter
    (fun rate ->
      let code, out = sh (Printf.sprintf "%s run compress --faults=%s" exe rate) in
      Alcotest.(check bool) ("nonzero exit for " ^ rate) true (code <> 0);
      Alcotest.(check bool) ("clear message for " ^ rate) true
        (contains out "outside [0, 1]"))
    [ "1.5"; "-0.2"; "nan" ]

let test_faults_in_range_accepted () =
  let code, out = sh (exe ^ " run compress --scale 0.1 --faults 0.01") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "prints fault stats" true (contains out "faults")

let test_checkpoint_kill_resume () =
  let p_full = Filename.temp_file "ace_cli_full" ".snap" in
  let p_kill = Filename.temp_file "ace_cli_kill" ".snap" in
  let base = " run compress -s hotspot --scale 0.2 --checkpoint-every 2000000" in
  let code_full, out_full = sh (exe ^ base ^ " --checkpoint " ^ p_full) in
  Alcotest.(check int) "uninterrupted exits 0" 0 code_full;
  let code_kill, out_kill =
    sh (exe ^ base ^ " --checkpoint " ^ p_kill ^ " --kill-after 5000000")
  in
  Alcotest.(check int) "killed run exits 3" 3 code_kill;
  Alcotest.(check bool) "reports kill point" true (contains out_kill "killed at");
  Alcotest.(check bool) "snapshot left behind" true (Sys.file_exists p_kill);
  let code_res, out_res = sh (exe ^ " run --resume " ^ p_kill) in
  Alcotest.(check int) "resume exits 0" 0 code_res;
  Alcotest.(check string) "resumed summary is bit-identical" out_full out_res;
  List.iter
    (fun p -> List.iter (fun s -> if Sys.file_exists (p ^ s) then Sys.remove (p ^ s)) [ ""; ".1" ])
    [ p_full; p_kill ]

let test_nonpositive_args_rejected () =
  (* Negative values must use the --flag=value form or the shell-level
     parser would read them as options. *)
  List.iter
    (fun flag ->
      let code, out = sh (Printf.sprintf "%s run compress %s" exe flag) in
      Alcotest.(check bool) ("nonzero exit for " ^ flag) true (code <> 0);
      Alcotest.(check bool) ("clear message for " ^ flag) true
        (contains out "positive"))
    [
      "--checkpoint-every=0";
      "--checkpoint-every=-5";
      "--checkpoint-every=nope";
      "--kill-after=0";
      "--kill-after=-1";
    ]

let test_jobs_rejected () =
  (* Same style as --checkpoint-every: non-positive or junk values must die
     at parse time with a clear message, not fall through to a hung pool. *)
  List.iter
    (fun flag ->
      let code, out = sh (Printf.sprintf "%s exp fig4 %s" exe flag) in
      Alcotest.(check bool) ("nonzero exit for " ^ flag) true (code <> 0);
      Alcotest.(check bool) ("clear message for " ^ flag) true
        (contains out "positive"))
    [ "--jobs=0"; "--jobs=-2"; "--jobs=many"; "-j 0" ]

let test_jobs_output_identical () =
  (* End-to-end CLI determinism: the same experiment through the real
     binary at -j1 and -j4 must emit byte-identical bytes. *)
  let base = " exp fig4 --scale 0.05 --seed 7" in
  let code1, out1 = sh (exe ^ base ^ " --jobs 1") in
  let code4, out4 = sh (exe ^ base ^ " --jobs 4") in
  Alcotest.(check int) "sequential exits 0" 0 code1;
  Alcotest.(check int) "parallel exits 0" 0 code4;
  Alcotest.(check bool) "prints the table" true (contains out1 "== fig4 ==");
  Alcotest.(check string) "-j4 output byte-identical to -j1" out1 out4

let test_exp_paper_alias () =
  (* "paper" must parse and behave as an alias of "all"; scale keeps it
     cheap and the output must contain the first and last paper tables. *)
  let code, out = sh (exe ^ " exp paper --scale 0.02 --jobs 2") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "starts with table1" true (contains out "== table1 ==");
  Alcotest.(check bool) "includes stability" true (contains out "== stability ==")

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_trace_and_metrics_written () =
  let trace = Filename.temp_file "ace_cli_trace" ".json" in
  let metrics = Filename.temp_file "ace_cli_metrics" ".csv" in
  let code, _ =
    sh
      (Printf.sprintf
         "%s run compress -s hotspot --scale 0.1 --trace %s --metrics %s \
          --obs-level full"
         exe trace metrics)
  in
  Alcotest.(check int) "exit 0" 0 code;
  let t = read_file trace and m = read_file metrics in
  Alcotest.(check bool) "trace has the event array" true
    (contains t "\"traceEvents\":[");
  Alcotest.(check bool) "trace has phase spans" true (contains t "\"ph\":\"X\"");
  Alcotest.(check bool) "metrics header" true
    (contains m "metric,type,value\n");
  Alcotest.(check bool) "metrics carry engine counters" true
    (contains m "engine.method_entries,counter,");
  List.iter Sys.remove [ trace; metrics ]

(* CLI-level counterpart of the API-level identity test in test_obs.ml:
   the metrics file of a killed-then-resumed run must be byte-identical to
   the uninterrupted run's.  The killed run must itself pass --metrics so
   its snapshots embed the observability state. *)
let test_resume_metrics_identity () =
  let p_full = Filename.temp_file "ace_cli_ofull" ".snap" in
  let p_kill = Filename.temp_file "ace_cli_okill" ".snap" in
  let m_full = Filename.temp_file "ace_cli_mfull" ".csv" in
  let m_kill = Filename.temp_file "ace_cli_mkill" ".csv" in
  let m_res = Filename.temp_file "ace_cli_mres" ".csv" in
  let base = " run compress -s hotspot --scale 0.2 --checkpoint-every 2000000" in
  let code_full, _ =
    sh (exe ^ base ^ " --checkpoint " ^ p_full ^ " --metrics " ^ m_full)
  in
  Alcotest.(check int) "uninterrupted exits 0" 0 code_full;
  let code_kill, _ =
    sh
      (exe ^ base ^ " --checkpoint " ^ p_kill ^ " --metrics " ^ m_kill
     ^ " --kill-after 5000000")
  in
  Alcotest.(check int) "killed run exits 3" 3 code_kill;
  let code_res, _ =
    sh (exe ^ " run --resume " ^ p_kill ^ " --metrics " ^ m_res)
  in
  Alcotest.(check int) "resume exits 0" 0 code_res;
  Alcotest.(check string) "metrics byte-identical after resume"
    (read_file m_full) (read_file m_res);
  List.iter
    (fun p ->
      List.iter
        (fun s -> if Sys.file_exists (p ^ s) then Sys.remove (p ^ s))
        [ ""; ".1" ])
    [ p_full; p_kill; m_full; m_kill; m_res ]

let test_report_subcommand () =
  let code, out = sh (exe ^ " report compress --scale 0.1") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "prints the report" true
    (contains out "ACE observability report")

let test_resume_missing_snapshot () =
  let code, out = sh (exe ^ " run --resume /nonexistent/ace.snap") in
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "says no usable snapshot" true
    (contains out "no usable snapshot")

let test_run_requires_benchmark_or_resume () =
  let code, out = sh (exe ^ " run") in
  Alcotest.(check int) "usage error" 2 code;
  Alcotest.(check bool) "explains" true (contains out "--resume")

let test_sample_flag_combinations_rejected () =
  List.iter
    (fun (args, needle) ->
      let code, out = sh (Printf.sprintf "%s %s" exe args) in
      Alcotest.(check bool) ("nonzero exit for " ^ args) true (code <> 0);
      Alcotest.(check bool) ("clear message for " ^ args) true
        (contains out needle))
    [
      ("run compress --sample-repeats 5", "--sample");
      ("run compress --sample --faults 0.01", "--resilient");
      ("run --resume /tmp/nope.snap --sample", "metadata");
      ("run compress --sample --sample-repeats=0", "positive");
      ("exp sample-accuracy --sample", "sample-accuracy");
      ("exp torture --sample", "torture");
      (* Validation fires before any daemon connection is attempted. *)
      ( "submit --socket /tmp/ace_cli_no.sock compress --sample --faults 0.01",
        "--resilient" );
    ]

let test_sample_run_summary () =
  let code, out = sh (exe ^ " run compress -s hotspot --scale 0.2 --sample") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "summary reports sampling" true
    (contains out "sampling")

let test_sample_kill_resume () =
  (* Kill a sampled checkpointed run mid-flight and resume it: the resumed
     summary must be byte-identical to the uninterrupted sampled run's (the
     snapshot carries the phase cache, so post-resume splice decisions
     replay exactly). *)
  let p_full = Filename.temp_file "ace_cli_sfull" ".snap" in
  let p_kill = Filename.temp_file "ace_cli_skill" ".snap" in
  let base =
    " run compress -s hotspot --scale 0.2 --sample --checkpoint-every 2000000"
  in
  let code_full, out_full = sh (exe ^ base ^ " --checkpoint " ^ p_full) in
  Alcotest.(check int) "uninterrupted exits 0" 0 code_full;
  let code_kill, _ =
    sh (exe ^ base ^ " --checkpoint " ^ p_kill ^ " --kill-after 5000000")
  in
  Alcotest.(check int) "killed run exits 3" 3 code_kill;
  let code_res, out_res = sh (exe ^ " run --resume " ^ p_kill) in
  Alcotest.(check int) "resume exits 0" 0 code_res;
  Alcotest.(check bool) "resumed summary reports sampling" true
    (contains out_res "sampling");
  Alcotest.(check string) "resumed sampled summary is bit-identical" out_full
    out_res;
  List.iter
    (fun p ->
      List.iter
        (fun s -> if Sys.file_exists (p ^ s) then Sys.remove (p ^ s))
        [ ""; ".1" ])
    [ p_full; p_kill ]

let suite =
  [
    Tu.case "--faults rejects out-of-range rates" test_faults_range_rejected;
    Tu.slow_case "--faults accepts in-range rate" test_faults_in_range_accepted;
    Tu.slow_case "checkpoint/kill/resume smoke" test_checkpoint_kill_resume;
    Tu.case "non-positive cadence/kill point rejected" test_nonpositive_args_rejected;
    Tu.case "--jobs rejects non-positive values" test_jobs_rejected;
    Tu.slow_case "exp --jobs output byte-identical" test_jobs_output_identical;
    Tu.slow_case "exp paper alias" test_exp_paper_alias;
    Tu.slow_case "--trace/--metrics write exports" test_trace_and_metrics_written;
    Tu.slow_case "resumed metrics file is byte-identical" test_resume_metrics_identity;
    Tu.slow_case "report subcommand" test_report_subcommand;
    Tu.case "--resume with missing snapshot" test_resume_missing_snapshot;
    Tu.case "run requires benchmark or --resume" test_run_requires_benchmark_or_resume;
    Tu.case "--sample flag combinations rejected"
      test_sample_flag_combinations_rejected;
    Tu.slow_case "--sample run prints sampling summary" test_sample_run_summary;
    Tu.slow_case "--sample checkpoint/kill/resume smoke" test_sample_kill_resume;
  ]
