(* Integration tests that spawn the real ace_sim binary (a dune dep of this
   test), checking exit codes and output end to end. *)

let exe = "../bin/ace_sim.exe"

let sh cmd =
  let out = Filename.temp_file "ace_cli" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd out) in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_faults_range_rejected () =
  List.iter
    (fun rate ->
      let code, out = sh (Printf.sprintf "%s run compress --faults=%s" exe rate) in
      Alcotest.(check bool) ("nonzero exit for " ^ rate) true (code <> 0);
      Alcotest.(check bool) ("clear message for " ^ rate) true
        (contains out "outside [0, 1]"))
    [ "1.5"; "-0.2"; "nan" ]

let test_faults_in_range_accepted () =
  let code, out = sh (exe ^ " run compress --scale 0.1 --faults 0.01") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "prints fault stats" true (contains out "faults")

let test_checkpoint_kill_resume () =
  let p_full = Filename.temp_file "ace_cli_full" ".snap" in
  let p_kill = Filename.temp_file "ace_cli_kill" ".snap" in
  let base = " run compress -s hotspot --scale 0.2 --checkpoint-every 2000000" in
  let code_full, out_full = sh (exe ^ base ^ " --checkpoint " ^ p_full) in
  Alcotest.(check int) "uninterrupted exits 0" 0 code_full;
  let code_kill, out_kill =
    sh (exe ^ base ^ " --checkpoint " ^ p_kill ^ " --kill-after 5000000")
  in
  Alcotest.(check int) "killed run exits 3" 3 code_kill;
  Alcotest.(check bool) "reports kill point" true (contains out_kill "killed at");
  Alcotest.(check bool) "snapshot left behind" true (Sys.file_exists p_kill);
  let code_res, out_res = sh (exe ^ " run --resume " ^ p_kill) in
  Alcotest.(check int) "resume exits 0" 0 code_res;
  Alcotest.(check string) "resumed summary is bit-identical" out_full out_res;
  List.iter
    (fun p -> List.iter (fun s -> if Sys.file_exists (p ^ s) then Sys.remove (p ^ s)) [ ""; ".1" ])
    [ p_full; p_kill ]

let test_resume_missing_snapshot () =
  let code, out = sh (exe ^ " run --resume /nonexistent/ace.snap") in
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "says no usable snapshot" true
    (contains out "no usable snapshot")

let test_run_requires_benchmark_or_resume () =
  let code, out = sh (exe ^ " run") in
  Alcotest.(check int) "usage error" 2 code;
  Alcotest.(check bool) "explains" true (contains out "--resume")

let suite =
  [
    Tu.case "--faults rejects out-of-range rates" test_faults_range_rejected;
    Tu.slow_case "--faults accepts in-range rate" test_faults_in_range_accepted;
    Tu.slow_case "checkpoint/kill/resume smoke" test_checkpoint_kill_resume;
    Tu.case "--resume with missing snapshot" test_resume_missing_snapshot;
    Tu.case "run requires benchmark or --resume" test_run_requires_benchmark_or_resume;
  ]
