(* Phase-memoized fast-forward sampling (ace_sample): detector config, the
   O(1) skip primitives fast-forward relies on, architectural exactness of
   sampled runs vs full simulation, and sampler snapshot round-trips. *)
module Sample = Ace_sample.Sample
module Engine = Ace_vm.Engine
module Db = Ace_vm.Do_database
module Run = Ace_harness.Run
module Scheme = Ace_harness.Scheme
module Snapshot = Ace_ckpt.Snapshot
module Rng = Ace_util.Rng
module Pattern = Ace_isa.Pattern
module Synthetic = Ace_workloads.Synthetic

let test_config_validation () =
  let ok c = Sample.validate_config c = Ok () in
  Alcotest.(check bool) "default valid" true (ok Sample.default_config);
  List.iter
    (fun (what, c) -> Alcotest.(check bool) (what ^ " rejected") false (ok c))
    [
      ("negative warmup", { Sample.default_config with warmup = -1 });
      ("zero repeats", { Sample.default_config with repeats = 0 });
      ("negative bound", { Sample.default_config with cov_bound = -0.01 });
      ("nan bound", { Sample.default_config with cov_bound = Float.nan });
    ]

(* -- skip primitives ----------------------------------------------- *)

let test_rng_skip_equiv () =
  List.iter
    (fun n ->
      let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
      for _ = 1 to n do
        ignore (Rng.bits64 a)
      done;
      Rng.skip b n;
      Alcotest.(check int64)
        (Printf.sprintf "stream equal after %d draws" n)
        (Rng.bits64 a) (Rng.bits64 b))
    [ 0; 1; 7; 1000; 123_456 ]

let test_pattern_skip_equiv () =
  List.iter
    (fun p ->
      List.iter
        (fun n ->
          let ca = Pattern.cursor p and cb = Pattern.cursor p in
          let ra = Rng.create ~seed:9 and rb = Rng.create ~seed:9 in
          for _ = 1 to n do
            ignore (Pattern.next ca ~rng:ra)
          done;
          Pattern.skip cb ~rng:rb n;
          Alcotest.(check int)
            (Printf.sprintf "address after %d steps" n)
            (Pattern.next ca ~rng:ra) (Pattern.next cb ~rng:rb))
        [ 0; 1; 13; 997 ])
    [
      Pattern.Sequential { base = 0; extent = 8192; stride = 64 };
      Pattern.Random_in { base = 4096; extent = 32768 };
      Pattern.Pointer_chase { base = 0; extent = 16384 };
    ]

(* -- architectural exactness --------------------------------------- *)

let small ?(n_phases = 2) ?(phase_repeats = 30) ?(seed = 5) () =
  Synthetic.build
    {
      Synthetic.default with
      n_phases;
      phase_repeats;
      l1_methods_per_phase = 2;
      l1_target_size = 20_000;
      leaves_per_phase = 4;
      leaf_instrs = 600;
      working_set_kb = 16;
    }
    ~seed

let run_full program =
  let e = Engine.create program in
  Engine.run e;
  e

let run_sampled ?(config = Sample.default_config) program =
  let e = Engine.create program in
  let sam = Sample.attach ~config ~allow:(fun ~meth_id:_ -> Sample.Allow) e in
  Engine.run e;
  (e, sam)

(* Every DO-database field the fast-forward path must advance exactly;
   [samples] (cycle-timer driven) and [ipc_profile] are the documented
   approximations and stay out. *)
let db_arch_fingerprint e =
  let acc = ref [] in
  Db.iter (Engine.db e) (fun en ->
      acc :=
        ( en.Db.meth_id,
          en.Db.invocations,
          en.Db.compile_state,
          en.Db.is_hotspot,
          en.Db.promoted_at_instr,
          en.Db.pre_promotion_instrs )
        :: !acc);
  List.rev !acc

let arch_equal full sampled =
  let fs = Engine.capture full and ss = Engine.capture sampled in
  fs.Engine.s_instrs = ss.Engine.s_instrs
  && fs.Engine.s_overhead_instrs = ss.Engine.s_overhead_instrs
  && fs.Engine.s_rng = ss.Engine.s_rng
  && fs.Engine.s_cursors = ss.Engine.s_cursors
  && db_arch_fingerprint full = db_arch_fingerprint sampled

let test_sampled_arch_exact () =
  let p = small () in
  let full = run_full p in
  let sampled, sam = run_sampled p in
  let st = Sample.stats sam in
  Alcotest.(check bool)
    "fast-forward engaged" true
    (st.Sample.splices > 0 && st.Sample.spliced_instrs > 0);
  Alcotest.(check bool) "known phases cached" true (st.Sample.known_phases > 0);
  Alcotest.(check bool) "architectural state identical" true
    (arch_equal full sampled)

let test_sampled_timing_close () =
  let p = small ~phase_repeats:60 () in
  let full = run_full p in
  let sampled, _ = run_sampled p in
  let rel =
    Float.abs (Engine.cycles sampled -. Engine.cycles full)
    /. Engine.cycles full
  in
  Alcotest.(check bool)
    (Printf.sprintf "cycle delta %.4f within 2%%" rel)
    true (rel < 0.02)

let prop_sampled_arch_exact =
  QCheck.Test.make ~count:8
    ~name:"sampled arch state = full arch state (synthetic workloads)"
    QCheck.(triple (int_range 1 3) (int_range 20 50) (int_range 1 1000))
    (fun (n_phases, phase_repeats, seed) ->
      let p = small ~n_phases ~phase_repeats ~seed () in
      let full = run_full p in
      let sampled, _ = run_sampled p in
      arch_equal full sampled)

(* -- blocked-candidate breakdown ------------------------------------ *)

let test_blocked_counters_hotspot_scheme () =
  (* Setup methods strand their tuners mid-campaign; the scoped guard
     still splices everything else, and the rejected candidates show up in
     the blocked breakdown instead of silently vanishing. *)
  let wl =
    Synthetic.workload
      {
        Synthetic.default with
        n_phases = 2;
        phase_repeats = 30;
        l1_methods_per_phase = 2;
        l1_target_size = 20_000;
        leaves_per_phase = 4;
        leaf_instrs = 600;
        working_set_kb = 16;
        setup_calls = 3;
      }
  in
  let r = Run.run ~seed:5 ~sample:Sample.default_config wl Scheme.Hotspot in
  let s = Option.get r.Run.sample in
  Alcotest.(check bool) "splices engaged" true (s.Sample.splices > 0);
  Alcotest.(check bool) "unsettled rejections counted" true
    (s.Sample.blocked_unsettled > 0);
  Alcotest.(check bool) "quiescence rejections counted" true
    (s.Sample.blocked_quiescence > 0)

(* -- cluster-keyed memoization -------------------------------------- *)

let run_sampled_clustered ?(config = Sample.default_config) ~classify program =
  let e = Engine.create program in
  let sam =
    Sample.attach ~config ~classify
      ~allow:(fun ~meth_id:_ -> Sample.Allow)
      e
  in
  Engine.run e;
  (e, sam)

let test_cluster_keyed_arch_exact () =
  let p = small () in
  let full = run_full p in
  (* A drifting classifier exercises both cluster-shared records and the
     reassignment-invalidation path; architectural state must stay exact
     no matter what the classifier returns. *)
  let calls = ref 0 in
  let classify () =
    incr calls;
    Some (!calls / 400 mod 3)
  in
  let sampled, sam = run_sampled_clustered ~classify p in
  Alcotest.(check bool) "architectural state identical" true
    (arch_equal full sampled);
  let st = Sample.stats sam in
  Alcotest.(check bool) "observations happened" true
    (st.Sample.observations > 0)

let test_cluster_reassignment_invalidates () =
  let p = small () in
  (* Monotone cluster ids: once the classifier moves on, any record of an
     earlier cluster must be dropped at the next reassignment detection,
     so at run end only the last clusters can remain. *)
  let calls = ref 0 in
  let classify () =
    incr calls;
    Some (!calls / 2000)
  in
  let _, sam = run_sampled_clustered ~classify p in
  let final = !calls / 2000 in
  let st = Sample.capture sam in
  Array.iter
    (fun pe ->
      match pe.Sample.pe_key with
      | Sample.K_cluster c ->
          if c < final - 1 then
            Alcotest.failf "stale cluster %d survived (final %d)" c final
      | Sample.K_meth _ -> ())
    st.Sample.s_entries

let test_bbv_cluster_sampled_consistent () =
  (* End to end through the harness: the BBV scheme wires its phase
     tracker in as the sampler's classifier.  The sampled run must agree
     architecturally with the unsampled one. *)
  let wl =
    Synthetic.workload
      {
        Synthetic.default with
        n_phases = 2;
        phase_repeats = 40;
        l1_methods_per_phase = 2;
        l1_target_size = 20_000;
        leaves_per_phase = 4;
        leaf_instrs = 600;
        working_set_kb = 16;
      }
  in
  let full = Run.run ~seed:2 wl Scheme.Bbv in
  let sampled = Run.run ~seed:2 ~sample:Sample.default_config wl Scheme.Bbv in
  Alcotest.(check int) "instruction count exact" full.Run.instrs
    sampled.Run.instrs;
  let rel =
    Float.abs (sampled.Run.cycles -. full.Run.cycles) /. full.Run.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "cycle delta %.4f within 5%%" rel)
    true (rel < 0.05);
  Alcotest.(check bool) "sample stats present" true
    (sampled.Run.sample <> None)

(* -- capture / restore and snapshot round-trip ---------------------- *)

let test_capture_restore_roundtrip () =
  let p = small () in
  let _, sam = run_sampled p in
  let st = Sample.capture sam in
  Alcotest.(check bool) "cache non-empty" true
    (Array.length st.Sample.s_entries > 0);
  let fresh =
    Sample.attach ~config:Sample.default_config
      ~allow:(fun ~meth_id:_ -> Sample.Allow)
      (Engine.create p)
  in
  Sample.restore fresh st;
  Alcotest.(check bool) "capture (restore s) = s" true (Sample.capture fresh = st)

let test_cluster_capture_restore_roundtrip () =
  let p = small () in
  let calls = ref 0 in
  let classify () =
    incr calls;
    Some (!calls / 500)
  in
  let _, sam = run_sampled_clustered ~classify p in
  let st = Sample.capture sam in
  Alcotest.(check bool) "cluster state captured" true
    (Array.length st.Sample.s_meth_instrs > 0
    && Array.length st.Sample.s_cluster_of_meth > 0);
  let fresh =
    Sample.attach ~config:Sample.default_config
      ~allow:(fun ~meth_id:_ -> Sample.Allow)
      (Engine.create p)
  in
  Sample.restore fresh st;
  Alcotest.(check bool) "capture (restore s) = s" true (Sample.capture fresh = st)

let test_sampled_snapshot_roundtrip () =
  let path = Filename.temp_file "ace_sample" ".snap" in
  let snaps = ref [] in
  (match
     Run.run_checkpointed ~scale:0.2 ~seed:3 ~sample:Sample.default_config
       ~on_snapshot:(fun s -> snaps := s :: !snaps)
       ~checkpoint_every:2_000_000 ~path
       (Option.get (Ace_workloads.Specjvm.find "compress"))
       Scheme.Hotspot
   with
  | Run.Completed _ -> ()
  | Run.Killed_at _ -> assert false);
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".1" ];
  Alcotest.(check bool) "run produced checkpoints" true (!snaps <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "meta records the sampling config" true
        (s.Snapshot.meta.Snapshot.sample <> None);
      if Stdlib.compare (Snapshot.decode (Snapshot.encode s)) s <> 0 then
        Alcotest.fail "decode (encode s) <> s for a sampled snapshot")
    !snaps;
  Alcotest.(check bool) "a checkpoint carries a populated phase cache" true
    (List.exists
       (fun s ->
         match s.Snapshot.sample_state with
         | Some st -> Array.length st.Sample.s_entries > 0
         | None -> false)
       !snaps)

let suite =
  [
    Tu.case "config validation" test_config_validation;
    Tu.case "Rng.skip = n draws" test_rng_skip_equiv;
    Tu.case "Pattern.skip = n nexts" test_pattern_skip_equiv;
    Tu.case "sampled run: arch state exact" test_sampled_arch_exact;
    Tu.case "sampled run: cycles within bound" test_sampled_timing_close;
    QCheck_alcotest.to_alcotest prop_sampled_arch_exact;
    Tu.case "blocked-candidate breakdown" test_blocked_counters_hotspot_scheme;
    Tu.case "cluster-keyed run: arch state exact" test_cluster_keyed_arch_exact;
    Tu.case "cluster reassignment invalidates records"
      test_cluster_reassignment_invalidates;
    Tu.case "BBV cluster-keyed run consistent" test_bbv_cluster_sampled_consistent;
    Tu.case "sampler capture/restore round-trip" test_capture_restore_roundtrip;
    Tu.case "cluster sampler capture/restore round-trip"
      test_cluster_capture_restore_roundtrip;
    Tu.slow_case "sampled snapshot codec round-trip"
      test_sampled_snapshot_roundtrip;
  ]
