let () =
  Alcotest.run "ace-reproduction"
    [
      ("rng", Test_rng.suite);
      ("pool", Test_pool.suite);
      ("stats", Test_stats.suite);
      ("table", Test_table.suite);
      ("pattern", Test_pattern.suite);
      ("program", Test_program.suite);
      ("builder", Test_builder.suite);
      ("cache", Test_cache.suite);
      ("mem", Test_mem.suite);
      ("cpu+power", Test_cpu_power.suite);
      ("vm", Test_vm.suite);
      ("faults", Test_faults.suite);
      ("core", Test_core_lib.suite);
      ("framework", Test_framework.suite);
      ("predictor", Test_predictor.suite);
      ("bbv", Test_bbv.suite);
      ("next-phase", Test_next_phase.suite);
      ("workloads", Test_workloads.suite);
      ("harness", Test_harness.suite);
      ("parallel", Test_parallel.suite);
      ("run-variants", Test_run_variants.suite);
      ("invariants", Test_invariants.suite);
      ("ckpt", Test_ckpt.suite);
      ("sample", Test_sample.suite);
      ("obs", Test_obs.suite);
      ("cli", Test_cli.suite);
      ("serve", Test_serve.suite);
      ("torture", Test_torture.suite);
    ]
