module Pattern = Ace_isa.Pattern
module Rng = Ace_util.Rng

let rng () = Rng.create ~seed:1

let addresses pattern n =
  let c = Pattern.cursor pattern in
  let rng = rng () in
  List.init n (fun _ -> Pattern.next c ~rng)

let test_sequential_walk () =
  let p = Pattern.Sequential { base = 1000; extent = 64; stride = 16 } in
  Alcotest.(check (list int)) "walk with wrap"
    [ 1000; 1016; 1032; 1048; 1000; 1016 ]
    (addresses p 6)

let test_sequential_stride_one () =
  let p = Pattern.Sequential { base = 0; extent = 3; stride = 1 } in
  Alcotest.(check (list int)) "unit stride" [ 0; 1; 2; 0 ] (addresses p 4)

let test_random_in_bounds () =
  let p = Pattern.Random_in { base = 5000; extent = 256 } in
  List.iter
    (fun a -> Alcotest.(check bool) "in region" true (a >= 5000 && a < 5256))
    (addresses p 500)

let test_chase_in_bounds () =
  let p = Pattern.Pointer_chase { base = 9000; extent = 1024 } in
  List.iter
    (fun a -> Alcotest.(check bool) "in region" true (a >= 9000 && a < 9000 + 1024))
    (addresses p 500)

let test_chase_deterministic () =
  let p = Pattern.Pointer_chase { base = 0; extent = 4096 } in
  Alcotest.(check (list int)) "chase needs no rng" (addresses p 20) (addresses p 20)

let test_chase_covers () =
  (* The chaotic walk should touch a reasonable number of distinct words. *)
  let p = Pattern.Pointer_chase { base = 0; extent = 1024 } in
  let seen = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace seen a ()) (addresses p 1000);
  Alcotest.(check bool) "covers many distinct addresses" true (Hashtbl.length seen > 32)

let test_reset () =
  let p = Pattern.Sequential { base = 0; extent = 100; stride = 8 } in
  let c = Pattern.cursor p in
  let r = rng () in
  let first = Pattern.next c ~rng:r in
  ignore (Pattern.next c ~rng:r);
  Pattern.reset c;
  Alcotest.(check int) "reset returns to start" first (Pattern.next c ~rng:r)

let test_footprint () =
  Alcotest.(check int) "sequential footprint" 64
    (Pattern.footprint (Pattern.Sequential { base = 0; extent = 64; stride = 8 }));
  Alcotest.(check int) "random footprint" 128
    (Pattern.footprint (Pattern.Random_in { base = 0; extent = 128 }))

let test_base () =
  Alcotest.(check int) "base" 42
    (Pattern.base (Pattern.Random_in { base = 42; extent = 1 }))

let test_validate () =
  let ok p = Alcotest.(check bool) "valid" true (Pattern.validate p = Ok ()) in
  let bad p = Alcotest.(check bool) "invalid" true (Result.is_error (Pattern.validate p)) in
  ok (Pattern.Sequential { base = 0; extent = 1; stride = 1 });
  bad (Pattern.Sequential { base = 0; extent = 1; stride = 0 });
  bad (Pattern.Sequential { base = -1; extent = 1; stride = 1 });
  bad (Pattern.Random_in { base = 0; extent = 0 });
  ok (Pattern.Pointer_chase { base = 0; extent = 8 })

let prop_all_patterns_in_bounds =
  QCheck.Test.make ~name:"all patterns stay in their region" ~count:200
    QCheck.(
      triple (int_range 0 1_000_000) (int_range 8 65536) (int_range 0 2))
    (fun (base, extent, kind) ->
      let pattern =
        match kind with
        | 0 -> Pattern.Sequential { base; extent; stride = 8 }
        | 1 -> Pattern.Random_in { base; extent }
        | _ -> Pattern.Pointer_chase { base; extent }
      in
      let c = Pattern.cursor pattern in
      let rng = Rng.create ~seed:base in
      let ok = ref true in
      for _ = 1 to 200 do
        let a = Pattern.next c ~rng in
        if a < base || a >= base + extent then ok := false
      done;
      !ok)

(* The batched generator must be indistinguishable from repeated [next]:
   same addresses, same cursor state after, same RNG stream position. *)
let prop_next_batch_equiv =
  QCheck.Test.make ~name:"next_batch = n nexts (addresses, cursor, rng)"
    ~count:200
    QCheck.(
      quad (int_range 0 1_000_000) (int_range 8 65536) (int_range 0 2)
        (int_range 0 300))
    (fun (base, extent, kind, n) ->
      let pattern =
        match kind with
        | 0 -> Pattern.Sequential { base; extent; stride = 8 }
        | 1 -> Pattern.Random_in { base; extent }
        | _ -> Pattern.Pointer_chase { base; extent }
      in
      let ca = Pattern.cursor pattern and cb = Pattern.cursor pattern in
      let ra = Rng.create ~seed:base and rb = Rng.create ~seed:base in
      let scalar = Array.init n (fun _ -> Pattern.next ca ~rng:ra) in
      let buf = Array.make (n + 2) (-1) in
      Pattern.next_batch cb ~rng:rb buf ~pos:1 ~n;
      Array.for_all
        (fun i -> buf.(i + 1) = scalar.(i))
        (Array.init n (fun i -> i))
      && buf.(0) = -1
      && buf.(n + 1) = -1
      && Pattern.next ca ~rng:ra = Pattern.next cb ~rng:rb
      && Rng.bits64 ra = Rng.bits64 rb)

let suite =
  [
    Tu.case "sequential walk" test_sequential_walk;
    Tu.case "sequential unit stride" test_sequential_stride_one;
    Tu.case "random in bounds" test_random_in_bounds;
    Tu.case "chase in bounds" test_chase_in_bounds;
    Tu.case "chase deterministic" test_chase_deterministic;
    Tu.case "chase coverage" test_chase_covers;
    Tu.case "cursor reset" test_reset;
    Tu.case "footprint" test_footprint;
    Tu.case "base" test_base;
    Tu.case "validate" test_validate;
    Tu.qcheck prop_all_patterns_in_bounds;
    Tu.qcheck prop_next_batch_equiv;
  ]
