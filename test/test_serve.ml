(* Wire protocol, spool and daemon tests for ace_serve.

   The unit half round-trips the JSON codecs and framing; the integration
   half spawns the real binary ([ace_sim serve]) against a private spool,
   drives it through the client library, and asserts the issue's core
   robustness claims: byte-identical results vs batch runs, explicit
   [Overloaded] backpressure, poisoned-job quarantine, and kill -9 /
   chaos-kill restart recovery. *)

module Json = Ace_serve.Json
module Protocol = Ace_serve.Protocol
module Spool = Ace_serve.Spool
module Client = Ace_serve.Client
module Scheme = Ace_harness.Scheme
module Run = Ace_harness.Run
module Render = Ace_harness.Render
module Scratch = Ace_util.Scratch

let compress () = Option.get (Ace_workloads.Specjvm.find "compress")

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expected_output ~scale ~seed scheme =
  Render.run_output (Run.run ~scale ~seed (compress ()) scheme)

(* ------------------------------------------------------------------ *)
(* JSON / spec codecs                                                  *)
(* ------------------------------------------------------------------ *)

let spec_gen =
  let open QCheck.Gen in
  let* workload = string_size ~gen:printable (int_range 0 24) in
  let* scheme = oneofl [ Scheme.Fixed_baseline; Scheme.Hotspot; Scheme.Bbv ] in
  let* scale = float_range 0.001 64.0 in
  let* seed = int_range 0 1_000_000 in
  let* fault_rate = opt (float_range 0.0 1.0) in
  let* resilient = bool in
  (* The decoder refuses sample+faults without resilience, so only generate
     combinations it admits. *)
  let* sample = bool in
  let sample = sample && (fault_rate = None || resilient) in
  let* deadline_s = opt (float_range 0.001 3600.0) in
  let+ fail_after = opt (int_range 1 1_000_000_000) in
  { Protocol.workload; scheme; scale; seed; fault_rate; resilient; sample;
    deadline_s; fail_after }

let spec_arbitrary =
  QCheck.make spec_gen ~print:(fun s -> Json.to_string (Protocol.json_of_spec s))

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"job spec JSON round-trips exactly" ~count:500
    spec_arbitrary (fun spec ->
      Protocol.spec_of_json
        (Json.of_string (Json.to_string (Protocol.json_of_spec spec)))
      = spec)

let test_spec_roundtrip_awkward_strings () =
  (* Workload names the submit path would reject, but the codec must still
     carry faithfully: quotes, backslashes, control characters. *)
  [ "a\"b"; "back\\slash"; "tab\tnewline\n"; ""; "nul\x00byte"; "\x1f" ]
  |> List.iter (fun workload ->
         let spec = Protocol.job_spec ~workload Scheme.Hotspot in
         let spec' =
           Protocol.spec_of_json
             (Json.of_string (Json.to_string (Protocol.json_of_spec spec)))
         in
         Alcotest.(check string) "workload survives" workload spec'.Protocol.workload)

let test_request_roundtrip () =
  let specs =
    [ Protocol.job_spec ~workload:"compress" Scheme.Hotspot;
      Protocol.job_spec ~scale:0.25 ~seed:7 ~fault_rate:0.01 ~resilient:true
        ~deadline_s:12.5 ~fail_after:1_000_000 ~workload:"db" Scheme.Bbv ]
  in
  let reqs =
    List.map (fun s -> Protocol.Submit s) specs
    @ [ Protocol.Status; Protocol.Result 42; Protocol.Stop ]
  in
  List.iter
    (fun req ->
      let req' = Protocol.decode_request (Protocol.encode_request req) in
      Alcotest.(check bool) "request round-trips" true (req = req'))
    reqs

let test_response_roundtrip () =
  let report =
    { Protocol.queue_depth = 3; running = 2; draining = true; degraded = true;
      counters = [ ("serve.completed", 5); ("serve.submitted", 9) ];
      jobs = [ { Protocol.id = 1; state = "done" }; { Protocol.id = 2; state = "running" } ] }
  in
  let resps =
    [ Protocol.Accepted 17; Protocol.Overloaded; Protocol.Status_ok report;
      Protocol.Result_ok { id = 3; state = "done"; output = Some "table\n" };
      Protocol.Result_ok { id = 4; state = "queued"; output = None };
      Protocol.Stopping; Protocol.Error_resp "unknown workload" ]
  in
  List.iter
    (fun resp ->
      let resp' = Protocol.decode_response (Protocol.encode_response resp) in
      Alcotest.(check bool) "response round-trips" true (resp = resp'))
    resps

let test_decode_rejects_garbage () =
  let expect_protocol_error what f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Protocol_error" what
    | exception Protocol.Protocol_error _ -> ()
  in
  expect_protocol_error "not json" (fun () -> Protocol.decode_request "not json");
  expect_protocol_error "unknown type" (fun () ->
      Protocol.decode_request {|{"type":"reboot"}|});
  expect_protocol_error "missing spec" (fun () ->
      Protocol.decode_request {|{"type":"submit"}|});
  expect_protocol_error "bad scheme" (fun () ->
      Protocol.decode_request
        {|{"type":"submit","spec":{"workload":"compress","scheme":"turbo","scale":1.0,"seed":1,"resilient":false}}|});
  expect_protocol_error "negative scale" (fun () ->
      Protocol.decode_request
        {|{"type":"submit","spec":{"workload":"compress","scheme":"hotspot","scale":-1.0,"seed":1,"resilient":false}}|});
  expect_protocol_error "fault rate out of range" (fun () ->
      Protocol.decode_request
        {|{"type":"submit","spec":{"workload":"compress","scheme":"hotspot","scale":1.0,"seed":1,"resilient":false,"fault_rate":1.5}}|});
  expect_protocol_error "unknown response type" (fun () ->
      Protocol.decode_response {|{"type":"rebooted"}|})

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ r; w ])
    (fun () -> f r w)

let test_frame_roundtrip () =
  with_pipe (fun r w ->
      [ ""; "x"; {|{"type":"status"}|}; String.make 40_000 'z' ]
      |> List.iter (fun payload ->
             Protocol.write_frame w payload;
             Alcotest.(check string) "frame round-trips" payload (Protocol.read_frame r)))

let test_frame_oversized_write_refused () =
  with_pipe (fun _r w ->
      match Protocol.write_frame w (String.make (Protocol.max_frame + 1) 'a') with
      | () -> Alcotest.fail "oversized write_frame should raise"
      | exception Protocol.Protocol_error _ -> ())

let test_frame_oversized_length_refused () =
  with_pipe (fun r w ->
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 (Int32.of_int (Protocol.max_frame + 1));
      ignore (Unix.write w header 0 4);
      match Protocol.read_frame r with
      | _ -> Alcotest.fail "oversized declared length should raise"
      | exception Protocol.Protocol_error _ -> ())

let test_frame_negative_length_refused () =
  with_pipe (fun r w ->
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 (-1l);
      ignore (Unix.write w header 0 4);
      match Protocol.read_frame r with
      | _ -> Alcotest.fail "negative declared length should raise"
      | exception Protocol.Protocol_error _ -> ())

let test_frame_eof_mid_frame () =
  with_pipe (fun r w ->
      (* Declare 100 bytes, deliver 10, then close the writer. *)
      let header = Bytes.create 4 in
      Bytes.set_int32_le header 0 100l;
      ignore (Unix.write w header 0 4);
      ignore (Unix.write_substring w "0123456789" 0 10);
      Unix.close w;
      match Protocol.read_frame r with
      | _ -> Alcotest.fail "EOF mid-frame should raise"
      | exception Protocol.Protocol_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Spool                                                               *)
(* ------------------------------------------------------------------ *)

let test_spool_scan_classifies () =
  Scratch.with_temp_dir ~prefix:"ace_spool" (fun dir ->
      let spec = Protocol.job_spec ~scale:0.1 ~seed:3 ~workload:"compress" Scheme.Hotspot in
      Spool.write_spec ~dir 1 spec;
      Spool.write_spec ~dir 2 spec;
      Spool.write_result ~dir 2 "output\n";
      Spool.write_spec ~dir 5 spec;
      Spool.write_failed ~dir 5 "poisoned";
      let scan = Spool.scan ~dir () in
      Alcotest.(check int) "next id past the highest ever used" 6 scan.Spool.next_id;
      Alcotest.(check (list int)) "pending"
        [ 1 ] (List.map (fun e -> e.Spool.id) scan.Spool.pending);
      Alcotest.(check (list int)) "done" [ 2 ] scan.Spool.done_ids;
      Alcotest.(check (list int)) "failed" [ 5 ] scan.Spool.failed_ids;
      Alcotest.(check (option string)) "result readable"
        (Some "output\n") (Spool.read_result ~dir 2);
      Alcotest.(check (option string)) "failure readable"
        (Some "poisoned") (Spool.read_failed ~dir 5);
      let entry = List.hd scan.Spool.pending in
      Alcotest.(check bool) "pending spec survives" true (entry.Spool.spec = spec);
      Alcotest.(check (option string)) "no snapshot, no note" None entry.Spool.snapshot_note)

let test_spool_scan_notes_truncated_snapshot () =
  Scratch.with_temp_dir ~prefix:"ace_spool" (fun dir ->
      let spec = Protocol.job_spec ~workload:"compress" Scheme.Hotspot in
      Spool.write_spec ~dir 1 spec;
      (* A crash mid-write leaves a zero-byte primary snapshot; the scan must
         classify the job as pending and explain why the snapshot is dead. *)
      let oc = open_out (Spool.snap_path ~dir 1) in
      close_out oc;
      let scan = Spool.scan ~dir () in
      match scan.Spool.pending with
      | [ entry ] ->
          let note = Option.value ~default:"" entry.Spool.snapshot_note in
          Alcotest.(check bool)
            (Printf.sprintf "note mentions truncation: %S" note)
            true
            (String.length note > 0 && contains note "truncated")
      | _ -> Alcotest.fail "expected exactly one pending entry")

(* ------------------------------------------------------------------ *)
(* Daemon integration (spawns ../bin/ace_sim.exe)                      *)
(* ------------------------------------------------------------------ *)

let exe = "../bin/ace_sim.exe"

let start_daemon ?kill_after ?enospc_for ?(workers = 1) ?(queue_max = 8)
    ?(checkpoint_every = 500_000) ~socket ~spool () =
  let args =
    [ exe; "serve"; "--socket"; socket; "--spool"; spool; "--jobs";
      string_of_int workers; "--queue-max"; string_of_int queue_max;
      "--checkpoint-every"; string_of_int checkpoint_every ]
    @ (match kill_after with
      | Some n -> [ "--kill-after"; string_of_int n ]
      | None -> [])
    @ (match enospc_for with
      | Some s -> [ "--enospc-for"; string_of_float s ]
      | None -> [])
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () -> Unix.create_process exe (Array.of_list args) Unix.stdin devnull devnull)

let reap pid =
  match Unix.waitpid [] pid with
  | _, status -> Some status
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None

let kill_hard pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap pid)

let wait_until ?(timeout = 30.0) ~what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let daemon_ready ~socket () =
  match Client.status ~socket with
  | Protocol.Status_ok _ -> true
  | _ -> false
  | exception Client.Client_error _ -> false

let get_status ~socket =
  match Client.status ~socket with
  | Protocol.Status_ok r -> r
  | other ->
      Alcotest.failf "unexpected status response: %s"
        (Protocol.encode_response other)

let counter report name =
  match List.assoc_opt name report.Protocol.counters with Some n -> n | None -> 0

let submit_ok ~socket spec =
  match Client.submit ~socket spec with
  | Protocol.Accepted id -> id
  | other ->
      Alcotest.failf "submit not accepted: %s" (Protocol.encode_response other)

let wait_done ~socket id =
  match Client.wait ~socket ~poll_interval:0.03 ~timeout:60.0 id with
  | `Done out -> out
  | `Failed msg -> Alcotest.failf "job %d failed: %s" id msg
  | `Timeout -> Alcotest.failf "job %d timed out" id

let stop_and_reap ~socket pid =
  (match Client.stop ~socket with
  | Protocol.Stopping -> ()
  | other ->
      Alcotest.failf "unexpected stop response: %s" (Protocol.encode_response other)
  | exception Client.Client_error _ -> ());
  match reap pid with
  | Some (Unix.WEXITED 0) | None -> ()
  | Some (Unix.WEXITED n) -> Alcotest.failf "daemon exited %d after drain" n
  | Some (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
      Alcotest.failf "daemon killed by signal %d after drain" s

let with_serve_env f =
  Scratch.with_temp_dir ~prefix:"ace_serve" (fun dir ->
      let socket = Filename.concat dir "sock" in
      let spool = Filename.concat dir "spool" in
      f ~socket ~spool)

(* Submit → wait → result byte-identical to the batch run, plus explicit
   backpressure at the queue high-water mark. *)
let test_daemon_roundtrip_and_backpressure () =
  with_serve_env (fun ~socket ~spool ->
      let pid = start_daemon ~workers:1 ~queue_max:1 ~socket ~spool () in
      Fun.protect
        ~finally:(fun () -> kill_hard pid)
        (fun () ->
          wait_until ~what:"daemon socket" (daemon_ready ~socket);
          let a =
            submit_ok ~socket
              (Protocol.job_spec ~scale:0.2 ~seed:3 ~workload:"compress"
                 Scheme.Hotspot)
          in
          (* Wait until job A is dispatched so the queue-depth arithmetic
             below is deterministic: running 1, queue 0, high-water 1. *)
          wait_until ~what:"job dispatch" (fun () ->
              let r = get_status ~socket in
              r.Protocol.running = 1 && r.Protocol.queue_depth = 0);
          let b =
            submit_ok ~socket
              (Protocol.job_spec ~scale:0.1 ~seed:4 ~workload:"compress"
                 Scheme.Fixed_baseline)
          in
          (match
             Client.submit ~socket
               (Protocol.job_spec ~scale:0.1 ~seed:5 ~workload:"compress"
                  Scheme.Bbv)
           with
          | Protocol.Overloaded -> ()
          | other ->
              Alcotest.failf "expected Overloaded, got %s"
                (Protocol.encode_response other));
          let unknown =
            Client.submit ~socket
              (Protocol.job_spec ~workload:"no-such-benchmark" Scheme.Hotspot)
          in
          (match unknown with
          | Protocol.Error_resp _ -> ()
          | other ->
              Alcotest.failf "expected Error_resp for unknown workload, got %s"
                (Protocol.encode_response other));
          Alcotest.(check string) "job A byte-identical to batch run"
            (expected_output ~scale:0.2 ~seed:3 Scheme.Hotspot)
            (wait_done ~socket a);
          Alcotest.(check string) "job B byte-identical to batch run"
            (expected_output ~scale:0.1 ~seed:4 Scheme.Fixed_baseline)
            (wait_done ~socket b);
          let r = get_status ~socket in
          Alcotest.(check int) "submitted counter" 2 (counter r "submitted");
          Alcotest.(check int) "rejection counter" 1
            (counter r "rejected_overloaded");
          Alcotest.(check int) "completed counter" 2 (counter r "completed");
          stop_and_reap ~socket pid))

(* A poisoned job exhausts its retries and is quarantined as failed while a
   sibling job on the same daemon completes normally. *)
let test_daemon_poisoned_job_isolation () =
  with_serve_env (fun ~socket ~spool ->
      let pid = start_daemon ~workers:1 ~queue_max:8 ~socket ~spool () in
      Fun.protect
        ~finally:(fun () -> kill_hard pid)
        (fun () ->
          wait_until ~what:"daemon socket" (daemon_ready ~socket);
          let poisoned =
            submit_ok ~socket
              (Protocol.job_spec ~scale:0.1 ~seed:6 ~fail_after:1
                 ~workload:"compress" Scheme.Hotspot)
          in
          let healthy =
            submit_ok ~socket
              (Protocol.job_spec ~scale:0.1 ~seed:7 ~workload:"compress"
                 Scheme.Fixed_baseline)
          in
          (match Client.wait ~socket ~poll_interval:0.05 ~timeout:60.0 poisoned with
          | `Failed msg ->
              Alcotest.(check bool)
                (Printf.sprintf "failure message mentions attempts: %S" msg)
                true
                (contains msg "attempt")
          | `Done _ -> Alcotest.fail "poisoned job should not complete"
          | `Timeout -> Alcotest.fail "poisoned job never settled");
          Alcotest.(check string) "healthy sibling byte-identical to batch run"
            (expected_output ~scale:0.1 ~seed:7 Scheme.Fixed_baseline)
            (wait_done ~socket healthy);
          let r = get_status ~socket in
          Alcotest.(check int) "failed counter" 1 (counter r "failed");
          Alcotest.(check int) "two retries before quarantine" 2
            (counter r "retries");
          Alcotest.(check int) "completed counter" 1 (counter r "completed");
          stop_and_reap ~socket pid))

(* SIGKILL the daemon mid-run; a restarted daemon rescans the spool, resumes
   the in-flight job from its snapshot and finishes byte-identically. *)
let test_daemon_kill9_restart_resume () =
  with_serve_env (fun ~socket ~spool ->
      let pid = start_daemon ~workers:1 ~queue_max:8 ~socket ~spool () in
      let pid2 = ref None in
      Fun.protect
        ~finally:(fun () ->
          kill_hard pid;
          Option.iter kill_hard !pid2)
        (fun () ->
          wait_until ~what:"daemon socket" (daemon_ready ~socket);
          let a =
            submit_ok ~socket
              (Protocol.job_spec ~scale:0.2 ~seed:3 ~workload:"compress"
                 Scheme.Hotspot)
          in
          let b =
            submit_ok ~socket
              (Protocol.job_spec ~scale:0.2 ~seed:4 ~workload:"compress"
                 Scheme.Bbv)
          in
          (* Kill only once the first job has snapshotted, so the restart
             exercises the resume path rather than a fresh re-run. *)
          wait_until ~what:"first snapshot" (fun () ->
              Sys.file_exists (Spool.snap_path ~dir:spool a));
          Unix.kill pid Sys.sigkill;
          (match reap pid with
          | Some (Unix.WSIGNALED s) when s = Sys.sigkill -> ()
          | st ->
              Alcotest.failf "unexpected first-life status: %s"
                (match st with
                | Some (Unix.WEXITED n) -> Printf.sprintf "exit %d" n
                | Some (Unix.WSIGNALED s) -> Printf.sprintf "signal %d" s
                | Some (Unix.WSTOPPED s) -> Printf.sprintf "stopped %d" s
                | None -> "already reaped"));
          let restarted = start_daemon ~workers:1 ~queue_max:8 ~socket ~spool () in
          pid2 := Some restarted;
          wait_until ~what:"restarted daemon socket" (daemon_ready ~socket);
          Alcotest.(check string) "job A resumed byte-identically"
            (expected_output ~scale:0.2 ~seed:3 Scheme.Hotspot)
            (wait_done ~socket a);
          Alcotest.(check string) "job B completed byte-identically"
            (expected_output ~scale:0.2 ~seed:4 Scheme.Bbv)
            (wait_done ~socket b);
          let r = get_status ~socket in
          Alcotest.(check bool) "restart requeued the in-flight jobs" true
            (counter r "requeued" >= 1);
          Alcotest.(check bool) "at least one job resumed from a snapshot" true
            (counter r "resumes" >= 1);
          stop_and_reap ~socket restarted))

(* Full disk: submits are refused with explicit backpressure, status
   reports [degraded], and when space returns the storage probe lifts
   degraded mode automatically — no restart, no lost acknowledgements. *)
let test_daemon_degraded_enospc () =
  with_serve_env (fun ~socket ~spool ->
      (* Pre-create the spool so startup's [ensure_dir] finds it and the
         full-disk window hits the first spec write instead. *)
      Spool.ensure_dir spool;
      let pid = start_daemon ~enospc_for:5.0 ~workers:1 ~socket ~spool () in
      Fun.protect
        ~finally:(fun () -> kill_hard pid)
        (fun () ->
          wait_until ~what:"daemon socket" (daemon_ready ~socket);
          let spec =
            Protocol.job_spec ~scale:0.1 ~seed:9 ~workload:"compress"
              Scheme.Fixed_baseline
          in
          (* The disk is full: the durable-before-acknowledged contract
             cannot be kept, so the daemon must refuse rather than accept. *)
          (match Client.submit ~socket spec with
          | Protocol.Overloaded -> ()
          | other ->
              Alcotest.failf "expected Overloaded on a full disk, got %s"
                (Protocol.encode_response other));
          let r = get_status ~socket in
          Alcotest.(check bool) "status reports degraded" true r.Protocol.degraded;
          Alcotest.(check bool) "io_faults counter ticked" true
            (counter r "io_faults" >= 1);
          (* While degraded, further submits are refused without touching
             the (still-broken) spool. *)
          (match Client.submit ~socket spec with
          | Protocol.Overloaded -> ()
          | other ->
              Alcotest.failf "expected Overloaded while degraded, got %s"
                (Protocol.encode_response other));
          (* Space returns; the per-tick probe must clear degraded mode on
             its own — no restart, no operator intervention. *)
          wait_until ~timeout:30.0 ~what:"degraded mode to lift" (fun () ->
              not (get_status ~socket).Protocol.degraded);
          let id = submit_ok ~socket spec in
          Alcotest.(check string) "post-recovery job byte-identical"
            (expected_output ~scale:0.1 ~seed:9 Scheme.Fixed_baseline)
            (wait_done ~socket id);
          let r = get_status ~socket in
          Alcotest.(check bool) "rejections were counted" true
            (counter r "rejected_overloaded" >= 2);
          stop_and_reap ~socket pid))

(* Acceptance criterion: kill the daemon 10 seeded times mid-queue via
   --kill-after chaos; every accepted job still completes and every result
   is byte-identical to the batch run. *)
let test_daemon_chaos_soak () =
  with_serve_env (fun ~socket ~spool ->
      let jobs =
        [ (Scheme.Hotspot, 3); (Scheme.Fixed_baseline, 4); (Scheme.Bbv, 5) ]
      in
      let expected =
        List.map (fun (scheme, seed) -> expected_output ~scale:0.2 ~seed scheme) jobs
      in
      (* Seeded kill points (instructions executed per daemon life). *)
      let kill_points =
        let st = Random.State.make [| 0xACE; 42 |] in
        List.init 10 (fun _ -> 600_000 + Random.State.int st 2_000_000)
      in
      let live = ref None in
      Fun.protect
        ~finally:(fun () -> Option.iter kill_hard !live)
        (fun () ->
          (* Life 0: no chaos — get every job durably accepted first, so all
             ten kills strike mid-queue. *)
          let pid0 = start_daemon ~workers:2 ~queue_max:8 ~socket ~spool () in
          live := Some pid0;
          wait_until ~what:"daemon socket" (daemon_ready ~socket);
          let ids =
            List.map
              (fun (scheme, seed) ->
                submit_ok ~socket
                  (Protocol.job_spec ~scale:0.2 ~seed ~workload:"compress" scheme))
              jobs
          in
          Unix.kill pid0 Sys.sigkill;
          ignore (reap pid0);
          live := None;
          (* Lives 1..10: each runs with a chaos kill switch and dies with
             exit 3 at a checkpoint boundary — unless the queue drains
             first, in which case the daemon idles and we move on. *)
          List.iteri
            (fun i kill_after ->
              let pid =
                start_daemon ~kill_after ~workers:2 ~queue_max:8 ~socket ~spool ()
              in
              live := Some pid;
              wait_until ~what:"chaos daemon socket" (daemon_ready ~socket);
              let all_done () =
                match Client.status ~socket with
                | Protocol.Status_ok r ->
                    List.for_all
                      (fun id ->
                        List.exists
                          (fun j -> j.Protocol.id = id && j.Protocol.state = "done")
                          r.Protocol.jobs)
                      ids
                | _ -> false
                | exception Client.Client_error _ -> false
              in
              let rec await () =
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ ->
                    if all_done () then begin
                      (* Queue drained before the kill switch tripped. *)
                      stop_and_reap ~socket pid;
                      live := None
                    end
                    else begin
                      Unix.sleepf 0.02;
                      await ()
                    end
                | _, Unix.WEXITED 3 -> live := None
                | _, st ->
                    Alcotest.failf "chaos life %d: unexpected exit %s" i
                      (match st with
                      | Unix.WEXITED n -> Printf.sprintf "code %d" n
                      | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                      | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s)
              in
              await ())
            kill_points;
          (* Final life: no chaos; everything must complete. *)
          let pid = start_daemon ~workers:2 ~queue_max:8 ~socket ~spool () in
          live := Some pid;
          wait_until ~what:"final daemon socket" (daemon_ready ~socket);
          List.iteri
            (fun i id ->
              Alcotest.(check string)
                (Printf.sprintf "job %d byte-identical after chaos" id)
                (List.nth expected i) (wait_done ~socket id))
            ids;
          let r = get_status ~socket in
          Alcotest.(check int) "no job was lost or failed" 0 (counter r "failed");
          stop_and_reap ~socket pid;
          live := None))

let suite =
  [
    Tu.qcheck prop_spec_roundtrip;
    Tu.case "spec codec carries awkward strings" test_spec_roundtrip_awkward_strings;
    Tu.case "request codec round-trips" test_request_roundtrip;
    Tu.case "response codec round-trips" test_response_roundtrip;
    Tu.case "decoders reject malformed input" test_decode_rejects_garbage;
    Tu.case "frames round-trip over a pipe" test_frame_roundtrip;
    Tu.case "oversized frame write refused" test_frame_oversized_write_refused;
    Tu.case "oversized declared length refused" test_frame_oversized_length_refused;
    Tu.case "negative declared length refused" test_frame_negative_length_refused;
    Tu.case "EOF mid-frame refused" test_frame_eof_mid_frame;
    Tu.case "spool scan classifies job files" test_spool_scan_classifies;
    Tu.case "spool scan flags truncated snapshot" test_spool_scan_notes_truncated_snapshot;
    Tu.slow_case "daemon round-trip + backpressure" test_daemon_roundtrip_and_backpressure;
    Tu.slow_case "poisoned job is quarantined, daemon survives"
      test_daemon_poisoned_job_isolation;
    Tu.slow_case "kill -9, restart, resume bit-identically"
      test_daemon_kill9_restart_resume;
    Tu.slow_case "full disk: degraded mode, backpressure, auto-recovery"
      test_daemon_degraded_enospc;
    Tu.slow_case "chaos soak: 10 seeded kills, results byte-identical"
      test_daemon_chaos_soak;
  ]
