(* Parallel-harness determinism: the whole point of the pool design is that
   [--jobs N] changes wall-clock time and nothing else.  Rendered experiment
   tables and the float aggregates feeding them must be byte-identical
   between a sequential context and a 4-way parallel one, across several
   seeds (4 jobs on any core count still exercises true interleaving — the
   domains are simply oversubscribed). *)

module E = Ace_harness.Experiments
module Scheme = Ace_harness.Scheme
module Table = Ace_util.Table

let mini_workloads =
  [ Ace_workloads.Compress.workload; Ace_workloads.Mtrt.workload ]

let with_ctx ~seed ~jobs f =
  let ctx = E.create ~scale:0.1 ~seed ~jobs ~workloads:mini_workloads () in
  Fun.protect ~finally:(fun () -> E.shutdown ctx) (fun () -> f ctx)

let with_pair ~seed f =
  with_ctx ~seed ~jobs:1 (fun seq -> with_ctx ~seed ~jobs:4 (fun par -> f seq par))

let seeds = [ 1; 7; 42 ]

let test_tables_bit_identical () =
  List.iter
    (fun seed ->
      with_pair ~seed (fun seq par ->
          List.iter
            (fun (name, f) ->
              Alcotest.(check string)
                (Printf.sprintf "%s, seed %d: -j1 = -j4" name seed)
                (Table.render (f seq))
                (Table.render (f par)))
            [
              ("fig1", E.fig1);
              ("fig3", E.fig3);
              ("fig4", E.fig4);
              ("table4", E.table4);
            ]))
    seeds

let test_aggregates_bit_identical () =
  (* Exact float equality, not approximate: the parallel path must produce
     the same bits, not merely close numbers. *)
  List.iter
    (fun seed ->
      with_pair ~seed (fun seq par ->
          List.iter
            (fun scheme ->
              let name = Scheme.name scheme in
              let e1l1, e1l2 = E.average_energy_reduction seq scheme in
              let e4l1, e4l2 = E.average_energy_reduction par scheme in
              Alcotest.(check (float 0.0))
                (Printf.sprintf "L1D energy reduction, %s, seed %d" name seed)
                e1l1 e4l1;
              Alcotest.(check (float 0.0))
                (Printf.sprintf "L2 energy reduction, %s, seed %d" name seed)
                e1l2 e4l2;
              Alcotest.(check (float 0.0))
                (Printf.sprintf "slowdown, %s, seed %d" name seed)
                (E.average_slowdown seq scheme)
                (E.average_slowdown par scheme);
              List.iter
                (fun w ->
                  Alcotest.(check (float 0.0))
                    (Printf.sprintf "per-workload slowdown, %s/%s, seed %d"
                       w.Ace_workloads.Workload.name name seed)
                    (E.slowdown seq w scheme) (E.slowdown par w scheme))
                mini_workloads)
            [ Scheme.Hotspot; Scheme.Bbv ]))
    seeds

let test_stability_shares_parent_pool () =
  (* stability builds per-seed sub-contexts internally; with jobs > 1 they
     borrow the parent pool.  Output must still match sequential exactly. *)
  with_pair ~seed:1 (fun seq par ->
      Alcotest.(check string)
        "stability: -j1 = -j4"
        (Table.render (E.stability seq))
        (Table.render (E.stability par)))

let test_soak_parallel_identical () =
  with_pair ~seed:1 (fun seq par ->
      Alcotest.(check string)
        "soak: -j1 = -j4"
        (Table.render (E.soak ~cycles:4 seq))
        (Table.render (E.soak ~cycles:4 par)))

let test_create_rejects_bad_jobs () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs = %d rejected" jobs)
        (Invalid_argument
           (Printf.sprintf "Experiments.create: jobs must be >= 1 (got %d)" jobs))
        (fun () -> ignore (E.create ~jobs ())))
    [ 0; -3 ]

let test_jobs_accessor () =
  with_ctx ~seed:1 ~jobs:1 (fun c -> Alcotest.(check int) "jobs 1" 1 (E.jobs c));
  with_ctx ~seed:1 ~jobs:4 (fun c -> Alcotest.(check int) "jobs 4" 4 (E.jobs c))

let suite =
  [
    Tu.case "create rejects jobs < 1" test_create_rejects_bad_jobs;
    Tu.case "jobs accessor" test_jobs_accessor;
    Tu.slow_case "experiment tables bit-identical -j1 vs -j4"
      test_tables_bit_identical;
    Tu.slow_case "aggregates bit-identical -j1 vs -j4"
      test_aggregates_bit_identical;
    Tu.slow_case "stability sub-contexts share the pool"
      test_stability_shares_parent_pool;
    Tu.slow_case "soak bit-identical -j1 vs -j4" test_soak_parallel_identical;
  ]
