(* Regenerate test/golden.snap after a Snapshot.version bump:

     dune exec test/gen_golden/gen_golden.exe -- test/golden.snap

   The golden file is a committed mid-run snapshot that the test suite must
   keep decoding; test_ckpt.ml expects a compress/hotspot run with a
   non-zero instruction count.  The run carries a Full observability sink so
   the golden exercises the embedded obs state too. *)

module Obs = Ace_obs.Obs
module Snapshot = Ace_ckpt.Snapshot

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "golden.snap" in
  let workload =
    match Ace_workloads.Specjvm.find "compress" with
    | Some w -> w
    | None -> failwith "compress workload not registered"
  in
  let first = ref None in
  let obs = Obs.create Obs.Full in
  let ckpt_path = Filename.temp_file "ace_golden" ".snap" in
  let outcome =
    Ace_harness.Run.run_checkpointed ~scale:0.2 ~seed:3 ~obs
      ~on_snapshot:(fun snap -> if !first = None then first := Some snap)
      ~checkpoint_every:2_000_000 ~path:ckpt_path workload
      Ace_harness.Scheme.Hotspot
  in
  (try Sys.remove ckpt_path with Sys_error _ -> ());
  (try Sys.remove (ckpt_path ^ ".1") with Sys_error _ -> ());
  (match outcome with
  | Ace_harness.Run.Completed _ -> ()
  | Ace_harness.Run.Killed_at _ -> failwith "golden run unexpectedly killed");
  match !first with
  | None -> failwith "run finished without writing a single checkpoint"
  | Some snap ->
      let oc = open_out_bin path in
      output_string oc (Snapshot.encode snap);
      close_out oc;
      Printf.printf "wrote %s (version %d, %d instrs into the run)\n" path
        Snapshot.version snap.Snapshot.engine.Ace_vm.Engine.s_instrs
