(* ACE core: CU, Hw guard, decoupling, tuner. *)
module Cu = Ace_core.Cu
module Hw = Ace_core.Hw
module Decoupling = Ace_core.Decoupling
module Tuner = Ace_core.Tuner
module Engine = Ace_vm.Engine

let engine () = Engine.create (Tu.tiny_program ())

(* A synthetic CU for guard tests: 4 settings, interval 100, no flush. *)
let test_cu ?(interval = 100) () =
  let applied = ref [] in
  let cu =
    {
      Cu.name = "test";
      family = None;
      setting_labels = [| "3"; "2"; "1"; "0" |];
      setting_sizes = [| 4000; 3000; 2000; 1000 |];
      reconfig_interval = interval;
      apply =
        (fun idx ->
          applied := idx :: !applied;
          idx);
      accesses_now = (fun () -> 0);
      energy_proxy = (fun _ ~setting -> float_of_int setting);
      current = 0;
      last_reconfig_instr = 0;
      applied_count = 0;
      denied_count = 0;
      invalid_count = 0;
    }
  in
  (cu, applied)

let test_hw_unchanged () =
  let cu, applied = test_cu () in
  Alcotest.(check bool) "same setting is a no-op" true
    (Hw.request cu ~setting:0 ~now_instrs:1000 = Hw.Unchanged);
  Alcotest.(check (list int)) "apply not called" [] !applied

let test_hw_applied () =
  let cu, applied = test_cu () in
  (match Hw.request cu ~setting:2 ~now_instrs:1000 with
  | Hw.Applied { flushed_lines } -> Alcotest.(check int) "flush from apply" 2 flushed_lines
  | Hw.Unchanged | Hw.Denied -> Alcotest.fail "expected Applied");
  Alcotest.(check int) "current updated" 2 cu.Cu.current;
  Alcotest.(check int) "guard counter updated" 1000 cu.Cu.last_reconfig_instr;
  Alcotest.(check int) "applied count" 1 cu.Cu.applied_count;
  Alcotest.(check (list int)) "apply called once" [ 2 ] !applied

let test_hw_guard_denies () =
  let cu, _ = test_cu ~interval:100 () in
  ignore (Hw.request cu ~setting:1 ~now_instrs:1000);
  Alcotest.(check bool) "too-early request dropped" true
    (Hw.request cu ~setting:2 ~now_instrs:1050 = Hw.Denied);
  Alcotest.(check int) "setting unchanged" 1 cu.Cu.current;
  Alcotest.(check int) "denied counted" 1 cu.Cu.denied_count;
  Alcotest.(check bool) "after the interval it works" true
    (match Hw.request cu ~setting:2 ~now_instrs:1100 with
    | Hw.Applied _ -> true
    | Hw.Unchanged | Hw.Denied -> false)

let test_hw_force_bypasses_guard () =
  let cu, _ = test_cu ~interval:1_000_000 () in
  ignore (Hw.request cu ~setting:1 ~now_instrs:10);
  Alcotest.(check bool) "force ignores the interval" true
    (match Hw.force cu ~setting:3 ~now_instrs:20 with
    | Hw.Applied _ -> true
    | Hw.Unchanged | Hw.Denied -> false)

let test_hw_range_check () =
  let cu, applied = test_cu () in
  Alcotest.(check bool) "out of range is denied, not a crash" true
    (Hw.request cu ~setting:9 ~now_instrs:0 = Hw.Denied);
  Alcotest.(check bool) "negative too" true
    (Hw.request cu ~setting:(-1) ~now_instrs:0 = Hw.Denied);
  Alcotest.(check int) "counted separately from guard denials" 2
    cu.Cu.invalid_count;
  Alcotest.(check int) "guard stat untouched" 0 cu.Cu.denied_count;
  Alcotest.(check (list int)) "apply never called" [] !applied;
  (* [force] is the privileged path and still range-checks loudly. *)
  Alcotest.check_raises "force raises"
    (Invalid_argument "Hw.force: setting 9 out of range for test") (fun () ->
      ignore (Hw.force cu ~setting:9 ~now_instrs:0))

(* --- decoupling --- *)

let paper_cus () =
  let e = engine () in
  [| Cu.l1d e; Cu.l2 e |]

let test_class_bounds () =
  let e = engine () in
  let l1d = Cu.l1d e and l2 = Cu.l2 e in
  Alcotest.(check (pair int int)) "L1D alone takes everything above 50K"
    (50_000, max_int) (Decoupling.class_bounds l1d);
  Alcotest.(check (pair int int)) "L2 from 500K" (500_000, max_int)
    (Decoupling.class_bounds l2)

let test_assign_paper_classes () =
  let cus = paper_cus () in
  let assign size = Decoupling.assign ~cus ~size ~decoupling:true in
  Alcotest.(check (list int)) "too small" [] (assign 10_000);
  Alcotest.(check (list int)) "L1D class at 50K" [ 0 ] (assign 50_000);
  Alcotest.(check (list int)) "L1D class at 499K" [ 0 ] (assign 499_999);
  Alcotest.(check (list int)) "L2 class at 500K" [ 1 ] (assign 500_000);
  Alcotest.(check (list int)) "L2 class at 50M" [ 1 ] (assign 50_000_000)

let test_assign_no_decoupling () =
  let cus = paper_cus () in
  let assign size = Decoupling.assign ~cus ~size ~decoupling:false in
  Alcotest.(check (list int)) "too small still unmanaged" [] (assign 10_000);
  Alcotest.(check (list int)) "everything else manages all CUs" [ 0; 1 ]
    (assign 60_000);
  Alcotest.(check (list int)) "large too" [ 0; 1 ] (assign 5_000_000)

let test_assign_three_cus () =
  let e = engine () in
  let cus = [| Cu.l1d e; Cu.l2 e; Cu.issue_queue e |] in
  let assign size = Decoupling.assign ~cus ~size ~decoupling:true in
  Alcotest.(check (list int)) "IQ class at 20K" [ 2 ] (assign 20_000);
  Alcotest.(check (list int)) "L1D class" [ 0 ] (assign 100_000);
  Alcotest.(check (list int)) "L2 class" [ 1 ] (assign 2_000_000)

let test_assign_four_cus_overlap () =
  let e = engine () in
  let cus = [| Cu.l1d e; Cu.l2 e; Cu.issue_queue e; Cu.reorder_buffer e |] in
  let assign size = Decoupling.assign ~cus ~size ~decoupling:true in
  (* IQ [5K,50K) and ROB [2.5K,25K) overlap: a 10K hotspot manages both
     jointly (the subset, per §3.2.2), a 40K one only the IQ. *)
  Alcotest.(check (list int)) "overlap manages both" [ 2; 3 ] (assign 10_000);
  Alcotest.(check (list int)) "above ROB range" [ 2 ] (assign 40_000);
  Alcotest.(check (list int)) "below IQ range" [ 3 ] (assign 3_000);
  (* Joint configuration list is the 4x4 product. *)
  Alcotest.(check int) "joint configs" 16
    (Array.length (Decoupling.configurations ~cus ~managed:[ 2; 3 ]))

let test_reorder_buffer_effect () =
  let cycles_with setting =
    let e = Engine.create (Tu.tiny_program ~reps:200 ()) in
    let rob = Cu.reorder_buffer e in
    (match Hw.force rob ~setting ~now_instrs:0 with
    | Hw.Applied _ | Hw.Unchanged -> ()
    | Hw.Denied -> Alcotest.fail "force cannot be denied");
    Engine.run e;
    Engine.cycles e
  in
  Alcotest.(check bool) "smaller ROB exposes more miss latency" true
    (cycles_with 3 > cycles_with 0)

let test_configurations_single () =
  let cus = paper_cus () in
  let configs = Decoupling.configurations ~cus ~managed:[ 0 ] in
  Alcotest.(check int) "4 settings" 4 (Array.length configs);
  Alcotest.(check (array int)) "largest first" [| 0 |] configs.(0);
  Alcotest.(check (array int)) "smallest last" [| 3 |] configs.(3)

let test_configurations_product () =
  let cus = paper_cus () in
  let configs = Decoupling.configurations ~cus ~managed:[ 0; 1 ] in
  Alcotest.(check int) "16 combinations" 16 (Array.length configs);
  Alcotest.(check (array int)) "all-max first" [| 0; 0 |] configs.(0);
  Alcotest.(check (array int)) "all-min last" [| 3; 3 |] configs.(15);
  (* Every combination appears exactly once. *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "unique" false (Hashtbl.mem seen (c.(0), c.(1)));
      Hashtbl.replace seen (c.(0), c.(1)) ())
    configs;
  (* Ordered by decreasing total capacity (increasing index sum). *)
  let sums = Array.map (fun c -> c.(0) + c.(1)) configs in
  Array.iteri
    (fun i s -> if i > 0 then Alcotest.(check bool) "monotone" true (s >= sums.(i - 1)))
    sums

(* --- tuner --- *)

let params ?(performance_threshold = 0.02) ?(invocations_per_config = 1)
    ?(warmup = 0) ?(sample_every = 4) ?(retune_threshold = 0.15) () =
  {
    Tuner.performance_threshold;
    retune_threshold;
    sample_every;
    invocations_per_config;
    warmup_invocations = warmup;
  }

let l1d_configs = [| [| 0 |]; [| 1 |]; [| 2 |]; [| 3 |] |]

(* Drive one tuning invocation: entry (expects Set), applied cleanly, exit
   with the given measurement. *)
let step t ~energy ~ipc =
  (match Tuner.on_entry t with
  | Tuner.Set _ -> ()
  | Tuner.Nothing -> Alcotest.fail "expected a configuration request");
  Tuner.entry_outcome t ~applied:true ~changed:false;
  Tuner.on_exit t ~energy ~ipc

let test_tuner_full_sweep_selects_min_energy () =
  let t = Tuner.create (params ()) ~configs:l1d_configs in
  (* Equal IPC everywhere: the smallest (cheapest) config must win. *)
  let energies = [| 8.0; 4.0; 2.0; 1.0 |] in
  let finished = ref None in
  Array.iteri
    (fun i e ->
      match step t ~energy:e ~ipc:1.5 with
      | Tuner.Finished cfg -> finished := Some (i, cfg)
      | Tuner.Continue | Tuner.Retuning | Tuner.Quarantine -> ())
    energies;
  (match !finished with
  | Some (3, cfg) -> Alcotest.(check (array int)) "smallest selected" [| 3 |] cfg
  | _ -> Alcotest.fail "tuning should finish on the last configuration");
  Alcotest.(check bool) "configured" true (Tuner.is_configured t);
  Alcotest.(check int) "tested all" 4 (Tuner.tested_count t)

let test_tuner_perf_threshold_filters () =
  let t = Tuner.create (params ()) ~configs:l1d_configs in
  (* Config 2 and 3 degrade IPC by more than 2%; config 1 is cheapest within
     the threshold.  Degradation at config 2 also stops the sweep. *)
  ignore (step t ~energy:8.0 ~ipc:2.0);
  ignore (step t ~energy:4.0 ~ipc:1.99);
  (match step t ~energy:2.0 ~ipc:1.5 with
  | Tuner.Finished cfg -> Alcotest.(check (array int)) "config 1 selected" [| 1 |] cfg
  | Tuner.Continue | Tuner.Retuning | Tuner.Quarantine ->
      Alcotest.fail "early exit expected");
  Alcotest.(check int) "stopped after 3 tests" 3 (Tuner.tested_count t)

let test_tuner_early_exit_on_degradation () =
  let t = Tuner.create (params ()) ~configs:l1d_configs in
  ignore (step t ~energy:8.0 ~ipc:2.0);
  match step t ~energy:4.0 ~ipc:1.0 with
  | Tuner.Finished cfg ->
      (* Config 1 violates the threshold; the best within it is config 0. *)
      Alcotest.(check (array int)) "falls back to max config" [| 0 |] cfg
  | Tuner.Continue | Tuner.Retuning | Tuner.Quarantine ->
      Alcotest.fail "should stop early"

let test_tuner_denied_retries () =
  let t = Tuner.create (params ()) ~configs:l1d_configs in
  (match Tuner.on_entry t with
  | Tuner.Set cfg -> Alcotest.(check (array int)) "first config" [| 0 |] cfg
  | Tuner.Nothing -> Alcotest.fail "expected Set");
  Tuner.entry_outcome t ~applied:false ~changed:false;
  Alcotest.(check bool) "not measuring after denial" false (Tuner.measuring t);
  ignore (Tuner.on_exit t ~energy:1.0 ~ipc:1.0);
  (* Same config is requested again. *)
  match Tuner.on_entry t with
  | Tuner.Set cfg -> Alcotest.(check (array int)) "retried" [| 0 |] cfg
  | Tuner.Nothing -> Alcotest.fail "expected Set again"

let test_tuner_change_warms () =
  let t = Tuner.create (params ()) ~configs:l1d_configs in
  ignore (Tuner.on_entry t);
  Tuner.entry_outcome t ~applied:true ~changed:true;
  Alcotest.(check bool) "measurement skipped on the flush invocation" false
    (Tuner.measuring t)

let test_tuner_averaging () =
  let t = Tuner.create (params ~invocations_per_config:2 ()) ~configs:l1d_configs in
  (* Each config needs two measured invocations. *)
  ignore (step t ~energy:10.0 ~ipc:2.0);
  Alcotest.(check int) "not yet recorded" 0 (Tuner.tested_count t);
  ignore (step t ~energy:20.0 ~ipc:2.0);
  Alcotest.(check int) "recorded after two" 1 (Tuner.tested_count t)

let test_tuner_warmup () =
  let t = Tuner.create (params ~warmup:2 ()) ~configs:l1d_configs in
  Alcotest.(check bool) "warmup entry does nothing" true (Tuner.on_entry t = Tuner.Nothing);
  ignore (Tuner.on_exit t ~energy:0.0 ~ipc:0.0);
  Alcotest.(check bool) "still warming" true (Tuner.on_entry t = Tuner.Nothing);
  ignore (Tuner.on_exit t ~energy:0.0 ~ipc:0.0);
  match Tuner.on_entry t with
  | Tuner.Set _ -> ()
  | Tuner.Nothing -> Alcotest.fail "warmup should be over"

let finish_quickly t =
  (* Complete tuning with flat measurements; config 3 wins. *)
  for _ = 0 to 3 do
    ignore (step t ~energy:1.0 ~ipc:1.5)
  done

let test_tuner_sampling_and_retune () =
  let t = Tuner.create (params ~sample_every:2 ~retune_threshold:0.10 ()) ~configs:l1d_configs in
  finish_quickly t;
  Alcotest.(check bool) "configured" true (Tuner.is_configured t);
  (* Exits 1 (not sampling), 2 (sampling, same ipc -> no retune). *)
  ignore (Tuner.on_entry t);
  ignore (Tuner.on_exit t ~energy:1.0 ~ipc:1.5);
  ignore (Tuner.on_entry t);
  Alcotest.(check bool) "sampling exit measures" true (Tuner.measuring t);
  (match Tuner.on_exit t ~energy:1.0 ~ipc:1.5 with
  | Tuner.Continue -> ()
  | Tuner.Finished _ | Tuner.Retuning | Tuner.Quarantine ->
      Alcotest.fail "stable ipc: no retune");
  (* Now a big drift on the next sampling exit triggers re-tuning. *)
  ignore (Tuner.on_entry t);
  ignore (Tuner.on_exit t ~energy:1.0 ~ipc:1.5);
  ignore (Tuner.on_entry t);
  (match Tuner.on_exit t ~energy:1.0 ~ipc:0.5 with
  | Tuner.Retuning -> ()
  | Tuner.Continue | Tuner.Finished _ | Tuner.Quarantine ->
      Alcotest.fail "drift should retune");
  Alcotest.(check int) "round counter" 2 (Tuner.rounds t);
  Alcotest.(check bool) "back in tuning" false (Tuner.is_configured t)

let test_tuner_selected () =
  let t = Tuner.create (params ()) ~configs:l1d_configs in
  Alcotest.(check bool) "none before" true (Tuner.selected t = None);
  finish_quickly t;
  Alcotest.(check bool) "selected after" true (Tuner.selected t <> None)

let test_tuner_empty_configs_rejected () =
  Alcotest.check_raises "empty list"
    (Invalid_argument "Tuner.create: empty configuration list") (fun () ->
      ignore (Tuner.create (params ()) ~configs:[||]))

(* --- §3.4 guard counter properties (fuzzed) --- *)

let prop_guard_min_spacing =
  QCheck.Test.make
    ~name:"no two applied requests closer than the reconfig interval" ~count:200
    QCheck.(pair small_int (int_range 1 500))
    (fun (seed, interval) ->
      let rng = Ace_util.Rng.create ~seed in
      let cu, _ = test_cu ~interval () in
      let now = ref 0 in
      let last_applied = ref None in
      let ok = ref true in
      for _ = 1 to 300 do
        now := !now + Ace_util.Rng.int rng (interval * 2);
        let setting = Ace_util.Rng.int rng (Cu.n_settings cu) in
        match Hw.request cu ~setting ~now_instrs:!now with
        | Hw.Applied _ ->
            (match !last_applied with
            | Some prev when !now - prev < interval -> ok := false
            | _ -> ());
            last_applied := Some !now
        | Hw.Unchanged | Hw.Denied -> ()
      done;
      !ok)

let prop_force_leaves_denied_stats =
  QCheck.Test.make
    ~name:"force never bumps the denied/invalid counters" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Ace_util.Rng.create ~seed in
      let cu, _ = test_cu ~interval:100 () in
      let ok = ref true in
      for i = 1 to 200 do
        let setting = Ace_util.Rng.int rng (Cu.n_settings cu) in
        let now_instrs = i * Ace_util.Rng.int rng 120 in
        if Ace_util.Rng.bernoulli rng 0.5 then begin
          (* Snapshot around the privileged path: whatever it does, it must
             not be accounted as a guard denial or a range rejection. *)
          let denied0 = cu.Cu.denied_count and invalid0 = cu.Cu.invalid_count in
          ignore (Hw.force cu ~setting ~now_instrs);
          if cu.Cu.denied_count <> denied0 || cu.Cu.invalid_count <> invalid0
          then ok := false
        end
        else ignore (Hw.request cu ~setting ~now_instrs)
      done;
      !ok)

(* --- tuner edge cases --- *)

let test_tuner_single_config () =
  let t = Tuner.create (params ()) ~configs:[| [| 0 |] |] in
  (match step t ~energy:5.0 ~ipc:2.0 with
  | Tuner.Finished cfg ->
      Alcotest.(check (array int)) "the only config wins" [| 0 |] cfg
  | Tuner.Continue | Tuner.Retuning | Tuner.Quarantine ->
      Alcotest.fail "one config, one measurement: tuning must finish");
  Alcotest.(check bool) "configured" true (Tuner.is_configured t);
  Alcotest.(check int) "tested one" 1 (Tuner.tested_count t)

let test_tuner_misprediction_retunes () =
  (* A statically predicted configuration whose behaviour does not match the
     prediction must fall back to measurement-based tuning. *)
  let t =
    Tuner.create_configured (params ~sample_every:1 ()) ~configs:l1d_configs
      ~best:[| 2 |]
  in
  Alcotest.(check bool) "born configured" true (Tuner.is_configured t);
  (* First sample only establishes the reference IPC. *)
  (match Tuner.on_entry t with
  | Tuner.Set cfg -> Alcotest.(check (array int)) "re-applies best" [| 2 |] cfg
  | Tuner.Nothing -> Alcotest.fail "expected Set");
  Tuner.entry_outcome t ~applied:true ~changed:false;
  (match Tuner.on_exit t ~energy:1.0 ~ipc:2.0 with
  | Tuner.Continue -> ()
  | Tuner.Finished _ | Tuner.Retuning | Tuner.Quarantine ->
      Alcotest.fail "first sample is only a reference");
  (* The hotspot actually runs far from the reference: re-tune. *)
  ignore (Tuner.on_entry t);
  Tuner.entry_outcome t ~applied:true ~changed:false;
  (match Tuner.on_exit t ~energy:1.0 ~ipc:0.5 with
  | Tuner.Retuning -> ()
  | Tuner.Continue | Tuner.Finished _ | Tuner.Quarantine ->
      Alcotest.fail "misprediction should trigger re-tuning");
  Alcotest.(check bool) "back to measuring" false (Tuner.is_configured t);
  match Tuner.on_entry t with
  | Tuner.Set cfg -> Alcotest.(check (array int)) "sweep restarts" [| 0 |] cfg
  | Tuner.Nothing -> Alcotest.fail "expected tuning to restart"

let resilience ?(max_entry_retries = 1) ?(backoff_base = 2) ?(backoff_max = 4)
    ?(quarantine_retunes = 2) ?(quarantine_window = 1000) () =
  {
    Tuner.enabled = true;
    max_entry_retries;
    backoff_base;
    backoff_max;
    quarantine_retunes;
    quarantine_window;
  }

let test_tuner_retry_backoff_skip () =
  let t =
    Tuner.create ~resilience:(resilience ()) (params ()) ~configs:l1d_configs
  in
  (* First verify failure: retried after a 2-invocation backoff. *)
  ignore (Tuner.on_entry t);
  Tuner.entry_outcome ~verified:false t ~applied:true ~changed:true;
  Alcotest.(check bool) "failed entry not measured" false (Tuner.measuring t);
  ignore (Tuner.on_exit t ~energy:0.0 ~ipc:0.0);
  Alcotest.(check bool) "backing off" true (Tuner.on_entry t = Tuner.Nothing);
  ignore (Tuner.on_exit t ~energy:0.0 ~ipc:0.0);
  Alcotest.(check bool) "still backing off" true (Tuner.on_entry t = Tuner.Nothing);
  ignore (Tuner.on_exit t ~energy:0.0 ~ipc:0.0);
  (* Second verify failure exhausts the retry budget: the configuration is
     skipped and the sweep moves on. *)
  (match Tuner.on_entry t with
  | Tuner.Set cfg -> Alcotest.(check (array int)) "same config retried" [| 0 |] cfg
  | Tuner.Nothing -> Alcotest.fail "backoff should be over");
  Tuner.entry_outcome ~verified:false t ~applied:true ~changed:true;
  ignore (Tuner.on_exit t ~energy:0.0 ~ipc:0.0);
  (match Tuner.on_entry t with
  | Tuner.Set cfg -> Alcotest.(check (array int)) "config abandoned" [| 1 |] cfg
  | Tuner.Nothing -> Alcotest.fail "expected the next configuration");
  let s = Tuner.stats t in
  Alcotest.(check int) "one retry" 1 s.Tuner.retries;
  Alcotest.(check int) "two backoff skips" 2 s.Tuner.backoff_skips;
  Alcotest.(check int) "one skipped config" 1 s.Tuner.skipped_configs;
  Alcotest.(check int) "two verify failures" 2 s.Tuner.verify_failures

let test_tuner_all_skipped_falls_back_to_max () =
  (* Zero retry budget: every verify failure skips immediately.  When the
     whole list is exhausted without one clean measurement, the tuner must
     configure the safe maximum rather than wedge. *)
  let t =
    Tuner.create
      ~resilience:(resilience ~max_entry_retries:0 ())
      (params ()) ~configs:l1d_configs
  in
  let finished = ref None in
  for _ = 1 to 4 do
    (match Tuner.on_entry t with
    | Tuner.Set _ -> ()
    | Tuner.Nothing -> Alcotest.fail "no backoff with a zero budget");
    Tuner.entry_outcome ~verified:false t ~applied:true ~changed:true;
    match Tuner.on_exit t ~energy:0.0 ~ipc:0.0 with
    | Tuner.Finished cfg -> finished := Some cfg
    | Tuner.Continue | Tuner.Retuning | Tuner.Quarantine -> ()
  done;
  (match !finished with
  | Some cfg -> Alcotest.(check (array int)) "safe maximum" [| 0 |] cfg
  | None -> Alcotest.fail "exhausted sweep must still configure");
  Alcotest.(check int) "all four skipped" 4 (Tuner.stats t).Tuner.skipped_configs

let test_tuner_median_absorbs_spike () =
  (* One spiked invocation out of three must not mislabel the configuration
     as degraded (the mean would: (2+2+0.5)/3 = 1.5 < 2*0.98). *)
  let t =
    Tuner.create ~resilience:(resilience ())
      (params ~invocations_per_config:3 ())
      ~configs:l1d_configs
  in
  for _ = 1 to 3 do
    ignore (step t ~energy:8.0 ~ipc:2.0)
  done;
  Alcotest.(check int) "config 0 recorded" 1 (Tuner.tested_count t);
  ignore (step t ~energy:4.0 ~ipc:2.0);
  ignore (step t ~energy:4.0 ~ipc:0.5);
  (match step t ~energy:4.0 ~ipc:2.0 with
  | Tuner.Continue -> ()
  | Tuner.Finished _ | Tuner.Retuning | Tuner.Quarantine ->
      Alcotest.fail "median should absorb the spike and keep sweeping");
  Alcotest.(check int) "config 1 recorded, not degraded" 2 (Tuner.tested_count t)

let test_tuner_degradation_confirmed_before_early_exit () =
  let t =
    Tuner.create ~resilience:(resilience ()) (params ()) ~configs:l1d_configs
  in
  ignore (step t ~energy:8.0 ~ipc:2.0);
  (* A single below-threshold reading is re-measured, not trusted. *)
  (match step t ~energy:4.0 ~ipc:1.0 with
  | Tuner.Continue -> ()
  | Tuner.Finished _ | Tuner.Retuning | Tuner.Quarantine ->
      Alcotest.fail "first degraded reading must be re-measured");
  Alcotest.(check int) "reading discarded" 1 (Tuner.tested_count t);
  (* The re-measurement comes back clean: the sweep continues. *)
  (match step t ~energy:4.0 ~ipc:2.0 with
  | Tuner.Continue -> ()
  | Tuner.Finished _ | Tuner.Retuning | Tuner.Quarantine ->
      Alcotest.fail "clean re-measurement should continue the sweep");
  Alcotest.(check int) "now recorded" 2 (Tuner.tested_count t);
  (* Degradation that repeats is real: the sweep stops. *)
  ignore (step t ~energy:2.0 ~ipc:1.0);
  match step t ~energy:2.0 ~ipc:1.0 with
  | Tuner.Finished _ -> ()
  | Tuner.Continue | Tuner.Retuning | Tuner.Quarantine ->
      Alcotest.fail "confirmed degradation should finish the sweep"

let test_tuner_drift_confirmation_and_quarantine () =
  let t =
    Tuner.create
      ~resilience:(resilience ~quarantine_retunes:2 ())
      (params ~sample_every:1 ())
      ~configs:l1d_configs
  in
  finish_quickly t;
  Alcotest.(check bool) "configured" true (Tuner.is_configured t);
  let sample ipc =
    ignore (Tuner.on_entry t);
    Tuner.entry_outcome t ~applied:true ~changed:false;
    Tuner.on_exit t ~energy:1.0 ~ipc
  in
  (* A single drifted sample is confirmed on the next exit; when the next
     sample is back to normal, nothing happens. *)
  (match sample 0.5 with
  | Tuner.Continue -> ()
  | _ -> Alcotest.fail "first drift reading must be re-sampled");
  (match sample 1.5 with
  | Tuner.Continue -> ()
  | _ -> Alcotest.fail "unconfirmed drift must not retune");
  Alcotest.(check bool) "still configured" true (Tuner.is_configured t);
  (* Confirmed drift re-tunes (first storm strike)... *)
  ignore (sample 0.5);
  (match sample 0.5 with
  | Tuner.Retuning -> ()
  | _ -> Alcotest.fail "confirmed drift should retune");
  finish_quickly t;
  (* ...and a second confirmed drift within the window quarantines. *)
  ignore (sample 0.45);
  (match sample 0.45 with
  | Tuner.Quarantine -> ()
  | _ -> Alcotest.fail "re-tune storm should quarantine");
  Alcotest.(check bool) "quarantined" true (Tuner.is_quarantined t);
  Alcotest.(check bool) "selection pinned" true (Tuner.selected t <> None);
  Alcotest.(check bool) "stats agree" true (Tuner.stats t).Tuner.quarantined;
  (* A quarantined hotspot keeps re-asserting its pinned configuration and
     never measures again. *)
  (match Tuner.on_entry t with
  | Tuner.Set _ -> ()
  | Tuner.Nothing -> Alcotest.fail "pinned config still re-applied");
  Tuner.entry_outcome t ~applied:true ~changed:false;
  Alcotest.(check bool) "no more sampling" false (Tuner.measuring t);
  match Tuner.on_exit t ~energy:1.0 ~ipc:9.9 with
  | Tuner.Continue -> ()
  | _ -> Alcotest.fail "quarantine is terminal"

let prop_tuner_always_terminates =
  QCheck.Test.make ~name:"tuner reaches Configured within |configs| tests" ~count:100
    QCheck.(pair small_int (list_of_size (Gen.return 16) (float_range 0.1 4.0)))
    (fun (seed, ipcs) ->
      let rng = Ace_util.Rng.create ~seed in
      let configs = Decoupling.configurations ~cus:(paper_cus ()) ~managed:[ 0; 1 ] in
      let t = Tuner.create (params ()) ~configs in
      let finished = ref false in
      List.iter
        (fun ipc ->
          if not !finished then
            match step t ~energy:(Ace_util.Rng.float rng 10.0) ~ipc with
            | Tuner.Finished _ -> finished := true
            | Tuner.Continue | Tuner.Retuning | Tuner.Quarantine -> ())
        ipcs;
      !finished)

let suite =
  [
    Tu.case "hw unchanged" test_hw_unchanged;
    Tu.case "hw applied" test_hw_applied;
    Tu.case "hw guard denies" test_hw_guard_denies;
    Tu.case "hw force" test_hw_force_bypasses_guard;
    Tu.case "hw range check" test_hw_range_check;
    Tu.case "class bounds" test_class_bounds;
    Tu.case "assign paper classes" test_assign_paper_classes;
    Tu.case "assign without decoupling" test_assign_no_decoupling;
    Tu.case "assign three CUs" test_assign_three_cus;
    Tu.case "assign four CUs (overlapping classes)" test_assign_four_cus_overlap;
    Tu.case "reorder buffer effect" test_reorder_buffer_effect;
    Tu.case "configurations single CU" test_configurations_single;
    Tu.case "configurations product" test_configurations_product;
    Tu.case "tuner selects min energy" test_tuner_full_sweep_selects_min_energy;
    Tu.case "tuner perf threshold" test_tuner_perf_threshold_filters;
    Tu.case "tuner early exit" test_tuner_early_exit_on_degradation;
    Tu.case "tuner denied retries" test_tuner_denied_retries;
    Tu.case "tuner change warms" test_tuner_change_warms;
    Tu.case "tuner averaging" test_tuner_averaging;
    Tu.case "tuner warmup" test_tuner_warmup;
    Tu.case "tuner sampling and retune" test_tuner_sampling_and_retune;
    Tu.case "tuner selected" test_tuner_selected;
    Tu.case "tuner empty configs" test_tuner_empty_configs_rejected;
    Tu.case "tuner single config" test_tuner_single_config;
    Tu.case "tuner misprediction retunes" test_tuner_misprediction_retunes;
    Tu.case "tuner retry/backoff/skip" test_tuner_retry_backoff_skip;
    Tu.case "tuner all-skipped fallback" test_tuner_all_skipped_falls_back_to_max;
    Tu.case "tuner median absorbs spike" test_tuner_median_absorbs_spike;
    Tu.case "tuner degradation confirmed"
      test_tuner_degradation_confirmed_before_early_exit;
    Tu.case "tuner drift confirm + quarantine"
      test_tuner_drift_confirmation_and_quarantine;
    Tu.qcheck prop_tuner_always_terminates;
    Tu.qcheck prop_guard_min_spacing;
    Tu.qcheck prop_force_leaves_denied_stats;
  ]
