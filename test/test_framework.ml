(* End-to-end framework tests on small programs. *)
module Engine = Ace_vm.Engine
module Db = Ace_vm.Do_database
module Cu = Ace_core.Cu
module Framework = Ace_core.Framework
module Kit = Ace_workloads.Kit

let config ?(hot_threshold = 3) () =
  { Engine.default_config with Engine.hot_threshold }

(* A program whose single L1D-class hotspot has a 4 KB working set: the
   framework must tune it down. *)
let small_ws_program ?(reps = 60) () =
  let k = Kit.create ~name:"smallws" ~seed:3 in
  let region = Kit.data_region k ~kb:4 in
  let b = Kit.block k ~instrs:1000 ~mem_frac:0.3 ~access:(Kit.Uniform region) () in
  let leaf = Kit.meth k ~name:"leaf" [ Kit.exec b 1 ] in
  let work = Kit.meth k ~name:"work" [ Kit.call leaf 100 ] in
  let main = Kit.meth k ~name:"main" [ Kit.call work reps ] in
  Kit.finish k ~entry:main

(* A hotspot whose working set needs the full 64 KB: the framework must
   keep it large. *)
let large_ws_program ?(reps = 60) () =
  let k = Kit.create ~name:"largews" ~seed:4 in
  let region = Kit.data_region k ~kb:48 in
  let b = Kit.block k ~instrs:1000 ~mem_frac:0.35 ~access:(Kit.Uniform region) () in
  let leaf = Kit.meth k ~name:"leaf" [ Kit.exec b 1 ] in
  let work = Kit.meth k ~name:"work" [ Kit.call leaf 100 ] in
  let main = Kit.meth k ~name:"main" [ Kit.call work reps ] in
  Kit.finish k ~entry:main

let attach_and_run ?(fw_config = Framework.default_config) program =
  let engine = Engine.create ~config:(config ()) program in
  let cus = [| Cu.l1d engine; Cu.l2 engine |] in
  let fw = Framework.attach ~config:fw_config engine ~cus in
  Engine.run engine;
  Framework.finalize fw;
  (engine, fw)

let find_view fw name =
  List.find_opt
    (fun (v : Framework.hotspot_view) -> v.meth_name = name)
    (Framework.hotspot_views fw)

let test_small_ws_downsizes () =
  let _, fw = attach_and_run (small_ws_program ()) in
  match find_view fw "work" with
  | Some v ->
      Alcotest.(check bool) "configured" true v.configured;
      Alcotest.(check (list string)) "manages L1D" [ "L1D" ] v.managed_cus;
      let selection = List.assoc "L1D" v.selection in
      Alcotest.(check bool)
        (Printf.sprintf "picked a small size (got %s)" selection)
        true
        (selection = "8KB" || selection = "16KB")
  | None -> Alcotest.fail "work should be a managed hotspot"

let test_large_ws_stays_large () =
  let _, fw = attach_and_run (large_ws_program ()) in
  match find_view fw "work" with
  | Some v ->
      Alcotest.(check bool) "configured" true v.configured;
      let selection = List.assoc "L1D" v.selection in
      Alcotest.(check bool)
        (Printf.sprintf "kept a large size (got %s)" selection)
        true
        (selection = "64KB" || selection = "32KB")
  | None -> Alcotest.fail "work should be a managed hotspot"

let test_energy_saved_vs_fixed () =
  (* Fixed-max baseline vs managed run on the same program. *)
  let fixed =
    let engine = Engine.create ~config:(config ()) (small_ws_program ()) in
    let acct =
      Ace_power.Accounting.create Ace_power.Energy_model.L1d
        ~initial_size:(64 * 1024)
    in
    Engine.run engine;
    Ace_power.Accounting.finish acct
      ~accesses_now:
        (Ace_mem.Cache.Stats.accesses (Ace_mem.Hierarchy.l1d (Engine.hierarchy engine)))
      ~cycles_now:(Engine.cycles engine);
    Ace_power.Accounting.total_nj acct
  in
  let _, fw = attach_and_run (small_ws_program ()) in
  match Framework.accounting fw 0 with
  | Some acct ->
      let adaptive = Ace_power.Accounting.total_nj acct in
      Alcotest.(check bool)
        (Printf.sprintf "managed L1D saves energy (%.3g vs %.3g nJ)" adaptive fixed)
        true (adaptive < 0.8 *. fixed)
  | None -> Alcotest.fail "L1D accounting missing"

let test_slowdown_bounded () =
  let cycles_of program managed =
    let engine = Engine.create ~config:(config ()) program in
    if managed then begin
      let cus = [| Cu.l1d engine; Cu.l2 engine |] in
      let fw = Framework.attach engine ~cus in
      Engine.run engine;
      Framework.finalize fw
    end
    else Engine.run engine;
    Engine.cycles engine
  in
  let base = cycles_of (small_ws_program ~reps:80 ()) false in
  let managed = cycles_of (small_ws_program ~reps:80 ()) true in
  let slowdown = (managed /. base) -. 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "slowdown below 10%% (got %.2f%%)" (slowdown *. 100.0))
    true (slowdown < 0.10)

let test_coverage_grows_with_invocations () =
  let coverage reps =
    let _, fw = attach_and_run (small_ws_program ~reps ()) in
    (Framework.report fw).(0).Framework.coverage
  in
  let short = coverage 20 and long = coverage 200 in
  Alcotest.(check bool) "longer runs have higher tuned coverage" true (long > short);
  Alcotest.(check bool) "long-run coverage high" true (long > 0.85)

let test_unmanaged_small_hotspots () =
  let k = Kit.create ~name:"tiny_hs" ~seed:5 in
  let b = Kit.block k ~instrs:500 ~mem_frac:0.0 ~access:Kit.No_memory () in
  let leaf = Kit.meth k ~name:"leaf" [ Kit.exec b 1 ] in
  (* leaf is 500 instrs: far below the 50 K L1D class bound. *)
  let main = Kit.meth k ~name:"main" [ Kit.call leaf 50 ] in
  let program = Kit.finish k ~entry:main in
  let _, fw = attach_and_run program in
  Alcotest.(check int) "leaf promoted but unmanaged" 1 (Framework.unmanaged_hotspots fw);
  Alcotest.(check int) "no managed hotspots" 0 (List.length (Framework.hotspot_views fw))

let test_reports_shape () =
  let _, fw = attach_and_run (small_ws_program ()) in
  let reports = Framework.report fw in
  Alcotest.(check int) "one report per CU" 2 (Array.length reports);
  Alcotest.(check string) "L1D first" "L1D" reports.(0).Framework.cu_name;
  Alcotest.(check string) "L2 second" "L2" reports.(1).Framework.cu_name;
  Alcotest.(check int) "one L1D-class hotspot" 1 reports.(0).Framework.class_hotspots;
  Alcotest.(check bool) "coverage in [0,1]" true
    (Array.for_all
       (fun r -> r.Framework.coverage >= 0.0 && r.Framework.coverage <= 1.0)
       reports)

let test_finalize_required_and_once () =
  let engine = Engine.create ~config:(config ()) (small_ws_program ()) in
  let fw = Framework.attach engine ~cus:[| Cu.l1d engine; Cu.l2 engine |] in
  Engine.run engine;
  Alcotest.check_raises "report before finalize"
    (Invalid_argument "Framework.report: call finalize first") (fun () ->
      ignore (Framework.report fw));
  Framework.finalize fw;
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Framework.finalize: already finalized") (fun () ->
      Framework.finalize fw)

let test_decoupling_off_tests_more_configs () =
  let tunings fw_config =
    let _, fw = attach_and_run ~fw_config (small_ws_program ~reps:400 ()) in
    let r = Framework.report fw in
    (r.(0).Framework.tunings, List.length (Framework.hotspot_views fw))
  in
  let dec_tunings, _ = tunings Framework.default_config in
  let joint_tunings, _ =
    tunings { Framework.default_config with decoupling = false }
  in
  (* Joint tuning explores 16 configurations instead of 4: measured
     invocations during tuning must be substantially higher. *)
  Alcotest.(check bool)
    (Printf.sprintf "joint tuning works harder (%d vs %d)" joint_tunings dec_tunings)
    true
    (joint_tunings > dec_tunings)

let test_issue_queue_cu () =
  let k = Kit.create ~name:"iq" ~seed:6 in
  let b = Kit.block k ~ilp:3.5 ~instrs:1000 ~mem_frac:0.05
      ~access:(Kit.Uniform (Kit.data_region k ~kb:2)) () in
  let leaf = Kit.meth k ~name:"leaf" [ Kit.exec b 1 ] in
  (* ~20 K instrs: the issue-queue class (5 K - 50 K). *)
  let work = Kit.meth k ~name:"work" [ Kit.call leaf 20 ] in
  let main = Kit.meth k ~name:"main" [ Kit.call work 300 ] in
  let program = Kit.finish k ~entry:main in
  let engine = Engine.create ~config:(config ()) program in
  let cus = [| Cu.l1d engine; Cu.l2 engine; Cu.issue_queue engine |] in
  let fw = Framework.attach engine ~cus in
  Engine.run engine;
  Framework.finalize fw;
  match find_view fw "work" with
  | Some v ->
      Alcotest.(check (list string)) "managed by the issue queue" [ "IQ" ] v.managed_cus
  | None -> Alcotest.fail "work should be IQ-managed"

(* --- resilience under injected faults --- *)

module Faults = Ace_faults.Faults

let resilient_config =
  {
    Framework.default_config with
    resilience = Ace_core.Tuner.default_resilience;
  }

let attach_and_run_faulty ?(fw_config = resilient_config) ~faults program =
  let engine = Engine.create ~config:(config ()) ~faults program in
  let cus = [| Cu.l1d engine; Cu.l2 engine |] in
  let fw = Framework.attach ~config:fw_config ~faults engine ~cus in
  Engine.run engine;
  Framework.finalize fw;
  (engine, fw)

let test_no_faults_identical_run () =
  (* The entire fault/resilience machinery must be invisible when disabled:
     an engine with [Faults.none] and the default (no-resilience) config
     reproduces the plain run bit for bit. *)
  let run faulty =
    let engine, fw =
      if faulty then
        attach_and_run_faulty ~fw_config:Framework.default_config
          ~faults:Faults.none
          (small_ws_program ())
      else attach_and_run (small_ws_program ())
    in
    let r = (Framework.report fw).(0) in
    (Engine.cycles engine, r.Framework.tunings, r.Framework.energy_nj)
  in
  Alcotest.(check bool) "bit-for-bit" true (run false = run true)

let test_graceful_degradation_pins_failed_cu () =
  (* Every register write is silently dropped: the resilient framework must
     notice via read-back, declare the CU failed and pin it at the maximum;
     the run still completes and reports. *)
  let faults =
    Faults.create { Faults.no_faults with Faults.reg_write_drop_p = 1.0 }
  in
  let _, fw = attach_and_run_faulty ~faults (small_ws_program ~reps:100 ()) in
  let r = (Framework.report fw).(0) in
  Alcotest.(check bool) "CU declared failed" true r.Framework.failed;
  Alcotest.(check bool) "verify failures recorded" true
    (r.Framework.verify_failures > 0);
  let rr = Framework.resilience_report fw in
  Alcotest.(check int) "one failed CU" 1 rr.Framework.failed_cus;
  Alcotest.(check bool) "misconfiguration time bounded" true
    (rr.Framework.misconfig_frac < 0.5)

let test_non_resilient_ignores_bad_writes () =
  (* Same all-drops environment without resilience: no verification runs, so
     nothing is failed — the framework silently believes the phantom
     applies (that is the vulnerability the resilient mode closes). *)
  let faults =
    Faults.create { Faults.no_faults with Faults.reg_write_drop_p = 1.0 }
  in
  let _, fw =
    attach_and_run_faulty ~fw_config:Framework.default_config ~faults
      (small_ws_program ~reps:100 ())
  in
  let rr = Framework.resilience_report fw in
  (* The simulator's omniscient bookkeeping still records the divergence,
     but without resilience no action follows from it. *)
  Alcotest.(check int) "nothing failed" 0 rr.Framework.failed_cus;
  Alcotest.(check int) "no retries" 0 rr.Framework.tuner_retries;
  Alcotest.(check int) "no configs skipped" 0 rr.Framework.tuner_skipped_configs;
  Alcotest.(check bool) "divergence still visible to the simulator" true
    (rr.Framework.total_verify_failures > 0)

let test_recovery_probe_unpins_transient () =
  (* A transient latch-up: writes are swallowed for a fixed window, then the
     CU comes back.  The resilient framework fails it during the window and
     the periodic probe recovers it afterwards. *)
  let faults =
    Faults.create
      {
        Faults.no_faults with
        Faults.stuck_transient_p = 1.0;
        (* Long enough for [cu_failure_threshold] guard-spaced writes (the
           L1D guard admits one write per 100 K instructions) to fail while
           the latch holds, short enough that the run has ample time left
           after it clears. *)
        stuck_transient_instrs = 2_000_000;
      }
  in
  let fw_config = { resilient_config with cu_probe_interval = 5 } in
  let _, fw =
    attach_and_run_faulty ~fw_config ~faults (small_ws_program ~reps:400 ())
  in
  let rr = Framework.resilience_report fw in
  Alcotest.(check bool)
    (Printf.sprintf "probes recovered the CU (%d recoveries)"
       rr.Framework.cu_recoveries)
    true
    (rr.Framework.cu_recoveries > 0)

let suite =
  [
    Tu.case "small working set downsizes" test_small_ws_downsizes;
    Tu.case "large working set stays large" test_large_ws_stays_large;
    Tu.case "energy saved vs fixed" test_energy_saved_vs_fixed;
    Tu.case "slowdown bounded" test_slowdown_bounded;
    Tu.case "coverage grows with invocations" test_coverage_grows_with_invocations;
    Tu.case "small hotspots unmanaged" test_unmanaged_small_hotspots;
    Tu.case "report shape" test_reports_shape;
    Tu.case "finalize protocol" test_finalize_required_and_once;
    Tu.case "decoupling ablation" test_decoupling_off_tests_more_configs;
    Tu.case "issue queue CU" test_issue_queue_cu;
    Tu.case "no faults = identical run" test_no_faults_identical_run;
    Tu.case "graceful degradation pins failed CU"
      test_graceful_degradation_pins_failed_cu;
    Tu.case "non-resilient ignores bad writes"
      test_non_resilient_ignores_bad_writes;
    Tu.case "recovery probe unpins transient" test_recovery_probe_unpins_transient;
  ]
