(* The observability subsystem: sink semantics (levels, ring bounds,
   registry idempotence, zero-cost off path), exporter golden structure,
   and the end-to-end invariants the design promises — monotone timelines
   for any seeded run, and checkpoint/resume metrics identity. *)

module Obs = Ace_obs.Obs
module Export = Ace_obs.Export
module Run = Ace_harness.Run
module Scheme = Ace_harness.Scheme

let compress () = Option.get (Ace_workloads.Specjvm.find "compress")

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what haystack needle =
  if not (contains haystack needle) then
    Alcotest.failf "%s: %S not found in output" what needle

(* A Full sink with a manual clock, for building timelines by hand. *)
let clocked ?capacity () =
  let obs = Obs.create ?capacity Obs.Full in
  let tick = ref 0 in
  Obs.set_clock obs (fun () -> !tick);
  (obs, tick)

(* -- sink semantics -------------------------------------------------- *)

let test_ring_bounded () =
  let obs, tick = clocked ~capacity:8 () in
  for i = 1 to 20 do
    tick := i;
    Obs.record obs (Obs.Recompile { id = i })
  done;
  Alcotest.(check int) "retained at capacity" 8 (Obs.event_count obs);
  Alcotest.(check int) "overwrites counted" 12 (Obs.dropped obs);
  (match Obs.events obs with
  | { Obs.ts = 13; kind = Obs.Recompile { id = 13 } } :: _ -> ()
  | _ -> Alcotest.fail "oldest retained event should be #13");
  let last = List.nth (Obs.events obs) 7 in
  Alcotest.(check int) "newest retained" 20 last.Obs.ts

let test_registry_idempotent () =
  let obs = Obs.create Obs.Metrics in
  let a = Obs.counter obs "x.same" in
  let b = Obs.counter obs "x.same" in
  Obs.incr obs a;
  Obs.incr obs b;
  Alcotest.(check int) "one shared cell" 2 (Obs.counter_value a);
  Alcotest.(check int) "registered once"
    1
    (List.length
       (List.filter
          (function Obs.M_counter ("x.same", _) -> true | _ -> false)
          (Obs.metrics obs)));
  let names =
    List.map
      (function
        | Obs.M_counter (n, _) | Obs.M_gauge (n, _) | Obs.M_histogram (n, _, _, _, _)
          -> n)
      (Obs.metrics obs)
  in
  Alcotest.(check (list string)) "sorted by name" (List.sort compare names) names

let test_histogram_buckets () =
  let obs = Obs.create Obs.Metrics in
  let h = Obs.histogram obs "h" ~bounds:[| 1.0; 2.0 |] in
  List.iter (fun v -> Obs.observe obs h v) [ 0.5; 1.0; 1.5; 5.0 ];
  (match Obs.metrics obs with
  | [ Obs.M_histogram ("h", _, counts, total, sum) ] ->
      Alcotest.(check (array int)) "inclusive edges + overflow" [| 2; 1; 1 |] counts;
      Alcotest.(check int) "total" 4 total;
      Alcotest.(check (float 1e-9)) "sum" 8.0 sum
  | _ -> Alcotest.fail "expected exactly the one histogram");
  match Obs.histogram obs "bad" ~bounds:[| 2.0; 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing bounds accepted"

let test_off_sink_inert () =
  let obs = Obs.null in
  let c = Obs.counter obs "x" in
  let g = Obs.gauge obs "g" in
  Obs.incr obs c;
  Obs.set_gauge obs g 1.0;
  Obs.record obs (Obs.Recompile { id = 1 });
  Obs.set_clock obs (fun () -> 42);
  Alcotest.(check int) "nothing registered" 0 (List.length (Obs.metrics obs));
  Alcotest.(check int) "nothing recorded" 0 (Obs.event_count obs);
  Alcotest.(check int) "cell untouched" 0 (Obs.counter_value c);
  Alcotest.(check int) "clock untouched" 0 (Obs.now obs);
  Alcotest.(check bool) "capture empty" true (Obs.capture obs = None)

(* The always-on promise: emitting against an Off sink must not allocate,
   or leaving instrumentation in hot paths would tax every ordinary run.
   The emission loop mirrors how producers are written: ungated incr,
   gated float/event emissions. *)
let test_off_path_allocation_free () =
  let obs = Obs.null in
  let c = Obs.counter obs "x" in
  let g = Obs.gauge obs "g" in
  let h = Obs.histogram obs "h" ~bounds:[| 1.0 |] in
  for i = 1 to 100 do
    Obs.incr obs c;
    ignore (Sys.opaque_identity i)
  done;
  let before = Gc.minor_words () in
  for i = 1 to 1_000_000 do
    Obs.incr obs c;
    if Obs.enabled obs then begin
      Obs.set_gauge obs g (float_of_int i);
      Obs.observe obs h (float_of_int i)
    end;
    if Obs.tracing obs then
      Obs.record obs (Obs.Phase_enter { id = i; name = "hot" })
  done;
  let delta = Gc.minor_words () -. before in
  if delta >= 256.0 then
    Alcotest.failf "off-path emissions allocated %.0f minor words" delta

(* -- exporters ------------------------------------------------------- *)

let test_chrome_structure_and_escaping () =
  let obs, tick = clocked () in
  let name = "m\"1\n" in
  tick := 100;
  Obs.record obs (Obs.Hotspot_promoted { id = 1; name });
  Obs.record obs (Obs.Phase_enter { id = 1; name });
  tick := 300;
  Obs.record obs (Obs.Phase_exit { id = 1; ipc = 1.5 });
  tick := 400;
  Obs.record obs (Obs.Trial_start { id = 1; cfg = "0/1" });
  let s = Export.chrome obs in
  check_contains "container" s "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  check_contains "escaped method name" s "m\\\"1\\n";
  check_contains "phase span" s "\"ph\":\"X\",\"ts\":100,\"dur\":200";
  check_contains "phase ipc arg" s "\"ipc\":1.5";
  check_contains "thread metadata" s
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0";
  (* The un-resulted trial is closed at the last event's timestamp. *)
  check_contains "leftover trial span" s
    "{\"name\":\"0/1\",\"ph\":\"X\",\"ts\":400,\"dur\":0";
  (* Structural sanity stands in for a JSON parser: balanced braces and a
     closing array. *)
  let balance =
    String.fold_left
      (fun n c -> if c = '{' then n + 1 else if c = '}' then n - 1 else n)
      0 s
  in
  Alcotest.(check int) "balanced braces" 0 balance;
  check_contains "closed array" s "\n]}\n"

let test_csv_header_and_escaping () =
  let obs, tick = clocked () in
  tick := 5;
  Obs.record obs (Obs.Reconfig { cu = "L1D"; label = "32KB"; flushed = 7 });
  tick := 9;
  Obs.record obs (Obs.Fault { cu = "hw"; what = "say \"hi\", friend" });
  let s = Export.csv obs in
  (match String.split_on_char '\n' s with
  | header :: rows ->
      Alcotest.(check string) "header is stable" "ts,kind,id,label,a,b" header;
      Alcotest.(check (list string))
        "rows quote and double"
        [
          "5,reconfig,,L1D=32KB,7,";
          "9,fault,,\"hw:say \"\"hi\"\", friend\",,";
          "";
        ]
        rows
  | [] -> Alcotest.fail "empty csv");
  let m = Obs.create Obs.Metrics in
  let h = Obs.histogram m "lat" ~bounds:[| 1.0; 2.0 |] in
  Obs.observe m h 1.5;
  Obs.incr m (Obs.counter m "hits");
  Alcotest.(check string)
    "metrics csv shape"
    "metric,type,value\n\
     hits,counter,1\n\
     lat.le_1,bucket,0\n\
     lat.le_2,bucket,1\n\
     lat.le_inf,bucket,0\n\
     lat.count,count,1\n\
     lat.sum,sum,1.5\n"
    (Export.metrics_csv m)

let test_report_smoke () =
  let obs = Obs.create Obs.Full in
  let (_ : Run.result) =
    Run.run ~scale:0.1 ~seed:1 ~obs (compress ()) Scheme.Hotspot
  in
  let s = Export.report obs in
  check_contains "title" s "ACE observability report";
  check_contains "activity section" s "cache resizes";
  check_contains "metrics section" s "engine.method_entries";
  check_contains "timeline tail" s "timeline tail"

(* -- whole-run invariants -------------------------------------------- *)

(* Any seeded run, any scheme: the exported timeline's timestamps are
   non-decreasing, because every event reads the engine's one monotone
   instruction counter. *)
let prop_timestamps_monotone =
  QCheck.Test.make ~count:6 ~name:"timeline timestamps are monotone"
    QCheck.(pair small_nat (oneofl [ Scheme.Fixed_baseline; Scheme.Hotspot ]))
    (fun (seed, scheme) ->
      let obs = Obs.create Obs.Full in
      let w =
        Ace_workloads.Synthetic.workload
          { Ace_workloads.Synthetic.default with n_phases = 2; phase_repeats = 3 }
      in
      let (_ : Run.result) = Run.run ~scale:1.0 ~seed:(seed + 1) ~obs w scheme in
      let evs = Obs.events obs in
      evs <> []
      && fst
           (List.fold_left
              (fun (ok, prev) ev -> (ok && ev.Obs.ts >= prev, ev.Obs.ts))
              (true, 0) evs))

let test_capture_restore_roundtrip () =
  let obs, tick = clocked ~capacity:4 () in
  let c = Obs.counter obs "c" in
  let h = Obs.histogram obs "h" ~bounds:[| 1.0 |] in
  Obs.incr obs c;
  Obs.observe obs h 0.5;
  for i = 1 to 6 do
    tick := i;
    Obs.record obs (Obs.Recompile { id = i })
  done;
  let st = Obs.capture obs in
  Alcotest.(check bool) "full sink captures" true (st <> None);
  let obs2 = Obs.create ~capacity:4 Obs.Full in
  Obs.restore obs2 st;
  Alcotest.(check bool) "metrics identical" true
    (Obs.metrics obs2 = Obs.metrics obs);
  Alcotest.(check bool) "events identical" true
    (Obs.events obs2 = Obs.events obs);
  Alcotest.(check int) "drop count carried" (Obs.dropped obs) (Obs.dropped obs2);
  Alcotest.(check bool) "capture is pure data" true (Obs.capture obs2 = st)

(* The headline acceptance invariant, at the API level: kill a checkpointed
   run mid-flight, resume it from disk, and the metrics summary must be
   byte-identical to the uninterrupted run's.  Also: the resumed sink's
   timeline reaches back before the kill (the ring rode in the snapshot)
   and carries the Ckpt_restore marker. *)
let test_resume_metrics_identity () =
  let path = Filename.temp_file "ace_obs_test" ".snap" in
  let cleanup () =
    List.iter
      (fun s -> if Sys.file_exists (path ^ s) then Sys.remove (path ^ s))
      [ ""; ".1"; ".tmp" ]
  in
  let obs_full = Obs.create Obs.Full in
  (match
     Run.run_checkpointed ~scale:0.2 ~seed:3 ~obs:obs_full
       ~checkpoint_every:2_000_000 ~path (compress ()) Scheme.Hotspot
   with
  | Run.Completed _ -> ()
  | Run.Killed_at _ -> Alcotest.fail "uninterrupted run was killed");
  let reference = Export.metrics_csv obs_full in
  cleanup ();
  let obs_kill = Obs.create Obs.Full in
  (match
     Run.run_checkpointed ~scale:0.2 ~seed:3 ~obs:obs_kill ~kill_after:5_000_000
       ~checkpoint_every:2_000_000 ~path (compress ()) Scheme.Hotspot
   with
  | Run.Killed_at _ -> ()
  | Run.Completed _ -> Alcotest.fail "kill_after did not kill");
  let obs_resumed = Obs.create Obs.Full in
  (match Run.resume_run ~obs:obs_resumed ~path () with
  | Some (Run.Completed _, `Primary) -> ()
  | _ -> Alcotest.fail "resume did not complete from the primary snapshot");
  cleanup ();
  Alcotest.(check string) "resumed metrics are byte-identical" reference
    (Export.metrics_csv obs_resumed);
  let evs = Obs.events obs_resumed in
  let restore_ts =
    List.fold_left
      (fun acc ev ->
        match ev.Obs.kind with Obs.Ckpt_restore _ -> Some ev.Obs.ts | _ -> acc)
      None evs
  in
  (match restore_ts with
  | None -> Alcotest.fail "resumed timeline lacks the Ckpt_restore marker"
  | Some ts ->
      Alcotest.(check bool) "timeline reaches back before the kill" true
        (List.exists (fun ev -> ev.Obs.ts < ts) evs));
  check_contains "restore visible in trace" (Export.chrome obs_resumed)
    "ckpt_restore"

let suite =
  [
    Tu.case "ring is bounded and counts drops" test_ring_bounded;
    Tu.case "registry registration is idempotent" test_registry_idempotent;
    Tu.case "histogram bucket edges" test_histogram_buckets;
    Tu.case "off sink is inert" test_off_sink_inert;
    Tu.case "off path allocates nothing" test_off_path_allocation_free;
    Tu.case "chrome export structure + escaping" test_chrome_structure_and_escaping;
    Tu.case "csv exports: headers + escaping" test_csv_header_and_escaping;
    Tu.slow_case "report smoke" test_report_smoke;
    Tu.qcheck prop_timestamps_monotone;
    Tu.case "capture/restore roundtrip" test_capture_restore_roundtrip;
    Tu.slow_case "kill/resume metrics identity + seamless timeline"
      test_resume_metrics_identity;
  ]
